// Package repro reproduces "Analysis of a Computational Biology
// Simulation Technique on Emerging Processing Architectures" (Meredith,
// Alam, Vetter; IPDPS 2007) as a Go library: the paper's Lennard-Jones
// molecular-dynamics kernel plus functional, cycle-accounted models of
// the four machines it was characterized on — a 2.2 GHz Opteron
// baseline, the STI Cell Broadband Engine, a 2006-era GPU stream
// processor, and the Cray MTA-2.
//
// The root package carries the benchmark harness (bench_test.go): one
// benchmark per table and figure of the paper's evaluation section,
// each reporting the modeled runtimes as custom metrics, alongside
// micro-benchmarks of the substrates. cmd/paperbench prints the same
// artifacts as tables; DESIGN.md maps every system and experiment to
// its module; EXPERIMENTS.md records paper-vs-measured for each one.
package repro
