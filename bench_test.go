package repro

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/fsys"
	"repro/internal/gpu"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/mta"
	"repro/internal/opteron"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/seqalign"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/spu"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// The benchmarks in this file form the harness for the paper's
// evaluation section: one benchmark per table and figure, each
// reporting the modeled device runtimes as custom metrics
// (model_sec/<row>), plus micro-benchmarks of the substrates. The
// b.N-timed quantity is the cost of running the functional simulation;
// the paper's numbers are the reported metrics. cmd/paperbench prints
// the same rows as tables at full paper scale.

// benchAtoms keeps benchmark workloads small enough that -bench=. over
// the whole suite stays in minutes; the full-scale (2048-atom) rows are
// produced by cmd/paperbench and recorded in EXPERIMENTS.md.
const benchAtoms = 512

// BenchmarkFig5SIMDLadder regenerates Figure 5: the acceleration-kernel
// runtime for each SIMD-optimization rung on one SPE.
func BenchmarkFig5SIMDLadder(b *testing.B) {
	for v := cell.Variant(0); v < cell.NumVariants; v++ {
		b.Run(v.String(), func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, 1)
			if err != nil {
				b.Fatal(err)
			}
			proc, err := cell.New(cell.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				sec, err = proc.AccelKernelTime(w, v)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkFig6LaunchOverhead regenerates Figure 6: total runtime and
// SPE-launch overhead for {1,8} SPEs x {respawn, launch-once}.
func BenchmarkFig6LaunchOverhead(b *testing.B) {
	for _, mode := range []cell.Mode{cell.RespawnEachStep, cell.LaunchOnce} {
		for _, nspe := range []int{1, 8} {
			b.Run(fmt.Sprintf("%dspe_%v", nspe, mode), func(b *testing.B) {
				w, err := core.StandardWorkload(benchAtoms, core.PaperSteps)
				if err != nil {
					b.Fatal(err)
				}
				dev, err := core.NewCell(nspe, mode)
				if err != nil {
					b.Fatal(err)
				}
				var total, spawn float64
				for i := 0; i < b.N; i++ {
					res, err := dev.Run(w)
					if err != nil {
						b.Fatal(err)
					}
					total = res.Seconds()
					spawn = res.Time.Component("spawn")
				}
				b.ReportMetric(total, "model_sec")
				b.ReportMetric(spawn, "model_spawn_sec")
			})
		}
	}
}

// BenchmarkTable1Devices regenerates Table 1: the device comparison for
// the fixed-size experiment.
func BenchmarkTable1Devices(b *testing.B) {
	cases := []struct {
		name string
		run  func(b *testing.B, w device.Workload) float64
	}{
		{"opteron", func(b *testing.B, w device.Workload) float64 {
			res, err := core.NewOpteron().Run(w)
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds()
		}},
		{"cell_1spe", func(b *testing.B, w device.Workload) float64 {
			dev, err := core.NewCell(1, cell.LaunchOnce)
			if err != nil {
				b.Fatal(err)
			}
			res, err := dev.Run(w)
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds()
		}},
		{"cell_8spe", func(b *testing.B, w device.Workload) float64 {
			dev, err := core.NewCell(8, cell.LaunchOnce)
			if err != nil {
				b.Fatal(err)
			}
			res, err := dev.Run(w)
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds()
		}},
		{"cell_ppe_only", func(b *testing.B, w device.Workload) float64 {
			dev, err := core.NewCellPPEOnly()
			if err != nil {
				b.Fatal(err)
			}
			res, err := dev.Run(w)
			if err != nil {
				b.Fatal(err)
			}
			return res.Seconds()
		}},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, core.PaperSteps)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				sec = c.run(b, w)
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkFig7GPUvsOpteron regenerates Figure 7's series: both devices
// across the atom sweep.
func BenchmarkFig7GPUvsOpteron(b *testing.B) {
	for _, n := range []int{128, 512, 2048} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var rows []core.Fig7Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.Fig7([]int{n}, core.PaperSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Opteron, "model_opteron_sec")
			b.ReportMetric(rows[0].GPU, "model_gpu_sec")
		})
	}
}

// BenchmarkFig8MTAThreading regenerates Figure 8's series.
func BenchmarkFig8MTAThreading(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n%d", n), func(b *testing.B) {
			var rows []core.Fig8Row
			var err error
			for i := 0; i < b.N; i++ {
				rows, err = core.Fig8([]int{n}, core.PaperSteps)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(rows[0].Fully, "model_fully_sec")
			b.ReportMetric(rows[0].Partially, "model_partially_sec")
		})
	}
}

// BenchmarkFig9Scaling regenerates Figure 9's normalized growth points.
func BenchmarkFig9Scaling(b *testing.B) {
	b.Run("sweep", func(b *testing.B) {
		var rows []core.Fig9Row
		var err error
		for i := 0; i < b.N; i++ {
			rows, err = core.Fig9([]int{256, 1024, 4096}, 2)
			if err != nil {
				b.Fatal(err)
			}
		}
		last := rows[len(rows)-1]
		b.ReportMetric(last.MTARel, "model_mta_rel")
		b.ReportMetric(last.OpteronRel, "model_opteron_rel")
	})
}

// ---- Ablation benches for the design choices DESIGN.md calls out ----

// BenchmarkAblationPairlist compares the paper's on-the-fly kernel with
// the neighbor-list optimization it deliberately skips, on the Opteron
// model.
func BenchmarkAblationPairlist(b *testing.B) {
	for _, usePairlist := range []bool{false, true} {
		name := "on_the_fly"
		if usePairlist {
			name = "pairlist"
		}
		b.Run(name, func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, core.PaperSteps)
			if err != nil {
				b.Fatal(err)
			}
			cfg := opteron.DefaultConfig()
			cfg.UsePairlist = usePairlist
			dev := opteron.New(cfg)
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := dev.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				sec = res.Seconds()
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkAblationSPECount sweeps 1..8 SPEs (the paper reports only 1
// and 8).
func BenchmarkAblationSPECount(b *testing.B) {
	for nspe := 1; nspe <= 8; nspe++ {
		b.Run(fmt.Sprintf("%dspe", nspe), func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, core.PaperSteps)
			if err != nil {
				b.Fatal(err)
			}
			dev, err := core.NewCell(nspe, cell.LaunchOnce)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := dev.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				sec = res.Seconds()
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkAblationMTAStreams sweeps the stream count to show the
// saturation point of the latency-hiding model.
func BenchmarkAblationMTAStreams(b *testing.B) {
	for _, streams := range []int{8, 32, 128} {
		b.Run(fmt.Sprintf("%dstreams", streams), func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, 2)
			if err != nil {
				b.Fatal(err)
			}
			cfg := mta.DefaultConfig()
			cfg.Streams = streams
			dev, err := mta.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := dev.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				sec = res.Seconds()
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// ---- Host parallel baseline (real wall-clock numbers) ----

// parallelBenchWorkers enumerates the worker sweep: every count up to
// NumCPU on small hosts, powers of two plus NumCPU on large ones.
func parallelBenchWorkers() []int {
	ncpu := runtime.NumCPU()
	if ncpu <= 8 {
		ws := make([]int, ncpu)
		for i := range ws {
			ws[i] = i + 1
		}
		return ws
	}
	ws := []int{1}
	for w := 2; w < ncpu; w *= 2 {
		ws = append(ws, w)
	}
	return append(ws, ncpu)
}

// BenchmarkParallelForces sweeps the sharded host force engine across
// worker counts and atom counts, reporting the wall-clock speedup over
// the serial full-loop kernel as a metric. Set BENCH_JSON=<path> to
// also append machine-readable JSON-Lines records for the cross-PR
// bench trajectory.
func BenchmarkParallelForces(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	// serialNs lazily measures the serial full-loop kernel once per
	// atom count — the denominator of every speedup metric.
	serialNs := map[int]float64{}
	serialBaseline := func(b *testing.B, p md.Params[float64], pos, acc md.Coords[float64]) float64 {
		n := pos.Len()
		if ns, ok := serialNs[n]; ok {
			return ns
		}
		reps := 0
		start := time.Now()
		for time.Since(start) < 100*time.Millisecond || reps < 2 {
			md.ComputeForcesFull(p, pos, acc)
			reps++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(reps)
		serialNs[n] = ns
		sink.Record(fmt.Sprintf("ParallelForces/n%d_serial", n), map[string]float64{"ns_per_op": ns})
		return ns
	}

	for _, n := range []int{256, 2048, 8192} {
		st, err := lattice.Generate(lattice.Config{
			N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		p := md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
		pos := md.CoordsFromV3(st.Pos)
		acc := md.MakeCoords[float64](n)
		for _, w := range parallelBenchWorkers() {
			b.Run(fmt.Sprintf("direct/n%d_w%d", n, w), func(b *testing.B) {
				sNs := serialBaseline(b, p, pos, acc)
				e := parallel.New[float64](w)
				defer e.Close()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					e.ForcesDirect(p, pos, acc)
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				speedup := sNs / perOp
				b.ReportMetric(speedup, "speedup_vs_serial")
				sink.Record(fmt.Sprintf("ParallelForces/n%d_w%d", n, w), map[string]float64{
					"ns_per_op": perOp, "speedup_vs_serial": speedup, "workers": float64(w),
				})
			})
		}
	}

	// One cell-list and one pairlist point at full parallelism: the
	// scalable methods the direct kernel is compared against.
	const n = 2048
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 7,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
	pos := md.CoordsFromV3(st.Pos)
	acc := md.MakeCoords[float64](n)
	ncpu := runtime.NumCPU()
	b.Run(fmt.Sprintf("cellgrid/n%d_w%d", n, ncpu), func(b *testing.B) {
		cl, err := md.NewCellList(p.Box, p.Cutoff)
		if err != nil {
			b.Fatal(err)
		}
		e := parallel.New[float64](ncpu)
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ForcesCell(cl, p, pos, acc)
		}
		b.StopTimer()
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		sink.Record(fmt.Sprintf("ParallelForces/cellgrid_n%d_w%d", n, ncpu),
			map[string]float64{"ns_per_op": perOp, "workers": float64(ncpu)})
	})
	b.Run(fmt.Sprintf("pairlist/n%d_w%d", n, ncpu), func(b *testing.B) {
		nl, err := md.NewNeighborList[float64](0.4)
		if err != nil {
			b.Fatal(err)
		}
		e := parallel.New[float64](ncpu)
		defer e.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.ForcesPairlist(nl, p, pos, acc)
		}
		b.StopTimer()
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		sink.Record(fmt.Sprintf("ParallelForces/pairlist_n%d_w%d", n, ncpu),
			map[string]float64{"ns_per_op": perOp, "workers": float64(ncpu)})
	})
}

// buildBenchWorkers enumerates the worker sweep for the neighbor-list
// build bench. Unlike parallelBenchWorkers it always includes 4: the
// cross-PR trajectory tracks the 4-worker point at every atom count,
// and on hosts with fewer cores the entry records how the sharded
// build degrades (or holds, thanks to the cell-binned algorithm) when
// oversubscribed.
func buildBenchWorkers() []int {
	ws := []int{1, 2, 4}
	if ncpu := runtime.NumCPU(); ncpu > 4 {
		ws = append(ws, ncpu)
	}
	return ws
}

// BenchmarkNeighborBuild sweeps the neighbor-list build itself across
// atom counts and strategies: the reference O(N²) scan, the serial
// cell-binned build, and the sharded parallel build at the worker
// sweep. Every strategy produces byte-identical pair lists (pinned by
// the md and parallel package tests), so the only thing that varies
// here is wall-clock. The reported metric is the speedup over the
// serial N² scan; set BENCH_JSON=<path> to append machine-readable
// JSON-Lines records (build_speedup_vs_serial) for the cross-PR bench
// trajectory.
func BenchmarkNeighborBuild(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	const skin = 0.4
	newList := func(b *testing.B) *md.NeighborList[float64] {
		nl, err := md.NewNeighborList[float64](skin)
		if err != nil {
			b.Fatal(err)
		}
		return nl
	}

	// serialNs lazily measures the reference O(N²) build once per atom
	// count — the denominator of every speedup metric.
	serialNs := map[int]float64{}
	serialBaseline := func(b *testing.B, p md.Params[float64], pos md.Coords[float64]) float64 {
		n := pos.Len()
		if ns, ok := serialNs[n]; ok {
			return ns
		}
		nl := newList(b)
		reps := 0
		start := time.Now()
		for time.Since(start) < 200*time.Millisecond || reps < 2 {
			nl.BuildN2(p, pos)
			reps++
		}
		ns := float64(time.Since(start).Nanoseconds()) / float64(reps)
		serialNs[n] = ns
		sink.Record(fmt.Sprintf("NeighborBuild/n%d_serial_n2", n), map[string]float64{"ns_per_op": ns})
		return ns
	}

	for _, n := range []int{512, 2048, 8192} {
		st, err := lattice.Generate(lattice.Config{
			N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		p := md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
		pos := md.CoordsFromV3(st.Pos)

		b.Run(fmt.Sprintf("cell/n%d", n), func(b *testing.B) {
			sNs := serialBaseline(b, p, pos)
			nl := newList(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nl.Build(p, pos)
			}
			b.StopTimer()
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			speedup := sNs / perOp
			b.ReportMetric(speedup, "build_speedup_vs_serial")
			sink.Record(fmt.Sprintf("NeighborBuild/cell_n%d", n), map[string]float64{
				"ns_per_op": perOp, "build_speedup_vs_serial": speedup,
			})
		})
		for _, w := range buildBenchWorkers() {
			b.Run(fmt.Sprintf("parallel/n%d_w%d", n, w), func(b *testing.B) {
				sNs := serialBaseline(b, p, pos)
				nl := newList(b)
				e := parallel.New[float64](w)
				defer e.Close()
				ctx := context.Background()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := e.BuildPairlist(ctx, nl, p, pos); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
				speedup := sNs / perOp
				b.ReportMetric(speedup, "build_speedup_vs_serial")
				sink.Record(fmt.Sprintf("NeighborBuild/parallel_n%d_w%d", n, w), map[string]float64{
					"ns_per_op": perOp, "build_speedup_vs_serial": speedup, "workers": float64(w),
				})
			})
		}
	}
}

// BenchmarkMixedPrecision compares the mixed-precision float32 host
// fast path (float32 pair geometry, float64 accumulation) against the
// all-float64 kernels it shadows: the Verlet-list kernel serial and
// sharded at full parallelism, and the serial linked-cell kernel. The
// f32 arms time the honest per-step cost — the O(N) mirror refresh
// plus the force evaluation — and report f32_speedup_vs_f64 against
// the matching f64 arm. Set BENCH_JSON=<path> to append JSON-Lines
// records for the cross-PR bench trajectory (BENCH_PR6.json).
func BenchmarkMixedPrecision(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	const skin = 0.4
	ncpu := runtime.NumCPU()
	// f64Ns holds each float64 arm's per-op time, the denominator of
	// the matching f32 arm's speedup. Sub-benchmarks run in definition
	// order, so the denominator is measured before it is needed; under
	// a -bench filter that skips the f64 arm, the f32 arm simply
	// reports no speedup metric.
	f64Ns := map[string]float64{}

	record := func(b *testing.B, key string, f64Key string) {
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		m := map[string]float64{"ns_per_op": perOp}
		if f64Key == "" {
			f64Ns[key] = perOp
		} else if base, ok := f64Ns[f64Key]; ok {
			speedup := base / perOp
			b.ReportMetric(speedup, "f32_speedup_vs_f64")
			m["f32_speedup_vs_f64"] = speedup
		}
		sink.Record("MixedPrecision/"+key, m)
	}

	for _, n := range []int{2048, 8192} {
		st, err := lattice.Generate(lattice.Config{
			N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		p := md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
		pos := md.CoordsFromV3(st.Pos)
		mx, err := md.NewMirror32(p)
		if err != nil {
			b.Fatal(err)
		}
		acc := md.MakeCoords[float64](n)

		b.Run(fmt.Sprintf("pairlist_f64/n%d_serial", n), func(b *testing.B) {
			nl, err := md.NewNeighborList[float64](skin)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nl.Forces(p, pos, acc)
			}
			b.StopTimer()
			record(b, fmt.Sprintf("pairlist_f64_n%d_serial", n), "")
		})
		b.Run(fmt.Sprintf("pairlist_f32/n%d_serial", n), func(b *testing.B) {
			nl, err := md.NewNeighborList[float32](skin)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mx.Refresh(pos)
				md.ForcesPairlistMixed(nl, mx.P, mx.Pos, acc)
			}
			b.StopTimer()
			record(b, fmt.Sprintf("pairlist_f32_n%d_serial", n),
				fmt.Sprintf("pairlist_f64_n%d_serial", n))
		})
		b.Run(fmt.Sprintf("pairlist_f64/n%d_w%d", n, ncpu), func(b *testing.B) {
			nl, err := md.NewNeighborList[float64](skin)
			if err != nil {
				b.Fatal(err)
			}
			e := parallel.New[float64](ncpu)
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ForcesPairlist(nl, p, pos, acc)
			}
			b.StopTimer()
			record(b, fmt.Sprintf("pairlist_f64_n%d_parallel", n), "")
		})
		b.Run(fmt.Sprintf("pairlist_f32/n%d_w%d", n, ncpu), func(b *testing.B) {
			nl, err := md.NewNeighborList[float32](skin)
			if err != nil {
				b.Fatal(err)
			}
			e := parallel.New[float64](ncpu)
			defer e.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mx.Refresh(pos)
				if _, err := e.TryForcesPairlistF32(nl, mx.P, mx.Pos, acc); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			record(b, fmt.Sprintf("pairlist_f32_n%d_parallel", n),
				fmt.Sprintf("pairlist_f64_n%d_parallel", n))
		})
		b.Run(fmt.Sprintf("cellgrid_f64/n%d_serial", n), func(b *testing.B) {
			cl, err := md.NewCellList(p.Box, p.Cutoff)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cl.Forces(p, pos, acc)
			}
			b.StopTimer()
			record(b, fmt.Sprintf("cellgrid_f64_n%d_serial", n), "")
		})
		b.Run(fmt.Sprintf("cellgrid_f32/n%d_serial", n), func(b *testing.B) {
			cl, err := md.NewCellList(mx.P.Box, mx.P.Cutoff)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mx.Refresh(pos)
				md.ForcesCellMixed(cl, mx.P, mx.Pos, acc)
			}
			b.StopTimer()
			record(b, fmt.Sprintf("cellgrid_f32_n%d_serial", n),
				fmt.Sprintf("cellgrid_f64_n%d_serial", n))
		})
	}
}

// BenchmarkGuardRecovery measures the resilient run supervisor
// (internal/guard): a clean guarded run as the baseline, then a run
// that takes an injected worker panic and recovers via checkpoint
// rollback. Reported metrics are the incident/rollback counts and the
// wall-clock overhead of recovery relative to the clean run; with
// BENCH_JSON=<path> the same numbers land in the JSON-Lines bench
// trajectory.
func BenchmarkGuardRecovery(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	base := mdrun.Config{
		Atoms: 108, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: 7,
		Cutoff: 2.5, Dt: 0.004, Shifted: true,
		Method: mdrun.ParallelDirect, Workers: 2,
	}
	const steps = 30
	guardedRun := func(b *testing.B, inj faults.Injector) *guard.RunReport {
		cfg := base
		cfg.Faults = inj
		sup, err := guard.New(guard.Config{Run: cfg, CheckEvery: 5, CheckpointEvery: 10})
		if err != nil {
			b.Fatal(err)
		}
		defer sup.Close()
		_, rep, err := sup.Run(steps)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}

	// Clean baseline: supervision with nothing to survive.
	cleanNs := 0.0
	b.Run("clean", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := guardedRun(b, nil)
			if rep.Counts.Total() != 0 {
				b.Fatalf("clean run logged incidents: %v", rep)
			}
		}
		cleanNs = float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		sink.Record("GuardRecovery/clean", map[string]float64{"ns_per_op": cleanNs})
	})

	// Faulted run: one worker panic per iteration (fresh registry each
	// time so the fault re-fires), recovered by rollback + retry.
	b.Run("worker_panic_recovery", func(b *testing.B) {
		var rep *guard.RunReport
		for i := 0; i < b.N; i++ {
			inj := faults.NewRegistry(uint64(i) + 1).Arm(faults.Fault{
				Site: faults.SiteWorker, Kind: faults.Panic,
				Trigger: faults.Trigger{AtCall: 12},
			})
			rep = guardedRun(b, inj)
			if rep.Rollbacks == 0 {
				b.Fatal("fault never triggered a rollback")
			}
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(float64(rep.Counts.Total()), "incidents")
		b.ReportMetric(float64(rep.Rollbacks), "rollbacks")
		m := map[string]float64{
			"ns_per_op": perOp,
			"incidents": float64(rep.Counts.Total()),
			"rollbacks": float64(rep.Rollbacks),
		}
		if cleanNs > 0 {
			overhead := perOp / cleanNs
			b.ReportMetric(overhead, "recovery_overhead_x")
			m["recovery_overhead_x"] = overhead
		}
		sink.Record("GuardRecovery/worker_panic", m)
	})
}

// BenchmarkBatchThroughput measures the fleet scheduler end to end:
// how many supervised replicas per second a full batch sustains, and
// the shed rate once the offered load exceeds the admission queue.
// With BENCH_JSON=<path> both points land in the JSON-Lines bench
// trajectory.
func BenchmarkBatchThroughput(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	replicas := func(n int) []fleet.Replica {
		reps := make([]fleet.Replica, n)
		for i := range reps {
			cfg := mdrun.Config{
				Atoms: 108, Density: 0.8442, Temperature: 0.728,
				Lattice: lattice.FCC, Seed: uint64(100 + i),
				Cutoff: 2.2, Dt: 0.004, Shifted: true,
				Method: mdrun.Direct, Workers: 1,
			}
			reps[i] = fleet.Replica{
				ID:    i,
				Guard: guard.Config{Run: cfg, CheckEvery: 5},
				Steps: 10,
			}
		}
		return reps
	}

	// Full batch within capacity: every replica admitted and completed.
	b.Run("admitted", func(b *testing.B) {
		const n = 8
		var rep *fleet.BatchReport
		for i := 0; i < b.N; i++ {
			rep = fleet.RunBatch(context.Background(), fleet.Config{
				MaxInflight: runtime.NumCPU(), QueueDepth: n,
			}, replicas(n))
			if rep.Succeeded != n {
				b.Fatalf("batch lost replicas: %v", rep)
			}
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		rps := float64(n) / (perOp / 1e9)
		b.ReportMetric(rps, "replicas_per_sec")
		sink.Record("BatchThroughput/admitted", map[string]float64{
			"ns_per_op": perOp, "replicas_per_sec": rps, "replicas": n,
		})
	})

	// Overload: offered load far beyond the queue, so the scheduler must
	// shed rather than block. The metric is the steady-state shed rate.
	b.Run("overloaded", func(b *testing.B) {
		const n = 16
		var rep *fleet.BatchReport
		for i := 0; i < b.N; i++ {
			rep = fleet.RunBatch(context.Background(), fleet.Config{
				MaxInflight: 1, QueueDepth: 1,
			}, replicas(n))
			if rep.Shed == 0 {
				b.Fatal("overload never shed")
			}
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		done := rep.Succeeded + rep.Recovered
		rps := float64(done) / (perOp / 1e9)
		shedRate := float64(rep.Shed) / float64(rep.Total)
		b.ReportMetric(rps, "replicas_per_sec")
		b.ReportMetric(shedRate, "shed_rate")
		sink.Record("BatchThroughput/overloaded", map[string]float64{
			"ns_per_op": perOp, "replicas_per_sec": rps,
			"shed_rate": shedRate, "replicas": n,
		})
	})
}

// BenchmarkServeThroughput measures the mdserve serving layer end to
// end through its HTTP handler: jobs per second for a fully admitted
// batch, and the flood-isolation arms the tenancy pin rests on — a
// quiet tenant's admission latency (p50/p99 of POST /v1/jobs) measured
// alone and again with a neighbor tenant flooding at 10x its quota,
// plus the flooder's 429 rate. With BENCH_JSON=<path> every point
// lands in the JSON-Lines bench trajectory (BENCH_PR7.json).
func BenchmarkServeThroughput(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	newServer := func(b *testing.B, tp serve.TenantPolicy) (*serve.Server, http.Handler) {
		srv, err := serve.NewServer(serve.Config{
			DataDir: b.TempDir(),
			Fleet: fleet.Config{
				MaxInflight: runtime.NumCPU(), QueueDepth: 64,
				WorkerBudget: runtime.NumCPU(),
			},
			Tenancy: tp,
		})
		if err != nil {
			b.Fatal(err)
		}
		return srv, srv.Handler()
	}
	drain := func(b *testing.B, srv *serve.Server) {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			b.Fatal(err)
		}
	}

	// A small standard job: big enough to exercise the full admit ->
	// run -> checkpoint -> report path, small enough that throughput
	// measures the serving layer rather than the MD kernel.
	spec := []byte(`{"atoms": 108, "steps": 10, "thermostat": "rescale", "checkpoint_every": 50}`)
	post := func(h http.Handler, tenant string) (int, string, time.Duration) {
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(spec))
		req.Header.Set("X-Tenant", tenant)
		w := httptest.NewRecorder()
		start := time.Now()
		h.ServeHTTP(w, req)
		elapsed := time.Since(start)
		var resp struct {
			ID string `json:"id"`
		}
		_ = json.Unmarshal(w.Body.Bytes(), &resp)
		return w.Code, resp.ID, elapsed
	}
	await := func(b *testing.B, h http.Handler, id string) {
		deadline := time.Now().Add(30 * time.Second)
		for {
			req := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+id+"/report", nil)
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code == http.StatusOK {
				return
			}
			if time.Now().After(deadline) {
				b.Fatalf("job %s never reached a terminal report", id)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Fully admitted batch: n jobs from one tenant with quota headroom,
	// submitted and awaited through the handler.
	b.Run("admitted", func(b *testing.B) {
		const n = 8
		srv, h := newServer(b, serve.TenantPolicy{Rate: 1e6, Burst: 1e6, MaxActive: n})
		defer drain(b, srv)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ids := make([]string, 0, n)
			for j := 0; j < n; j++ {
				code, id, _ := post(h, "bench")
				if code != http.StatusAccepted {
					b.Fatalf("submit %d: HTTP %d", j, code)
				}
				ids = append(ids, id)
			}
			for _, id := range ids {
				await(b, h, id)
			}
		}
		b.StopTimer()
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		jps := float64(n) / (perOp / 1e9)
		b.ReportMetric(jps, "jobs_per_sec")
		sink.Record("ServeThroughput/admitted", map[string]float64{
			"ns_per_op": perOp, "jobs_per_sec": jps, "jobs": n,
		})
	})

	// quantileMs picks the q-th latency from a sample, in milliseconds.
	quantileMs := func(lats []time.Duration, q float64) float64 {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return float64(lats[int(q*float64(len(lats)-1))].Nanoseconds()) / 1e6
	}

	// floodArm measures the quiet tenant's admission latencies over a
	// paced submission train, optionally with a flooding neighbor
	// offering 10x the 200/s quota; it returns the quiet latencies and
	// the flooder's rejection rate.
	floodArm := func(b *testing.B, flood bool) ([]time.Duration, float64) {
		srv, h := newServer(b, serve.TenantPolicy{Rate: 200, Burst: 20, MaxActive: 16})
		defer drain(b, srv)
		stop := make(chan struct{})
		var wg sync.WaitGroup
		var floodTotal, floodRejected int
		if flood {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					code, _, _ := post(h, "flooder")
					floodTotal++
					if code == http.StatusTooManyRequests {
						floodRejected++
					}
					time.Sleep(500 * time.Microsecond) // ~2000/s offered = 10x quota
				}
			}()
		}
		var lats []time.Duration
		for j := 0; j < 40; j++ {
			code, _, d := post(h, "quiet")
			if code != http.StatusAccepted {
				b.Fatalf("quiet submit %d: HTTP %d", j, code)
			}
			lats = append(lats, d)
			time.Sleep(10 * time.Millisecond) // 100/s, half the quota rate
		}
		close(stop)
		wg.Wait()
		rejectRate := 0.0
		if floodTotal > 0 {
			rejectRate = float64(floodRejected) / float64(floodTotal)
		}
		return lats, rejectRate
	}

	// Flood isolation: the quiet tenant's p50/p99 admission latency must
	// not move when the neighbor floods — the serve tests pin the hard
	// guarantees (no quiet 429s); this records the latency evidence.
	b.Run("flood_isolation", func(b *testing.B) {
		var aloneP50, aloneP99, floodP50, floodP99, rejectRate float64
		for i := 0; i < b.N; i++ {
			alone, _ := floodArm(b, false)
			flooded, rr := floodArm(b, true)
			aloneP50, aloneP99 = quantileMs(alone, 0.5), quantileMs(alone, 0.99)
			floodP50, floodP99 = quantileMs(flooded, 0.5), quantileMs(flooded, 0.99)
			rejectRate = rr
		}
		b.ReportMetric(aloneP99, "quiet_alone_p99_ms")
		b.ReportMetric(floodP99, "quiet_flooded_p99_ms")
		b.ReportMetric(rejectRate, "flood_reject_rate")
		sink.Record("ServeThroughput/flood_isolation", map[string]float64{
			"quiet_alone_p50_ms":   aloneP50,
			"quiet_alone_p99_ms":   aloneP99,
			"quiet_flooded_p50_ms": floodP50,
			"quiet_flooded_p99_ms": floodP99,
			"flood_reject_rate":    rejectRate,
		})
	})
}

// ---- Substrate micro-benchmarks (real wall-clock numbers) ----

// BenchmarkForceKernelReference measures the functional cost of the
// reference double-precision force evaluation.
func BenchmarkForceKernelReference(b *testing.B) {
	st, err := lattice.Generate(lattice.Config{
		N: benchAtoms, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.ComputeForces(sys.P, sys.Pos, sys.Acc)
	}
}

// BenchmarkForceKernelFloat32 measures the single-precision variant.
func BenchmarkForceKernelFloat32(b *testing.B) {
	st, err := lattice.Generate(lattice.Config{
		N: benchAtoms, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := md.Params[float32]{Box: float32(st.Box), Cutoff: 2.5, Dt: 0.004}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		md.ComputeForces(sys.P, sys.Pos, sys.Acc)
	}
}

// BenchmarkSPEKernelEmulation measures the emulated SPE kernel (the
// per-operation-accounted path behind Figures 5/6).
func BenchmarkSPEKernelEmulation(b *testing.B) {
	w, err := core.StandardWorkload(256, 1)
	if err != nil {
		b.Fatal(err)
	}
	proc, err := cell.New(cell.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := proc.AccelKernelTime(w, cell.SIMDAccel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCacheSimulator measures the set-associative cache model.
func BenchmarkCacheSimulator(b *testing.B) {
	c, err := cache.New(cache.Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i*24) % (512 * 1024))
	}
}

// BenchmarkSIMDEmulation measures the 4-lane vector ops of the SPE
// model.
func BenchmarkSIMDEmulation(b *testing.B) {
	var ctx spu.Context
	x := spu.V4{1, 2, 3, 4}
	y := spu.V4{5, 6, 7, 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x = ctx.VMadd(x, y, x)
	}
	_ = x
}

// BenchmarkMinImage measures the three minimum-image formulations.
func BenchmarkMinImage(b *testing.B) {
	d := vec.V3[float64]{X: 6.1, Y: -5.9, Z: 0.3}
	const box = 10.0
	b.Run("branch", func(b *testing.B) {
		var sink vec.V3[float64]
		for i := 0; i < b.N; i++ {
			sink = md.MinImage(d, box)
		}
		_ = sink
	})
	b.Run("copysign", func(b *testing.B) {
		var sink vec.V3[float64]
		for i := 0; i < b.N; i++ {
			sink = md.MinImageCopysign(d, box)
		}
		_ = sink
	})
	b.Run("cells27", func(b *testing.B) {
		var sink vec.V3[float64]
		for i := 0; i < b.N; i++ {
			sink = md.MinImage27(d, box)
		}
		_ = sink
	})
}

// ---- Extension benches: related work and future work ----

// BenchmarkExtSmithWaterman runs the related-work Smith-Waterman ports
// on both devices, reporting their modeled runtimes.
func BenchmarkExtSmithWaterman(b *testing.B) {
	rng := xrand.New(1984)
	const n = 256
	a := make([]byte, n)
	c := make([]byte, n)
	for i := 0; i < n; i++ {
		a[i] = "ACGT"[rng.Intn(4)]
		c[i] = "ACGT"[rng.Intn(4)]
	}
	b.Run("gpu", func(b *testing.B) {
		dev, err := gpu.New(gpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		var sec float64
		for i := 0; i < b.N; i++ {
			_, bd, err := seqalign.SWGPU(dev, a, c, seqalign.DefaultScoring())
			if err != nil {
				b.Fatal(err)
			}
			sec = bd.Total()
		}
		b.ReportMetric(sec, "model_sec")
	})
	b.Run("mta", func(b *testing.B) {
		m, err := mta.New(mta.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		var sec float64
		for i := 0; i < b.N; i++ {
			_, bd, err := seqalign.SWMTA(m, a, c, seqalign.DefaultScoring())
			if err != nil {
				b.Fatal(err)
			}
			sec = bd.Total()
		}
		b.ReportMetric(sec, "model_sec")
	})
}

// BenchmarkExtXMTProjection reports the future-work XMT speedup for
// one processor at varying locality.
func BenchmarkExtXMTProjection(b *testing.B) {
	for _, locality := range []float64{1.0, 0.5, 0.0} {
		b.Run(fmt.Sprintf("locality%.0f", locality*100), func(b *testing.B) {
			var s float64
			var err error
			for i := 0; i < b.N; i++ {
				s, err = mta.XMTProjection(0.12, 1, locality)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(s, "model_speedup")
		})
	}
}

// BenchmarkExtSWDatabaseScan contrasts per-pair wavefront alignment
// with whole-database scanning on the GPU (the related work's actual
// workload).
func BenchmarkExtSWDatabaseScan(b *testing.B) {
	dev, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(4)
	query := make([]byte, 64)
	for i := range query {
		query[i] = "ACGT"[rng.Intn(4)]
	}
	db := make([][]byte, 32)
	for i := range db {
		db[i] = make([]byte, 64)
		for j := range db[i] {
			db[i][j] = "ACGT"[rng.Intn(4)]
		}
	}
	b.Run("scan", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			_, bd, err := seqalign.SWGPUScan(dev, query, db, seqalign.DefaultScoring())
			if err != nil {
				b.Fatal(err)
			}
			sec = bd.Total()
		}
		b.ReportMetric(sec, "model_sec")
	})
	b.Run("per_pair", func(b *testing.B) {
		var sec float64
		for i := 0; i < b.N; i++ {
			sec = 0
			for _, s := range db {
				_, bd, err := seqalign.SWGPU(dev, query, s, seqalign.DefaultScoring())
				if err != nil {
					b.Fatal(err)
				}
				sec += bd.Total()
			}
		}
		b.ReportMetric(sec, "model_sec")
	})
}

// BenchmarkAblationPrecisionDrift quantifies the float32-vs-float64
// energy divergence the paper flags as the Cell/GPU "outstanding
// issue": the reported metric is the relative PE difference after the
// run.
func BenchmarkAblationPrecisionDrift(b *testing.B) {
	for _, steps := range []int{10, 100} {
		b.Run(fmt.Sprintf("steps%d", steps), func(b *testing.B) {
			st, err := lattice.Generate(lattice.Config{
				N: 256, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 17,
			})
			if err != nil {
				b.Fatal(err)
			}
			var drift float64
			for i := 0; i < b.N; i++ {
				s64, err := md.NewSystem(st, md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004})
				if err != nil {
					b.Fatal(err)
				}
				s32, err := md.NewSystem(st, md.Params[float32]{Box: float32(st.Box), Cutoff: 2.5, Dt: 0.004})
				if err != nil {
					b.Fatal(err)
				}
				s64.Run(steps)
				s32.Run(steps)
				drift = math.Abs(float64(s32.PE)-s64.PE) / math.Abs(s64.PE)
			}
			b.ReportMetric(drift, "rel_pe_drift")
		})
	}
}

// BenchmarkAblationProgrammingModel contrasts the paper's asynchronous
// task-parallel model with the OpenMP-like data-parallel model that
// the related work (Williams et al.) evaluates exclusively.
func BenchmarkAblationProgrammingModel(b *testing.B) {
	for _, model := range []cell.Model{cell.TaskParallel, cell.DataParallel} {
		b.Run(model.String(), func(b *testing.B) {
			w, err := core.StandardWorkload(benchAtoms, core.PaperSteps)
			if err != nil {
				b.Fatal(err)
			}
			cfg := cell.DefaultConfig()
			cfg.Model = model
			dev, err := cell.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				res, err := dev.Run(w)
				if err != nil {
					b.Fatal(err)
				}
				sec = res.Seconds()
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkAblationBranchHints asks the what-if of Figure 5's first
// rung: how much of the Original kernel's cost is the SPE's missing
// branch prediction? Halving the taken-branch penalty (as compiler
// branch hints achieve on hot loops) closes part of the gap to the
// copysign variant.
func BenchmarkAblationBranchHints(b *testing.B) {
	w, err := core.StandardWorkload(benchAtoms, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, hinted := range []bool{false, true} {
		name := "no_hints"
		cfg := cell.DefaultConfig()
		if hinted {
			name = "hinted"
			cfg.SPECosts[sim.OpBranchMiss] = 9 // hint resolves half the flush
		}
		b.Run(name, func(b *testing.B) {
			proc, err := cell.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			var sec float64
			for i := 0; i < b.N; i++ {
				sec, err = proc.AccelKernelTime(w, cell.Original)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(sec, "model_sec")
		})
	}
}

// BenchmarkChaosOverhead prices the chaos PR's filesystem seam on the
// serving hot path: the same admit -> run -> checkpoint -> report
// pipeline with the store going through plain os calls (FS unset)
// versus the fault-injection seam armed with an empty registry (every
// operation pays the indirection plus a per-site counter, no fault
// ever fires). The acceptance bound is <5% wall overhead — production
// binaries keep the seam disarmed, so this measures what shipping the
// testability hook costs when it is merely present. Set
// BENCH_JSON=<path> to append the machine-readable record.
func BenchmarkChaosOverhead(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	// Dense checkpoints so the measured pipeline is store-heavy: per
	// job one spec write, six checkpoint commits, one terminal record.
	spec := []byte(`{"atoms": 108, "steps": 12, "thermostat": "rescale", "checkpoint_every": 2, "keep_checkpoints": 3}`)
	const jobsPerRound = 4
	round := func(b *testing.B, fs fsys.FS) time.Duration {
		srv, err := serve.NewServer(serve.Config{
			DataDir: b.TempDir(),
			Fleet: fleet.Config{
				MaxInflight: 1, QueueDepth: jobsPerRound, WorkerBudget: 1, JitterSeed: 1,
			},
			Tenancy: serve.TenantPolicy{Rate: 1e6, Burst: 1e6, MaxActive: jobsPerRound},
			FS:      fs,
		})
		if err != nil {
			b.Fatal(err)
		}
		h := srv.Handler()
		start := time.Now()
		for j := 0; j < jobsPerRound; j++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/jobs", bytes.NewReader(spec))
			req.Header.Set("X-Tenant", "bench")
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusAccepted {
				b.Fatalf("submit %d: HTTP %d", j, w.Code)
			}
			var resp struct {
				ID string `json:"id"`
			}
			_ = json.Unmarshal(w.Body.Bytes(), &resp)
			deadline := time.Now().Add(30 * time.Second)
			for {
				rreq := httptest.NewRequest(http.MethodGet, "/v1/jobs/"+resp.ID+"/report", nil)
				rw := httptest.NewRecorder()
				h.ServeHTTP(rw, rreq)
				if rw.Code == http.StatusOK {
					break
				}
				if time.Now().After(deadline) {
					b.Fatalf("job %s never reached a terminal report", resp.ID)
				}
				time.Sleep(time.Millisecond)
			}
		}
		elapsed := time.Since(start)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			b.Fatal(err)
		}
		return elapsed
	}

	// One untimed round per arm first: page cache, code paths, and the
	// tmpfs allocator warm up outside the measurement.
	_ = round(b, nil)
	_ = round(b, fsys.Faulty(fsys.OS, faults.NewRegistry(1)))

	var direct, seam time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Interleave the arms so machine noise hits both equally.
		direct += round(b, nil)
		seam += round(b, fsys.Faulty(fsys.OS, faults.NewRegistry(1)))
	}
	b.StopTimer()
	dSec := direct.Seconds() / float64(b.N)
	sSec := seam.Seconds() / float64(b.N)
	overheadPct := (sSec/dSec - 1) * 100
	b.ReportMetric(dSec, "direct_sec")
	b.ReportMetric(sSec, "seam_sec")
	b.ReportMetric(overheadPct, "overhead_pct")
	sink.Record("ChaosOverhead/seam-vs-direct", map[string]float64{
		"direct_sec": dSec, "seam_sec": sSec, "overhead_pct": overheadPct,
	})
}

// BenchmarkStepAllocs pins the PR-10 arena contract: once a method's
// lazily sized scratch (neighbor rows, CSR bins, f32 mirror) has been
// populated by warmup steps, steady-state stepping performs zero
// per-step heap allocation. Run with -benchmem; scripts/verify.sh
// fails the gate on any arm reporting allocs/op > 0. Each arm also
// reports step_ns_per_atom, and with BENCH_JSON=<path> records it to
// the cross-PR bench trajectory (BENCH_PR10.json).
func BenchmarkStepAllocs(b *testing.B) {
	sink := report.NewBenchSink()
	defer func() {
		path := os.Getenv("BENCH_JSON")
		if path == "" || sink.Len() == 0 {
			return
		}
		f, err := os.OpenFile(path, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			b.Logf("BENCH_JSON: %v", err)
			return
		}
		defer f.Close()
		if err := sink.WriteJSON(f); err != nil {
			b.Logf("BENCH_JSON: %v", err)
		}
	}()

	const n = 2048
	newSys := func(b *testing.B) *md.System[float64] {
		st, err := lattice.Generate(lattice.Config{
			N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 7,
		})
		if err != nil {
			b.Fatal(err)
		}
		s, err := md.NewSystem(st, md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}

	// arms maps a method name to a constructor returning the per-step
	// advance. Warmup runs before the timer so one-time sizing (first
	// list build, CSR grow, mirror fill) never lands in the window.
	arms := []struct {
		name  string
		setup func(b *testing.B, s *md.System[float64]) func()
	}{
		{"direct_serial", func(b *testing.B, s *md.System[float64]) func() {
			return s.Step
		}},
		{"cellgrid_serial", func(b *testing.B, s *md.System[float64]) func() {
			cl, err := md.NewCellList(s.P.Box, s.P.Cutoff)
			if err != nil {
				b.Fatal(err)
			}
			return func() {
				s.StepWith(func() float64 { return cl.Forces(s.P, s.Pos, s.Acc) })
			}
		}},
		{"pairlist_serial", func(b *testing.B, s *md.System[float64]) func() {
			nl, err := md.NewNeighborList[float64](0.4)
			if err != nil {
				b.Fatal(err)
			}
			return func() {
				s.StepWith(func() float64 {
					if nl.Stale(s.P, s.Pos) {
						nl.Build(s.P, s.Pos)
					}
					return nl.Forces(s.P, s.Pos, s.Acc)
				})
			}
		}},
		{"pairlist_f32_mixed", func(b *testing.B, s *md.System[float64]) func() {
			mx, err := md.NewMirror32(s.P)
			if err != nil {
				b.Fatal(err)
			}
			nl, err := md.NewNeighborList[float32](0.4)
			if err != nil {
				b.Fatal(err)
			}
			return func() {
				s.StepWith(func() float64 {
					mx.RefreshSystem(s)
					if nl.Stale(mx.P, mx.Pos) {
						nl.Build(mx.P, mx.Pos)
					}
					return md.ForcesPairlistMixed(nl, mx.P, mx.Pos, s.Acc)
				})
			}
		}},
		{"cellgrid_f32_mixed", func(b *testing.B, s *md.System[float64]) func() {
			mx, err := md.NewMirror32(s.P)
			if err != nil {
				b.Fatal(err)
			}
			cl, err := md.NewCellList(mx.P.Box, mx.P.Cutoff)
			if err != nil {
				b.Fatal(err)
			}
			return func() {
				s.StepWith(func() float64 {
					mx.RefreshSystem(s)
					return md.ForcesCellMixed(cl, mx.P, mx.Pos, s.Acc)
				})
			}
		}},
	}

	for _, arm := range arms {
		b.Run(fmt.Sprintf("%s_n%d", arm.name, n), func(b *testing.B) {
			s := newSys(b)
			step := arm.setup(b, s)
			for i := 0; i < 200; i++ { // warmup: size lists and let per-row
				step() // capacities converge across several rebuilds
			}
			b.ReportAllocs()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				step()
			}
			perAtom := float64(time.Since(start).Nanoseconds()) / float64(b.N) / float64(n)
			b.ReportMetric(perAtom, "ns/atom")
			sink.Record(fmt.Sprintf("StepAllocs/%s_n%d", arm.name, n),
				map[string]float64{"step_ns_per_atom": perAtom})
		})
	}
}
