// Liquidargon is a small production-style study built on the mdrun
// framework layer (the "full-scale framework" direction of the paper's
// future plans): equilibrate a Lennard-Jones liquid with a Berendsen
// thermostat, switch to NVE production, and report the observables a
// simulation user actually wants — mean temperature, pressure, mean-
// square displacement, and the radial distribution function.
//
//	go run ./examples/liquidargon
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/lattice"
	"repro/internal/mdrun"
)

func main() {
	cfg := mdrun.Config{
		Atoms:       500,
		Density:     0.8442,
		Temperature: 0.728,
		Lattice:     lattice.FCC,
		Seed:        2007,
		Cutoff:      2.5,
		Dt:          0.004,
		Shifted:     true,
		Method:      mdrun.CellGrid, // O(N): the production choice
		Thermostat:  mdrun.Berendsen,
		SampleRDF:   true,
		SampleEvery: 5,
	}
	r, err := mdrun.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Equilibration (Berendsen, 400 steps) ==")
	eq, err := r.Run(400)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean T %.4f (target %.4f)   E %.2f -> %.2f (thermostat removes the lattice's excess)\n",
		eq.MeanTemperature, cfg.Temperature, eq.InitialEnergy, eq.FinalEnergy)

	// Production: fresh runner continuing in NVE would need state carry;
	// here we keep the same runner but the thermostat stays on (weak
	// coupling) — standard practice for liquid-state sampling.
	fmt.Println("\n== Production (600 steps, sampling every 5) ==")
	prod, err := r.Run(600)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  mean T      %.4f\n", prod.MeanTemperature)
	fmt.Printf("  pressure    %.4f (reduced units; LJ liquid at this state point is near ~0-1)\n", prod.Pressure)
	fmt.Printf("  MSD         %.4f σ² over the whole run\n", prod.MSD)

	fmt.Println("\n== Radial distribution function g(r) ==")
	// A text sketch: one row per bin group.
	const rows = 16
	per := len(prod.RDF) / rows
	var maxG float64
	for _, g := range prod.RDF {
		if g > maxG {
			maxG = g
		}
	}
	for r0 := 0; r0 < rows; r0++ {
		var g, c float64
		for k := r0 * per; k < (r0+1)*per && k < len(prod.RDF); k++ {
			g += prod.RDF[k]
			c = prod.RDFCenters[k]
		}
		g /= float64(per)
		bar := int(g / maxG * 40)
		fmt.Printf("  r=%4.2f |%s %.2f\n", c, strings.Repeat("#", bar), g)
	}
	fmt.Println("\nthe first peak near r≈1.1σ and the depleted core are the liquid's signature;")
	fmt.Println("the same structure holds whichever force method computes it (direct, pairlist, cellgrid).")
}
