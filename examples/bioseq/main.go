// Bioseq runs the sequence-alignment algorithms from the paper's
// related work (section 4) on the modeled devices: Smith-Waterman on
// the GPU stream processor (W. Liu et al.; Y. Liu et al.) and on the
// Cray MTA-2 (Bokhari & Sauer), with the CPU reference as the oracle.
// It prints an alignment, then compares the modeled runtimes and their
// structure across sequence lengths.
//
//	go run ./examples/bioseq
package main

import (
	"fmt"
	"log"

	"repro/internal/gpu"
	"repro/internal/mta"
	"repro/internal/report"
	"repro/internal/seqalign"
	"repro/internal/xrand"
)

func main() {
	fmt.Println("== A local alignment, end to end ==")
	sc := seqalign.Scoring{Match: 3, Mismatch: -3, Gap: -2}
	a := []byte("TGTTACGG")
	b := []byte("GGTTGACTA")
	al, err := seqalign.SWAlign(a, b, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n  %s\n  score %d, identity %.0f%%\n",
		al.AlignedA, al.AlignedB, al.Score, 100*al.Identity())

	gdev, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	mdev, err := mta.New(mta.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== Devices agree on the score, disagree on the cost ==")
	fmt.Printf("%8s  %8s  %14s  %14s\n", "length", "score", "GPU (modeled)", "MTA (modeled)")
	rng := xrand.New(2007)
	for _, n := range []int{32, 128, 512} {
		sa := randomSeq(rng, n)
		sb := randomSeq(rng, n)
		ref, err := seqalign.SWScore(sa, sb, seqalign.DefaultScoring())
		if err != nil {
			log.Fatal(err)
		}
		gScore, gbd, err := seqalign.SWGPU(gdev, sa, sb, seqalign.DefaultScoring())
		if err != nil {
			log.Fatal(err)
		}
		mScore, mbd, err := seqalign.SWMTA(mdev, sa, sb, seqalign.DefaultScoring())
		if err != nil {
			log.Fatal(err)
		}
		if gScore != ref || mScore != ref {
			log.Fatalf("score mismatch at n=%d: ref %d, gpu %d, mta %d", n, ref, gScore, mScore)
		}
		fmt.Printf("%8d  %8d  %14s  %14s\n", n, ref,
			report.Seconds(gbd.Total()), report.Seconds(mbd.Total()))
	}
	fmt.Println("\nthe GPU pays one dispatch per anti-diagonal (2n-1 of them), so short")
	fmt.Println("pairs are overhead-bound — which is why the published GPU alignment")
	fmt.Println("work scans whole databases; the MTA's fine-grained streams eat the")
	fmt.Println("wavefront directly, losing only on the short head/tail diagonals.")

	fmt.Println("\n== Database scanning: the formulation that makes GPUs win ==")
	// One shader invocation per subject, one dispatch for the whole
	// database — versus one dispatch per anti-diagonal per pair.
	query := randomSeq(rng, 64)
	db := make([][]byte, 48)
	for i := range db {
		db[i] = randomSeq(rng, 64)
	}
	hits, scanBD, err := seqalign.SWGPUScan(gdev, query, db, seqalign.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	var pairwise float64
	for _, s := range db {
		_, bd, err := seqalign.SWGPU(gdev, query, s, seqalign.DefaultScoring())
		if err != nil {
			log.Fatal(err)
		}
		pairwise += bd.Total()
	}
	fmt.Printf("  48 subjects, per-pair wavefront: %s   database scan: %s   (%.0fx)\n",
		report.Seconds(pairwise), report.Seconds(scanBD.Total()), pairwise/scanBD.Total())
	best := seqalign.TopHits(hits, 1)[0]
	fmt.Printf("  best hit: subject %d, score %d\n", best.Index, best.Score)

	fmt.Println("\n== Where the GPU's time goes (n=512, per-pair mode) ==")
	sa := randomSeq(rng, 512)
	sb := randomSeq(rng, 512)
	_, gbd, err := seqalign.SWGPU(gdev, sa, sb, seqalign.DefaultScoring())
	if err != nil {
		log.Fatal(err)
	}
	for _, label := range gbd.Labels() {
		fmt.Printf("  %-18s %s\n", label, report.Seconds(gbd.Component(label)))
	}
}

func randomSeq(rng *xrand.Source, n int) []byte {
	const alphabet = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(4)]
	}
	return s
}
