// Quickstart: build an initial condition, run the reference
// molecular-dynamics kernel (Lennard-Jones + velocity Verlet, exactly
// the paper's Figure 4 pseudo-code), and watch the conserved quantities.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/lattice"
	"repro/internal/md"
)

func main() {
	// 864 atoms of reduced-units Lennard-Jones liquid on an FCC
	// lattice: the classic argon-like state point.
	state, err := lattice.Generate(lattice.Config{
		N:           864,
		Density:     0.8442,
		Temperature: 0.728,
		Kind:        lattice.FCC,
		Seed:        7,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The shifted potential keeps total energy continuous at the
	// cutoff, so conservation is easy to see.
	sys, err := md.NewSystem(state, md.Params[float64]{
		Box:     state.Box,
		Cutoff:  2.5,
		Dt:      0.004,
		Shifted: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("box %.4f, %d atoms, density %.4f\n", state.Box, sys.N(),
		float64(sys.N())/(state.Box*state.Box*state.Box))
	fmt.Printf("%6s  %14s  %14s  %14s  %10s\n", "step", "potential", "kinetic", "total", "temp")

	e0 := sys.TotalEnergy()
	for step := 0; step <= 200; step += 20 {
		fmt.Printf("%6d  %14.6f  %14.6f  %14.6f  %10.4f\n",
			sys.Steps, sys.PE, sys.KE, sys.TotalEnergy(), sys.Temperature())
		sys.Run(20)
	}
	drift := (sys.TotalEnergy() - e0) / e0
	fmt.Printf("\nrelative energy drift over %d steps: %.2e\n", sys.Steps, drift)
	mom := sys.Momentum()
	fmt.Printf("net momentum: (%.2e, %.2e, %.2e) — conserved at ~machine epsilon\n",
		mom.X, mom.Y, mom.Z)
}
