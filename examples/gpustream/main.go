// Gpustream demonstrates the stream-programming model the paper's GPU
// port lives under (sections 3.2 and 5.2): gather-only shaders with one
// output location each, read-only input textures, the potential energy
// riding home in the fourth float4 component, and the PCIe costs that
// hand small systems to the CPU (Figure 7's crossover).
//
//	go run ./examples/gpustream
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/report"
)

func main() {
	fmt.Println("== The streaming restrictions ==")
	demoRestrictions()

	fmt.Println("\n== The CPU/GPU crossover (Figure 7's shape) ==")
	g, err := core.NewGPU()
	if err != nil {
		log.Fatal(err)
	}
	cpu := core.NewOpteron()
	const steps = 10
	fmt.Printf("%8s  %12s  %12s  %s\n", "atoms", "Opteron", "GPU", "winner")
	for _, n := range []int{64, 128, 256, 512, 1024, 2048} {
		w, err := core.StandardWorkload(n, steps)
		if err != nil {
			log.Fatal(err)
		}
		rc, err := cpu.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		rg, err := g.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		winner := "GPU"
		if rc.Seconds() < rg.Seconds() {
			winner = "Opteron"
		}
		fmt.Printf("%8d  %12s  %12s  %s\n", n,
			report.Seconds(rc.Seconds()), report.Seconds(rg.Seconds()), winner)
	}
	fmt.Println("\nsmall systems lose to the per-step PCIe + dispatch overhead;")
	fmt.Println("large systems win on the massively parallel pipelines.")

	fmt.Println("\n== Where a 2048-atom GPU step goes ==")
	w, err := core.StandardWorkload(2048, steps)
	if err != nil {
		log.Fatal(err)
	}
	res, err := g.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	for _, label := range res.Time.Labels() {
		fmt.Printf("  %-9s %s\n", label, report.Seconds(res.Time.Component(label)))
	}
}

// demoRestrictions shows the framework enforcing the paper's "design
// challenges": binding limits and gather-only data flow.
func demoRestrictions() {
	// 1. A shader's only output is its return value — one location,
	//    fixed before execution. There is no API to write anywhere else.
	doubler := gpu.ShaderFunc(func(s *gpu.Sampler, i int) gpu.Float4 {
		v := s.Fetch("in", i)
		s.ALU(1)
		return gpu.Float4{2 * v[0], 2 * v[1], 2 * v[2], 2 * v[3]}
	})
	in := gpu.NewTexture("in", []gpu.Float4{{1}, {2}, {3}})
	if _, err := gpu.NewPass(doubler, 3, in); err != nil {
		log.Fatal(err)
	}
	fmt.Println("  gather-only shader bound: output = one float4 per invocation ✓")

	// 2. Input textures are copies: mutating host memory after upload
	//    cannot change what the shader reads.
	host := []gpu.Float4{{42}}
	tex := gpu.NewTexture("t", host)
	host[0][0] = -1
	_ = tex
	fmt.Println("  inputs are read-only device copies, immune to host mutation ✓")

	// 3. The binding limit is enforced.
	many := make([]*gpu.Texture, gpu.MaxBoundTextures+1)
	for i := range many {
		many[i] = gpu.NewTexture(fmt.Sprintf("t%d", i), []gpu.Float4{{}})
	}
	if _, err := gpu.NewPass(doubler, 1, many...); err != nil {
		fmt.Printf("  binding %d textures rejected: %v ✓\n", len(many), err)
	} else {
		log.Fatal("binding limit not enforced")
	}
}
