// Mtascaling retells the paper's MTA-2 story (section 5.3): the
// compiler refuses to multithread the force loop because of its
// reduction, the paper's restructuring + directive fixes it, the fully
// multithreaded kernel then crushes the partially multithreaded one
// (Figure 8), and the cache-less machine scales smoothly with workload
// size while the Opteron bends (Figure 9). A full/empty-bit reduction
// rounds out the tour.
//
//	go run ./examples/mtascaling
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mta"
	"repro/internal/report"
)

func main() {
	fmt.Println("== The compiler's verdict on the force loop ==")
	original := mta.ForceLoopSpec(false)
	fmt.Printf("  original source:    %s\n", mta.Diagnose(original))
	half := original
	half.Restructured = true
	fmt.Printf("  restructured only:  %s\n", mta.Diagnose(half))
	fixed := mta.ForceLoopSpec(true)
	if mta.Parallelizes(fixed) {
		fmt.Println("  restructured + #pragma mta assert no dependence: parallelized ✓")
	}

	fmt.Println("\n== Figure 8: what that single loop costs (10 steps) ==")
	full, err := core.NewMTA(mta.FullyThreaded)
	if err != nil {
		log.Fatal(err)
	}
	part, err := core.NewMTA(mta.PartiallyThreaded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s  %16s  %20s  %s\n", "atoms", "fully threaded", "partially threaded", "gap")
	for _, n := range []int{256, 512, 1024, 2048} {
		w, err := core.StandardWorkload(n, 10)
		if err != nil {
			log.Fatal(err)
		}
		rf, err := full.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		rp, err := part.Run(w)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%8d  %16s  %20s  %.0fx\n", n,
			report.Seconds(rf.Seconds()), report.Seconds(rp.Seconds()),
			rp.Seconds()/rf.Seconds())
	}

	fmt.Println("\n== Figure 9: workload scaling, MTA vs Opteron (normalized to 256 atoms) ==")
	rows, err := core.Fig9([]int{256, 1024, 4096}, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%8s  %10s  %10s\n", "atoms", "MTA", "Opteron")
	for _, r := range rows {
		fmt.Printf("%8d  %10.1f  %10.1f\n", r.N, r.MTARel, r.OpteronRel)
	}
	fmt.Println("the Opteron grows faster once its arrays fall out of L1; the MTA has no caches to fall out of.")

	fmt.Println("\n== Full/empty bits: the MTA's word-level synchronization ==")
	mem := mta.NewFEMemory(1)
	if err := mem.WriteXF(0, 0); err != nil {
		log.Fatal(err)
	}
	// Many logical streams accumulating into one synchronized word.
	for stream := 1; stream <= 128; stream++ {
		if err := mem.AtomicAdd(0, float64(stream)); err != nil {
			log.Fatal(err)
		}
	}
	sum, err := mem.ReadFF(0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  128 streams accumulated sum(1..128) = %.0f via ReadFE/WriteEF pairs (%d sync ops)\n",
		sum, mem.SyncOps())
	// And the deadlock detection that keeps serial simulations honest:
	if _, err := mem.ReadFE(0); err == nil {
		if _, err := mem.ReadFE(0); err != nil {
			fmt.Printf("  second consume without a producer: %v ✓\n", err)
		}
	}
}
