// Cellport walks the paper's Cell Broadband Engine porting story end to
// end (section 5.1): the six SIMD-optimization rungs of the SPE
// acceleration kernel (Figure 5), then the thread-launch amortization
// that makes eight SPEs scale (Figure 6), ending at the Table 1
// configuration.
//
//	go run ./examples/cellport
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/report"
)

func main() {
	const atoms, steps = 1024, 10
	w, err := core.StandardWorkload(atoms, steps)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Step 1: SIMD-optimize the acceleration kernel on one SPE ==")
	fmt.Println("(each rung computes identical physics; only the instruction mix changes)")
	proc, err := cell.New(cell.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	w1 := w
	w1.Steps = 1
	labels := []string{}
	values := []float64{}
	for v := cell.Variant(0); v < cell.NumVariants; v++ {
		sec, err := proc.AccelKernelTime(w1, v)
		if err != nil {
			log.Fatal(err)
		}
		labels = append(labels, v.String())
		values = append(values, sec)
	}
	if err := report.BarChart(os.Stdout, "", labels, values, 40); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cumulative speedup original -> simd-accel: %.2fx\n", values[0]/values[len(values)-1])

	fmt.Println("\n== Step 2: parallelize across SPEs — and hit the launch overhead ==")
	for _, nspe := range []int{1, 8} {
		res := runCell(w, nspe, cell.RespawnEachStep)
		fmt.Printf("  %d SPE, respawn every step:  total %-9s (spawn %s, %.0f%% of runtime)\n",
			nspe, report.Seconds(res.Seconds()), report.Seconds(res.Time.Component("spawn")),
			100*res.Time.Component("spawn")/res.Seconds())
	}

	fmt.Println("\n== Step 3: launch once, signal with mailboxes ==")
	var one, eight *device.Result
	for _, nspe := range []int{1, 8} {
		res := runCell(w, nspe, cell.LaunchOnce)
		fmt.Printf("  %d SPE, launch-once+mailbox: total %-9s (spawn %s, %.0f%% of runtime)\n",
			nspe, report.Seconds(res.Seconds()), report.Seconds(res.Time.Component("spawn")),
			100*res.Time.Component("spawn")/res.Seconds())
		if nspe == 1 {
			one = res
		} else {
			eight = res
		}
	}
	fmt.Printf("\n8-SPE speedup over 1 SPE after amortization: %.1fx (the paper reports 4.5x at 2048 atoms)\n",
		one.Seconds()/eight.Seconds())
	fmt.Printf("physics identical across all configurations: PE(1 SPE) = %.4f, PE(8 SPE) = %.4f\n",
		one.PE, eight.PE)
}

func runCell(w device.Workload, nspe int, mode cell.Mode) *device.Result {
	dev, err := core.NewCell(nspe, mode)
	if err != nil {
		log.Fatal(err)
	}
	res, err := dev.Run(w)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Validate(res, w, core.TolSingle); err != nil {
		log.Fatal(err)
	}
	return res
}
