package main

import (
	"strings"
	"testing"
	"time"
)

func batchOpts(n int) runOpts {
	o := opts("reference")
	o.batch = n
	o.steps = 20
	o.ckptEvery = 5
	return o
}

func TestBatchCleanRun(t *testing.T) {
	o := batchOpts(4)
	o.maxInflight = 2
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestBatchPoisonedReplicaDoesNotSinkSiblings(t *testing.T) {
	// The -inject spec arms replica 0 only; the guard ladder recovers it
	// while the other replicas run clean, so the batch as a whole passes.
	o := batchOpts(4)
	o.method = "pardirect"
	o.workers = 2
	o.maxInflight = 2
	o.inject = "nan-forces@5"
	o.ckptDir = t.TempDir()
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestBatchTimeoutSurfacesError(t *testing.T) {
	// A deadline far below one step's wall time fails every replica; the
	// batch must report that, not hang or claim success.
	o := batchOpts(2)
	o.replicaTimeout = time.Nanosecond
	err := run(o)
	if err == nil {
		t.Fatal("all-failed batch returned nil")
	}
	if !strings.Contains(err.Error(), "no replica finished") {
		t.Fatalf("error %v, want batch failure summary", err)
	}
}

func TestBatchRejectsModeledDevices(t *testing.T) {
	o := batchOpts(2)
	o.devName = "gpu"
	if err := run(o); err == nil {
		t.Fatal("-batch accepted a modeled device")
	}
}

func TestValidateOpts(t *testing.T) {
	good := opts("reference")
	good.ckptEvery = 100
	if err := validateOpts(good); err != nil {
		t.Fatalf("valid opts rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func(*runOpts)
		want string
	}{
		{"zero steps", func(o *runOpts) { o.steps = 0 }, "-steps"},
		{"negative steps", func(o *runOpts) { o.steps = -3 }, "-steps"},
		{"negative workers", func(o *runOpts) { o.workers = -1 }, "-workers"},
		{"zero skin", func(o *runOpts) { o.skin = 0 }, "-skin"},
		{"negative skin", func(o *runOpts) { o.skin = -0.4 }, "-skin"},
		{"zero checkpoint interval", func(o *runOpts) { o.ckptEvery = 0 }, "-checkpoint-every"},
		{"negative batch", func(o *runOpts) { o.batch = -1 }, "-batch"},
		{"negative inflight", func(o *runOpts) { o.maxInflight = -2 }, "-max-inflight"},
		{"negative queue", func(o *runOpts) { o.queueDepth = -1 }, "-queue-depth"},
		{"negative timeout", func(o *runOpts) { o.replicaTimeout = -time.Second }, "-replica-timeout"},
		{"unknown inject kind", func(o *runOpts) { o.inject = "cosmic-ray@3" }, "cosmic-ray"},
		{"malformed inject spec", func(o *runOpts) { o.inject = "nan-forces" }, "kind@N"},
		{"bad inject call number", func(o *runOpts) { o.inject = "nan-forces@zero" }, "positive integer"},
	}
	for _, tc := range cases {
		o := good
		tc.mut(&o)
		err := validateOpts(o)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
