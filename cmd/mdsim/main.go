// Command mdsim runs the paper's MD kernel on one modeled device and
// reports the physics (energies, temperature) together with the modeled
// runtime and its component breakdown.
//
// Usage:
//
//	mdsim -device opteron -atoms 2048 -steps 10
//	mdsim -device cell -nspe 8 -mode amortized
//	mdsim -device cell -ppe-only
//	mdsim -device gpu
//	mdsim -device mta -threading partial
//	mdsim -device reference        # pure physics, no performance model
//	mdsim -device reference -method pardirect -workers 8   # multicore host kernel
//	mdsim -guard -method parcellgrid -atoms 864 -checkpoint-dir /tmp/ckpt \
//	      -inject nan-forces@25   # supervised run with fault injection
//	mdsim -batch 8 -max-inflight 4 -replica-timeout 30s \
//	      -inject nan-forces@25   # replica fleet; the fault hits replica 0 only
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/md"
	"repro/internal/mta"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/vec"
)

func main() {
	var (
		devName   = flag.String("device", "reference", "reference|opteron|cell|gpu|mta")
		atoms     = flag.Int("atoms", 2048, "number of atoms")
		steps     = flag.Int("steps", 10, "velocity-Verlet steps")
		nspe      = flag.Int("nspe", 8, "cell: SPEs to use (1..8)")
		mode      = flag.String("mode", "amortized", "cell: amortized|respawn")
		ppeOnly   = flag.Bool("ppe-only", false, "cell: run everything on the PPE")
		threading = flag.String("threading", "full", "mta: full|partial")
		validate  = flag.Bool("validate", true, "cross-check physics against the reference implementation")
		dump      = flag.String("dump", "", "reference: write an XYZ trajectory to this file")
		every     = flag.Int("dump-every", 10, "reference: frames written every N steps")
		thermo    = flag.String("thermostat", "", "reference: ''|rescale|berendsen (hold the standard temperature)")
		method    = flag.String("method", "direct", "reference: direct|pairlist|cellgrid|pardirect|parpairlist|parcellgrid force evaluation")
		precision = flag.String("precision", "f64", "reference: f64|f32 kernel precision (f32: float32 pair geometry, float64 accumulation; pairlist|parpairlist|cellgrid only)")
		workers   = flag.Int("workers", 0, "reference: host worker pool for the par* methods (0 = one per CPU)")
		skin      = flag.Float64("skin", 0.4, "reference: Verlet-list skin width for the pairlist methods")
		saveCkpt  = flag.String("save-checkpoint", "", "reference: write a restart file after the run")
		loadCkpt  = flag.String("load-checkpoint", "", "reference: resume from a restart file (ignores -atoms)")
		guarded   = flag.Bool("guard", false, "reference: run under the resilient supervisor (watchdog + checkpoint/rollback recovery)")
		ckptDir   = flag.String("checkpoint-dir", "", "guard: directory for periodic atomic checkpoints")
		ckptEvery = flag.Int("checkpoint-every", 100, "guard: steps between checkpoints")
		retries   = flag.Int("max-retries", 3, "guard: recovery attempts before giving up")
		inject    = flag.String("inject", "", "guard: fault spec, e.g. nan-forces@25 | worker-panic@3 | traj-error@2 | ckpt-error@1 (comma-separated)")
		batch     = flag.Int("batch", 0, "run N supervised replicas over the fleet scheduler (0 = single run)")
		inflight  = flag.Int("max-inflight", 0, "batch: replicas running concurrently (0 = one per CPU)")
		queue     = flag.Int("queue-depth", 0, "batch: admission queue bound; excess replicas are shed (0 = admit the whole batch)")
		repTO     = flag.Duration("replica-timeout", 0, "batch: per-replica deadline, e.g. 30s (0 = none)")
	)
	flag.Parse()
	o := runOpts{
		devName: *devName, atoms: *atoms, steps: *steps, nspe: *nspe,
		mode: *mode, ppeOnly: *ppeOnly, threading: *threading, validate: *validate,
		dump: *dump, dumpEvery: *every, thermostat: *thermo, method: *method,
		precision: *precision,
		workers: *workers, skin: *skin, saveCkpt: *saveCkpt, loadCkpt: *loadCkpt,
		guard: *guarded, ckptDir: *ckptDir, ckptEvery: *ckptEvery,
		maxRetries: *retries, inject: *inject,
		batch: *batch, maxInflight: *inflight, queueDepth: *queue, replicaTimeout: *repTO,
	}
	if err := validateOpts(o); err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "mdsim:", err)
		os.Exit(1)
	}
}

// validateOpts rejects flag values that would otherwise fail deep
// inside a run (or silently do nothing), so bad invocations exit
// immediately with a usage error.
func validateOpts(o runOpts) error {
	if o.steps < 1 {
		return fmt.Errorf("-steps %d: want a positive step count", o.steps)
	}
	if o.workers < 0 {
		return fmt.Errorf("-workers %d: want >= 0 (0 = one per CPU)", o.workers)
	}
	if !(o.skin > 0) {
		return fmt.Errorf("-skin %v: want a positive skin width", o.skin)
	}
	switch o.precision {
	case "", "f64":
	case "f32":
		switch o.method {
		case "pairlist", "parpairlist", "cellgrid":
		default:
			return fmt.Errorf("-precision f32 supports -method pairlist|parpairlist|cellgrid, got %q", o.method)
		}
	default:
		return fmt.Errorf("-precision %q: want f64|f32", o.precision)
	}
	if o.ckptEvery < 1 {
		return fmt.Errorf("-checkpoint-every %d: want a positive step interval", o.ckptEvery)
	}
	if o.batch < 0 {
		return fmt.Errorf("-batch %d: want >= 0 (0 = single run)", o.batch)
	}
	if o.maxInflight < 0 {
		return fmt.Errorf("-max-inflight %d: want >= 0 (0 = one per CPU)", o.maxInflight)
	}
	if o.queueDepth < 0 {
		return fmt.Errorf("-queue-depth %d: want >= 0 (0 = max-inflight)", o.queueDepth)
	}
	if o.replicaTimeout < 0 {
		return fmt.Errorf("-replica-timeout %v: want >= 0 (0 = no deadline)", o.replicaTimeout)
	}
	// Parse the fault spec in every mode so an unknown -inject kind is
	// an immediate usage error, not a silently ignored flag.
	if _, err := parseInject(o.inject); err != nil {
		return err
	}
	return nil
}

// runOpts carries the parsed flags.
type runOpts struct {
	devName      string
	atoms, steps int
	nspe         int
	mode         string
	ppeOnly      bool
	threading    string
	validate     bool
	dump         string
	dumpEvery    int
	thermostat   string
	method       string
	precision    string
	workers      int
	skin         float64
	saveCkpt     string
	loadCkpt     string
	guard        bool
	ckptDir      string
	ckptEvery    int
	maxRetries   int
	inject       string

	batch          int
	maxInflight    int
	queueDepth     int
	replicaTimeout time.Duration
}

func run(o runOpts) error {
	if o.batch > 0 {
		return runBatch(o)
	}
	if o.guard {
		return runGuarded(o)
	}

	w, err := core.StandardWorkload(o.atoms, o.steps)
	if err != nil {
		return err
	}

	if o.devName == "reference" {
		return runReference(w, o)
	}

	dev, tol, err := buildDevice(o.devName, o.nspe, o.mode, o.ppeOnly, o.threading)
	if err != nil {
		return err
	}
	res, err := dev.Run(w)
	if err != nil {
		return err
	}
	if o.validate {
		if err := core.Validate(res, w, tol); err != nil {
			return err
		}
		fmt.Println("physics: validated against the reference implementation")
	}
	fmt.Printf("device:   %s (%s)\n", res.Device, res.Variant)
	fmt.Printf("workload: %d atoms, %d steps, cutoff %.3g, dt %.3g\n", res.N, res.Steps, w.Cutoff, w.Dt)
	fmt.Printf("energy:   PE %.6f  KE %.6f  total %.6f\n", res.PE, res.KE, res.PE+res.KE)
	fmt.Printf("modeled runtime: %s\n", report.Seconds(res.Seconds()))
	for _, label := range res.Time.Labels() {
		fmt.Printf("  %-10s %s\n", label, report.Seconds(res.Time.Component(label)))
	}
	if res.Ledger.Total() > 0 {
		fmt.Printf("op mix:   %s\n", res.Ledger.String())
	}
	return nil
}

func runReference(w device.Workload, o runOpts) (err error) {
	var sys *md.System[float64]
	if o.loadCkpt != "" {
		f, err := os.Open(o.loadCkpt)
		if err != nil {
			return err
		}
		sys, err = md.ReadCheckpoint(f)
		_ = f.Close() // read path; the checkpoint CRC already vouched for the payload
		if err != nil {
			return err
		}
		fmt.Printf("resumed from %s at step %d (%d atoms)\n", o.loadCkpt, sys.Steps, sys.N())
	} else {
		p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
		var err error
		sys, err = md.NewSystem(w.State, p)
		if err != nil {
			return err
		}
	}
	forces, closeForces, err := buildForces(sys, o.method, o.precision, o.workers, o.skin)
	if err != nil {
		return err
	}
	defer closeForces()
	switch o.method {
	case "pardirect", "parpairlist", "parcellgrid":
		fmt.Printf("force method: %s, %d host workers\n", o.method, parallel.ClampWorkers(o.workers))
	}
	if o.precision == "f32" {
		fmt.Println("precision: f32 pair kernel, f64 accumulation (master state f64)")
	}
	var th md.Thermostat[float64]
	switch o.thermostat {
	case "":
	case "rescale":
		th, err = md.NewRescaleThermostat(core.StdTemperature, 10)
	case "berendsen":
		th, err = md.NewBerendsenThermostat(core.StdTemperature, w.Dt, 0.1)
	default:
		return fmt.Errorf("unknown thermostat %q (want rescale|berendsen)", o.thermostat)
	}
	if err != nil {
		return err
	}
	var traj *md.XYZWriter
	if o.dump != "" {
		f, ferr := os.Create(o.dump)
		if ferr != nil {
			return ferr
		}
		// A trajectory that failed to hit the disk must fail the run:
		// surface the close error unless an earlier error already did.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trajectory %s: %w", o.dump, cerr)
			}
		}()
		traj = md.NewXYZWriter(f, "Ar")
		if o.dumpEvery < 1 {
			o.dumpEvery = 1
		}
	}
	e0 := sys.TotalEnergy()
	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
		if th != nil {
			th.Apply(sys.Vel, sys.Temperature())
			sys.KE = md.KineticEnergy(sys.Vel)
		}
		if traj != nil && sys.Steps%o.dumpEvery == 0 {
			if err := traj.WriteFrame(fmt.Sprintf("step %d PE %.6f KE %.6f", sys.Steps, sys.PE, sys.KE), sys.Pos); err != nil {
				return err
			}
		}
	}
	if traj != nil {
		if err := traj.Flush(); err != nil {
			return err
		}
		fmt.Printf("trajectory: %d frames -> %s\n", traj.Frames(), o.dump)
	}
	fmt.Printf("reference MD: %d atoms, %d steps, box %.4g, cutoff %.3g\n", sys.N(), w.Steps, w.State.Box, w.Cutoff)
	fmt.Printf("energy:      PE %.6f  KE %.6f  total %.6f\n", sys.PE, sys.KE, sys.TotalEnergy())
	fmt.Printf("temperature: %.4f (target %.4f)\n", sys.Temperature(), core.StdTemperature)
	if th == nil {
		fmt.Printf("energy drift over run: %.3g (relative)\n",
			abs((sys.TotalEnergy()-e0)/e0))
	} else {
		fmt.Printf("energy change from thermostat coupling: %.3g (relative; not integrator drift)\n",
			abs((sys.TotalEnergy()-e0)/e0))
	}
	mom := sys.Momentum()
	fmt.Printf("net momentum: (%.2e, %.2e, %.2e)\n", mom.X, mom.Y, mom.Z)
	if o.saveCkpt != "" {
		f, err := os.Create(o.saveCkpt)
		if err != nil {
			return err
		}
		if err := md.WriteCheckpoint(f, sys); err != nil {
			f.Close() //mdlint:ignore closeerr the checkpoint write already failed; its error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("checkpoint: step %d -> %s\n", sys.Steps, o.saveCkpt)
	}
	return nil
}

// buildForces selects the non-bonded force evaluation for the
// reference device. The par* methods shard the kernel across a host
// worker pool (workers = 0 means one per CPU); the pairlist methods
// take the Verlet skin width from -skin; precision "f32" swaps in the
// mixed-precision fast path (float32 pair geometry over a narrowed
// mirror, float64 accumulation into the master state); the returned
// close function releases the pool and is a no-op for the serial
// methods.
func buildForces(sys *md.System[float64], method, precision string, workers int, skin float64) (func() float64, func(), error) {
	noop := func() {}
	if precision != "" && precision != "f64" && precision != "f32" {
		return nil, nil, fmt.Errorf("-precision %q: want f64|f32", precision)
	}
	if precision == "f32" {
		mx, err := md.NewMirror32(sys.P)
		if err != nil {
			return nil, nil, err
		}
		switch method {
		case "pairlist":
			nl, err := md.NewNeighborList[float32](vec.Narrow[float32](skin))
			if err != nil {
				return nil, nil, err
			}
			return func() float64 {
				mx.RefreshSystem(sys)
				return md.ForcesPairlistMixed(nl, mx.P, mx.Pos, sys.Acc)
			}, noop, nil
		case "parpairlist":
			nl, err := md.NewNeighborList[float32](vec.Narrow[float32](skin))
			if err != nil {
				return nil, nil, err
			}
			e := parallel.New[float64](workers)
			return func() float64 {
				mx.RefreshSystem(sys)
				return e.ForcesPairlistF32(nl, mx.P, mx.Pos, sys.Acc)
			}, e.Close, nil
		case "cellgrid":
			cl, err := md.NewCellList(mx.P.Box, mx.P.Cutoff)
			if err != nil {
				return nil, nil, err
			}
			return func() float64 {
				mx.RefreshSystem(sys)
				return md.ForcesCellMixed(cl, mx.P, mx.Pos, sys.Acc)
			}, noop, nil
		default:
			return nil, nil, fmt.Errorf("-precision f32 supports pairlist|parpairlist|cellgrid, got %q", method)
		}
	}
	switch method {
	case "direct", "":
		return func() float64 { return md.ComputeForces(sys.P, sys.Pos, sys.Acc) }, noop, nil
	case "pairlist":
		nl, err := md.NewNeighborList[float64](skin)
		if err != nil {
			return nil, nil, err
		}
		return func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }, noop, nil
	case "cellgrid":
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, nil, err
		}
		return func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }, noop, nil
	case "pardirect":
		e := parallel.New[float64](workers)
		return func() float64 { return e.ForcesDirect(sys.P, sys.Pos, sys.Acc) }, e.Close, nil
	case "parpairlist":
		nl, err := md.NewNeighborList[float64](skin)
		if err != nil {
			return nil, nil, err
		}
		e := parallel.New[float64](workers)
		return func() float64 { return e.ForcesPairlist(nl, sys.P, sys.Pos, sys.Acc) }, e.Close, nil
	case "parcellgrid":
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, nil, err
		}
		e := parallel.New[float64](workers)
		return func() float64 { return e.ForcesCell(cl, sys.P, sys.Pos, sys.Acc) }, e.Close, nil
	default:
		return nil, nil, fmt.Errorf("unknown method %q (want direct|pairlist|cellgrid|pardirect|parpairlist|parcellgrid)", method)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func buildDevice(name string, nspe int, mode string, ppeOnly bool, threading string) (device.Device, float64, error) {
	switch name {
	case "opteron":
		return core.NewOpteron(), core.TolDouble, nil
	case "cell":
		if ppeOnly {
			d, err := core.NewCellPPEOnly()
			return d, core.TolSingle, err
		}
		var m cell.Mode
		switch mode {
		case "amortized":
			m = cell.LaunchOnce
		case "respawn":
			m = cell.RespawnEachStep
		default:
			return nil, 0, fmt.Errorf("unknown cell mode %q (want amortized|respawn)", mode)
		}
		d, err := core.NewCell(nspe, m)
		return d, core.TolSingle, err
	case "gpu":
		d, err := core.NewGPU()
		return d, core.TolSingle, err
	case "mta":
		var th mta.Threading
		switch threading {
		case "full":
			th = mta.FullyThreaded
		case "partial":
			th = mta.PartiallyThreaded
		default:
			return nil, 0, fmt.Errorf("unknown mta threading %q (want full|partial)", threading)
		}
		d, err := core.NewMTA(th)
		return d, core.TolDouble, err
	default:
		return nil, 0, fmt.Errorf("unknown device %q (want reference|opteron|cell|gpu|mta)", name)
	}
}
