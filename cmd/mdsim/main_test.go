package main

import (
	"os"
	"path/filepath"
	"testing"
)

func opts(dev string) runOpts {
	return runOpts{
		devName: dev, atoms: 108, steps: 2, nspe: 2, skin: 0.4,
		mode: "amortized", threading: "full", validate: true, dumpEvery: 1,
	}
}

func TestRunEveryDevice(t *testing.T) {
	for _, dev := range []string{"reference", "opteron", "cell", "gpu", "mta"} {
		if err := run(opts(dev)); err != nil {
			t.Fatalf("%s: %v", dev, err)
		}
	}
}

func TestRunPPEOnlyAndModes(t *testing.T) {
	o := opts("cell")
	o.ppeOnly = true
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o = opts("cell")
	o.mode = "respawn"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o = opts("mta")
	o.threading = "partial"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	o := opts("warp-drive")
	if err := run(o); err == nil {
		t.Fatal("unknown device accepted")
	}
	o = opts("cell")
	o.mode = "sometimes"
	if err := run(o); err == nil {
		t.Fatal("unknown cell mode accepted")
	}
	o = opts("mta")
	o.threading = "diagonal"
	if err := run(o); err == nil {
		t.Fatal("unknown threading accepted")
	}
	o = opts("reference")
	o.thermostat = "maxwell-daemon"
	if err := run(o); err == nil {
		t.Fatal("unknown thermostat accepted")
	}
}

func TestReferenceForceMethods(t *testing.T) {
	for _, m := range []string{"direct", "pairlist", "cellgrid"} {
		o := opts("reference")
		o.atoms = 864 // cellgrid needs >= 3 cutoff-wide cells per edge
		o.method = m
		if err := run(o); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
	}
	o := opts("reference")
	o.method = "quantum"
	if err := run(o); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestReferenceMixedPrecision(t *testing.T) {
	for _, m := range []string{"pairlist", "parpairlist", "cellgrid"} {
		o := opts("reference")
		o.atoms = 864 // cellgrid needs >= 3 cutoff-wide cells per edge
		o.method = m
		o.precision = "f32"
		if err := run(o); err != nil {
			t.Fatalf("%s f32: %v", m, err)
		}
	}
}

func TestGuardedAndBatchMixedPrecision(t *testing.T) {
	// -guard and -batch route through parseMethod, not buildForces:
	// -precision f32 must select the F32 mdrun methods there too, not
	// silently fall back to float64.
	o := opts("reference")
	o.atoms = 256
	o.method = "parpairlist"
	o.precision = "f32"
	o.guard = true
	o.steps = 4
	if err := run(o); err != nil {
		t.Fatalf("guarded f32: %v", err)
	}
	o.guard = false
	o.batch = 2
	o.maxInflight = 2
	if err := run(o); err != nil {
		t.Fatalf("batch f32: %v", err)
	}
	o = opts("reference")
	o.method = "direct"
	o.precision = "f32"
	o.guard = true
	if err := run(o); err == nil {
		t.Fatal("guarded -precision f32 accepted for -method direct")
	}
}

func TestPrecisionFlagValidation(t *testing.T) {
	// f32 is a reference-device pair-kernel option: only the methods
	// with a mixed-precision kernel accept it.
	o := opts("reference")
	o.method = "direct"
	o.precision = "f32"
	if err := run(o); err == nil {
		t.Fatal("-precision f32 accepted for -method direct")
	}
	o = opts("reference")
	o.method = "pairlist"
	o.precision = "f16"
	if err := run(o); err == nil {
		t.Fatal("unknown precision accepted")
	}
}

func TestReferenceParallelForceMethods(t *testing.T) {
	for _, m := range []string{"pardirect", "parpairlist", "parcellgrid"} {
		for _, workers := range []int{0, 1, 3} {
			o := opts("reference")
			o.atoms = 864 // parcellgrid needs >= 3 cutoff-wide cells per edge
			o.method = m
			o.workers = workers
			if err := run(o); err != nil {
				t.Fatalf("%s workers=%d: %v", m, workers, err)
			}
		}
	}
}

func TestReferenceDumpAndThermostat(t *testing.T) {
	dir := t.TempDir()
	o := opts("reference")
	o.steps = 6
	o.dump = filepath.Join(dir, "t.xyz")
	o.dumpEvery = 2
	o.thermostat = "rescale"
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty trajectory")
	}
}

func TestCheckpointSaveAndResume(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	o := opts("reference")
	o.steps = 5
	o.saveCkpt = ckpt
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	o2 := opts("reference")
	o2.steps = 5
	o2.loadCkpt = ckpt
	if err := run(o2); err != nil {
		t.Fatal(err)
	}
	if err := run(runOpts{devName: "reference", atoms: 108, steps: 1, loadCkpt: "/nonexistent"}); err == nil {
		t.Fatal("missing checkpoint accepted")
	}
}
