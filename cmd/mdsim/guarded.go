package main

import (
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/mdrun"
)

// runGuarded executes the reference simulation under the resilient run
// supervisor: numerical-health watchdog, atomic checkpoint/rollback
// recovery, and the retry → halve-dt → serial escalation ladder.
func runGuarded(o runOpts) (err error) {
	if o.devName != "reference" {
		return fmt.Errorf("-guard supervises only -device reference (got %q)", o.devName)
	}
	method, err := parseMethod(o.method, o.precision)
	if err != nil {
		return err
	}
	inj, err := parseInject(o.inject)
	if err != nil {
		return err
	}

	cfg, err := buildRunConfig(o, method, inj)
	if err != nil {
		return err
	}
	if o.dump != "" {
		f, ferr := os.Create(o.dump)
		if ferr != nil {
			return ferr
		}
		// Same contract as runReference: a trajectory that failed to
		// reach the disk fails the run.
		defer func() {
			if cerr := f.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("closing trajectory %s: %w", o.dump, cerr)
			}
		}()
		cfg.Trajectory = f
		if o.dumpEvery >= 1 {
			cfg.TrajectoryEvery = o.dumpEvery
		}
	}

	sup, err := guard.New(guard.Config{
		Run:             cfg,
		CheckpointDir:   o.ckptDir,
		CheckpointEvery: o.ckptEvery,
		MaxRetries:      o.maxRetries,
	})
	if err != nil {
		return err
	}
	defer sup.Close()

	sum, rep, err := sup.Run(o.steps)
	for _, ev := range rep.Events {
		fmt.Printf("guard: step %-6d attempt %d  %-15v %s\n", ev.Step, ev.Attempt, ev.Kind, ev.Detail)
	}
	fmt.Printf("guard: %s\n", rep)
	if err != nil {
		return err
	}
	fmt.Printf("guarded MD: %d atoms, %d steps, method %v, workers %d\n",
		o.atoms, sum.Steps, rep.FinalMethod, cfg.Workers)
	fmt.Printf("energy:      initial %.6f  final %.6f\n", sum.InitialEnergy, sum.FinalEnergy)
	fmt.Printf("temperature: %.4f (target %.4f)\n", sum.MeanTemperature, core.StdTemperature)
	fmt.Printf("pressure:    %.4f\n", sum.Pressure)
	return nil
}

// buildRunConfig assembles the standard-workload mdrun config the
// guarded and batch modes share: the paper's LJ argon state with the
// StandardWorkload small-system cutoff reduction.
func buildRunConfig(o runOpts, method mdrun.ForceMethod, inj faults.Injector) (mdrun.Config, error) {
	cfg := mdrun.Config{
		Atoms: o.atoms, Density: core.StdDensity, Temperature: core.StdTemperature,
		Lattice: lattice.FCC, Seed: core.StdSeed,
		Cutoff: core.StdCutoff, Dt: core.StdDt,
		Method: method, Workers: o.workers, PairlistSkin: o.skin,
		Faults: inj,
	}
	// Match StandardWorkload's small-system cutoff reduction.
	if box := math.Cbrt(float64(o.atoms) / core.StdDensity); 2*cfg.Cutoff > box {
		cfg.Cutoff = box / 2 * 0.99
	}
	switch o.thermostat {
	case "":
		cfg.Thermostat = mdrun.NVE
	case "rescale":
		cfg.Thermostat = mdrun.Rescale
	case "berendsen":
		cfg.Thermostat = mdrun.Berendsen
	default:
		return mdrun.Config{}, fmt.Errorf("unknown thermostat %q (want rescale|berendsen)", o.thermostat)
	}
	return cfg, nil
}

// parseMethod maps the -method and -precision flags to an mdrun force
// method; -precision f32 selects the mixed-precision variant of the
// pair-kernel methods (the guard's escalation ladder then stays on the
// f32 ladder: ParallelPairlistF32 degrades to PairlistF32, never
// silently to float64).
func parseMethod(s, precision string) (mdrun.ForceMethod, error) {
	if precision == "f32" {
		switch s {
		case "pairlist":
			return mdrun.PairlistF32, nil
		case "parpairlist":
			return mdrun.ParallelPairlistF32, nil
		case "cellgrid":
			return mdrun.CellGridF32, nil
		default:
			return 0, fmt.Errorf("-precision f32 supports -method pairlist|parpairlist|cellgrid, got %q", s)
		}
	}
	if precision != "" && precision != "f64" {
		return 0, fmt.Errorf("-precision %q: want f64|f32", precision)
	}
	switch s {
	case "direct", "":
		return mdrun.Direct, nil
	case "pairlist":
		return mdrun.Pairlist, nil
	case "cellgrid":
		return mdrun.CellGrid, nil
	case "pardirect":
		return mdrun.ParallelDirect, nil
	case "parpairlist":
		return mdrun.ParallelPairlist, nil
	case "parcellgrid":
		return mdrun.ParallelCellGrid, nil
	default:
		return 0, fmt.Errorf("unknown method %q (want direct|pairlist|cellgrid|pardirect|parpairlist|parcellgrid)", s)
	}
}

// parseInject translates comma-separated fault specs into an armed
// registry (nil for the empty spec). Each spec is kind@N:
//
//	nan-forces@N    poison the parallel force output from kernel call N on
//	worker-panic@N  panic inside the worker pool at task N
//	traj-error@N    fail the trajectory writer at write N
//	ckpt-error@N    fail the checkpoint writer at write N
func parseInject(spec string) (faults.Injector, error) {
	if spec == "" {
		return nil, nil
	}
	reg := faults.NewRegistry(1)
	for _, part := range strings.Split(spec, ",") {
		kind, at, ok := strings.Cut(strings.TrimSpace(part), "@")
		if !ok {
			return nil, fmt.Errorf("bad -inject spec %q (want kind@N)", part)
		}
		n, err := strconv.Atoi(at)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -inject call number %q (want a positive integer)", at)
		}
		switch kind {
		case "nan-forces":
			reg.Arm(faults.Fault{Site: faults.SiteParallelForces, Kind: faults.NaN,
				Trigger: faults.Trigger{FromCall: n}})
		case "worker-panic":
			reg.Arm(faults.Fault{Site: faults.SiteWorker, Kind: faults.Panic,
				Trigger: faults.Trigger{AtCall: n}})
		case "traj-error":
			reg.Arm(faults.Fault{Site: faults.SiteTrajectory, Kind: faults.Error,
				Trigger: faults.Trigger{AtCall: n}})
		case "ckpt-error":
			reg.Arm(faults.Fault{Site: faults.SiteCheckpoint, Kind: faults.Error,
				Trigger: faults.Trigger{AtCall: n}})
		default:
			return nil, fmt.Errorf("unknown -inject kind %q (want nan-forces|worker-panic|traj-error|ckpt-error)", kind)
		}
	}
	return reg, nil
}
