package main

import (
	"context"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/guard"
)

// runBatch executes -batch N supervised replicas over the fleet
// scheduler: one guard.Supervisor per replica, a shared bounded worker
// budget, per-replica deadlines, and load shedding under overload.
// Replica i perturbs the base seed by i (a seed sweep — the ensemble
// shape of parameter sweeps and replica exchange); the -inject fault
// spec, if any, arms replica 0 only, so a poisoned replica's isolation
// from its siblings is directly observable.
func runBatch(o runOpts) error {
	if o.devName != "reference" {
		return fmt.Errorf("-batch supervises only -device reference (got %q)", o.devName)
	}
	method, err := parseMethod(o.method, o.precision)
	if err != nil {
		return err
	}
	inj, err := parseInject(o.inject)
	if err != nil {
		return err
	}

	reps := make([]fleet.Replica, o.batch)
	for i := range reps {
		cfg, err := buildRunConfig(o, method, nil)
		if err != nil {
			return err
		}
		cfg.Seed = core.StdSeed + uint64(i)
		if i == 0 {
			cfg.Faults = inj
		}
		g := guard.Config{
			Run:             cfg,
			CheckpointEvery: o.ckptEvery,
			MaxRetries:      o.maxRetries,
		}
		if o.ckptDir != "" {
			g.CheckpointDir = filepath.Join(o.ckptDir, fmt.Sprintf("r%03d", i))
		}
		reps[i] = fleet.Replica{ID: i, Guard: g, Steps: o.steps}
	}

	fcfg := fleet.Config{
		MaxInflight:    o.maxInflight,
		QueueDepth:     o.queueDepth,
		ReplicaTimeout: o.replicaTimeout,
	}
	// RunBatch submits the whole batch in one burst, so the queue alone
	// bounds admission. Default to admitting every requested replica;
	// shedding kicks in only when -queue-depth is set explicitly.
	if o.queueDepth == 0 {
		fcfg.QueueDepth = o.batch
	}
	rep := fleet.RunBatch(context.Background(), fcfg, reps)

	for i := range rep.Results {
		r := &rep.Results[i]
		line := fmt.Sprintf("replica %-3d %-10v attempts %d wall %v",
			r.ID, r.State, r.Attempts, r.Wall.Round(time.Microsecond))
		if r.Summary != nil && (r.State == fleet.Succeeded || r.State == fleet.Recovered) {
			line += fmt.Sprintf("  E %.6f -> %.6f  T %.4f",
				r.Summary.InitialEnergy, r.Summary.FinalEnergy, r.Summary.MeanTemperature)
		}
		if r.Err != nil {
			line += fmt.Sprintf("  (%v)", r.Err)
		}
		fmt.Println(line)
		if r.Report != nil && r.Report.Counts.Total() > 0 {
			fmt.Printf("  incidents: %v\n", &r.Report.Counts)
		}
	}
	fmt.Println(rep)

	if rep.Succeeded+rep.Recovered == 0 {
		return fmt.Errorf("batch: no replica finished (%d shed, %d failed)", rep.Shed, rep.Failed)
	}
	return nil
}
