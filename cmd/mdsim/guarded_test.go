package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func guardOpts() runOpts {
	o := opts("reference")
	o.guard = true
	o.steps = 20
	return o
}

func TestGuardedCleanRun(t *testing.T) {
	o := guardOpts()
	o.ckptDir = t.TempDir()
	o.ckptEvery = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(o.ckptDir)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "ckpt-") && strings.HasSuffix(e.Name(), ".mdcp") {
			found = true
		}
	}
	if !found {
		t.Fatal("guarded run left no checkpoint files")
	}
}

func TestGuardedRecoversFromInjectedFaults(t *testing.T) {
	// Worker panic: one-shot, plain retry suffices.
	o := guardOpts()
	o.method = "pardirect"
	o.workers = 3
	o.inject = "worker-panic@10"
	if err := run(o); err != nil {
		t.Fatalf("worker-panic recovery failed: %v", err)
	}

	// NaN forces under the parallel cell grid: full ladder to serial.
	o = guardOpts()
	o.atoms = 864
	o.steps = 30
	o.method = "parcellgrid"
	o.workers = 4
	o.ckptDir = t.TempDir()
	o.ckptEvery = 10
	o.inject = "nan-forces@12"
	if err := run(o); err != nil {
		t.Fatalf("nan-forces recovery failed: %v", err)
	}
}

func TestGuardedTrajectoryAndThermostat(t *testing.T) {
	o := guardOpts()
	o.thermostat = "berendsen"
	o.dump = filepath.Join(t.TempDir(), "g.xyz")
	o.dumpEvery = 5
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(o.dump)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty guarded trajectory")
	}
}

func TestGuardedRejectsBadFlags(t *testing.T) {
	o := guardOpts()
	o.devName = "gpu"
	if err := run(o); err == nil {
		t.Fatal("guard accepted a modeled device")
	}
	o = guardOpts()
	o.method = "quantum"
	if err := run(o); err == nil {
		t.Fatal("guard accepted unknown method")
	}
	o = guardOpts()
	o.thermostat = "maxwell-daemon"
	if err := run(o); err == nil {
		t.Fatal("guard accepted unknown thermostat")
	}
	for _, spec := range []string{"nan-forces", "bitrot@3", "nan-forces@0", "nan-forces@x"} {
		o = guardOpts()
		o.inject = spec
		if err := run(o); err == nil {
			t.Fatalf("bad inject spec %q accepted", spec)
		}
	}
}

func TestParseInjectSpecs(t *testing.T) {
	if inj, err := parseInject(""); err != nil || inj != nil {
		t.Fatalf("empty spec: %v, %v", inj, err)
	}
	inj, err := parseInject("nan-forces@5, worker-panic@2,traj-error@1,ckpt-error@3")
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil {
		t.Fatal("nil injector for non-empty spec")
	}
}
