package main

import "testing"

func TestRunValidatesAllDevices(t *testing.T) {
	if err := run(108, 3); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadWorkload(t *testing.T) {
	if err := run(0, 3); err == nil {
		t.Fatal("zero atoms accepted")
	}
}

func TestRelDiff(t *testing.T) {
	if relDiff(1, 1) != 0 {
		t.Fatal("equal values")
	}
	if got := relDiff(-2, -1); got != 0.5 {
		t.Fatalf("relDiff(-2,-1) = %v, want 0.5", got)
	}
	if got := relDiff(1, 2); got != 0.5 {
		t.Fatalf("relDiff(1,2) = %v, want 0.5", got)
	}
}
