// Command mdvalidate runs the same workload on every modeled device and
// verifies that each one reproduces the reference physics: the same
// initial conditions must lead to the same energies, within a tolerance
// set by each device's native precision (float32 on Cell and GPU,
// float64 on the Opteron and MTA-2).
//
// This is the cross-device correctness gate behind every number in
// EXPERIMENTS.md: a performance model that computes the wrong physics
// reports nothing.
//
// Usage:
//
//	mdvalidate                 # 512 atoms, 10 steps
//	mdvalidate -atoms 2048 -steps 10
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		atoms = flag.Int("atoms", 512, "number of atoms")
		steps = flag.Int("steps", 10, "velocity-Verlet steps")
	)
	flag.Parse()
	if err := run(*atoms, *steps); err != nil {
		fmt.Fprintln(os.Stderr, "mdvalidate:", err)
		os.Exit(1)
	}
}

func run(atoms, steps int) error {
	w, err := core.StandardWorkload(atoms, steps)
	if err != nil {
		return err
	}
	refPE, refKE, err := core.ReferenceEnergies(w)
	if err != nil {
		return err
	}
	fmt.Printf("workload: %d atoms, %d steps (seed %d)\n", atoms, steps, uint64(core.StdSeed))
	fmt.Printf("reference (float64): PE %.9f  KE %.9f\n\n", refPE, refKE)

	devs, err := core.Devices()
	if err != nil {
		return err
	}
	t := report.NewTable("", "device", "variant", "PE", "KE", "|ΔPE|/|PE|", "tolerance", "verdict")
	failures := 0
	for _, name := range []string{"opteron", "mta", "cell", "gpu"} {
		dev := devs[name]
		res, err := dev.Run(w)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		tol := core.TolDouble
		if name == "cell" || name == "gpu" {
			tol = core.TolSingle
		}
		verdict := "ok"
		if err := core.Validate(res, w, tol); err != nil {
			verdict = "FAIL"
			failures++
		}
		rel := relDiff(res.PE, refPE)
		t.AddRow(name, res.Variant,
			fmt.Sprintf("%.9f", res.PE), fmt.Sprintf("%.9f", res.KE),
			fmt.Sprintf("%.2e", rel), fmt.Sprintf("%.0e", tol), verdict)
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	if failures > 0 {
		return fmt.Errorf("%d device(s) failed physics validation", failures)
	}
	fmt.Println("\nall devices reproduce the reference physics")
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	m := a
	if m < 0 {
		m = -m
	}
	if bb := b; bb < 0 {
		if -bb > m {
			m = -bb
		}
	} else if bb > m {
		m = bb
	}
	return d / m
}
