// Command mdserve is the simulation service: a durable, multi-tenant
// HTTP/JSON job API over the fleet scheduler. Clients submit validated
// run specs, stream observables as segments commit, and fetch the
// final report; accepted jobs survive a process kill and resume from
// their latest valid checkpoint on restart.
//
// Usage:
//
//	mdserve -data /var/lib/mdserve
//	mdserve -addr 127.0.0.1:0 -data ./state   # ephemeral port, printed on stdout
//
//	curl -XPOST -H 'X-Tenant: alice' -H 'Idempotency-Key: run-1' \
//	     -d '{"atoms":256,"steps":2000,"thermostat":"rescale"}' \
//	     http://localhost:8080/v1/jobs
//	curl http://localhost:8080/v1/jobs/job-000001/events   # SSE stream
//	curl http://localhost:8080/v1/jobs/job-000001/report
//
// SIGTERM/SIGINT starts a graceful drain: submissions get 503,
// in-flight jobs run to completion within -drain-timeout, and anything
// still running past the deadline is cancelled at an MD-step boundary
// and resumed by the next start.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port)")
		data         = flag.String("data", "", "data directory for the durable job store (required)")
		inflight     = flag.Int("max-inflight", 0, "jobs running concurrently (0 = one per CPU)")
		queue        = flag.Int("queue-depth", 0, "fleet admission queue bound beyond the inflight set (0 = max-inflight)")
		repTO        = flag.Duration("replica-timeout", 0, "per-job wall-clock deadline, e.g. 10m (0 = none)")
		tenantRate   = flag.Float64("tenant-rate", 5, "per-tenant sustained submissions per second")
		tenantBurst  = flag.Float64("tenant-burst", 10, "per-tenant submission burst capacity")
		tenantActive = flag.Int("tenant-active", 4, "per-tenant cap on admitted-but-unfinished jobs")
		drainTO      = flag.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM before in-flight jobs are checkpoint-cancelled")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "mdserve: -data is required")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "mdserve: ", log.LstdFlags)
	srv, err := serve.NewServer(serve.Config{
		DataDir: *data,
		Fleet: fleet.Config{
			MaxInflight:    *inflight,
			QueueDepth:     *queue,
			ReplicaTimeout: *repTO,
		},
		Tenancy: serve.TenantPolicy{
			Rate:      *tenantRate,
			Burst:     *tenantBurst,
			MaxActive: *tenantActive,
		},
		Logf: logger.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	}
	// The resolved address goes to stdout (and is flushed) before any
	// job runs: test harnesses listening on :0 parse the port from this
	// line.
	fmt.Printf("mdserve: listening on %s\n", ln.Addr())

	hs := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "mdserve:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the hard way

	logger.Printf("drain: started (budget %s)", *drainTO)
	dctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if err := srv.Drain(dctx); err != nil {
		logger.Printf("drain: deadline expired; interrupted jobs will resume on restart: %v", err)
	} else {
		logger.Printf("drain: all jobs finished")
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
}
