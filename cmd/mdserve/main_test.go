package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// server is one running mdserve process under test.
type server struct {
	cmd  *exec.Cmd
	base string // http://127.0.0.1:port
}

// buildBinary compiles mdserve once per test run.
func buildBinary(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mdserve")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mdserve: %v\n%s", err, out)
	}
	return bin
}

// startServer launches mdserve on an ephemeral port over dataDir and
// waits for its listen line.
func startServer(t *testing.T, bin, dataDir string) *server {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-data", dataDir, "-max-inflight", "1", "-drain-timeout", "30s")
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		_ = cmd.Process.Kill()
		t.Fatalf("mdserve exited before announcing its address (scan err %v)", sc.Err())
	}
	line := sc.Text()
	const marker = "listening on "
	i := strings.Index(line, marker)
	if i < 0 {
		_ = cmd.Process.Kill()
		t.Fatalf("unexpected first line %q", line)
	}
	// Keep draining stdout so the child never blocks on a full pipe.
	go func() {
		for sc.Scan() {
		}
	}()
	return &server{cmd: cmd, base: "http://" + strings.TrimSpace(line[i+len(marker):])}
}

// kill SIGKILLs the server — the crash the durability layer exists
// for: no drain, no flush, no goodbye.
func (s *server) kill(t *testing.T) {
	t.Helper()
	if err := s.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = s.cmd.Wait() // reap; the error is the kill itself
}

type submitResp struct {
	ID           string `json:"id"`
	Status       string `json:"status"`
	Deduplicated bool   `json:"deduplicated"`
}

// submit POSTs a spec JSON with an idempotency key.
func (s *server) submit(t *testing.T, key, body string) (submitResp, int) {
	t.Helper()
	req, err := http.NewRequest("POST", s.base+"/v1/jobs", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr submitResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil && resp.StatusCode < 300 {
		t.Fatal(err)
	}
	return sr, resp.StatusCode
}

// status fetches the job's status document as a loose map.
func (s *server) status(t *testing.T, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(s.base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

// awaitDone polls the report endpoint until the job is terminal and
// returns the final energy.
func (s *server) awaitDone(t *testing.T, id string) (finalEnergy float64, resumed bool) {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(s.base + "/v1/jobs/" + id + "/report")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusOK {
			var rec struct {
				Status  string `json:"status"`
				Error   string `json:"error"`
				Resumed bool   `json:"resumed"`
				Summary *struct {
					FinalEnergy float64
				} `json:"summary"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if rec.Status != "done" || rec.Summary == nil {
				t.Fatalf("job %s terminal but not done: %+v", id, rec)
			}
			return rec.Summary.FinalEnergy, rec.Resumed
		}
		resp.Body.Close()
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return 0, false
}

// TestMDServeKillRestart is the end-to-end crash-recovery pin, against
// the real binary and a real SIGKILL: a job is submitted, the process
// is killed mid-run with no warning, a new process on the same data
// directory resumes the job from its latest checkpoint and finishes
// it; the resumed run's final energy matches an uninterrupted run of
// the same spec on the same server to 1e-8, and resubmitting the
// original idempotency key across the restart returns the original
// job ID without a second run.
func TestMDServeKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes and multi-thousand-step runs")
	}
	bin := buildBinary(t)
	dataDir := t.TempDir()
	spec := `{"atoms": 108, "steps": 4000, "thermostat": "rescale", "checkpoint_every": 100}`

	s1 := startServer(t, bin, dataDir)
	sr, code := s1.submit(t, "crash-pin", spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d (%+v)", code, sr)
	}

	// Let the run get past its first thousand steps (several on-disk
	// checkpoints), then SIGKILL the process.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never reached step 1000")
		}
		st := s1.status(t, sr.ID)
		if prog, ok := st["progress"].(map[string]any); ok {
			if step, _ := prog["step"].(float64); step >= 1000 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	s1.kill(t)

	// The killed process must not have committed a terminal record.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", sr.ID, "sreport.json")); !os.IsNotExist(err) {
		t.Fatalf("terminal record present after SIGKILL (err=%v)", err)
	}

	s2 := startServer(t, bin, dataDir)
	defer s2.kill(t)

	// Idempotent resubmit across the restart: original ID, no new run.
	again, code := s2.submit(t, "crash-pin", spec)
	if code != http.StatusOK || !again.Deduplicated || again.ID != sr.ID {
		t.Fatalf("resubmit across restart = %d %+v, want dedup of %s", code, again, sr.ID)
	}

	resumedE, resumed := s2.awaitDone(t, sr.ID)
	if !resumed {
		t.Fatal("report not marked resumed")
	}

	// Uninterrupted oracle: the same spec under a different key on the
	// same server. Resume is from a bit-exact checkpoint through the
	// same deterministic kernel, so the energies agree far inside 1e-8.
	orc, code := s2.submit(t, "oracle", spec)
	if code != http.StatusAccepted {
		t.Fatalf("oracle submit = %d", code)
	}
	if orc.ID == sr.ID {
		t.Fatal("oracle deduplicated onto the crashed job")
	}
	oracleE, _ := s2.awaitDone(t, orc.ID)
	if diff := math.Abs(resumedE - oracleE); !(diff <= 1e-8*math.Max(1, math.Abs(oracleE))) {
		t.Fatalf("resumed final energy %v vs uninterrupted %v (diff %g > 1e-8)", resumedE, oracleE, diff)
	}

	// Exactly two job directories: the resumed job and the oracle — the
	// crash and restart minted nothing extra.
	entries, err := os.ReadDir(filepath.Join(dataDir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, 0, len(entries))
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("job dirs after crash+restart: %v, want exactly 2", names)
	}
}

// TestMDServeGracefulDrain pins the SIGTERM path: a serving process
// with a finished job exits cleanly on SIGTERM, and its drain writes
// nothing new for completed work.
func TestMDServeGracefulDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildBinary(t)
	dataDir := t.TempDir()
	s := startServer(t, bin, dataDir)
	sr, code := s.submit(t, "", `{"atoms": 108, "steps": 50, "thermostat": "rescale"}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if _, resumed := s.awaitDone(t, sr.ID); resumed {
		t.Fatal("fresh run marked resumed")
	}
	if err := s.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- s.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("mdserve exit after SIGINT: %v", err)
		}
	case <-time.After(60 * time.Second):
		_ = s.cmd.Process.Kill()
		t.Fatal("mdserve did not exit after SIGINT")
	}
	// The terminal record persists for the next process.
	if _, err := os.Stat(filepath.Join(dataDir, "jobs", sr.ID, "sreport.json")); err != nil {
		t.Fatalf("terminal record missing after graceful drain: %v", err)
	}
}
