package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSelfLint is the gate the repository ships under: the module's own
// production tree must lint clean.
func TestSelfLint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("mdlint on the repository exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// scratchModule writes a throwaway module with a seeded floatdet
// violation (float accumulation across a map range) and returns its
// directory.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import "fmt"

func main() {
	m := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3}
	var total float64
	for _, v := range m {
		total += v
	}
	fmt.Println(total)
}
`)
	return dir
}

// TestSeededViolation checks the CI contract end to end: a module with
// a map-range float accumulation must exit non-zero with a floatdet
// finding.
func TestSeededViolation(t *testing.T) {
	dir := scratchModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("mdlint on the seeded module exited %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatdet") || !strings.Contains(stdout.String(), "main.go:9") {
		t.Fatalf("expected a floatdet finding at main.go:9, got:\n%s", stdout.String())
	}
}

// TestJSONOutput checks that -json emits a parseable diagnostic array.
func TestJSONOutput(t *testing.T) {
	dir := scratchModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 || diags[0].Rule != "floatdet" || diags[0].Line != 9 {
		t.Fatalf("diagnostics = %+v, want one floatdet finding at line 9", diags)
	}
}

// TestBenchRecord checks that -bench-json writes an MDLint wall-time
// record in the BENCH_JSON trajectory format.
func TestBenchRecord(t *testing.T) {
	dir := scratchModule(t)
	bench := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-bench-json", bench, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"MDLint/module", "wall_seconds", "findings"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench record missing %q:\n%s", want, s)
		}
	}
}

// TestUsageErrors checks the exit-2 paths: unknown rule, unknown flag,
// unloadable pattern.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-rules", "nosuchrule", "./..."},
		{"-no-such-flag"},
		{"-C", "../..", "./does/not/exist"},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}

// TestList checks that every registered rule is listed.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing rule %q:\n%s", a.Name, stdout.String())
		}
	}
}
