package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSelfLint is the gate the repository ships under: the module's own
// production tree must lint clean.
func TestSelfLint(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("mdlint on the repository exited %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
}

// scratchModule writes a throwaway module with a seeded floatdet
// violation (float accumulation across a map range) and returns its
// directory.
func scratchModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("main.go", `package main

import "fmt"

func main() {
	m := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.3}
	var total float64
	for _, v := range m {
		total += v
	}
	fmt.Println(total)
}
`)
	return dir
}

// TestSeededViolation checks the CI contract end to end: a module with
// a map-range float accumulation must exit non-zero with a floatdet
// finding.
func TestSeededViolation(t *testing.T) {
	dir := scratchModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("mdlint on the seeded module exited %d, want 1\nstdout:\n%s\nstderr:\n%s",
			code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "floatdet") || !strings.Contains(stdout.String(), "main.go:9") {
		t.Fatalf("expected a floatdet finding at main.go:9, got:\n%s", stdout.String())
	}
}

// TestJSONOutput checks that -json emits a parseable diagnostic array.
// The rule subset keeps the count exact: with every rule on, puredet
// would (correctly) add registry-rot findings for the repro kernel
// roots, which do not exist in a scratch module.
func TestJSONOutput(t *testing.T) {
	dir := scratchModule(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-json", "-rules", "floatdet", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal(stdout.Bytes(), &diags); err != nil {
		t.Fatalf("output is not a JSON diagnostic array: %v\n%s", err, stdout.String())
	}
	if len(diags) != 1 || diags[0].Rule != "floatdet" || diags[0].Line != 9 {
		t.Fatalf("diagnostics = %+v, want one floatdet finding at line 9", diags)
	}
}

// TestBenchRecord checks that -bench-json writes an MDLint wall-time
// record in the BENCH_JSON trajectory format.
func TestBenchRecord(t *testing.T) {
	dir := scratchModule(t)
	bench := filepath.Join(t.TempDir(), "bench.json")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-bench-json", bench, "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	data, err := os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{"MDLint/module", "wall_seconds", "findings", "cert_roots", "cert_hotalloc_sites"} {
		if !strings.Contains(s, want) {
			t.Errorf("bench record missing %q:\n%s", want, s)
		}
	}
}

// TestUsageErrors checks the exit-2 paths: unknown rule, unknown flag,
// unloadable pattern.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-rules", "nosuchrule", "./..."},
		{"-no-such-flag"},
		{"-C", "../..", "./does/not/exist"},
		{"-certify", "-rules", "floatdet", "./..."},
		{"-roots", "no-colon-here", "./..."},
	} {
		var stdout, stderr bytes.Buffer
		if code := run(args, &stdout, &stderr); code != 2 {
			t.Errorf("run(%v) exited %d, want 2", args, code)
		}
	}
}

// TestCertifyGolden is the determinism-certificate gate: -certify over
// the repository must exit 0, reproduce the committed golden byte for
// byte, certify every registered kernel root, and carry a non-empty
// hot-path allocation ledger (the committed "before" baseline the
// SoA/arena refactor is measured against).
func TestCertifyGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", "../..", "-certify", "./..."}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("mdlint -certify exited %d, want 0\nstderr:\n%s", code, stderr.String())
	}

	golden, err := os.ReadFile(filepath.Join("..", "..", "DETERMINISM_CERT.json"))
	if err != nil {
		t.Fatalf("missing committed golden: %v", err)
	}
	if !bytes.Equal(stdout.Bytes(), golden) {
		t.Errorf("certificate drifted from DETERMINISM_CERT.json: regenerate with\n\tgo run ./cmd/mdlint -certify ./... > DETERMINISM_CERT.json\nand review the diff")
	}

	var cert analysis.Certificate
	if err := json.Unmarshal(stdout.Bytes(), &cert); err != nil {
		t.Fatalf("certificate is not valid JSON: %v", err)
	}
	if len(cert.Roots) != len(analysis.KernelRoots) {
		t.Errorf("certificate covers %d roots, registry has %d", len(cert.Roots), len(analysis.KernelRoots))
	}
	for _, r := range cert.Roots {
		if r.Verdict != "certified" {
			t.Errorf("root %s verdict %q, want certified (violations: %v)", r.Root, r.Verdict, r.Violations)
		}
	}
	if cert.Hotalloc.Count == 0 || cert.Hotalloc.Count != len(cert.Hotalloc.Sites) {
		t.Errorf("hotalloc baseline count = %d with %d sites; the per-step allocation ledger must be non-empty and self-consistent",
			cert.Hotalloc.Count, len(cert.Hotalloc.Sites))
	}
}

// TestCertifySeeded checks the failure side of certification end to
// end: a module whose kernel root reaches time.Now must exit 1 and
// carry an uncertified verdict in the emitted certificate.
func TestCertifySeeded(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.22\n")
	write("kernel.go", `package scratch

import "time"

// Step is the seeded kernel root; jitter smuggles in the wall clock.
func Step(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x * jitter()
	}
	return sum
}

func jitter() float64 { return float64(time.Now().Nanosecond()) }
`)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-C", dir, "-certify", "-roots", "scratch:Step", "./..."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	var cert analysis.Certificate
	if err := json.Unmarshal(stdout.Bytes(), &cert); err != nil {
		t.Fatalf("stdout is not a certificate: %v\n%s", err, stdout.String())
	}
	if len(cert.Roots) != 1 || cert.Roots[0].Verdict != "uncertified" {
		t.Fatalf("roots = %+v, want one uncertified root", cert.Roots)
	}
	if !strings.Contains(strings.Join(cert.Roots[0].Violations, "\n"), "time.Now") {
		t.Errorf("violations %v do not name time.Now", cert.Roots[0].Violations)
	}
	if !strings.Contains(stderr.String(), "puredet") {
		t.Errorf("diagnostics must go to stderr under -certify, got:\n%s", stderr.String())
	}
}

// TestSummary checks the -summary JSON and the per-rule text footer.
func TestSummary(t *testing.T) {
	dir := scratchModule(t)
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-C", dir, "-summary", "-rules", "floatdet", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1 (stderr: %s)", code, stderr.String())
	}
	var s struct {
		Packages    int            `json:"packages"`
		Diagnostics int            `json:"diagnostics"`
		PerRule     map[string]int `json:"per_rule"`
		WallSeconds float64        `json:"wall_seconds"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("-summary output is not JSON: %v\n%s", err, stdout.String())
	}
	if s.Diagnostics != 1 || s.PerRule["floatdet"] != 1 {
		t.Errorf("summary = %+v, want 1 floatdet diagnostic", s)
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-C", dir, "-rules", "floatdet", "./..."}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "(floatdet 1)") {
		t.Errorf("text footer missing per-rule counts:\n%s", stderr.String())
	}
}

// TestList checks that every registered rule is listed.
func TestList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("-list exited %d, want 0", code)
	}
	for _, a := range analysis.Analyzers() {
		if !strings.Contains(stdout.String(), a.Name) {
			t.Errorf("-list output missing rule %q:\n%s", a.Name, stdout.String())
		}
	}
}
