// Command mdlint runs the project's static-analysis suite
// (internal/analysis) over the module: determinism, precision,
// randomness, cancellation, lock-discipline, and I/O-error invariants
// that the paper's cross-architecture validation story depends on.
//
// Usage:
//
//	mdlint ./...                      # lint the whole module
//	mdlint -rules floatdet,closeerr ./internal/...
//	mdlint -json ./...                # machine-readable findings
//	mdlint -summary ./...             # machine-readable run summary
//	mdlint -certify ./... > CERT.json # determinism certificate on stdout
//	mdlint -certify -roots repro/internal/md:System.Step ./...
//	mdlint -bench-json BENCH_PR9.json ./...   # record lint wall time
//
// -certify forces the full rule set (a certificate produced by a rule
// subset would be vacuously green), writes the machine-readable
// determinism certificate to stdout, and moves diagnostics to stderr so
// the certificate bytes can be redirected or diffed directly against
// the committed golden (DETERMINISM_CERT.json).
//
// Exit status: 0 when clean, 1 when any diagnostic is reported (or,
// under -certify, when any kernel root fails to certify), 2 when the
// module fails to load (build error, unknown rule, bad flags) —
// suitable as a CI gate next to go vet.
//
// Suppress a finding with an in-source annotation carrying a reason:
//
//	sum += v //mdlint:ignore floatdet summed in sorted key order above
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		summary   = fs.Bool("summary", false, "emit a JSON run summary (per-rule counts) instead of diagnostics")
		rules     = fs.String("rules", "", "comma-separated rule subset (default: all)")
		certify   = fs.Bool("certify", false, "emit the determinism certificate to stdout (forces all rules; diagnostics go to stderr)")
		roots     = fs.String("roots", "", "comma-separated kernel-root override (importpath:Func[,importpath:Recv.Func...])")
		benchJSON = fs.String("bench-json", "", "write a BENCH_JSON wall-time record to this file")
		dir       = fs.String("C", ".", "run as if launched from this directory")
		list      = fs.Bool("list", false, "list the registered rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = fmt.Sprintf("packages %v", a.Scope)
			}
			fmt.Fprintf(stdout, "%-10s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return 0
	}

	if *certify && *rules != "" {
		fmt.Fprintln(stderr, "mdlint: -certify runs every rule; -rules would produce a partial certificate")
		return 2
	}
	selected, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "mdlint:", err)
		return 2
	}
	var opts analysis.Options
	if *roots != "" {
		rs, err := analysis.ParseRoots(*roots)
		if err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
		opts.Roots = rs
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	diags, stats, cert, err := analysis.Certify(*dir, patterns, selected, &opts)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "mdlint:", err)
		return 2
	}

	if *benchJSON != "" {
		if err := writeBenchRecord(*benchJSON, wall, stats, cert); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
	}

	switch {
	case *certify:
		// Certificate to stdout, diagnostics to stderr: the stdout bytes
		// are exactly the golden file.
		for _, d := range diags {
			fmt.Fprintln(stderr, d)
		}
		if err := cert.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
		if len(diags) > 0 || !cert.Certified() {
			return 1
		}
		return 0
	case *summary:
		if err := writeSummary(stdout, stats, wall); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
	case *asJSON:
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
	default:
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.File); err == nil && !filepath.IsAbs(rel) {
					d.File = rel
				}
			}
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stderr, "mdlint: %d packages, %d files, %d findings%s in %v\n",
			stats.Packages, stats.Files, stats.Diagnostics, perRuleSummary(stats), wall.Round(time.Millisecond))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// perRuleSummary renders " (floatdet 2, hotalloc 5)" for the text
// footer, sorted by rule name; empty when the run is clean.
func perRuleSummary(stats analysis.Stats) string {
	if len(stats.PerRule) == 0 {
		return ""
	}
	names := make([]string, 0, len(stats.PerRule))
	for name := range stats.PerRule {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s %d", name, stats.PerRule[name]))
	}
	return " (" + strings.Join(parts, ", ") + ")"
}

// runSummary is the -summary JSON shape.
type runSummary struct {
	Packages    int            `json:"packages"`
	Files       int            `json:"files"`
	Diagnostics int            `json:"diagnostics"`
	PerRule     map[string]int `json:"per_rule"`
	WallSeconds float64        `json:"wall_seconds"`
}

func writeSummary(w io.Writer, stats analysis.Stats, wall time.Duration) error {
	s := runSummary{
		Packages:    stats.Packages,
		Files:       stats.Files,
		Diagnostics: stats.Diagnostics,
		PerRule:     stats.PerRule,
		WallSeconds: wall.Seconds(),
	}
	if s.PerRule == nil {
		s.PerRule = map[string]int{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// writeBenchRecord appends the lint cost to the BENCH_JSON trajectory
// via the same sink the kernel benchmarks use, so lint wall time is
// tracked across PRs alongside speedups — now with the certificate's
// coverage stats riding along.
func writeBenchRecord(path string, wall time.Duration, stats analysis.Stats, cert *analysis.Certificate) error {
	sink := report.NewBenchSink()
	values := map[string]float64{
		"wall_seconds": wall.Seconds(),
		"packages":     float64(stats.Packages),
		"files":        float64(stats.Files),
		"findings":     float64(stats.Diagnostics),
	}
	if cert != nil {
		certified := 0
		for _, r := range cert.Roots {
			if r.Verdict == "certified" {
				certified++
			}
		}
		values["cert_roots"] = float64(len(cert.Roots))
		values["cert_roots_certified"] = float64(certified)
		values["cert_reachable"] = float64(len(cert.Reachable))
		values["cert_allowlisted_edges"] = float64(len(cert.Allowed))
		values["cert_hotalloc_sites"] = float64(cert.Hotalloc.Count)
	}
	sink.Record("MDLint/module", values)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sink.WriteJSON(f); err != nil {
		f.Close() //mdlint:ignore closeerr write already failed; the write error is the one to report
		return err
	}
	return f.Close()
}
