// Command mdlint runs the project's static-analysis suite
// (internal/analysis) over the module: determinism, precision,
// randomness, cancellation, and I/O-error invariants that the paper's
// cross-architecture validation story depends on.
//
// Usage:
//
//	mdlint ./...                      # lint the whole module
//	mdlint -rules floatdet,closeerr ./internal/...
//	mdlint -json ./...                # machine-readable findings
//	mdlint -bench-json BENCH_PR4.json ./...   # record lint wall time
//
// Exit status: 0 when clean, 1 when any diagnostic is reported, 2 when
// the module fails to load (build error, unknown rule, bad flags) —
// suitable as a CI gate next to go vet.
//
// Suppress a finding with an in-source annotation carrying a reason:
//
//	sum += v //mdlint:ignore floatdet summed in sorted key order above
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
	"repro/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		asJSON    = fs.Bool("json", false, "emit diagnostics as a JSON array")
		rules     = fs.String("rules", "", "comma-separated rule subset (default: all)")
		benchJSON = fs.String("bench-json", "", "write a BENCH_JSON wall-time record to this file")
		dir       = fs.String("C", ".", "run as if launched from this directory")
		list      = fs.Bool("list", false, "list the registered rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			scope := "all packages"
			if len(a.Scope) > 0 {
				scope = fmt.Sprintf("packages %v", a.Scope)
			}
			fmt.Fprintf(stdout, "%-10s %s (%s)\n", a.Name, a.Doc, scope)
		}
		return 0
	}

	selected, err := analysis.Select(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "mdlint:", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	start := time.Now()
	diags, stats, err := analysis.Run(*dir, patterns, selected)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, "mdlint:", err)
		return 2
	}

	if *benchJSON != "" {
		if err := writeBenchRecord(*benchJSON, wall, stats); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "mdlint:", err)
			return 2
		}
	} else {
		cwd, _ := os.Getwd()
		for _, d := range diags {
			if cwd != "" {
				if rel, err := filepath.Rel(cwd, d.File); err == nil && !filepath.IsAbs(rel) {
					d.File = rel
				}
			}
			fmt.Fprintln(stdout, d)
		}
		fmt.Fprintf(stderr, "mdlint: %d packages, %d files, %d findings in %v\n",
			stats.Packages, stats.Files, stats.Diagnostics, wall.Round(time.Millisecond))
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// writeBenchRecord appends the lint cost to the BENCH_JSON trajectory
// via the same sink the kernel benchmarks use, so lint wall time is
// tracked across PRs alongside speedups.
func writeBenchRecord(path string, wall time.Duration, stats analysis.Stats) error {
	sink := report.NewBenchSink()
	sink.Record("MDLint/module", map[string]float64{
		"wall_seconds": wall.Seconds(),
		"packages":     float64(stats.Packages),
		"files":        float64(stats.Files),
		"findings":     float64(stats.Diagnostics),
	})
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sink.WriteJSON(f); err != nil {
		f.Close() //mdlint:ignore closeerr write already failed; the write error is the one to report
		return err
	}
	return f.Close()
}
