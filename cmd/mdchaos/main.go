// Command mdchaos runs deterministic chaos campaigns against an
// in-process mdserve: seeded schedules of filesystem faults, force
// corruption, simulated crashes, and tenant floods, each replayed and
// checked against the end-to-end invariants in internal/chaos. Every
// failing schedule is shrunk to a minimal reproducer and printed as a
// one-line replay command.
//
// Usage:
//
//	mdchaos                             # default campaign, 200 schedules
//	mdchaos -campaign smoke             # the fast verify-gate sample
//	mdchaos -campaign crash -seed 7 -n 50
//	mdchaos -replay '{"name":"x","seed":1,...}'   # one schedule, verbatim
//	mdchaos -list                       # the registered campaigns
//
// Campaigns are exactly reproducible: the same -campaign/-seed/-n
// triple always samples the same schedules, and a -replay of a printed
// reproducer re-executes the identical fault sequence.
//
// Exit status: 0 when every invariant holds, 1 when any schedule
// fails, 2 on bad flags or infrastructure errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"

	"repro/internal/chaos"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mdchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		campaign = fs.String("campaign", "default", "campaign generator to sample from")
		seed     = fs.Uint64("seed", 1234, "campaign seed: same seed, same schedules")
		n        = fs.Int("n", 0, "schedules to run (0 = the campaign's standard size)")
		replay   = fs.String("replay", "", "replay one schedule from its JSON line instead of a campaign")
		scratch  = fs.String("scratch", "", "scratch directory (default: a fresh temp dir, removed on success)")
		list     = fs.Bool("list", false, "list the registered campaigns and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range chaos.Campaigns() {
			fmt.Fprintln(stdout, name)
		}
		return 0
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	dir := *scratch
	if dir == "" {
		var err error
		dir, err = os.MkdirTemp("", "mdchaos-*")
		if err != nil {
			fmt.Fprintf(stderr, "mdchaos: %v\n", err)
			return 2
		}
	}

	if *replay != "" {
		sched, err := chaos.ParseSchedule(*replay)
		if err != nil {
			fmt.Fprintf(stderr, "mdchaos: %v\n", err)
			return 2
		}
		res, err := chaos.Replay(ctx, dir, sched)
		if err != nil {
			fmt.Fprintf(stderr, "mdchaos: %v\n", err)
			return 2
		}
		if res.Failed() {
			for _, v := range res.Violations {
				fmt.Fprintf(stdout, "FAIL %s: %s\n", sched.Name, v)
			}
			fmt.Fprintf(stdout, "scratch kept at %s\n", dir)
			return 1
		}
		fmt.Fprintf(stdout, "ok %s: %d acked, %d refused, all invariants hold\n",
			sched.Name, res.Acked, res.Refused)
		if *scratch == "" {
			_ = os.RemoveAll(dir)
		}
		return 0
	}

	c, err := chaos.Generate(*campaign, *seed, *n)
	if err != nil {
		fmt.Fprintf(stderr, "mdchaos: %v\n", err)
		return 2
	}
	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	rep, err := chaos.RunCampaign(ctx, c, dir, logf)
	if err != nil {
		fmt.Fprintf(stderr, "mdchaos: %v\n", err)
		return 2
	}
	fmt.Fprintf(stdout, "campaign %s: %d schedules, %d passed, %d refusals, %d failures (%d shrink replays)\n",
		rep.Campaign, rep.Ran, rep.Passed, rep.Refused, len(rep.Failures), rep.ShrinkRan)
	if len(rep.Failures) > 0 {
		for _, f := range rep.Failures {
			fmt.Fprintf(stdout, "FAIL %s: %v\n", f.Result.Schedule.Name, f.Result.Violations)
			fmt.Fprintf(stdout, "  repro: %s\n", f.Repro)
		}
		fmt.Fprintf(stdout, "scratch kept at %s\n", dir)
		return 1
	}
	if *scratch == "" {
		_ = os.RemoveAll(dir)
	}
	return 0
}
