package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errb.String())
	}
	for _, want := range []string{"default", "smoke", "fs", "crash", "flood"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("campaign %q missing from -list output:\n%s", want, out.String())
		}
	}
}

func TestBadFlags(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-campaign", "nope", "-n", "1"}, &out, &errb); code != 2 {
		t.Fatalf("unknown campaign: exit %d, want 2", code)
	}
	if code := run([]string{"-replay", "{not json"}, &out, &errb); code != 2 {
		t.Fatalf("bad replay JSON: exit %d, want 2", code)
	}
	if code := run([]string{"-bogus"}, &out, &errb); code != 2 {
		t.Fatalf("bad flag: exit %d, want 2", code)
	}
}

func TestReplayOneSchedule(t *testing.T) {
	var out, errb strings.Builder
	line := `{"name":"cli","seed":3,"jobs":1,"steps":20,"faults":[{"site":"fs-sync","kind":"error","at_call":2}]}`
	code := run([]string{"-replay", line, "-scratch", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "ok cli") {
		t.Fatalf("unexpected output: %s", out.String())
	}
}

func TestSmokeCampaignCLI(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-campaign", "smoke", "-seed", "42", "-scratch", t.TempDir()}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "12 passed") {
		t.Fatalf("unexpected summary: %s", out.String())
	}
}
