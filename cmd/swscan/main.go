// Command swscan scans a FASTA database with a query sequence using
// Smith-Waterman local alignment — the related-work workload the paper
// cites ("Bio-Sequence Database Scanning on a GPU") — on the CPU
// reference and on the modeled GPU, verifying the scores agree and
// reporting the modeled GPU time.
//
// Usage:
//
//	swscan -query ACGTTGCA -db sequences.fasta
//	swscan -query-file query.fasta -db sequences.fasta -top 10
//	swscan -demo          # synthetic query + database, no files needed
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/gpu"
	"repro/internal/report"
	"repro/internal/seqalign"
	"repro/internal/xrand"
)

func main() {
	var (
		query     = flag.String("query", "", "query sequence (residues)")
		queryFile = flag.String("query-file", "", "FASTA file with the query (first record)")
		dbFile    = flag.String("db", "", "FASTA database to scan")
		top       = flag.Int("top", 5, "hits to report")
		demo      = flag.Bool("demo", false, "run on a synthetic query and database")
	)
	flag.Parse()
	if err := run(*query, *queryFile, *dbFile, *top, *demo); err != nil {
		fmt.Fprintln(os.Stderr, "swscan:", err)
		os.Exit(1)
	}
}

func run(query, queryFile, dbFile string, top int, demo bool) error {
	var q []byte
	var names []string
	var db [][]byte

	switch {
	case demo:
		rng := xrand.New(7)
		q = randomDNA(rng, 64)
		const dbSize = 40
		db = make([][]byte, dbSize)
		names = make([]string, dbSize)
		for i := range db {
			db[i] = randomDNA(rng, 48+rng.Intn(64))
			names[i] = fmt.Sprintf("synthetic-%02d", i)
		}
		// Plant the query (mutated) into one subject so the demo has a
		// meaningful best hit.
		planted := append([]byte(nil), q...)
		planted[10], planted[30] = 'A', 'C'
		db[17] = append(append(randomDNA(rng, 20), planted...), randomDNA(rng, 20)...)
		names[17] = "synthetic-17-with-planted-query"
	default:
		switch {
		case query != "":
			q = []byte(query)
		case queryFile != "":
			recs, err := readFASTA(queryFile)
			if err != nil {
				return err
			}
			if len(recs) == 0 {
				return fmt.Errorf("query file %s has no records", queryFile)
			}
			q = recs[0].Seq
		default:
			return fmt.Errorf("need -query, -query-file, or -demo")
		}
		if dbFile == "" {
			return fmt.Errorf("need -db (or -demo)")
		}
		recs, err := readFASTA(dbFile)
		if err != nil {
			return err
		}
		if len(recs) == 0 {
			return fmt.Errorf("database %s has no records", dbFile)
		}
		db = seqalign.Sequences(recs)
		names = make([]string, len(recs))
		for i, r := range recs {
			names[i] = r.ID
		}
	}

	sc := seqalign.DefaultScoring()
	ref, err := seqalign.ScanDatabase(q, db, sc)
	if err != nil {
		return err
	}
	dev, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		return err
	}
	hits, bd, err := seqalign.SWGPUScan(dev, q, db, sc)
	if err != nil {
		return err
	}
	for i := range ref {
		if hits[i] != ref[i] {
			return fmt.Errorf("GPU score diverged at subject %d: %+v vs %+v", i, hits[i], ref[i])
		}
	}

	fmt.Printf("query: %d residues; database: %d sequences\n", len(q), len(db))
	fmt.Printf("GPU scan verified against CPU reference; modeled GPU time %s (%d invocations, 1 dispatch)\n\n",
		report.Seconds(bd.Total()), len(db))
	t := report.NewTable(fmt.Sprintf("top %d hits", top), "rank", "subject", "score", "aligned")
	for rank, h := range seqalign.TopHits(hits, top) {
		al, err := seqalign.SWAlign(q, db[h.Index], sc)
		if err != nil {
			return err
		}
		t.AddRow(fmt.Sprintf("%d", rank+1), names[h.Index], fmt.Sprintf("%d", h.Score),
			fmt.Sprintf("%d cols, %.0f%% identity", len(al.AlignedA), 100*al.Identity()))
	}
	return t.Render(os.Stdout)
}

func readFASTA(path string) ([]seqalign.FASTARecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seqalign.ParseFASTA(f)
}

func randomDNA(rng *xrand.Source, n int) []byte {
	const alphabet = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(4)]
	}
	return s
}
