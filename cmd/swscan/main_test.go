package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemo(t *testing.T) {
	if err := run("", "", "", 3, true); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFiles(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "db.fasta")
	if err := os.WriteFile(db, []byte(">s1 first\nACGTACGTACGT\n>s2\nTTTTTTTT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("ACGTACGT", "", db, 2, false); err != nil {
		t.Fatal(err)
	}
	qf := filepath.Join(dir, "q.fasta")
	if err := os.WriteFile(qf, []byte(">q\nACGTACGT\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", qf, db, 1, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "", "", 3, false); err == nil {
		t.Fatal("missing query accepted")
	}
	if err := run("ACGT", "", "", 3, false); err == nil {
		t.Fatal("missing db accepted")
	}
	if err := run("ACGT", "", "/nonexistent/db.fasta", 3, false); err == nil {
		t.Fatal("missing db file accepted")
	}
	dir := t.TempDir()
	empty := filepath.Join(dir, "empty.fasta")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("ACGT", "", empty, 3, false); err == nil {
		t.Fatal("empty db accepted")
	}
	if err := run("", empty, empty, 3, false); err == nil {
		t.Fatal("empty query file accepted")
	}
}
