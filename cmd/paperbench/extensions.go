package main

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/cell"
	"repro/internal/core"
	"repro/internal/gpu"
	"repro/internal/mpp"
	"repro/internal/mta"
	"repro/internal/report"
	"repro/internal/seqalign"
	"repro/internal/xrand"
)

// Extension experiments beyond the paper's own artifacts: the XMT
// projection its conclusion anticipates and the related-work
// Smith-Waterman ports. Run explicitly with
//
//	paperbench -experiment xmt
//	paperbench -experiment smithwaterman
//
// They are excluded from -experiment all, which regenerates exactly
// the paper's tables and figures.

func extXMT(w io.Writer, csv, quick, bars bool) error {
	t := report.NewTable(
		"Extension: Cray XMT projection (paper section 6: \"We anticipate significant performance gains from the upcoming XMT\")",
		"processors", "locality", "modeled speedup vs one MTA-2 processor")
	// Memory-op fraction of the MD force loop's instruction mix.
	const memFrac = 0.12
	for _, procs := range []int{1, 4, 64, 1024, 8000} {
		for _, locality := range []float64{1.0, 0.8, 0.0} {
			s, err := mta.XMTProjection(memFrac, procs, locality)
			if err != nil {
				return err
			}
			t.AddRow(strconv.Itoa(procs), fmt.Sprintf("%.0f%%", 100*locality), fmt.Sprintf("%.1fx", s))
		}
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if !csv {
		fmt.Fprintln(w, "locality is the new variable the MTA-2 never had: at poor locality the")
		fmt.Fprintln(w, "blended memory latency exceeds what 128 streams can hide (section 3.3's warning).")
	}
	return nil
}

func extSmithWaterman(w io.Writer, csv, quick, bars bool) error {
	gdev, err := gpu.New(gpu.DefaultConfig())
	if err != nil {
		return err
	}
	mdev, err := mta.New(mta.DefaultConfig())
	if err != nil {
		return err
	}
	t := report.NewTable(
		"Extension: Smith-Waterman on the modeled devices (related work, section 4)",
		"length", "score", "GPU", "MTA-2", "GPU dispatches")
	rng := xrand.New(1984)
	lengths := []int{64, 256, 1024}
	if quick {
		lengths = []int{32, 128}
	}
	for _, n := range lengths {
		a := randomDNA(rng, n)
		b := randomDNA(rng, n)
		ref, err := seqalign.SWScore(a, b, seqalign.DefaultScoring())
		if err != nil {
			return err
		}
		gScore, gbd, err := seqalign.SWGPU(gdev, a, b, seqalign.DefaultScoring())
		if err != nil {
			return err
		}
		mScore, mbd, err := seqalign.SWMTA(mdev, a, b, seqalign.DefaultScoring())
		if err != nil {
			return err
		}
		if gScore != ref || mScore != ref {
			return fmt.Errorf("score mismatch at n=%d: ref %d, gpu %d, mta %d", n, ref, gScore, mScore)
		}
		t.AddRow(strconv.Itoa(n), strconv.Itoa(ref),
			report.Seconds(gbd.Total()), report.Seconds(mbd.Total()),
			strconv.Itoa(2*n-1))
	}
	return emit(w, t, csv)
}

func randomDNA(rng *xrand.Source, n int) []byte {
	const alphabet = "ACGT"
	s := make([]byte, n)
	for i := range s {
		s[i] = alphabet[rng.Intn(4)]
	}
	return s
}

// extGPUGenerations sweeps GPU pipeline counts across the hardware
// generations the paper describes ("16 parallel pixel pipelines ... the
// next generation from NVIDIA contained 24 pipelines, and that number
// is growing"), measuring the MD kernel at the paper's 2048 atoms.
func extGPUGenerations(w io.Writer, csv, quick, bars bool) error {
	atoms := 2048
	steps := 10
	if quick {
		atoms, steps = 512, 4
	}
	wk, err := core.StandardWorkload(atoms, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: GPU generations (%d atoms, %d steps; section 3.2's growing pipeline counts)", atoms, steps),
		"pipelines", "generation", "modeled runtime", "compute share")
	for _, gen := range []struct {
		pipes int
		name  string
	}{
		{16, "GeForce 6800 (Figure 2)"},
		{24, "GeForce 7900GTX (measured part)"},
		{48, "projected"},
		{128, "projected (unified shaders)"},
	} {
		cfg := gpu.DefaultConfig()
		cfg.Pipelines = gen.pipes
		dev, err := gpu.New(cfg)
		if err != nil {
			return err
		}
		res, err := dev.Run(wk)
		if err != nil {
			return err
		}
		t.AddRow(strconv.Itoa(gen.pipes), gen.name, report.Seconds(res.Seconds()),
			fmt.Sprintf("%.0f%%", 100*res.Time.Component("compute")/res.Seconds()))
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if !csv {
		fmt.Fprintln(w, "pipeline scaling saturates as the fixed PCIe + dispatch costs take over —")
		fmt.Fprintln(w, "the same wall the small-N end of Figure 7 runs into.")
	}
	return nil
}

// extMPP reproduces the motivation claim of section 2: conventional
// message-passing MD stops scaling at a few hundred processors, far
// below a 64K-core Blue Gene/L — which is why the paper turns to
// single-chip accelerators.
func extMPP(w io.Writer, csv, quick, bars bool) error {
	c := mpp.DefaultConfig()
	const atoms = 100000
	t := report.NewTable(
		fmt.Sprintf("Extension: MPP strong-scaling model (%d-atom system; section 2's motivation)", atoms),
		"processors", "step time", "speedup", "efficiency")
	for p := 1; p <= 65536; p *= 4 {
		total, _, _, err := c.StepTime(atoms, p)
		if err != nil {
			return err
		}
		s, err := c.Speedup(atoms, p)
		if err != nil {
			return err
		}
		e, err := c.Efficiency(atoms, p)
		if err != nil {
			return err
		}
		t.AddRow(strconv.Itoa(p), report.Seconds(total), fmt.Sprintf("%.0fx", s), fmt.Sprintf("%.0f%%", 100*e))
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	limit, err := c.ScalingLimit(atoms, 0.5, 65536)
	if err != nil {
		return err
	}
	if !csv {
		fmt.Fprintf(w, "efficiency holds to ~%d processors and collapses well before 64K —\n", limit)
		fmt.Fprintln(w, "\"the current scaling limits of most MD algorithms ... is a few hundred processors\".")
	}
	return nil
}

// extAmortization sweeps the time-step count for the Cell's
// launch-once mode: "Amortizing the thread launch overhead across even
// more time steps would further increase this performance gap"
// (section 5.1).
func extAmortization(w io.Writer, csv, quick, bars bool) error {
	atoms := 1024
	if quick {
		atoms = 512
	}
	t := report.NewTable(
		fmt.Sprintf("Extension: launch-overhead amortization vs run length (%d atoms, 8 SPEs; section 5.1's closing remark)", atoms),
		"steps", "total runtime", "spawn share", "speedup vs Opteron")
	op := core.NewOpteron()
	dev, err := core.NewCell(8, cell.LaunchOnce)
	if err != nil {
		return err
	}
	for _, steps := range []int{1, 5, 10, 50, 100} {
		wk, err := core.StandardWorkload(atoms, steps)
		if err != nil {
			return err
		}
		res, err := dev.Run(wk)
		if err != nil {
			return err
		}
		ro, err := op.Run(wk)
		if err != nil {
			return err
		}
		t.AddRow(strconv.Itoa(steps), report.Seconds(res.Seconds()),
			fmt.Sprintf("%.1f%%", 100*res.Time.Component("spawn")/res.Seconds()),
			fmt.Sprintf("%.2fx", ro.Seconds()/res.Seconds()))
	}
	return emit(w, t, csv)
}
