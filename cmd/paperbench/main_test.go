package main

import (
	"strings"
	"testing"
)

func TestRunRejectsUnknownExperiment(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig99", false, true, false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestQuickFig5ProducesMonotoneTable(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig5", false, true, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Figure 5", "original", "simd-accel", "cumulative speedup"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestQuickCSVMode(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig5", true, true, false); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "variant,runtime,cumulative speedup") {
		t.Fatalf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "----") {
		t.Fatalf("CSV output contains table rule:\n%s", out)
	}
}

func TestExtensionExperimentsDispatch(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "xmt", false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "XMT") {
		t.Fatalf("XMT table missing:\n%s", sb.String())
	}
	sb.Reset()
	if err := run(&sb, "smithwaterman", false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Smith-Waterman") {
		t.Fatalf("SW table missing:\n%s", sb.String())
	}
}

func TestQuickBannerPrinted(t *testing.T) {
	var sb strings.Builder
	if err := run(&sb, "fig5", false, true, false); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "quick smoke run") {
		t.Fatal("quick banner missing")
	}
}

func TestSizes(t *testing.T) {
	atoms, steps, sweep := sizes(false)
	if atoms != 2048 || steps != 10 || len(sweep) == 0 {
		t.Fatalf("full sizes: %d %d %v", atoms, steps, sweep)
	}
	qa, qs, qsweep := sizes(true)
	if qa >= atoms || qs >= steps || len(qsweep) == 0 {
		t.Fatalf("quick sizes not reduced: %d %d %v", qa, qs, qsweep)
	}
	// The quick sweep still reaches the L1 knee for fig9's shape.
	if qsweep[len(qsweep)-1] < 4096 {
		t.Fatalf("quick sweep %v does not reach the cache knee", qsweep)
	}
}

// TestAllExperimentsQuick drives every paper artifact end to end at
// quick sizes — the full pipeline including tables, bar charts, and
// series charts.
func TestAllExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var sb strings.Builder
	if err := run(&sb, "all", false, true, true); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"Figure 5", "Figure 6", "Table 1", "Figure 7", "Figure 8", "Figure 9",
		"simd-accel", "spawn fraction", "speedup vs Opteron",
		"GPU speedup", "partially multithreaded", "MTA",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in combined output", want)
		}
	}
}

func TestRemainingExtensionsDispatch(t *testing.T) {
	for _, id := range []string{"gpugen", "mpp", "amortization"} {
		var sb strings.Builder
		if err := run(&sb, id, false, true, false); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(sb.String(), "Extension:") {
			t.Fatalf("%s produced no extension table", id)
		}
	}
}
