// Command paperbench regenerates every table and figure of the paper's
// evaluation section from the device models and prints the same rows
// the paper reports, as aligned tables (default) or CSV.
//
// Usage:
//
//	paperbench                 # everything at paper scale (2048 atoms, 10 steps)
//	paperbench -experiment fig5
//	paperbench -experiment table1 -csv
//	paperbench -quick          # reduced sizes for a fast smoke run
//
// Every run cross-validates each device's physics against the reference
// implementation before reporting its modeled time; a result that gets
// the physics wrong aborts the experiment.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "artifact to regenerate: fig5|fig6|table1|fig7|fig8|fig9|all, or the extensions xmt|smithwaterman")
		csv        = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		markdown   = flag.Bool("markdown", false, "emit markdown tables (for EXPERIMENTS.md)")
		quick      = flag.Bool("quick", false, "use reduced workload sizes (smoke run)")
		bars       = flag.Bool("bars", true, "render text bar charts beneath tables")
	)
	flag.Parse()
	if *markdown {
		emitMode = emitMarkdown
	} else if *csv {
		emitMode = emitCSV
	}
	if err := run(os.Stdout, *experiment, *csv || *markdown, *quick, *bars); err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// sizes returns the experiment dimensions, reduced in quick mode. The
// quick sweep still reaches 4096 atoms so the Figure 9 cache bend is
// visible; the fixed-size experiments shrink below the scale where the
// paper's overhead-vs-compute ratios hold.
func sizes(quick bool) (atoms, steps int, sweep []int) {
	if quick {
		return 512, 4, []int{256, 1024, 4096}
	}
	return core.PaperAtoms, core.PaperSteps, core.PaperSweepNs
}

func run(w io.Writer, experiment string, csv, quick, bars bool) error {
	type runner struct {
		id string
		fn func(io.Writer, bool, bool, bool) error
	}
	all := []runner{
		{"fig5", fig5}, {"fig6", fig6}, {"table1", table1},
		{"fig7", fig7}, {"fig8", fig8}, {"fig9", fig9},
	}
	// Extensions beyond the paper's artifacts, run only when named.
	extensions := []runner{
		{"xmt", extXMT}, {"smithwaterman", extSmithWaterman}, {"gpugen", extGPUGenerations},
		{"mpp", extMPP}, {"amortization", extAmortization},
	}
	if quick {
		fmt.Fprintln(w, "[quick smoke run: reduced sizes; the paper's headline ratios hold at full scale (-quick=false)]")
	}
	if experiment != "all" {
		for _, r := range append(append([]runner(nil), all...), extensions...) {
			if r.id == experiment {
				return r.fn(w, csv, quick, bars)
			}
		}
		return fmt.Errorf("unknown experiment %q (want fig5..fig9, table1, all, or the extensions xmt|smithwaterman|gpugen|mpp|amortization)", experiment)
	}
	for i, r := range all {
		if i > 0 {
			fmt.Fprintln(w)
		}
		if err := r.fn(w, csv, quick, bars); err != nil {
			return fmt.Errorf("%s: %w", r.id, err)
		}
	}
	return nil
}

// emitMode selects the table renderer for this process.
var emitMode = emitText

const (
	emitText = iota
	emitCSV
	emitMarkdown
)

func emit(w io.Writer, t *report.Table, plainSuppressed bool) error {
	switch {
	case plainSuppressed && emitMode == emitMarkdown:
		return t.RenderMarkdown(w)
	case plainSuppressed && emitMode == emitCSV:
		return t.RenderCSV(w)
	case plainSuppressed:
		// run() was called with csv=true programmatically (tests):
		// default to CSV for backward compatibility.
		return t.RenderCSV(w)
	default:
		return t.Render(w)
	}
}

func secs(s float64) string { return report.Seconds(s) }

func fig5(w io.Writer, csv, quick, bars bool) error {
	atoms, _, _ := sizes(quick)
	rows, err := core.Fig5(atoms)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 5: SIMD optimization of the SPE acceleration kernel (%d atoms, 1 SPE)", atoms),
		"variant", "runtime", "cumulative speedup")
	labels := make([]string, 0, len(rows))
	values := make([]float64, 0, len(rows))
	for _, r := range rows {
		t.AddRow(r.Variant, secs(r.Seconds), fmt.Sprintf("%.2fx", rows[0].Seconds/r.Seconds))
		labels = append(labels, r.Variant)
		values = append(values, r.Seconds)
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if bars && !csv {
		return report.BarChart(w, "", labels, values, 50)
	}
	return nil
}

func fig6(w io.Writer, csv, quick, bars bool) error {
	atoms, steps, _ := sizes(quick)
	rows, err := core.Fig6(atoms, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 6: SPE launch overhead (%d atoms, %d steps)", atoms, steps),
		"configuration", "total runtime", "spawn overhead", "spawn fraction")
	labels := make([]string, 0, 2*len(rows))
	values := make([]float64, 0, 2*len(rows))
	for _, r := range rows {
		t.AddRow(r.Config, secs(r.Total), secs(r.Spawn), fmt.Sprintf("%.1f%%", 100*r.Spawn/r.Total))
		labels = append(labels, r.Config+" total", r.Config+" spawn")
		values = append(values, r.Total, r.Spawn)
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if bars && !csv {
		return report.BarChart(w, "", labels, values, 50)
	}
	return nil
}

func table1(w io.Writer, csv, quick, bars bool) error {
	atoms, steps, _ := sizes(quick)
	rows, err := core.Table1(atoms, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Table 1: performance comparison of MD calculations (%d atoms, %d steps)", atoms, steps),
		"configuration", "runtime", "speedup vs Opteron")
	for _, r := range rows {
		t.AddRow(r.Config, secs(r.Seconds), fmt.Sprintf("%.2fx", r.SpeedupVsOpteron))
	}
	return emit(w, t, csv)
}

func fig7(w io.Writer, csv, quick, bars bool) error {
	_, steps, sweep := sizes(quick)
	if !quick {
		sweep = core.PaperSweepGPUNs
	}
	rows, err := core.Fig7(sweep, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 7: GPU vs Opteron runtime (%d steps)", steps),
		"atoms", "Opteron", "GPU", "GPU speedup")
	var cpuPts, gpuPts []report.Point
	for _, r := range rows {
		t.AddRow(strconv.Itoa(r.N), secs(r.Opteron), secs(r.GPU), fmt.Sprintf("%.2fx", r.Opteron/r.GPU))
		lx := logN(r.N)
		cpuPts = append(cpuPts, report.Point{X: lx, Y: r.Opteron})
		gpuPts = append(gpuPts, report.Point{X: lx, Y: r.GPU})
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if bars && !csv {
		chart := report.NewSeriesChart("")
		chart.LogY = true
		chart.YLabel = "seconds; x: log2(atoms)"
		chart.Add("Opteron", cpuPts)
		chart.Add("GPU", gpuPts)
		return chart.Render(w)
	}
	return nil
}

// logN maps an atom count onto a log2 x coordinate for the charts.
func logN(n int) float64 {
	lx := 0.0
	for v := n; v > 1; v /= 2 {
		lx++
	}
	return lx
}

func fig8(w io.Writer, csv, quick, bars bool) error {
	_, steps, sweep := sizes(quick)
	rows, err := core.Fig8(sweep, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 8: fully vs partially multithreaded MD kernel on the MTA-2 (%d steps)", steps),
		"atoms", "fully multithreaded", "partially multithreaded", "ratio")
	var fullPts, partPts []report.Point
	for _, r := range rows {
		t.AddRow(strconv.Itoa(r.N), secs(r.Fully), secs(r.Partially), fmt.Sprintf("%.1fx", r.Partially/r.Fully))
		lx := logN(r.N)
		fullPts = append(fullPts, report.Point{X: lx, Y: r.Fully})
		partPts = append(partPts, report.Point{X: lx, Y: r.Partially})
	}
	if err := emit(w, t, csv); err != nil {
		return err
	}
	if bars && !csv {
		chart := report.NewSeriesChart("")
		chart.LogY = true
		chart.YLabel = "seconds; x: log2(atoms)"
		chart.Add("fully multithreaded", fullPts)
		chart.Add("partially multithreaded", partPts)
		return chart.Render(w)
	}
	return nil
}

func fig9(w io.Writer, csv, quick, bars bool) error {
	_, steps, sweep := sizes(quick)
	rows, err := core.Fig9(sweep, steps)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("Figure 9: runtime increase relative to the %d-atom run (%d steps)", rows[0].N, steps),
		"atoms", "MTA", "Opteron")
	for _, r := range rows {
		t.AddRow(strconv.Itoa(r.N), fmt.Sprintf("%.1f", r.MTARel), fmt.Sprintf("%.1f", r.OpteronRel))
	}
	return emit(w, t, csv)
}
