// benchdiff joins two BENCH_*.json trajectory files (JSON Lines of
// report.BenchRecord, one per benchmark arm) by bench name and prints
// the per-metric ratio new/old for every metric the two runs share —
// the cross-PR comparison tool behind scripts/bench_diff.sh.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//
// Output is one line per (bench, metric) pair in the NEW file's
// order with metrics sorted, so diffs of diffs stay stable. Benches
// or metrics present in only one file are listed at the end rather
// than silently dropped; a ratio needs both sides.
package main

import (
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	if len(args) != 2 {
		return fmt.Errorf("usage: benchdiff OLD.json NEW.json")
	}
	oldRecs, err := readFile("old", args[0])
	if err != nil {
		return err
	}
	newRecs, err := readFile("new", args[1])
	if err != nil {
		return err
	}

	oldBy := make(map[string]map[string]float64, len(oldRecs))
	for _, r := range oldRecs {
		oldBy[r.Bench] = r.Metrics
	}

	matched := make(map[string]bool)
	fmt.Fprintf(w, "%-52s %-24s %14s %14s %8s\n", "bench", "metric", "old", "new", "ratio")
	for _, nr := range newRecs {
		om, ok := oldBy[nr.Bench]
		if !ok {
			continue
		}
		matched[nr.Bench] = true
		keys := make([]string, 0, len(nr.Metrics))
		for k := range nr.Metrics {
			if _, shared := om[k]; shared {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		for _, k := range keys {
			ov, nv := om[k], nr.Metrics[k]
			ratio := "n/a"
			if ov != 0 {
				ratio = fmt.Sprintf("%.3f", nv/ov)
			}
			fmt.Fprintf(w, "%-52s %-24s %14.6g %14.6g %8s\n", nr.Bench, k, ov, nv, ratio)
		}
	}

	var onlyNew, onlyOld []string
	for _, nr := range newRecs {
		if !matched[nr.Bench] {
			onlyNew = append(onlyNew, nr.Bench)
		}
	}
	for _, or := range oldRecs {
		found := false
		for _, nr := range newRecs {
			if nr.Bench == or.Bench {
				found = true
				break
			}
		}
		if !found {
			onlyOld = append(onlyOld, or.Bench)
		}
	}
	if len(onlyNew) > 0 {
		fmt.Fprintf(w, "only in %s:\n", "new")
		for _, b := range onlyNew {
			fmt.Fprintf(w, "  %s\n", b)
		}
	}
	if len(onlyOld) > 0 {
		fmt.Fprintf(w, "only in %s:\n", "old")
		for _, b := range onlyOld {
			fmt.Fprintf(w, "  %s\n", b)
		}
	}
	return nil
}

// readFile loads one side of the diff. The error paths are the ones a
// cross-PR comparison actually hits — a BENCH_*.json that was never
// generated, or one that exists but holds no parseable records (an
// interrupted bench run, a truncated copy) — and each says which side
// and which file, not just "no such file" or a silent empty diff.
func readFile(side, path string) ([]report.BenchRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%s file %s does not exist — generate it with BENCH_JSON=%s go test -bench ...", side, path, path)
		}
		return nil, fmt.Errorf("%s file: %w", side, err)
	}
	defer f.Close()
	recs, err := report.ReadBenchRecords(f)
	if err != nil {
		return nil, fmt.Errorf("%s file %s: %w", side, path, err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("%s file %s contains no parseable bench records — was the bench run interrupted?", side, path)
	}
	return recs, nil
}
