package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDiffJoinsByBenchAndPrintsRatios(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json",
		`{"bench":"A/x","metrics":{"ns_per_op":200,"speedup":1.0}}
{"bench":"gone","metrics":{"ns_per_op":5}}
`)
	newPath := writeFile(t, dir, "new.json",
		`{"bench":"A/x","metrics":{"ns_per_op":100,"speedup":2.0,"extra":7}}
{"bench":"fresh","metrics":{"ns_per_op":9}}
`)
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	// Shared metrics produce ratio lines: 100/200 = 0.5, 2/1 = 2.
	if !strings.Contains(s, "0.500") {
		t.Errorf("missing ns_per_op ratio 0.500 in:\n%s", s)
	}
	if !strings.Contains(s, "2.000") {
		t.Errorf("missing speedup ratio 2.000 in:\n%s", s)
	}
	// The unshared metric must not produce a ratio row.
	if strings.Contains(s, "extra") {
		t.Errorf("unshared metric leaked into the join:\n%s", s)
	}
	// Unmatched benches are listed, not dropped.
	if !strings.Contains(s, "fresh") || !strings.Contains(s, "gone") {
		t.Errorf("unmatched benches missing from output:\n%s", s)
	}
}

func TestDiffZeroDenominator(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFile(t, dir, "old.json", `{"bench":"A","metrics":{"m":0}}`+"\n")
	newPath := writeFile(t, dir, "new.json", `{"bench":"A","metrics":{"m":3}}`+"\n")
	var out bytes.Buffer
	if err := run([]string{oldPath, newPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "n/a") {
		t.Errorf("zero old value should print n/a, got:\n%s", out.String())
	}
}

func TestDiffBadArgsAndMissingFile(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing files accepted")
	}
}

// TestDiffMissingFileSaysWhichSide pins the operator-facing error
// text: a missing input names the side and the path, and tells the
// user how to generate it — not a bare ENOENT with no context.
func TestDiffMissingFileSaysWhichSide(t *testing.T) {
	dir := t.TempDir()
	present := writeFile(t, dir, "present.json", `{"bench":"A","metrics":{"m":1}}`+"\n")
	missing := filepath.Join(dir, "never-written.json")

	err := run([]string{missing, present}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing old file accepted")
	}
	for _, want := range []string{"old file", missing, "BENCH_JSON"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("old-side error %q missing %q", err, want)
		}
	}

	err = run([]string{present, missing}, &bytes.Buffer{})
	if err == nil {
		t.Fatal("missing new file accepted")
	}
	if !strings.Contains(err.Error(), "new file") {
		t.Errorf("new-side error %q does not name the side", err)
	}
}

// TestDiffZeroRecordsIsAnError pins the empty-input contract: a file
// that exists but yields no parseable records (empty, or truncated
// before the first complete record) is an explicit error naming the
// file — previously it produced a silent empty diff, indistinguishable
// from "no shared benches".
func TestDiffZeroRecordsIsAnError(t *testing.T) {
	dir := t.TempDir()
	good := writeFile(t, dir, "good.json", `{"bench":"A","metrics":{"m":1}}`+"\n")
	empty := writeFile(t, dir, "empty.json", "")

	var out bytes.Buffer
	err := run([]string{empty, good}, &out)
	if err == nil {
		t.Fatalf("empty old file accepted; output:\n%s", out.String())
	}
	for _, want := range []string{"old file", empty, "no parseable bench records"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("empty-file error %q missing %q", err, want)
		}
	}
	if err := run([]string{good, empty}, &out); err == nil || !strings.Contains(err.Error(), "new file") {
		t.Fatalf("empty new file: err = %v, want new-side zero-records error", err)
	}

	// Torn mid-record: the decode error itself surfaces, with the path.
	torn := writeFile(t, dir, "torn.json", `{"bench":"A","met`)
	if err := run([]string{torn, good}, &out); err == nil || !strings.Contains(err.Error(), "torn.json") {
		t.Fatalf("torn file: err = %v, want decode error naming the file", err)
	}
}
