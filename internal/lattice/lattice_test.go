package lattice

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestGenerateCounts(t *testing.T) {
	for _, kind := range []Kind{SimpleCubic, FCC} {
		for _, n := range []int{1, 2, 7, 32, 100, 256, 500, 2048} {
			st, err := Generate(Config{N: n, Density: 0.8, Temperature: 1.0, Kind: kind, Seed: 1})
			if err != nil {
				t.Fatalf("%v n=%d: %v", kind, n, err)
			}
			if len(st.Pos) != n || len(st.Vel) != n {
				t.Fatalf("%v n=%d: got %d positions, %d velocities", kind, n, len(st.Pos), len(st.Vel))
			}
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{N: 0, Density: 1, Temperature: 1},
		{N: -5, Density: 1, Temperature: 1},
		{N: 10, Density: 0, Temperature: 1},
		{N: 10, Density: -1, Temperature: 1},
		{N: 10, Density: 1, Temperature: -0.5},
		{N: 10, Density: 1, Temperature: 1, Kind: Kind(99)},
	}
	for _, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("Generate(%+v) succeeded, want error", cfg)
		}
	}
}

func TestPositionsInsideBox(t *testing.T) {
	for _, kind := range []Kind{SimpleCubic, FCC} {
		st, err := Generate(Config{N: 500, Density: 0.8442, Temperature: 0.7, Kind: kind, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range st.Pos {
			if p.X < 0 || p.X >= st.Box || p.Y < 0 || p.Y >= st.Box || p.Z < 0 || p.Z >= st.Box {
				t.Fatalf("%v atom %d outside box: %+v (box %v)", kind, i, p, st.Box)
			}
		}
	}
}

func TestNoOverlappingSites(t *testing.T) {
	for _, kind := range []Kind{SimpleCubic, FCC} {
		st, err := Generate(Config{N: 256, Density: 0.8, Temperature: 0, Kind: kind, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		// Minimum-image pair distances must all be comfortably nonzero.
		minDist2 := math.Inf(1)
		for i := 0; i < len(st.Pos); i++ {
			for j := i + 1; j < len(st.Pos); j++ {
				d := st.Pos[i].Sub(st.Pos[j])
				d.X -= st.Box * math.Round(d.X/st.Box)
				d.Y -= st.Box * math.Round(d.Y/st.Box)
				d.Z -= st.Box * math.Round(d.Z/st.Box)
				if r2 := d.Norm2(); r2 < minDist2 {
					minDist2 = r2
				}
			}
		}
		if minDist2 < 0.25 {
			t.Fatalf("%v: closest pair at distance %v, lattice sites overlap", kind, math.Sqrt(minDist2))
		}
	}
}

func TestZeroNetMomentum(t *testing.T) {
	st, err := Generate(Config{N: 1000, Density: 0.8, Temperature: 1.5, Kind: FCC, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sum vec.V3[float64]
	for _, v := range st.Vel {
		sum = sum.Add(v)
	}
	if sum.Norm() > 1e-10*float64(len(st.Vel)) {
		t.Fatalf("net momentum %v, want ~0", sum)
	}
}

func TestTemperatureExact(t *testing.T) {
	for _, target := range []float64{0.1, 0.728, 2.5} {
		st, err := Generate(Config{N: 500, Density: 0.8, Temperature: target, Kind: SimpleCubic, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		got := Temperature(st.Vel)
		if math.Abs(got-target) > 1e-12*target {
			t.Fatalf("temperature = %v, want %v", got, target)
		}
	}
}

func TestZeroTemperatureMeansAtRest(t *testing.T) {
	st, err := Generate(Config{N: 64, Density: 0.8, Temperature: 0, Kind: SimpleCubic, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range st.Vel {
		if v.Norm2() != 0 {
			t.Fatalf("atom %d moving at T=0: %+v", i, v)
		}
	}
}

func TestDeterministicBySeed(t *testing.T) {
	cfg := Config{N: 128, Density: 0.8, Temperature: 1, Kind: FCC, Seed: 7}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pos {
		if a.Pos[i] != b.Pos[i] || a.Vel[i] != b.Vel[i] {
			t.Fatalf("same seed produced different states at atom %d", i)
		}
	}
}

func TestBoxLengthDensityRelation(t *testing.T) {
	prop := func(nRaw uint16, dRaw float64) bool {
		n := int(nRaw%4096) + 1
		density := math.Abs(math.Mod(dRaw, 2)) + 0.1
		box := BoxLength(n, density)
		return math.Abs(float64(n)/(box*box*box)-density) < 1e-9*density
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoveDriftIdempotent(t *testing.T) {
	rng := xrand.New(8)
	vel := MaxwellVelocities(100, 1.0, rng)
	RemoveDrift(vel)
	snapshot := make([]vec.V3[float64], len(vel))
	copy(snapshot, vel)
	RemoveDrift(vel)
	for i := range vel {
		if vel[i].Sub(snapshot[i]).Norm() > 1e-12 {
			t.Fatalf("RemoveDrift not idempotent at %d", i)
		}
	}
}

func TestRemoveDriftEmpty(t *testing.T) {
	RemoveDrift(nil) // must not panic
	if Temperature(nil) != 0 {
		t.Fatal("Temperature(nil) != 0")
	}
}

func TestMaxwellVariance(t *testing.T) {
	rng := xrand.New(9)
	const n = 100000
	const temp = 1.3
	vel := MaxwellVelocities(n, temp, rng)
	var sum2 float64
	for _, v := range vel {
		sum2 += v.X * v.X
	}
	variance := sum2 / n
	if math.Abs(variance-temp) > 0.03*temp {
		t.Fatalf("x-component variance %v, want ~%v", variance, temp)
	}
}

func TestKindString(t *testing.T) {
	if SimpleCubic.String() != "sc" || FCC.String() != "fcc" {
		t.Fatal("Kind.String")
	}
	if Kind(42).String() == "" {
		t.Fatal("unknown Kind.String empty")
	}
}

func TestFCCNearestNeighborDistance(t *testing.T) {
	// For a full FCC lattice (N = 4 m^3) the nearest-neighbor distance
	// is a/sqrt(2) where a is the cell edge.
	const m = 3
	n := 4 * m * m * m
	st, err := Generate(Config{N: n, Density: 1.0, Temperature: 0, Kind: FCC, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	a := st.Box / m
	want := a / math.Sqrt2
	// distance from atom 0 to its nearest neighbor
	best := math.Inf(1)
	for j := 1; j < n; j++ {
		d := st.Pos[0].Sub(st.Pos[j])
		d.X -= st.Box * math.Round(d.X/st.Box)
		d.Y -= st.Box * math.Round(d.Y/st.Box)
		d.Z -= st.Box * math.Round(d.Z/st.Box)
		if r := d.Norm(); r < best {
			best = r
		}
	}
	if math.Abs(best-want) > 1e-9 {
		t.Fatalf("FCC nearest neighbor distance %v, want %v", best, want)
	}
}
