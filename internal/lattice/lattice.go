// Package lattice builds the initial conditions for the molecular-
// dynamics experiments: atoms placed on a regular lattice inside a cubic
// periodic box, with Maxwell-Boltzmann velocities at a target
// temperature and zero net momentum.
//
// Everything is produced in float64 and in reduced Lennard-Jones units
// (sigma = epsilon = mass = k_B = 1); devices that run in single
// precision narrow the same configuration, which keeps the physics
// cross-validation meaningful — every device starts from bit-identical
// (up to rounding) states.
package lattice

import (
	"fmt"
	"math"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Kind selects the lattice geometry.
type Kind int

const (
	// SimpleCubic places one atom per unit cell. It is the layout the
	// paper's kernel-scale experiments use: nothing about the force
	// evaluation depends on crystalline order, only on atom count.
	SimpleCubic Kind = iota
	// FCC places four atoms per unit cell; it is the ground-state
	// packing of a Lennard-Jones solid and the conventional start for
	// production MD runs.
	FCC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case SimpleCubic:
		return "sc"
	case FCC:
		return "fcc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Config describes an initial condition.
type Config struct {
	N           int     // number of atoms (> 0)
	Density     float64 // reduced number density rho = N / L^3 (> 0)
	Temperature float64 // reduced temperature (>= 0)
	Kind        Kind
	Seed        uint64 // RNG stream for the velocities
}

// State is a generated initial condition.
type State struct {
	Box float64 // cubic box side length L
	Pos []vec.V3[float64]
	Vel []vec.V3[float64]
}

// BoxLength returns the side of the cubic box holding n atoms at the
// given reduced density.
func BoxLength(n int, density float64) float64 {
	return math.Cbrt(float64(n) / density)
}

// Generate builds the initial state for cfg. Positions are laid on the
// requested lattice (the first cfg.N sites of the smallest lattice that
// holds at least N atoms, rescaled to fill the box); velocities are
// Maxwell-Boltzmann at cfg.Temperature with the center-of-mass drift
// removed and then rescaled to hit the target temperature exactly.
func Generate(cfg Config) (*State, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("lattice: N must be positive, got %d", cfg.N)
	}
	if cfg.Density <= 0 {
		return nil, fmt.Errorf("lattice: density must be positive, got %v", cfg.Density)
	}
	if cfg.Temperature < 0 {
		return nil, fmt.Errorf("lattice: temperature must be non-negative, got %v", cfg.Temperature)
	}
	box := BoxLength(cfg.N, cfg.Density)
	var pos []vec.V3[float64]
	switch cfg.Kind {
	case SimpleCubic:
		pos = simpleCubic(cfg.N, box)
	case FCC:
		pos = fcc(cfg.N, box)
	default:
		return nil, fmt.Errorf("lattice: unknown kind %v", cfg.Kind)
	}
	rng := xrand.New(cfg.Seed)
	vel := MaxwellVelocities(cfg.N, cfg.Temperature, rng)
	RemoveDrift(vel)
	ScaleToTemperature(vel, cfg.Temperature)
	return &State{Box: box, Pos: pos, Vel: vel}, nil
}

// simpleCubic returns the first n sites of the smallest m^3 cubic
// lattice with m^3 >= n, scaled to the box.
func simpleCubic(n int, box float64) []vec.V3[float64] {
	m := 1
	for m*m*m < n {
		m++
	}
	a := box / float64(m)
	pos := make([]vec.V3[float64], 0, n)
	for i := 0; i < m && len(pos) < n; i++ {
		for j := 0; j < m && len(pos) < n; j++ {
			for k := 0; k < m && len(pos) < n; k++ {
				pos = append(pos, vec.V3[float64]{
					X: (float64(i) + 0.5) * a,
					Y: (float64(j) + 0.5) * a,
					Z: (float64(k) + 0.5) * a,
				})
			}
		}
	}
	return pos
}

// fccBasis is the four-atom basis of the face-centered-cubic cell, in
// fractions of the cell edge.
var fccBasis = [4]vec.V3[float64]{
	{X: 0.25, Y: 0.25, Z: 0.25},
	{X: 0.75, Y: 0.75, Z: 0.25},
	{X: 0.75, Y: 0.25, Z: 0.75},
	{X: 0.25, Y: 0.75, Z: 0.75},
}

// fcc returns the first n sites of the smallest 4*m^3 FCC lattice with
// 4*m^3 >= n, scaled to the box.
func fcc(n int, box float64) []vec.V3[float64] {
	m := 1
	for 4*m*m*m < n {
		m++
	}
	a := box / float64(m)
	pos := make([]vec.V3[float64], 0, n)
	for i := 0; i < m && len(pos) < n; i++ {
		for j := 0; j < m && len(pos) < n; j++ {
			for k := 0; k < m && len(pos) < n; k++ {
				for _, b := range fccBasis {
					if len(pos) == n {
						return pos
					}
					pos = append(pos, vec.V3[float64]{
						X: (float64(i) + b.X) * a,
						Y: (float64(j) + b.Y) * a,
						Z: (float64(k) + b.Z) * a,
					})
				}
			}
		}
	}
	return pos
}

// MaxwellVelocities draws n velocities from the Maxwell-Boltzmann
// distribution at the given reduced temperature (unit mass): each
// component is normal with variance T.
func MaxwellVelocities(n int, temperature float64, rng *xrand.Source) []vec.V3[float64] {
	s := math.Sqrt(temperature)
	vel := make([]vec.V3[float64], n)
	for i := range vel {
		vel[i] = vec.V3[float64]{
			X: s * rng.NormFloat64(),
			Y: s * rng.NormFloat64(),
			Z: s * rng.NormFloat64(),
		}
	}
	return vel
}

// RemoveDrift subtracts the center-of-mass velocity so total momentum is
// zero (unit masses assumed).
func RemoveDrift(vel []vec.V3[float64]) {
	if len(vel) == 0 {
		return
	}
	var sum vec.V3[float64]
	for _, v := range vel {
		sum = sum.Add(v)
	}
	mean := sum.Scale(1 / float64(len(vel)))
	for i := range vel {
		vel[i] = vel[i].Sub(mean)
	}
}

// Temperature returns the instantaneous reduced temperature of the
// velocity set: T = 2*KE / (3N) with unit masses.
func Temperature(vel []vec.V3[float64]) float64 {
	if len(vel) == 0 {
		return 0
	}
	var ke float64
	for _, v := range vel {
		ke += 0.5 * v.Norm2()
	}
	return 2 * ke / (3 * float64(len(vel)))
}

// ScaleToTemperature rescales velocities so that Temperature(vel) equals
// target exactly (a single velocity-rescaling thermostat kick). A zero
// current temperature (all atoms at rest) is left unchanged.
func ScaleToTemperature(vel []vec.V3[float64], target float64) {
	cur := Temperature(vel)
	if cur == 0 {
		return
	}
	f := math.Sqrt(target / cur)
	for i := range vel {
		vel[i] = vel[i].Scale(f)
	}
}
