package faults

import (
	"reflect"
	"testing"
)

func TestParseKindRoundTrip(t *testing.T) {
	for k := NaN; k <= TornRename; k++ {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v; want %v", k.String(), got, err, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Fatal("ParseKind(bogus) must fail")
	}
}

func TestSnapshotExportsScheduleAndState(t *testing.T) {
	r := NewRegistry(99)
	// Arm in an order that differs from sorted-site order so the
	// site-sorting contract is actually exercised.
	r.Arm(Fault{Site: "z-site", Kind: Error, Trigger: Trigger{AtCall: 1}})
	r.Arm(Fault{Site: "a-site", Kind: Panic, Trigger: Trigger{AtCall: 5}})
	r.Arm(Fault{Site: "a-site", Kind: Error, Trigger: Trigger{AtCall: 2}})

	if f := r.Fire("a-site"); f != nil {
		t.Fatalf("a-site call 1 fired %+v, want nil", f)
	}
	if f := r.Fire("a-site"); f == nil || f.Kind != Error {
		t.Fatalf("a-site call 2 = %+v, want Error", f)
	}
	if f := r.Fire("z-site"); f == nil || f.Kind != Error {
		t.Fatalf("z-site call 1 = %+v, want Error", f)
	}

	snap := r.Snapshot()
	if snap.Seed != 99 {
		t.Fatalf("Seed = %d, want 99", snap.Seed)
	}
	wantArmed := []Fault{
		{Site: "a-site", Kind: Panic, Trigger: Trigger{AtCall: 5}},
		{Site: "a-site", Kind: Error, Trigger: Trigger{AtCall: 2}},
		{Site: "z-site", Kind: Error, Trigger: Trigger{AtCall: 1}},
	}
	if !reflect.DeepEqual(snap.Armed, wantArmed) {
		t.Fatalf("Armed = %+v, want %+v", snap.Armed, wantArmed)
	}
	if snap.Calls["a-site"] != 2 || snap.Calls["z-site"] != 1 {
		t.Fatalf("Calls = %v", snap.Calls)
	}
	wantEvents := []Event{
		{Site: "a-site", Kind: Error, Call: 2},
		{Site: "z-site", Kind: Error, Call: 1},
	}
	if !reflect.DeepEqual(snap.Events, wantEvents) {
		t.Fatalf("Events = %+v, want %+v", snap.Events, wantEvents)
	}

	// No call-numbering drift: every fired event's Call is within the
	// snapshot's per-site counter, and the armed triggers that fired
	// agree with the event log.
	for _, e := range snap.Events {
		if e.Call < 1 || e.Call > snap.Calls[e.Site] {
			t.Fatalf("event %+v outside counter %d", e, snap.Calls[e.Site])
		}
	}
}

func TestSnapshotDeterministicAcrossArmingMapOrder(t *testing.T) {
	// Two registries armed with the same schedule must snapshot the
	// same Armed list regardless of internal map iteration order.
	sched := []Fault{
		{Site: "m", Kind: Error, Trigger: Trigger{AtCall: 1}},
		{Site: "b", Kind: Delay, Trigger: Trigger{FromCall: 2}},
		{Site: "t", Kind: NaN, Trigger: Trigger{Prob: 0.1}},
	}
	a := NewRegistry(1)
	b := NewRegistry(1)
	for _, f := range sched {
		a.Arm(f)
	}
	for i := len(sched) - 1; i >= 0; i-- {
		// Reverse arming order across different sites still sorts the
		// same; only within-site order is arming order.
		b.Arm(sched[i])
	}
	if !reflect.DeepEqual(a.Snapshot().Armed, b.Snapshot().Armed) {
		t.Fatalf("Armed differs:\n%+v\n%+v", a.Snapshot().Armed, b.Snapshot().Armed)
	}
}

func TestSnapshotIsACopy(t *testing.T) {
	r := NewRegistry(5)
	r.Arm(Fault{Site: "s", Kind: Error, Trigger: Trigger{AtCall: 1}})
	snap := r.Snapshot()
	snap.Armed[0].Kind = Panic
	snap.Calls["s"] = 77
	if f := r.Fire("s"); f == nil || f.Kind != Error {
		t.Fatalf("mutating a snapshot leaked into the registry: %+v", f)
	}
	if r.Calls("s") != 1 {
		t.Fatalf("Calls = %d, want 1", r.Calls("s"))
	}
}
