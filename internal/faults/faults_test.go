package faults

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/vec"
)

func TestNilInjectorNeverFires(t *testing.T) {
	if Fire(nil, SiteForces) != nil {
		t.Fatal("nil injector fired")
	}
}

func TestTriggerAtCall(t *testing.T) {
	r := NewRegistry(1).Arm(Fault{Site: SiteForces, Kind: NaN, Trigger: Trigger{AtCall: 3}})
	for call := 1; call <= 6; call++ {
		f := r.Fire(SiteForces)
		if (call == 3) != (f != nil) {
			t.Fatalf("call %d: fired=%v", call, f != nil)
		}
	}
	if r.Fired(SiteForces) != 1 || r.Calls(SiteForces) != 6 {
		t.Fatalf("fired=%d calls=%d", r.Fired(SiteForces), r.Calls(SiteForces))
	}
}

func TestTriggerFromCallIsPersistent(t *testing.T) {
	r := NewRegistry(1).Arm(Fault{Site: SiteWorker, Kind: Panic, Trigger: Trigger{FromCall: 4}})
	fired := 0
	for call := 1; call <= 10; call++ {
		if r.Fire(SiteWorker) != nil {
			fired++
			if call < 4 {
				t.Fatalf("fired early at call %d", call)
			}
		}
	}
	if fired != 7 {
		t.Fatalf("fired %d times, want 7", fired)
	}
}

func TestTriggerProbDeterministicPerSeed(t *testing.T) {
	pattern := func(seed uint64) string {
		r := NewRegistry(seed).Arm(Fault{Site: SiteForces, Kind: Error, Trigger: Trigger{Prob: 0.5}})
		var b strings.Builder
		for i := 0; i < 64; i++ {
			if r.Fire(SiteForces) != nil {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		return b.String()
	}
	a, b2 := pattern(42), pattern(42)
	if a != b2 {
		t.Fatalf("same seed diverged:\n%s\n%s", a, b2)
	}
	if !strings.Contains(a, "1") || !strings.Contains(a, "0") {
		t.Fatalf("p=0.5 pattern degenerate: %s", a)
	}
	if pattern(43) == a {
		t.Fatal("different seeds produced identical pattern")
	}
}

func TestSitesAreIndependent(t *testing.T) {
	r := NewRegistry(1).Arm(Fault{Site: SiteForces, Kind: NaN, Trigger: Trigger{AtCall: 1}})
	if r.Fire(SiteWorker) != nil {
		t.Fatal("unarmed site fired")
	}
	if r.Fire(SiteForces) == nil {
		t.Fatal("armed site did not fire (counters must be per-site)")
	}
}

func TestEventsLog(t *testing.T) {
	r := NewRegistry(1).
		Arm(Fault{Site: SiteForces, Kind: NaN, Trigger: Trigger{AtCall: 2}}).
		Arm(Fault{Site: SiteWorker, Kind: Panic, Trigger: Trigger{AtCall: 1}})
	r.Fire(SiteForces)
	r.Fire(SiteForces)
	r.Fire(SiteWorker)
	ev := r.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %v", ev)
	}
	if ev[0] != (Event{Site: SiteForces, Kind: NaN, Call: 2}) {
		t.Fatalf("event 0 = %+v", ev[0])
	}
	if ev[1] != (Event{Site: SiteWorker, Kind: Panic, Call: 1}) {
		t.Fatalf("event 1 = %+v", ev[1])
	}
}

func TestRegistryConcurrentFire(t *testing.T) {
	r := NewRegistry(1).Arm(Fault{Site: SiteWorker, Kind: Error, Trigger: Trigger{FromCall: 1}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Fire(SiteWorker)
			}
		}()
	}
	wg.Wait()
	if r.Calls(SiteWorker) != 800 || r.Fired(SiteWorker) != 800 {
		t.Fatalf("calls=%d fired=%d", r.Calls(SiteWorker), r.Fired(SiteWorker))
	}
}

func TestPoisonAndCorrupt(t *testing.T) {
	if !math.IsNaN(Poison[float64](NaN)) {
		t.Fatal("NaN poison")
	}
	if !math.IsInf(Poison[float64](Inf), 1) {
		t.Fatal("Inf poison")
	}
	acc := make([]vec.V3[float64], 4)
	CorruptV3(NaN, acc)
	if !math.IsNaN(acc[0].X) {
		t.Fatal("CorruptV3 did not poison")
	}
	CorruptV3(Inf, []vec.V3[float64](nil)) // must not panic on empty
}

func TestWorkerFaultKinds(t *testing.T) {
	if err := (&Fault{Kind: Error}).WorkerFault(); !errors.Is(err, ErrInjected) {
		t.Fatalf("Error kind: %v", err)
	}
	start := time.Now()
	if err := (&Fault{Kind: Delay, Delay: 5 * time.Millisecond}).WorkerFault(); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) < 5*time.Millisecond {
		t.Fatal("Delay did not sleep")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("Panic kind did not panic")
			}
		}()
		(&Fault{Kind: Panic}).WorkerFault()
	}()
	if err := (&Fault{Kind: NaN}).WorkerFault(); err != nil {
		t.Fatalf("value kind at worker site: %v", err)
	}
}

func TestFaultWriterError(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(1).Arm(Fault{Site: SiteTrajectory, Kind: Error, Trigger: Trigger{AtCall: 2}})
	w := NewWriter(&buf, r, SiteTrajectory)
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected error, got %v", err)
	}
	if _, err := w.Write([]byte("ok2")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "okok2" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestFaultWriterShortWrite(t *testing.T) {
	var buf bytes.Buffer
	r := NewRegistry(1).Arm(Fault{Site: SiteCheckpoint, Kind: ShortWrite, Trigger: Trigger{AtCall: 1}})
	w := NewWriter(&buf, r, SiteCheckpoint)
	n, err := w.Write([]byte("12345678"))
	if err != nil || n != 4 {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if buf.String() != "1234" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestNewWriterNilInjectorPassthrough(t *testing.T) {
	var buf bytes.Buffer
	if w := NewWriter(&buf, nil, SiteTrajectory); w != &buf {
		t.Fatal("nil injector must return the writer unchanged")
	}
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[Kind]string{
		NaN: "nan", Inf: "inf", Error: "error",
		ShortWrite: "shortwrite", Panic: "panic", Delay: "delay",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind stringer empty")
	}
}
