package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestCloneIndependentCounters pins the per-replica semantics Clone
// exists for: each clone replays the same fault schedule from call 1,
// and firing one clone does not advance another's counters.
func TestCloneIndependentCounters(t *testing.T) {
	base := NewRegistry(7).Arm(Fault{
		Site: SiteForces, Kind: NaN, Trigger: Trigger{AtCall: 3},
	})
	a, b := base.Clone(), base.Clone()

	for i := 1; i <= 2; i++ {
		if f := a.Fire(SiteForces); f != nil {
			t.Fatalf("clone a fired early at call %d", i)
		}
	}
	if f := a.Fire(SiteForces); f == nil || f.Kind != NaN {
		t.Fatal("clone a did not fire at call 3")
	}
	// b's counter is untouched by a's calls.
	if b.Calls(SiteForces) != 0 {
		t.Fatalf("clone b counter %d, want 0", b.Calls(SiteForces))
	}
	for i := 1; i <= 2; i++ {
		b.Fire(SiteForces)
	}
	if f := b.Fire(SiteForces); f == nil {
		t.Fatal("clone b did not replay the schedule at its own call 3")
	}
	// The base registry is untouched by either clone.
	if base.Calls(SiteForces) != 0 || len(base.Events()) != 0 {
		t.Fatal("clones leaked calls into the base registry")
	}
	// Arming after cloning stays private to the armed registry.
	a.Arm(Fault{Site: SiteWorker, Kind: Panic, Trigger: Trigger{AtCall: 1}})
	if f := b.Fire(SiteWorker); f != nil {
		t.Fatal("fault armed on clone a fired on clone b")
	}
}

// TestRegistryConcurrentThresholdTrigger pins that one Registry shared
// by many goroutines (the documented global-numbering mode) loses no
// calls: a FromCall threshold near the end fires exactly the expected
// number of times across racing replicas.
func TestRegistryConcurrentThresholdTrigger(t *testing.T) {
	const (
		goroutines = 8
		calls      = 250
	)
	r := NewRegistry(1).Arm(Fault{
		Site: SiteWorker, Kind: Error, Trigger: Trigger{FromCall: goroutines*calls - 10},
	})
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				r.Fire(SiteWorker)
			}
		}()
	}
	wg.Wait()
	if got := r.Calls(SiteWorker); got != goroutines*calls {
		t.Fatalf("lost calls: %d, want %d", got, goroutines*calls)
	}
	if got := r.Fired(SiteWorker); got != 11 {
		t.Fatalf("fired %d, want 11 (FromCall n-10 over n calls)", got)
	}
}

// TestCloneDuringConcurrentFire pins Clone's safety against a live
// registry: the fleet clones a base registry per replica while other
// replicas are already firing. A Clone taken mid-storm must (a) not
// race the firing goroutines, (b) start with virgin counters and an
// empty event log regardless of when it was taken, and (c) replay the
// armed schedule from its own call 1 — and the base registry's
// counters must account for every concurrent Fire exactly.
func TestCloneDuringConcurrentFire(t *testing.T) {
	const (
		firers = 4
		calls  = 500
		clones = 200
	)
	base := NewRegistry(99).Arm(Fault{
		Site: SiteForces, Kind: NaN, Trigger: Trigger{AtCall: 3},
	})

	var wg sync.WaitGroup
	wg.Add(firers + 1)
	for g := 0; g < firers; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < calls; i++ {
				base.Fire(SiteForces)
			}
		}()
	}
	cloned := make(chan *Registry, clones)
	go func() {
		defer wg.Done()
		for i := 0; i < clones; i++ {
			cloned <- base.Clone()
		}
		close(cloned)
	}()
	wg.Wait()

	for c := range cloned {
		if got := c.Calls(SiteForces); got != 0 {
			t.Fatalf("mid-storm clone born with %d calls, want 0", got)
		}
		if got := len(c.Events()); got != 0 {
			t.Fatalf("mid-storm clone born with %d events, want 0", got)
		}
	}
	// The base accounted for every concurrent Fire; the AtCall: 3 fault
	// fired exactly once, on whichever goroutine made the third call.
	if got := base.Calls(SiteForces); got != firers*calls {
		t.Fatalf("base lost calls under concurrent Clone: %d, want %d", got, firers*calls)
	}
	if got := base.Fired(SiteForces); got != 1 {
		t.Fatalf("base fired %d times, want exactly 1 (AtCall trigger)", got)
	}
	// A mid-storm clone still replays the schedule from its own call 1.
	c := base.Clone()
	for i := 1; i <= 2; i++ {
		if f := c.Fire(SiteForces); f != nil {
			t.Fatalf("post-storm clone fired early at call %d", i)
		}
	}
	if f := c.Fire(SiteForces); f == nil || f.Kind != NaN {
		t.Fatal("post-storm clone did not replay the schedule at call 3")
	}
}

// TestWorkerFaultCtxDelayInterruptible pins that a Delay fault selects
// on the context instead of sleeping through it.
func TestWorkerFaultCtxDelayInterruptible(t *testing.T) {
	f := &Fault{Site: SiteWorker, Kind: Delay, Delay: 10 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	time.AfterFunc(5*time.Millisecond, cancel)
	start := time.Now()
	err := f.WorkerFaultCtx(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("delay ignored the cancelled context")
	}
	// Background context: short delays still complete as plain sleeps.
	quick := &Fault{Site: SiteWorker, Kind: Delay, Delay: time.Millisecond}
	if err := quick.WorkerFault(); err != nil {
		t.Fatalf("uninterrupted delay errored: %v", err)
	}
}
