// Package faults is a deterministic, seedable fault injector for the
// run stack. Production-scale MD on accelerator-era hardware has to
// assume the fast path is the unreliable path — the paper's Cell and
// GPU ports trade ECC, precision, and OS supervision for throughput —
// so every recovery mechanism in this repository (worker panic
// isolation in internal/parallel, checkpoint CRC validation in
// internal/md, the watchdog/rollback supervisor in internal/guard) is
// testable only if faults can be injected on demand, reproducibly.
//
// The design is an interface plus a registry: instrumentation points
// name a Site and ask the Injector whether a fault fires on this call
// (faults.Fire is nil-safe, so the production default — no injector —
// costs one nil check). A Registry arms Faults at sites with Triggers
// that fire at a specific call number, from a call number onwards, or
// probabilistically from a seeded SplitMix64 stream, which makes every
// failure schedule replayable from (seed, armed faults) alone.
package faults

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"syscall"
	"time"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Site names an instrumentation point that can fault. Sites are
// strings so downstream packages can add their own without touching
// this package; the constants below are the sites the run stack wires.
type Site string

const (
	// SiteForces corrupts the force array after a (any-method) force
	// evaluation in mdrun — the generic "silent accelerator bit-rot"
	// fault that hits serial and parallel paths alike.
	SiteForces Site = "forces"
	// SiteParallelForces corrupts the output of a parallel.Engine
	// kernel only. Falling back to a serial method clears it, which is
	// what lets tests exercise the supervisor's escalation ladder.
	SiteParallelForces Site = "parallel-forces"
	// SiteWorker fires inside a parallel.Engine pool worker: Panic and
	// Delay model a crashed or straggling worker thread.
	SiteWorker Site = "worker"
	// SiteTrajectory fails trajectory writes (wrap the writer with
	// NewWriter).
	SiteTrajectory Site = "trajectory"
	// SiteCheckpoint fails checkpoint writes (wrap the writer with
	// NewWriter).
	SiteCheckpoint Site = "checkpoint"
)

// Kind enumerates what an injected fault does when it fires.
type Kind int

const (
	// NaN poisons a value-corruption site with quiet NaNs.
	NaN Kind = iota
	// Inf poisons a value-corruption site with +Inf.
	Inf
	// Error makes the site return ErrInjected.
	Error
	// ShortWrite makes a wrapped writer write only half the buffer and
	// report the short count with a nil error (the silent-truncation
	// shape that checkpoint CRC trailers exist to catch).
	ShortWrite
	// Panic panics at the site (pool workers convert it to an error).
	Panic
	// Delay sleeps Fault.Delay at the site (straggler injection).
	Delay
	// ENOSPC makes the site fail with an error wrapping syscall.ENOSPC
	// after accepting half the buffer — the disk-full shape, which is
	// loud (unlike ShortWrite) but leaves a torn temp file behind.
	ENOSPC
	// TornRename models power loss mid-publish at a rename site: the
	// destination receives only the first half of the source, the
	// source is gone, and the call fails. The caller sees the failure
	// (nothing is acknowledged on it), but the directory now holds a
	// torn file that every later reader must reject, not trust.
	TornRename
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case NaN:
		return "nan"
	case Inf:
		return "inf"
	case Error:
		return "error"
	case ShortWrite:
		return "shortwrite"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case ENOSPC:
		return "enospc"
	case TornRename:
		return "tornrename"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind maps the String() names back to Kinds — the vocabulary of
// mdsim -inject and of chaos schedule files.
func ParseKind(s string) (Kind, error) {
	for k := NaN; k <= TornRename; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("faults: unknown kind %q", s)
}

// ErrInjected is the sentinel error injected faults surface.
var ErrInjected = errors.New("faults: injected failure")

// Trigger decides on which calls at a site an armed fault fires. The
// zero Trigger never fires. Calls are numbered from 1 per site.
type Trigger struct {
	// AtCall fires on exactly the k-th call.
	AtCall int
	// FromCall fires on every call numbered >= k (persistent fault).
	FromCall int
	// Prob fires independently per call with this probability, drawn
	// from the registry's seeded deterministic stream.
	Prob float64
}

func (t Trigger) fires(call int, rng *xrand.Source) bool {
	if t.AtCall > 0 && call == t.AtCall {
		return true
	}
	if t.FromCall > 0 && call >= t.FromCall {
		return true
	}
	if t.Prob > 0 && rng.Float64() < t.Prob {
		return true
	}
	return false
}

// Fault is one armed fault: what happens (Kind), where (Site), when
// (Trigger), and how long for Delay faults.
type Fault struct {
	Site    Site
	Kind    Kind
	Trigger Trigger
	Delay   time.Duration
}

// Injector decides, per call at a site, whether a fault fires. A nil
// Injector (queried through the package-level Fire) never fires —
// that is the production default.
type Injector interface {
	// Fire counts one call at site and returns the fault that fires on
	// it, or nil.
	Fire(site Site) *Fault
}

// Event records one fired fault, for test assertions and run reports.
type Event struct {
	Site Site
	Kind Kind
	Call int // 1-based call number at the site
}

// Registry is the standard Injector: a set of armed faults with
// per-site call counters and a seeded random stream for probabilistic
// triggers. Safe for concurrent use (pool workers fire concurrently).
//
// Sharing semantics: the counters are per-Registry, not per-run. A
// Registry shared by several concurrent replicas is data-race free,
// but its call numbering is global — an AtCall(25) trigger fires in
// whichever replica happens to make the 25th call overall, and under
// concurrency that replica is nondeterministic. Batch schedulers that
// want "call 25 of replica K" semantics must give each replica its own
// Registry; Clone exists for exactly that.
type Registry struct {
	mu     sync.Mutex
	seed   uint64
	rng    *xrand.Source
	calls  map[Site]int
	armed  map[Site][]*Fault
	events []Event
}

// NewRegistry returns an empty registry whose probabilistic triggers
// draw from a SplitMix64 stream seeded with seed.
func NewRegistry(seed uint64) *Registry {
	return &Registry{
		seed:  seed,
		rng:   xrand.New(seed),
		calls: make(map[Site]int),
		armed: make(map[Site][]*Fault),
	}
}

// Arm registers a fault. Multiple faults may share a site; the first
// (in arming order) whose trigger matches a call fires.
func (r *Registry) Arm(f Fault) *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	fc := f
	r.armed[f.Site] = append(r.armed[f.Site], &fc)
	return r
}

// Clone returns an independent Registry with the same armed faults and
// the same probabilistic-trigger seed but fresh call counters and an
// empty event log — one per replica is what makes an injected fault
// schedule deterministic within a batch. The armed Faults are copied,
// so arming more faults on either registry does not affect the other.
func (r *Registry) Clone() *Registry {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := NewRegistry(r.seed)
	for _, fs := range r.armed {
		for _, f := range fs {
			fc := *f
			c.armed[fc.Site] = append(c.armed[fc.Site], &fc)
		}
	}
	return c
}

// RegistrySnapshot is a point-in-time export of a Registry: the exact
// armed schedule (what a replay needs), how far each site's call
// counter has advanced, and what actually fired. A chaos campaign
// prints this for a failing run so the reproducer is the armed
// schedule itself, not a guess at it.
type RegistrySnapshot struct {
	Seed   uint64
	Armed  []Fault // sites in sorted order, arming order within a site
	Calls  map[Site]int
	Events []Event
}

// Snapshot exports the registry's state. The armed faults are listed
// site-sorted (arming order preserved within a site), so two
// registries armed with the same schedule snapshot identically
// regardless of map iteration order.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	sites := make([]Site, 0, len(r.armed))
	for s := range r.armed {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	snap := RegistrySnapshot{
		Seed:   r.seed,
		Calls:  make(map[Site]int, len(r.calls)),
		Events: append([]Event(nil), r.events...),
	}
	for _, s := range sites {
		for _, f := range r.armed[s] {
			snap.Armed = append(snap.Armed, *f)
		}
	}
	for s, n := range r.calls {
		snap.Calls[s] = n
	}
	return snap
}

// Fire implements Injector.
func (r *Registry) Fire(site Site) *Fault {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls[site]++
	call := r.calls[site]
	for _, f := range r.armed[site] {
		if f.Trigger.fires(call, r.rng) {
			r.events = append(r.events, Event{Site: site, Kind: f.Kind, Call: call})
			return f
		}
	}
	return nil
}

// Calls returns how many times site has been queried.
func (r *Registry) Calls(site Site) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls[site]
}

// Events returns a copy of the fired-fault log, in firing order.
func (r *Registry) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Event(nil), r.events...)
}

// Fired returns how many faults have fired at site.
func (r *Registry) Fired(site Site) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Site == site {
			n++
		}
	}
	return n
}

// Fire is the nil-safe query instrumentation points use: a nil
// injector never fires, so the production cost is one comparison.
func Fire(in Injector, site Site) *Fault {
	if in == nil {
		return nil
	}
	return in.Fire(site)
}

// Poison returns the poison value for a value-corruption kind: NaN for
// NaN, +Inf for Inf (and for any other kind, which keeps misuse
// detectable by the watchdog rather than silent).
func Poison[T vec.Float](k Kind) T {
	if k == NaN {
		return T(math.NaN())
	}
	return T(math.Inf(1))
}

// CorruptV3 poisons the X component of the first element of a vector
// array in place — a single flipped lane, the minimal corruption an
// on-line validity scan must still catch. No-op on empty arrays.
func CorruptV3[T vec.Float](k Kind, arr []vec.V3[T]) {
	if len(arr) == 0 {
		return
	}
	arr[0].X = Poison[T](k)
}

// CorruptPlane poisons the first element of one SoA component plane in
// place — the same single-lane corruption CorruptV3 applies to an AoS
// array, for kernels whose output lives in separate component planes.
// No-op on empty planes.
func CorruptPlane[T vec.Float](k Kind, plane []T) {
	if len(plane) == 0 {
		return
	}
	plane[0] = Poison[T](k)
}

// WorkerFault executes a worker-site fault on the calling goroutine:
// Delay sleeps, Panic panics (the pool recovers it into an error),
// Error returns ErrInjected, and value-corruption kinds are no-ops
// (workers own no output of their own to poison).
func (f *Fault) WorkerFault() error { return f.WorkerFaultCtx(context.Background()) }

// WorkerFaultCtx is WorkerFault with an interruptible Delay: a
// cancelled context cuts the injected straggler sleep short and
// surfaces the context error, so a replica deadline bounds even a
// fault-delayed worker.
func (f *Fault) WorkerFaultCtx(ctx context.Context) error {
	switch f.Kind {
	case Delay:
		t := time.NewTimer(f.Delay)
		defer t.Stop() //mdlint:ignore hotalloc inlined Timer.Stop panic string; exists only while an injected Delay fault is active
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case Panic:
		panic(fmt.Sprintf("faults: injected worker panic (site %s)", f.Site)) //mdlint:ignore hotalloc injected-panic path: fires once when the seeded fault triggers, never on a clean run
	case Error:
		return fmt.Errorf("worker: %w", ErrInjected)
	default:
		return nil
	}
}

// NewWriter wraps w so that every Write first consults the injector at
// site: Error faults fail the write, ShortWrite faults write half the
// buffer and report the short count with a nil error (exactly the
// lying-writer failure a CRC trailer catches), Panic faults panic, and
// Delay faults sleep before writing. A nil injector returns w itself.
func NewWriter(w io.Writer, in Injector, site Site) io.Writer {
	if in == nil {
		return w
	}
	return &faultWriter{w: w, in: in, site: site}
}

type faultWriter struct {
	w    io.Writer
	in   Injector
	site Site
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	f := Fire(fw.in, fw.site)
	if f == nil {
		return fw.w.Write(p)
	}
	switch f.Kind {
	case Error:
		return 0, fmt.Errorf("write %s: %w", fw.site, ErrInjected)
	case ENOSPC:
		n, _ := fw.w.Write(p[:len(p)/2])
		return n, fmt.Errorf("write %s: %w", fw.site, syscall.ENOSPC)
	case ShortWrite:
		n, err := fw.w.Write(p[:len(p)/2])
		return n, err
	case Panic:
		panic(fmt.Sprintf("faults: injected write panic (site %s)", fw.site))
	case Delay:
		time.Sleep(f.Delay)
	}
	return fw.w.Write(p)
}
