package mpp_test

import (
	"fmt"
	"log"

	"repro/internal/mpp"
)

// The paper's motivation, computed: a 100K-atom system stops scaling
// efficiently at a few hundred processors, far below a 64K-core MPP.
func ExampleConfig_ScalingLimit() {
	limit, err := mpp.DefaultConfig().ScalingLimit(100000, 0.5, 65536)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("efficient up to ~%d processors (machine has 65536)\n", limit)
	// Output:
	// efficient up to ~512 processors (machine has 65536)
}
