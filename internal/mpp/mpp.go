// Package mpp models the strong-scaling behaviour of conventional
// message-passing molecular dynamics on a massively parallel processor —
// the paper's motivation (section 2): "Blue Gene/L, the most powerful
// supercomputer system today, has 64K processing cores, while the
// current scaling limits of most MD algorithms available in popular
// bio-molecular simulation frameworks is a few hundred processors"
// (citing Alam et al., PPoPP 2006).
//
// The model is the standard spatial-decomposition cost balance:
//
//	T(p) = a·N/p                      local force work
//	     + b·(N/p)^(2/3)              halo (surface) exchange
//	     + (L_link + L_red·log2 p)    latency + the per-step global
//	                                  energy reduction
//
// Compute shrinks linearly with p, the halo shrinks only with the
// surface-to-volume ratio, and the log-depth reduction *grows* — so
// efficiency collapses at a processor count set by the atom count and
// the interconnect, not by the machine's size. That collapse point is
// the "few hundred processors" of the paper's motivation, and the
// reason it turns to single-chip accelerators instead.
package mpp

import (
	"fmt"
	"math"
)

// Config holds the machine and algorithm constants.
type Config struct {
	// PerAtomComputeSec is the per-step force work per atom on one
	// processor (neighbor-listed production code, ~µs/atom on 2006
	// cores).
	PerAtomComputeSec float64
	// HaloBytesPerAtom is the boundary data shipped per surface atom.
	HaloBytesPerAtom float64
	// BandwidthBytesPerSec is the per-link interconnect bandwidth.
	BandwidthBytesPerSec float64
	// LinkLatencySec is the fixed per-step message latency.
	LinkLatencySec float64
	// ReduceLatencySec is the per-stage cost of the log-depth global
	// reduction every MD step performs (energies, virial).
	ReduceLatencySec float64
}

// DefaultConfig approximates a 2006 MPP (Blue Gene/L-class network,
// commodity-core compute rates).
func DefaultConfig() Config {
	return Config{
		PerAtomComputeSec:    2e-6,
		HaloBytesPerAtom:     400,
		BandwidthBytesPerSec: 150e6,
		LinkLatencySec:       5e-6,
		ReduceLatencySec:     15e-6,
	}
}

// Validate checks the constants.
func (c Config) Validate() error {
	if c.PerAtomComputeSec <= 0 || c.HaloBytesPerAtom < 0 ||
		c.BandwidthBytesPerSec <= 0 || c.LinkLatencySec < 0 || c.ReduceLatencySec < 0 {
		return fmt.Errorf("mpp: non-physical constants: %+v", c)
	}
	return nil
}

// StepTime returns the modeled per-step wall time on p processors,
// split into compute and communication.
func (c Config) StepTime(atoms, procs int) (total, compute, comm float64, err error) {
	if err := c.Validate(); err != nil {
		return 0, 0, 0, err
	}
	if atoms <= 0 {
		return 0, 0, 0, fmt.Errorf("mpp: atoms must be positive, got %d", atoms)
	}
	if procs <= 0 {
		return 0, 0, 0, fmt.Errorf("mpp: procs must be positive, got %d", procs)
	}
	local := float64(atoms) / float64(procs)
	compute = c.PerAtomComputeSec * local
	if procs > 1 {
		surface := math.Pow(local, 2.0/3.0)
		halo := c.HaloBytesPerAtom * surface / c.BandwidthBytesPerSec
		reduce := c.ReduceLatencySec * math.Log2(float64(procs))
		comm = halo + c.LinkLatencySec + reduce
	}
	return compute + comm, compute, comm, nil
}

// Speedup returns T(1)/T(p).
func (c Config) Speedup(atoms, procs int) (float64, error) {
	t1, _, _, err := c.StepTime(atoms, 1)
	if err != nil {
		return 0, err
	}
	tp, _, _, err := c.StepTime(atoms, procs)
	if err != nil {
		return 0, err
	}
	return t1 / tp, nil
}

// Efficiency returns Speedup(p)/p.
func (c Config) Efficiency(atoms, procs int) (float64, error) {
	s, err := c.Speedup(atoms, procs)
	if err != nil {
		return 0, err
	}
	return s / float64(procs), nil
}

// ScalingLimit returns the largest power-of-two processor count (up to
// maxProcs) whose parallel efficiency stays at or above floor — the
// quantity behind "the current scaling limits ... is a few hundred
// processors".
func (c Config) ScalingLimit(atoms int, floor float64, maxProcs int) (int, error) {
	if floor <= 0 || floor > 1 {
		return 0, fmt.Errorf("mpp: efficiency floor must be in (0,1], got %v", floor)
	}
	if maxProcs < 1 {
		return 0, fmt.Errorf("mpp: maxProcs must be positive, got %d", maxProcs)
	}
	limit := 1
	for p := 1; p <= maxProcs; p *= 2 {
		e, err := c.Efficiency(atoms, p)
		if err != nil {
			return 0, err
		}
		if e >= floor {
			limit = p
		}
	}
	return limit, nil
}
