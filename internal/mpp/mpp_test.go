package mpp

import (
	"testing"
	"testing/quick"
)

func TestStepTimeValidation(t *testing.T) {
	c := DefaultConfig()
	if _, _, _, err := c.StepTime(0, 1); err == nil {
		t.Fatal("zero atoms accepted")
	}
	if _, _, _, err := c.StepTime(100, 0); err == nil {
		t.Fatal("zero procs accepted")
	}
	bad := DefaultConfig()
	bad.PerAtomComputeSec = 0
	if _, _, _, err := bad.StepTime(100, 1); err == nil {
		t.Fatal("bad config accepted")
	}
	if _, err := c.ScalingLimit(100, 0, 64); err == nil {
		t.Fatal("zero floor accepted")
	}
	if _, err := c.ScalingLimit(100, 0.5, 0); err == nil {
		t.Fatal("zero maxProcs accepted")
	}
}

func TestSingleProcessorHasNoComm(t *testing.T) {
	_, compute, comm, err := DefaultConfig().StepTime(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if comm != 0 {
		t.Fatalf("comm on one processor = %v", comm)
	}
	if compute <= 0 {
		t.Fatal("no compute time")
	}
}

func TestSpeedupRisesThenSaturates(t *testing.T) {
	c := DefaultConfig()
	const atoms = 100000
	prev := 0.0
	peaked := false
	var peakP int
	for p := 1; p <= 65536; p *= 2 {
		s, err := c.Speedup(atoms, p)
		if err != nil {
			t.Fatal(err)
		}
		if s < prev {
			peaked = true
			if peakP == 0 {
				peakP = p / 2
			}
		}
		prev = s
	}
	if !peaked {
		t.Fatal("speedup never saturated — communication model inert")
	}
}

func TestScalingLimitIsFewHundredProcessors(t *testing.T) {
	// The paper's motivation claim, quantitatively: a typical ~100K-atom
	// bio-molecular system stops scaling efficiently at a few hundred
	// processors — far below Blue Gene/L's 64K cores.
	limit, err := DefaultConfig().ScalingLimit(100000, 0.5, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if limit < 64 || limit > 1024 {
		t.Fatalf("scaling limit = %d processors, want a few hundred", limit)
	}
}

func TestScalingLimitGrowsWithProblemSize(t *testing.T) {
	c := DefaultConfig()
	small, err := c.ScalingLimit(20000, 0.5, 65536)
	if err != nil {
		t.Fatal(err)
	}
	large, err := c.ScalingLimit(2000000, 0.5, 65536)
	if err != nil {
		t.Fatal(err)
	}
	if large <= small {
		t.Fatalf("scaling limit did not grow with N: %d -> %d", small, large)
	}
}

func TestEfficiencyMonotoneDecreasing(t *testing.T) {
	prop := func(pRaw uint8) bool {
		p := 1 << (pRaw % 12)
		e1, err1 := DefaultConfig().Efficiency(50000, p)
		e2, err2 := DefaultConfig().Efficiency(50000, 2*p)
		return err1 == nil && err2 == nil && e2 <= e1+1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEfficiencyAtOneIsOne(t *testing.T) {
	e, err := DefaultConfig().Efficiency(10000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 {
		t.Fatalf("E(1) = %v", e)
	}
}

func TestCommGrowsWithLogP(t *testing.T) {
	c := DefaultConfig()
	c.HaloBytesPerAtom = 0 // isolate the reduction term
	c.LinkLatencySec = 0
	_, _, comm256, err := c.StepTime(100000, 256)
	if err != nil {
		t.Fatal(err)
	}
	_, _, comm65536, err := c.StepTime(100000, 65536)
	if err != nil {
		t.Fatal(err)
	}
	// log2(65536)/log2(256) = 16/8 = 2.
	ratio := comm65536 / comm256
	if ratio < 1.9 || ratio > 2.1 {
		t.Fatalf("reduction scaling = %v, want ~2", ratio)
	}
}
