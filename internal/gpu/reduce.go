package gpu

import "fmt"

// Multi-pass reduction: the design alternative the paper considers and
// rejects for the potential-energy sum (section 5.2). Shader
// invocations cannot communicate, so summing N per-atom values on the
// GPU takes a ladder of gather passes, each halving the array —
// "however, this method introduces significant overheads": every pass
// pays the dispatch cost, and the accelerations must cross PCIe anyway,
// which is why riding the PE home in the float4's w component wins.
// ReduceSum exists so that the ablation can measure exactly that.

// ReduceSum sums the x components of data with log2(N) halving passes
// and returns the sum, the pass count, and the modeled GPU seconds
// (compute + one dispatch per pass; the final one-texel readback is the
// caller's to account since it can share a transfer).
func (d *Device) ReduceSum(data []Float4) (sum float32, passes int, seconds float64) {
	if len(data) == 0 {
		return 0, 0, 0
	}
	cur := NewTexture("reduce", data)
	for cur.Len() > 1 {
		n := cur.Len()
		half := (n + 1) / 2
		shader := ShaderFunc(func(s *Sampler, i int) Float4 {
			a := s.Fetch("reduce", i)
			var b Float4
			if i+half < n {
				b = s.Fetch("reduce", i+half)
				s.ALU(1)
			}
			return Float4{a[0] + b[0], 0, 0, 0}
		})
		pass, err := NewPass(shader, half, cur)
		if err != nil {
			// Construction can only fail on programmer error (nil
			// shader / bad lengths), never for valid reductions.
			panic(fmt.Sprintf("gpu: reduction pass: %v", err))
		}
		out, sec := d.Dispatch(pass)
		seconds += sec
		passes++
		cur = NewTexture("reduce", out)
	}
	return cur.At(0)[0], passes, seconds
}
