package gpu

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/vec"
)

func workload(t *testing.T, n, steps int) device.Workload {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 2.5
	if 2*cutoff > st.Box {
		cutoff = st.Box / 2 * 0.99
	}
	return device.Workload{State: st, Cutoff: cutoff, Dt: 0.004, Steps: steps}
}

func mustNew(t *testing.T, cfg Config) *Device {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestShaderPhysicsMatchesReference(t *testing.T) {
	w := workload(t, 108, 1)
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	n := len(w.State.Pos)
	pos := make([]vec.V3[float32], n)
	for i := range pos {
		pos[i] = vec.FromV3f64[float32](w.State.Pos[i])
	}
	wantAccC := md.MakeCoords[float32](n)
	wantPE := md.ComputeForcesFull(p, md.CoordsFromV3(pos), wantAccC)
	wantAcc := wantAccC.V3s()

	shader := mdShader(n, p.Box, p.Cutoff)
	pass, err := NewPass(shader, n, NewTexture("pos", packPositions(md.CoordsFromV3(pos))))
	if err != nil {
		t.Fatal(err)
	}
	out, fetches, alu := pass.run()
	if fetches != int64(n)+int64(n)*int64(n) {
		t.Errorf("fetches = %d, want %d", fetches, n+n*n)
	}
	if alu != int64(n)*int64(n)*16 {
		t.Errorf("alu = %d, want %d", alu, n*n*16)
	}
	var pe float32
	for i := range out {
		got := vec.V3[float32]{X: out[i][0], Y: out[i][1], Z: out[i][2]}
		if float64(got.Sub(wantAcc[i]).Norm()) > 1e-4*(1+float64(wantAcc[i].Norm())) {
			t.Fatalf("acc[%d] = %+v, want %+v", i, got, wantAcc[i])
		}
		pe += out[i][3]
	}
	pe /= 2
	if rel := math.Abs(float64(pe-wantPE)) / math.Abs(float64(wantPE)); rel > 2e-4 {
		t.Fatalf("PE = %v, want %v (rel %v)", pe, wantPE, rel)
	}
}

func TestShaderNoNaNFromMaskedPairs(t *testing.T) {
	// Self-pairs (r2 == 0) and distant pairs must not poison the
	// accumulation with NaN through the guarded reciprocal.
	pos := []vec.V3[float32]{{X: 1, Y: 1, Z: 1}, {X: 9, Y: 9, Z: 9}}
	shader := mdShader(2, 20, 2.5)
	pass, err := NewPass(shader, 2, NewTexture("pos", packPositions(md.CoordsFromV3(pos))))
	if err != nil {
		t.Fatal(err)
	}
	out, _, _ := pass.run()
	for i, o := range out {
		for c, v := range o {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatalf("out[%d][%d] = %v", i, c, v)
			}
		}
	}
}

func TestDevicePhysicsOverSteps(t *testing.T) {
	w := workload(t, 64, 10)
	res, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Steps; i++ {
		sys.StepWith(func() float32 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}
	if rel := math.Abs(res.PE-float64(sys.PE)) / math.Abs(float64(sys.PE)); rel > 1e-3 {
		t.Fatalf("PE diverged: %v vs %v", res.PE, sys.PE)
	}
}

func TestPerStepCostsScaleWithN(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	small, err := d.Run(workload(t, 256, 4))
	if err != nil {
		t.Fatal(err)
	}
	big, err := d.Run(workload(t, 1024, 4))
	if err != nil {
		t.Fatal(err)
	}
	// Compute is O(N^2): 16x.
	if r := big.Time.Component("compute") / small.Time.Component("compute"); r < 14 || r > 18 {
		t.Fatalf("compute ratio = %v, want ~16", r)
	}
	// Dispatch is O(1) per step.
	if big.Time.Component("dispatch") != small.Time.Component("dispatch") {
		t.Fatal("dispatch should be size-independent")
	}
	// PCIe has a latency floor plus an O(N) term.
	if big.Time.Component("pcie") <= small.Time.Component("pcie") {
		t.Fatal("pcie should grow with N")
	}
}

func TestFixedCostsDominateAtSmallN(t *testing.T) {
	// The Figure 7 crossover: at tiny N the GPU's per-step fixed costs
	// dwarf compute.
	d := mustNew(t, DefaultConfig())
	res, err := d.Run(workload(t, 64, 4))
	if err != nil {
		t.Fatal(err)
	}
	fixed := res.Time.Component("dispatch") + res.Time.Component("pcie")
	if fixed < res.Time.Component("compute") {
		t.Fatalf("fixed per-step costs (%v) should dominate compute (%v) at N=64",
			fixed, res.Time.Component("compute"))
	}
}

func TestStartupExcludedByDefault(t *testing.T) {
	w := workload(t, 64, 2)
	d := mustNew(t, DefaultConfig())
	res, err := d.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time.Component("startup") != 0 {
		t.Fatal("startup included by default")
	}
	cfg := DefaultConfig()
	cfg.IncludeStartup = true
	res2, err := mustNew(t, cfg).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Time.Component("startup") != cfg.StartupSec {
		t.Fatalf("startup = %v, want %v", res2.Time.Component("startup"), cfg.StartupSec)
	}
}

func TestTextureRules(t *testing.T) {
	tex := NewTexture("a", make([]Float4, 4))
	if _, err := NewPass(nil, 4, tex); err == nil {
		t.Fatal("nil shader accepted")
	}
	if _, err := NewPass(ShaderFunc(func(s *Sampler, i int) Float4 { return Float4{} }), 0, tex); err == nil {
		t.Fatal("zero output length accepted")
	}
	dup := NewTexture("a", make([]Float4, 4))
	if _, err := NewPass(ShaderFunc(func(s *Sampler, i int) Float4 { return Float4{} }), 4, tex, dup); err == nil {
		t.Fatal("duplicate binding accepted")
	}
	many := make([]*Texture, MaxBoundTextures+1)
	for i := range many {
		many[i] = NewTexture(string(rune('a'+i)), make([]Float4, 1))
	}
	if _, err := NewPass(ShaderFunc(func(s *Sampler, i int) Float4 { return Float4{} }), 1, many...); err == nil {
		t.Fatal("binding limit not enforced")
	}
}

func TestUnboundFetchPanics(t *testing.T) {
	pass, err := NewPass(ShaderFunc(func(s *Sampler, i int) Float4 {
		return s.Fetch("nope", 0)
	}), 1, NewTexture("pos", make([]Float4, 1)))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbound fetch did not panic")
		}
	}()
	pass.run()
}

func TestTextureIsCopiedOnCreate(t *testing.T) {
	// A texture must not alias host memory: inputs are read-only on the
	// device until explicitly re-uploaded.
	host := []Float4{{1, 2, 3, 4}}
	tex := NewTexture("pos", host)
	host[0][0] = 99
	s := &Sampler{textures: map[string]*Texture{"pos": tex}}
	if got := s.Fetch("pos", 0); got[0] != 1 {
		t.Fatalf("texture aliases host memory: %v", got)
	}
}

func TestTextureUpdateSizeMismatch(t *testing.T) {
	tex := NewTexture("pos", make([]Float4, 4))
	if err := tex.Update(make([]Float4, 5)); err == nil {
		t.Fatal("size-mismatched update accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Pipelines = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero pipelines accepted")
	}
	cfg = DefaultConfig()
	cfg.CoreHz = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero clock accepted")
	}
	cfg = DefaultConfig()
	cfg.PCIeBytesPerSec = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero PCIe bandwidth accepted")
	}
}

func TestMorePipelinesFasterCompute(t *testing.T) {
	w := workload(t, 256, 2)
	cfg16 := DefaultConfig()
	cfg16.Pipelines = 16
	cfg24 := DefaultConfig()
	cfg24.Pipelines = 24
	r16, err := mustNew(t, cfg16).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	r24, err := mustNew(t, cfg24).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	want := 24.0 / 16.0
	got := r16.Time.Component("compute") / r24.Time.Component("compute")
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("pipeline scaling = %v, want %v", got, want)
	}
}

func TestSamplerNegativeALUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative ALU did not panic")
		}
	}()
	(&Sampler{}).ALU(-1)
}

func TestReduceSum(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	data := make([]Float4, 100)
	var want float32
	for i := range data {
		data[i] = Float4{float32(i), 0, 0, 0}
		want += float32(i)
	}
	sum, passes, sec := d.ReduceSum(data)
	if sum != want {
		t.Fatalf("sum = %v, want %v", sum, want)
	}
	// 100 -> 50 -> 25 -> 13 -> 7 -> 4 -> 2 -> 1: 7 passes.
	if passes != 7 {
		t.Fatalf("passes = %d, want 7", passes)
	}
	if sec <= 6*DefaultConfig().DispatchSec {
		t.Fatalf("reduction time %v should include a dispatch per pass", sec)
	}
}

func TestReduceSumEdgeCases(t *testing.T) {
	d := mustNew(t, DefaultConfig())
	if sum, passes, sec := d.ReduceSum(nil); sum != 0 || passes != 0 || sec != 0 {
		t.Fatal("empty reduction not free")
	}
	if sum, passes, _ := d.ReduceSum([]Float4{{42}}); sum != 42 || passes != 0 {
		t.Fatalf("single-element reduction: %v, %d", sum, passes)
	}
	// Odd length with no pair for the last element.
	sum, _, _ := d.ReduceSum([]Float4{{1}, {2}, {3}})
	if sum != 6 {
		t.Fatalf("odd reduction = %v", sum)
	}
}

func TestPEReductionAblation(t *testing.T) {
	// The paper's claim: the multi-pass reduction is strictly worse than
	// the w-component readback, and the physics is unchanged.
	w := workload(t, 256, 3)
	free, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.PEViaReduction = true
	reduced, err := mustNew(t, cfg).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if reduced.Time.Component("reduction") <= 0 {
		t.Fatal("no reduction time accounted")
	}
	if reduced.Seconds() <= free.Seconds() {
		t.Fatalf("reduction path (%v) not slower than w-component path (%v)",
			reduced.Seconds(), free.Seconds())
	}
	// Same physics to float32 tree-vs-linear summation tolerance.
	if rel := math.Abs(reduced.PE-free.PE) / math.Abs(free.PE); rel > 1e-5 {
		t.Fatalf("reduction changed PE: %v vs %v", reduced.PE, free.PE)
	}
}
