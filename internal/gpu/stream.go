// Package gpu models the 2006-era programmable graphics pipeline the
// paper targets (section 3.2/5.2): a stream processor with P parallel
// pixel pipelines executing a gather-only shader program once per
// output location, fed and drained across a PCIe bus.
//
// The framework enforces the streaming restrictions the paper calls
// "a set of design challenges":
//
//   - arrays are either inputs (read-only Textures) or outputs, never
//     both — a shader cannot read and write the same memory;
//   - a shader invocation may gather from any input location but owns
//     exactly ONE output location, fixed before it runs (its return
//     value);
//   - there is no communication between shader invocations, which is
//     why the per-atom potential-energy contribution rides back in the
//     4th component of the float4 acceleration and is summed on the
//     CPU — the paper's "for free" readback trick;
//   - the number of bound input textures is limited.
//
// Execution is functional (real float32 physics) with cost accounting:
// texture fetches and ALU operations are tallied per dispatch and
// divided across the pipelines, and every time step pays the PCIe
// upload/readback plus a dispatch overhead. The one-time startup
// (context creation + JIT compile of the shader) is tracked separately
// and excluded from steady-state results, exactly as the paper's
// Figure 7 does.
package gpu

import "fmt"

// Float4 is one RGBA texel: the GPU's native element.
type Float4 [4]float32

// MaxBoundTextures is the input-binding limit of the modeled part.
const MaxBoundTextures = 16

// Texture is a read-only input array of float4 texels.
type Texture struct {
	name string
	data []Float4
}

// NewTexture copies data into a texture (uploads are explicit PCIe
// transfers accounted by the device; the copy here models the GPU-side
// buffer being distinct from host memory).
func NewTexture(name string, data []Float4) *Texture {
	t := &Texture{name: name, data: make([]Float4, len(data))}
	copy(t.data, data)
	return t
}

// Len returns the number of texels.
func (t *Texture) Len() int { return len(t.data) }

// Name returns the binding name.
func (t *Texture) Name() string { return t.name }

// At returns texel i without cost accounting — a host-side inspection
// helper (device code reads through Sampler.Fetch, which is costed).
func (t *Texture) At(i int) Float4 { return t.data[i] }

// Update overwrites the texture contents (a new upload), keeping size.
func (t *Texture) Update(data []Float4) error {
	if len(data) != len(t.data) {
		return fmt.Errorf("gpu: texture %q update size %d != %d", t.name, len(data), len(t.data))
	}
	copy(t.data, data)
	return nil
}

// Sampler is the only handle a shader gets to its inputs. Every Fetch
// and every ALU op is tallied; there is no way to write through it.
type Sampler struct {
	textures map[string]*Texture
	// Single-binding fast path: most passes bind one texture and fetch
	// from it O(N²) times, so the map lookup is hoisted.
	soloName string
	solo     *Texture

	fetches int64
	alu     int64
}

// Fetch reads texel i of the named bound texture.
func (s *Sampler) Fetch(tex string, i int) Float4 {
	s.fetches++
	if tex == s.soloName {
		return s.solo.data[i]
	}
	t, ok := s.textures[tex]
	if !ok {
		s.fetches--
		panic(fmt.Sprintf("gpu: shader fetched unbound texture %q", tex))
	}
	return t.data[i]
}

// ALU tallies n float4 arithmetic instructions executed by the shader.
// Shaders call it alongside their Go arithmetic so the cost model sees
// the real instruction mix.
func (s *Sampler) ALU(n int) {
	if n < 0 {
		panic("gpu: negative ALU count")
	}
	s.alu += int64(n)
}

// Fetches returns the tally of texture reads.
func (s *Sampler) Fetches() int64 { return s.fetches }

// ALUOps returns the tally of arithmetic instructions.
func (s *Sampler) ALUOps() int64 { return s.alu }

// Shader is one compiled fragment program: Execute computes the single
// output texel at index i, gathering inputs through the sampler. Any
// constants must be baked in at construction ("compiled into the shader
// program source using the provided JIT compiler", section 5.2).
type Shader interface {
	Execute(s *Sampler, i int) Float4
}

// ShaderFunc adapts a function to the Shader interface.
type ShaderFunc func(s *Sampler, i int) Float4

// Execute implements Shader.
func (f ShaderFunc) Execute(s *Sampler, i int) Float4 { return f(s, i) }

// Pass is one configured render-to-texture pass: bound inputs, a
// shader, and an output length.
type Pass struct {
	shader   Shader
	textures map[string]*Texture
	outLen   int
}

// NewPass builds a pass. Binding more than MaxBoundTextures inputs or
// reusing a binding name fails, as on real hardware.
func NewPass(shader Shader, outLen int, inputs ...*Texture) (*Pass, error) {
	if shader == nil {
		return nil, fmt.Errorf("gpu: pass needs a shader")
	}
	if outLen <= 0 {
		return nil, fmt.Errorf("gpu: output length must be positive, got %d", outLen)
	}
	if len(inputs) > MaxBoundTextures {
		return nil, fmt.Errorf("gpu: %d input textures exceed the binding limit %d", len(inputs), MaxBoundTextures)
	}
	ts := make(map[string]*Texture, len(inputs))
	for _, t := range inputs {
		if _, dup := ts[t.name]; dup {
			return nil, fmt.Errorf("gpu: duplicate texture binding %q", t.name)
		}
		ts[t.name] = t
	}
	return &Pass{shader: shader, textures: ts, outLen: outLen}, nil
}

// run executes the pass functionally and returns the output buffer plus
// the fetch/ALU tallies.
func (p *Pass) run() (out []Float4, fetches, alu int64) {
	s := &Sampler{textures: p.textures}
	if len(p.textures) == 1 {
		for name, t := range p.textures {
			s.soloName, s.solo = name, t
		}
	}
	out = make([]Float4, p.outLen)
	for i := 0; i < p.outLen; i++ {
		out[i] = p.shader.Execute(s, i)
	}
	return out, s.fetches, s.alu
}
