package gpu

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/md"
	"repro/internal/sim"
	"repro/internal/vec"
)

// Config parameterizes the GPU model. The defaults approximate the
// NVIDIA GeForce 7900GTX-class part the paper measures: 24 pixel
// pipelines at 650 MHz, fed by PCIe.
type Config struct {
	Pipelines int     // parallel pixel pipelines
	CoreHz    float64 // shader clock

	FetchCycles float64 // cycles per texture fetch per pipeline
	ALUCycles   float64 // cycles per float4 ALU instruction

	PCIeBytesPerSec float64 // effective host<->device bandwidth
	PCIeLatencySec  float64 // per-transfer latency
	DispatchSec     float64 // per-pass driver/setup overhead

	// StartupSec is the one-time cost (context creation, JIT-compiling
	// the shader with the constants baked in). The paper excludes it
	// from Figure 7 because it is amortized across time steps;
	// IncludeStartup adds it to the reported total for what-if runs.
	StartupSec     float64
	IncludeStartup bool

	// PEViaReduction sums the per-atom potential energies with the
	// multi-pass GPU reduction the paper considers and rejects, instead
	// of riding them home in the float4 w component. Exists for the
	// ablation that quantifies the paper's "significant overheads".
	PEViaReduction bool
}

// DefaultConfig returns the calibrated 7900GTX-class model.
func DefaultConfig() Config {
	return Config{
		Pipelines:       24,
		CoreHz:          650e6,
		FetchCycles:     10, // unfiltered float4 texture reads are the slow path
		ALUCycles:       1,
		PCIeBytesPerSec: 1.5e9,
		PCIeLatencySec:  30e-6,
		DispatchSec:     60e-6,
		StartupSec:      0.3,
	}
}

// Device is the modeled graphics card.
type Device struct {
	cfg Config
}

// New validates cfg and returns the device.
func New(cfg Config) (*Device, error) {
	if cfg.Pipelines <= 0 {
		return nil, fmt.Errorf("gpu: pipelines must be positive, got %d", cfg.Pipelines)
	}
	if cfg.CoreHz <= 0 || cfg.PCIeBytesPerSec <= 0 {
		return nil, fmt.Errorf("gpu: clock and PCIe bandwidth must be positive")
	}
	return &Device{cfg: cfg}, nil
}

// Name implements device.Device.
func (d *Device) Name() string { return "gpu" }

// mdShader builds the fragment program of section 5.2: one invocation
// per atom, gathering all positions, writing the float4
// (ax, ay, az, pe_i). Constants (box, cutoff, LJ coefficients, N) are
// baked in, as with the paper's JIT-compiled Cg source. The kernel is
// branch-free: 2006 fragment processors pay for both sides of data-
// dependent control flow, so the cutoff is applied with an arithmetic
// select mask — which also makes the per-pair cost uniform.
func mdShader(n int, box, cutoff float32) Shader {
	half := box / 2
	rc2 := cutoff * cutoff
	return ShaderFunc(func(s *Sampler, i int) Float4 {
		pi := s.Fetch("pos", i)
		var ax, ay, az, pe float32
		for j := 0; j < n; j++ {
			pj := s.Fetch("pos", j)
			dx, dy, dz := pi[0]-pj[0], pi[1]-pj[1], pi[2]-pj[2]
			// Branch-free minimum image: d -= box * sel(|d| > box/2, sign(d)).
			dx -= box * selSign(dx, half)
			dy -= box * selSign(dy, half)
			dz -= box * selSign(dz, half)
			r2 := dx*dx + dy*dy + dz*dz
			// mask = 1 inside the cutoff, excluding self (r2 == 0).
			var mask float32
			if r2 < rc2 && r2 > 0 {
				mask = 1
			}
			// Guard the reciprocal so masked-out lanes stay finite
			// (inf * 0 would poison the accumulation with NaN).
			rsafe := r2
			if mask == 0 {
				rsafe = 1
			}
			sr2 := 1 / rsafe
			sr6 := sr2 * sr2 * sr2
			sr12 := sr6 * sr6
			pe += mask * 4 * (sr12 - sr6)
			f := mask * 24 * (2*sr12 - sr6) * sr2
			ax += f * dx
			ay += f * dy
			az += f * dz
			// Instruction budget per pair: 1 sub (float4), 3 mad-chains
			// for the minimum image (abs/compare/select/mad per axis
			// vectorized as ~2 ops each -> 6), 1 dp3, 1 compare+select
			// mask, 1 guarded rcp (2), 3 muls for sr6/sr12, 2 mads for
			// pe, 2 for f, 1 mad for the acceleration -> 16 ALU ops.
			s.ALU(16)
		}
		return Float4{ax, ay, az, pe}
	})
}

// selSign returns sign(d) when |d| > half, else 0 — the arithmetic
// select the shader uses for the minimum image.
func selSign(d, half float32) float32 {
	switch {
	case d > half:
		return 1
	case d < -half:
		return -1
	default:
		return 0
	}
}

// Run implements device.Device: the acceleration computation runs on
// the GPU each step (positions uploaded, accelerations + per-atom PE
// read back), the integration and the PE reduction stay on the CPU.
func (d *Device) Run(w device.Workload) (*device.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	//mdlint:ignore precision device boundary: the single-precision port narrows the float64 workload once at entry
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return nil, err
	}
	n := sys.N()

	shader := mdShader(n, float32(w.State.Box), float32(w.Cutoff)) //mdlint:ignore precision device boundary: shader constants are single precision by design
	posTex := NewTexture("pos", packPositions(sys.Pos))

	bd := sim.NewBreakdown()
	var ledger sim.Ledger
	bytesPerArray := n * 16 // float4 per atom

	forces := func() float32 {
		// Upload this step's positions.
		if err := posTex.Update(packPositions(sys.Pos)); err != nil {
			panic(err) // sizes are fixed for the run
		}
		bd.Add("pcie", d.transferSec(bytesPerArray))

		pass, err := NewPass(shader, n, posTex)
		if err != nil {
			panic(err)
		}
		out, fetches, alu := pass.run()
		ledger.Add(sim.OpLoad, fetches)
		ledger.Add(sim.OpVec, alu)
		cycles := float64(fetches)*d.cfg.FetchCycles + float64(alu)*d.cfg.ALUCycles
		bd.Add("compute", cycles/float64(d.cfg.Pipelines)/d.cfg.CoreHz)
		bd.Add("dispatch", d.cfg.DispatchSec)

		// Read back accelerations; the PE contributions ride along in
		// the w component "for free" and are reduced on the CPU — unless
		// the rejected multi-pass GPU reduction is being ablated.
		bd.Add("pcie", d.transferSec(bytesPerArray))
		var pe float32
		if d.cfg.PEViaReduction {
			peData := make([]Float4, n)
			for i := range out {
				peData[i] = Float4{out[i][3], 0, 0, 0}
			}
			sum, _, sec := d.ReduceSum(peData)
			bd.Add("reduction", sec)
			bd.Add("pcie", d.transferSec(16)) // the single reduced texel
			pe = sum
		}
		for i := range out {
			sys.Acc.Set(i, vec.V3[float32]{X: out[i][0], Y: out[i][1], Z: out[i][2]})
			if !d.cfg.PEViaReduction {
				pe += out[i][3]
			}
		}
		return pe / 2
	}

	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
	}
	if d.cfg.IncludeStartup && w.Steps > 0 {
		bd.Add("startup", d.cfg.StartupSec)
	}

	return &device.Result{
		Device:  d.Name(),
		Variant: fmt.Sprintf("%dpipe", d.cfg.Pipelines),
		N:       n,
		Steps:   w.Steps,
		PE:      float64(sys.PE), //mdlint:ignore precision widening the device-native energies into the float64 result schema
		KE:      float64(sys.KE),
		Time:    bd,
		Ledger:  ledger,
	}, nil
}

// transferSec models one PCIe transfer of the given size.
func (d *Device) transferSec(bytes int) float64 {
	return d.cfg.PCIeLatencySec + float64(bytes)/d.cfg.PCIeBytesPerSec
}

// TransferSec models one PCIe transfer of the given size — exposed for
// non-MD workloads built on the stream framework (e.g. the
// Smith-Waterman port in internal/seqalign).
func (d *Device) TransferSec(bytes int) float64 { return d.transferSec(bytes) }

// Dispatch executes one pass functionally and returns its output
// together with the modeled seconds (shader cycles across the
// pipelines plus the per-pass dispatch overhead).
func (d *Device) Dispatch(p *Pass) (out []Float4, seconds float64) {
	out, fetches, alu := p.run()
	cycles := float64(fetches)*d.cfg.FetchCycles + float64(alu)*d.cfg.ALUCycles
	return out, cycles/float64(d.cfg.Pipelines)/d.cfg.CoreHz + d.cfg.DispatchSec
}

// packPositions lays out positions as float4 texels (w unused).
func packPositions(pos md.Coords[float32]) []Float4 {
	out := make([]Float4, pos.Len())
	for i := range out {
		out[i] = Float4{pos.X[i], pos.Y[i], pos.Z[i], 0}
	}
	return out
}

var _ device.Device = (*Device)(nil)
