package vec

import (
	"math"
	"testing"
	"testing/quick"
)

// These tests pin the audited widen-compute-narrow helpers backing the
// mixed-precision host fast path: Widen is exact, Narrow is correctly
// rounded with a known worst-case ULP bound, non-finite values pass
// through unchanged, and PairwiseSum's reduction shape depends only on
// the slice length.

// TestWidenIsExact: every float32 is exactly representable as a
// float64, so Widen must be lossless and Narrow∘Widen the identity.
func TestWidenIsExact(t *testing.T) {
	vals := []float32{0, 1, -1, 0.5, 1.5, -3.25, 1e-10, 3.4028234e38,
		math.MaxFloat32, math.SmallestNonzeroFloat32, 1.0 / 3.0}
	for _, v := range vals {
		w := Widen(v)
		if Narrow[float32](w) != v {
			t.Fatalf("Narrow(Widen(%g)) = %g, want identity", v, Narrow[float32](w))
		}
	}
	f := func(x float32) bool { return Narrow[float32](Widen(x)) == x || x != x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestNarrowRoundTripExact: float64 values that happen to be
// float32-representable must narrow without any error at all.
func TestNarrowRoundTripExact(t *testing.T) {
	for _, x := range []float64{0, 1, -2, 0.25, 1.5, 4096, -0.0078125, 1e7} {
		if got := Widen(Narrow[float32](x)); got != x {
			t.Fatalf("Narrow(%v) round-tripped to %v, want exact", x, got)
		}
	}
}

// TestNarrowULPBound: narrowing is IEEE round-to-nearest, so for any
// float64 in float32's normal range the relative error is at most half
// a float32 ULP, 2^-24. This is the worst-case bound the mixed kernel's
// error analysis in DESIGN.md leans on.
func TestNarrowULPBound(t *testing.T) {
	const halfULP = 1.0 / (1 << 24) // 2^-24
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) || raw == 0 {
			return true
		}
		// Scale into float32's normal range.
		exp := int(math.Mod(math.Abs(raw), 64)) - 32 // [-32, 31]: well inside float32's normal range
		x := math.Copysign(1+math.Abs(math.Mod(raw, 1)), raw) * math.Pow(2, float64(exp))
		rel := math.Abs(Widen(Narrow[float32](x))-x) / math.Abs(x)
		return rel <= halfULP
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Directed worst case: exactly halfway between two float32
	// neighbors still rounds within the bound.
	x := 1 + 3.0/(1<<25) // 0.75 ULP above 1.0 at float32
	if rel := math.Abs(Widen(Narrow[float32](x))-x) / x; rel > halfULP {
		t.Fatalf("halfway case relative error %v > 2^-24", rel)
	}
}

// TestNarrowNonFinite: NaN and infinities must propagate, and float64
// magnitudes beyond float32's range must saturate to infinity rather
// than silently wrap — a corrupted coordinate has to stay visibly
// corrupt through the mirror so the guard's NaN check can catch it.
func TestNarrowNonFinite(t *testing.T) {
	if v := Narrow[float32](math.NaN()); v == v {
		t.Fatal("NaN did not propagate through Narrow")
	}
	if v := Narrow[float32](math.Inf(1)); !math.IsInf(float64(v), 1) {
		t.Fatalf("+Inf narrowed to %v", v)
	}
	if v := Narrow[float32](math.Inf(-1)); !math.IsInf(float64(v), -1) {
		t.Fatalf("-Inf narrowed to %v", v)
	}
	if v := Narrow[float32](1e300); !math.IsInf(float64(v), 1) {
		t.Fatalf("overflowing narrow gave %v, want +Inf", v)
	}
	if w := Widen(float32(math.NaN())); w == w {
		t.Fatal("NaN did not propagate through Widen")
	}
}

// TestAccumAddSubWidenExactly: the accumulate helpers must behave as
// "widen exactly, then one float64 add/sub per component" — nothing
// more. Pinned bitwise against the hand-written expansion.
func TestAccumAddSubWidenExactly(t *testing.T) {
	acc := V3[float64]{0.1, -2.5, 1e-9}
	b := V3[float32]{1.0 / 3.0, -7.25, 3e-8}
	add := AccumAdd(acc, b)
	sub := AccumSub(acc, b)
	wantAdd := V3[float64]{acc.X + float64(b.X), acc.Y + float64(b.Y), acc.Z + float64(b.Z)}
	wantSub := V3[float64]{acc.X - float64(b.X), acc.Y - float64(b.Y), acc.Z - float64(b.Z)}
	if add != wantAdd {
		t.Fatalf("AccumAdd = %+v, want %+v", add, wantAdd)
	}
	if sub != wantSub {
		t.Fatalf("AccumSub = %+v, want %+v", sub, wantSub)
	}
	// With dyadic values every add is exact, so add-then-sub of the
	// same widened vector cancels bit-for-bit: both operations see the
	// identical float64 image of their float32 argument.
	dacc := V3[float64]{1, -2.5, 0.5}
	db := V3[float32]{0.25, 0.5, -0.125}
	if got := AccumSub(AccumAdd(dacc, db), db); got != dacc {
		t.Fatalf("AccumSub(AccumAdd(acc,b),b) = %+v, want acc %+v", got, dacc)
	}
}

// TestPairwiseSumExactOnIntegers: integer-valued inputs small enough to
// be exact in float64 must sum exactly regardless of tree shape.
func TestPairwiseSumExactOnIntegers(t *testing.T) {
	for _, n := range []int{0, 1, 7, 8, 9, 100, 1023, 4096} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i%17 - 8)
		}
		var want float64
		for _, x := range xs {
			want += x
		}
		if got := PairwiseSum(xs); got != want {
			t.Fatalf("n=%d: PairwiseSum = %v, want %v", n, got, want)
		}
	}
}

// TestPairwiseSumShapeFixedByLength: the reduction tree splits at the
// midpoint, so the association — and therefore the exact bits — depend
// only on the slice contents and length, never on capacity, aliasing,
// or who calls it. Two equal-content slices must produce identical
// bits, and the result must match a naive sum to float64 roundoff.
func TestPairwiseSumShapeFixedByLength(t *testing.T) {
	const n = 777
	xs := make([]float64, n)
	for i := range xs {
		// Deterministic, sign-alternating, awkward mantissas.
		xs[i] = math.Sin(float64(i)*0.7) * math.Exp(float64(i%13)-6)
	}
	ys := make([]float64, n, 4*n)
	copy(ys, xs)
	a, b := PairwiseSum(xs), PairwiseSum(ys)
	if math.Float64bits(a) != math.Float64bits(b) {
		t.Fatalf("same content, different bits: %x vs %x",
			math.Float64bits(a), math.Float64bits(b))
	}
	var naive float64
	for _, x := range xs {
		naive += x
	}
	if math.Abs(a-naive) > 1e-9*(1+math.Abs(naive)) {
		t.Fatalf("pairwise %v too far from naive %v", a, naive)
	}
}
