// Package vec provides small fixed-size vector math over either float32
// or float64, shared by the molecular-dynamics engine and the device
// models.
//
// The paper's kernels run in single precision on the Cell SPEs and the
// GPU and in double precision on the MTA-2 and the Opteron baseline, so
// every geometric helper here is generic over the element type; the MD
// engine instantiates the same formulas at both widths and the tests
// quantify the drift between them.
package vec

import "math"

// Float is the constraint satisfied by the two IEEE-754 widths the
// paper's ports use.
type Float interface {
	~float32 | ~float64
}

// V3 is a three-component vector: a position, velocity, acceleration, or
// force in the MD state.
type V3[T Float] struct {
	X, Y, Z T
}

// Add returns a + b.
func (a V3[T]) Add(b V3[T]) V3[T] { return V3[T]{a.X + b.X, a.Y + b.Y, a.Z + b.Z} }

// Sub returns a - b.
func (a V3[T]) Sub(b V3[T]) V3[T] { return V3[T]{a.X - b.X, a.Y - b.Y, a.Z - b.Z} }

// Scale returns s * a.
func (a V3[T]) Scale(s T) V3[T] { return V3[T]{a.X * s, a.Y * s, a.Z * s} }

// Neg returns -a.
func (a V3[T]) Neg() V3[T] { return V3[T]{-a.X, -a.Y, -a.Z} }

// Dot returns the inner product a·b.
func (a V3[T]) Dot(b V3[T]) T { return a.X*b.X + a.Y*b.Y + a.Z*b.Z }

// Norm2 returns |a|², the squared Euclidean length.
func (a V3[T]) Norm2() T { return a.Dot(a) }

// Norm returns |a|.
func (a V3[T]) Norm() T { return Sqrt(a.Norm2()) }

// MulAdd returns a + s*b, the fused update used throughout the Verlet
// integrator.
func (a V3[T]) MulAdd(s T, b V3[T]) V3[T] {
	return V3[T]{a.X + s*b.X, a.Y + s*b.Y, a.Z + s*b.Z}
}

// Hadamard returns the component-wise product of a and b.
func (a V3[T]) Hadamard(b V3[T]) V3[T] { return V3[T]{a.X * b.X, a.Y * b.Y, a.Z * b.Z} }

// Sqrt is a generic square root, computed at the precision of T: for
// float32 it rounds a float64 result back to float32, matching what a
// single-precision machine produces for correctly-rounded inputs.
func Sqrt[T Float](x T) T { return T(math.Sqrt(float64(x))) }

// Abs returns |x|.
func Abs[T Float](x T) T {
	if x < 0 {
		return -x
	}
	return x
}

// Copysign returns a value with the magnitude of mag and the sign of
// sign. This is the branch-free primitive the paper substitutes for an
// "if" in the SPE unit-cell search (SPEs have no branch prediction).
func Copysign[T Float](mag, sign T) T {
	return T(math.Copysign(float64(mag), float64(sign)))
}

// Floor returns the largest integer value <= x, at the precision of T.
func Floor[T Float](x T) T { return T(math.Floor(float64(x))) }

// Round returns x rounded to the nearest integer, half away from zero.
func Round[T Float](x T) T { return T(math.Round(float64(x))) }

// Min returns the smaller of a and b.
func Min[T Float](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max[T Float](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp[T Float](x, lo, hi T) T {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ToV3f64 widens a vector to float64, used when accumulating energies
// from single-precision devices.
func ToV3f64[T Float](a V3[T]) V3[float64] {
	return V3[float64]{float64(a.X), float64(a.Y), float64(a.Z)}
}

// FromV3f64 narrows a float64 vector to precision T.
func FromV3f64[T Float](a V3[float64]) V3[T] {
	return V3[T]{T(a.X), T(a.Y), T(a.Z)}
}

// The widen-compute-narrow helpers below are the audited crossing
// points of the mixed-precision host fast path: pair geometry and the
// LJ pair evaluation run at kernel precision T (float32 on the fast
// path), while per-atom force and energy accumulation stay in float64.
// Every float32↔float64 boundary the fast path crosses goes through
// one of these, so the mdlint precision rule can allowlist them by
// name and flag any other width change in a kernel package.

// Widen converts a kernel-precision value to the float64 accumulation
// width. Widening is exact: every float32 is representable as a
// float64, so no rounding occurs (the tests pin this bit for bit).
func Widen[T Float](x T) float64 { return float64(x) }

// Narrow rounds a float64 accumulation result back to kernel
// precision T using IEEE-754 round-to-nearest-even — the same
// correctly-rounded conversion the hardware performs, so the result is
// within half a ULP of the double-precision value (pinned by the ULP
// tests). NaN stays NaN and values beyond T's range become ±Inf.
func Narrow[T Float](x float64) T { return T(x) }

// AccumAdd returns acc + widen(b): one pair force folded into a
// float64 per-atom accumulator. The widening is exact, so the only
// rounding is the float64 addition itself — the accumulator never
// loses the low bits of a float32 contribution.
func AccumAdd[T Float](acc V3[float64], b V3[T]) V3[float64] {
	return V3[float64]{acc.X + float64(b.X), acc.Y + float64(b.Y), acc.Z + float64(b.Z)}
}

// AccumSub returns acc - widen(b): the Newton's-third-law counterpart
// of AccumAdd.
func AccumSub[T Float](acc V3[float64], b V3[T]) V3[float64] {
	return V3[float64]{acc.X - float64(b.X), acc.Y - float64(b.Y), acc.Z - float64(b.Z)}
}

// PairwiseSum reduces xs with a fixed-shape pairwise (binary-tree)
// summation: halves are summed recursively down to 8-element runs,
// which are summed left to right. The shape depends only on len(xs),
// so for a given input the result is bitwise deterministic no matter
// how the elements were produced — this is the float64 reduction the
// mixed-precision kernels use for per-atom energy partials, where a
// worker-count-dependent reduction order would leak into the output
// bytes. Pairwise summation also bounds the rounding error at
// O(log n) ULPs instead of the naive sum's O(n).
func PairwiseSum(xs []float64) float64 {
	if len(xs) <= 8 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s
	}
	h := len(xs) / 2
	return PairwiseSum(xs[:h]) + PairwiseSum(xs[h:])
}
