package vec

import (
	"math"
	"testing"
	"testing/quick"
)

// small bounds the magnitude of quick-generated floats so products stay
// finite and comparisons stay meaningful.
func small(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Mod(x, 1e6)
}

func v3(a, b, c float64) V3[float64] { return V3[float64]{small(a), small(b), small(c)} }

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestAddSubRoundTrip(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := v3(ax, ay, az), v3(bx, by, bz)
		r := a.Add(b).Sub(b)
		return approx(r.X, a.X, 1e-12) && approx(r.Y, a.Y, 1e-12) && approx(r.Z, a.Z, 1e-12)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDotSymmetry(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := v3(ax, ay, az), v3(bx, by, bz)
		return a.Dot(b) == b.Dot(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScaleDistributesOverAdd(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz, sRaw float64) bool {
		s := small(sRaw)
		a, b := v3(ax, ay, az), v3(bx, by, bz)
		l := a.Add(b).Scale(s)
		r := a.Scale(s).Add(b.Scale(s))
		return approx(l.X, r.X, 1e-9) && approx(l.Y, r.Y, 1e-9) && approx(l.Z, r.Z, 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNorm2NonNegative(t *testing.T) {
	prop := func(ax, ay, az float64) bool {
		return v3(ax, ay, az).Norm2() >= 0
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormMatchesDot(t *testing.T) {
	prop := func(ax, ay, az float64) bool {
		a := v3(ax, ay, az)
		return approx(a.Norm()*a.Norm(), a.Norm2(), 1e-9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulAddMatchesExplicit(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz, sRaw float64) bool {
		s := small(sRaw)
		a, b := v3(ax, ay, az), v3(bx, by, bz)
		l := a.MulAdd(s, b)
		r := a.Add(b.Scale(s))
		return l == r
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegIsScaleMinusOne(t *testing.T) {
	prop := func(ax, ay, az float64) bool {
		a := v3(ax, ay, az)
		return a.Neg() == a.Scale(-1)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHadamardCommutes(t *testing.T) {
	prop := func(ax, ay, az, bx, by, bz float64) bool {
		a, b := v3(ax, ay, az), v3(bx, by, bz)
		return a.Hadamard(b) == b.Hadamard(a)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCopysignSemantics(t *testing.T) {
	cases := []struct{ mag, sign, want float64 }{
		{3, -1, -3},
		{3, 1, 3},
		{-3, 1, 3},
		{-3, -1, -3},
		{0, -1, math.Copysign(0, -1)},
	}
	for _, c := range cases {
		if got := Copysign(c.mag, c.sign); got != c.want {
			t.Errorf("Copysign(%v,%v) = %v, want %v", c.mag, c.sign, got, c.want)
		}
	}
}

func TestCopysignFloat32(t *testing.T) {
	if got := Copysign(float32(2.5), float32(-7)); got != -2.5 {
		t.Fatalf("Copysign float32 = %v, want -2.5", got)
	}
}

func TestSqrtFloat32MatchesMath(t *testing.T) {
	prop := func(raw float64) bool {
		x := float32(math.Abs(small(raw)))
		return Sqrt(x) == float32(math.Sqrt(float64(x)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5.0, 0.0, 1.0) != 1.0 {
		t.Error("Clamp above")
	}
	if Clamp(-5.0, 0.0, 1.0) != 0.0 {
		t.Error("Clamp below")
	}
	if Clamp(0.5, 0.0, 1.0) != 0.5 {
		t.Error("Clamp inside")
	}
}

func TestMinMax(t *testing.T) {
	if Min(2.0, 3.0) != 2.0 || Min(3.0, 2.0) != 2.0 {
		t.Error("Min")
	}
	if Max(2.0, 3.0) != 3.0 || Max(3.0, 2.0) != 3.0 {
		t.Error("Max")
	}
}

func TestAbs(t *testing.T) {
	if Abs(-2.0) != 2.0 || Abs(2.0) != 2.0 || Abs(0.0) != 0.0 {
		t.Error("Abs")
	}
	if Abs(float32(-1.5)) != 1.5 {
		t.Error("Abs float32")
	}
}

func TestFloorRound(t *testing.T) {
	if Floor(1.9) != 1.0 || Floor(-0.1) != -1.0 {
		t.Error("Floor")
	}
	if Round(1.5) != 2.0 || Round(-1.5) != -2.0 || Round(1.4) != 1.0 {
		t.Error("Round")
	}
}

func TestWidenNarrowRoundTrip(t *testing.T) {
	a := V3[float32]{1.5, -2.25, 3.125} // exactly representable
	if got := FromV3f64[float32](ToV3f64(a)); got != a {
		t.Fatalf("round trip changed exactly-representable vector: %v", got)
	}
}

func BenchmarkDotFloat64(b *testing.B) {
	a := V3[float64]{1, 2, 3}
	c := V3[float64]{4, 5, 6}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += a.Dot(c)
	}
	_ = sink
}

func BenchmarkDotFloat32(b *testing.B) {
	a := V3[float32]{1, 2, 3}
	c := V3[float32]{4, 5, 6}
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += a.Dot(c)
	}
	_ = sink
}
