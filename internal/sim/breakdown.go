package sim

import (
	"fmt"
	"strings"
)

// Breakdown is a modeled runtime split into named components, all in
// seconds. It is how device models report where time goes — e.g. the
// Cell model's {"compute", "dma", "spawn", "mailbox"} split that
// regenerates Figure 6's total-vs-launch-overhead bars.
//
// Components keep insertion order so reports are stable.
type Breakdown struct {
	labels  []string
	seconds map[string]float64
}

// NewBreakdown returns an empty breakdown.
func NewBreakdown() *Breakdown {
	return &Breakdown{seconds: make(map[string]float64)}
}

// Add accrues sec seconds to the named component. Negative time is an
// accounting bug and panics.
func (b *Breakdown) Add(label string, sec float64) {
	if sec < 0 {
		panic(fmt.Sprintf("sim: negative time %v for component %q", sec, label))
	}
	if _, ok := b.seconds[label]; !ok {
		b.labels = append(b.labels, label)
	}
	b.seconds[label] += sec
}

// Component returns the accumulated seconds for label (zero if absent).
func (b *Breakdown) Component(label string) float64 { return b.seconds[label] }

// Labels returns the component names in insertion order.
func (b *Breakdown) Labels() []string { return append([]string(nil), b.labels...) }

// Total returns the sum over all components, accumulated in insertion
// order so the float result is identical run to run (summing in map
// order would randomize the rounding).
func (b *Breakdown) Total() float64 {
	var t float64
	for _, label := range b.labels {
		t += b.seconds[label]
	}
	return t
}

// Merge adds other's components into b.
func (b *Breakdown) Merge(other *Breakdown) {
	for _, label := range other.labels {
		b.Add(label, other.seconds[label])
	}
}

// Scale multiplies every component by f (e.g. replicating a per-step
// cost across time steps). f must be non-negative.
func (b *Breakdown) Scale(f float64) {
	if f < 0 {
		panic(fmt.Sprintf("sim: negative scale %v", f))
	}
	for label := range b.seconds {
		b.seconds[label] *= f
	}
}

// String renders "total=Xs (a=..., b=...)" in insertion order.
func (b *Breakdown) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "total=%.6gs", b.Total())
	if len(b.labels) > 0 {
		sb.WriteString(" (")
		for i, label := range b.labels {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s=%.6gs", label, b.seconds[label])
		}
		sb.WriteString(")")
	}
	return sb.String()
}
