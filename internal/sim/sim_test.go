package sim

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestLedgerAddCount(t *testing.T) {
	var l Ledger
	l.Add(OpFAdd, 10)
	l.Add(OpFAdd, 5)
	l.Add(OpVec, 3)
	if l.Count(OpFAdd) != 15 || l.Count(OpVec) != 3 || l.Count(OpFMul) != 0 {
		t.Fatalf("counts wrong: %v", l.String())
	}
	if l.Total() != 18 {
		t.Fatalf("Total = %d, want 18", l.Total())
	}
}

func TestLedgerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add(-1) did not panic")
		}
	}()
	var l Ledger
	l.Add(OpFAdd, -1)
}

func TestLedgerCycles(t *testing.T) {
	var l Ledger
	l.Add(OpFAdd, 100)
	l.Add(OpFDiv, 10)
	var ct CostTable
	ct[OpFAdd] = 1
	ct[OpFDiv] = 20
	if got := l.Cycles(ct); got != 100+200 {
		t.Fatalf("Cycles = %v, want 300", got)
	}
}

func TestLedgerCyclesLinearInCounts(t *testing.T) {
	prop := func(a, b uint16) bool {
		var l1, l2, both Ledger
		l1.Add(OpFMul, int64(a))
		l2.Add(OpFMul, int64(b))
		both.Add(OpFMul, int64(a)+int64(b))
		var ct CostTable
		ct[OpFMul] = 2.5
		return math.Abs(l1.Cycles(ct)+l2.Cycles(ct)-both.Cycles(ct)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLedgerMergeEqualsSequential(t *testing.T) {
	prop := func(a, b, c uint16) bool {
		var l1, l2 Ledger
		l1.Add(OpLoad, int64(a))
		l1.Add(OpStore, int64(b))
		l2.Add(OpLoad, int64(c))
		merged := l1
		merged.Merge(&l2)
		return merged.Count(OpLoad) == int64(a)+int64(c) && merged.Count(OpStore) == int64(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAllEqualsSequential(t *testing.T) {
	// Tree reduction over any number of worker ledgers must equal the
	// sequential fold, and must leave the inputs untouched.
	prop := func(counts []uint16) bool {
		ledgers := make([]Ledger, len(counts))
		var want Ledger
		for i, c := range counts {
			op := Op(i % int(NumOps))
			ledgers[i].Add(op, int64(c))
			want.Add(op, int64(c))
		}
		before := make([]Ledger, len(ledgers))
		copy(before, ledgers)
		got := MergeAll(ledgers)
		for i := range ledgers {
			if ledgers[i] != before[i] {
				return false
			}
		}
		return got == want
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAllEmpty(t *testing.T) {
	if got := MergeAll(nil); got.Total() != 0 {
		t.Fatalf("MergeAll(nil).Total() = %d, want 0", got.Total())
	}
	var l Ledger
	l.Add(OpVec, 7)
	if got := MergeAll([]Ledger{l}); got != l {
		t.Fatalf("MergeAll of one ledger altered it: %v", got)
	}
}

func TestLedgerReset(t *testing.T) {
	var l Ledger
	l.Add(OpInt, 42)
	l.Reset()
	if l.Total() != 0 {
		t.Fatal("Reset left counts behind")
	}
}

func TestLedgerString(t *testing.T) {
	var l Ledger
	l.Add(OpFAdd, 1)
	l.Add(OpVec, 100)
	s := l.String()
	if !strings.Contains(s, "vec=100") || !strings.Contains(s, "fadd=1") {
		t.Fatalf("String = %q", s)
	}
	// Largest first.
	if strings.Index(s, "vec=100") > strings.Index(s, "fadd=1") {
		t.Fatalf("String not sorted by count: %q", s)
	}
}

func TestOpString(t *testing.T) {
	if OpFAdd.String() != "fadd" || OpBranchMiss.String() != "branchmiss" {
		t.Fatal("Op.String")
	}
	if Op(-1).String() == "" || Op(999).String() == "" {
		t.Fatal("out-of-range Op.String empty")
	}
}

func TestClockRoundTrip(t *testing.T) {
	c := Clock{Hz: 2.2e9}
	prop := func(raw uint32) bool {
		cycles := float64(raw)
		return math.Abs(c.Cycles(c.Seconds(cycles))-cycles) < 1e-6*(1+cycles)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClockZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero-Hz clock did not panic")
		}
	}()
	Clock{}.Seconds(1)
}

func TestBreakdownBasics(t *testing.T) {
	b := NewBreakdown()
	b.Add("compute", 1.5)
	b.Add("dma", 0.25)
	b.Add("compute", 0.5)
	if b.Component("compute") != 2.0 || b.Component("dma") != 0.25 {
		t.Fatalf("components wrong: %v", b)
	}
	if math.Abs(b.Total()-2.25) > 1e-12 {
		t.Fatalf("Total = %v, want 2.25", b.Total())
	}
	if got := b.Labels(); len(got) != 2 || got[0] != "compute" || got[1] != "dma" {
		t.Fatalf("Labels = %v", got)
	}
}

func TestBreakdownNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	NewBreakdown().Add("x", -1)
}

func TestBreakdownMerge(t *testing.T) {
	a := NewBreakdown()
	a.Add("compute", 1)
	b := NewBreakdown()
	b.Add("compute", 2)
	b.Add("spawn", 3)
	a.Merge(b)
	if a.Component("compute") != 3 || a.Component("spawn") != 3 {
		t.Fatalf("merge wrong: %v", a)
	}
}

func TestBreakdownScale(t *testing.T) {
	b := NewBreakdown()
	b.Add("compute", 2)
	b.Add("dma", 1)
	b.Scale(10)
	if b.Component("compute") != 20 || b.Component("dma") != 10 {
		t.Fatalf("scale wrong: %v", b)
	}
}

func TestBreakdownString(t *testing.T) {
	b := NewBreakdown()
	b.Add("compute", 1)
	s := b.String()
	if !strings.Contains(s, "compute=1s") || !strings.Contains(s, "total=1s") {
		t.Fatalf("String = %q", s)
	}
}

func TestBreakdownUnknownComponentIsZero(t *testing.T) {
	if NewBreakdown().Component("nope") != 0 {
		t.Fatal("unknown component not zero")
	}
}
