// Package sim is the performance-modeling substrate shared by every
// device model in this repository (Opteron, Cell, GPU, MTA-2).
//
// The reproduction strategy is functional simulation plus first-order
// analytic cycle accounting: device kernels execute the real MD physics
// in Go (so their numerical results can be validated against the
// reference implementation in internal/md) while tallying every modeled
// machine operation in a Ledger. A per-device CostTable converts the
// operation counts into cycles, and a Clock converts cycles into
// seconds. Non-instruction time — DMA transfers, PCIe copies, thread
// spawns, mailbox waits — is accounted in seconds directly through a
// Breakdown, which also preserves the per-component split that Figure 6
// of the paper reports (total runtime vs. SPE launch overhead).
//
// Nothing here consults wall-clock time: modeled runtimes are pure
// functions of the workload, which makes every figure in EXPERIMENTS.md
// exactly reproducible.
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Op identifies a class of modeled machine operation. The taxonomy is
// deliberately coarse — first-order models need operation *mixes*, not
// per-instruction traces.
type Op int

const (
	// OpFAdd is a scalar floating add or subtract.
	OpFAdd Op = iota
	// OpFMul is a scalar floating multiply.
	OpFMul
	// OpFDiv is a scalar floating divide.
	OpFDiv
	// OpFSqrt is a scalar floating square root.
	OpFSqrt
	// OpVec is a full-width SIMD arithmetic operation (add/mul/madd
	// across all lanes at once).
	OpVec
	// OpVecDiv is a SIMD divide/reciprocal-class operation.
	OpVecDiv
	// OpVecSqrt is a SIMD square-root/rsqrt-class operation.
	OpVecSqrt
	// OpCmp is a compare or select.
	OpCmp
	// OpBranch is a correctly handled (predicted or unconditional)
	// branch.
	OpBranch
	// OpBranchMiss is a mispredicted (or, on the SPE, any taken
	// data-dependent) branch: costs the pipeline-flush penalty.
	OpBranchMiss
	// OpLoad is a memory read (register width).
	OpLoad
	// OpStore is a memory write.
	OpStore
	// OpInt is integer/address arithmetic and loop overhead.
	OpInt

	// NumOps is the number of operation classes.
	NumOps
)

var opNames = [NumOps]string{
	"fadd", "fmul", "fdiv", "fsqrt",
	"vec", "vecdiv", "vecsqrt",
	"cmp", "branch", "branchmiss",
	"load", "store", "int",
}

// String implements fmt.Stringer.
func (o Op) String() string {
	if o < 0 || o >= NumOps {
		return fmt.Sprintf("Op(%d)", int(o))
	}
	return opNames[o]
}

// CostTable gives the modeled cost, in cycles, of one operation of each
// class on a particular device.
type CostTable [NumOps]float64

// Ledger accumulates operation counts for one kernel execution. The
// zero value is an empty ledger ready to use. Ledgers are not
// goroutine-safe; parallel device models keep one per worker and Merge.
type Ledger struct {
	counts [NumOps]int64
}

// Add records n operations of class op. n may be any non-negative
// count; Add panics on negative n to surface accounting bugs early.
func (l *Ledger) Add(op Op, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative op count %d for %v", n, op))
	}
	l.counts[op] += n
}

// Count returns the accumulated count for op.
func (l *Ledger) Count(op Op) int64 { return l.counts[op] }

// Total returns the total number of operations of all classes.
func (l *Ledger) Total() int64 {
	var t int64
	for _, c := range l.counts {
		t += c
	}
	return t
}

// Cycles converts the ledger to cycles under the given cost table.
func (l *Ledger) Cycles(ct CostTable) float64 {
	var cycles float64
	for op, c := range l.counts {
		cycles += float64(c) * ct[op]
	}
	return cycles
}

// Merge adds other's counts into l.
func (l *Ledger) Merge(other *Ledger) {
	for i := range l.counts {
		l.counts[i] += other.counts[i]
	}
}

// Reset clears all counts.
func (l *Ledger) Reset() { l.counts = [NumOps]int64{} }

// MergeAll combines per-worker ledgers into one by pairwise tree
// reduction — the reduction shape parallel host kernels use for their
// force buffers, mirrored here so a sharded kernel's op accounting can
// be folded the same way. Counts are integers, so the result is
// identical to a sequential left-to-right merge; the inputs are not
// modified.
func MergeAll(ledgers []Ledger) Ledger {
	if len(ledgers) == 0 {
		return Ledger{}
	}
	work := make([]Ledger, len(ledgers))
	copy(work, ledgers)
	for stride := 1; stride < len(work); stride *= 2 {
		for i := 0; i+stride < len(work); i += 2 * stride {
			work[i].Merge(&work[i+stride])
		}
	}
	return work[0]
}

// String renders the non-zero counts, largest first.
func (l *Ledger) String() string {
	type kv struct {
		op Op
		n  int64
	}
	var items []kv
	for op, n := range l.counts {
		if n != 0 {
			items = append(items, kv{Op(op), n})
		}
	}
	sort.Slice(items, func(i, j int) bool { return items[i].n > items[j].n })
	var b strings.Builder
	for i, it := range items {
		if i > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%v=%d", it.op, it.n)
	}
	return b.String()
}

// Clock converts cycles to seconds at a fixed frequency.
type Clock struct {
	Hz float64 // cycles per second (> 0)
}

// Seconds returns the wall time of the given cycle count on this clock.
func (c Clock) Seconds(cycles float64) float64 {
	if c.Hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return cycles / c.Hz
}

// Cycles returns the cycle count corresponding to seconds of time on
// this clock (used to convert fixed latencies into the cycle domain).
func (c Clock) Cycles(seconds float64) float64 {
	if c.Hz <= 0 {
		panic("sim: clock frequency must be positive")
	}
	return seconds * c.Hz
}
