package sim

import (
	"strings"
	"testing"
)

func TestIncidentLogAddCountTotal(t *testing.T) {
	var l IncidentLog
	if l.Total() != 0 {
		t.Fatal("zero log not empty")
	}
	l.Add(IncidentNaN, 2)
	l.Add(IncidentRollback, 1)
	l.Add(IncidentNaN, 1)
	if got := l.Count(IncidentNaN); got != 3 {
		t.Fatalf("Count(nan) = %d, want 3", got)
	}
	if got := l.Count(IncidentRetry); got != 0 {
		t.Fatalf("Count(retry) = %d, want 0", got)
	}
	if got := l.Total(); got != 4 {
		t.Fatalf("Total = %d, want 4", got)
	}
}

func TestIncidentLogAddNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	var l IncidentLog
	l.Add(IncidentNaN, -1)
}

func TestIncidentLogMerge(t *testing.T) {
	var a, b IncidentLog
	a.Add(IncidentRunError, 2)
	b.Add(IncidentRunError, 3)
	b.Add(IncidentSerialFallback, 1)
	a.Merge(&b)
	if a.Count(IncidentRunError) != 5 || a.Count(IncidentSerialFallback) != 1 {
		t.Fatalf("merge wrong: %v", a.String())
	}
	// b unchanged.
	if b.Count(IncidentRunError) != 3 {
		t.Fatal("merge modified source")
	}
}

func TestIncidentStrings(t *testing.T) {
	seen := map[string]bool{}
	for i := Incident(0); i < NumIncidents; i++ {
		s := i.String()
		if s == "" || strings.HasPrefix(s, "Incident(") {
			t.Fatalf("incident %d has no name", int(i))
		}
		if seen[s] {
			t.Fatalf("duplicate incident name %q", s)
		}
		seen[s] = true
	}
	if got := Incident(-1).String(); got != "Incident(-1)" {
		t.Fatalf("out-of-range String = %q", got)
	}
}

func TestIncidentLogString(t *testing.T) {
	var l IncidentLog
	if l.String() != "" {
		t.Fatalf("empty log String = %q", l.String())
	}
	l.Add(IncidentNaN, 1)
	l.Add(IncidentDtHalved, 2)
	got := l.String()
	if got != "nan=1 dt-halved=2" {
		t.Fatalf("String = %q", got)
	}
}
