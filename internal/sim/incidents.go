package sim

import (
	"fmt"
	"strings"
)

// Incident identifies a class of reliability event observed while
// supervising a run — the resilience counterpart of Op. The guard
// supervisor (internal/guard) tallies them in an IncidentLog so a run
// report can say not just *that* a run recovered but *what it survived*,
// the accounting the paper's 2007-era accelerators (no ECC on the
// GPU's device memory, SPE local stores without parity) entirely lack.
type Incident int

const (
	// IncidentNaN is a non-finite value (NaN/Inf) detected in the
	// dynamic state by the numerical-health watchdog.
	IncidentNaN Incident = iota
	// IncidentEnergyDrift is total-energy drift beyond the configured
	// NVE threshold.
	IncidentEnergyDrift
	// IncidentTempExplosion is an instantaneous temperature beyond the
	// configured multiple of the target.
	IncidentTempExplosion
	// IncidentRunError is a step error surfaced by the runner (worker
	// panic, injected fault, trajectory I/O failure).
	IncidentRunError
	// IncidentCheckpointCorrupt is a checkpoint that failed CRC or
	// structural validation during recovery and was skipped.
	IncidentCheckpointCorrupt
	// IncidentCheckpointWriteFail is a checkpoint that could not be
	// written (the supervisor continues on its in-memory snapshot).
	IncidentCheckpointWriteFail
	// IncidentRollback is a restoration of an earlier known-good state.
	IncidentRollback
	// IncidentRetry is a re-attempt of a failed segment (any rung).
	IncidentRetry
	// IncidentDtHalved is an escalation to the half-time-step rung.
	IncidentDtHalved
	// IncidentSerialFallback is an escalation to the serial force
	// kernel.
	IncidentSerialFallback
	// IncidentCancelled is a run stopped by context cancellation or
	// deadline expiry — deliberate, so never retried.
	IncidentCancelled
	// IncidentShed is a replica rejected at admission because the
	// batch scheduler's queue was full (load shedding).
	IncidentShed
	// IncidentReplicaPanic is a panic isolated at the replica boundary
	// by the batch scheduler.
	IncidentReplicaPanic
	// IncidentResubmit is a fleet-level re-submission of a whole
	// replica after a transient failure (backoff + jitter retry).
	IncidentResubmit

	// NumIncidents is the number of incident classes.
	NumIncidents
)

var incidentNames = [NumIncidents]string{
	"nan", "energy-drift", "temp-explosion", "run-error",
	"ckpt-corrupt", "ckpt-write-fail",
	"rollback", "retry", "dt-halved", "serial-fallback",
	"cancelled", "shed", "replica-panic", "resubmit",
}

// String implements fmt.Stringer.
func (i Incident) String() string {
	if i < 0 || i >= NumIncidents {
		return fmt.Sprintf("Incident(%d)", int(i))
	}
	return incidentNames[i]
}

// IncidentLog accumulates incident counts for one supervised run. The
// zero value is an empty log ready to use. Like Ledger, it is not
// goroutine-safe; a supervisor owns one log.
type IncidentLog struct {
	counts [NumIncidents]int64
}

// Add records n incidents of class inc; it panics on negative n to
// surface accounting bugs early, mirroring Ledger.Add.
func (l *IncidentLog) Add(inc Incident, n int64) {
	if n < 0 {
		panic(fmt.Sprintf("sim: negative incident count %d for %v", n, inc))
	}
	l.counts[inc] += n
}

// Count returns the accumulated count for inc.
func (l *IncidentLog) Count(inc Incident) int64 { return l.counts[inc] }

// Total returns the total number of incidents of all classes.
func (l *IncidentLog) Total() int64 {
	var t int64
	for _, c := range l.counts {
		t += c
	}
	return t
}

// Merge adds other's counts into l.
func (l *IncidentLog) Merge(other *IncidentLog) {
	for i := range l.counts {
		l.counts[i] += other.counts[i]
	}
}

// String renders the non-zero counts in declaration order.
func (l *IncidentLog) String() string {
	var b strings.Builder
	for inc, n := range l.counts {
		if n == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(" ")
		}
		fmt.Fprintf(&b, "%v=%d", Incident(inc), n)
	}
	return b.String()
}
