package cell

import (
	"fmt"

	"repro/internal/md"
	"repro/internal/sim"
	"repro/internal/spu"
)

// Variant identifies one rung of the paper's Figure 5 SIMD-optimization
// ladder for the SPE acceleration kernel. Each variant computes
// identical physics (the tests pin all six against the reference
// implementation); they differ only in how much of the per-pair
// pipeline runs through the SIMD datapath versus scalar code with
// branches, which is exactly what the figure measures.
type Variant int

const (
	// Original is the direct scalar port: per-axis loads and
	// subtractions, an "if" test per axis for the unit-cell reflection
	// (ruinous on the branch-predictor-less SPE), scalar length and
	// Lennard-Jones evaluation.
	Original Variant = iota
	// Copysign replaces the reflection "if" with branch-free extra
	// math — the paper's first step, "a small speedup".
	Copysign
	// SIMDReflect searches all three axes of the unit-cell reflection
	// simultaneously with SIMD intrinsics — the paper's big win
	// ("running over 1.5x faster than the original").
	SIMDReflect
	// SIMDDirection also forms the direction vector with one quadword
	// load and one vector subtract (paper: 21% improvement).
	SIMDDirection
	// SIMDLength also computes the squared length with a vector
	// multiply and horizontal add (paper: 15% improvement).
	SIMDLength
	// SIMDAccel also vectorizes the force-to-acceleration update for
	// interacting pairs; few pairs interact, so the gain is small
	// (paper: 3%).
	SIMDAccel

	// NumVariants is the number of ladder rungs.
	NumVariants
)

var variantNames = [NumVariants]string{
	"original", "copysign", "simd-reflect", "simd-direction", "simd-length", "simd-accel",
}

// String implements fmt.Stringer with the Figure 5 bar labels.
func (v Variant) String() string {
	if v < 0 || v >= NumVariants {
		return fmt.Sprintf("Variant(%d)", int(v))
	}
	return variantNames[v]
}

// kernelParams are the constants the paper's port compiles into the SPE
// program: box geometry and LJ coefficients, in float32.
type kernelParams struct {
	box, halfBox float32
	cutoff       float32
	eps, sigma2  float32 // well depth and sigma²
}

// runKernel executes the given variant for atoms [lo, hi) against all
// atoms, writing accelerations into acc[lo:hi] and returning this
// slice's potential-energy contribution (each unordered pair is seen by
// both members, so the caller halves the total). All modeled operations
// flow through ctx's ledger.
func runKernel(v Variant, ctx *spu.Context, kp kernelParams, pos, acc md.Coords[float32], lo, hi int) float32 {
	switch v {
	case Original:
		return kernelOriginal(ctx, kp, pos, acc, lo, hi)
	case Copysign:
		return kernelCopysign(ctx, kp, pos, acc, lo, hi)
	case SIMDReflect:
		return kernelSIMDReflect(ctx, kp, pos, acc, lo, hi)
	case SIMDDirection:
		return kernelSIMD(ctx, kp, pos, acc, lo, hi, false, false)
	case SIMDLength:
		return kernelSIMD(ctx, kp, pos, acc, lo, hi, true, false)
	case SIMDAccel:
		return kernelSIMD(ctx, kp, pos, acc, lo, hi, true, true)
	default:
		panic(fmt.Sprintf("cell: unknown kernel variant %d", int(v)))
	}
}

// ljScalar evaluates the Lennard-Jones pair interaction in scalar SPE
// code and returns (v, f) with f such that a_i += f * d. Shared by
// every variant: the paper's ladder never vectorizes the LJ arithmetic
// itself (each pair's interaction is a scalar computation).
func ljScalar(ctx *spu.Context, kp kernelParams, r2 float32) (pv, f float32) {
	sr2 := ctx.Div(ctx.Mul(kp.sigma2, 1), r2) // sigma²/r²
	sr6 := ctx.Mul(ctx.Mul(sr2, sr2), sr2)
	sr12 := ctx.Mul(sr6, sr6)
	pv = ctx.Mul(4*kp.eps, ctx.Sub(sr12, sr6))
	f = ctx.Div(ctx.Mul(24*kp.eps, ctx.Sub(ctx.Add(sr12, sr12), sr6)), r2)
	return pv, f
}

// kernelOriginal is the straight scalar port (Figure 5 bar 1).
func kernelOriginal(ctx *spu.Context, kp kernelParams, pos, acc md.Coords[float32], lo, hi int) float32 {
	var pe float32
	n := pos.Len()
	for i := lo; i < hi; i++ {
		xi, yi, zi := ctx.Load3(pos.At(i))
		var ax, ay, az float32
		for j := 0; j < n; j++ {
			ctx.LoopIter()
			ctx.Branch(j == i) // skip-self test
			if j == i {
				continue
			}
			xj, yj, zj := ctx.Load3(pos.At(j))
			dx := ctx.Sub(xi, xj)
			dy := ctx.Sub(yi, yj)
			dz := ctx.Sub(zi, zj)
			dx = reflectBranchy(ctx, dx, kp)
			dy = reflectBranchy(ctx, dy, kp)
			dz = reflectBranchy(ctx, dz, kp)
			r2 := ctx.Add(ctx.Add(ctx.Mul(dx, dx), ctx.Mul(dy, dy)), ctx.Mul(dz, dz))
			r := ctx.Sqrt(r2)
			interacting := !ctx.Cmp(r, kp.cutoff) && r2 > 0
			ctx.Branch(interacting)
			if !interacting {
				continue
			}
			pv, f := ljScalar(ctx, kp, r2)
			pe = ctx.Add(pe, pv)
			ax = ctx.Add(ax, ctx.Mul(f, dx))
			ay = ctx.Add(ay, ctx.Mul(f, dy))
			az = ctx.Add(az, ctx.Mul(f, dz))
		}
		acc.Set(i, ctx.Store3(ax, ay, az))
	}
	return pe
}

// reflectBranchy is the per-axis minimum-image step with "if" tests:
// cheap when not taken, an 18-cycle pipeline flush when taken — and
// with wrapped coordinates the first test is taken for a quarter of
// all pairs per axis.
func reflectBranchy(ctx *spu.Context, d float32, kp kernelParams) float32 {
	over := ctx.Cmp(d, kp.halfBox)
	ctx.Branch(over)
	if over {
		return ctx.Sub(d, kp.box)
	}
	under := ctx.Cmp(-kp.halfBox, d)
	ctx.Branch(under)
	if under {
		return ctx.Add(d, kp.box)
	}
	return d
}

// reflectCopysign is the branch-free scalar replacement (Figure 5 bar
// 2): d -= copysign(box, d) * (|d| > box/2), evaluated as straight-line
// math.
func reflectCopysign(ctx *spu.Context, d float32, kp kernelParams) float32 {
	a := ctx.Abs(d)
	var mask float32
	if ctx.Cmp(a, kp.halfBox) { // compare produces a mask, no branch issued
		mask = 1
	}
	corr := ctx.Mul(ctx.Copysign(kp.box, d), mask)
	return ctx.Sub(d, corr)
}

// kernelCopysign is Original with the branch-free reflection.
func kernelCopysign(ctx *spu.Context, kp kernelParams, pos, acc md.Coords[float32], lo, hi int) float32 {
	var pe float32
	n := pos.Len()
	for i := lo; i < hi; i++ {
		xi, yi, zi := ctx.Load3(pos.At(i))
		var ax, ay, az float32
		for j := 0; j < n; j++ {
			ctx.LoopIter()
			ctx.Branch(j == i)
			if j == i {
				continue
			}
			xj, yj, zj := ctx.Load3(pos.At(j))
			dx := reflectCopysign(ctx, ctx.Sub(xi, xj), kp)
			dy := reflectCopysign(ctx, ctx.Sub(yi, yj), kp)
			dz := reflectCopysign(ctx, ctx.Sub(zi, zj), kp)
			r2 := ctx.Add(ctx.Add(ctx.Mul(dx, dx), ctx.Mul(dy, dy)), ctx.Mul(dz, dz))
			r := ctx.Sqrt(r2)
			interacting := !ctx.Cmp(r, kp.cutoff) && r2 > 0
			ctx.Branch(interacting)
			if !interacting {
				continue
			}
			pv, f := ljScalar(ctx, kp, r2)
			pe = ctx.Add(pe, pv)
			ax = ctx.Add(ax, ctx.Mul(f, dx))
			ay = ctx.Add(ay, ctx.Mul(f, dy))
			az = ctx.Add(az, ctx.Mul(f, dz))
		}
		acc.Set(i, ctx.Store3(ax, ay, az))
	}
	return pe
}

// reflectSIMD performs the unit-cell reflection on all three axes at
// once: abs, compare, copysign, multiply, subtract — five vector
// instructions instead of three branchy scalar chains (Figure 5 bar 3).
func reflectSIMD(ctx *spu.Context, d spu.V4, hVec, boxVec spu.V4) spu.V4 {
	a := ctx.VAbs(d)
	mask := ctx.VCmpGT(a, hVec)
	corr := ctx.VMul(mask, ctx.VCopysign(boxVec, d))
	return ctx.VSub(d, corr)
}

// pack3 moves three scalars into SIMD lanes (two shuffles on hardware).
func pack3(ctx *spu.Context, x, y, z float32) spu.V4 {
	ctx.L.Add(sim.OpVec, 2)
	return spu.V4{x, y, z, 0}
}

// extract3 moves three SIMD lanes back to scalars (rotates/extracts).
func extract3(ctx *spu.Context, v spu.V4) (x, y, z float32) {
	ctx.L.Add(sim.OpVec, 2)
	return v[0], v[1], v[2]
}

// kernelSIMDReflect keeps scalar loads/diffs but vectorizes the
// reflection.
func kernelSIMDReflect(ctx *spu.Context, kp kernelParams, pos, acc md.Coords[float32], lo, hi int) float32 {
	var pe float32
	n := pos.Len()
	hVec := ctx.VSplat(kp.halfBox) // hoisted out of the pair loop
	boxVec := ctx.VSplat(kp.box)
	for i := lo; i < hi; i++ {
		xi, yi, zi := ctx.Load3(pos.At(i))
		var ax, ay, az float32
		for j := 0; j < n; j++ {
			ctx.LoopIter()
			ctx.Branch(j == i)
			if j == i {
				continue
			}
			xj, yj, zj := ctx.Load3(pos.At(j))
			d := pack3(ctx, ctx.Sub(xi, xj), ctx.Sub(yi, yj), ctx.Sub(zi, zj))
			d = reflectSIMD(ctx, d, hVec, boxVec)
			dx, dy, dz := extract3(ctx, d)
			r2 := ctx.Add(ctx.Add(ctx.Mul(dx, dx), ctx.Mul(dy, dy)), ctx.Mul(dz, dz))
			r := ctx.Sqrt(r2)
			interacting := !ctx.Cmp(r, kp.cutoff) && r2 > 0
			ctx.Branch(interacting)
			if !interacting {
				continue
			}
			pv, f := ljScalar(ctx, kp, r2)
			pe = ctx.Add(pe, pv)
			ax = ctx.Add(ax, ctx.Mul(f, dx))
			ay = ctx.Add(ay, ctx.Mul(f, dy))
			az = ctx.Add(az, ctx.Mul(f, dz))
		}
		acc.Set(i, ctx.Store3(ax, ay, az))
	}
	return pe
}

// kernelSIMD is the shared body of the last three ladder rungs: SIMD
// direction vector always; SIMD length and SIMD acceleration toggled.
func kernelSIMD(ctx *spu.Context, kp kernelParams, pos, acc md.Coords[float32], lo, hi int, simdLength, simdAccel bool) float32 {
	var pe float32
	n := pos.Len()
	hVec := ctx.VSplat(kp.halfBox)
	boxVec := ctx.VSplat(kp.box)
	for i := lo; i < hi; i++ {
		pi := ctx.LoadV(pos.At(i))
		var ax, ay, az float32
		var aVec spu.V4
		for j := 0; j < n; j++ {
			ctx.LoopIter()
			ctx.Branch(j == i)
			if j == i {
				continue
			}
			d := ctx.VSub(pi, ctx.LoadV(pos.At(j)))
			d = reflectSIMD(ctx, d, hVec, boxVec)

			var r2 float32
			if simdLength {
				r2 = ctx.HAdd3(ctx.VMul(d, d))
			} else {
				dx, dy, dz := extract3(ctx, d)
				r2 = ctx.Add(ctx.Add(ctx.Mul(dx, dx), ctx.Mul(dy, dy)), ctx.Mul(dz, dz))
			}
			r := ctx.Sqrt(r2)
			interacting := !ctx.Cmp(r, kp.cutoff) && r2 > 0
			ctx.Branch(interacting)
			if !interacting {
				continue
			}
			pv, f := ljScalar(ctx, kp, r2)
			pe = ctx.Add(pe, pv)
			if simdAccel {
				aVec = ctx.VMadd(ctx.VSplat(f), d, aVec)
			} else {
				dx, dy, dz := extract3(ctx, d)
				ax = ctx.Add(ax, ctx.Mul(f, dx))
				ay = ctx.Add(ay, ctx.Mul(f, dy))
				az = ctx.Add(az, ctx.Mul(f, dz))
			}
		}
		if simdAccel {
			acc.Set(i, ctx.StoreV(aVec))
		} else {
			acc.Set(i, ctx.Store3(ax, ay, az))
		}
	}
	return pe
}
