// Package cell models the STI Cell Broadband Engine as the paper uses
// it (section 5.1): a PPE orchestrating one to eight SPEs, each with a
// 256 KB local store, to which the acceleration computation — and only
// it — is offloaded.
//
// The model composes internal/spu's building blocks:
//
//   - each modeled SPE executes one of the six Figure 5 kernel variants
//     over its slice of atoms, with real float32 physics and every
//     emulated instruction tallied;
//   - position data is DMA-ed into each local store every time step and
//     the acceleration slices are DMA-ed back, with the local-store
//     allocator enforcing the 256 KB budget (large systems are tiled);
//   - SPE threads are either respawned every time step or launched once
//     and signalled through mailboxes (the paper's launch-overhead
//     amortization, Figure 6);
//   - the PPE performs the velocity-Verlet integration between force
//     evaluations, and can also run the entire kernel by itself
//     (Table 1's "Cell, PPE only" row) — a slow in-order core modeled
//     with its own cost table.
//
// Physics from every configuration is validated against internal/md in
// the tests; modeled time reproduces Figure 5, Figure 6, and the Cell
// rows of Table 1.
package cell

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/md"
	"repro/internal/sim"
	"repro/internal/spu"
)

// Model selects the programming model. The paper uses the asynchronous
// thread runtime (task-parallel) model for its case study and notes
// that "data parallel programming models like that of OpenMP are also
// an attractive approach" (section 3.1) — the model Williams et al.'s
// related work evaluates exclusively. Both are provided; the figures
// use TaskParallel.
type Model int

const (
	// TaskParallel is the paper's model: SPE threads run the offloaded
	// function independently, orchestrated by the PPE through spawns
	// and mailboxes; the PPE performs the integration between offloads.
	TaskParallel Model = iota
	// DataParallel is the OpenMP-like model: every loop — the force
	// loop and the O(N) integration loops — is divided across the SPEs,
	// separated by barrier synchronizations. Workers are spawned once.
	DataParallel
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case TaskParallel:
		return "task-parallel"
	case DataParallel:
		return "data-parallel"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Mode selects the SPE thread-management strategy of Figure 6.
type Mode int

const (
	// LaunchOnce spawns SPE threads on the first time step only and
	// signals subsequent steps through mailboxes — the paper's fix that
	// amortizes launch overhead across all time steps.
	LaunchOnce Mode = iota
	// RespawnEachStep creates fresh SPE threads every time step — the
	// naive structure whose overhead grows with SPE count.
	RespawnEachStep
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case LaunchOnce:
		return "amortized"
	case RespawnEachStep:
		return "respawn"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes the Cell model.
type Config struct {
	NSPE    int     // SPEs used for the offload (1..8); ignored when PPEOnly
	Mode    Mode    // thread management strategy (TaskParallel only)
	Model   Model   // programming model (task-parallel or data-parallel)
	Kernel  Variant // which Figure 5 kernel the SPEs run
	PPEOnly bool    // run everything on the PPE (Table 1's worst row)

	ClockHz  float64       // SPE/PPE clock (3.2 GHz)
	SPECosts sim.CostTable // per-op cycles on an SPE
	PPECosts sim.CostTable // per-op cycles on the PPE (in-order, scalar)

	SpawnSec   float64 // OS cost of creating one SPE thread
	MailboxSec float64 // one blocking mailbox message
	DMASetup   float64 // per-DMA-transfer latency
	DMABw      float64 // DMA bandwidth, bytes/s

	// StepOverheadSec is the serial PPE-side orchestration per time
	// step (buffer management, result gathering) that does not shrink
	// with SPE count. It bounds the parallel speedup exactly as the
	// paper observes.
	StepOverheadSec float64

	// BarrierSec is the cost of one all-SPE barrier synchronization in
	// the data-parallel model.
	BarrierSec float64
}

// DefaultConfig returns the calibrated Cell model: a 3.2 GHz blade with
// the most-optimized kernel on 8 SPEs, amortized launches.
func DefaultConfig() Config {
	var spe sim.CostTable
	spe[sim.OpVec] = 1 // dual-issue full-width pipes
	spe[sim.OpVecDiv] = 6
	spe[sim.OpVecSqrt] = 6
	spe[sim.OpFAdd] = 2 // scalar code pays shuffle overhead
	spe[sim.OpFMul] = 2
	spe[sim.OpFDiv] = 10
	spe[sim.OpFSqrt] = 12
	spe[sim.OpCmp] = 1.5
	// Branches on the SPE are never free: even a not-taken branch
	// occupies an issue slot and blocks dual issue around it, and a
	// taken data-dependent branch is a full pipeline flush. Removing
	// them (the copysign step) is worth more than the raw flush count
	// suggests, which is why the paper's first rung wins at all.
	spe[sim.OpBranch] = 2
	spe[sim.OpBranchMiss] = 18 // no branch prediction: taken = flush
	spe[sim.OpLoad] = 1.5      // local store, fixed latency, pipelined
	spe[sim.OpStore] = 1.5
	spe[sim.OpInt] = 1

	var ppe sim.CostTable
	ppe[sim.OpVec] = 2 // VMX exists but the port is scalar; rarely used
	ppe[sim.OpVecDiv] = 12
	ppe[sim.OpVecSqrt] = 12
	ppe[sim.OpFAdd] = 5 // in-order core, long FP latency, no OoO to hide it
	ppe[sim.OpFMul] = 5
	ppe[sim.OpFDiv] = 40
	ppe[sim.OpFSqrt] = 56
	ppe[sim.OpCmp] = 2.5
	ppe[sim.OpBranch] = 1
	ppe[sim.OpBranchMiss] = 23
	ppe[sim.OpLoad] = 2.5
	ppe[sim.OpStore] = 2.5
	ppe[sim.OpInt] = 1

	return Config{
		NSPE:            8,
		Mode:            LaunchOnce,
		Kernel:          SIMDAccel,
		ClockHz:         3.2e9,
		SPECosts:        spe,
		PPECosts:        ppe,
		SpawnSec:        3e-3, // SPE thread creation through the 2.6 kernel
		MailboxSec:      1e-6,
		DMASetup:        0.5e-6,
		DMABw:           25.6e9,
		StepOverheadSec: 1e-3,
		BarrierSec:      2e-6,
	}
}

// Processor is the modeled Cell chip.
type Processor struct {
	cfg Config
}

// New validates cfg and returns the processor.
func New(cfg Config) (*Processor, error) {
	if !cfg.PPEOnly && (cfg.NSPE < 1 || cfg.NSPE > 8) {
		return nil, fmt.Errorf("cell: NSPE must be in 1..8, got %d", cfg.NSPE)
	}
	if cfg.Kernel < 0 || cfg.Kernel >= NumVariants {
		return nil, fmt.Errorf("cell: unknown kernel variant %d", int(cfg.Kernel))
	}
	if cfg.ClockHz <= 0 {
		return nil, fmt.Errorf("cell: clock must be positive")
	}
	return &Processor{cfg: cfg}, nil
}

// Name implements device.Device.
func (c *Processor) Name() string { return "cell" }

// Variant label used in results, e.g. "8spe/amortized/simd-accel".
func (c *Processor) variantLabel() string {
	if c.cfg.PPEOnly {
		return "ppe-only"
	}
	if c.cfg.Model == DataParallel {
		return fmt.Sprintf("%dspe/data-parallel/%v", c.cfg.NSPE, c.cfg.Kernel)
	}
	return fmt.Sprintf("%dspe/%v/%v", c.cfg.NSPE, c.cfg.Mode, c.cfg.Kernel)
}

// kernelParamsFor builds the compiled-in constants from a workload.
func kernelParamsFor(w device.Workload) kernelParams {
	//mdlint:ignore precision device boundary: the SPE kernels run single precision by design, narrowed once at entry
	box, cutoff := float32(w.State.Box), float32(w.Cutoff)
	return kernelParams{
		box:     box,
		halfBox: box / 2,
		cutoff:  cutoff,
		eps:     1,
		sigma2:  1,
	}
}

// Run implements device.Device.
func (c *Processor) Run(w device.Workload) (*device.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	//mdlint:ignore precision device boundary: the single-precision port narrows the float64 workload once at entry
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return nil, err
	}
	if c.cfg.PPEOnly {
		return c.runPPEOnly(w, sys)
	}
	return c.runSPE(w, sys)
}

// runPPEOnly executes every part of the kernel on the PPE with the
// scalar Original code and PPE costs.
func (c *Processor) runPPEOnly(w device.Workload, sys *md.System[float32]) (*device.Result, error) {
	kp := kernelParamsFor(w)
	ctx := &spu.Context{}
	forces := func() float32 {
		pe := runKernel(Original, ctx, kp, sys.Pos, sys.Acc, 0, sys.N())
		return pe / 2
	}
	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
		countPPEIntegration(&ctx.L, sys.N())
	}
	bd := sim.NewBreakdown()
	clock := sim.Clock{Hz: c.cfg.ClockHz}
	bd.Add("compute", clock.Seconds(ctx.L.Cycles(c.cfg.PPECosts)))
	return &device.Result{
		Device:  c.Name(),
		Variant: c.variantLabel(),
		N:       sys.N(),
		Steps:   w.Steps,
		PE:      float64(sys.PE), //mdlint:ignore precision widening the device-native energies into the float64 result schema
		KE:      float64(sys.KE),
		Time:    bd,
		Ledger:  ctx.L,
	}, nil
}

// runSPE executes the offloaded configuration: the acceleration
// computation on NSPE SPEs, everything else on the PPE.
func (c *Processor) runSPE(w device.Workload, sys *md.System[float32]) (*device.Result, error) {
	n := sys.N()
	nspe := c.cfg.NSPE
	kp := kernelParamsFor(w)

	// One persistent context (ledger) per SPE; compute time per step is
	// the max across SPEs since they run concurrently.
	ctxs := make([]*spu.Context, nspe)
	for s := range ctxs {
		ctxs[s] = &spu.Context{}
	}
	ppe := &sim.Ledger{}

	tileAtoms, err := planLocalStore(n, nspe)
	if err != nil {
		return nil, err
	}

	dma := &spu.DMA{SetupSec: c.cfg.DMASetup, BytesPerSec: c.cfg.DMABw}
	mbox := &spu.Mailbox{LatencySec: c.cfg.MailboxSec}

	bd := sim.NewBreakdown()
	clock := sim.Clock{Hz: c.cfg.ClockHz}

	// Thread spawns: per step when respawning, once when amortized;
	// spawns are serviced serially by the PPE/OS.
	bounds := sliceBounds(n, nspe)
	forces := func() float32 {
		var totalPE float32
		var maxCycles float64
		var maxDMASec float64
		for s := 0; s < nspe; s++ {
			lo, hi := bounds[s], bounds[s+1]
			before := ctxs[s].L.Cycles(c.cfg.SPECosts)
			pe := runKernel(c.cfg.Kernel, ctxs[s], kp, sys.Pos, sys.Acc, lo, hi)
			totalPE += pe
			cycles := ctxs[s].L.Cycles(c.cfg.SPECosts) - before

			// DMA: stream the whole position array through the tile
			// buffer, then write back this SPE's acceleration slice.
			var dmaSec float64
			for off := 0; off < n; off += tileAtoms {
				chunk := tileAtoms
				if off+chunk > n {
					chunk = n - off
				}
				sec, err := dma.Transfer(chunk * quadBytes)
				if err != nil {
					panic(err) // sizes are internally computed; cannot be negative
				}
				dmaSec += sec
			}
			sec, err := dma.Transfer((hi - lo) * quadBytes)
			if err != nil {
				panic(err)
			}
			dmaSec += sec

			if cycles > maxCycles {
				maxCycles = cycles
			}
			if dmaSec > maxDMASec {
				maxDMASec = dmaSec
			}
		}
		bd.Add("compute", clock.Seconds(maxCycles))
		bd.Add("dma", maxDMASec)

		switch {
		case c.cfg.Model == DataParallel:
			// Three parallel regions per step (half-kick+drift, forces,
			// half-kick+energy reduction), each closed by an all-SPE
			// barrier.
			bd.Add("barrier", 3*c.cfg.BarrierSec)
		case c.cfg.Mode == RespawnEachStep:
			bd.Add("spawn", float64(nspe)*c.cfg.SpawnSec)
		default:
			// Two blocking mailbox messages per SPE per step (go, done),
			// serviced serially by the PPE.
			var mboxSec float64
			for s := 0; s < 2*nspe; s++ {
				mboxSec += mbox.Signal()
			}
			bd.Add("mailbox", mboxSec)
		}
		bd.Add("ppe", c.cfg.StepOverheadSec)
		return totalPE / 2
	}

	if (c.cfg.Mode == LaunchOnce || c.cfg.Model == DataParallel) && w.Steps > 0 {
		bd.Add("spawn", float64(nspe)*c.cfg.SpawnSec)
	}

	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
		if c.cfg.Model == DataParallel {
			// The O(N) integration loops are themselves divided across
			// the SPEs instead of running serially on the PPE.
			var il sim.Ledger
			countPPEIntegration(&il, n)
			bd.Add("integration", clock.Seconds(il.Cycles(c.cfg.SPECosts)/float64(nspe)))
		} else {
			countPPEIntegration(ppe, n)
		}
	}
	bd.Add("ppe", clock.Seconds(ppe.Cycles(c.cfg.PPECosts)))

	// Merge per-SPE ledgers for the diagnostic result.
	var merged sim.Ledger
	for _, ctx := range ctxs {
		merged.Merge(&ctx.L)
	}
	return &device.Result{
		Device:  c.Name(),
		Variant: c.variantLabel(),
		N:       n,
		Steps:   w.Steps,
		PE:      float64(sys.PE), //mdlint:ignore precision widening the device-native energies into the float64 result schema
		KE:      float64(sys.KE),
		Time:    bd,
		Ledger:  merged,
	}, nil
}

// quadBytes is the local-store footprint of one atom's position or
// acceleration: a 16-byte aligned float32 quadword.
const quadBytes = 16

// planLocalStore lays out one SPE's local store for an n-atom workload
// split nspe ways and returns the position-tile size in atoms: the
// whole array when it fits alongside the code, stack, and this SPE's
// acceleration slice, or the largest halving that does (the j-loop then
// streams the array through the tile with multiple DMA transfers per
// pass, double-buffered on real hardware).
func planLocalStore(n, nspe int) (tileAtoms int, err error) {
	ls := spu.NewLocalStore()
	const reservedForCodeAndStack = 64 * 1024
	if err := ls.Alloc("code+stack", reservedForCodeAndStack); err != nil {
		return 0, err
	}
	sliceBytes := (n/nspe + 1) * quadBytes
	if err := ls.Alloc("acc-slice", sliceBytes); err != nil {
		return 0, fmt.Errorf("cell: acceleration slice alone overflows the local store: %w", err)
	}
	tileAtoms = n
	for ls.Available() < tileAtoms*quadBytes && tileAtoms > 64 {
		tileAtoms /= 2
	}
	if err := ls.Alloc("pos-tile", tileAtoms*quadBytes); err != nil {
		return 0, fmt.Errorf("cell: cannot fit even a %d-atom tile: %w", tileAtoms, err)
	}
	return tileAtoms, nil
}

// sliceBounds splits n atoms into nspe near-equal contiguous slices and
// returns the nspe+1 boundaries.
func sliceBounds(n, nspe int) []int {
	b := make([]int, nspe+1)
	for s := 0; s <= nspe; s++ {
		b[s] = s * n / nspe
	}
	return b
}

// countPPEIntegration accrues the O(N) velocity-Verlet bookkeeping the
// PPE performs between force offloads.
func countPPEIntegration(l *sim.Ledger, n int) {
	an := int64(n)
	l.Add(sim.OpFMul, 9*an)
	l.Add(sim.OpFAdd, 9*an)
	l.Add(sim.OpCmp, 6*an)
	l.Add(sim.OpFAdd, 3*an/2)
	l.Add(sim.OpFMul, 3*an)
	l.Add(sim.OpFAdd, 3*an)
	l.Add(sim.OpLoad, 9*an)
	l.Add(sim.OpStore, 9*an)
	l.Add(sim.OpInt, 4*an)
}

// AccelKernelTime measures the Figure 5 quantity: the modeled runtime
// of one acceleration computation over all atoms on a single SPE with
// the given kernel variant (no integration, no launches, no DMA).
func (c *Processor) AccelKernelTime(w device.Workload, v Variant) (float64, error) {
	if err := w.Validate(); err != nil {
		return 0, err
	}
	//mdlint:ignore precision device boundary: the single-precision port narrows the float64 workload once at entry
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return 0, err
	}
	ctx := &spu.Context{}
	runKernel(v, ctx, kernelParamsFor(w), sys.Pos, sys.Acc, 0, sys.N())
	clock := sim.Clock{Hz: c.cfg.ClockHz}
	return clock.Seconds(ctx.L.Cycles(c.cfg.SPECosts)), nil
}

// KernelAccel exposes one kernel-variant execution for validation: it
// fills acc for atoms [0,n) and returns the potential energy, using a
// fresh context.
func KernelAccel(v Variant, w device.Workload, pos, acc md.Coords[float32]) float32 {
	ctx := &spu.Context{}
	pe := runKernel(v, ctx, kernelParamsFor(w), pos, acc, 0, pos.Len())
	return pe / 2
}

var _ device.Device = (*Processor)(nil)

// DualIssueBound returns a lower bound on SPE cycles for a kernel
// ledger under perfect dual issue: the SPE fetches one instruction per
// cycle into each of two pipelines — even (arithmetic) and odd
// (loads/stores, shuffles, branches) — so a perfectly scheduled kernel
// runs in max(evenOps, oddOps) cycles plus the unavoidable taken-branch
// flushes. The cost-table estimate used for the figures must never be
// below this bound (pinned by a test); the gap between them is the
// scheduling slack a hand-tuned assembly kernel could still harvest.
func (c *Processor) DualIssueBound(l *sim.Ledger) float64 {
	even := float64(l.Count(sim.OpFAdd) + l.Count(sim.OpFMul) + l.Count(sim.OpFDiv) +
		l.Count(sim.OpFSqrt) + l.Count(sim.OpVec) + l.Count(sim.OpVecDiv) +
		l.Count(sim.OpVecSqrt) + l.Count(sim.OpCmp) + l.Count(sim.OpInt))
	odd := float64(l.Count(sim.OpLoad) + l.Count(sim.OpStore) + l.Count(sim.OpBranch))
	flushes := float64(l.Count(sim.OpBranchMiss)) * c.cfg.SPECosts[sim.OpBranchMiss]
	m := even
	if odd > m {
		m = odd
	}
	return m + flushes
}
