package cell

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/spu"
	"repro/internal/vec"
)

func workload(t *testing.T, n, steps int) device.Workload {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 2.5
	if 2*cutoff > st.Box {
		cutoff = st.Box / 2 * 0.99
	}
	return device.Workload{State: st, Cutoff: cutoff, Dt: 0.004, Steps: steps}
}

func mustNew(t *testing.T, cfg Config) *Processor {
	t.Helper()
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// refAccel computes the reference float32 accelerations and PE with the
// same full-loop structure the SPE kernels use.
func refAccel(w device.Workload) ([]vec.V3[float32], float32) {
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	n := len(w.State.Pos)
	pos := make([]vec.V3[float32], n)
	for i := range pos {
		pos[i] = vec.FromV3f64[float32](w.State.Pos[i])
	}
	accC := md.MakeCoords[float32](n)
	pe := md.ComputeForcesFull(p, md.CoordsFromV3(pos), accC)
	return accC.V3s(), pe
}

func TestAllKernelVariantsMatchReference(t *testing.T) {
	w := workload(t, 108, 1)
	wantAcc, wantPE := refAccel(w)
	pos := make([]vec.V3[float32], len(w.State.Pos))
	for i := range pos {
		pos[i] = vec.FromV3f64[float32](w.State.Pos[i])
	}
	posC := md.CoordsFromV3(pos)
	for v := Variant(0); v < NumVariants; v++ {
		accC := md.MakeCoords[float32](len(pos))
		pe := KernelAccel(v, w, posC, accC)
		acc := accC.V3s()
		// Summation order differs between variants and the reference;
		// float32 accumulation over ~10^4 terms justifies the tolerance.
		if rel := math.Abs(float64(pe-wantPE)) / math.Abs(float64(wantPE)); rel > 2e-4 {
			t.Errorf("%v: PE = %v, want %v (rel %v)", v, pe, wantPE, rel)
		}
		for i := range acc {
			d := acc[i].Sub(wantAcc[i]).Norm()
			scale := 1 + wantAcc[i].Norm()
			if float64(d/scale) > 1e-4 {
				t.Errorf("%v: acc[%d] = %+v, want %+v", v, i, acc[i], wantAcc[i])
				break
			}
		}
	}
}

func TestFigure5LadderMonotone(t *testing.T) {
	// Each optimization step must strictly reduce the modeled kernel
	// time — the defining shape of Figure 5.
	proc := mustNew(t, DefaultConfig())
	w := workload(t, 256, 1)
	var prev float64 = math.Inf(1)
	for v := Variant(0); v < NumVariants; v++ {
		sec, err := proc.AccelKernelTime(w, v)
		if err != nil {
			t.Fatal(err)
		}
		if sec <= 0 {
			t.Fatalf("%v: non-positive kernel time %v", v, sec)
		}
		if sec >= prev {
			t.Fatalf("%v (%.6gs) not faster than previous rung (%.6gs)", v, sec, prev)
		}
		prev = sec
	}
}

func TestFigure5KeyRatios(t *testing.T) {
	// The SIMD unit-cell reflection is the paper's big win: cumulative
	// speedup over the original should be >= 1.4x at that rung, and the
	// final rung's extra gain should be small (few pairs interact).
	proc := mustNew(t, DefaultConfig())
	// The paper's Figure 5 measures 2048 atoms; the interacting-pair
	// fraction (which dilutes the per-pair gains) depends on N, so the
	// ratios are checked at the paper's size.
	w := workload(t, 2048, 1)
	times := make([]float64, NumVariants)
	for v := Variant(0); v < NumVariants; v++ {
		sec, err := proc.AccelKernelTime(w, v)
		if err != nil {
			t.Fatal(err)
		}
		times[v] = sec
	}
	if r := times[Original] / times[SIMDReflect]; r < 1.4 {
		t.Errorf("original/simd-reflect = %v, want >= 1.4 (paper: 'over 1.5x')", r)
	}
	if r := times[Original] / times[Copysign]; r < 1.01 || r > 1.3 {
		t.Errorf("original/copysign = %v, want a small speedup", r)
	}
	if r := times[SIMDLength] / times[SIMDAccel]; r < 1.0 || r > 1.10 {
		t.Errorf("simd-length/simd-accel = %v, want a small (~3%%) gain", r)
	}
}

func TestSPEPhysicsMatchesReferenceOverSteps(t *testing.T) {
	w := workload(t, 64, 10)
	proc := mustNew(t, DefaultConfig())
	res, err := proc.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	// Reference float32 trajectory with the full-loop kernel.
	p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Steps; i++ {
		sys.StepWith(func() float32 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}
	if rel := math.Abs(res.PE-float64(sys.PE)) / math.Abs(float64(sys.PE)); rel > 1e-3 {
		t.Fatalf("PE diverged: device %v, reference %v (rel %v)", res.PE, sys.PE, rel)
	}
	if rel := math.Abs(res.KE-float64(sys.KE)) / math.Abs(float64(sys.KE)); rel > 1e-3 {
		t.Fatalf("KE diverged: device %v, reference %v (rel %v)", res.KE, sys.KE, rel)
	}
}

func TestEightSPEsFasterThanOne(t *testing.T) {
	// Needs a workload big enough that compute dominates the fixed
	// spawn cost, as in the paper's 2048-atom runs.
	w := workload(t, 1024, 10)
	cfg1 := DefaultConfig()
	cfg1.NSPE = 1
	cfg8 := DefaultConfig()
	cfg8.NSPE = 8
	r1, err := mustNew(t, cfg1).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := mustNew(t, cfg8).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	speedup := r1.Seconds() / r8.Seconds()
	if speedup < 2 {
		t.Fatalf("8 SPE speedup over 1 SPE = %v, want substantial", speedup)
	}
	if speedup > 8 {
		t.Fatalf("8 SPE speedup %v exceeds SPE count; overheads missing", speedup)
	}
	// Same physics regardless of partitioning.
	if rel := math.Abs(r1.PE-r8.PE) / math.Abs(r1.PE); rel > 1e-4 {
		t.Fatalf("PE differs across partitionings: %v vs %v", r1.PE, r8.PE)
	}
}

func TestRespawnOverheadDominatesAtEightSPEs(t *testing.T) {
	// Figure 6's left half: respawning every step makes the spawn
	// component a large slice at 8 SPEs, and amortizing it shrinks it.
	w := workload(t, 1536, 10)
	respawn := DefaultConfig()
	respawn.Mode = RespawnEachStep
	amort := DefaultConfig()
	amort.Mode = LaunchOnce
	rr, err := mustNew(t, respawn).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := mustNew(t, amort).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	spawnFracRespawn := rr.Time.Component("spawn") / rr.Seconds()
	spawnFracAmort := ra.Time.Component("spawn") / ra.Seconds()
	if spawnFracRespawn < 0.3 {
		t.Errorf("respawn spawn fraction = %v, want dominant at 8 SPEs", spawnFracRespawn)
	}
	if spawnFracAmort >= spawnFracRespawn/2 {
		t.Errorf("amortized spawn fraction %v not much below respawn %v", spawnFracAmort, spawnFracRespawn)
	}
	if ra.Seconds() >= rr.Seconds() {
		t.Errorf("amortized (%v) not faster than respawn (%v)", ra.Seconds(), rr.Seconds())
	}
	// Spawn time scales with steps in respawn mode: 10 steps x 8 SPEs.
	wantSpawn := 10 * 8 * respawn.SpawnSec
	if math.Abs(rr.Time.Component("spawn")-wantSpawn) > 1e-12 {
		t.Errorf("respawn spawn time = %v, want %v", rr.Time.Component("spawn"), wantSpawn)
	}
	if math.Abs(ra.Time.Component("spawn")-8*amort.SpawnSec) > 1e-12 {
		t.Errorf("amortized spawn time = %v, want %v", ra.Time.Component("spawn"), 8*amort.SpawnSec)
	}
}

func TestPPEOnlyMuchSlower(t *testing.T) {
	// Compare compute components, which are size-independent ratios;
	// the full Table 1 relation at 2048 atoms is checked by the
	// experiment harness.
	w := workload(t, 512, 2)
	ppeCfg := DefaultConfig()
	ppeCfg.PPEOnly = true
	rp, err := mustNew(t, ppeCfg).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := mustNew(t, DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Time.Component("compute") < 15*r8.Time.Component("compute") {
		t.Fatalf("PPE-only compute (%v) not ≫ 8-SPE compute (%v)",
			rp.Time.Component("compute"), r8.Time.Component("compute"))
	}
	if rp.Variant != "ppe-only" {
		t.Fatalf("variant = %q", rp.Variant)
	}
	// PPE physics identical to the SPE physics (same arithmetic).
	if rel := math.Abs(rp.PE-r8.PE) / math.Abs(r8.PE); rel > 1e-4 {
		t.Fatalf("PPE PE %v differs from SPE PE %v", rp.PE, r8.PE)
	}
}

func TestLocalStorePlanning(t *testing.T) {
	// Small systems fit whole: tile == n.
	tile, err := planLocalStore(2048, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tile != 2048 {
		t.Fatalf("2048 atoms should fit untiled, got tile %d", tile)
	}
	// 50000 atoms x 16 B = 800 KB of positions: must be tiled down.
	tile, err = planLocalStore(50000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tile >= 50000 {
		t.Fatalf("50000 atoms cannot fit untiled, got tile %d", tile)
	}
	if tile*quadBytes > spuLocalStoreSize {
		t.Fatalf("tile %d does not fit the local store", tile)
	}
	// The tile plus slice plus code reservation must fit.
	if (64*1024)+(50000/8+1)*quadBytes+tile*quadBytes > spuLocalStoreSize {
		t.Fatalf("plan overflows: tile %d", tile)
	}
}

func TestDMAAccounted(t *testing.T) {
	res, err := mustNew(t, DefaultConfig()).Run(workload(t, 256, 2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time.Component("dma") <= 0 {
		t.Fatal("no DMA time accounted")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w := workload(t, 128, 3)
	proc := mustNew(t, DefaultConfig())
	a, err := proc.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := proc.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds() != b.Seconds() || a.PE != b.PE {
		t.Fatal("nondeterministic Cell result")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.NSPE = 0
	if _, err := New(bad); err == nil {
		t.Fatal("NSPE=0 accepted")
	}
	bad = DefaultConfig()
	bad.NSPE = 9
	if _, err := New(bad); err == nil {
		t.Fatal("NSPE=9 accepted")
	}
	bad = DefaultConfig()
	bad.Kernel = NumVariants
	if _, err := New(bad); err == nil {
		t.Fatal("bad kernel accepted")
	}
	bad = DefaultConfig()
	bad.ClockHz = 0
	if _, err := New(bad); err == nil {
		t.Fatal("zero clock accepted")
	}
	// PPEOnly ignores NSPE.
	ok := DefaultConfig()
	ok.PPEOnly = true
	ok.NSPE = 0
	if _, err := New(ok); err != nil {
		t.Fatalf("PPEOnly with NSPE=0 rejected: %v", err)
	}
}

func TestVariantString(t *testing.T) {
	if Original.String() != "original" || SIMDAccel.String() != "simd-accel" {
		t.Fatal("Variant.String")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant empty string")
	}
	if LaunchOnce.String() != "amortized" || RespawnEachStep.String() != "respawn" || Mode(9).String() == "" {
		t.Fatal("Mode.String")
	}
}

func TestMailboxOnlyInAmortizedMode(t *testing.T) {
	w := workload(t, 128, 4)
	amort := DefaultConfig()
	ra, err := mustNew(t, amort).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Time.Component("mailbox") <= 0 {
		t.Fatal("amortized mode has no mailbox time")
	}
	resp := DefaultConfig()
	resp.Mode = RespawnEachStep
	rr, err := mustNew(t, resp).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if rr.Time.Component("mailbox") != 0 {
		t.Fatal("respawn mode should not use mailboxes")
	}
}

// spuLocalStoreSize mirrors spu.LocalStoreSize for the planning test.
const spuLocalStoreSize = 256 * 1024

func TestDataParallelModel(t *testing.T) {
	w := workload(t, 1024, 10)
	task := DefaultConfig()
	dp := DefaultConfig()
	dp.Model = DataParallel
	rt, err := mustNew(t, task).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	rd, err := mustNew(t, dp).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	// Identical physics regardless of programming model.
	if rt.PE != rd.PE || rt.KE != rd.KE {
		t.Fatalf("models disagree on physics: %v/%v vs %v/%v", rt.PE, rt.KE, rd.PE, rd.KE)
	}
	// Data-parallel spawns once, uses barriers instead of mailboxes,
	// and parallelizes the integration.
	if rd.Time.Component("mailbox") != 0 {
		t.Fatal("data-parallel used mailboxes")
	}
	if rd.Time.Component("barrier") <= 0 {
		t.Fatal("data-parallel has no barrier cost")
	}
	if rd.Time.Component("integration") <= 0 {
		t.Fatal("data-parallel integration not accounted")
	}
	// Parallelizing the O(N) loops on the slow-PPE-free path makes the
	// data-parallel variant at least as fast at 8 SPEs.
	if rd.Seconds() > rt.Seconds() {
		t.Fatalf("data-parallel (%v) slower than task-parallel (%v) at 8 SPEs",
			rd.Seconds(), rt.Seconds())
	}
	if rd.Variant != "8spe/data-parallel/simd-accel" {
		t.Fatalf("variant = %q", rd.Variant)
	}
}

func TestModelString(t *testing.T) {
	if TaskParallel.String() != "task-parallel" || DataParallel.String() != "data-parallel" {
		t.Fatal("Model.String")
	}
	if Model(9).String() == "" {
		t.Fatal("unknown Model empty")
	}
}

func TestDualIssueBoundIsLowerBound(t *testing.T) {
	// The cost-table cycle estimate must dominate the perfect-dual-issue
	// bound for every kernel variant: a model that claims to beat an
	// ideal scheduler is broken.
	w := workload(t, 256, 1)
	proc := mustNew(t, DefaultConfig())
	for v := Variant(0); v < NumVariants; v++ {
		ctx := &spu.Context{}
		p := md.Params[float32]{Box: float32(w.State.Box), Cutoff: float32(w.Cutoff), Dt: float32(w.Dt)}
		sys, err := md.NewSystem(w.State, p)
		if err != nil {
			t.Fatal(err)
		}
		runKernel(v, ctx, kernelParamsFor(w), sys.Pos, sys.Acc, 0, sys.N())
		bound := proc.DualIssueBound(&ctx.L)
		estimate := ctx.L.Cycles(DefaultConfig().SPECosts)
		if estimate < bound {
			t.Fatalf("%v: cost-table estimate %v below dual-issue bound %v", v, estimate, bound)
		}
		// The bound should be meaningful: within an order of magnitude.
		if estimate > 10*bound {
			t.Fatalf("%v: estimate %v implausibly far above bound %v", v, estimate, bound)
		}
	}
}
