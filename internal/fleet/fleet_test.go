package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/sim"
)

// replicaCfg is a small, fast supervised-run config; distinct seeds
// give distinct ensemble members.
func replicaCfg(seed uint64) guard.Config {
	return guard.Config{
		Run: mdrun.Config{
			Atoms: 108, Density: 0.8442, Temperature: 0.728,
			Lattice: lattice.FCC, Seed: seed,
			Cutoff: 2.2, Dt: 0.004, Shifted: true,
			Method: mdrun.Direct, Workers: 1,
		},
		CheckEvery: 5,
	}
}

func sameSystem(t *testing.T, a, b *md.System[float64]) {
	t.Helper()
	if a == nil || b == nil {
		t.Fatalf("nil system (a=%v b=%v)", a == nil, b == nil)
	}
	if a.Steps != b.Steps {
		t.Fatalf("steps %d != %d", a.Steps, b.Steps)
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos.At(i) != b.Pos.At(i) || a.Vel.At(i) != b.Vel.At(i) || a.Acc.At(i) != b.Acc.At(i) {
			t.Fatalf("atom %d state differs: pos %v vs %v", i, a.Pos.At(i), b.Pos.At(i))
		}
	}
	if a.PE != b.PE || a.KE != b.KE {
		t.Fatalf("energy differs: PE %v vs %v, KE %v vs %v", a.PE, b.PE, a.KE, b.KE)
	}
}

// TestBatchIsolatesPoisonedReplica is the pinned fault-isolation
// acceptance test: 8 replicas, a NaN fault injected into exactly one;
// the other 7 must succeed cleanly and match their unbatched runs
// bitwise — no cross-replica contamination.
func TestBatchIsolatesPoisonedReplica(t *testing.T) {
	const (
		n        = 8
		poisoned = 3
		steps    = 20
	)
	reps := make([]Replica, n)
	for i := range reps {
		reps[i] = Replica{ID: i, Guard: replicaCfg(uint64(100 + i)), Steps: steps}
	}
	reps[poisoned].Guard.Run.Faults = faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{AtCall: 7},
	})

	rep := RunBatch(context.Background(), Config{
		MaxInflight: 4, QueueDepth: n, MaxResubmits: -1,
	}, reps)

	if rep.Shed != 0 {
		t.Fatalf("unexpected shedding: %v", rep)
	}
	if rep.Succeeded != n-1 {
		t.Fatalf("want %d clean successes, got %v", n-1, rep)
	}
	if rep.Recovered+rep.Failed != 1 {
		t.Fatalf("want 1 recovered-or-failed, got %v", rep)
	}
	pr := rep.Replica(poisoned)
	if pr.State != Recovered && pr.State != Failed {
		t.Fatalf("poisoned replica state %v", pr.State)
	}
	if pr.Report == nil || pr.Report.Counts.Count(sim.IncidentNaN) == 0 {
		t.Fatalf("poisoned replica's NaN incident not recorded: %+v", pr.Report)
	}
	if rep.Incidents.Count(sim.IncidentNaN) == 0 {
		t.Fatalf("batch report lost the NaN incident: %v", rep)
	}

	// Clean replicas must match unbatched supervised runs bitwise.
	for i := 0; i < n; i++ {
		if i == poisoned {
			continue
		}
		r := rep.Replica(i)
		if r.State != Succeeded {
			t.Fatalf("replica %d: %v (%v)", i, r.State, r.Err)
		}
		sup, err := guard.New(replicaCfg(uint64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sup.Run(steps); err != nil {
			t.Fatalf("unbatched replica %d: %v", i, err)
		}
		sameSystem(t, r.Final, sup.System())
		sup.Close()
	}
}

// delayedReplica is a replica whose parallel workers are slowed by an
// injected straggler fault on every call.
func delayedReplica(id int, steps int, delay time.Duration) Replica {
	cfg := replicaCfg(uint64(200 + id))
	cfg.Run.Method = mdrun.ParallelDirect
	cfg.Run.Workers = 2
	cfg.Run.Faults = faults.NewRegistry(uint64(id) + 1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Delay, Delay: delay,
		Trigger: faults.Trigger{FromCall: 1},
	})
	return Replica{ID: id, Guard: cfg, Steps: steps}
}

// TestOverloadShedsAndTimeoutCancels is the pinned overload acceptance
// test: with 2 inflight slots and 16 submissions of straggler-faulted
// replicas, the excess is shed with ErrOverloaded (not deadlocked) and
// an admitted replica exceeding the per-replica timeout is cancelled
// within one MD step.
func TestOverloadShedsAndTimeoutCancels(t *testing.T) {
	const (
		n     = 16
		steps = 50
		delay = 50 * time.Millisecond
	)
	reps := make([]Replica, n)
	for i := range reps {
		reps[i] = delayedReplica(i, steps, delay)
	}
	rep := RunBatch(context.Background(), Config{
		MaxInflight: 2, QueueDepth: 2,
		ReplicaTimeout: 150 * time.Millisecond,
		MaxResubmits:   -1,
	}, reps)

	// Admission capacity is 2 inflight + 2 queued; the stragglers hold
	// their slots far longer than submission takes, so at least
	// n - 2*(inflight+queue) replicas must shed. No replica may hang.
	if rep.Shed < n-8 {
		t.Fatalf("want >= %d shed, got %v", n-8, rep)
	}
	if int64(rep.Shed) != rep.Incidents.Count(sim.IncidentShed) {
		t.Fatalf("shed count %d not mirrored in incident log: %v", rep.Shed, rep)
	}
	sawOverload, sawDeadline := false, false
	for i := range rep.Results {
		r := &rep.Results[i]
		switch r.State {
		case Shed:
			if !errors.Is(r.Err, ErrOverloaded) {
				t.Fatalf("shed replica %d error %v", r.ID, r.Err)
			}
			sawOverload = true
		case Failed:
			if !errors.Is(r.Err, context.DeadlineExceeded) {
				t.Fatalf("failed replica %d error %v", r.ID, r.Err)
			}
			sawDeadline = true
			// Cancelled within one MD step: with ~delay per step and a
			// 3-step-budget deadline, the run must stop in the first
			// watchdog segment, nowhere near the requested 50 steps.
			if r.Report == nil {
				t.Fatalf("replica %d: no report", r.ID)
			}
			last := r.Report.Events[len(r.Report.Events)-1]
			if last.Kind != sim.IncidentCancelled {
				t.Fatalf("replica %d last event %v, want cancelled", r.ID, last.Kind)
			}
			if last.Step >= steps/2 {
				t.Fatalf("replica %d cancelled only at step %d of %d", r.ID, last.Step, steps)
			}
		case Succeeded, Recovered:
			t.Fatalf("replica %d finished despite straggler+deadline: %v", r.ID, r.State)
		}
	}
	if !sawOverload || !sawDeadline {
		t.Fatalf("missing outcomes (overload %v, deadline %v): %v", sawOverload, sawDeadline, rep)
	}
	if rep.Incidents.Count(sim.IncidentCancelled) == 0 {
		t.Fatalf("no cancellation incident in batch log: %v", rep)
	}
}

// TestTransientFailureResubmitsWithBackoff pins the fleet-level retry:
// a replica whose guard always gives up (persistent NaN) is resubmitted
// MaxResubmits times with exponentially-growing jittered backoff.
func TestTransientFailureResubmitsWithBackoff(t *testing.T) {
	cfg := replicaCfg(42)
	cfg.MaxRetries = 1
	cfg.Run.Faults = faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{FromCall: 1},
	})

	var sleeps []time.Duration
	rep := RunBatch(context.Background(), Config{
		MaxInflight: 1, MaxResubmits: 2,
		BaseBackoff: 100 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, []Replica{{ID: 0, Guard: cfg, Steps: 10}})

	r := rep.Replica(0)
	if r.State != Failed {
		t.Fatalf("state %v, want failed", r.State)
	}
	if r.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (1 + 2 resubmits)", r.Attempts)
	}
	if got := r.Incidents.Count(sim.IncidentResubmit); got != 2 {
		t.Fatalf("resubmit incidents %d, want 2", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("backoff sleeps %d, want 2 (%v)", len(sleeps), sleeps)
	}
	// Jittered exponential: attempt k sleeps in [base<<k / 2, base<<k).
	for k, d := range sleeps {
		lo := (100 * time.Millisecond << k) / 2
		hi := 100 * time.Millisecond << k
		if d < lo || d >= hi {
			t.Fatalf("sleep %d = %v outside [%v, %v)", k, d, lo, hi)
		}
	}
}

// TestInvalidConfigIsPermanent pins that construction failures are not
// retried.
func TestInvalidConfigIsPermanent(t *testing.T) {
	cfg := replicaCfg(1)
	cfg.Run.Atoms = -5
	rep := RunBatch(context.Background(), Config{MaxInflight: 1, MaxResubmits: 3},
		[]Replica{{ID: 0, Guard: cfg, Steps: 5}})
	r := rep.Replica(0)
	if r.State != Failed || r.Attempts != 1 {
		t.Fatalf("want 1 failed attempt, got state %v attempts %d (%v)", r.State, r.Attempts, r.Err)
	}
}

// TestCancelledBatchLeavesNoGoroutines is the shutdown satellite: a
// batch of parallel-method replicas cancelled mid-step must wind down
// every worker-pool goroutine.
func TestCancelledBatchLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	s := New(Config{MaxInflight: 2, QueueDepth: 8, MaxResubmits: -1})
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(ctx, delayedReplica(i, 200, 20*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	time.Sleep(30 * time.Millisecond) // let replicas get in flight
	cancel()
	for _, tk := range tickets {
		r := tk.Wait()
		if r.State != Failed || !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("replica %d: state %v err %v, want cancelled failure", r.ID, r.State, r.Err)
		}
	}
	s.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCloseDuringInflightBatch pins that Close while replicas are in
// flight (and while another goroutine races Submits against it) drains
// cleanly: every admitted replica still resolves, later Submits shed
// with ErrClosed, and nothing panics under -race.
func TestCloseDuringInflightBatch(t *testing.T) {
	s := New(Config{MaxInflight: 2, QueueDepth: 4, MaxResubmits: -1})
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), delayedReplica(i, 3, 10*time.Millisecond))
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	racing := make(chan error, 1)
	go func() {
		var lastErr error
		for i := 0; i < 100; i++ {
			_, err := s.Submit(context.Background(), delayedReplica(100+i, 1, time.Millisecond))
			if err != nil {
				lastErr = err
			}
		}
		racing <- lastErr
	}()
	s.Close()
	if err := <-racing; err != nil && !errors.Is(err, ErrClosed) && !errors.Is(err, ErrOverloaded) {
		t.Fatalf("racing submit returned unexpected error: %v", err)
	}
	for _, tk := range tickets {
		r := tk.Wait()
		if r.State == Pending {
			t.Fatalf("replica %d left pending after Close", r.ID)
		}
	}
	if _, err := s.Submit(context.Background(), delayedReplica(999, 1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

// TestWorkerShare pins the shared-budget division.
func TestWorkerShare(t *testing.T) {
	s := New(Config{MaxInflight: 4, WorkerBudget: 8})
	defer s.Close()
	if got := s.workerShare(); got != 2 {
		t.Fatalf("share %d, want 2", got)
	}
	s2 := New(Config{MaxInflight: 8, WorkerBudget: 2})
	defer s2.Close()
	if got := s2.workerShare(); got != 1 {
		t.Fatalf("share %d, want 1 (floor)", got)
	}
}

// TestBatchReportPercentiles pins the nearest-rank percentile math and
// state counting on a synthetic result set.
func TestBatchReportPercentiles(t *testing.T) {
	results := make([]Result, 10)
	for i := range results {
		results[i] = Result{ID: i, State: Succeeded, Wall: time.Duration(i+1) * time.Millisecond}
	}
	results[9].State = Shed
	results[9].Wall = 0
	rep := buildReport(results, 123*time.Millisecond)
	if rep.Succeeded != 9 || rep.Shed != 1 {
		t.Fatalf("counts: %v", rep)
	}
	if rep.WallP50 != 5*time.Millisecond {
		t.Fatalf("p50 %v, want 5ms", rep.WallP50)
	}
	if rep.WallP90 != 8*time.Millisecond {
		t.Fatalf("p90 %v, want 8ms", rep.WallP90)
	}
	if rep.WallMax != 9*time.Millisecond {
		t.Fatalf("max %v, want 9ms", rep.WallMax)
	}
	if rep.String() == "" {
		t.Fatal("empty report string")
	}
}

// TestSharedBuildEngineBitwise pins the shared build pool the ROADMAP
// asked for: batched pairlist replicas — which the scheduler silently
// hands its scheduler-wide parallel.Engine for neighbor-list builds —
// must match unbatched supervised runs (serial cell-binned builds)
// bitwise. The parallel build being byte-identical to the serial one
// is exactly what makes sharing one pool safe.
func TestSharedBuildEngineBitwise(t *testing.T) {
	const (
		n     = 6
		steps = 25
	)
	// 500 atoms: box ≈ 8.4 with cutoff+skin ≈ 2.6 gives a 3³ grid, so
	// the shared engine runs the real cell-binned sharded build, not
	// the small-box fallback.
	pairCfg := func(seed uint64) guard.Config {
		g := replicaCfg(seed)
		g.Run.Atoms = 500
		g.Run.Method = mdrun.Pairlist
		return g
	}
	reps := make([]Replica, n)
	for i := range reps {
		reps[i] = Replica{ID: i, Guard: pairCfg(uint64(300 + i)), Steps: steps}
	}
	s := New(Config{MaxInflight: 3, QueueDepth: n, WorkerBudget: 4})
	rep := s.RunBatch(context.Background(), reps)
	s.Close()
	if rep.Succeeded != n {
		t.Fatalf("want %d clean successes, got %v", n, rep)
	}
	for i := 0; i < n; i++ {
		r := rep.Replica(i)
		sup, err := guard.New(pairCfg(uint64(300 + i)))
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := sup.Run(steps); err != nil {
			t.Fatalf("unbatched replica %d: %v", i, err)
		}
		sameSystem(t, r.Final, sup.System())
		sup.Close()
	}
}

// TestSchedulerCloseClosesBuildEngine ensures a closed scheduler does
// not leak the shared build pool's worker goroutines.
func TestSchedulerCloseClosesBuildEngine(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		s := New(Config{MaxInflight: 2, WorkerBudget: 4})
		rep := s.RunBatch(context.Background(), []Replica{
			{ID: 0, Guard: replicaCfg(1), Steps: 2},
		})
		s.Close()
		if rep.Succeeded != 1 {
			t.Fatalf("round %d: %v", i, rep)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}
