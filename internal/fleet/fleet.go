// Package fleet is a fault-isolated batch replica scheduler: it runs
// many concurrent mdrun replicas — a parameter sweep, a replica-exchange
// ensemble, the paper's "many short runs" serving shape — over one
// bounded worker budget, without letting any single replica sink its
// siblings or the process.
//
// The scheduler composes the layers below it rather than re-implement
// them:
//
//   - each replica runs under its own guard.Supervisor, so the
//     watchdog / checkpoint-rollback / escalation ladder from
//     internal/guard applies per replica;
//   - each replica gets its own context, carrying the batch
//     cancellation and an optional per-replica deadline; the context is
//     threaded through mdrun's step loop and the parallel worker pool,
//     so a cancelled or timed-out replica stops within one MD step;
//   - a replica-level recover converts any panic into a Failed result
//     instead of process death;
//   - transient failures (a guard give-up that is not a cancellation)
//     are resubmitted with exponential backoff plus deterministic
//     jitter, up to MaxResubmits times;
//   - admission is a bounded queue: when MaxInflight replicas are
//     running and QueueDepth more are waiting, Submit rejects new
//     replicas immediately with ErrOverloaded — load shedding, never
//     unbounded queueing or deadlock.
//
// Each replica produces a guard.RunReport; a batch aggregates them into
// a BatchReport (state counts, merged sim.IncidentLog, wall-time
// percentiles).
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/guard"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/parallel"
	"repro/internal/sim"
	"repro/internal/xrand"
)

// ErrOverloaded is returned by Submit when the admission queue is
// full. The caller sheds the replica (or retries later); the scheduler
// never queues unboundedly.
var ErrOverloaded = errors.New("fleet: overloaded")

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("fleet: scheduler closed")

// ErrReplicaPanic wraps a panic recovered at the replica boundary.
var ErrReplicaPanic = errors.New("fleet: replica panicked")

// errConfig wraps replica-construction failures, which are permanent:
// resubmitting an invalid config cannot succeed.
var errConfig = errors.New("fleet: replica config rejected")

// Config describes the scheduler.
type Config struct {
	// MaxInflight is how many replicas run concurrently. Default:
	// GOMAXPROCS-derived (runtime.NumCPU, at least 1).
	MaxInflight int

	// QueueDepth bounds the admission queue beyond the inflight set:
	// at most MaxInflight running plus QueueDepth waiting are admitted;
	// further Submits shed with ErrOverloaded. Zero defaults to
	// MaxInflight; negative means no queue (admit only what can run).
	QueueDepth int

	// WorkerBudget is the total host force-worker budget shared by the
	// inflight replicas. A replica whose Run.Workers is 0 ("auto") is
	// assigned max(1, WorkerBudget/MaxInflight) workers; explicit
	// worker counts are respected. Default runtime.NumCPU().
	WorkerBudget int

	// ReplicaTimeout, when positive, is the per-replica deadline: a
	// replica exceeding it is cancelled (within one MD step) and
	// reported Failed with an error wrapping context.DeadlineExceeded.
	ReplicaTimeout time.Duration

	// MaxResubmits is how many times a replica that failed transiently
	// (guard gave up, worker panic — anything but cancellation or an
	// invalid config) is resubmitted, with backoff. Default 1;
	// negative disables resubmission.
	MaxResubmits int

	// BaseBackoff is the delay before the first resubmission; it
	// doubles per attempt and carries deterministic jitter in
	// [d/2, d). Zero disables sleeping (tests).
	BaseBackoff time.Duration

	// MaxBackoff caps the exponential growth. Default 2s when
	// BaseBackoff is set.
	MaxBackoff time.Duration

	// JitterSeed seeds the deterministic jitter stream. Default 1.
	JitterSeed uint64

	// Sleep is the backoff clock, replaceable for tests. Default
	// time.Sleep.
	Sleep func(time.Duration)
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.MaxInflight <= 0 {
		c.MaxInflight = runtime.NumCPU()
		if c.MaxInflight < 1 {
			c.MaxInflight = 1
		}
	}
	switch {
	case c.QueueDepth == 0:
		c.QueueDepth = c.MaxInflight
	case c.QueueDepth < 0:
		c.QueueDepth = 0
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.NumCPU()
	}
	if c.MaxResubmits == 0 {
		c.MaxResubmits = 1
	} else if c.MaxResubmits < 0 {
		c.MaxResubmits = 0
	}
	if c.MaxBackoff == 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.JitterSeed == 0 {
		c.JitterSeed = 1
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Replica is one unit of batch work: a supervised simulation plus how
// many steps to advance it.
type Replica struct {
	// ID tags the replica in results and reports. IDs are the caller's
	// namespace; the scheduler never interprets them.
	ID int

	// Guard is the supervised-run configuration, exactly as guard.New
	// takes it. Its Run.Faults injector, if any, should be private to
	// this replica (see faults.Registry.Clone) — a shared registry's
	// call numbering is global across replicas.
	Guard guard.Config

	// Steps is how many MD steps to advance.
	Steps int

	// InitialSystem, when non-nil, is the state the replica starts
	// from instead of a freshly generated lattice — the resume entry
	// point: the serving layer restores an interrupted job's latest
	// valid checkpoint and submits the remaining steps. Each attempt
	// adopts a fresh Clone, so a fleet-level resubmission restarts from
	// the same restored state rather than from wherever the failed
	// attempt left the adopted copy. The Guard.Run lattice-shape fields
	// (Atoms, Density, Lattice, Seed) are ignored on this path, exactly
	// as mdrun.NewFromSystem documents.
	InitialSystem *md.System[float64]
}

// State classifies a replica's outcome.
type State int

const (
	// Pending is the zero value: the replica has not finished.
	Pending State = iota
	// Succeeded is a clean run: no incidents at all.
	Succeeded
	// Recovered is a run that finished but survived at least one
	// incident (rollback, escalation, fleet resubmission).
	Recovered
	// Shed is a replica rejected at admission (ErrOverloaded); it
	// never ran.
	Shed
	// Failed is a replica whose final attempt errored: recovery budget
	// exhausted, deadline exceeded, cancelled, panicked, or invalid.
	Failed
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Pending:
		return "pending"
	case Succeeded:
		return "succeeded"
	case Recovered:
		return "recovered"
	case Shed:
		return "shed"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Result is one replica's outcome.
type Result struct {
	ID    int
	State State

	// Attempts counts guard runs performed (0 for a shed replica; >1
	// means fleet-level resubmission happened).
	Attempts int

	// Summary and Report come from the last guard attempt (nil for
	// shed replicas; Summary may be partial on failure).
	Summary *mdrun.Summary
	Report  *guard.RunReport

	// Final is a clone of the finished system state (nil unless the
	// replica succeeded or recovered) — what a replica-exchange or
	// sweep-analysis stage consumes, and what the no-contamination
	// tests compare bitwise against unbatched runs.
	Final *md.System[float64]

	// Incidents are the fleet-level incidents (shed, replica panic,
	// resubmission); guard-level incidents live in Report.Counts.
	Incidents sim.IncidentLog

	// Err is the terminal error for Shed/Failed replicas.
	Err error

	// Wall is the replica's wall-clock time in the scheduler (queue
	// wait included; zero for shed replicas).
	Wall time.Duration
}

// job carries one submitted replica through the queue.
type job struct {
	rep  Replica
	ctx  context.Context
	res  *Result
	done chan struct{}
}

// Ticket is a handle on a submitted replica.
type Ticket struct{ j *job }

// Done returns a channel closed when the replica finishes.
func (t *Ticket) Done() <-chan struct{} { return t.j.done }

// Wait blocks until the replica finishes and returns its result.
func (t *Ticket) Wait() *Result { <-t.j.done; return t.j.res }

// Scheduler runs submitted replicas over MaxInflight worker
// goroutines. Safe for concurrent Submit/Close.
type Scheduler struct {
	cfg   Config
	queue chan *job
	wg    sync.WaitGroup

	mu     sync.Mutex // guards closed, queue sends vs close, rng
	closed bool
	rng    *xrand.Source

	// drained is closed by the (single) shutdown waiter once every
	// worker has exited and the shared build engine is released; Close
	// and Drain both wait on it, so a timed-out Drain followed by a
	// late Close never double-tears-down.
	drained   chan struct{}
	drainOnce sync.Once

	// buildEngine is the scheduler-wide neighbor-list build pool: every
	// replica whose Run.BuildEngine is unset borrows it, so concurrent
	// pairlist replicas share WorkerBudget build workers instead of each
	// building serially inside its own slot. The parallel build is
	// byte-identical to the serial one, so sharing never couples replica
	// physics; builds from different replicas serialize inside the
	// engine, each under its own replica context.
	buildEngine *parallel.Engine[float64]
}

// New starts a scheduler with cfg.MaxInflight replica workers.
func New(cfg Config) *Scheduler {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:         cfg,
		queue:       make(chan *job, cfg.QueueDepth),
		rng:         xrand.New(cfg.JitterSeed),
		buildEngine: parallel.New[float64](cfg.WorkerBudget),
		drained:     make(chan struct{}),
	}
	s.wg.Add(cfg.MaxInflight)
	for i := 0; i < cfg.MaxInflight; i++ {
		go func() {
			defer s.wg.Done()
			for j := range s.queue {
				s.runJob(j)
			}
		}()
	}
	return s
}

// Config returns the scheduler's effective (defaulted) configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// shutdown stops admission (idempotently) and starts the single
// drain waiter that closes the shared build engine and signals
// `drained` once every worker goroutine has exited. Both Close and
// Drain funnel through here, so the engine is torn down exactly once,
// by the waiter — previously a Drain-style caller that gave up waiting
// had no way to release the engine without racing a concurrent Close,
// which leaked the engine's worker goroutines.
func (s *Scheduler) shutdown() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.drainOnce.Do(func() {
		go func() {
			s.wg.Wait()
			// All replicas have finished; no build can be in flight.
			s.buildEngine.Close()
			close(s.drained)
		}()
	})
}

// Close stops admission and waits for in-flight and queued replicas to
// finish. Idempotent; concurrent Submits shed with ErrClosed.
func (s *Scheduler) Close() {
	s.shutdown()
	<-s.drained
}

// Drain is graceful shutdown with a deadline: it stops admission
// (concurrent Submits shed with ErrClosed), lets queued and in-flight
// replicas run to their terminal states, and returns nil once the
// scheduler has fully quiesced — every worker goroutine exited, the
// shared build engine released. If ctx expires first, Drain returns
// ctx.Err() while the teardown continues in the background: the caller
// typically escalates by cancelling the contexts it submitted replicas
// under (a cancelled replica stops within one MD step and its latest
// checkpoint survives), after which the background teardown completes
// and a later Drain or Close observes the quiesced state immediately.
func (s *Scheduler) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	s.shutdown()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("fleet: drain: %w", ctx.Err())
	}
}

// Submit offers a replica to the admission queue without blocking: it
// returns a Ticket when admitted, or an error wrapping ErrOverloaded
// (queue full — load shedding) or ErrClosed. ctx bounds the replica's
// whole life, queue wait included; nil means context.Background().
func (s *Scheduler) Submit(ctx context.Context, r Replica) (*Ticket, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	j := &job{rep: r, ctx: ctx, done: make(chan struct{})}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("fleet: replica %d: %w", r.ID, ErrClosed)
	}
	select {
	case s.queue <- j:
		return &Ticket{j: j}, nil
	default:
		return nil, fmt.Errorf("fleet: replica %d rejected, %d inflight + %d queued at capacity: %w",
			r.ID, s.cfg.MaxInflight, s.cfg.QueueDepth, ErrOverloaded)
	}
}

// RunBatch submits every replica and waits for the batch: replicas the
// queue cannot absorb are shed (recorded in the report with
// ErrOverloaded, never blocking the rest), the others run to their
// individual outcomes. The scheduler remains usable afterwards.
func (s *Scheduler) RunBatch(ctx context.Context, reps []Replica) *BatchReport {
	start := time.Now()
	results := make([]Result, len(reps))
	tickets := make([]*Ticket, len(reps))
	for i, r := range reps {
		t, err := s.Submit(ctx, r)
		if err != nil {
			results[i] = Result{ID: r.ID, State: Shed, Err: err}
			results[i].Incidents.Add(sim.IncidentShed, 1)
			continue
		}
		tickets[i] = t
	}
	//mdlint:ignore ctxloop each ticket resolves through its replica's context (deadline + batch ctx), so this wait is bounded per replica
	for i, t := range tickets {
		if t != nil {
			results[i] = *t.Wait()
		}
	}
	return buildReport(results, time.Since(start))
}

// RunBatch is the one-shot convenience: a fresh scheduler, one batch,
// clean shutdown.
func RunBatch(ctx context.Context, cfg Config, reps []Replica) *BatchReport {
	s := New(cfg)
	defer s.Close()
	return s.RunBatch(ctx, reps)
}

// runJob drives one admitted replica to a terminal state, resubmitting
// transient failures with backoff.
func (s *Scheduler) runJob(j *job) {
	start := time.Now()
	res := &Result{ID: j.rep.ID}
	defer func() {
		res.Wall = time.Since(start)
		j.res = res
		close(j.done)
	}()

	for attempt := 0; ; attempt++ {
		sum, rep, final, err := s.attempt(j)
		res.Attempts = attempt + 1
		res.Summary, res.Report = sum, rep
		if err == nil {
			res.Err = nil
			res.Final = final
			if res.Incidents.Total() > 0 || (rep != nil && rep.Counts.Total() > 0) {
				res.State = Recovered
			} else {
				res.State = Succeeded
			}
			return
		}
		res.Err = err
		res.State = Failed
		if errors.Is(err, ErrReplicaPanic) {
			res.Incidents.Add(sim.IncidentReplicaPanic, 1)
		}
		if !transient(err) || attempt >= s.cfg.MaxResubmits || j.ctx.Err() != nil {
			return
		}
		res.Incidents.Add(sim.IncidentResubmit, 1)
		s.backoff(attempt)
	}
}

// attempt performs one guard-supervised run of the replica, isolated:
// a panic anywhere inside becomes an error, and the per-replica
// deadline (if configured) bounds the run.
func (s *Scheduler) attempt(j *job) (sum *mdrun.Summary, rep *guard.RunReport, final *md.System[float64], err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("%w: replica %d: %v", ErrReplicaPanic, j.rep.ID, rec)
		}
	}()
	ctx := j.ctx
	if s.cfg.ReplicaTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.ReplicaTimeout)
		defer cancel()
	}
	gcfg := j.rep.Guard
	if gcfg.Run.Workers == 0 {
		gcfg.Run.Workers = s.workerShare()
	}
	if gcfg.Run.BuildEngine == nil {
		// Pairlist replicas share the scheduler-wide build pool; an
		// explicitly configured engine is respected.
		gcfg.Run.BuildEngine = s.buildEngine
	}
	var sup *guard.Supervisor
	if j.rep.InitialSystem != nil {
		// Resume path: adopt a clone so this attempt cannot disturb the
		// restored state a resubmission would need to start over from.
		sup, err = guard.NewFromSystem(j.rep.InitialSystem.Clone(), gcfg)
	} else {
		sup, err = guard.New(gcfg)
	}
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%w: replica %d: %v", errConfig, j.rep.ID, err)
	}
	defer sup.Close()
	sum, rep, err = sup.RunContext(ctx, j.rep.Steps)
	if err == nil {
		final = sup.System().Clone()
	}
	return sum, rep, final, err
}

// workerShare divides the shared worker budget evenly over the
// inflight slots — the per-replica default when Run.Workers is "auto".
func (s *Scheduler) workerShare() int {
	share := s.cfg.WorkerBudget / s.cfg.MaxInflight
	if share < 1 {
		share = 1
	}
	return share
}

// transient reports whether a failed attempt is worth resubmitting:
// cancellation and deadline expiry are deliberate, invalid configs are
// permanent, everything else (exhausted recovery budget, panic, I/O)
// might succeed on a fresh attempt.
func transient(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, errConfig) {
		return false
	}
	return true
}

// backoff sleeps the exponential-with-jitter delay before resubmission
// attempt+1. The jitter is drawn from the scheduler's seeded stream,
// so a batch's backoff schedule is replayable.
func (s *Scheduler) backoff(attempt int) {
	if s.cfg.BaseBackoff <= 0 {
		return
	}
	d := s.cfg.BaseBackoff << attempt
	if d > s.cfg.MaxBackoff || d <= 0 { // <= 0: shift overflow
		d = s.cfg.MaxBackoff
	}
	s.mu.Lock()
	f := s.rng.Float64()
	s.mu.Unlock()
	d = d/2 + time.Duration(f*float64(d/2))
	s.cfg.Sleep(d)
}
