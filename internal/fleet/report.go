package fleet

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/sim"
)

// BatchReport aggregates a batch: per-replica results, state counts,
// the merged incident log (fleet-level and guard-level), and
// wall-clock percentiles over the replicas that actually ran.
type BatchReport struct {
	Results []Result

	Total     int
	Succeeded int
	Recovered int
	Shed      int
	Failed    int

	// Incidents merges every replica's fleet-level incidents with its
	// guard RunReport counts — the batch-wide answer to "what did this
	// ensemble survive".
	Incidents sim.IncidentLog

	// Wall-time percentiles (nearest-rank) over non-shed replicas.
	WallP50, WallP90, WallMax time.Duration

	// Elapsed is the whole batch's wall time.
	Elapsed time.Duration
}

// buildReport folds per-replica results into the aggregate.
func buildReport(results []Result, elapsed time.Duration) *BatchReport {
	r := &BatchReport{Results: results, Total: len(results), Elapsed: elapsed}
	var walls []time.Duration
	for i := range results {
		res := &results[i]
		switch res.State {
		case Succeeded:
			r.Succeeded++
		case Recovered:
			r.Recovered++
		case Shed:
			r.Shed++
		default:
			r.Failed++
		}
		r.Incidents.Merge(&res.Incidents)
		if res.Report != nil {
			r.Incidents.Merge(&res.Report.Counts)
		}
		if res.State != Shed {
			walls = append(walls, res.Wall)
		}
	}
	if len(walls) > 0 {
		sort.Slice(walls, func(i, j int) bool { return walls[i] < walls[j] })
		r.WallP50 = percentile(walls, 0.50)
		r.WallP90 = percentile(walls, 0.90)
		r.WallMax = walls[len(walls)-1]
	}
	return r
}

// percentile returns the nearest-rank q-quantile of sorted durations.
func percentile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Replica returns the result for the given replica ID, or nil.
func (r *BatchReport) Replica(id int) *Result {
	for i := range r.Results {
		if r.Results[i].ID == id {
			return &r.Results[i]
		}
	}
	return nil
}

// String renders a compact one-paragraph account.
func (r *BatchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "batch: %d replicas — %d succeeded, %d recovered, %d shed, %d failed",
		r.Total, r.Succeeded, r.Recovered, r.Shed, r.Failed)
	fmt.Fprintf(&b, "; wall p50 %v p90 %v max %v, batch %v",
		r.WallP50.Round(time.Microsecond), r.WallP90.Round(time.Microsecond),
		r.WallMax.Round(time.Microsecond), r.Elapsed.Round(time.Microsecond))
	if s := r.Incidents.String(); s != "" {
		fmt.Fprintf(&b, " [%s]", s)
	}
	return b.String()
}
