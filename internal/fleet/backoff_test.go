package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/faults"
)

// failingReplica is a replica whose guard always gives up: a
// persistent NaN force fault with a one-rung ladder, the canonical
// transient failure the scheduler resubmits with backoff.
func failingReplica(reg *faults.Registry) Replica {
	cfg := replicaCfg(42)
	cfg.MaxRetries = 1
	cfg.Run.Faults = reg
	return Replica{ID: 0, Guard: cfg, Steps: 10}
}

func backoffSequence(t *testing.T, reg *faults.Registry) []time.Duration {
	t.Helper()
	var sleeps []time.Duration
	rep := RunBatch(context.Background(), Config{
		MaxInflight: 1, MaxResubmits: 4, JitterSeed: 7,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  800 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, []Replica{failingReplica(reg)})
	if r := rep.Replica(0); r.State != Failed {
		t.Fatalf("state %v, want failed (the backoff path needs a persistent failure)", r.State)
	}
	if len(sleeps) != 4 {
		t.Fatalf("backoff sleeps %d, want 4 (%v)", len(sleeps), sleeps)
	}
	return sleeps
}

// TestBackoffDeterministicAcrossClonedRegistries pins the replay
// property the chaos campaigns depend on: a scheduler with the same
// JitterSeed, driving a replica over a Clone of the same fault
// registry, produces the identical resubmission backoff sequence —
// fault counters and jitter draws are state, not wall-clock noise.
func TestBackoffDeterministicAcrossClonedRegistries(t *testing.T) {
	reg := faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{FromCall: 1},
	})
	a := backoffSequence(t, reg.Clone())
	b := backoffSequence(t, reg.Clone())
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff diverged at resubmit %d: %v vs %v", i, a, b)
		}
	}
	// The jitter is seeded, not constant: a different JitterSeed moves
	// the draws, which is what makes the seed part of a repro line.
	var sleeps []time.Duration
	rep := RunBatch(context.Background(), Config{
		MaxInflight: 1, MaxResubmits: 4, JitterSeed: 8,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  800 * time.Millisecond,
		Sleep:       func(d time.Duration) { sleeps = append(sleeps, d) },
	}, []Replica{failingReplica(reg.Clone())})
	if r := rep.Replica(0); r.State != Failed {
		t.Fatalf("state %v, want failed", r.State)
	}
	same := true
	for i := range a {
		if sleeps[i] != a[i] {
			same = false
		}
	}
	if same {
		t.Fatalf("JitterSeed 7 and 8 produced identical backoff %v — jitter is not seeded", a)
	}
	// And the cloned registries really did replay the same fault
	// stream: identical armed schedules, identical fired counters.
	s1, s2 := reg.Clone().Snapshot(), reg.Clone().Snapshot()
	if len(s1.Armed) != len(s2.Armed) || len(s1.Armed) == 0 {
		t.Fatalf("clone snapshots diverge: %+v vs %+v", s1, s2)
	}
}
