package fleet

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/guard"
)

// TestDrainQuiesces pins the typed graceful-shutdown seam: Drain stops
// admission (Submit sheds with ErrClosed), lets every queued and
// in-flight replica reach a terminal state, and releases the shared
// build engine — leaving no goroutines behind. Before Drain existed,
// only Close (and the close-during-batch race test) exercised this
// path, and a deadline-bounded caller had no way to wait without
// leaking the engine workers.
func TestDrainQuiesces(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{MaxInflight: 2, QueueDepth: 8, WorkerBudget: 2})
	var tickets []*Ticket
	for i := 0; i < 4; i++ {
		tk, err := s.Submit(context.Background(), Replica{ID: i, Guard: replicaCfg(uint64(300 + i)), Steps: 15})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		tickets = append(tickets, tk)
	}

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	// Post-drain: every submitted replica is terminal, new work sheds.
	for i, tk := range tickets {
		res := tk.Wait()
		if res.State != Succeeded && res.State != Recovered {
			t.Fatalf("replica %d not terminal-ok after Drain: %v (%v)", i, res.State, res.Err)
		}
	}
	if _, err := s.Submit(context.Background(), Replica{ID: 99, Guard: replicaCfg(1), Steps: 1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Drain = %v, want ErrClosed", err)
	}
	// A second Drain and a Close observe the quiesced state immediately.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("second Drain: %v", err)
	}
	s.Close()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked after Drain: %d before, %d after", before, g)
	}
}

// TestDrainDeadlineExpires pins the bounded half of the contract: a
// Drain whose context expires while replicas are still running returns
// ctx.Err() without waiting, and the teardown completes in the
// background once the replicas finish — so the engine workers do not
// leak even when no one calls Close afterwards.
func TestDrainDeadlineExpires(t *testing.T) {
	before := runtime.NumGoroutine()

	s := New(Config{MaxInflight: 1, QueueDepth: 4, WorkerBudget: 1})
	tk, err := s.Submit(context.Background(), Replica{ID: 0, Guard: replicaCfg(42), Steps: 400})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with expired deadline = %v, want DeadlineExceeded", err)
	}

	// The replica still runs to completion; the background waiter then
	// releases the engine without any further call.
	res := tk.Wait()
	if res.State != Succeeded && res.State != Recovered {
		t.Fatalf("replica after timed-out Drain: %v (%v)", res.State, res.Err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked after timed-out Drain: %d before, %d after", before, g)
	}
}

// TestResumeFromInitialSystem pins the resumable replica entry point:
// a replica handed the step-K state of a reference run and the
// remaining steps finishes bitwise identical to the uninterrupted run
// — and a fresh Clone is adopted per attempt, so the caller's restored
// system is never mutated.
func TestResumeFromInitialSystem(t *testing.T) {
	const (
		total  = 30
		atStep = 12
	)
	gcfg := replicaCfg(777)

	// Uninterrupted oracle, and its state at the split point.
	sup, err := guard.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = sup.Run(atStep)
	if err != nil {
		t.Fatal(err)
	}
	mid := sup.System().Clone()
	sup.Close()

	oracle, err := guard.New(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	defer oracle.Close()
	if _, _, err := oracle.Run(total); err != nil {
		t.Fatal(err)
	}

	midBefore := mid.Clone()
	rep := RunBatch(context.Background(), Config{MaxInflight: 1, QueueDepth: 1}, []Replica{
		{ID: 0, Guard: gcfg, Steps: total - atStep, InitialSystem: mid},
	})
	if rep.Succeeded+rep.Recovered != 1 {
		t.Fatalf("resumed replica did not finish: %v", rep)
	}
	res := rep.Replica(0)
	sameSystem(t, res.Final, oracle.System())
	// The restored state the caller holds is untouched.
	sameSystem(t, mid, midBefore)
}
