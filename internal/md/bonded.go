package md

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vec"
)

// Bonded interactions: the paper notes that "calculation of forces
// between bonded atoms is straightforward and less computationally
// intensive as there are only a very small numbers of bonded
// interactions as compared to the non-bonded interactions" (section
// 3.5), and its conclusion plans to move toward "full-scale
// bio-molecular simulation frameworks". This file supplies that
// straightforward part: harmonic bonds and harmonic angles over an
// explicit topology, evaluated in O(#bonds + #angles).

// Bond is a harmonic two-body term V = K (r - R0)².
type Bond struct {
	I, J int     // atom indices
	K    float64 // force constant (energy / length²)
	R0   float64 // equilibrium length
}

// Angle is a harmonic three-body term V = K (θ - Theta0)², with J the
// vertex atom.
type Angle struct {
	I, J, K2 int     // atoms; J is the vertex
	K        float64 // force constant (energy / rad²)
	Theta0   float64 // equilibrium angle in radians
}

// Topology is the bonded structure of a molecular system.
type Topology struct {
	Bonds  []Bond
	Angles []Angle
}

// Validate checks all indices against the atom count and the physical
// parameters for sanity.
func (t *Topology) Validate(n int) error {
	for bi, b := range t.Bonds {
		if b.I < 0 || b.I >= n || b.J < 0 || b.J >= n {
			return fmt.Errorf("md: bond %d references atoms (%d,%d) outside [0,%d)", bi, b.I, b.J, n)
		}
		if b.I == b.J {
			return fmt.Errorf("md: bond %d connects atom %d to itself", bi, b.I)
		}
		if b.K < 0 || b.R0 <= 0 {
			return fmt.Errorf("md: bond %d has K=%v R0=%v", bi, b.K, b.R0)
		}
	}
	for ai, a := range t.Angles {
		if a.I < 0 || a.I >= n || a.J < 0 || a.J >= n || a.K2 < 0 || a.K2 >= n {
			return fmt.Errorf("md: angle %d references atoms (%d,%d,%d) outside [0,%d)", ai, a.I, a.J, a.K2, n)
		}
		if a.I == a.J || a.J == a.K2 || a.I == a.K2 {
			return fmt.Errorf("md: angle %d repeats an atom (%d,%d,%d)", ai, a.I, a.J, a.K2)
		}
		if a.K < 0 {
			return fmt.Errorf("md: angle %d has K=%v", ai, a.K)
		}
	}
	return nil
}

// ErrCoincidentBond reports a bonded pair at zero separation, where
// the bond force direction is undefined. It is a fixed sentinel so the
// per-step bonded kernel allocates nothing even on its error path.
var ErrCoincidentBond = errors.New("md: bonded atoms coincide")

// BondedForces accumulates (does not clear) the bonded forces into acc
// and returns the bonded potential energy. Positions must be wrapped;
// bonds use the minimum image, so a molecule may straddle the boundary.
//
// The topology must have passed Validate against this atom count —
// assemble-time validation (mdrun does it once per runner) replaces
// the per-step re-validation this kernel used to pay, which was 22 of
// the hot-path allocation ledger's 43 sites for zero steady-state
// value.
func BondedForces(top *Topology, box float64, pos Coords[float64], acc Coords[float64]) (float64, error) {
	var pe float64
	for _, b := range top.Bonds {
		d := MinImage(pos.At(b.I).Sub(pos.At(b.J)), box)
		r := d.Norm()
		if r == 0 {
			return 0, ErrCoincidentBond
		}
		dr := r - b.R0
		pe += b.K * dr * dr
		// F_I = -dV/dr_I = -2K (r-R0) * d/r
		f := -2 * b.K * dr / r
		fd := d.Scale(f)
		acc.Add(b.I, fd)
		acc.Sub(b.J, fd)
	}
	for _, a := range top.Angles {
		pe += angleForce(a, box, pos, acc)
	}
	return pe, nil
}

// angleForce applies one harmonic angle term and returns its energy.
func angleForce(a Angle, box float64, pos Coords[float64], acc Coords[float64]) float64 {
	// Vectors from the vertex J to the ends.
	rij := MinImage(pos.At(a.I).Sub(pos.At(a.J)), box)
	rkj := MinImage(pos.At(a.K2).Sub(pos.At(a.J)), box)
	lij := rij.Norm()
	lkj := rkj.Norm()
	if lij == 0 || lkj == 0 {
		return 0
	}
	cosT := vec.Clamp(rij.Dot(rkj)/(lij*lkj), -1, 1)
	theta := math.Acos(cosT)
	dT := theta - a.Theta0
	pe := a.K * dT * dT

	// F = -dV/dr = -2K(θ-θ0)·dθ/dr, and dθ/dcosθ = -1/sinθ, so the
	// force is +2K(θ-θ0)/sinθ times the gradient of cosθ.
	sinT := sqrtClamped(1 - cosT*cosT)
	if sinT < 1e-8 {
		return pe // collinear: gradient direction degenerate, skip force
	}
	c := 2 * a.K * dT / sinT
	// dcosθ/dr_i and dcosθ/dr_k:
	fi := rkj.Scale(1 / (lij * lkj)).Sub(rij.Scale(cosT / (lij * lij))).Scale(c)
	fk := rij.Scale(1 / (lij * lkj)).Sub(rkj.Scale(cosT / (lkj * lkj))).Scale(c)
	acc.Add(a.I, fi)
	acc.Add(a.K2, fk)
	acc.Sub(a.J, fi.Add(fk))
	return pe
}

func sqrtClamped(x float64) float64 {
	if x < 0 {
		return 0
	}
	return vec.Sqrt(x)
}

// LinearChain builds the topology of n atoms bonded in a chain with
// the given bond constants, a convenient molecular test system.
func LinearChain(n int, k, r0 float64) *Topology {
	top := &Topology{}
	for i := 0; i+1 < n; i++ {
		top.Bonds = append(top.Bonds, Bond{I: i, J: i + 1, K: k, R0: r0})
	}
	return top
}
