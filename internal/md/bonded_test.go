package md

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestTopologyValidate(t *testing.T) {
	bad := []Topology{
		{Bonds: []Bond{{I: -1, J: 0, K: 1, R0: 1}}},
		{Bonds: []Bond{{I: 0, J: 5, K: 1, R0: 1}}},
		{Bonds: []Bond{{I: 0, J: 0, K: 1, R0: 1}}},
		{Bonds: []Bond{{I: 0, J: 1, K: -1, R0: 1}}},
		{Bonds: []Bond{{I: 0, J: 1, K: 1, R0: 0}}},
		{Angles: []Angle{{I: 0, J: 1, K2: 9, K: 1}}},
		{Angles: []Angle{{I: 0, J: 0, K2: 1, K: 1}}},
		{Angles: []Angle{{I: 0, J: 1, K2: 2, K: -1}}},
	}
	for i, top := range bad {
		topCopy := top
		if err := topCopy.Validate(3); err == nil {
			t.Errorf("case %d accepted: %+v", i, top)
		}
	}
	good := Topology{
		Bonds:  []Bond{{I: 0, J: 1, K: 100, R0: 1}},
		Angles: []Angle{{I: 0, J: 1, K2: 2, K: 50, Theta0: math.Pi}},
	}
	if err := good.Validate(3); err != nil {
		t.Fatalf("valid topology rejected: %v", err)
	}
}

// bondedForcesAoS adapts the AoS test fixtures to the SoA kernel:
// scatter in, run, gather the forces back out.
func bondedForcesAoS(top *Topology, box float64, pos, acc []vec.V3[float64]) (float64, error) {
	ps := CoordsFromV3(pos)
	as := CoordsFromV3(acc)
	pe, err := BondedForces(top, box, ps, as)
	copy(acc, as.V3s())
	return pe, err
}

func TestBondForceAtEquilibriumIsZero(t *testing.T) {
	top := &Topology{Bonds: []Bond{{I: 0, J: 1, K: 100, R0: 1.5}}}
	pos := []vec.V3[float64]{{X: 1, Y: 1, Z: 1}, {X: 2.5, Y: 1, Z: 1}}
	acc := make([]vec.V3[float64], 2)
	pe, err := bondedForcesAoS(top, 20, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	if pe != 0 {
		t.Fatalf("PE at equilibrium = %v", pe)
	}
	if acc[0].Norm() > 1e-12 || acc[1].Norm() > 1e-12 {
		t.Fatalf("forces at equilibrium: %+v %+v", acc[0], acc[1])
	}
}

func TestBondForceDirection(t *testing.T) {
	// Stretched bond pulls the atoms together.
	top := &Topology{Bonds: []Bond{{I: 0, J: 1, K: 100, R0: 1.0}}}
	pos := []vec.V3[float64]{{X: 1, Y: 1, Z: 1}, {X: 3, Y: 1, Z: 1}}
	acc := make([]vec.V3[float64], 2)
	if _, err := bondedForcesAoS(top, 20, pos, acc); err != nil {
		t.Fatal(err)
	}
	if acc[0].X <= 0 || acc[1].X >= 0 {
		t.Fatalf("stretched bond pushes apart: %+v %+v", acc[0], acc[1])
	}
	// Compressed bond pushes apart.
	pos[1].X = 1.5
	acc[0], acc[1] = vec.V3[float64]{}, vec.V3[float64]{}
	if _, err := bondedForcesAoS(top, 20, pos, acc); err != nil {
		t.Fatal(err)
	}
	if acc[0].X >= 0 || acc[1].X <= 0 {
		t.Fatalf("compressed bond pulls together: %+v %+v", acc[0], acc[1])
	}
}

func TestBondedNewtonThirdLaw(t *testing.T) {
	top := &Topology{
		Bonds:  []Bond{{I: 0, J: 1, K: 80, R0: 1.1}, {I: 1, J: 2, K: 80, R0: 1.1}},
		Angles: []Angle{{I: 0, J: 1, K2: 2, K: 30, Theta0: 1.9}},
	}
	pos := []vec.V3[float64]{
		{X: 1, Y: 1, Z: 1},
		{X: 2.2, Y: 1.1, Z: 0.9},
		{X: 2.9, Y: 2.0, Z: 1.3},
	}
	acc := make([]vec.V3[float64], 3)
	if _, err := bondedForcesAoS(top, 20, pos, acc); err != nil {
		t.Fatal(err)
	}
	var net vec.V3[float64]
	for _, a := range acc {
		net = net.Add(a)
	}
	if net.Norm() > 1e-10 {
		t.Fatalf("net bonded force %v", net)
	}
}

// TestBondedForceIsNegativeGradient checks every force component
// against a central-difference derivative of the bonded energy.
func TestBondedForceIsNegativeGradient(t *testing.T) {
	top := &Topology{
		Bonds:  []Bond{{I: 0, J: 1, K: 80, R0: 1.1}, {I: 1, J: 2, K: 60, R0: 1.3}},
		Angles: []Angle{{I: 0, J: 1, K2: 2, K: 25, Theta0: 2.0}},
	}
	base := []vec.V3[float64]{
		{X: 5, Y: 5, Z: 5},
		{X: 6.1, Y: 5.2, Z: 4.9},
		{X: 6.8, Y: 6.2, Z: 5.4},
	}
	const box = 20.0
	energy := func(pos []vec.V3[float64]) float64 {
		acc := make([]vec.V3[float64], len(pos))
		pe, err := bondedForcesAoS(top, box, pos, acc)
		if err != nil {
			t.Fatal(err)
		}
		return pe
	}
	acc := make([]vec.V3[float64], len(base))
	if _, err := bondedForcesAoS(top, box, base, acc); err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for atom := 0; atom < len(base); atom++ {
		for c := 0; c < 3; c++ {
			perturb := func(delta float64) float64 {
				pos := append([]vec.V3[float64](nil), base...)
				switch c {
				case 0:
					pos[atom].X += delta
				case 1:
					pos[atom].Y += delta
				case 2:
					pos[atom].Z += delta
				}
				return energy(pos)
			}
			grad := (perturb(h) - perturb(-h)) / (2 * h)
			var got float64
			switch c {
			case 0:
				got = acc[atom].X
			case 1:
				got = acc[atom].Y
			case 2:
				got = acc[atom].Z
			}
			if math.Abs(got+grad) > 1e-4*(1+math.Abs(grad)) {
				t.Fatalf("atom %d comp %d: force %v, -dE/dx %v", atom, c, got, -grad)
			}
		}
	}
}

func TestBondAcrossPeriodicBoundary(t *testing.T) {
	// A bond straddling the boundary must see the short distance.
	top := &Topology{Bonds: []Bond{{I: 0, J: 1, K: 100, R0: 1.0}}}
	pos := []vec.V3[float64]{{X: 0.4, Y: 5, Z: 5}, {X: 9.6, Y: 5, Z: 5}} // 0.8 apart via boundary
	acc := make([]vec.V3[float64], 2)
	pe, err := bondedForcesAoS(top, 10, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	want := 100 * (0.8 - 1.0) * (0.8 - 1.0)
	if math.Abs(pe-want) > 1e-12 {
		t.Fatalf("PE = %v, want %v", pe, want)
	}
}

func TestBondCoincidentAtomsError(t *testing.T) {
	top := &Topology{Bonds: []Bond{{I: 0, J: 1, K: 1, R0: 1}}}
	pos := []vec.V3[float64]{{X: 1, Y: 1, Z: 1}, {X: 1, Y: 1, Z: 1}}
	acc := make([]vec.V3[float64], 2)
	if _, err := bondedForcesAoS(top, 10, pos, acc); err == nil {
		t.Fatal("coincident bonded atoms accepted")
	}
}

func TestAngleEquilibrium(t *testing.T) {
	// A 90-degree angle at its equilibrium: zero energy and force.
	top := &Topology{Angles: []Angle{{I: 0, J: 1, K2: 2, K: 40, Theta0: math.Pi / 2}}}
	pos := []vec.V3[float64]{
		{X: 2, Y: 1, Z: 1},
		{X: 1, Y: 1, Z: 1}, // vertex
		{X: 1, Y: 2, Z: 1},
	}
	acc := make([]vec.V3[float64], 3)
	pe, err := bondedForcesAoS(top, 20, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pe) > 1e-12 {
		t.Fatalf("PE = %v", pe)
	}
	for i, a := range acc {
		if a.Norm() > 1e-10 {
			t.Fatalf("force on atom %d at equilibrium: %+v", i, a)
		}
	}
}

func TestCollinearAngleNoNaN(t *testing.T) {
	top := &Topology{Angles: []Angle{{I: 0, J: 1, K2: 2, K: 40, Theta0: 2.0}}}
	pos := []vec.V3[float64]{
		{X: 1, Y: 1, Z: 1},
		{X: 2, Y: 1, Z: 1},
		{X: 3, Y: 1, Z: 1}, // perfectly collinear: theta = pi
	}
	acc := make([]vec.V3[float64], 3)
	pe, err := bondedForcesAoS(top, 20, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(pe) {
		t.Fatal("NaN energy for collinear angle")
	}
	for i, a := range acc {
		if math.IsNaN(a.X) || math.IsNaN(a.Y) || math.IsNaN(a.Z) {
			t.Fatalf("NaN force on atom %d", i)
		}
	}
}

func TestLinearChainTopology(t *testing.T) {
	top := LinearChain(5, 100, 1.2)
	if len(top.Bonds) != 4 {
		t.Fatalf("%d bonds for 5-atom chain", len(top.Bonds))
	}
	if err := top.Validate(5); err != nil {
		t.Fatal(err)
	}
	for i, b := range top.Bonds {
		if b.I != i || b.J != i+1 || b.K != 100 || b.R0 != 1.2 {
			t.Fatalf("bond %d = %+v", i, b)
		}
	}
}

func TestBondEnergyConservationInDynamics(t *testing.T) {
	// A diatomic molecule oscillating in a big empty box conserves
	// bonded + kinetic energy under velocity Verlet.
	top := &Topology{Bonds: []Bond{{I: 0, J: 1, K: 50, R0: 1.0}}}
	const box = 50.0
	pos := []vec.V3[float64]{{X: 25, Y: 25, Z: 25}, {X: 26.3, Y: 25, Z: 25}} // stretched
	vel := []vec.V3[float64]{{}, {}}
	acc := make([]vec.V3[float64], 2)
	pe, err := bondedForcesAoS(top, box, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	const dt = 0.001
	e0 := pe + 0.5*(vel[0].Norm2()+vel[1].Norm2())
	for step := 0; step < 5000; step++ {
		for i := range vel {
			vel[i] = vel[i].MulAdd(dt/2, acc[i])
			pos[i] = Wrap(pos[i].MulAdd(dt, vel[i]), box)
		}
		acc[0], acc[1] = vec.V3[float64]{}, vec.V3[float64]{}
		pe, err = bondedForcesAoS(top, box, pos, acc)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vel {
			vel[i] = vel[i].MulAdd(dt/2, acc[i])
		}
	}
	e1 := pe + 0.5*(vel[0].Norm2()+vel[1].Norm2())
	if math.Abs(e1-e0) > 1e-4*math.Abs(e0) {
		t.Fatalf("bonded energy drift: %v -> %v", e0, e1)
	}
}
