package md

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// jitteredSystem builds a lattice with random displacements — a
// strained configuration minimization should relax.
func jitteredSystem(t *testing.T, n int, jitter float64) *System[float64] {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0, Kind: lattice.FCC, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	for i := range st.Pos {
		st.Pos[i] = st.Pos[i].Add(vec.V3[float64]{
			X: jitter * (rng.Float64() - 0.5),
			Y: jitter * (rng.Float64() - 0.5),
			Z: jitter * (rng.Float64() - 0.5),
		})
	}
	p := Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
	if 2*p.Cutoff > p.Box {
		p.Cutoff = p.Box / 2 * 0.99
	}
	s, err := NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMinimizeLowersEnergy(t *testing.T) {
	s := jitteredSystem(t, 256, 0.25)
	res, err := Minimize(s, 500, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalPE >= res.InitialPE {
		t.Fatalf("PE did not drop: %v -> %v", res.InitialPE, res.FinalPE)
	}
	if res.Steps == 0 {
		t.Fatal("no descent steps taken")
	}
	// The relaxed configuration must be consistent: re-evaluating forces
	// reproduces the recorded PE.
	if pe := ComputeForces(s.P, s.Pos, s.Acc); pe != res.FinalPE {
		t.Fatalf("system PE %v inconsistent with result %v", pe, res.FinalPE)
	}
}

func TestMinimizeConvergesOnPerfectLattice(t *testing.T) {
	// An unperturbed FCC lattice at this density is already near a local
	// minimum: forces are tiny by symmetry and minimization converges
	// almost immediately.
	s := jitteredSystem(t, 256, 0)
	res, err := Minimize(s, 200, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("perfect lattice did not converge: max force %v after %d steps",
			res.MaxForce, res.Steps)
	}
	if res.Steps != 0 {
		t.Fatalf("perfect lattice took %d steps", res.Steps)
	}
}

func TestMinimizeReducesMaxForce(t *testing.T) {
	s := jitteredSystem(t, 108, 0.2)
	before := maxForceComponent(s.Acc)
	res, err := Minimize(s, 300, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxForce >= before {
		t.Fatalf("max force did not shrink: %v -> %v", before, res.MaxForce)
	}
}

func TestMinimizeMakesDynamicsStable(t *testing.T) {
	// The framework use case: a strained start integrates badly; after
	// minimization the same system conserves energy.
	s := jitteredSystem(t, 108, 0.3)
	if _, err := Minimize(s, 500, 1e-2); err != nil {
		t.Fatal(err)
	}
	sp := s.P
	sp.Shifted = true
	s.P = sp
	s.PE = ComputeForces(s.P, s.Pos, s.Acc)
	e0 := s.TotalEnergy()
	s.Run(100)
	drift := s.TotalEnergy() - e0
	if drift < 0 {
		drift = -drift
	}
	rel := drift / (1 + abs64(e0))
	if rel > 1e-2 {
		t.Fatalf("post-minimization dynamics drifted by %v", rel)
	}
}

func abs64(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestMinimizeValidation(t *testing.T) {
	s := jitteredSystem(t, 32, 0.1)
	if _, err := Minimize(s, -1, 1e-3); err == nil {
		t.Fatal("negative steps accepted")
	}
	if _, err := Minimize(s, 10, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
}

func TestMinimizeZeroSteps(t *testing.T) {
	s := jitteredSystem(t, 32, 0.1)
	res, err := Minimize(s, 0, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 || res.InitialPE != res.FinalPE {
		t.Fatalf("zero-step minimization did work: %+v", res)
	}
}

func TestDiffusionCoefficient(t *testing.T) {
	d, err := DiffusionCoefficient(6.0, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1.0 {
		t.Fatalf("D = %v, want 1", d)
	}
	if _, err := DiffusionCoefficient(1, 0); err == nil {
		t.Fatal("zero time accepted")
	}
	if _, err := DiffusionCoefficient(-1, 1); err == nil {
		t.Fatal("negative MSD accepted")
	}
}
