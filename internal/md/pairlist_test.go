package md

import (
	"math"
	"testing"

	"repro/internal/vec"
)

func TestNeighborListRejectsBadSkin(t *testing.T) {
	if _, err := NewNeighborList[float64](0); err == nil {
		t.Fatal("accepted zero skin")
	}
	if _, err := NewNeighborList[float64](-0.5); err == nil {
		t.Fatal("accepted negative skin")
	}
}

func TestNeighborListMatchesReference(t *testing.T) {
	s := makeSystem(t, 108, false)
	nl, err := NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	accRef := MakeCoords[float64](s.N())
	accNL := MakeCoords[float64](s.N())
	peRef := ComputeForces(s.P, s.Pos, accRef)
	peNL := nl.Forces(s.P, s.Pos, accNL)
	if math.Abs(peRef-peNL) > 1e-10*(1+math.Abs(peRef)) {
		t.Fatalf("PE mismatch: ref %v, pairlist %v", peRef, peNL)
	}
	for i := 0; i < accRef.Len(); i++ {
		if accRef.At(i).Sub(accNL.At(i)).Norm() > 1e-9*(1+accRef.At(i).Norm()) {
			t.Fatalf("acc mismatch at %d: %+v vs %+v", i, accRef.At(i), accNL.At(i))
		}
	}
}

func TestNeighborListTrajectoryMatches(t *testing.T) {
	// Integrating with the pairlist must reproduce the reference
	// trajectory (the list only skips provably non-interacting pairs).
	ref := makeSystem(t, 64, false)
	opt := ref.Clone()
	nl, err := NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 50
	for i := 0; i < steps; i++ {
		ref.Step()
		opt.StepWith(func() float64 { return nl.Forces(opt.P, opt.Pos, opt.Acc) })
	}
	for i := 0; i < ref.N(); i++ {
		if d := ref.Pos.At(i).Sub(opt.Pos.At(i)).Norm(); d > 1e-9 {
			t.Fatalf("trajectories diverged at atom %d by %v", i, d)
		}
	}
	if nl.Builds() >= nl.Queries() {
		t.Fatalf("pairlist rebuilt on every query (%d builds / %d queries); skin logic broken",
			nl.Builds(), nl.Queries())
	}
}

func TestNeighborListStaleness(t *testing.T) {
	s := makeSystem(t, 32, false)
	nl, err := NewNeighborList[float64](0.5)
	if err != nil {
		t.Fatal(err)
	}
	nl.Build(s.P, s.Pos)
	if nl.Stale(s.P, s.Pos) {
		t.Fatal("fresh list reported stale")
	}
	// Move one atom just under the threshold: still fresh.
	moved := MakeCoords[float64](s.N())
	moved.CopyFrom(s.Pos)
	moved.Set(3, Wrap(moved.At(3).Add(vec.V3[float64]{X: 0.24}), s.P.Box))
	if nl.Stale(s.P, moved) {
		t.Fatal("list stale after sub-threshold move")
	}
	// Past skin/2: stale.
	moved.Set(3, Wrap(s.Pos.At(3).Add(vec.V3[float64]{X: 0.26}), s.P.Box))
	if !nl.Stale(s.P, moved) {
		t.Fatal("list not stale after super-threshold move")
	}
}

func TestNeighborListStaleOnResize(t *testing.T) {
	s := makeSystem(t, 32, false)
	nl, err := NewNeighborList[float64](0.5)
	if err != nil {
		t.Fatal(err)
	}
	nl.Build(s.P, s.Pos)
	half := Coords[float64]{X: s.Pos.X[:16], Y: s.Pos.Y[:16], Z: s.Pos.Z[:16]}
	if !nl.Stale(s.P, half) {
		t.Fatal("list not stale after atom-count change")
	}
}

func TestNeighborListPairCount(t *testing.T) {
	s := makeSystem(t, 108, false)
	nl, err := NewNeighborList[float64](0.3)
	if err != nil {
		t.Fatal(err)
	}
	nl.Build(s.P, s.Pos)
	full := s.N() * (s.N() - 1) / 2
	got := nl.PairCount()
	if got <= 0 || got >= full {
		t.Fatalf("pair count %d not in (0, %d); list prunes nothing", got, full)
	}
}
