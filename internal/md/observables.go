package md

import (
	"fmt"

	"repro/internal/vec"
)

// Observables: the analysis quantities a downstream user of a
// bio-molecular framework actually wants from a trajectory — radial
// distribution function, mean-square displacement, and the virial
// pressure. All operate in float64 (analysis precision) regardless of
// the simulation precision.

// RDF accumulates the radial distribution function g(r) from snapshots.
type RDF struct {
	box    float64
	rMax   float64
	bins   []int64
	frames int
	atoms  int
}

// NewRDF builds an accumulator with the given bin count up to rMax
// (which must respect the minimum-image limit box/2).
func NewRDF(box, rMax float64, bins int) (*RDF, error) {
	if box <= 0 || rMax <= 0 || bins <= 0 {
		return nil, fmt.Errorf("md: RDF needs positive box, rMax, bins")
	}
	if rMax > box/2 {
		return nil, fmt.Errorf("md: RDF rMax %v exceeds half the box %v", rMax, box/2)
	}
	return &RDF{box: box, rMax: rMax, bins: make([]int64, bins)}, nil
}

// Accumulate adds one snapshot (O(N²)).
func (r *RDF) Accumulate(pos Coords[float64]) {
	n := pos.Len()
	dr := r.rMax / float64(len(r.bins))
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := MinImage(pos.At(i).Sub(pos.At(j)), r.box)
			dist := d.Norm()
			if dist < r.rMax {
				r.bins[int(dist/dr)] += 2 // both orderings
			}
		}
	}
	r.frames++
	r.atoms = n
}

// Frames returns the number of accumulated snapshots.
func (r *RDF) Frames() int { return r.frames }

// Result returns the bin centers and the normalized g(r): counts
// divided by the ideal-gas expectation for each shell.
func (r *RDF) Result() (centers, g []float64) {
	nb := len(r.bins)
	centers = make([]float64, nb)
	g = make([]float64, nb)
	if r.frames == 0 || r.atoms == 0 {
		return centers, g
	}
	dr := r.rMax / float64(nb)
	vol := r.box * r.box * r.box
	density := float64(r.atoms) / vol
	for b := 0; b < nb; b++ {
		rLo := float64(b) * dr
		rHi := rLo + dr
		centers[b] = (rLo + rHi) / 2
		shellVol := 4 * pi / 3 * (rHi*rHi*rHi - rLo*rLo*rLo)
		ideal := density * shellVol * float64(r.atoms) * float64(r.frames)
		if ideal > 0 {
			g[b] = float64(r.bins[b]) / ideal
		}
	}
	return centers, g
}

const pi = 3.141592653589793

// MSD tracks mean-square displacement from a reference configuration,
// using unwrapped trajectories: Track must be fed every step so that
// boundary crossings can be counted.
type MSD struct {
	box     float64
	origin  []vec.V3[float64]
	prev    []vec.V3[float64]
	images  []vec.V3[float64] // accumulated box crossings per atom
	tracked int
}

// NewMSD starts tracking from the given configuration.
func NewMSD(box float64, pos Coords[float64]) *MSD {
	m := &MSD{
		box:    box,
		origin: pos.V3s(),
		prev:   pos.V3s(),
		images: make([]vec.V3[float64], pos.Len()),
	}
	return m
}

// Track records the next wrapped snapshot, inferring boundary
// crossings from per-step displacements (valid while no atom moves
// more than half a box per step — guaranteed at sane time steps).
func (m *MSD) Track(pos Coords[float64]) error {
	if pos.Len() != len(m.prev) {
		return fmt.Errorf("md: MSD fed %d atoms, tracking %d", pos.Len(), len(m.prev))
	}
	for i := range m.prev {
		p := pos.At(i)
		d := p.Sub(m.prev[i])
		m.images[i] = m.images[i].Add(crossings(d, m.box))
		m.prev[i] = p
	}
	m.tracked++
	return nil
}

// crossings counts the box crossings implied by a wrapped displacement.
func crossings(d vec.V3[float64], box float64) vec.V3[float64] {
	h := box / 2
	var c vec.V3[float64]
	if d.X > h {
		c.X = -1
	} else if d.X < -h {
		c.X = 1
	}
	if d.Y > h {
		c.Y = -1
	} else if d.Y < -h {
		c.Y = 1
	}
	if d.Z > h {
		c.Z = -1
	} else if d.Z < -h {
		c.Z = 1
	}
	return c
}

// Value returns the current mean-square displacement.
func (m *MSD) Value() float64 {
	var sum float64
	for i := range m.prev {
		unwrapped := m.prev[i].Add(m.images[i].Scale(m.box))
		sum += unwrapped.Sub(m.origin[i]).Norm2()
	}
	return sum / float64(len(m.prev))
}

// Virial computes the instantaneous virial sum W = Σ_pairs f·r and the
// corresponding pressure P = (N k T + W/3) / V for the LJ system.
func Virial(p Params[float64], pos Coords[float64]) float64 {
	rc2 := p.Cutoff * p.Cutoff
	var w float64
	n := pos.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := MinImage(pos.At(i).Sub(pos.At(j)), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			_, f := LJPair(p, r2)
			w += f * r2 // f*(r vector)·(r vector) = f*r²
		}
	}
	return w
}

// Pressure returns the instantaneous pressure from the virial theorem
// (unit masses, k_B = 1).
func Pressure(p Params[float64], pos Coords[float64], temperature float64) float64 {
	vol := p.Box * p.Box * p.Box
	n := float64(pos.Len())
	return (n*temperature + Virial(p, pos)/3) / vol
}

// VACF accumulates the velocity autocorrelation function
// C(τ) = ⟨v(t)·v(t+τ)⟩ / ⟨v·v⟩ over a window of lags — the observable
// behind vibrational spectra and the Green-Kubo diffusion coefficient.
// Feed it every step with Track; Result returns the normalized
// correlation per lag.
type VACF struct {
	lags int
	ring [][]vec.V3[float64] // last `lags` velocity snapshots
	head int                 // next slot to overwrite
	seen int                 // snapshots tracked so far

	corr    []float64 // corr[l] = sum over samples of v(t)·v(t-l)
	samples []int64
}

// NewVACF builds an accumulator covering lags 0..maxLag-1.
func NewVACF(maxLag int) (*VACF, error) {
	if maxLag < 1 {
		return nil, fmt.Errorf("md: VACF needs at least one lag, got %d", maxLag)
	}
	return &VACF{
		lags:    maxLag,
		ring:    make([][]vec.V3[float64], maxLag),
		corr:    make([]float64, maxLag),
		samples: make([]int64, maxLag),
	}, nil
}

// Track records one velocity snapshot and accumulates all currently
// available lags.
func (v *VACF) Track(vel Coords[float64]) error {
	if v.seen > 0 && v.ring[(v.head+v.lags-1)%v.lags] != nil &&
		len(v.ring[(v.head+v.lags-1)%v.lags]) != vel.Len() {
		return fmt.Errorf("md: VACF fed %d atoms, tracking %d",
			vel.Len(), len(v.ring[(v.head+v.lags-1)%v.lags]))
	}
	snap := vel.V3s()
	v.ring[v.head] = snap
	v.head = (v.head + 1) % v.lags
	v.seen++

	avail := v.seen
	if avail > v.lags {
		avail = v.lags
	}
	for lag := 0; lag < avail; lag++ {
		idx := (v.head - 1 - lag + 2*v.lags) % v.lags
		old := v.ring[idx]
		var dot float64
		for i := range snap {
			dot += snap[i].Dot(old[i])
		}
		v.corr[lag] += dot / float64(len(snap))
		v.samples[lag]++
	}
	return nil
}

// Result returns C(τ) for τ = 0..maxLag-1, normalized so C(0) = 1.
// Lags never sampled are zero.
func (v *VACF) Result() []float64 {
	out := make([]float64, v.lags)
	if v.samples[0] == 0 {
		return out
	}
	c0 := v.corr[0] / float64(v.samples[0])
	if c0 == 0 {
		return out
	}
	for lag := range out {
		if v.samples[lag] > 0 {
			out[lag] = (v.corr[lag] / float64(v.samples[lag])) / c0
		}
	}
	return out
}
