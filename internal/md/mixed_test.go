package md

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
)

// randomizedBox builds a thermalized state: a seeded lattice with a
// small deterministic jitter, equilibrated for a few dozen float64
// steps so the positions carry a liquid-like force distribution
// instead of the near-cancelling forces of a perfect crystal. These
// are the "randomized periodic boxes" the mixed-precision error pin
// runs on; varying the seed varies the whole trajectory.
func randomizedBox(t *testing.T, n int, seed uint64) (Coords[float64], Params[float64]) {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(seed * 7919)))
	for i := range st.Pos {
		st.Pos[i].X += 0.02 * (rng.Float64() - 0.5)
		st.Pos[i].Y += 0.02 * (rng.Float64() - 0.5)
		st.Pos[i].Z += 0.02 * (rng.Float64() - 0.5)
	}
	p := Params[float64]{Box: st.Box, Cutoff: 2.0, Dt: 0.004, Shifted: true}
	sys, err := NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(50)
	return sys.Pos, p
}

// forceScale returns the largest force-component magnitude in the
// box, the regularizer for the per-component relative-error pin:
// where a component is significant the error is measured relative to
// it, and where opposing steep pairs cancel a component toward zero
// it is measured against the strongest force present instead of
// exploding to 0/0 (the usual force-error normalization in MD).
func forceScale(acc Coords[float64]) float64 {
	var m float64
	for _, a := range acc.V3s() {
		m = math.Max(m, math.Max(math.Abs(a.X), math.Max(math.Abs(a.Y), math.Abs(a.Z))))
	}
	return m
}

func maxRelErr(f32acc Coords[float64], oracle Coords[float64], scale float64) float64 {
	worst := 0.0
	rel := func(got, want float64) float64 {
		return math.Abs(got-want) / math.Max(math.Abs(want), scale)
	}
	for i := 0; i < oracle.Len(); i++ {
		worst = math.Max(worst, rel(f32acc.X[i], oracle.X[i]))
		worst = math.Max(worst, rel(f32acc.Y[i], oracle.Y[i]))
		worst = math.Max(worst, rel(f32acc.Z[i], oracle.Z[i]))
	}
	return worst
}

// TestForcesPairlistMixedMatchesFloat64Oracle is the tentpole error
// pin: float32 pair geometry with float64 accumulation must land
// within 1e-5 per-component relative error of the all-float64 Verlet
// kernel on randomized boxes, and the potential energy within 1e-5
// relative. float32 carries 2^-24 ≈ 6e-8 per pair, so 1e-5 over ~50
// neighbors leaves real margin without tolerating a precision bug.
func TestForcesPairlistMixedMatchesFloat64Oracle(t *testing.T) {
	for _, seed := range []uint64{3, 17, 99} {
		pos, p := randomizedBox(t, 256, seed)
		n := pos.Len()

		nl64, err := NewNeighborList[float64](0.4)
		if err != nil {
			t.Fatal(err)
		}
		oracle := MakeCoords[float64](n)
		pe64 := nl64.Forces(p, pos, oracle)

		mx, err := NewMirror32(p)
		if err != nil {
			t.Fatal(err)
		}
		mx.Refresh(pos)
		nl32, err := NewNeighborList[float32](0.4)
		if err != nil {
			t.Fatal(err)
		}
		acc := MakeCoords[float64](n)
		pe32 := ForcesPairlistMixed(nl32, mx.P, mx.Pos, acc)

		worst := maxRelErr(acc, oracle, forceScale(oracle))
		t.Logf("seed %d: worst per-component relative force error %.3g", seed, worst)
		if worst > 1e-5 {
			t.Errorf("seed %d: worst per-component relative force error %v > 1e-5", seed, worst)
		}
		if rel := math.Abs(pe32-pe64) / math.Abs(pe64); rel > 1e-5 {
			t.Errorf("seed %d: PE relative error %v > 1e-5 (f32 %v, f64 %v)", seed, rel, pe32, pe64)
		}
	}
}

// TestForcesCellMixedMatchesFloat64Oracle: same pin for the
// linked-cell mixed kernel against the all-float64 cell kernel.
func TestForcesCellMixedMatchesFloat64Oracle(t *testing.T) {
	for _, seed := range []uint64{5, 42} {
		pos, p := randomizedBox(t, 256, seed)
		n := pos.Len()

		cl64, err := NewCellList(p.Box, p.Cutoff)
		if err != nil {
			t.Fatal(err)
		}
		oracle := MakeCoords[float64](n)
		pe64 := cl64.Forces(p, pos, oracle)

		mx, err := NewMirror32(p)
		if err != nil {
			t.Fatal(err)
		}
		mx.Refresh(pos)
		cl32, err := NewCellList(mx.P.Box, mx.P.Cutoff)
		if err != nil {
			t.Fatal(err)
		}
		acc := MakeCoords[float64](n)
		pe32 := ForcesCellMixed(cl32, mx.P, mx.Pos, acc)

		worst := maxRelErr(acc, oracle, forceScale(oracle))
		t.Logf("seed %d: worst per-component relative force error %.3g", seed, worst)
		if worst > 1e-5 {
			t.Errorf("seed %d: worst per-component relative force error %v > 1e-5", seed, worst)
		}
		if rel := math.Abs(pe32-pe64) / math.Abs(pe64); rel > 1e-5 {
			t.Errorf("seed %d: PE relative error %v > 1e-5", seed, rel)
		}
	}
}

// TestMixedKernelsAgree: the pairlist and cell mixed kernels evaluate
// the identical float32 pair terms, differing only in float64
// summation order, so they must agree to f64 roundoff — far tighter
// than the 1e-5 oracle bound.
func TestMixedKernelsAgree(t *testing.T) {
	pos, p := randomizedBox(t, 256, 8)
	mx, err := NewMirror32(p)
	if err != nil {
		t.Fatal(err)
	}
	mx.Refresh(pos)
	// The skinned list carries pairs beyond the cutoff, but both
	// kernels cull at the same float32 rc², so the evaluated term sets
	// are identical and only the summation order differs.
	nl, err := NewNeighborList[float32](0.3)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCellList(mx.P.Box, mx.P.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	n := pos.Len()
	accNL := MakeCoords[float64](n)
	accCL := MakeCoords[float64](n)
	peNL := ForcesPairlistMixed(nl, mx.P, mx.Pos, accNL)
	peCL := ForcesCellMixed(cl, mx.P, mx.Pos, accCL)
	if rel := math.Abs(peNL-peCL) / math.Abs(peNL); rel > 1e-12 {
		t.Fatalf("mixed kernels disagree on PE: %v vs %v (rel %v)", peNL, peCL, rel)
	}
	for i := 0; i < n; i++ {
		d := accNL.At(i).Sub(accCL.At(i)).Norm()
		if d > 1e-10 {
			t.Fatalf("atom %d: mixed kernels disagree on force by %v", i, d)
		}
	}
}

// TestNewMirror32RejectsNarrowingInvalidParams: a box/cutoff pair
// valid in float64 can round to 2*Cutoff > Box in float32 (cutoff
// rounds up, box rounds down). The mirror must refuse at construction
// rather than run with an ambiguous minimum image.
func TestNewMirror32RejectsNarrowingInvalidParams(t *testing.T) {
	// In float32's normal range narrowing cannot break 2*Cutoff <= Box:
	// doubling is exact and rounding is monotone, so round(2c) =
	// 2*round(c) <= round(b). The subnormal grid has fixed absolute
	// spacing, though, so there 2*round(c) can overshoot round(b):
	// cutoff 0.6*2^-149 rounds up to 2^-149 while box 1.2*2^-149
	// rounds down to 2^-149, leaving 2*Cutoff = 2^-148 > Box. Also
	// cover the blunter hazard: a tiny box that underflows to zero.
	cases := []Params[float64]{
		{Cutoff: 0.6 * math.Pow(2, -149), Box: 1.2 * math.Pow(2, -149), Dt: 0.004},
		{Cutoff: 2.5e-47, Box: 1e-46, Dt: 0.004},
	}
	for i, p := range cases {
		if err := p.Validate(); err != nil {
			t.Fatalf("case %d: float64 params unexpectedly invalid: %v", i, err)
		}
		if err := NarrowParams(p).Validate(); err == nil {
			t.Fatalf("case %d: narrowed params unexpectedly valid; test premise broken", i)
		}
		if _, err := NewMirror32(p); err == nil {
			t.Fatalf("case %d: NewMirror32 accepted params that are invalid at float32", i)
		}
	}
	// And a plainly valid set must pass.
	if _, err := NewMirror32(Params[float64]{Box: 10, Cutoff: 2.5, Dt: 0.004}); err != nil {
		t.Fatalf("NewMirror32 rejected valid params: %v", err)
	}
}

// TestMirror32RefreshTracksMaster: Refresh must narrow every master
// position with correct rounding and reuse its buffer across calls.
func TestMirror32RefreshTracksMaster(t *testing.T) {
	pos, p := randomizedBox(t, 108, 13)
	mx, err := NewMirror32(p)
	if err != nil {
		t.Fatal(err)
	}
	mx.Refresh(pos)
	for i := 0; i < mx.Pos.Len(); i++ {
		want := vec.FromV3f64[float32](pos.At(i))
		if mx.Pos.At(i) != want {
			t.Fatalf("mirror position %d = %+v, want %+v", i, mx.Pos.At(i), want)
		}
	}
	first := &mx.Pos.X[0]
	pos.X[0] += 0.25
	mx.Refresh(pos)
	if &mx.Pos.X[0] != first {
		t.Fatal("Refresh reallocated for an unchanged atom count")
	}
	if mx.Pos.At(0) != vec.FromV3f64[float32](pos.At(0)) {
		t.Fatal("Refresh did not pick up the moved atom")
	}
}

// TestMirror32RefreshSystemCountsDirtyRows pins the incremental
// refresh to the row granularity it promises: a mirror driven through
// RefreshSystem narrows exactly the rows the master dirtied — all N on
// first sync, zero when nothing moved, one for a single poked atom,
// N again after a step (which rewrites every position) — and the
// mirror stays bitwise identical to a full Refresh throughout.
func TestMirror32RefreshSystemCountsDirtyRows(t *testing.T) {
	s := makeSystem(t, 64, false)
	n := int64(s.N())
	mx, err := NewMirror32(s.P)
	if err != nil {
		t.Fatal(err)
	}

	mx.RefreshSystem(s)
	if got := mx.RowsNarrowed(); got != n {
		t.Fatalf("first refresh narrowed %d rows, want all %d", got, n)
	}
	mx.RefreshSystem(s)
	if got := mx.RowsNarrowed(); got != n {
		t.Fatalf("idle refresh narrowed %d extra rows, want 0", got-n)
	}

	s.Pos.Set(17, Wrap(s.Pos.At(17).Add(vec.V3[float64]{X: 0.125}), s.P.Box))
	s.MarkPosDirty(17, 18)
	mx.RefreshSystem(s)
	if got := mx.RowsNarrowed(); got != n+1 {
		t.Fatalf("single-atom refresh narrowed %d rows, want 1", got-n)
	}

	s.Step()
	mx.RefreshSystem(s)
	if got := mx.RowsNarrowed(); got != 2*n+1 {
		t.Fatalf("post-step refresh narrowed %d rows, want %d", got-(n+1), n)
	}

	full, err := NewMirror32(s.P)
	if err != nil {
		t.Fatal(err)
	}
	full.Refresh(s.Pos)
	for i := 0; i < s.N(); i++ {
		if mx.Pos.At(i) != full.Pos.At(i) {
			t.Fatalf("incremental mirror diverged from full refresh at atom %d: %+v vs %+v",
				i, mx.Pos.At(i), full.Pos.At(i))
		}
	}
}

// TestFullRowsExpandsHalfList: the gather expansion must hold, for
// every atom, exactly the union of its half-list rows (as neighbor)
// and entries (as owner), in strictly ascending order, with every
// unordered pair appearing exactly twice.
func TestFullRowsExpandsHalfList(t *testing.T) {
	pos, p64 := randomizedBox(t, 200, 21)
	mx, err := NewMirror32(p64)
	if err != nil {
		t.Fatal(err)
	}
	mx.Refresh(pos)
	nl, err := NewNeighborList[float32](0.4)
	if err != nil {
		t.Fatal(err)
	}
	nl.Build(mx.P, mx.Pos)

	var fr FullRows[float32]
	fr.Sync(nl)

	n := pos.Len()
	want := make([][]int32, n)
	for i, js := range nl.pairs {
		for _, j := range js {
			if int32(i) >= j {
				t.Fatalf("half list violated: row %d holds %d", i, j)
			}
			want[i] = append(want[i], j)
			want[j] = append(want[j], int32(i))
		}
	}
	total := 0
	for i := 0; i < n; i++ {
		row := fr.Row(i)
		total += len(row)
		if !sort.SliceIsSorted(row, func(a, b int) bool { return row[a] < row[b] }) {
			t.Fatalf("full row %d is not ascending: %v", i, row)
		}
		sort.Slice(want[i], func(a, b int) bool { return want[i][a] < want[i][b] })
		if len(row) != len(want[i]) {
			t.Fatalf("row %d has %d neighbors, want %d", i, len(row), len(want[i]))
		}
		for k := range row {
			if row[k] != want[i][k] {
				t.Fatalf("row %d entry %d = %d, want %d", i, k, row[k], want[i][k])
			}
		}
	}
	if total%2 != 0 {
		t.Fatalf("full expansion holds %d entries; every pair must appear twice", total)
	}

	// Sync with no rebuild must be a no-op (same backing rows).
	r0 := &fr.Row(0)[0]
	fr.Sync(nl)
	if &fr.Row(0)[0] != r0 {
		t.Fatal("Sync rebuilt the expansion without a list rebuild")
	}
	// After a forced rebuild, Sync must refresh.
	builds := nl.Builds()
	nl.Build(mx.P, mx.Pos)
	if nl.Builds() == builds {
		t.Fatal("forced rebuild did not bump Builds")
	}
	fr.Sync(nl)
	if fr.seen != nl.builds {
		t.Fatal("Sync did not observe the rebuild")
	}
}
