package md_test

import (
	"fmt"
	"log"

	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/vec"
)

// A minimal NVE run: build a Lennard-Jones liquid and verify the
// conserved quantities behave.
func ExampleSystem_Run() {
	state, err := lattice.Generate(lattice.Config{
		N: 108, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := md.NewSystem(state, md.Params[float64]{
		Box: state.Box, Cutoff: 2.5, Dt: 0.004, Shifted: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	e0 := sys.TotalEnergy()
	sys.Run(100)
	drift := (sys.TotalEnergy() - e0) / e0
	if drift < 0 {
		drift = -drift
	}
	mom := sys.Momentum()
	fmt.Printf("steps: %d\n", sys.Steps)
	fmt.Printf("energy conserved to 1e-4: %v\n", drift < 1e-4)
	fmt.Printf("momentum conserved to 1e-9: %v\n", mom.Norm() < 1e-9)
	// Output:
	// steps: 100
	// energy conserved to 1e-4: true
	// momentum conserved to 1e-9: true
}

// The three minimum-image formulations the paper's ports juggle agree.
func ExampleMinImage() {
	const box = 10.0
	d := md.MinImage(vec.V3[float64]{X: 6, Y: -7, Z: 1}, box)
	fmt.Printf("(%g, %g, %g)\n", d.X, d.Y, d.Z)
	// Output:
	// (-4, 3, 1)
}
