package md

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/vec"
)

// Checkpoint/restart: long production runs must survive interruption,
// and a restart must continue the trajectory *bit-exactly* — otherwise
// restarted and uninterrupted runs diverge and results stop being
// reproducible. The format is a little-endian binary image of the full
// float64 state with a magic header and version.

const (
	checkpointMagic   = uint32(0x4d444350) // "MDCP"
	checkpointVersion = uint32(1)
)

// WriteCheckpoint serializes the complete system state.
func WriteCheckpoint(w io.Writer, s *System[float64]) error {
	bw := bufio.NewWriter(w)
	head := []uint32{checkpointMagic, checkpointVersion}
	for _, v := range head {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	scalars := []float64{s.P.Box, s.P.Cutoff, s.P.Dt, s.P.Epsilon, s.P.Sigma, s.PE, s.KE}
	for _, v := range scalars {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	flags := uint32(0)
	if s.P.Shifted {
		flags = 1
	}
	if err := binary.Write(bw, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(s.Steps)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(s.N())); err != nil {
		return err
	}
	for _, arr := range [][]vec.V3[float64]{s.Pos, s.Vel, s.Acc} {
		for _, v := range arr {
			for _, c := range [3]float64{v.X, v.Y, v.Z} {
				if err := binary.Write(bw, binary.LittleEndian, c); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// ReadCheckpoint reconstructs a system from a checkpoint stream.
func ReadCheckpoint(r io.Reader) (*System[float64], error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("md: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("md: not a checkpoint (magic %#x)", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != checkpointVersion {
		return nil, fmt.Errorf("md: unsupported checkpoint version %d", version)
	}
	var scalars [7]float64
	for i := range scalars {
		if err := binary.Read(br, binary.LittleEndian, &scalars[i]); err != nil {
			return nil, err
		}
	}
	var flags uint32
	if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
		return nil, err
	}
	var steps, n uint64
	if err := binary.Read(br, binary.LittleEndian, &steps); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	const maxAtoms = 1 << 26 // 64M atoms: refuse absurd headers
	if n == 0 || n > maxAtoms {
		return nil, fmt.Errorf("md: checkpoint claims %d atoms", n)
	}
	s := &System[float64]{
		P: Params[float64]{
			Box: scalars[0], Cutoff: scalars[1], Dt: scalars[2],
			Epsilon: scalars[3], Sigma: scalars[4],
			Shifted: flags&1 != 0,
		},
		PE:    scalars[5],
		KE:    scalars[6],
		Steps: int(steps),
		Pos:   make([]vec.V3[float64], n),
		Vel:   make([]vec.V3[float64], n),
		Acc:   make([]vec.V3[float64], n),
	}
	if err := s.P.Validate(); err != nil {
		return nil, fmt.Errorf("md: checkpoint parameters invalid: %w", err)
	}
	for _, arr := range [][]vec.V3[float64]{s.Pos, s.Vel, s.Acc} {
		for i := range arr {
			var c [3]float64
			for j := range c {
				if err := binary.Read(br, binary.LittleEndian, &c[j]); err != nil {
					return nil, fmt.Errorf("md: truncated checkpoint: %w", err)
				}
				if math.IsNaN(c[j]) || math.IsInf(c[j], 0) {
					return nil, fmt.Errorf("md: checkpoint contains non-finite state")
				}
			}
			arr[i] = vec.V3[float64]{X: c[0], Y: c[1], Z: c[2]}
		}
	}
	return s, nil
}
