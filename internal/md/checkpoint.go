package md

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
)

// Checkpoint/restart: long production runs must survive interruption,
// and a restart must continue the trajectory *bit-exactly* — otherwise
// restarted and uninterrupted runs diverge and results stop being
// reproducible. The format is a little-endian binary image of the full
// float64 state with a magic header and version.
//
// Format v2 appends a CRC32 (IEEE) trailer computed over everything
// from the magic through the last payload byte, so a truncated or
// bit-flipped checkpoint — a crash mid-write, a lying disk, a short
// write — is rejected instead of silently seeding a corrupt restart.
//
// Format v3 keeps v2's header and trailer but stores the state as nine
// component planes (PosX[n] PosY[n] PosZ[n], then Vel, then Acc)
// instead of per-atom x,y,z triples — the serialization of the SoA
// layout the kernels now run over, written and restored with straight
// plane copies instead of a gather/scatter per atom. v1 (AoS, no
// trailer) and v2 (AoS + CRC) files are still read for compatibility;
// writes are always v3.

const (
	checkpointMagic     = uint32(0x4d444350) // "MDCP"
	checkpointVersion1  = uint32(1)          // legacy: AoS, no integrity trailer
	checkpointVersion2  = uint32(2)          // legacy: AoS + CRC32 trailer
	checkpointVersion   = uint32(3)          // current: SoA planes + CRC32 trailer
	checkpointMaxAtoms  = 1 << 26            // 64M atoms: refuse absurd headers
	checkpointMaxSteps  = uint64(1) << 62    // refuse step counts that overflow int
	checkpointAllocStep = 1 << 16            // atoms allocated per chunk while reading
)

// WriteCheckpoint serializes the complete system state in format v3
// (SoA planes, CRC32-trailed). The caller owns durability
// (fsync/rename); see internal/guard for the atomic on-disk protocol.
func WriteCheckpoint(w io.Writer, s *System[float64]) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	// Everything through the payload goes through the CRC; the trailer
	// itself does not.
	mw := io.MultiWriter(bw, crc)
	if err := writeCheckpointBody(mw, s, checkpointVersion); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCheckpointV1 emits the legacy trailer-less AoS format. Retained
// (unexported) so the compatibility tests can produce genuine v1
// streams without keeping binary golden files in the tree.
func writeCheckpointV1(w io.Writer, s *System[float64]) error {
	bw := bufio.NewWriter(w)
	if err := writeCheckpointBody(bw, s, checkpointVersion1); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCheckpointV2 emits the legacy CRC-trailed AoS format, for the
// same compatibility-test purpose as writeCheckpointV1.
func writeCheckpointV2(w io.Writer, s *System[float64]) error {
	bw := bufio.NewWriter(w)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(bw, crc)
	if err := writeCheckpointBody(mw, s, checkpointVersion2); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, crc.Sum32()); err != nil {
		return err
	}
	return bw.Flush()
}

// writeCheckpointBody writes magic, version, scalars, flags, counts,
// and the state payload — AoS triples for v1/v2, component planes for
// v3. The header layout and total payload size are identical across
// versions; only the element order differs.
func writeCheckpointBody(w io.Writer, s *System[float64], version uint32) error {
	head := []uint32{checkpointMagic, version}
	for _, v := range head {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	scalars := []float64{s.P.Box, s.P.Cutoff, s.P.Dt, s.P.Epsilon, s.P.Sigma, s.PE, s.KE}
	for _, v := range scalars {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	flags := uint32(0)
	if s.P.Shifted {
		flags = 1
	}
	if err := binary.Write(w, binary.LittleEndian, flags); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(s.Steps)); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint64(s.N())); err != nil {
		return err
	}
	sets := [3]Coords[float64]{s.Pos, s.Vel, s.Acc}
	if version == checkpointVersion1 || version == checkpointVersion2 {
		for _, c := range sets {
			for i := 0; i < c.Len(); i++ {
				v := c.At(i)
				for _, x := range [3]float64{v.X, v.Y, v.Z} {
					if err := binary.Write(w, binary.LittleEndian, x); err != nil {
						return err
					}
				}
			}
		}
		return nil
	}
	for _, c := range sets {
		for _, plane := range [3][]float64{c.X, c.Y, c.Z} {
			if err := binary.Write(w, binary.LittleEndian, plane); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadCheckpoint reconstructs a system from a checkpoint stream. It
// accepts format v3 (SoA planes, verifying the CRC32 trailer), v2
// (AoS, CRC-trailed), and legacy v1 (AoS, no trailer); any truncation,
// bit corruption (v2/v3), hostile length field, or non-finite state
// yields an error, never a panic. Allocation is incremental, so a
// hostile header cannot force a giant up-front allocation the stream
// doesn't back.
func ReadCheckpoint(r io.Reader) (*System[float64], error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("md: reading checkpoint magic: %w", err)
	}
	if magic != checkpointMagic {
		return nil, fmt.Errorf("md: not a checkpoint (magic %#x)", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != checkpointVersion1 && version != checkpointVersion2 && version != checkpointVersion {
		return nil, fmt.Errorf("md: unsupported checkpoint version %d", version)
	}

	// For v2/v3, hash everything from the magic through the payload; the
	// magic and version were already consumed, so feed them to the hash
	// by hand and tee the rest of the body through it.
	var crc hash.Hash32
	var body io.Reader = br
	if version != checkpointVersion1 {
		crc = crc32.NewIEEE()
		var head [8]byte
		binary.LittleEndian.PutUint32(head[0:4], magic)
		binary.LittleEndian.PutUint32(head[4:8], version)
		crc.Write(head[:])
		body = io.TeeReader(br, crc)
	}

	var scalars [7]float64
	for i := range scalars {
		if err := binary.Read(body, binary.LittleEndian, &scalars[i]); err != nil {
			return nil, fmt.Errorf("md: truncated checkpoint header: %w", err)
		}
	}
	var flags uint32
	if err := binary.Read(body, binary.LittleEndian, &flags); err != nil {
		return nil, fmt.Errorf("md: truncated checkpoint header: %w", err)
	}
	var steps, n uint64
	if err := binary.Read(body, binary.LittleEndian, &steps); err != nil {
		return nil, fmt.Errorf("md: truncated checkpoint header: %w", err)
	}
	if err := binary.Read(body, binary.LittleEndian, &n); err != nil {
		return nil, fmt.Errorf("md: truncated checkpoint header: %w", err)
	}
	if n == 0 || n > checkpointMaxAtoms {
		return nil, fmt.Errorf("md: checkpoint claims %d atoms", n)
	}
	if steps > checkpointMaxSteps {
		return nil, fmt.Errorf("md: checkpoint claims %d steps", steps)
	}
	s := &System[float64]{
		P: Params[float64]{
			Box: scalars[0], Cutoff: scalars[1], Dt: scalars[2],
			Epsilon: scalars[3], Sigma: scalars[4],
			Shifted: flags&1 != 0,
		},
		PE:    scalars[5],
		KE:    scalars[6],
		Steps: int(steps),
	}
	if err := s.P.Validate(); err != nil {
		return nil, fmt.Errorf("md: checkpoint parameters invalid: %w", err)
	}
	sets := [3]*Coords[float64]{&s.Pos, &s.Vel, &s.Acc}
	if version == checkpointVersion {
		for _, c := range sets {
			for _, plane := range [3]*[]float64{&c.X, &c.Y, &c.Z} {
				p, err := readPlane(body, int(n))
				if err != nil {
					return nil, err
				}
				*plane = p
			}
		}
	} else {
		for _, c := range sets {
			read, err := readV3Planes(body, int(n))
			if err != nil {
				return nil, err
			}
			*c = read
		}
	}
	if version != checkpointVersion1 {
		var want uint32
		if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
			return nil, fmt.Errorf("md: truncated checkpoint trailer: %w", err)
		}
		if got := crc.Sum32(); got != want {
			return nil, fmt.Errorf("md: checkpoint CRC mismatch (file %#x, computed %#x)", want, got)
		}
	}
	s.MarkPosDirty(0, int(n))
	return s, nil
}

// readPlane reads one n-element component plane, growing the slice in
// bounded chunks so memory use tracks the bytes actually present in
// the stream rather than the (possibly hostile) header count.
func readPlane(r io.Reader, n int) ([]float64, error) {
	out := make([]float64, 0, min(n, checkpointAllocStep))
	for len(out) < n {
		var v float64
		if err := binary.Read(r, binary.LittleEndian, &v); err != nil {
			return nil, fmt.Errorf("md: truncated checkpoint: %w", err)
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("md: checkpoint contains non-finite state")
		}
		out = append(out, v)
	}
	return out, nil
}

// readV3Planes reads n legacy AoS triples, scattering them into SoA
// planes with the same bounded-chunk growth policy as readPlane.
func readV3Planes(r io.Reader, n int) (Coords[float64], error) {
	cap0 := min(n, checkpointAllocStep)
	c := Coords[float64]{
		X: make([]float64, 0, cap0),
		Y: make([]float64, 0, cap0),
		Z: make([]float64, 0, cap0),
	}
	for len(c.X) < n {
		var t [3]float64
		for j := range t {
			if err := binary.Read(r, binary.LittleEndian, &t[j]); err != nil {
				return Coords[float64]{}, fmt.Errorf("md: truncated checkpoint: %w", err)
			}
			if math.IsNaN(t[j]) || math.IsInf(t[j], 0) {
				return Coords[float64]{}, fmt.Errorf("md: checkpoint contains non-finite state")
			}
		}
		c.X = append(c.X, t[0])
		c.Y = append(c.Y, t[1])
		c.Z = append(c.Z, t[2])
	}
	return c, nil
}
