package md

import (
	"fmt"
	"testing"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// randomPositions fills n positions uniformly in [0, span)³.
func randomPositions(rng *xrand.Source, n int, span float64) Coords[float64] {
	pos := MakeCoords[float64](n)
	for i := 0; i < n; i++ {
		pos.Set(i, vec.V3[float64]{
			X: rng.Float64() * span,
			Y: rng.Float64() * span,
			Z: rng.Float64() * span,
		})
	}
	return pos
}

// checkRowsWellFormed asserts every row holds strictly ascending
// in-bounds indices j > i — the shape every build path must produce.
func checkRowsWellFormed(t *testing.T, nl *NeighborList[float64], n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		prev := int32(i)
		for _, j := range nl.Neighbors(i) {
			if j <= prev || int(j) >= n {
				t.Fatalf("row %d malformed: neighbor %d after %d (n=%d)", i, j, prev, n)
			}
			prev = j
		}
	}
}

// checkSamePairs asserts two lists store byte-identical rows.
func checkSamePairs(t *testing.T, want, got *NeighborList[float64], n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		w, g := want.Neighbors(i), got.Neighbors(i)
		if len(w) != len(g) {
			t.Fatalf("%s: row %d has %d neighbors, want %d", label, i, len(g), len(w))
		}
		for k := range w {
			if w[k] != g[k] {
				t.Fatalf("%s: row %d entry %d is %d, want %d", label, i, k, g[k], w[k])
			}
		}
	}
}

// TestBuildCellBinnedMatchesN2Randomized is the build property test:
// over randomized boxes, cutoffs, skins, and atom counts, the
// cell-binned Build and the reference O(N²) BuildN2 produce identical
// pair sets in identical order. The geometry ranges are chosen so both
// the grid path and the small-box fallback are exercised; the test
// asserts the grid path actually ran.
func TestBuildCellBinnedMatchesN2Randomized(t *testing.T) {
	rng := xrand.New(7)
	gridTrials := 0
	for trial := 0; trial < 60; trial++ {
		box := 2 + 14*rng.Float64()
		cutoff := 0.4 + 1.6*rng.Float64()
		skin := 0.1 + 0.7*rng.Float64()
		n := 16 + rng.Intn(220)
		pos := randomPositions(rng, n, box)
		p := Params[float64]{Box: box, Cutoff: cutoff, Dt: 0.001}

		ref, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		ref.BuildN2(p, pos)
		got.Build(p, pos)
		if got.gridOK {
			gridTrials++
		}
		checkRowsWellFormed(t, got, n)
		checkSamePairs(t, ref, got, n,
			fmt.Sprintf("trial %d (box %.4g, cutoff %.4g, skin %.4g, n %d)",
				trial, box, cutoff, skin, n))
	}
	if gridTrials == 0 {
		t.Fatal("no trial took the cell-binned path; geometry ranges too small")
	}
}

// TestBuildGridReusedAcrossRebuilds pins the grid cache: rebuilding in
// the same box reuses one CellList (no per-rebuild allocation of the
// head arrays), while a box change re-sizes it.
func TestBuildGridReusedAcrossRebuilds(t *testing.T) {
	rng := xrand.New(3)
	p := Params[float64]{Box: 9, Cutoff: 2.5, Dt: 0.001}
	pos := randomPositions(rng, 200, p.Box)
	nl, err := NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	nl.Build(p, pos)
	if !nl.gridOK {
		t.Fatal("geometry supports binning but no grid was built")
	}
	dims := nl.grid.Dims()
	arena := &nl.grid.csrInts[0]
	nl.Build(p, pos)
	if &nl.grid.csrInts[0] != arena {
		t.Fatal("rebuild in an unchanged box re-allocated the grid arenas")
	}
	p2 := p
	p2.Box = 14
	nl.Build(p2, randomPositions(rng, 200, p2.Box))
	if nl.grid.Dims() == dims {
		t.Fatal("box change did not re-size the grid")
	}
}

// TestNeighborListRebuildTrigger is the directed staleness-trigger
// test: the first evaluation builds once, a no-motion run never
// rebuilds again, and moving exactly one atom just past Skin/2 causes
// exactly one rebuild.
func TestNeighborListRebuildTrigger(t *testing.T) {
	s := makeSystem(t, 108, false)
	const skin = 0.5
	nl, err := NewNeighborList[float64](skin)
	if err != nil {
		t.Fatal(err)
	}
	acc := MakeCoords[float64](s.N())

	nl.Forces(s.P, s.Pos, acc)
	if nl.Builds() != 1 {
		t.Fatalf("first evaluation performed %d builds, want 1", nl.Builds())
	}
	for i := 0; i < 10; i++ {
		nl.Forces(s.P, s.Pos, acc)
	}
	if nl.Builds() != 1 {
		t.Fatalf("no-motion run performed %d builds, want 1", nl.Builds())
	}

	// One atom, one axis, just past the skin/2 threshold.
	s.Pos.Set(17, Wrap(s.Pos.At(17).Add(vec.V3[float64]{X: skin/2 + 1e-6}), s.P.Box))
	nl.Forces(s.P, s.Pos, acc)
	if nl.Builds() != 2 {
		t.Fatalf("super-threshold move performed %d builds, want exactly 2", nl.Builds())
	}
	nl.Forces(s.P, s.Pos, acc)
	if nl.Builds() != 2 {
		t.Fatalf("repeat evaluation after rebuild performed %d builds, want 2", nl.Builds())
	}
}

// TestBuildN2MatchesLegacyOnLattice anchors the reworked build to the
// physics tests' configuration: on the standard FCC state the
// cell-binned list must reproduce the O(N²) list exactly, and the
// forces evaluated over both must be bitwise equal.
func TestBuildN2MatchesLegacyOnLattice(t *testing.T) {
	// 864 atoms: box ≈ 10.1, so box/(cutoff+skin) ≈ 3.5 — big enough
	// for the 3×3×3 grid floor the cell-binned path needs.
	s := makeSystem(t, 864, false)
	ref, err := NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	ref.BuildN2(s.P, s.Pos)
	got.Build(s.P, s.Pos)
	if !got.gridOK {
		t.Fatal("standard state should take the cell-binned path")
	}
	checkSamePairs(t, ref, got, s.N(), "lattice")

	accRef := MakeCoords[float64](s.N())
	accGot := MakeCoords[float64](s.N())
	peRef := ref.Forces(s.P, s.Pos, accRef)
	peGot := got.Forces(s.P, s.Pos, accGot)
	if peRef != peGot {
		t.Fatalf("PE not bitwise equal: %v vs %v", peRef, peGot)
	}
	for i := 0; i < accRef.Len(); i++ {
		if accRef.At(i) != accGot.At(i) {
			t.Fatalf("force %d not bitwise equal: %+v vs %+v", i, accRef.At(i), accGot.At(i))
		}
	}
}
