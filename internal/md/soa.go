package md

import "repro/internal/vec"

// Coords is the structure-of-arrays layout of the hot state: one
// contiguous plane per component instead of a slice of 3-vectors. This
// is the layout the paper's throughput ports actually compute over —
// De Fabritiis's Cell kernels and Elsen's GPU N-body both stream
// per-component arrays through SIMD lanes — and it is what lets the
// integrator loops run plane-wise (auto-vectorizable, one stream per
// component) while the pair kernels gather V3 views per atom.
//
// Bitwise contract: every kernel that moved from []vec.V3 to Coords
// performs the identical floating-point operations in the identical
// order. At/Set/Add/Sub reproduce the old element load/store/Add/Sub
// exactly (three independent component ops), and the plane-wise loops
// below are only used where components never mix (wrap, kick, drift,
// scale), so reordering across atoms within one component plane cannot
// change any result bit. TestSoATrajectoryGoldens pins this against
// trajectories recorded from the AoS build.
//
// Ownership: the three planes are normally carved from one arena (see
// MakeCoords) using three-index slices, so no plane can grow into its
// neighbor. Coords is a view — copying the struct aliases the same
// planes. Methods that reslice (Resize) take a pointer receiver.
type Coords[T vec.Float] struct {
	X, Y, Z []T
}

// MakeCoords allocates an n-element coordinate set backed by a single
// arena. The planes are capacity-clamped so appending to one can never
// bleed into the next. Noinline keeps the arena allocation attributed
// to this one audited site instead of smearing copies of it into every
// caller the compiler would inline it into.
//
//go:noinline
func MakeCoords[T vec.Float](n int) Coords[T] { //mdlint:ignore hotalloc construction-time arena; steady-state stepping reuses it and never re-enters
	arena := make([]T, 3*n)
	return coordsOver(arena, n)
}

// coordsOver carves three n-element planes from the front of arena
// (which must hold at least 3n elements).
func coordsOver[T vec.Float](arena []T, n int) Coords[T] {
	return Coords[T]{
		X: arena[0*n : 1*n : 1*n],
		Y: arena[1*n : 2*n : 2*n],
		Z: arena[2*n : 3*n : 3*n],
	}
}

// CoordsFromV3 builds an arena-backed Coords holding a copy of src —
// the adapter between the AoS world (lattice states, parsed
// trajectory frames, tests) and the SoA hot state.
func CoordsFromV3[T vec.Float](src []vec.V3[T]) Coords[T] {
	c := MakeCoords[T](len(src))
	c.Scatter(src)
	return c
}

// Len returns the number of elements.
func (c Coords[T]) Len() int { return len(c.X) }

// At gathers element i as a V3 — the SoA equivalent of the old
// pos[i] load (three independent component loads).
func (c Coords[T]) At(i int) vec.V3[T] {
	return vec.V3[T]{X: c.X[i], Y: c.Y[i], Z: c.Z[i]}
}

// Set scatters v into element i — the SoA equivalent of pos[i] = v.
func (c Coords[T]) Set(i int, v vec.V3[T]) {
	c.X[i], c.Y[i], c.Z[i] = v.X, v.Y, v.Z
}

// Add folds v into element i with three independent component
// additions — bit-for-bit the old acc[i] = acc[i].Add(v).
func (c Coords[T]) Add(i int, v vec.V3[T]) {
	c.X[i] += v.X
	c.Y[i] += v.Y
	c.Z[i] += v.Z
}

// Sub is the Newton's-third-law counterpart of Add:
// acc[i] = acc[i].Sub(v).
func (c Coords[T]) Sub(i int, v vec.V3[T]) {
	c.X[i] -= v.X
	c.Y[i] -= v.Y
	c.Z[i] -= v.Z
}

// Zero clears every element (the per-evaluation accumulator reset).
func (c Coords[T]) Zero() {
	for i := range c.X {
		c.X[i] = 0
	}
	for i := range c.Y {
		c.Y[i] = 0
	}
	for i := range c.Z {
		c.Z[i] = 0
	}
}

// CopyFrom copies src's elements into c. Lengths must match.
func (c Coords[T]) CopyFrom(src Coords[T]) {
	copy(c.X, src.X)
	copy(c.Y, src.Y)
	copy(c.Z, src.Z)
}

// Scatter copies the AoS src into the planes. Lengths must match.
func (c Coords[T]) Scatter(src []vec.V3[T]) {
	for i, v := range src {
		c.X[i], c.Y[i], c.Z[i] = v.X, v.Y, v.Z
	}
}

// Gather appends c's elements to dst as V3s and returns it — the
// SoA→AoS adapter for snapshot consumers.
func (c Coords[T]) Gather(dst []vec.V3[T]) []vec.V3[T] {
	for i := range c.X {
		dst = append(dst, vec.V3[T]{X: c.X[i], Y: c.Y[i], Z: c.Z[i]})
	}
	return dst
}

// V3s returns c's elements as a freshly allocated AoS slice.
func (c Coords[T]) V3s() []vec.V3[T] {
	return c.Gather(make([]vec.V3[T], 0, c.Len()))
}

// Resize reslices c to n elements, reusing the existing arena when its
// capacity suffices and allocating a fresh one otherwise. Contents are
// preserved up to min(old, new) per plane when the arena is reused and
// undefined after a reallocation; callers that resize always refill.
func (c *Coords[T]) Resize(n int) {
	if cap(c.X) >= n && cap(c.Y) >= n && cap(c.Z) >= n {
		c.X, c.Y, c.Z = c.X[:n], c.Y[:n], c.Z[:n]
		return
	}
	*c = MakeCoords[T](n) //mdlint:ignore hotalloc amortized grow-once arena, reused while capacity suffices
}
