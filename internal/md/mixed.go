package md

import (
	"fmt"

	"repro/internal/vec"
)

// This file is the float32 host fast path: the same widen-compute-
// narrow discipline the paper's single-precision devices (Cell SPE,
// GPU float4) apply, brought to the host kernels. Pair geometry —
// minimum image, r², the LJ pair evaluation — runs in float32, which
// halves the working-set bytes of the hot loop; per-atom force and
// energy accumulation stay in float64 via the audited helpers in
// internal/vec, so no accumulator ever sums float32 into float32. The
// float64 System remains the master state: integration, thermostat,
// checkpoints, and the guard watchdog are untouched, and the fast
// path only ever reads a narrowed mirror of the positions and writes
// float64 accelerations back.

// NarrowParams narrows float64 simulation parameters to the float32
// kernel width via the audited vec.Narrow helper.
func NarrowParams(p Params[float64]) Params[float32] {
	return Params[float32]{
		Box:     vec.Narrow[float32](p.Box),
		Cutoff:  vec.Narrow[float32](p.Cutoff),
		Dt:      vec.Narrow[float32](p.Dt),
		Epsilon: vec.Narrow[float32](p.Epsilon),
		Sigma:   vec.Narrow[float32](p.Sigma),
		Shifted: p.Shifted,
	}
}

// Mirror32 is the float32 shadow of a float64 master state: narrowed
// parameters plus a narrowed position buffer, refreshed from the
// master once per force evaluation. Only positions are mirrored —
// velocities, accelerations, and energies never exist at float32 on
// the host fast path.
type Mirror32 struct {
	P   Params[float32]
	Pos Coords[float32]

	// synced is true once Pos holds a complete narrow of the master it
	// was last refreshed from, which is what licenses the incremental
	// RefreshSystem path to narrow only the dirty window.
	synced bool
	// rowsNarrowed counts the individual rows narrowed across all
	// refreshes — the observable the dirty-row counting test pins.
	rowsNarrowed int64
}

// NewMirror32 narrows the parameters and validates them at float32:
// a box/cutoff pair that is valid in double precision can round to an
// invalid one in single (2*Cutoff > Box after narrowing), and that
// must fail at construction, not corrupt a minimum image mid-run.
func NewMirror32(p Params[float64]) (*Mirror32, error) {
	p32 := NarrowParams(p)
	if err := p32.Validate(); err != nil {
		return nil, fmt.Errorf("md: params do not survive narrowing to float32: %w", err)
	}
	return &Mirror32{P: p32}, nil
}

// narrowRows narrows master rows [lo, hi) into the mirror planes.
func (m *Mirror32) narrowRows(pos Coords[float64], lo, hi int) {
	for i := lo; i < hi; i++ {
		m.Pos.X[i] = vec.Narrow[float32](pos.X[i])
		m.Pos.Y[i] = vec.Narrow[float32](pos.Y[i])
		m.Pos.Z[i] = vec.Narrow[float32](pos.Z[i])
	}
	m.rowsNarrowed += int64(hi - lo)
}

// Refresh narrows the master positions into the mirror, all rows,
// unconditionally. Each conversion is a correctly-rounded Narrow; the
// cost is O(N) against the force loop's O(N·pairs). Callers that hold
// the master System should prefer RefreshSystem, which skips rows the
// master has not touched since the last refresh.
func (m *Mirror32) Refresh(pos Coords[float64]) {
	m.Pos.Resize(pos.Len())
	m.narrowRows(pos, 0, pos.Len())
	m.synced = true
}

// RefreshSystem narrows only the master rows dirtied since the last
// refresh, claiming the system's dirty-position window. The first call
// (or any call after the mirror lost sync with the master's size)
// narrows everything; a call when the master has not moved narrows
// nothing — the fix for the full-shadow refresh the mirror used to pay
// on every evaluation even between position updates. Single consumer:
// one mirror per System, or windows will be claimed out from under
// each other.
func (m *Mirror32) RefreshSystem(s *System[float64]) {
	n := s.N()
	if !m.synced || m.Pos.Len() != n {
		s.ClaimPosDirty() // consumed by the full refresh below
		m.Refresh(s.Pos)
		return
	}
	lo, hi := s.ClaimPosDirty()
	m.narrowRows(s.Pos, lo, hi)
}

// RowsNarrowed returns the cumulative number of rows narrowed by all
// refreshes of this mirror.
func (m *Mirror32) RowsNarrowed() int64 { return m.rowsNarrowed }

// ForcesPairlistMixed evaluates the Verlet-list LJ forces with
// float32 pair geometry and float64 accumulation: the list is rebuilt
// from the float32 positions if stale, each pair's displacement,
// distance, and LJ terms are computed at float32, and the resulting
// pair force is widened exactly into the float64 accumulators. acc is
// overwritten; the return value is the float64 potential energy. The
// pair order is the list order (fixed by the build, which is itself
// bitwise sharding-independent), so the result is deterministic.
func ForcesPairlistMixed(nl *NeighborList[float32], p Params[float32], pos Coords[float32], acc Coords[float64]) float64 {
	if nl.Stale(p, pos) {
		nl.Build(p, pos)
	}
	acc.Zero()
	rc2 := p.Cutoff * p.Cutoff
	var pe float64
	for i, js := range nl.pairs {
		pi := pos.At(i)
		for _, j := range js {
			d := MinImage(pi.Sub(pos.At(int(j))), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			v, f := LJPair(p, r2)
			pe += vec.Widen(v)
			fd := d.Scale(f)
			acc.Set(i, vec.AccumAdd(acc.At(i), fd))
			acc.Set(int(j), vec.AccumSub(acc.At(int(j)), fd))
		}
	}
	nl.queries++
	return pe
}

// ForcesCellMixed evaluates the linked-cell LJ forces with float32
// pair geometry and float64 accumulation, rebuilding the grid from
// the float32 positions first (O(N), tracks every step). acc is
// overwritten; the return value is the float64 potential energy.
func ForcesCellMixed(cl *CellList[float32], p Params[float32], pos Coords[float32], acc Coords[float64]) float64 {
	cl.Build(pos)
	acc.Zero()
	rc2 := p.Cutoff * p.Cutoff
	var pe float64
	d := cl.dims
	for cx := 0; cx < d; cx++ {
		for cy := 0; cy < d; cy++ {
			for cz := 0; cz < d; cz++ {
				c := (cx*d+cy)*d + cz
				for i := cl.heads[c]; i >= 0; i = cl.next[i] {
					pi := pos.At(int(i))
					// Within the home cell: pairs i<j only.
					for j := cl.next[i]; j >= 0; j = cl.next[j] {
						pe += pairMixed(p, rc2, pos, acc, int(i), int(j), pi)
					}
					// Half of the 26 neighbor cells (each unordered
					// cell pair once).
					for _, off := range halfNeighborOffsets {
						nc := cl.wrapCell(cx+off[0], cy+off[1], cz+off[2])
						for j := cl.heads[nc]; j >= 0; j = cl.next[j] {
							pe += pairMixed(p, rc2, pos, acc, int(i), int(j), pi)
						}
					}
				}
			}
		}
	}
	return pe
}

// pairMixed applies one i-j interaction at float32 and folds it into
// the float64 accumulators, returning the widened pair energy.
func pairMixed(p Params[float32], rc2 float32, pos Coords[float32], acc Coords[float64], i, j int, pi vec.V3[float32]) float64 {
	dv := MinImage(pi.Sub(pos.At(j)), p.Box)
	r2 := dv.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return 0
	}
	v, f := LJPair(p, r2)
	fd := dv.Scale(f)
	acc.Set(i, vec.AccumAdd(acc.At(i), fd))
	acc.Set(j, vec.AccumSub(acc.At(j), fd))
	return vec.Widen(v)
}

// FullRows is the gather (full-shell) view of a NeighborList: for
// every atom i, all neighbors — j < i and j > i — in ascending order,
// derived from the half (j > i) rows the list stores. The parallel
// mixed-precision kernel shards atoms over workers and has each one
// gather its own atoms' full rows, so every acc[i] is written by
// exactly one worker in an order fixed by the list alone — the
// property that makes the f32 output bytes independent of the worker
// count. Sync rebuilds the expansion only when the list has been
// rebuilt since the last call (tracked via Builds()).
type FullRows[T vec.Float] struct {
	rows   [][]int32
	flat   []int32 // backing store for rows, one allocation per resize
	counts []int32 // per-atom degree scratch
	seen   int     // nl.Builds() at the last Sync
}

// Sync brings the expansion up to date with nl. It is cheap when the
// list has not been rebuilt (one counter compare).
func (fr *FullRows[T]) Sync(nl *NeighborList[T]) {
	if fr.seen == nl.builds && len(fr.rows) == len(nl.pairs) {
		return
	}
	n := len(nl.pairs)
	if cap(fr.counts) < n {
		fr.counts = make([]int32, n)
		fr.rows = make([][]int32, n)
	}
	fr.counts = fr.counts[:n]
	fr.rows = fr.rows[:n]
	for i := range fr.counts {
		fr.counts[i] = 0
	}
	total := 0
	for i, js := range nl.pairs {
		fr.counts[i] += int32(len(js))
		for _, j := range js {
			fr.counts[j]++
		}
		total += 2 * len(js)
	}
	if cap(fr.flat) < total {
		fr.flat = make([]int32, total)
	}
	fr.flat = fr.flat[:total]
	off := int32(0)
	for i, c := range fr.counts {
		fr.rows[i] = fr.flat[off : off : off+c]
		off += c
	}
	// Scanning i ascending appends, for every atom k, first its
	// smaller neighbors (in ascending i) and then — at i == k — its
	// larger ones (ascending by list order), so each full row comes
	// out globally ascending with no sort.
	for i, js := range nl.pairs {
		for _, j := range js {
			fr.rows[i] = append(fr.rows[i], j)
			fr.rows[j] = append(fr.rows[j], int32(i))
		}
	}
	fr.seen = nl.builds
}

// Row returns atom i's full neighbor row, ascending. Valid until the
// next Sync that observes a rebuild; callers must treat it as
// read-only.
func (fr *FullRows[T]) Row(i int) []int32 { return fr.rows[i] }
