// Package md implements the reference molecular-dynamics kernel the
// paper ports to the Cell BE, the GPU, and the Cray MTA-2 (section 3.5):
//
//  1. advance velocities (half kick)
//  2. compute forces on each of the N atoms: for every other atom,
//     compute the minimum-image distance on the fly and, if it is within
//     the cutoff, accumulate the 6-12 Lennard-Jones force — an O(N²)
//     loop with no neighbor list, exactly as the paper specifies
//  3. move atoms (drift)
//  4. update (wrap) positions
//  5. compute kinetic, potential, and total energy
//
// integrated with the velocity Verlet algorithm. The engine is generic
// over float32/float64 because the paper's Cell and GPU ports are
// single-precision while the MTA-2 and Opteron runs are double-
// precision; the device models in internal/cell, internal/gpu,
// internal/mta, and internal/opteron all reproduce this package's
// numbers (it is the correctness oracle), adding only cycle accounting.
//
// The package also provides the neighbor-pairlist optimization the
// paper cites as the standard cache-friendly technique but deliberately
// does not use (section 3.4); it exists here for the ablation benches.
package md

import (
	"fmt"
	"math"

	"repro/internal/lattice"
	"repro/internal/vec"
)

// Params are the physical and numerical parameters of a simulation, in
// reduced Lennard-Jones units (sigma = epsilon = mass = k_B = 1 unless
// overridden).
type Params[T vec.Float] struct {
	Box     T // cubic box side length
	Cutoff  T // interaction cutoff distance r_c
	Dt      T // integration time step
	Epsilon T // LJ well depth (0 means 1)
	Sigma   T // LJ diameter (0 means 1)

	// Shifted, when true, subtracts V(r_c) from the pair potential so
	// the energy is continuous at the cutoff. The paper's kernel uses
	// the plain truncated potential (Shifted=false); the shifted form
	// exists for the energy-conservation property tests, where the
	// discontinuity of plain truncation would otherwise dominate.
	Shifted bool
}

// Epsilon1 returns Epsilon with the zero-value default applied.
func (p Params[T]) Epsilon1() T {
	if p.Epsilon == 0 {
		return 1
	}
	return p.Epsilon
}

// Sigma1 returns Sigma with the zero-value default applied.
func (p Params[T]) Sigma1() T {
	if p.Sigma == 0 {
		return 1
	}
	return p.Sigma
}

// Validate reports whether the parameters describe a runnable system.
func (p Params[T]) Validate() error {
	if p.Box <= 0 {
		return fmt.Errorf("md: box must be positive, got %v", p.Box)
	}
	if p.Cutoff <= 0 {
		return fmt.Errorf("md: cutoff must be positive, got %v", p.Cutoff)
	}
	if p.Dt <= 0 {
		return fmt.Errorf("md: dt must be positive, got %v", p.Dt)
	}
	if 2*p.Cutoff > p.Box {
		return fmt.Errorf("md: cutoff %v exceeds half the box %v; minimum image is ambiguous", p.Cutoff, p.Box)
	}
	return nil
}

// System is the full dynamic state of a simulation.
type System[T vec.Float] struct {
	P   Params[T]
	Pos []vec.V3[T] // wrapped into [0, Box)
	Vel []vec.V3[T]
	Acc []vec.V3[T]

	// Energies from the most recent force evaluation / step.
	PE T // potential energy
	KE T // kinetic energy

	Steps int // completed integration steps
}

// NewSystem builds a System at precision T from a generated initial
// condition, evaluating forces once so that Acc and PE are valid before
// the first step.
func NewSystem[T vec.Float](st *lattice.State, p Params[T]) (*System[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(st.Pos)
	s := &System[T]{
		P:   p,
		Pos: make([]vec.V3[T], n),
		Vel: make([]vec.V3[T], n),
		Acc: make([]vec.V3[T], n),
	}
	for i := 0; i < n; i++ {
		s.Pos[i] = vec.FromV3f64[T](st.Pos[i])
		s.Vel[i] = vec.FromV3f64[T](st.Vel[i])
	}
	s.wrapAll()
	s.PE = ComputeForces(s.P, s.Pos, s.Acc)
	s.KE = KineticEnergy(s.Vel)
	return s, nil
}

// N returns the number of atoms.
func (s *System[T]) N() int { return len(s.Pos) }

// TotalEnergy returns PE + KE from the latest evaluation.
func (s *System[T]) TotalEnergy() T { return s.PE + s.KE }

// Temperature returns the instantaneous reduced temperature 2KE/(3N).
func (s *System[T]) Temperature() T {
	if len(s.Vel) == 0 {
		return 0
	}
	return 2 * s.KE / (3 * T(len(s.Vel)))
}

// Momentum returns the total momentum (unit masses).
func (s *System[T]) Momentum() vec.V3[T] {
	var p vec.V3[T]
	for _, v := range s.Vel {
		p = p.Add(v)
	}
	return p
}

// Clone returns a deep copy of the system, used to run the same state
// on several devices.
func (s *System[T]) Clone() *System[T] {
	c := &System[T]{P: s.P, PE: s.PE, KE: s.KE, Steps: s.Steps}
	c.Pos = append([]vec.V3[T](nil), s.Pos...)
	c.Vel = append([]vec.V3[T](nil), s.Vel...)
	c.Acc = append([]vec.V3[T](nil), s.Acc...)
	return c
}

// wrapAll folds every position back into [0, Box).
func (s *System[T]) wrapAll() {
	for i := range s.Pos {
		s.Pos[i] = Wrap(s.Pos[i], s.P.Box)
	}
}

// Wrap folds one coordinate vector into [0, box) per component. It
// assumes displacements per step are below one box length, which the
// validated time steps guarantee by many orders of magnitude.
func Wrap[T vec.Float](p vec.V3[T], box T) vec.V3[T] {
	return vec.V3[T]{X: wrap1(p.X, box), Y: wrap1(p.Y, box), Z: wrap1(p.Z, box)}
}

func wrap1[T vec.Float](x, box T) T {
	if x < 0 {
		x += box
	} else if x >= box {
		x -= box
	}
	if x >= 0 && x < box {
		return x
	}
	// Drift beyond one box length (never hit in healthy runs). Fold by
	// modulo rather than repeated subtraction: the fold must be total,
	// because a corrupted coordinate reaches here mid-step, before any
	// health check can see it — ±Inf would spin a subtraction loop
	// forever, and a merely huge value would take ~|x|/box iterations.
	// Mod maps non-finite x to NaN, which propagates out for the
	// supervisor's watchdog to catch and roll back.
	x = T(math.Mod(float64(x), float64(box)))
	if x < 0 {
		x += box
	}
	return x
}

// Step advances the system one velocity-Verlet step (kick-drift-kick)
// using the reference O(N²) on-the-fly force evaluation.
func (s *System[T]) Step() {
	s.StepWith(func() T { return ComputeForces(s.P, s.Pos, s.Acc) })
}

// StepWith advances one velocity-Verlet step, delegating the force
// evaluation (write Acc, return PE) to forces. Device models and the
// pairlist variant plug in here so that the integrator is shared and
// only the force kernel differs — mirroring the paper, where only the
// acceleration computation is offloaded.
func (s *System[T]) StepWith(forces func() T) {
	_ = s.StepWithE(func() (T, error) { return forces(), nil })
}

// StepWithE is StepWith for force evaluations that can fail (worker
// faults, bonded blow-ups). On error the step is abandoned: Steps is
// not incremented and the returned error propagates, but the state is
// mid-step (velocities half-kicked, positions drifted) — callers that
// continue after an error must restore a known-good state first, which
// is exactly what the guard supervisor's checkpoint rollback does.
func (s *System[T]) StepWithE(forces func() (T, error)) error {
	dt := s.P.Dt
	half := dt / 2
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i]) // half kick
	}
	for i := range s.Pos {
		s.Pos[i] = Wrap(s.Pos[i].MulAdd(dt, s.Vel[i]), s.P.Box) // drift + wrap
	}
	pe, err := forces()
	if err != nil {
		return err
	}
	s.PE = pe
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].MulAdd(half, s.Acc[i]) // second half kick
	}
	s.KE = KineticEnergy(s.Vel)
	s.Steps++
	return nil
}

// Run advances n steps with the reference force kernel.
func (s *System[T]) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// KineticEnergy returns sum(v²)/2 over the velocity set (unit masses).
func KineticEnergy[T vec.Float](vel []vec.V3[T]) T {
	var ke T
	for _, v := range vel {
		ke += v.Norm2()
	}
	return ke / 2
}
