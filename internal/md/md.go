// Package md implements the reference molecular-dynamics kernel the
// paper ports to the Cell BE, the GPU, and the Cray MTA-2 (section 3.5):
//
//  1. advance velocities (half kick)
//  2. compute forces on each of the N atoms: for every other atom,
//     compute the minimum-image distance on the fly and, if it is within
//     the cutoff, accumulate the 6-12 Lennard-Jones force — an O(N²)
//     loop with no neighbor list, exactly as the paper specifies
//  3. move atoms (drift)
//  4. update (wrap) positions
//  5. compute kinetic, potential, and total energy
//
// integrated with the velocity Verlet algorithm. The engine is generic
// over float32/float64 because the paper's Cell and GPU ports are
// single-precision while the MTA-2 and Opteron runs are double-
// precision; the device models in internal/cell, internal/gpu,
// internal/mta, and internal/opteron all reproduce this package's
// numbers (it is the correctness oracle), adding only cycle accounting.
//
// The package also provides the neighbor-pairlist optimization the
// paper cites as the standard cache-friendly technique but deliberately
// does not use (section 3.4); it exists here for the ablation benches.
package md

import (
	"fmt"
	"math"

	"repro/internal/lattice"
	"repro/internal/vec"
)

// Params are the physical and numerical parameters of a simulation, in
// reduced Lennard-Jones units (sigma = epsilon = mass = k_B = 1 unless
// overridden).
type Params[T vec.Float] struct {
	Box     T // cubic box side length
	Cutoff  T // interaction cutoff distance r_c
	Dt      T // integration time step
	Epsilon T // LJ well depth (0 means 1)
	Sigma   T // LJ diameter (0 means 1)

	// Shifted, when true, subtracts V(r_c) from the pair potential so
	// the energy is continuous at the cutoff. The paper's kernel uses
	// the plain truncated potential (Shifted=false); the shifted form
	// exists for the energy-conservation property tests, where the
	// discontinuity of plain truncation would otherwise dominate.
	Shifted bool
}

// Epsilon1 returns Epsilon with the zero-value default applied.
func (p Params[T]) Epsilon1() T {
	if p.Epsilon == 0 {
		return 1
	}
	return p.Epsilon
}

// Sigma1 returns Sigma with the zero-value default applied.
func (p Params[T]) Sigma1() T {
	if p.Sigma == 0 {
		return 1
	}
	return p.Sigma
}

// Validate reports whether the parameters describe a runnable system.
func (p Params[T]) Validate() error {
	if p.Box <= 0 {
		return fmt.Errorf("md: box must be positive, got %v", p.Box)
	}
	if p.Cutoff <= 0 {
		return fmt.Errorf("md: cutoff must be positive, got %v", p.Cutoff)
	}
	if p.Dt <= 0 {
		return fmt.Errorf("md: dt must be positive, got %v", p.Dt)
	}
	if 2*p.Cutoff > p.Box {
		return fmt.Errorf("md: cutoff %v exceeds half the box %v; minimum image is ambiguous", p.Cutoff, p.Box)
	}
	return nil
}

// System is the full dynamic state of a simulation. The hot state
// (positions, velocities, accelerations) lives in SoA component planes
// carved from one arena allocated at construction, so steady-state
// stepping never touches the heap.
type System[T vec.Float] struct {
	P   Params[T]
	Pos Coords[T] // wrapped into [0, Box)
	Vel Coords[T]
	Acc Coords[T]

	// Energies from the most recent force evaluation / step.
	PE T // potential energy
	KE T // kinetic energy

	Steps int // completed integration steps

	// [dirtyLo, dirtyHi) is the window of positions modified since the
	// last ClaimPosDirty — the signal Mirror32's incremental refresh
	// consumes. Single-consumer by design: the first claimer resets it.
	dirtyLo, dirtyHi int
}

// newSystemState allocates the Pos/Vel/Acc planes for n atoms from a
// single 9n-element arena and marks all positions dirty.
func (s *System[T]) newSystemState(n int) {
	arena := make([]T, 9*n)
	s.Pos = coordsOver(arena, n)
	s.Vel = coordsOver(arena[3*n:], n)
	s.Acc = coordsOver(arena[6*n:], n)
	s.MarkPosDirty(0, n)
}

// NewSystem builds a System at precision T from a generated initial
// condition, evaluating forces once so that Acc and PE are valid before
// the first step.
func NewSystem[T vec.Float](st *lattice.State, p Params[T]) (*System[T], error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(st.Pos)
	s := &System[T]{P: p}
	s.newSystemState(n)
	for i := 0; i < n; i++ {
		s.Pos.Set(i, vec.FromV3f64[T](st.Pos[i]))
		s.Vel.Set(i, vec.FromV3f64[T](st.Vel[i]))
	}
	s.wrapAll()
	s.PE = ComputeForces(s.P, s.Pos, s.Acc)
	s.KE = KineticEnergy(s.Vel)
	return s, nil
}

// N returns the number of atoms.
func (s *System[T]) N() int { return s.Pos.Len() }

// MarkPosDirty widens the dirty-position window to cover [lo, hi).
// Anything that mutates Pos outside StepWithE (minimizers, checkpoint
// restores, device downloads) must call this, or incremental shadow
// refreshes will miss the rows.
func (s *System[T]) MarkPosDirty(lo, hi int) {
	if lo >= hi {
		return
	}
	if s.dirtyLo >= s.dirtyHi { // empty window: adopt
		s.dirtyLo, s.dirtyHi = lo, hi
		return
	}
	if lo < s.dirtyLo {
		s.dirtyLo = lo
	}
	if hi > s.dirtyHi {
		s.dirtyHi = hi
	}
}

// ClaimPosDirty returns the current dirty-position window and resets it
// to empty. Single consumer: whoever claims the window owns refreshing
// those rows; a second claimer before the next mutation sees [0, 0).
func (s *System[T]) ClaimPosDirty() (lo, hi int) {
	lo, hi = s.dirtyLo, s.dirtyHi
	s.dirtyLo, s.dirtyHi = 0, 0
	if lo >= hi {
		return 0, 0
	}
	return lo, hi
}

// TotalEnergy returns PE + KE from the latest evaluation.
func (s *System[T]) TotalEnergy() T { return s.PE + s.KE }

// Temperature returns the instantaneous reduced temperature 2KE/(3N).
func (s *System[T]) Temperature() T {
	if s.Vel.Len() == 0 {
		return 0
	}
	return 2 * s.KE / (3 * T(s.Vel.Len()))
}

// Momentum returns the total momentum (unit masses).
func (s *System[T]) Momentum() vec.V3[T] {
	var p vec.V3[T]
	for i := 0; i < s.Vel.Len(); i++ {
		p = p.Add(s.Vel.At(i))
	}
	return p
}

// Clone returns a deep copy of the system (fresh arena), used to run
// the same state on several devices and to snapshot for checkpoints.
func (s *System[T]) Clone() *System[T] {
	c := &System[T]{P: s.P, PE: s.PE, KE: s.KE, Steps: s.Steps}
	c.newSystemState(s.N())
	c.Pos.CopyFrom(s.Pos)
	c.Vel.CopyFrom(s.Vel)
	c.Acc.CopyFrom(s.Acc)
	return c
}

// wrapAll folds every position back into [0, Box). Plane-wise: wrap1
// acts on one component at a time, so per-plane iteration performs the
// identical operations as the old per-atom Wrap.
func (s *System[T]) wrapAll() {
	box := s.P.Box
	for i, x := range s.Pos.X {
		s.Pos.X[i] = wrap1(x, box)
	}
	for i, y := range s.Pos.Y {
		s.Pos.Y[i] = wrap1(y, box)
	}
	for i, z := range s.Pos.Z {
		s.Pos.Z[i] = wrap1(z, box)
	}
	s.MarkPosDirty(0, s.N())
}

// Wrap folds one coordinate vector into [0, box) per component. It
// assumes displacements per step are below one box length, which the
// validated time steps guarantee by many orders of magnitude.
func Wrap[T vec.Float](p vec.V3[T], box T) vec.V3[T] {
	return vec.V3[T]{X: wrap1(p.X, box), Y: wrap1(p.Y, box), Z: wrap1(p.Z, box)}
}

func wrap1[T vec.Float](x, box T) T {
	if x < 0 {
		x += box
	} else if x >= box {
		x -= box
	}
	if x >= 0 && x < box {
		return x
	}
	// Drift beyond one box length (never hit in healthy runs). Fold by
	// modulo rather than repeated subtraction: the fold must be total,
	// because a corrupted coordinate reaches here mid-step, before any
	// health check can see it — ±Inf would spin a subtraction loop
	// forever, and a merely huge value would take ~|x|/box iterations.
	// Mod maps non-finite x to NaN, which propagates out for the
	// supervisor's watchdog to catch and roll back.
	x = T(math.Mod(float64(x), float64(box)))
	if x < 0 {
		x += box
	}
	return x
}

// Step advances the system one velocity-Verlet step (kick-drift-kick)
// using the reference O(N²) on-the-fly force evaluation.
func (s *System[T]) Step() {
	s.StepWith(func() T { return ComputeForces(s.P, s.Pos, s.Acc) })
}

// StepWith advances one velocity-Verlet step, delegating the force
// evaluation (write Acc, return PE) to forces. Device models and the
// pairlist variant plug in here so that the integrator is shared and
// only the force kernel differs — mirroring the paper, where only the
// acceleration computation is offloaded.
func (s *System[T]) StepWith(forces func() T) {
	_ = s.StepWithE(func() (T, error) { return forces(), nil })
}

// StepWithE is StepWith for force evaluations that can fail (worker
// faults, bonded blow-ups). On error the step is abandoned: Steps is
// not incremented and the returned error propagates, but the state is
// mid-step (velocities half-kicked, positions drifted) — callers that
// continue after an error must restore a known-good state first, which
// is exactly what the guard supervisor's checkpoint rollback does.
func (s *System[T]) StepWithE(forces func() (T, error)) error {
	dt := s.P.Dt
	half := dt / 2
	box := s.P.Box
	// The kick/drift loops run plane-wise over the SoA arrays: each
	// component update (v += half*a; p = wrap1(p + dt*v)) is independent
	// across components, so the per-plane order performs exactly the
	// same FP operations as the old per-atom MulAdd/Wrap.
	halfKick(s.Vel.X, s.Acc.X, half)
	halfKick(s.Vel.Y, s.Acc.Y, half)
	halfKick(s.Vel.Z, s.Acc.Z, half)
	drift(s.Pos.X, s.Vel.X, dt, box)
	drift(s.Pos.Y, s.Vel.Y, dt, box)
	drift(s.Pos.Z, s.Vel.Z, dt, box)
	s.MarkPosDirty(0, s.N())
	pe, err := forces()
	if err != nil {
		return err
	}
	s.PE = pe
	halfKick(s.Vel.X, s.Acc.X, half)
	halfKick(s.Vel.Y, s.Acc.Y, half)
	halfKick(s.Vel.Z, s.Acc.Z, half)
	s.KE = KineticEnergy(s.Vel)
	s.Steps++
	return nil
}

// halfKick folds vel += h*acc over one component plane.
func halfKick[T vec.Float](vel, acc []T, h T) {
	for i, a := range acc {
		vel[i] += h * a
	}
}

// drift advances pos += dt*vel and wraps, over one component plane.
func drift[T vec.Float](pos, vel []T, dt, box T) {
	for i, v := range vel {
		pos[i] = wrap1(pos[i]+dt*v, box)
	}
}

// Run advances n steps with the reference force kernel.
func (s *System[T]) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// KineticEnergy returns sum(v²)/2 over the velocity set (unit masses).
// Deliberately atom-major: Norm2's left-associated (x²+y²)+z² per atom
// is part of the pinned bit pattern, so this one reduction must not be
// restructured plane-wise.
func KineticEnergy[T vec.Float](vel Coords[T]) T {
	var ke T
	for i := 0; i < vel.Len(); i++ {
		ke += vel.At(i).Norm2()
	}
	return ke / 2
}
