package md

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/vec"
)

// XYZ trajectory I/O: the simplest interchange format downstream
// visualization tools accept. Each frame is
//
//	<N>
//	<comment line>
//	<symbol> <x> <y> <z>     (N lines)
//
// The writer/reader pair round-trips bit-exactly through %.17g.

// XYZWriter streams frames to an io.Writer.
type XYZWriter struct {
	w      *bufio.Writer
	symbol string
	frames int
}

// NewXYZWriter wraps w; symbol labels every atom (e.g. "Ar").
func NewXYZWriter(w io.Writer, symbol string) *XYZWriter {
	if symbol == "" {
		symbol = "X"
	}
	return &XYZWriter{w: bufio.NewWriter(w), symbol: symbol}
}

// WriteFrame appends one snapshot with the given comment.
func (x *XYZWriter) WriteFrame(comment string, pos Coords[float64]) error {
	if strings.ContainsAny(comment, "\n\r") {
		return fmt.Errorf("md: XYZ comment must be a single line")
	}
	if _, err := fmt.Fprintf(x.w, "%d\n%s\n", pos.Len(), comment); err != nil {
		return err
	}
	for i := 0; i < pos.Len(); i++ {
		p := pos.At(i)
		if _, err := fmt.Fprintf(x.w, "%s %.17g %.17g %.17g\n", x.symbol, p.X, p.Y, p.Z); err != nil {
			return err
		}
	}
	x.frames++
	return nil
}

// Frames returns the number of frames written.
func (x *XYZWriter) Frames() int { return x.frames }

// Flush drains the buffer; call before closing the destination.
func (x *XYZWriter) Flush() error { return x.w.Flush() }

// XYZFrame is one parsed snapshot.
type XYZFrame struct {
	Comment string
	Symbols []string
	Pos     []vec.V3[float64]
}

// XYZReader parses frames from an io.Reader.
type XYZReader struct {
	s    *bufio.Scanner
	line int
}

// NewXYZReader wraps r.
func NewXYZReader(r io.Reader) *XYZReader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1024*1024), 1024*1024)
	return &XYZReader{s: s}
}

func (x *XYZReader) next() (string, bool) {
	if !x.s.Scan() {
		return "", false
	}
	x.line++
	return x.s.Text(), true
}

// ReadFrame parses the next frame; io.EOF signals a clean end.
func (x *XYZReader) ReadFrame() (*XYZFrame, error) {
	header, ok := x.next()
	if !ok {
		if err := x.s.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	n, err := strconv.Atoi(strings.TrimSpace(header))
	if err != nil || n < 0 {
		return nil, fmt.Errorf("md: line %d: bad atom count %q", x.line, header)
	}
	comment, ok := x.next()
	if !ok {
		return nil, fmt.Errorf("md: line %d: truncated frame (missing comment)", x.line)
	}
	f := &XYZFrame{Comment: comment, Symbols: make([]string, 0, n), Pos: make([]vec.V3[float64], 0, n)}
	for i := 0; i < n; i++ {
		line, ok := x.next()
		if !ok {
			return nil, fmt.Errorf("md: line %d: truncated frame (%d of %d atoms)", x.line, i, n)
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("md: line %d: want 'sym x y z', got %q", x.line, line)
		}
		px, err1 := strconv.ParseFloat(fields[1], 64)
		py, err2 := strconv.ParseFloat(fields[2], 64)
		pz, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("md: line %d: bad coordinates %q", x.line, line)
		}
		f.Symbols = append(f.Symbols, fields[0])
		f.Pos = append(f.Pos, vec.V3[float64]{X: px, Y: py, Z: pz})
	}
	return f, nil
}

// ReadAll parses every remaining frame.
func (x *XYZReader) ReadAll() ([]*XYZFrame, error) {
	var frames []*XYZFrame
	for {
		f, err := x.ReadFrame()
		if err == io.EOF {
			return frames, nil
		}
		if err != nil {
			return frames, err
		}
		frames = append(frames, f)
	}
}
