package md

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
	"repro/internal/xrand"
)

func TestRDFValidation(t *testing.T) {
	if _, err := NewRDF(0, 1, 10); err == nil {
		t.Fatal("zero box accepted")
	}
	if _, err := NewRDF(10, 0, 10); err == nil {
		t.Fatal("zero rMax accepted")
	}
	if _, err := NewRDF(10, 1, 0); err == nil {
		t.Fatal("zero bins accepted")
	}
	if _, err := NewRDF(10, 6, 10); err == nil {
		t.Fatal("rMax beyond box/2 accepted")
	}
}

func TestRDFIdealGasIsFlat(t *testing.T) {
	// For uniformly random (ideal gas) positions, g(r) ~ 1 everywhere.
	const box = 12.0
	rdf, err := NewRDF(box, box/2*0.99, 24)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	const n, frames = 400, 20
	for f := 0; f < frames; f++ {
		pos := MakeCoords[float64](n)
		for i := 0; i < n; i++ {
			pos.Set(i, vec.V3[float64]{X: box * rng.Float64(), Y: box * rng.Float64(), Z: box * rng.Float64()})
		}
		rdf.Accumulate(pos)
	}
	if rdf.Frames() != frames {
		t.Fatalf("Frames = %d", rdf.Frames())
	}
	centers, g := rdf.Result()
	// Ignore the first bins (few counts, noisy).
	for b := 4; b < len(g); b++ {
		if math.Abs(g[b]-1) > 0.25 {
			t.Fatalf("ideal-gas g(%v) = %v, want ~1", centers[b], g[b])
		}
	}
}

func TestRDFLiquidHasFirstPeak(t *testing.T) {
	// An equilibrated LJ liquid shows a first peak near r = 1.1 sigma
	// with g > 1.5, and g ~ 0 inside the core.
	s := makeSystem(t, 500, false)
	s.Run(50)
	rdf, err := NewRDF(s.P.Box, 2.5, 50)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 10; f++ {
		s.Run(5)
		rdf.Accumulate(s.Pos)
	}
	centers, g := rdf.Result()
	var peak float64
	var peakR float64
	coreMax := 0.0
	for b := range g {
		if centers[b] < 0.8 && g[b] > coreMax {
			coreMax = g[b]
		}
		if g[b] > peak {
			peak, peakR = g[b], centers[b]
		}
	}
	if coreMax > 0.1 {
		t.Fatalf("g(r) inside the repulsive core = %v, want ~0", coreMax)
	}
	if peak < 1.5 || peakR < 0.9 || peakR > 1.4 {
		t.Fatalf("first peak g=%v at r=%v, want >1.5 near 1.1", peak, peakR)
	}
}

func TestRDFEmptyResult(t *testing.T) {
	rdf, err := NewRDF(10, 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, g := rdf.Result()
	for _, v := range g {
		if v != 0 {
			t.Fatal("non-zero g(r) with no frames")
		}
	}
}

func TestMSDStationaryIsZero(t *testing.T) {
	s := makeSystem(t, 64, false)
	msd := NewMSD(s.P.Box, s.Pos)
	for i := 0; i < 5; i++ {
		if err := msd.Track(s.Pos); err != nil {
			t.Fatal(err)
		}
	}
	if msd.Value() != 0 {
		t.Fatalf("MSD of a frozen system = %v", msd.Value())
	}
}

func TestMSDGrowsInLiquid(t *testing.T) {
	s := makeSystem(t, 256, false)
	msd := NewMSD(s.P.Box, s.Pos)
	var prev float64
	for block := 0; block < 4; block++ {
		for i := 0; i < 25; i++ {
			s.Step()
			if err := msd.Track(s.Pos); err != nil {
				t.Fatal(err)
			}
		}
		cur := msd.Value()
		if cur <= prev {
			t.Fatalf("MSD not increasing: %v -> %v at block %d", prev, cur, block)
		}
		prev = cur
	}
}

func TestMSDHandlesBoundaryCrossing(t *testing.T) {
	// One atom drifting at constant velocity through the boundary: MSD
	// must grow quadratically, not reset at the wrap.
	const box = 10.0
	pos := CoordsFromV3([]vec.V3[float64]{{X: 9.5, Y: 5, Z: 5}})
	msd := NewMSD(box, pos)
	const step = 0.2
	for i := 1; i <= 20; i++ {
		pos.Set(0, Wrap(vec.V3[float64]{X: 9.5 + step*float64(i), Y: 5, Z: 5}, box))
		if err := msd.Track(pos); err != nil {
			t.Fatal(err)
		}
	}
	want := (step * 20) * (step * 20)
	if math.Abs(msd.Value()-want) > 1e-9 {
		t.Fatalf("MSD across boundary = %v, want %v", msd.Value(), want)
	}
}

func TestMSDSizeMismatch(t *testing.T) {
	msd := NewMSD(10, MakeCoords[float64](4))
	if err := msd.Track(MakeCoords[float64](3)); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestVirialSignAtHighDensity(t *testing.T) {
	// A strongly compressed lattice is dominated by repulsion: positive
	// virial, positive pressure.
	s := makeSystemDensity(t, 256, 1.2)
	w := Virial(s.P, s.Pos)
	if w <= 0 {
		t.Fatalf("virial at density 1.2 = %v, want > 0", w)
	}
	if p := Pressure(s.P, s.Pos, 0.7); p <= 0 {
		t.Fatalf("pressure at density 1.2 = %v, want > 0", p)
	}
}

func TestVirialNearZeroForDiluteGas(t *testing.T) {
	s := makeSystemDensity(t, 128, 0.05)
	vol := s.P.Box * s.P.Box * s.P.Box
	idealP := float64(s.N()) * 0.7 / vol
	p := Pressure(s.P, s.Pos, 0.7)
	if math.Abs(p-idealP) > 0.5*idealP {
		t.Fatalf("dilute pressure %v far from ideal %v", p, idealP)
	}
}

func makeSystemDensity(t *testing.T, n int, density float64) *System[float64] {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: density, Temperature: 0.7, Kind: lattice.FCC, Seed: 55,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
	if 2*p.Cutoff > p.Box {
		p.Cutoff = p.Box / 2 * 0.99
	}
	s, err := NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestVACFValidation(t *testing.T) {
	if _, err := NewVACF(0); err == nil {
		t.Fatal("zero lags accepted")
	}
}

func TestVACFBallisticParticlesStayCorrelated(t *testing.T) {
	// Constant velocities: C(τ) = 1 for every lag.
	v, err := NewVACF(5)
	if err != nil {
		t.Fatal(err)
	}
	vel := CoordsFromV3([]vec.V3[float64]{{X: 1}, {Y: -2}, {Z: 0.5}})
	for i := 0; i < 10; i++ {
		if err := v.Track(vel); err != nil {
			t.Fatal(err)
		}
	}
	for lag, c := range v.Result() {
		if math.Abs(c-1) > 1e-12 {
			t.Fatalf("C(%d) = %v, want 1 for ballistic motion", lag, c)
		}
	}
}

func TestVACFDecaysInLiquid(t *testing.T) {
	s := makeSystem(t, 256, false)
	s.Run(50) // partially equilibrate
	v, err := NewVACF(25)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		s.Step()
		if err := v.Track(s.Vel); err != nil {
			t.Fatal(err)
		}
	}
	c := v.Result()
	if math.Abs(c[0]-1) > 1e-12 {
		t.Fatalf("C(0) = %v", c[0])
	}
	if c[20] >= 0.9 {
		t.Fatalf("C(20) = %v; collisions should decorrelate velocities", c[20])
	}
}

func TestVACFEmptyResult(t *testing.T) {
	v, err := NewVACF(3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range v.Result() {
		if c != 0 {
			t.Fatal("unsampled VACF not zero")
		}
	}
}

func TestVACFSizeMismatch(t *testing.T) {
	v, err := NewVACF(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Track(MakeCoords[float64](4)); err != nil {
		t.Fatal(err)
	}
	if err := v.Track(MakeCoords[float64](5)); err == nil {
		t.Fatal("size change accepted")
	}
}
