// soa_diff_test.go is the differential harness pinning the SoA hot-state
// refactor bitwise against the AoS layout it replaced: randomized
// thermalized systems are stepped under every force method × worker
// count × precision combination, every step's full state (positions,
// velocities, accelerations, PE, KE) is folded into a SHA-256 in a
// canonical atom-major byte order that is independent of the in-memory
// layout, and the digests are compared against goldens recorded from
// the pre-refactor AoS build (testdata/soa_goldens.json, committed at
// the seed commit of PR 10). A single flipped bit anywhere in any
// trajectory changes the digest.
//
// The test lives in package md_test so it can drive the parallel
// engine (internal/parallel imports internal/md).
//
// Regenerate goldens (only legitimate when the trajectory bytes are
// *supposed* to change, which the SoA refactor explicitly is not):
//
//	go test ./internal/md -run TestSoATrajectoryGoldens -update-soa-goldens
package md_test

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/parallel"
	"repro/internal/vec"
)

// Layout-independent element accessors: the serializer below reads
// state only through these, so the golden bytes are defined by the
// (atom, component) order alone, not by how System stores it.
func bitsOf(v float64) uint64                              { return math.Float64bits(v) }
func posAt(sys *md.System[float64], i int) vec.V3[float64] { return sys.Pos.At(i) }
func velAt(sys *md.System[float64], i int) vec.V3[float64] { return sys.Vel.At(i) }
func accAt(sys *md.System[float64], i int) vec.V3[float64] { return sys.Acc.At(i) }

var updateSoAGoldens = flag.Bool("update-soa-goldens", false,
	"rewrite testdata/soa_goldens.json from the current build")

const (
	soaAtoms   = 500
	soaDensity = 0.8
	soaTemp    = 1.2
	soaCutoff  = 2.5
	soaDt      = 0.004
	soaSkin    = 0.4
	soaSteps   = 30
)

var soaSeeds = []uint64{11, 42}

// soaCase is one (method, workers) trajectory configuration. Workers is
// 0 for the serial methods.
type soaCase struct {
	Method  string
	Workers int
}

// soaCases sweeps all force methods; the parallel families sweep
// Workers ∈ {1, 2, 4, 8} because the scatter/tree-reduce kernels'
// output bytes legitimately depend on the worker count (each count is
// its own golden), while the F32 gather kernel's do not (pinned
// elsewhere; swept here anyway as four independent goldens).
func soaCases() []soaCase {
	cases := []soaCase{
		{Method: "direct"}, {Method: "pairlist"}, {Method: "cellgrid"},
		{Method: "pairlist-f32"}, {Method: "cellgrid-f32"},
	}
	for _, m := range []string{"pardirect", "parpairlist", "parcellgrid", "parpairlist-f32"} {
		for _, w := range []int{1, 2, 4, 8} {
			cases = append(cases, soaCase{Method: m, Workers: w})
		}
	}
	return cases
}

// newSoASystem builds the randomized thermalized starting state for a
// seed: lattice positions, Maxwell-Boltzmann velocities, forces
// evaluated once by NewSystem.
func newSoASystem(t testing.TB, seed uint64) *md.System[float64] {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: soaAtoms, Density: soaDensity, Temperature: soaTemp,
		Kind: lattice.FCC, Seed: seed,
	})
	if err != nil {
		t.Fatalf("lattice.Generate: %v", err)
	}
	sys, err := md.NewSystem(st, md.Params[float64]{Box: st.Box, Cutoff: soaCutoff, Dt: soaDt})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	return sys
}

// soaForces wires the force evaluation for one case, mirroring
// mdrun.buildForces. The returned cleanup closes any engine.
func soaForces(t testing.TB, sys *md.System[float64], c soaCase) (forces func() float64, cleanup func()) {
	t.Helper()
	noop := func() {}
	newEngine := func() *parallel.Engine[float64] {
		return parallel.New[float64](c.Workers)
	}
	switch c.Method {
	case "direct":
		return func() float64 { return md.ComputeForces(sys.P, sys.Pos, sys.Acc) }, noop
	case "pairlist":
		nl, err := md.NewNeighborList[float64](soaSkin)
		if err != nil {
			t.Fatalf("NewNeighborList: %v", err)
		}
		return func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }, noop
	case "cellgrid":
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			t.Fatalf("NewCellList: %v", err)
		}
		return func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }, noop
	case "pardirect":
		e := newEngine()
		return func() float64 { return e.ForcesDirect(sys.P, sys.Pos, sys.Acc) }, e.Close
	case "parpairlist":
		nl, err := md.NewNeighborList[float64](soaSkin)
		if err != nil {
			t.Fatalf("NewNeighborList: %v", err)
		}
		e := newEngine()
		return func() float64 { return e.ForcesPairlist(nl, sys.P, sys.Pos, sys.Acc) }, e.Close
	case "parcellgrid":
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			t.Fatalf("NewCellList: %v", err)
		}
		e := newEngine()
		return func() float64 { return e.ForcesCell(cl, sys.P, sys.Pos, sys.Acc) }, e.Close
	case "pairlist-f32":
		mx, nl := newSoAMixed(t, sys)
		return func() float64 {
			mx.Refresh(sys.Pos)
			return md.ForcesPairlistMixed(nl, mx.P, mx.Pos, sys.Acc)
		}, noop
	case "parpairlist-f32":
		mx, nl := newSoAMixed(t, sys)
		e := newEngine()
		return func() float64 {
			mx.Refresh(sys.Pos)
			return e.ForcesPairlistF32(nl, mx.P, mx.Pos, sys.Acc)
		}, e.Close
	case "cellgrid-f32":
		mx, err := md.NewMirror32(sys.P)
		if err != nil {
			t.Fatalf("NewMirror32: %v", err)
		}
		cl, err := md.NewCellList(mx.P.Box, mx.P.Cutoff)
		if err != nil {
			t.Fatalf("NewCellList(f32): %v", err)
		}
		return func() float64 {
			mx.Refresh(sys.Pos)
			return md.ForcesCellMixed(cl, mx.P, mx.Pos, sys.Acc)
		}, noop
	default:
		t.Fatalf("unknown method %q", c.Method)
		return nil, nil
	}
}

func newSoAMixed(t testing.TB, sys *md.System[float64]) (*md.Mirror32, *md.NeighborList[float32]) {
	t.Helper()
	mx, err := md.NewMirror32(sys.P)
	if err != nil {
		t.Fatalf("NewMirror32: %v", err)
	}
	nl, err := md.NewNeighborList[float32](float32(soaSkin))
	if err != nil {
		t.Fatalf("NewNeighborList(f32): %v", err)
	}
	return mx, nl
}

// appendStateBytes serializes the full dynamic state in the canonical,
// layout-independent order: for each atom, pos.x pos.y pos.z, then all
// velocities, then all accelerations (atom-major, float64 LE bits),
// then PE and KE. This is the byte stream whose SHA-256 the goldens
// pin, so it must never depend on how the state is stored in memory.
func appendStateBytes(buf []byte, sys *md.System[float64]) []byte {
	f := func(buf []byte, v float64) []byte {
		return binary.LittleEndian.AppendUint64(buf, bitsOf(v))
	}
	n := sys.N()
	for i := 0; i < n; i++ {
		p := posAt(sys, i)
		buf = f(f(f(buf, p.X), p.Y), p.Z)
	}
	for i := 0; i < n; i++ {
		v := velAt(sys, i)
		buf = f(f(f(buf, v.X), v.Y), v.Z)
	}
	for i := 0; i < n; i++ {
		a := accAt(sys, i)
		buf = f(f(f(buf, a.X), a.Y), a.Z)
	}
	return f(f(buf, sys.PE), sys.KE)
}

// soaTrajectoryDigest steps one case and returns the hex SHA-256 over
// every step's canonical state bytes (including the initial state, so
// NewSystem's first force evaluation is pinned too).
func soaTrajectoryDigest(t testing.TB, seed uint64, c soaCase) string {
	sys := newSoASystem(t, seed)
	forces, cleanup := soaForces(t, sys, c)
	defer cleanup()
	h := sha256.New()
	buf := make([]byte, 0, sys.N()*9*8+16)
	h.Write(appendStateBytes(buf, sys))
	for s := 0; s < soaSteps; s++ {
		sys.StepWith(forces)
		h.Write(appendStateBytes(buf[:0], sys))
	}
	return hex.EncodeToString(h.Sum(nil))
}

func soaCaseKey(seed uint64, c soaCase) string {
	if c.Workers == 0 {
		return fmt.Sprintf("seed%d/%s", seed, c.Method)
	}
	return fmt.Sprintf("seed%d/%s/w%d", seed, c.Method, c.Workers)
}

const soaGoldenPath = "testdata/soa_goldens.json"

// TestSoATrajectoryGoldens is the differential gate: every method ×
// workers × precision trajectory must reproduce, byte for byte, the
// trajectory the AoS layout produced at the seed commit.
func TestSoATrajectoryGoldens(t *testing.T) {
	if testing.Short() {
		t.Skip("differential trajectory sweep is not -short")
	}
	digests := make(map[string]string)
	for _, seed := range soaSeeds {
		for _, c := range soaCases() {
			key := soaCaseKey(seed, c)
			t.Run(key, func(t *testing.T) {
				digests[key] = soaTrajectoryDigest(t, seed, c)
			})
		}
	}

	if *updateSoAGoldens {
		keys := make([]string, 0, len(digests))
		for k := range digests {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ordered := make(map[string]string, len(digests))
		for _, k := range keys {
			ordered[k] = digests[k]
		}
		data, err := json.MarshalIndent(ordered, "", "  ")
		if err != nil {
			t.Fatalf("marshal goldens: %v", err)
		}
		if err := os.MkdirAll(filepath.Dir(soaGoldenPath), 0o755); err != nil {
			t.Fatalf("mkdir testdata: %v", err)
		}
		if err := os.WriteFile(soaGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write goldens: %v", err)
		}
		t.Logf("wrote %d goldens to %s", len(ordered), soaGoldenPath)
		return
	}

	data, err := os.ReadFile(soaGoldenPath)
	if err != nil {
		t.Fatalf("read goldens (regenerate with -update-soa-goldens ONLY if trajectories are meant to change): %v", err)
	}
	var want map[string]string
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse goldens: %v", err)
	}
	if len(want) != len(digests) {
		t.Errorf("golden file has %d entries, sweep produced %d", len(want), len(digests))
	}
	for key, got := range digests {
		w, ok := want[key]
		if !ok {
			t.Errorf("%s: no golden recorded", key)
			continue
		}
		if got != w {
			t.Errorf("%s: trajectory diverged from AoS golden\n  got  %s\n  want %s", key, got, w)
		}
	}
}
