package md

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
)

// makeSystem builds a small equilibrating system for integration tests.
func makeSystem(t *testing.T, n int, shifted bool) *System[float64] {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 12345,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004, Shifted: shifted}
	if 2*p.Cutoff > p.Box {
		p.Cutoff = p.Box / 2 * 0.99
	}
	s, err := NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemEvaluatesForces(t *testing.T) {
	s := makeSystem(t, 108, false)
	if s.PE == 0 {
		t.Fatal("PE is zero after NewSystem; forces not evaluated")
	}
	anyAcc := false
	for _, a := range s.Acc.V3s() {
		if a.Norm2() > 0 {
			anyAcc = true
			break
		}
	}
	if !anyAcc {
		t.Fatal("all accelerations zero after NewSystem")
	}
}

func TestNewSystemRejectsBadParams(t *testing.T) {
	st, err := lattice.Generate(lattice.Config{N: 8, Density: 0.8, Temperature: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystem(st, Params[float64]{Box: st.Box, Cutoff: 0, Dt: 0.001}); err == nil {
		t.Fatal("NewSystem accepted zero cutoff")
	}
}

func TestEnergyConservation(t *testing.T) {
	// With the shifted potential (continuous at the cutoff) velocity
	// Verlet conserves total energy to high accuracy over hundreds of
	// steps.
	s := makeSystem(t, 108, true)
	e0 := s.TotalEnergy()
	s.Run(300)
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 5e-4 {
		t.Fatalf("relative energy drift %v over 300 steps (E0=%v, E1=%v)", drift, e0, e1)
	}
}

func TestEnergyDriftShrinksWithDt(t *testing.T) {
	// Verlet is second order: quartering dt should reduce drift by
	// roughly 16x; we assert at least 4x to stay robust.
	drift := func(dt float64, steps int) float64 {
		st, err := lattice.Generate(lattice.Config{
			N: 64, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 777,
		})
		if err != nil {
			t.Fatal(err)
		}
		p := Params[float64]{Box: st.Box, Cutoff: 2.0, Dt: dt, Shifted: true}
		s, err := NewSystem(st, p)
		if err != nil {
			t.Fatal(err)
		}
		e0 := s.TotalEnergy()
		s.Run(steps)
		return math.Abs(s.TotalEnergy()-e0) / math.Abs(e0)
	}
	// Same physical time: dt, 4*steps vs 4*dt, steps.
	big := drift(0.008, 50)
	smallD := drift(0.002, 200)
	if smallD > big/4+1e-12 {
		t.Fatalf("drift did not shrink with dt: dt=0.008 -> %v, dt=0.002 -> %v", big, smallD)
	}
}

func TestMomentumConservation(t *testing.T) {
	s := makeSystem(t, 108, false)
	p0 := s.Momentum()
	s.Run(200)
	p1 := s.Momentum()
	if p1.Sub(p0).Norm() > 1e-9 {
		t.Fatalf("momentum drifted from %v to %v", p0, p1)
	}
}

func TestPositionsStayWrapped(t *testing.T) {
	s := makeSystem(t, 64, false)
	s.Run(100)
	for i, p := range s.Pos.V3s() {
		if p.X < 0 || p.X >= s.P.Box || p.Y < 0 || p.Y >= s.P.Box || p.Z < 0 || p.Z >= s.P.Box {
			t.Fatalf("atom %d escaped the box: %+v", i, p)
		}
	}
}

func TestStepsCounter(t *testing.T) {
	s := makeSystem(t, 32, false)
	s.Run(17)
	if s.Steps != 17 {
		t.Fatalf("Steps = %d, want 17", s.Steps)
	}
}

func TestCloneIsDeep(t *testing.T) {
	s := makeSystem(t, 32, false)
	c := s.Clone()
	s.Run(5)
	if c.Steps != 0 {
		t.Fatal("clone's step counter advanced with original")
	}
	if c.Pos.At(0) == s.Pos.At(0) && c.Vel.At(0) == s.Vel.At(0) {
		t.Fatal("clone shares state with original after stepping")
	}
}

func TestCloneRunsIdentically(t *testing.T) {
	s := makeSystem(t, 32, false)
	c := s.Clone()
	s.Run(20)
	c.Run(20)
	for i := 0; i < s.N(); i++ {
		if s.Pos.At(i) != c.Pos.At(i) {
			t.Fatalf("clone diverged at atom %d", i)
		}
	}
	if s.PE != c.PE || s.KE != c.KE {
		t.Fatal("clone energies diverged")
	}
}

func TestTemperatureMatchesDefinition(t *testing.T) {
	s := makeSystem(t, 100, false)
	want := 2 * s.KE / (3 * float64(s.N()))
	if got := s.Temperature(); got != want {
		t.Fatalf("Temperature = %v, want %v", got, want)
	}
}

func TestFloat32TracksFloat64Briefly(t *testing.T) {
	// The single-precision system (what Cell/GPU run) should track the
	// double-precision trajectory closely over a few steps.
	st, err := lattice.Generate(lattice.Config{
		N: 64, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	p64 := Params[float64]{Box: st.Box, Cutoff: 2.0, Dt: 0.004}
	p32 := Params[float32]{Box: float32(st.Box), Cutoff: 2.0, Dt: 0.004}
	s64, err := NewSystem(st, p64)
	if err != nil {
		t.Fatal(err)
	}
	s32, err := NewSystem(st, p32)
	if err != nil {
		t.Fatal(err)
	}
	s64.Run(10)
	s32.Run(10)
	rel := math.Abs(float64(s32.PE)-s64.PE) / math.Abs(s64.PE)
	if rel > 1e-4 {
		t.Fatalf("float32 PE diverged from float64 by %v after 10 steps", rel)
	}
}

func TestStepWithCustomForces(t *testing.T) {
	// StepWith with the reference kernel must equal Step exactly.
	a := makeSystem(t, 32, false)
	b := a.Clone()
	a.Step()
	b.StepWith(func() float64 { return ComputeForces(b.P, b.Pos, b.Acc) })
	for i := 0; i < a.N(); i++ {
		if a.Pos.At(i) != b.Pos.At(i) || a.Vel.At(i) != b.Vel.At(i) {
			t.Fatalf("StepWith diverged from Step at atom %d", i)
		}
	}
}

func TestKineticEnergyHandChecked(t *testing.T) {
	ke := KineticEnergy(CoordsFromV3([]vec.V3[float64]{{X: 1}, {Y: 2}}))
	if ke != 0.5*(1+4) {
		t.Fatalf("KE = %v, want 2.5", ke)
	}
}

func TestVerletTimeReversibility(t *testing.T) {
	// Velocity Verlet is time-reversible: run forward, negate the
	// velocities, run the same number of steps, and the system returns
	// to its starting point (up to floating-point roundoff).
	s := makeSystem(t, 108, true)
	start := s.Clone()
	const steps = 40
	s.Run(steps)
	for i := 0; i < s.N(); i++ {
		s.Vel.Set(i, s.Vel.At(i).Neg())
	}
	s.Run(steps)
	for i := 0; i < s.N(); i++ {
		d := MinImage(s.Pos.At(i).Sub(start.Pos.At(i)), s.P.Box).Norm()
		if d > 1e-7 {
			t.Fatalf("atom %d did not return: displaced by %v", i, d)
		}
	}
}
