package md

import (
	"fmt"
	"slices"

	"repro/internal/vec"
)

// NeighborList is the Verlet pairlist optimization the paper describes
// as "one of the most common techniques" for taming the MD kernel's
// cache behaviour (section 3.4) — and then deliberately avoids, to keep
// the kernel's memory access pattern irregular. It lives here for the
// ablation benches that quantify exactly what the paper left on the
// table on the cache-based baseline.
//
// The list stores, for every atom i, the atoms j > i within
// Cutoff+Skin. It is valid until some atom has moved more than Skin/2
// since the last build, at which point pairs may be missed and the list
// must be rebuilt.
type NeighborList[T vec.Float] struct {
	Skin T // extra shell beyond the cutoff (> 0)

	pairs   [][]int32 // pairs[i] = neighbors j > i, ascending
	ref     Coords[T] // positions at build time
	builds  int       // number of (re)builds performed
	queries int       // number of force evaluations served

	// rowArena backs every row with stride int32 slots so steady-state
	// rebuilds append within capacity instead of ratcheting per-row
	// allocations forever (a row whose occupancy sets a new all-time
	// high would otherwise realloc — across thousands of rows that
	// tail never dies). A row that overflows its stride escapes the
	// arena for that one build; EndBuild then re-strides with slack,
	// so overflow is self-healing and allocation stays off the steady
	// state.
	rowArena []int32
	stride   int

	// grid is the cell binning the build gathers over, embedded by
	// value so rebuilds re-geometry it in place (reinit) instead of
	// reconstructing — its arenas persist across box/dims changes and
	// the erroring constructor stays off the hot path. gridOK is false
	// when the box cannot support cell binning and the build falls back
	// to the reference O(N²) scan.
	grid   CellList[T]
	gridOK bool
}

// NewNeighborList creates an empty list with the given skin width.
func NewNeighborList[T vec.Float](skin T) (*NeighborList[T], error) {
	if skin <= 0 {
		return nil, fmt.Errorf("md: neighbor list skin must be positive, got %v", skin)
	}
	return &NeighborList[T]{Skin: skin}, nil
}

// Builds returns how many times the list has been (re)built.
func (nl *NeighborList[T]) Builds() int { return nl.builds }

// Queries returns how many force evaluations the list has served.
func (nl *NeighborList[T]) Queries() int { return nl.queries }

// Build rebuilds the list from the current positions. When the box can
// hold a 3×3×3 grid of (Cutoff+Skin)-wide cells the build bins atoms
// and gathers each row from the 27 neighboring cells — O(N·density)
// instead of the reference scan's O(N²) — and otherwise falls back to
// the O(N²) scan. Both paths emit, for every atom i, exactly the
// neighbors j > i within Cutoff+Skin in ascending-j order, so the
// built list (and every force evaluation over it) is bitwise
// independent of the path taken. BuildN2 pins this in the tests.
func (nl *NeighborList[T]) Build(p Params[T], pos Coords[T]) {
	grid := nl.BeginBuild(p, pos)
	for i := 0; i < pos.Len(); i++ {
		nl.BuildRow(p, pos, grid, i)
	}
	nl.EndBuild(pos)
}

// BuildN2 rebuilds the list with the reference O(N²) scan regardless
// of whether the box supports cell binning — the oracle the property
// tests, the fuzz target, and the build benchmarks compare the
// cell-binned and parallel builds against.
func (nl *NeighborList[T]) BuildN2(p Params[T], pos Coords[T]) {
	nl.sizeRows(pos.Len())
	for i := 0; i < pos.Len(); i++ {
		nl.BuildRow(p, pos, nil, i)
	}
	nl.EndBuild(pos)
}

// maxBuildGridDims bounds the build grid's per-edge cell count: more
// cells than ~8 atoms' worth buys nothing (most cells are empty) and a
// pathological box/cutoff ratio must not size a grid at all. The floor
// of 3 is the CellList minimum; the hard ceiling keeps the head array
// bounded for any input.
func maxBuildGridDims(n int) int {
	const hardCap = 128 // 128³ cells ≈ 2M int32 heads, the most a build may allocate
	d := 3
	for d < hardCap && (d+1)*(d+1)*(d+1) <= 8*n {
		d++
	}
	return d
}

// buildGridDims returns the per-edge cell count for the cell-binned
// build, or 0 when the geometry forces the O(N²) fallback. Guards are
// written so NaN/Inf boxes and radii answer 0 or a clamped grid, never
// a panic: the comparison form !(x > 0) is false-for-NaN on both sides.
func buildGridDims[T vec.Float](box, rl T, n int) int {
	if !(box > 0) || !(rl > 0) {
		return 0
	}
	r := box / rl // +Inf when rl underflows the division; handled below
	if !(r >= 3) {
		return 0
	}
	maxDims := maxBuildGridDims(n)
	if r >= T(maxDims) { // also catches +Inf before any float→int conversion
		return maxDims
	}
	return int(r)
}

// BeginBuild prepares a rebuild: it sizes the row table and returns
// the cell grid rows should gather over, or nil when the box cannot
// support cell binning (rows then fall back to the O(N²) scan). It is
// exported, together with BuildRow and EndBuild, for the sharded
// parallel builder in internal/parallel; serial callers use Build.
func (nl *NeighborList[T]) BeginBuild(p Params[T], pos Coords[T]) *CellList[T] {
	nl.sizeRows(pos.Len())
	rl := p.Cutoff + nl.Skin
	dims := buildGridDims(p.Box, rl, pos.Len())
	if dims == 0 {
		nl.gridOK = false
		return nil
	}
	nl.grid.reinit(p.Box, dims)
	nl.gridOK = true
	nl.grid.BinWrapped(pos)
	return &nl.grid
}

// initialRowStride is the first-build guess at the per-row arena
// width; EndBuild re-strides from observed occupancy if it is short.
const initialRowStride = 64

// sizeRows resizes the row table to n atoms and points every row at
// its stride-wide arena slot (length 0, capacity stride — the 3-index
// slice keeps an overflowing append from bleeding into the next row).
// noinline keeps the grow-once makes a single ledger site each instead
// of one per inlined caller.
//
//go:noinline
func (nl *NeighborList[T]) sizeRows(n int) {
	if cap(nl.pairs) < n {
		nl.pairs = make([][]int32, n) //mdlint:ignore hotalloc amortized grow-once rebuild buffer, reused while capacity suffices
	}
	nl.pairs = nl.pairs[:n]
	if nl.stride == 0 {
		nl.stride = initialRowStride
	}
	if cap(nl.rowArena) < n*nl.stride {
		nl.rowArena = newRowArena(n * nl.stride)
	}
	nl.rowArena = nl.rowArena[:n*nl.stride]
	for i := range nl.pairs {
		off := i * nl.stride
		nl.pairs[i] = nl.rowArena[off:off : off+nl.stride]
	}
}

// newRowArena is the one audited allocation both the grow-once sizing
// and the rare re-stride share. noinline pins it as a single ledger
// site.
//
//go:noinline
func newRowArena(n int) []int32 {
	return make([]int32, n) //mdlint:ignore hotalloc amortized row arena; grows on atom-count or stride increase, reused otherwise
}

// restride widens the row arena when some row outgrew its slot this
// build (its append escaped the arena). The 25%+8 slack makes the
// stride converge in a handful of events per run, after which rebuilds
// are allocation-free; rows are copied so the committed list stays
// valid for force evaluations until the next build.
func (nl *NeighborList[T]) restride() {
	maxLen := 0
	for _, r := range nl.pairs {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	if maxLen <= nl.stride {
		return
	}
	stride := maxLen + maxLen/4 + 8
	arena := newRowArena(len(nl.pairs) * stride)
	for i, r := range nl.pairs {
		off := i * stride
		nl.pairs[i] = arena[off : off+len(r) : off+stride]
		copy(nl.pairs[i], r)
	}
	nl.rowArena, nl.stride = arena, stride
}

// BuildRow fills pairs[i]: the neighbors j > i within Cutoff+Skin, in
// ascending-j order. With a grid it gathers candidates from atom i's
// cell and its 26 periodic neighbors and sorts the survivors (the
// gather visits cells in shell order, so a sort restores the global
// ascending order the O(N²) scan produces by construction); with a nil
// grid it is the reference scan for one row. Rows are independent:
// the parallel builder shards them by range with no post-merge.
func (nl *NeighborList[T]) BuildRow(p Params[T], pos Coords[T], grid *CellList[T], i int) {
	row := nl.pairs[i][:0]
	rl := p.Cutoff + nl.Skin
	rl2 := rl * rl
	pi := pos.At(i)
	if grid == nil {
		for j := i + 1; j < pos.Len(); j++ {
			d := MinImage(pi.Sub(pos.At(j)), p.Box)
			if d.Norm2() < rl2 {
				row = append(row, int32(j))
			}
		}
		nl.pairs[i] = row
		return
	}
	var cellbuf [27]int
	order, packed := grid.order, grid.packed
	for _, c := range grid.NeighborCells(grid.CellOfWrapped(pi), cellbuf[:]) {
		lo, hi := grid.CellSpan(c)
		// order is ascending within the run, so the j <= i prefix ends at
		// the first index past i; everything after it needs only the
		// distance test.
		k := lo
		for k < hi && int(order[k]) <= i {
			k++
		}
		for ; k < hi; k++ {
			d := MinImage(pi.Sub(packed.At(int(k))), p.Box)
			if d.Norm2() < rl2 {
				row = append(row, order[k])
			}
		}
	}
	slices.Sort(row)
	nl.pairs[i] = row
}

// EndBuild commits a rebuild: reference positions for the staleness
// check, and the build counter. A build abandoned before EndBuild (a
// cancelled parallel build) leaves ref at the last committed build,
// so Stale keeps answering true and the next evaluation rebuilds — a
// torn row table is never trusted. The per-plane appends are amortized
// grow-once and invisible to the steady state.
func (nl *NeighborList[T]) EndBuild(pos Coords[T]) {
	nl.restride()
	nl.ref.X = append(nl.ref.X[:0], pos.X...)
	nl.ref.Y = append(nl.ref.Y[:0], pos.Y...)
	nl.ref.Z = append(nl.ref.Z[:0], pos.Z...)
	nl.builds++
}

// Stale reports whether any atom has moved more than Skin/2 since the
// last build (in which case the list can no longer be trusted).
func (nl *NeighborList[T]) Stale(p Params[T], pos Coords[T]) bool {
	if nl.ref.Len() != pos.Len() {
		return true
	}
	limit := nl.Skin / 2
	limit2 := limit * limit
	for i := 0; i < pos.Len(); i++ {
		d := MinImage(pos.At(i).Sub(nl.ref.At(i)), p.Box)
		if d.Norm2() > limit2 {
			return true
		}
	}
	return false
}

// Forces evaluates the LJ forces using the list, rebuilding it first if
// it is stale. acc is overwritten; the return value is the potential
// energy. The result matches ComputeForces to rounding (the list only
// prunes pairs that are provably outside the cutoff).
func (nl *NeighborList[T]) Forces(p Params[T], pos Coords[T], acc Coords[T]) T {
	if nl.Stale(p, pos) {
		nl.Build(p, pos)
	}
	acc.Zero()
	rc2 := p.Cutoff * p.Cutoff
	var pe T
	for i, js := range nl.pairs {
		pi := pos.At(i)
		for _, j := range js {
			d := MinImage(pi.Sub(pos.At(int(j))), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			v, f := LJPair(p, r2)
			pe += v
			fd := d.Scale(f)
			acc.Add(i, fd)
			acc.Sub(int(j), fd)
		}
	}
	nl.queries++
	return pe
}

// Neighbors returns the stored neighbor indices j > i for atom i, valid
// until the next Build. Callers must treat the slice as read-only; it
// aliases the list's internal storage. This is the access path the
// parallel pair-chunk kernel shards over.
func (nl *NeighborList[T]) Neighbors(i int) []int32 { return nl.pairs[i] }

// PairCount returns the number of stored pairs, a direct measure of how
// much work the list saves versus the N(N-1)/2 full scan.
func (nl *NeighborList[T]) PairCount() int {
	total := 0
	for _, js := range nl.pairs {
		total += len(js)
	}
	return total
}
