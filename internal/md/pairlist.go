package md

import (
	"fmt"

	"repro/internal/vec"
)

// NeighborList is the Verlet pairlist optimization the paper describes
// as "one of the most common techniques" for taming the MD kernel's
// cache behaviour (section 3.4) — and then deliberately avoids, to keep
// the kernel's memory access pattern irregular. It lives here for the
// ablation benches that quantify exactly what the paper left on the
// table on the cache-based baseline.
//
// The list stores, for every atom i, the atoms j > i within
// Cutoff+Skin. It is valid until some atom has moved more than Skin/2
// since the last build, at which point pairs may be missed and the list
// must be rebuilt.
type NeighborList[T vec.Float] struct {
	Skin T // extra shell beyond the cutoff (> 0)

	pairs   [][]int32   // pairs[i] = neighbors j > i
	refPos  []vec.V3[T] // positions at build time
	builds  int         // number of (re)builds performed
	queries int         // number of force evaluations served
}

// NewNeighborList creates an empty list with the given skin width.
func NewNeighborList[T vec.Float](skin T) (*NeighborList[T], error) {
	if skin <= 0 {
		return nil, fmt.Errorf("md: neighbor list skin must be positive, got %v", skin)
	}
	return &NeighborList[T]{Skin: skin}, nil
}

// Builds returns how many times the list has been (re)built.
func (nl *NeighborList[T]) Builds() int { return nl.builds }

// Queries returns how many force evaluations the list has served.
func (nl *NeighborList[T]) Queries() int { return nl.queries }

// Build rebuilds the list from the current positions.
func (nl *NeighborList[T]) Build(p Params[T], pos []vec.V3[T]) {
	n := len(pos)
	if cap(nl.pairs) < n {
		nl.pairs = make([][]int32, n)
	}
	nl.pairs = nl.pairs[:n]
	rl := p.Cutoff + nl.Skin
	rl2 := rl * rl
	for i := 0; i < n; i++ {
		nl.pairs[i] = nl.pairs[i][:0]
		pi := pos[i]
		for j := i + 1; j < n; j++ {
			d := MinImage(pi.Sub(pos[j]), p.Box)
			if d.Norm2() < rl2 {
				nl.pairs[i] = append(nl.pairs[i], int32(j))
			}
		}
	}
	nl.refPos = append(nl.refPos[:0], pos...)
	nl.builds++
}

// Stale reports whether any atom has moved more than Skin/2 since the
// last build (in which case the list can no longer be trusted).
func (nl *NeighborList[T]) Stale(p Params[T], pos []vec.V3[T]) bool {
	if len(nl.refPos) != len(pos) {
		return true
	}
	limit := nl.Skin / 2
	limit2 := limit * limit
	for i := range pos {
		d := MinImage(pos[i].Sub(nl.refPos[i]), p.Box)
		if d.Norm2() > limit2 {
			return true
		}
	}
	return false
}

// Forces evaluates the LJ forces using the list, rebuilding it first if
// it is stale. acc is overwritten; the return value is the potential
// energy. The result matches ComputeForces to rounding (the list only
// prunes pairs that are provably outside the cutoff).
func (nl *NeighborList[T]) Forces(p Params[T], pos []vec.V3[T], acc []vec.V3[T]) T {
	if nl.Stale(p, pos) {
		nl.Build(p, pos)
	}
	for i := range acc {
		acc[i] = vec.V3[T]{}
	}
	rc2 := p.Cutoff * p.Cutoff
	var pe T
	for i, js := range nl.pairs {
		pi := pos[i]
		for _, j := range js {
			d := MinImage(pi.Sub(pos[j]), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			v, f := LJPair(p, r2)
			pe += v
			fd := d.Scale(f)
			acc[i] = acc[i].Add(fd)
			acc[j] = acc[j].Sub(fd)
		}
	}
	nl.queries++
	return pe
}

// Neighbors returns the stored neighbor indices j > i for atom i, valid
// until the next Build. Callers must treat the slice as read-only; it
// aliases the list's internal storage. This is the access path the
// parallel pair-chunk kernel shards over.
func (nl *NeighborList[T]) Neighbors(i int) []int32 { return nl.pairs[i] }

// PairCount returns the number of stored pairs, a direct measure of how
// much work the list saves versus the N(N-1)/2 full scan.
func (nl *NeighborList[T]) PairCount() int {
	total := 0
	for _, js := range nl.pairs {
		total += len(js)
	}
	return total
}
