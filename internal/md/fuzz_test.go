package md

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// FuzzXYZReader must never panic on arbitrary input, and any frame it
// accepts must survive a write/read round trip.
func FuzzXYZReader(f *testing.F) {
	f.Add("1\ncomment\nAr 1 2 3\n")
	f.Add("0\nempty\n")
	f.Add("2\nc\nAr 1 2 3\nAr 4 5 6\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewXYZReader(strings.NewReader(in))
		for {
			frame, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			// Accepted frames must be internally consistent.
			if len(frame.Symbols) != len(frame.Pos) {
				t.Fatalf("frame with %d symbols, %d positions", len(frame.Symbols), len(frame.Pos))
			}
		}
	})
}

// FuzzReadCheckpoint feeds arbitrary byte streams to the checkpoint
// reader: it must never panic and never allocate beyond what the
// stream backs (hostile length fields), and any stream it accepts must
// survive a write/read round trip bit-exactly.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a valid v2 file, a valid v1 file, and assorted garbage.
	st, err := lattice.Generate(lattice.Config{
		N: 8, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	sys, err := NewSystem(st, Params[float64]{Box: st.Box, Cutoff: st.Box / 2 * 0.99, Dt: 0.004})
	if err != nil {
		f.Fatal(err)
	}
	var v2, v1 bytes.Buffer
	if err := WriteCheckpoint(&v2, sys); err != nil {
		f.Fatal(err)
	}
	if err := writeCheckpointV1(&v1, sys); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("PCDM"))
	f.Add([]byte{0x50, 0x43, 0x44, 0x4d, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, s); err != nil {
			t.Fatalf("accepted checkpoint failed to re-serialize: %v", err)
		}
		s2, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted checkpoint rejected: %v", err)
		}
		if s2.N() != s.N() || s2.Steps != s.Steps || s2.P != s.P {
			t.Fatal("round trip of accepted checkpoint diverged")
		}
	})
}

// FuzzNeighborListBuild feeds the cell-binned build pathological
// geometry — zero or non-finite boxes, atoms exactly on box and cell
// boundaries, coincident atoms, out-of-range stragglers — and asserts
// it never panics or hangs, always produces well-formed rows (strictly
// ascending, in-bounds, j > i), and always matches the reference O(N²)
// build pair for pair: the two paths score identical MinImage
// distances, so any divergence is a binning coverage bug.
func FuzzNeighborListBuild(f *testing.F) {
	f.Add(9.0, 2.5, 0.4, uint64(1), uint8(32), uint8(0))
	f.Add(0.0, 2.5, 0.4, uint64(2), uint8(16), uint8(0))  // zero-size box
	f.Add(-3.0, 1.0, 0.3, uint64(3), uint8(16), uint8(0)) // negative box
	f.Add(math.Inf(1), 1.0, 0.3, uint64(4), uint8(8), uint8(0))
	f.Add(9.0, 2.5, 0.4, uint64(5), uint8(24), uint8(1))     // boundary atom
	f.Add(9.0, 2.5, 0.4, uint64(6), uint8(24), uint8(2))     // coincident atoms
	f.Add(9.0, 2.5, 0.4, uint64(7), uint8(24), uint8(4))     // out-of-range atom
	f.Add(1e-8, 1e-9, 1e-10, uint64(8), uint8(12), uint8(7)) // degenerate scale
	f.Fuzz(func(t *testing.T, box, cutoff, skin float64, seed uint64, n, patho uint8) {
		if skin <= 0 || skin != skin {
			skin = 0.3
		}
		nn := int(n%64) + 2
		span := box
		if !(span > 0) || span > 1e9 {
			span = 1
		}
		rng := xrand.New(seed)
		pos := make([]vec.V3[float64], nn)
		for i := range pos {
			pos[i] = vec.V3[float64]{
				X: rng.Float64() * span,
				Y: rng.Float64() * span,
				Z: rng.Float64() * span,
			}
		}
		if patho&1 != 0 { // exactly on the box edge (folds to 0)
			pos[0] = vec.V3[float64]{X: box, Y: box, Z: box}
		}
		if patho&2 != 0 && nn >= 3 { // coincident pile
			pos[1], pos[2] = pos[0], pos[0]
		}
		if patho&4 != 0 { // outside [0, box)
			pos[nn-1] = vec.V3[float64]{X: -span / 3, Y: 2.5 * span, Z: span / 2}
		}
		p := Params[float64]{Box: box, Cutoff: cutoff, Dt: 1}

		ref, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		ref.BuildN2(p, pos)
		got.Build(p, pos)
		for i := 0; i < nn; i++ {
			w, g := ref.Neighbors(i), got.Neighbors(i)
			if len(w) != len(g) {
				t.Fatalf("row %d: %d neighbors, want %d (box %v cutoff %v skin %v patho %d)",
					i, len(g), len(w), box, cutoff, skin, patho)
			}
			prev := int32(i)
			for k := range w {
				if g[k] != w[k] {
					t.Fatalf("row %d entry %d: %d, want %d (box %v cutoff %v skin %v patho %d)",
						i, k, g[k], w[k], box, cutoff, skin, patho)
				}
				if g[k] <= prev || int(g[k]) >= nn {
					t.Fatalf("row %d malformed: %d after %d (n=%d)", i, g[k], prev, nn)
				}
				prev = g[k]
			}
		}
	})
}

// FuzzMinImageAgreement checks the three minimum-image formulations on
// arbitrary in-range displacements.
func FuzzMinImageAgreement(f *testing.F) {
	f.Add(0.5, -0.5, 0.1)
	f.Add(4.9, -4.9, 0.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz float64) {
		checkMinImageAgreement(t, dx, dy, dz, 10.0)
	})
}

// FuzzMinImageAgreementBoxes extends the agreement property to fuzzed
// box sizes: the three formulations must agree for any displacement in
// (-box, box) whatever the box, not just the standard-workload box the
// unit tests and FuzzMinImageAgreement use.
func FuzzMinImageAgreementBoxes(f *testing.F) {
	f.Add(0.5, -0.5, 0.1, 10.0)
	f.Add(4.9, -4.9, 0.0, 5.0)
	f.Add(0.001, 0.002, -0.003, 0.01)
	f.Add(100.0, -250.0, 0.0, 300.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz, box float64) {
		if box != box || box <= 0 || box > 1e12 {
			box = 7.3
		}
		checkMinImageAgreement(t, dx, dy, dz, box)
	})
}

// checkMinImageAgreement folds the raw fuzz inputs into (-box, box) and
// asserts MinImage, MinImageCopysign, and MinImage27 agree on the
// result: branch and copysign bitwise, and both matching the exhaustive
// 27-cell oracle's norm to rounding.
func checkMinImageAgreement(t *testing.T, dx, dy, dz, box float64) {
	t.Helper()
	clamp := func(x float64) float64 {
		if x != x || x > 1e12 || x < -1e12 { // NaN or huge
			return 0.25 * box
		}
		// math.Mod folds into (-box, box) in one step; the loop form the
		// original test used is O(|x|/box) and melts down for tiny boxes.
		return math.Mod(x, box)
	}
	d := vec.V3[float64]{X: clamp(dx), Y: clamp(dy), Z: clamp(dz)}
	a := MinImage(d, box)
	b := MinImageCopysign(d, box)
	c := MinImage27(d, box)
	if a != b {
		t.Fatalf("branch %v vs copysign %v for %v (box %v)", a, b, d, box)
	}
	tol := 1e-9 * box * box
	if diff := a.Norm2() - c.Norm2(); diff > tol || diff < -tol {
		t.Fatalf("branch norm %v vs 27-cell norm %v for %v (box %v)", a.Norm2(), c.Norm2(), d, box)
	}
}
