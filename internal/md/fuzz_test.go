package md

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
)

// FuzzXYZReader must never panic on arbitrary input, and any frame it
// accepts must survive a write/read round trip.
func FuzzXYZReader(f *testing.F) {
	f.Add("1\ncomment\nAr 1 2 3\n")
	f.Add("0\nempty\n")
	f.Add("2\nc\nAr 1 2 3\nAr 4 5 6\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewXYZReader(strings.NewReader(in))
		for {
			frame, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			// Accepted frames must be internally consistent.
			if len(frame.Symbols) != len(frame.Pos) {
				t.Fatalf("frame with %d symbols, %d positions", len(frame.Symbols), len(frame.Pos))
			}
		}
	})
}

// FuzzReadCheckpoint feeds arbitrary byte streams to the checkpoint
// reader: it must never panic and never allocate beyond what the
// stream backs (hostile length fields), and any stream it accepts must
// survive a write/read round trip bit-exactly.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a valid v2 file, a valid v1 file, and assorted garbage.
	st, err := lattice.Generate(lattice.Config{
		N: 8, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	sys, err := NewSystem(st, Params[float64]{Box: st.Box, Cutoff: st.Box / 2 * 0.99, Dt: 0.004})
	if err != nil {
		f.Fatal(err)
	}
	var v2, v1 bytes.Buffer
	if err := WriteCheckpoint(&v2, sys); err != nil {
		f.Fatal(err)
	}
	if err := writeCheckpointV1(&v1, sys); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("PCDM"))
	f.Add([]byte{0x50, 0x43, 0x44, 0x4d, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, s); err != nil {
			t.Fatalf("accepted checkpoint failed to re-serialize: %v", err)
		}
		s2, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted checkpoint rejected: %v", err)
		}
		if s2.N() != s.N() || s2.Steps != s.Steps || s2.P != s.P {
			t.Fatal("round trip of accepted checkpoint diverged")
		}
	})
}

// FuzzMinImageAgreement checks the three minimum-image formulations on
// arbitrary in-range displacements.
func FuzzMinImageAgreement(f *testing.F) {
	f.Add(0.5, -0.5, 0.1)
	f.Add(4.9, -4.9, 0.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz float64) {
		checkMinImageAgreement(t, dx, dy, dz, 10.0)
	})
}

// FuzzMinImageAgreementBoxes extends the agreement property to fuzzed
// box sizes: the three formulations must agree for any displacement in
// (-box, box) whatever the box, not just the standard-workload box the
// unit tests and FuzzMinImageAgreement use.
func FuzzMinImageAgreementBoxes(f *testing.F) {
	f.Add(0.5, -0.5, 0.1, 10.0)
	f.Add(4.9, -4.9, 0.0, 5.0)
	f.Add(0.001, 0.002, -0.003, 0.01)
	f.Add(100.0, -250.0, 0.0, 300.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz, box float64) {
		if box != box || box <= 0 || box > 1e12 {
			box = 7.3
		}
		checkMinImageAgreement(t, dx, dy, dz, box)
	})
}

// checkMinImageAgreement folds the raw fuzz inputs into (-box, box) and
// asserts MinImage, MinImageCopysign, and MinImage27 agree on the
// result: branch and copysign bitwise, and both matching the exhaustive
// 27-cell oracle's norm to rounding.
func checkMinImageAgreement(t *testing.T, dx, dy, dz, box float64) {
	t.Helper()
	clamp := func(x float64) float64 {
		if x != x || x > 1e12 || x < -1e12 { // NaN or huge
			return 0.25 * box
		}
		// math.Mod folds into (-box, box) in one step; the loop form the
		// original test used is O(|x|/box) and melts down for tiny boxes.
		return math.Mod(x, box)
	}
	d := vec.V3[float64]{X: clamp(dx), Y: clamp(dy), Z: clamp(dz)}
	a := MinImage(d, box)
	b := MinImageCopysign(d, box)
	c := MinImage27(d, box)
	if a != b {
		t.Fatalf("branch %v vs copysign %v for %v (box %v)", a, b, d, box)
	}
	tol := 1e-9 * box * box
	if diff := a.Norm2() - c.Norm2(); diff > tol || diff < -tol {
		t.Fatalf("branch norm %v vs 27-cell norm %v for %v (box %v)", a.Norm2(), c.Norm2(), d, box)
	}
}
