package md

import (
	"io"
	"strings"
	"testing"

	"repro/internal/vec"
)

// FuzzXYZReader must never panic on arbitrary input, and any frame it
// accepts must survive a write/read round trip.
func FuzzXYZReader(f *testing.F) {
	f.Add("1\ncomment\nAr 1 2 3\n")
	f.Add("0\nempty\n")
	f.Add("2\nc\nAr 1 2 3\nAr 4 5 6\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewXYZReader(strings.NewReader(in))
		for {
			frame, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			// Accepted frames must be internally consistent.
			if len(frame.Symbols) != len(frame.Pos) {
				t.Fatalf("frame with %d symbols, %d positions", len(frame.Symbols), len(frame.Pos))
			}
		}
	})
}

// FuzzMinImageAgreement checks the three minimum-image formulations on
// arbitrary in-range displacements.
func FuzzMinImageAgreement(f *testing.F) {
	f.Add(0.5, -0.5, 0.1)
	f.Add(4.9, -4.9, 0.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz float64) {
		const box = 10.0
		clamp := func(x float64) float64 {
			if x != x || x > 1e12 || x < -1e12 { // NaN or huge
				return 0.25
			}
			for x >= box {
				x -= box
			}
			for x <= -box {
				x += box
			}
			return x
		}
		d := vec.V3[float64]{X: clamp(dx), Y: clamp(dy), Z: clamp(dz)}
		a := MinImage(d, box)
		b := MinImageCopysign(d, box)
		c := MinImage27(d, box)
		if a != b {
			t.Fatalf("branch %v vs copysign %v for %v", a, b, d)
		}
		if diff := a.Norm2() - c.Norm2(); diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("branch norm %v vs 27-cell norm %v for %v", a.Norm2(), c.Norm2(), d)
		}
	})
}
