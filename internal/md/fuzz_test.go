package md

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// FuzzXYZReader must never panic on arbitrary input, and any frame it
// accepts must survive a write/read round trip.
func FuzzXYZReader(f *testing.F) {
	f.Add("1\ncomment\nAr 1 2 3\n")
	f.Add("0\nempty\n")
	f.Add("2\nc\nAr 1 2 3\nAr 4 5 6\n")
	f.Add("")
	f.Add("x\n")
	f.Add("1\n")
	f.Fuzz(func(t *testing.T, in string) {
		r := NewXYZReader(strings.NewReader(in))
		for {
			frame, err := r.ReadFrame()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
			// Accepted frames must be internally consistent.
			if len(frame.Symbols) != len(frame.Pos) {
				t.Fatalf("frame with %d symbols, %d positions", len(frame.Symbols), len(frame.Pos))
			}
		}
	})
}

// FuzzReadCheckpoint feeds arbitrary byte streams to the checkpoint
// reader: it must never panic and never allocate beyond what the
// stream backs (hostile length fields), and any stream it accepts must
// survive a write/read round trip bit-exactly.
func FuzzReadCheckpoint(f *testing.F) {
	// Seed with a valid v2 file, a valid v1 file, and assorted garbage.
	st, err := lattice.Generate(lattice.Config{
		N: 8, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		f.Fatal(err)
	}
	sys, err := NewSystem(st, Params[float64]{Box: st.Box, Cutoff: st.Box / 2 * 0.99, Dt: 0.004})
	if err != nil {
		f.Fatal(err)
	}
	var v2, v1 bytes.Buffer
	if err := WriteCheckpoint(&v2, sys); err != nil {
		f.Fatal(err)
	}
	if err := writeCheckpointV1(&v1, sys); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes())
	f.Add(v1.Bytes())
	f.Add(v2.Bytes()[:len(v2.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte("PCDM"))
	f.Add([]byte{0x50, 0x43, 0x44, 0x4d, 2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadCheckpoint(bytes.NewReader(data))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteCheckpoint(&buf, s); err != nil {
			t.Fatalf("accepted checkpoint failed to re-serialize: %v", err)
		}
		s2, err := ReadCheckpoint(&buf)
		if err != nil {
			t.Fatalf("round trip of accepted checkpoint rejected: %v", err)
		}
		if s2.N() != s.N() || s2.Steps != s.Steps || s2.P != s.P {
			t.Fatal("round trip of accepted checkpoint diverged")
		}
	})
}

// FuzzNeighborListBuild feeds the cell-binned build pathological
// geometry — zero or non-finite boxes, atoms exactly on box and cell
// boundaries, coincident atoms, out-of-range stragglers — and asserts
// it never panics or hangs, always produces well-formed rows (strictly
// ascending, in-bounds, j > i), and always matches the reference O(N²)
// build pair for pair: the two paths score identical MinImage
// distances, so any divergence is a binning coverage bug.
func FuzzNeighborListBuild(f *testing.F) {
	f.Add(9.0, 2.5, 0.4, uint64(1), uint8(32), uint8(0))
	f.Add(0.0, 2.5, 0.4, uint64(2), uint8(16), uint8(0))  // zero-size box
	f.Add(-3.0, 1.0, 0.3, uint64(3), uint8(16), uint8(0)) // negative box
	f.Add(math.Inf(1), 1.0, 0.3, uint64(4), uint8(8), uint8(0))
	f.Add(9.0, 2.5, 0.4, uint64(5), uint8(24), uint8(1))     // boundary atom
	f.Add(9.0, 2.5, 0.4, uint64(6), uint8(24), uint8(2))     // coincident atoms
	f.Add(9.0, 2.5, 0.4, uint64(7), uint8(24), uint8(4))     // out-of-range atom
	f.Add(1e-8, 1e-9, 1e-10, uint64(8), uint8(12), uint8(7)) // degenerate scale
	f.Fuzz(func(t *testing.T, box, cutoff, skin float64, seed uint64, n, patho uint8) {
		if skin <= 0 || skin != skin {
			skin = 0.3
		}
		nn := int(n%64) + 2
		span := box
		if !(span > 0) || span > 1e9 {
			span = 1
		}
		rng := xrand.New(seed)
		pos := make([]vec.V3[float64], nn)
		for i := range pos {
			pos[i] = vec.V3[float64]{
				X: rng.Float64() * span,
				Y: rng.Float64() * span,
				Z: rng.Float64() * span,
			}
		}
		if patho&1 != 0 { // exactly on the box edge (folds to 0)
			pos[0] = vec.V3[float64]{X: box, Y: box, Z: box}
		}
		if patho&2 != 0 && nn >= 3 { // coincident pile
			pos[1], pos[2] = pos[0], pos[0]
		}
		if patho&4 != 0 { // outside [0, box)
			pos[nn-1] = vec.V3[float64]{X: -span / 3, Y: 2.5 * span, Z: span / 2}
		}
		p := Params[float64]{Box: box, Cutoff: cutoff, Dt: 1}

		ref, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		posC := CoordsFromV3(pos)
		ref.BuildN2(p, posC)
		got.Build(p, posC)
		for i := 0; i < nn; i++ {
			w, g := ref.Neighbors(i), got.Neighbors(i)
			if len(w) != len(g) {
				t.Fatalf("row %d: %d neighbors, want %d (box %v cutoff %v skin %v patho %d)",
					i, len(g), len(w), box, cutoff, skin, patho)
			}
			prev := int32(i)
			for k := range w {
				if g[k] != w[k] {
					t.Fatalf("row %d entry %d: %d, want %d (box %v cutoff %v skin %v patho %d)",
						i, k, g[k], w[k], box, cutoff, skin, patho)
				}
				if g[k] <= prev || int(g[k]) >= nn {
					t.Fatalf("row %d malformed: %d after %d (n=%d)", i, g[k], prev, nn)
				}
				prev = g[k]
			}
		}
	})
}

// FuzzMinImageAgreement checks the three minimum-image formulations on
// arbitrary in-range displacements.
func FuzzMinImageAgreement(f *testing.F) {
	f.Add(0.5, -0.5, 0.1)
	f.Add(4.9, -4.9, 0.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz float64) {
		checkMinImageAgreement(t, dx, dy, dz, 10.0)
	})
}

// FuzzMinImageAgreementBoxes extends the agreement property to fuzzed
// box sizes: the three formulations must agree for any displacement in
// (-box, box) whatever the box, not just the standard-workload box the
// unit tests and FuzzMinImageAgreement use.
func FuzzMinImageAgreementBoxes(f *testing.F) {
	f.Add(0.5, -0.5, 0.1, 10.0)
	f.Add(4.9, -4.9, 0.0, 5.0)
	f.Add(0.001, 0.002, -0.003, 0.01)
	f.Add(100.0, -250.0, 0.0, 300.0)
	f.Fuzz(func(t *testing.T, dx, dy, dz, box float64) {
		if box != box || box <= 0 || box > 1e12 {
			box = 7.3
		}
		checkMinImageAgreement(t, dx, dy, dz, box)
	})
}

// checkMinImageAgreement folds the raw fuzz inputs into (-box, box) and
// asserts MinImage, MinImageCopysign, and MinImage27 agree on the
// result: branch and copysign bitwise, and both matching the exhaustive
// 27-cell oracle's norm to rounding.
func checkMinImageAgreement(t *testing.T, dx, dy, dz, box float64) {
	t.Helper()
	clamp := func(x float64) float64 {
		if x != x || x > 1e12 || x < -1e12 { // NaN or huge
			return 0.25 * box
		}
		// math.Mod folds into (-box, box) in one step; the loop form the
		// original test used is O(|x|/box) and melts down for tiny boxes.
		return math.Mod(x, box)
	}
	d := vec.V3[float64]{X: clamp(dx), Y: clamp(dy), Z: clamp(dz)}
	a := MinImage(d, box)
	b := MinImageCopysign(d, box)
	c := MinImage27(d, box)
	if a != b {
		t.Fatalf("branch %v vs copysign %v for %v (box %v)", a, b, d, box)
	}
	tol := 1e-9 * box * box
	if diff := a.Norm2() - c.Norm2(); diff > tol || diff < -tol {
		t.Fatalf("branch norm %v vs 27-cell norm %v for %v (box %v)", a.Norm2(), c.Norm2(), d, box)
	}
}

// FuzzSoAState drives the SoA state machinery through randomized
// shapes and hostile inputs: arena reuse across Resize must preserve
// the backing store and never bleed one plane into another,
// gather/scatter between the SoA planes and AoS vectors must be
// bit-exact, a v3 checkpoint must survive encode -> decode -> encode
// with byte-identical output, and corrupted or truncated legacy
// v1/v2 streams must be rejected with an error, never a panic.
func FuzzSoAState(f *testing.F) {
	f.Add(uint64(1), uint8(16), uint16(3), uint16(40))
	f.Add(uint64(2), uint8(1), uint16(0), uint16(0))
	f.Add(uint64(3), uint8(97), uint16(999), uint16(7))
	f.Add(uint64(4), uint8(255), uint16(12), uint16(76)) // atom-count byte
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, growRaw, hostileRaw uint16) {
		rng := xrand.New(seed)
		n := int(nRaw)%100 + 1

		// Gather/scatter round trip: AoS -> SoA -> AoS is bit-exact.
		src := make([]vec.V3[float64], n)
		for i := range src {
			src[i] = vec.V3[float64]{
				X: (rng.Float64() - 0.5) * 20,
				Y: (rng.Float64() - 0.5) * 20,
				Z: (rng.Float64() - 0.5) * 20,
			}
		}
		c := CoordsFromV3(src)
		back := c.V3s()
		for i := range src {
			if back[i] != src[i] {
				t.Fatalf("gather/scatter round trip changed element %d: %+v -> %+v", i, src[i], back[i])
			}
		}

		// Plane isolation: the capacity-clamped planes make append
		// reallocate instead of growing into the neighboring plane.
		if n > 1 {
			grown := append(c.X, 12345)
			grown[0] = -12345 // must not alias c.X after the realloc
			if c.Y[0] != src[0].Y {
				t.Fatalf("appending to X bled into Y: %v", c.Y[0])
			}
			if c.X[0] == -12345 {
				t.Fatal("append within capacity aliased the X plane")
			}
		}

		// Arena reuse: shrinking and regrowing within the original
		// capacity keeps the same backing arena and the surviving
		// prefix; growing past it reallocates and Len tracks.
		arena0 := &c.X[0]
		small := int(growRaw)%n + 1
		c.Resize(small)
		if c.Len() != small {
			t.Fatalf("Resize(%d): Len = %d", small, c.Len())
		}
		for i := 0; i < small; i++ {
			if c.At(i) != src[i] {
				t.Fatalf("Resize shrink lost element %d", i)
			}
		}
		c.Resize(n)
		if &c.X[0] != arena0 {
			t.Fatal("Resize within capacity reallocated the arena")
		}
		c.Resize(n + int(growRaw)%64 + 1)
		if c.Len() != n+int(growRaw)%64+1 {
			t.Fatalf("grow Resize: Len = %d", c.Len())
		}
		c.Set(c.Len()-1, vec.V3[float64]{X: 1, Y: 2, Z: 3})
		if c.At(c.Len()-1) != (vec.V3[float64]{X: 1, Y: 2, Z: 3}) {
			t.Fatal("grown arena does not hold writes")
		}

		// Checkpoint v3 byte stability: encode -> decode -> encode is
		// byte-identical (same header, same plane order, same CRC).
		sys := &System[float64]{P: Params[float64]{Box: 10, Cutoff: 2.5, Dt: 0.004}}
		sys.newSystemState(n)
		sys.Pos.Scatter(src)
		for i := 0; i < n; i++ {
			sys.Vel.Set(i, vec.V3[float64]{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
			sys.Acc.Set(i, vec.V3[float64]{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()})
		}
		sys.PE, sys.KE = rng.Float64(), rng.Float64()
		sys.Steps = int(seed % 1000)
		var enc1 bytes.Buffer
		if err := WriteCheckpoint(&enc1, sys); err != nil {
			t.Fatalf("encode: %v", err)
		}
		dec, err := ReadCheckpoint(bytes.NewReader(enc1.Bytes()))
		if err != nil {
			t.Fatalf("decode of fresh v3 checkpoint: %v", err)
		}
		var enc2 bytes.Buffer
		if err := WriteCheckpoint(&enc2, dec); err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(enc1.Bytes(), enc2.Bytes()) {
			t.Fatal("v3 checkpoint encode -> decode -> encode is not byte-stable")
		}

		// Hostile legacy streams: a bit-flipped v2 fails its CRC (or an
		// earlier header check) and any truncated v1/v2 is refused —
		// with an error in every case, never a panic or a silent accept.
		var v1, v2 bytes.Buffer
		if err := writeCheckpointV1(&v1, sys); err != nil {
			t.Fatal(err)
		}
		if err := writeCheckpointV2(&v2, sys); err != nil {
			t.Fatal(err)
		}
		flipped := append([]byte(nil), v2.Bytes()...)
		flipped[int(hostileRaw)%len(flipped)] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(flipped)); err == nil {
			t.Fatal("bit-flipped v2 checkpoint accepted")
		}
		for _, legacy := range [][]byte{v1.Bytes(), v2.Bytes()} {
			cut := int(hostileRaw) % len(legacy) // strictly shorter than the stream
			if _, err := ReadCheckpoint(bytes.NewReader(legacy[:cut])); err == nil {
				t.Fatal("truncated legacy checkpoint accepted")
			}
		}
	})
}
