package md

import (
	"bytes"
	"io"
	"strings"
	"testing"

	"repro/internal/vec"
)

func TestXYZRoundTrip(t *testing.T) {
	s := makeSystem(t, 32, false)
	var buf bytes.Buffer
	w := NewXYZWriter(&buf, "Ar")
	if err := w.WriteFrame("frame 0", s.Pos); err != nil {
		t.Fatal(err)
	}
	s.Run(3)
	if err := w.WriteFrame("frame 1", s.Pos); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Frames() != 2 {
		t.Fatalf("Frames = %d", w.Frames())
	}

	frames, err := NewXYZReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 2 {
		t.Fatalf("read %d frames", len(frames))
	}
	if frames[0].Comment != "frame 0" || frames[1].Comment != "frame 1" {
		t.Fatalf("comments: %q, %q", frames[0].Comment, frames[1].Comment)
	}
	for i := 0; i < s.N(); i++ {
		if frames[1].Pos[i] != s.Pos.At(i) {
			t.Fatalf("frame 1 atom %d: %+v != %+v (round trip must be exact)", i, frames[1].Pos[i], s.Pos.At(i))
		}
		if frames[1].Symbols[i] != "Ar" {
			t.Fatalf("symbol %q", frames[1].Symbols[i])
		}
	}
}

func TestXYZEmptySymbolDefaults(t *testing.T) {
	var buf bytes.Buffer
	w := NewXYZWriter(&buf, "")
	if err := w.WriteFrame("c", CoordsFromV3([]vec.V3[float64]{{X: 1}})); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "X 1") {
		t.Fatalf("default symbol missing: %q", buf.String())
	}
}

func TestXYZRejectsMultilineComment(t *testing.T) {
	w := NewXYZWriter(io.Discard, "Ar")
	if err := w.WriteFrame("bad\ncomment", Coords[float64]{}); err == nil {
		t.Fatal("multiline comment accepted")
	}
}

func TestXYZReaderEOF(t *testing.T) {
	r := NewXYZReader(strings.NewReader(""))
	if _, err := r.ReadFrame(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestXYZReaderErrors(t *testing.T) {
	cases := []string{
		"not-a-number\ncomment\n",
		"-3\ncomment\n",
		"2\ncomment\nAr 1 2 3\n",         // truncated
		"1\ncomment\nAr 1 2\n",           // short line
		"1\ncomment\nAr one two three\n", // bad floats
		"1\n",                            // missing comment
	}
	for i, in := range cases {
		if _, err := NewXYZReader(strings.NewReader(in)).ReadFrame(); err == nil {
			t.Errorf("case %d parsed: %q", i, in)
		}
	}
}

func TestXYZZeroAtoms(t *testing.T) {
	var buf bytes.Buffer
	w := NewXYZWriter(&buf, "Ar")
	if err := w.WriteFrame("empty", Coords[float64]{}); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	f, err := NewXYZReader(&buf).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Pos) != 0 || f.Comment != "empty" {
		t.Fatalf("frame = %+v", f)
	}
}
