package md

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/vec"
)

// testParams is a typical reduced-units setup with the cutoff safely
// below half the box.
func testParams(box float64) Params[float64] {
	return Params[float64]{Box: box, Cutoff: 2.5, Dt: 0.004}
}

// inBox maps an arbitrary float into (-box, box), the precondition for
// the minimum-image helpers.
func inBox(x, box float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0.25 * box
	}
	return math.Mod(x, box*0.999)
}

func TestMinImageVariantsAgree(t *testing.T) {
	const box = 10.0
	prop := func(dx, dy, dz float64) bool {
		d := vec.V3[float64]{X: inBox(dx, box), Y: inBox(dy, box), Z: inBox(dz, box)}
		a := MinImage(d, box)
		b := MinImageCopysign(d, box)
		c := MinImage27(d, box)
		// The 27-cell search may pick a different but equidistant image
		// when a component is exactly ±box/2; compare norms, then
		// components with a tolerance for ties.
		tol := 1e-12
		return math.Abs(a.Norm2()-c.Norm2()) < tol && math.Abs(b.Norm2()-c.Norm2()) < tol &&
			a == b
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinImageBounds(t *testing.T) {
	const box = 7.0
	prop := func(dx, dy, dz float64) bool {
		d := vec.V3[float64]{X: inBox(dx, box), Y: inBox(dy, box), Z: inBox(dz, box)}
		m := MinImage(d, box)
		h := box/2 + 1e-9
		return math.Abs(m.X) <= h && math.Abs(m.Y) <= h && math.Abs(m.Z) <= h
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinImageIsShortest(t *testing.T) {
	// The minimum image must be at least as short as the raw difference.
	const box = 5.0
	prop := func(dx, dy, dz float64) bool {
		d := vec.V3[float64]{X: inBox(dx, box), Y: inBox(dy, box), Z: inBox(dz, box)}
		return MinImage(d, box).Norm2() <= d.Norm2()+1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinImageIdempotent(t *testing.T) {
	const box = 9.0
	prop := func(dx, dy, dz float64) bool {
		d := vec.V3[float64]{X: inBox(dx, box), Y: inBox(dy, box), Z: inBox(dz, box)}
		m := MinImage(d, box)
		return MinImage(m, box) == m
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMinImageFloat32(t *testing.T) {
	const box float32 = 10
	d := vec.V3[float32]{X: 6, Y: -6, Z: 1}
	m := MinImage(d, box)
	want := vec.V3[float32]{X: -4, Y: 4, Z: 1}
	if m != want {
		t.Fatalf("MinImage float32 = %+v, want %+v", m, want)
	}
	if mc := MinImageCopysign(d, box); mc != want {
		t.Fatalf("MinImageCopysign float32 = %+v, want %+v", mc, want)
	}
}

func TestLJPairMinimumAtR0(t *testing.T) {
	// The LJ force vanishes at r = 2^(1/6) sigma and the potential there
	// is -epsilon.
	p := testParams(20)
	r0 := math.Pow(2, 1.0/6)
	v, f := LJPair(p, r0*r0)
	if math.Abs(v-(-1)) > 1e-12 {
		t.Fatalf("V(r0) = %v, want -1", v)
	}
	if math.Abs(f) > 1e-12 {
		t.Fatalf("f(r0) = %v, want 0", f)
	}
}

func TestLJPairSigns(t *testing.T) {
	p := testParams(20)
	r0 := math.Pow(2, 1.0/6)
	// Repulsive inside the minimum: f > 0 (force pushes atoms apart,
	// since F_i = f*(r_i - r_j)).
	if _, f := LJPair(p, 0.9*0.9); f <= 0 {
		t.Fatalf("f(0.9) = %v, want > 0 (repulsive)", f)
	}
	// Attractive outside the minimum.
	if _, f := LJPair(p, (r0+0.5)*(r0+0.5)); f >= 0 {
		t.Fatalf("f(r0+0.5) = %v, want < 0 (attractive)", f)
	}
	// Potential positive at short range, negative at the well.
	if v, _ := LJPair(p, 0.8*0.8); v <= 0 {
		t.Fatalf("V(0.8) = %v, want > 0", v)
	}
}

func TestLJPairShifted(t *testing.T) {
	p := testParams(20)
	ps := p
	ps.Shifted = true
	// At the cutoff the shifted potential is zero.
	v, _ := LJPair(ps, p.Cutoff*p.Cutoff)
	if math.Abs(v) > 1e-15 {
		t.Fatalf("shifted V(rc) = %v, want 0", v)
	}
	// The shift does not change forces.
	_, f1 := LJPair(p, 1.21)
	_, f2 := LJPair(ps, 1.21)
	if f1 != f2 {
		t.Fatalf("shift changed force: %v != %v", f1, f2)
	}
}

func TestLJPairForceIsNegativeGradient(t *testing.T) {
	// f*(r vector) should equal -dV/dr * r_hat; check numerically.
	p := testParams(20)
	for _, r := range []float64{0.95, 1.1, 1.5, 2.0, 2.4} {
		const h = 1e-6
		vPlus, _ := LJPair(p, (r+h)*(r+h))
		vMinus, _ := LJPair(p, (r-h)*(r-h))
		dVdr := (vPlus - vMinus) / (2 * h)
		_, f := LJPair(p, r*r)
		// Force magnitude along r_hat is f*r; it must equal -dV/dr.
		if math.Abs(f*r+dVdr) > 1e-4*(1+math.Abs(dVdr)) {
			t.Fatalf("r=%v: f*r = %v, -dV/dr = %v", r, f*r, -dVdr)
		}
	}
}

func TestLJPairCustomEpsilonSigma(t *testing.T) {
	p := Params[float64]{Box: 50, Cutoff: 10, Dt: 0.001, Epsilon: 2, Sigma: 1.5}
	r0 := 1.5 * math.Pow(2, 1.0/6)
	v, f := LJPair(p, r0*r0)
	if math.Abs(v-(-2)) > 1e-12 {
		t.Fatalf("V(r0) = %v, want -2 (epsilon=2)", v)
	}
	if math.Abs(f) > 1e-12 {
		t.Fatalf("f(r0) = %v, want 0", f)
	}
}

func TestParamsValidate(t *testing.T) {
	good := Params[float64]{Box: 10, Cutoff: 2.5, Dt: 0.004}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []Params[float64]{
		{Box: 0, Cutoff: 2.5, Dt: 0.004},
		{Box: 10, Cutoff: 0, Dt: 0.004},
		{Box: 10, Cutoff: 2.5, Dt: 0},
		{Box: 4, Cutoff: 2.5, Dt: 0.004}, // cutoff > box/2
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) accepted invalid params", p)
		}
	}
}

// threeAtoms builds a tiny hand-checkable configuration.
func threeAtoms() (Params[float64], []vec.V3[float64]) {
	p := testParams(20)
	pos := []vec.V3[float64]{
		{X: 5, Y: 5, Z: 5},
		{X: 6.1, Y: 5, Z: 5},
		{X: 5, Y: 6.2, Z: 5},
	}
	return p, pos
}

func TestComputeForcesNewtonThirdLaw(t *testing.T) {
	p, posV := threeAtoms()
	pos := CoordsFromV3(posV)
	acc := MakeCoords[float64](pos.Len())
	ComputeForces(p, pos, acc)
	var net vec.V3[float64]
	for _, a := range acc.V3s() {
		net = net.Add(a)
	}
	if net.Norm() > 1e-12 {
		t.Fatalf("net force %v, want 0 (Newton's third law)", net)
	}
}

func TestComputeForcesMatchesFullLoop(t *testing.T) {
	p, posV := threeAtoms()
	pos := CoordsFromV3(posV)
	a1 := MakeCoords[float64](pos.Len())
	a2 := MakeCoords[float64](pos.Len())
	pe1 := ComputeForces(p, pos, a1)
	pe2 := ComputeForcesFull(p, pos, a2)
	if math.Abs(pe1-pe2) > 1e-12*(1+math.Abs(pe1)) {
		t.Fatalf("PE mismatch: half-loop %v, full-loop %v", pe1, pe2)
	}
	for i := 0; i < a1.Len(); i++ {
		if a1.At(i).Sub(a2.At(i)).Norm() > 1e-9*(1+a1.At(i).Norm()) {
			t.Fatalf("acc[%d] mismatch: %+v vs %+v", i, a1.At(i), a2.At(i))
		}
	}
}

func TestComputeForcesCutoffRespected(t *testing.T) {
	// Two atoms beyond the cutoff: zero force, zero PE.
	p := testParams(20)
	pos := CoordsFromV3([]vec.V3[float64]{{X: 1, Y: 1, Z: 1}, {X: 1 + p.Cutoff + 0.1, Y: 1, Z: 1}})
	acc := MakeCoords[float64](2)
	pe := ComputeForces(p, pos, acc)
	if pe != 0 || acc.At(0).Norm2() != 0 || acc.At(1).Norm2() != 0 {
		t.Fatalf("interaction beyond cutoff: pe=%v acc=%v", pe, acc)
	}
}

func TestComputeForcesAcrossBoundary(t *testing.T) {
	// Two atoms adjacent across the periodic boundary must interact as
	// if they were 1.0 apart, not box-1.0 apart.
	p := testParams(10)
	pos := CoordsFromV3([]vec.V3[float64]{{X: 0.5, Y: 5, Z: 5}, {X: 9.5, Y: 5, Z: 5}})
	acc := MakeCoords[float64](2)
	pe := ComputeForces(p, pos, acc)
	wantV, wantF := LJPair(p, 1.0)
	if math.Abs(pe-wantV) > 1e-12 {
		t.Fatalf("PE across boundary = %v, want %v", pe, wantV)
	}
	// d = pos0 - pos1 min-imaged = +1 in x, so acc[0].X = f*1.
	if math.Abs(acc.X[0]-wantF) > 1e-12 {
		t.Fatalf("acc[0].X = %v, want %v", acc.X[0], wantF)
	}
}

func TestComputeForcesOverwritesAcc(t *testing.T) {
	p, posV := threeAtoms()
	pos := CoordsFromV3(posV)
	acc := MakeCoords[float64](pos.Len())
	for i := 0; i < acc.Len(); i++ {
		acc.Set(i, vec.V3[float64]{X: 99, Y: 99, Z: 99}) // stale garbage
	}
	ComputeForces(p, pos, acc)
	fresh := MakeCoords[float64](pos.Len())
	ComputeForces(p, pos, fresh)
	for i := 0; i < acc.Len(); i++ {
		if acc.At(i) != fresh.At(i) {
			t.Fatalf("acc not overwritten at %d", i)
		}
	}
}

func TestWrapInvariant(t *testing.T) {
	const box = 3.0
	prop := func(x, y, z float64) bool {
		p := vec.V3[float64]{
			X: math.Mod(nonNaN(x), 10*box), Y: math.Mod(nonNaN(y), 10*box), Z: math.Mod(nonNaN(z), 10*box),
		}
		w := Wrap(p, box)
		return w.X >= 0 && w.X < box && w.Y >= 0 && w.Y < box && w.Z >= 0 && w.Z < box
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func nonNaN(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1.5
	}
	return x
}

// TestWrapIsTotal pins the fold against pathological coordinates: a
// fault-corrupted force can push a position to ±Inf (or astronomically
// far) mid-step, before any watchdog runs. Wrap must terminate on every
// input — non-finite coordinates come back NaN for the health check to
// catch, huge finite drift still folds into [0, box).
func TestWrapIsTotal(t *testing.T) {
	const box = 3.0
	for _, x := range []float64{math.Inf(1), math.Inf(-1), math.NaN()} {
		w := Wrap(vec.V3[float64]{X: x, Y: 1, Z: 1}, box)
		if !math.IsNaN(w.X) {
			t.Fatalf("Wrap(%v) = %v, want NaN passthrough", x, w.X)
		}
		if w.Y != 1 || w.Z != 1 {
			t.Fatalf("finite components disturbed: %+v", w)
		}
	}
	for _, x := range []float64{1e300, -1e300, 12345678.9, -12345678.9} {
		w := Wrap(vec.V3[float64]{X: x, Y: 1, Z: 1}, box)
		if !(w.X >= 0 && w.X < box) {
			t.Fatalf("Wrap(%v) = %v, outside [0, %v)", x, w.X, box)
		}
	}
}
