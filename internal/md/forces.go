package md

import "repro/internal/vec"

// LJPair returns the Lennard-Jones pair quantities for a squared
// distance r2 under parameters p: the potential energy v and the scalar
// f such that the force on atom i from atom j is f * (r_i - r_j).
//
//	V(r)  = 4ε[(σ/r)¹² − (σ/r)⁶]          (− V(r_c) if Shifted)
//	f(r)  = 24ε[2(σ/r)¹² − (σ/r)⁶] / r²
//
// Callers are responsible for the cutoff test; LJPair assumes r2 > 0.
func LJPair[T vec.Float](p Params[T], r2 T) (v, f T) {
	eps, sig := p.Epsilon1(), p.Sigma1()
	sr2 := sig * sig / r2
	sr6 := sr2 * sr2 * sr2
	sr12 := sr6 * sr6
	v = 4 * eps * (sr12 - sr6)
	f = 24 * eps * (2*sr12 - sr6) / r2
	if p.Shifted {
		v -= ljShift(p)
	}
	return v, f
}

// ljShift returns V(r_c) for the unshifted potential.
func ljShift[T vec.Float](p Params[T]) T {
	eps, sig := p.Epsilon1(), p.Sigma1()
	sr2 := sig * sig / (p.Cutoff * p.Cutoff)
	sr6 := sr2 * sr2 * sr2
	return 4 * eps * (sr6*sr6 - sr6)
}

// MinImage returns the minimum-image displacement of d in a cubic
// periodic box, using the branch form ("if" test per axis): the
// formulation the paper's original SPE kernel uses before the copysign
// optimization. d must be a difference of wrapped coordinates, i.e.
// each component in (-box, box).
func MinImage[T vec.Float](d vec.V3[T], box T) vec.V3[T] {
	h := box / 2
	if d.X > h {
		d.X -= box
	} else if d.X < -h {
		d.X += box
	}
	if d.Y > h {
		d.Y -= box
	} else if d.Y < -h {
		d.Y += box
	}
	if d.Z > h {
		d.Z -= box
	} else if d.Z < -h {
		d.Z += box
	}
	return d
}

// MinImageCopysign returns the minimum-image displacement using the
// branch-free copysign form the paper substitutes on the SPE ("replace
// 'if' with 'copysign'", Figure 5). Same precondition as MinImage.
func MinImageCopysign[T vec.Float](d vec.V3[T], box T) vec.V3[T] {
	h := box / 2
	// step(|d|-h) * copysign(box, d): subtract a full box with the sign
	// of d whenever |d| exceeds half the box, without data-dependent
	// control flow on the value of d itself.
	d.X -= vec.Copysign(box, d.X) * step(vec.Abs(d.X)-h)
	d.Y -= vec.Copysign(box, d.Y) * step(vec.Abs(d.Y)-h)
	d.Z -= vec.Copysign(box, d.Z) * step(vec.Abs(d.Z)-h)
	return d
}

// step returns 1 if x > 0 and 0 otherwise (the Heaviside step used to
// build branch-free selects).
func step[T vec.Float](x T) T {
	if x > 0 {
		return 1
	}
	return 0
}

// MinImage27 returns the minimum-image displacement by explicitly
// searching the 27 neighboring unit cells for the closest instance of
// the pair — the exhaustive formulation the paper describes as "one
// expensive part of this acceleration computation" (section 5.1). It is
// valid for any d with components in (-box, box) and is the oracle the
// cheaper forms are property-tested against.
func MinImage27[T vec.Float](d vec.V3[T], box T) vec.V3[T] {
	best := d
	best2 := d.Norm2()
	for sx := -1; sx <= 1; sx++ {
		for sy := -1; sy <= 1; sy++ {
			for sz := -1; sz <= 1; sz++ {
				c := vec.V3[T]{
					X: d.X + T(sx)*box,
					Y: d.Y + T(sy)*box,
					Z: d.Z + T(sz)*box,
				}
				if r2 := c.Norm2(); r2 < best2 {
					best, best2 = c, r2
				}
			}
		}
	}
	return best
}

// ComputeForces evaluates the reference force kernel: for each atom,
// scan all other atoms, form the on-the-fly minimum-image distance, and
// accumulate the Lennard-Jones acceleration for pairs inside the
// cutoff. acc is overwritten; the return value is the total potential
// energy. This is the double loop every device in the paper offloads.
func ComputeForces[T vec.Float](p Params[T], pos Coords[T], acc Coords[T]) T {
	acc.Zero()
	rc2 := p.Cutoff * p.Cutoff
	var pe T
	n := pos.Len()
	for i := 0; i < n; i++ {
		pi := pos.At(i)
		for j := i + 1; j < n; j++ {
			d := MinImage(pi.Sub(pos.At(j)), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			v, f := LJPair(p, r2)
			pe += v
			fd := d.Scale(f)
			acc.Add(i, fd)
			acc.Sub(j, fd)
		}
	}
	return pe
}

// ComputeForcesFullCount is ComputeForcesFull plus a count of the
// ordered interacting pairs (i,j) it found inside the cutoff. Device
// models use the count to scale the data-dependent part of their cycle
// ledgers without a second pass over the pairs.
func ComputeForcesFullCount[T vec.Float](p Params[T], pos Coords[T], acc Coords[T]) (pe T, interacting int64) {
	rc2 := p.Cutoff * p.Cutoff
	n := pos.Len()
	for i := 0; i < n; i++ {
		pi := pos.At(i)
		var ai vec.V3[T]
		var pei T
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			d := MinImage(pi.Sub(pos.At(j)), p.Box)
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			interacting++
			v, f := LJPair(p, r2)
			pei += v
			ai = ai.Add(d.Scale(f))
		}
		acc.Set(i, ai)
		pe += pei
	}
	return pe / 2, interacting
}

// ComputeForcesFull evaluates the same kernel with the full N² loop
// (every atom scans all N-1 others, each pair visited twice) instead of
// the half-triangle loop. This is the data layout the GPU and the
// per-SPE partitions use, where atom i's acceleration must be computable
// independently of every other atom's. The two formulations agree to
// rounding; tests pin that down.
func ComputeForcesFull[T vec.Float](p Params[T], pos Coords[T], acc Coords[T]) T {
	pe, _ := ComputeForcesFullCount(p, pos, acc)
	return pe
}
