package md

import (
	"fmt"
	"math"

	"repro/internal/vec"
)

// CellList is the linked-cell method: the box is divided into a grid of
// cells at least one cutoff wide, so an atom's interaction partners all
// lie in its own cell or the 26 neighbors. Force evaluation becomes
// O(N) at fixed density instead of O(N²).
//
// Like the neighbor pairlist, this is one of the standard optimizations
// the paper's kernel deliberately omits (its whole point is the
// irregular O(N²) access pattern); it lives here for the ablation
// benches and as the scalable path for the full-framework extensions
// the paper's conclusion anticipates.
//
// All scratch state is carved from two grow-once arenas (one int32, one
// T), so a steady-state rebuild allocates nothing and the whole ledger
// cost of the cell path is the two arena makes below.
type CellList[T vec.Float] struct {
	dims  int // cells per box edge
	width T   // cell edge length (>= cutoff)
	box   T   // box edge the grid was sized for

	// Chain layout, built by Build for the force traversal.
	heads []int32 // heads[c] = first atom in cell c, -1 if empty
	next  []int32 // next[i] = next atom in i's cell, -1 at the end

	// Packed (CSR) layout, built by BinWrapped for the neighbor-list
	// gather: order holds atom indices grouped by cell (ascending within
	// each cell), packed the corresponding positions copied alongside as
	// SoA planes, and starts[c]..starts[c+1] delimits cell c's run.
	// Streaming these contiguous runs beats chasing the head/next chains
	// — each chain step is a dependent load — by a wide margin in the
	// build's inner loop.
	starts []int32
	order  []int32
	packed Coords[T]
	cursor []int32 // counting-sort scratch
	cellOf []int32 // counting-sort scratch: each atom's cell, one fold per atom

	chainInts []int32 // arena behind heads+next
	csrInts   []int32 // arena behind starts+cursor+order+cellOf
	csrPos    []T     // arena behind packed

	builds int
}

// NewCellList sizes a grid for the given box and cutoff. It fails when
// the box cannot hold a 3x3x3 grid of cutoff-wide cells (at that point
// the direct method is both required and cheap).
func NewCellList[T vec.Float](box, cutoff T) (*CellList[T], error) {
	if box <= 0 || cutoff <= 0 {
		return nil, fmt.Errorf("md: cell list needs positive box and cutoff, got %v, %v", box, cutoff)
	}
	dims := int(box / cutoff)
	if dims < 3 {
		return nil, fmt.Errorf("md: box %v holds only %d cutoff-wide cells per edge; need >= 3", box, dims)
	}
	return &CellList[T]{
		dims:  dims,
		width: box / T(dims),
		box:   box,
	}, nil
}

// NewCellListDims sizes a grid with an explicit per-edge cell count.
// The neighbor-list builder used to call this per geometry change; it
// now embeds a grid by value and regeometries it with reinit, so this
// constructor is off the hot path entirely.
func NewCellListDims[T vec.Float](box T, dims int) (*CellList[T], error) {
	if !(box > 0) {
		return nil, fmt.Errorf("md: cell list needs a positive box, got %v", box)
	}
	if dims < 3 {
		return nil, fmt.Errorf("md: cell grid needs >= 3 cells per edge, got %d", dims)
	}
	return &CellList[T]{
		dims:  dims,
		width: box / T(dims),
		box:   box,
	}, nil
}

// reinit re-geometries the grid in place, keeping every arena. The
// caller must guarantee box > 0 and dims >= 3 (the neighbor-list
// builder's buildGridDims does); that precondition is what lets the
// hot path skip the erroring constructor.
func (cl *CellList[T]) reinit(box T, dims int) {
	if cl.box == box && cl.dims == dims {
		return
	}
	cl.dims = dims
	cl.width = box / T(dims)
	cl.box = box
}

// Dims returns the grid dimension per edge.
func (cl *CellList[T]) Dims() int { return cl.dims }

// Builds returns how many times the grid has been rebuilt.
func (cl *CellList[T]) Builds() int { return cl.builds }

// cellIndex maps a wrapped position to its cell.
func (cl *CellList[T]) cellIndex(p vec.V3[T]) int {
	return (cl.axisCell(p.X)*cl.dims+cl.axisCell(p.Y))*cl.dims + cl.axisCell(p.Z)
}

// axisCell maps one wrapped coordinate to its cell along an axis.
// Positions exactly at the box edge (x == box after rounding) land one
// past the last cell, and positions perturbed just below 0 (x == -0.0,
// or a wrap that rounds to a tiny negative) would truncate toward zero
// or go negative; clamp both ends so any representable coordinate maps
// to a valid cell.
func (cl *CellList[T]) axisCell(x T) int {
	c := int(x / cl.width)
	if c < 0 {
		return 0
	}
	if c >= cl.dims {
		return cl.dims - 1
	}
	return c
}

// NumCells returns the total number of cells in the grid.
func (cl *CellList[T]) NumCells() int { return cl.dims * cl.dims * cl.dims }

// Head returns the first atom in cell c, or -1 if the cell is empty.
// Valid after Build.
func (cl *CellList[T]) Head(c int) int32 { return cl.heads[c] }

// Next returns the atom after i in i's cell chain, or -1 at the end.
// Valid after Build.
func (cl *CellList[T]) Next(i int32) int32 { return cl.next[i] }

// NeighborCells writes cell c itself followed by its 26 periodic
// neighbors into buf (which must have length >= 27) and returns the
// filled slice. This full-shell enumeration is the gather-only
// traversal parallel cell sharding needs: every cell can compute its
// own atoms' forces without writing to any other cell's atoms.
func (cl *CellList[T]) NeighborCells(c int, buf []int) []int {
	d := cl.dims
	cz := c % d
	cy := (c / d) % d
	cx := c / (d * d)
	buf = buf[:0]
	buf = append(buf, c)
	for ox := -1; ox <= 1; ox++ {
		for oy := -1; oy <= 1; oy++ {
			for oz := -1; oz <= 1; oz++ {
				if ox == 0 && oy == 0 && oz == 0 {
					continue
				}
				buf = append(buf, cl.wrapCell(cx+ox, cy+oy, cz+oz))
			}
		}
	}
	return buf
}

// foldCoord folds one coordinate into [0, box) for binning. Unlike
// Wrap it is total: a coordinate that is already in range (every real
// caller) takes the fast path, out-of-range finite values fold by one
// modulo step, and non-finite values come back 0 instead of looping —
// a hostile position may land in the wrong cell (and so miss pairs the
// reference scan would also score as non-finite), but it can never
// hang or index out of bounds. box must be positive.
func foldCoord[T vec.Float](x, box T) T {
	if x >= 0 && x < box {
		return x
	}
	x = T(math.Mod(float64(x), float64(box)))
	if x < 0 {
		x += box
	}
	if !(x >= 0 && x < box) { // NaN from Inf inputs, or x+box rounding to box
		return 0
	}
	return x
}

// CellOfWrapped returns the cell BinWrapped assigns to position p —
// the lookup the neighbor-list row builder uses to find an atom's home
// cell without storing a per-atom cell table.
func (cl *CellList[T]) CellOfWrapped(p vec.V3[T]) int {
	return (cl.axisCell(foldCoord(p.X, cl.box))*cl.dims+
		cl.axisCell(foldCoord(p.Y, cl.box)))*cl.dims +
		cl.axisCell(foldCoord(p.Z, cl.box))
}

// ensureCSR carves the counting-sort buffers for n atoms and ncells
// cells out of the two CSR arenas, growing them only when capacity is
// exceeded. noinline keeps each arena make a single ledger site rather
// than one per inlined caller.
//
//go:noinline
func (cl *CellList[T]) ensureCSR(n, ncells int) {
	need := (ncells + 1) + ncells + n + n
	if cap(cl.csrInts) < need {
		cl.csrInts = make([]int32, need) //mdlint:ignore hotalloc amortized grow-once CSR arena, reused while capacity suffices
	}
	b := cl.csrInts[:need]
	cl.starts = b[0 : ncells+1 : ncells+1]
	b = b[ncells+1:]
	cl.cursor = b[0:ncells:ncells]
	b = b[ncells:]
	cl.order = b[0:n:n]
	cl.cellOf = b[n : 2*n : 2*n]
	if cap(cl.csrPos) < 3*n {
		cl.csrPos = make([]T, 3*n) //mdlint:ignore hotalloc amortized grow-once packed-position arena, reused while capacity suffices
	}
	cl.packed = coordsOver(cl.csrPos[:3*n], n)
}

// BinWrapped rebuilds the packed cell layout, folding each coordinate
// into [0, box) first. The force-path Build assumes pre-wrapped
// positions and clamps strays into edge cells; the neighbor-list build
// uses this folding variant instead so that an unwrapped (or
// adversarial) input still bins every atom into the cell its minimum
// image lives in. Binning is a counting sort — count, prefix-sum,
// scatter — so order stays ascending within every cell and the whole
// pass is O(N + cells).
func (cl *CellList[T]) BinWrapped(pos Coords[T]) {
	n := pos.Len()
	ncells := cl.dims * cl.dims * cl.dims
	cl.ensureCSR(n, ncells)
	for c := range cl.cursor {
		cl.cursor[c] = 0
	}

	for i := 0; i < n; i++ {
		c := cl.CellOfWrapped(pos.At(i))
		cl.cellOf[i] = int32(c)
		cl.cursor[c]++
	}
	cl.starts[0] = 0
	for c := 0; c < ncells; c++ {
		cl.starts[c+1] = cl.starts[c] + cl.cursor[c]
		cl.cursor[c] = cl.starts[c]
	}
	for i := 0; i < n; i++ {
		c := cl.cellOf[i]
		k := cl.cursor[c]
		cl.cursor[c] = k + 1
		cl.order[k] = int32(i)
		cl.packed.Set(int(k), pos.At(i))
	}
	cl.builds++
}

// CellSpan returns the half-open range of cell c's run in the packed
// layout. Valid after BinWrapped.
func (cl *CellList[T]) CellSpan(c int) (lo, hi int32) {
	return cl.starts[c], cl.starts[c+1]
}

// ensureChains carves the head/next arrays out of the chain arena.
// noinline for the same single-ledger-site reason as ensureCSR.
//
//go:noinline
func (cl *CellList[T]) ensureChains(n, ncells int) {
	need := ncells + n
	if cap(cl.chainInts) < need {
		cl.chainInts = make([]int32, need) //mdlint:ignore hotalloc amortized grow-once chain arena, reused while capacity suffices
	}
	b := cl.chainInts[:need]
	cl.heads = b[0:ncells:ncells]
	cl.next = b[ncells : ncells+n : ncells+n]
}

// resetChains sizes and clears the head/next arrays for n atoms.
func (cl *CellList[T]) resetChains(n int) {
	cl.ensureChains(n, cl.dims*cl.dims*cl.dims)
	for i := range cl.heads {
		cl.heads[i] = -1
	}
}

// Build rebuilds the linked cells from the wrapped positions.
func (cl *CellList[T]) Build(pos Coords[T]) {
	cl.resetChains(pos.Len())
	for i := 0; i < pos.Len(); i++ {
		c := cl.cellIndex(pos.At(i))
		cl.next[i] = cl.heads[c]
		cl.heads[c] = int32(i)
	}
	cl.builds++
}

// Forces evaluates the LJ forces using the cell grid, rebuilding it
// from the current positions first (a rebuild is O(N) and must track
// every step). acc is overwritten; the return value is the potential
// energy. Results match ComputeForces to rounding.
func (cl *CellList[T]) Forces(p Params[T], pos Coords[T], acc Coords[T]) T {
	cl.Build(pos)
	acc.Zero()
	rc2 := p.Cutoff * p.Cutoff
	var pe T
	d := cl.dims
	for cx := 0; cx < d; cx++ {
		for cy := 0; cy < d; cy++ {
			for cz := 0; cz < d; cz++ {
				c := (cx*d+cy)*d + cz
				for i := cl.heads[c]; i >= 0; i = cl.next[i] {
					pi := pos.At(int(i))
					// Within the home cell: pairs i<j only.
					for j := cl.next[i]; j >= 0; j = cl.next[j] {
						pe += cl.pair(p, rc2, pos, acc, int(i), int(j), pi)
					}
					// Half of the 26 neighbor cells (to visit each
					// unordered cell pair once).
					for _, off := range halfNeighborOffsets {
						nc := cl.wrapCell(cx+off[0], cy+off[1], cz+off[2])
						for j := cl.heads[nc]; j >= 0; j = cl.next[j] {
							pe += cl.pair(p, rc2, pos, acc, int(i), int(j), pi)
						}
					}
				}
			}
		}
	}
	return pe
}

// pair applies one i-j interaction with the minimum image.
func (cl *CellList[T]) pair(p Params[T], rc2 T, pos Coords[T], acc Coords[T], i, j int, pi vec.V3[T]) T {
	dv := MinImage(pi.Sub(pos.At(j)), p.Box)
	r2 := dv.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return 0
	}
	v, f := LJPair(p, r2)
	fd := dv.Scale(f)
	acc.Add(i, fd)
	acc.Sub(j, fd)
	return v
}

// wrapCell folds a (possibly negative or overflowing) cell coordinate
// back into the periodic grid.
func (cl *CellList[T]) wrapCell(cx, cy, cz int) int {
	d := cl.dims
	cx = (cx%d + d) % d
	cy = (cy%d + d) % d
	cz = (cz%d + d) % d
	return (cx*d+cy)*d + cz
}

// halfNeighborOffsets lists 13 of the 26 neighbor-cell offsets such
// that every unordered pair of adjacent cells appears exactly once
// (the standard half-shell enumeration).
var halfNeighborOffsets = [13][3]int{
	{1, 0, 0},
	{1, 1, 0}, {0, 1, 0}, {-1, 1, 0},
	{1, 0, 1}, {0, 0, 1}, {-1, 0, 1},
	{1, 1, 1}, {0, 1, 1}, {-1, 1, 1},
	{1, -1, 1}, {0, -1, 1}, {-1, -1, 1},
}
