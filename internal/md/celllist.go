package md

import (
	"fmt"

	"repro/internal/vec"
)

// CellList is the linked-cell method: the box is divided into a grid of
// cells at least one cutoff wide, so an atom's interaction partners all
// lie in its own cell or the 26 neighbors. Force evaluation becomes
// O(N) at fixed density instead of O(N²).
//
// Like the neighbor pairlist, this is one of the standard optimizations
// the paper's kernel deliberately omits (its whole point is the
// irregular O(N²) access pattern); it lives here for the ablation
// benches and as the scalable path for the full-framework extensions
// the paper's conclusion anticipates.
type CellList[T vec.Float] struct {
	dims  int     // cells per box edge
	width T       // cell edge length (>= cutoff)
	heads []int32 // heads[c] = first atom in cell c, -1 if empty
	next  []int32 // next[i] = next atom in i's cell, -1 at the end

	builds int
}

// NewCellList sizes a grid for the given box and cutoff. It fails when
// the box cannot hold a 3x3x3 grid of cutoff-wide cells (at that point
// the direct method is both required and cheap).
func NewCellList[T vec.Float](box, cutoff T) (*CellList[T], error) {
	if box <= 0 || cutoff <= 0 {
		return nil, fmt.Errorf("md: cell list needs positive box and cutoff, got %v, %v", box, cutoff)
	}
	dims := int(box / cutoff)
	if dims < 3 {
		return nil, fmt.Errorf("md: box %v holds only %d cutoff-wide cells per edge; need >= 3", box, dims)
	}
	return &CellList[T]{
		dims:  dims,
		width: box / T(dims),
	}, nil
}

// Dims returns the grid dimension per edge.
func (cl *CellList[T]) Dims() int { return cl.dims }

// Builds returns how many times the grid has been rebuilt.
func (cl *CellList[T]) Builds() int { return cl.builds }

// cellIndex maps a wrapped position to its cell.
func (cl *CellList[T]) cellIndex(p vec.V3[T]) int {
	cx := int(p.X / cl.width)
	cy := int(p.Y / cl.width)
	cz := int(p.Z / cl.width)
	// Positions exactly at the box edge (x == box after rounding) land
	// one past the last cell; clamp.
	if cx >= cl.dims {
		cx = cl.dims - 1
	}
	if cy >= cl.dims {
		cy = cl.dims - 1
	}
	if cz >= cl.dims {
		cz = cl.dims - 1
	}
	return (cx*cl.dims+cy)*cl.dims + cz
}

// Build rebuilds the linked cells from the wrapped positions.
func (cl *CellList[T]) Build(pos []vec.V3[T]) {
	ncells := cl.dims * cl.dims * cl.dims
	if cap(cl.heads) < ncells {
		cl.heads = make([]int32, ncells)
	}
	cl.heads = cl.heads[:ncells]
	for i := range cl.heads {
		cl.heads[i] = -1
	}
	if cap(cl.next) < len(pos) {
		cl.next = make([]int32, len(pos))
	}
	cl.next = cl.next[:len(pos)]
	for i, p := range pos {
		c := cl.cellIndex(p)
		cl.next[i] = cl.heads[c]
		cl.heads[c] = int32(i)
	}
	cl.builds++
}

// Forces evaluates the LJ forces using the cell grid, rebuilding it
// from the current positions first (a rebuild is O(N) and must track
// every step). acc is overwritten; the return value is the potential
// energy. Results match ComputeForces to rounding.
func (cl *CellList[T]) Forces(p Params[T], pos []vec.V3[T], acc []vec.V3[T]) T {
	cl.Build(pos)
	for i := range acc {
		acc[i] = vec.V3[T]{}
	}
	rc2 := p.Cutoff * p.Cutoff
	var pe T
	d := cl.dims
	for cx := 0; cx < d; cx++ {
		for cy := 0; cy < d; cy++ {
			for cz := 0; cz < d; cz++ {
				c := (cx*d+cy)*d + cz
				for i := cl.heads[c]; i >= 0; i = cl.next[i] {
					pi := pos[i]
					// Within the home cell: pairs i<j only.
					for j := cl.next[i]; j >= 0; j = cl.next[j] {
						pe += cl.pair(p, rc2, pos, acc, int(i), int(j), pi)
					}
					// Half of the 26 neighbor cells (to visit each
					// unordered cell pair once).
					for _, off := range halfNeighborOffsets {
						nc := cl.wrapCell(cx+off[0], cy+off[1], cz+off[2])
						for j := cl.heads[nc]; j >= 0; j = cl.next[j] {
							pe += cl.pair(p, rc2, pos, acc, int(i), int(j), pi)
						}
					}
				}
			}
		}
	}
	return pe
}

// pair applies one i-j interaction with the minimum image.
func (cl *CellList[T]) pair(p Params[T], rc2 T, pos []vec.V3[T], acc []vec.V3[T], i, j int, pi vec.V3[T]) T {
	dv := MinImage(pi.Sub(pos[j]), p.Box)
	r2 := dv.Norm2()
	if r2 >= rc2 || r2 == 0 {
		return 0
	}
	v, f := LJPair(p, r2)
	fd := dv.Scale(f)
	acc[i] = acc[i].Add(fd)
	acc[j] = acc[j].Sub(fd)
	return v
}

// wrapCell folds a (possibly negative or overflowing) cell coordinate
// back into the periodic grid.
func (cl *CellList[T]) wrapCell(cx, cy, cz int) int {
	d := cl.dims
	cx = (cx%d + d) % d
	cy = (cy%d + d) % d
	cz = (cz%d + d) % d
	return (cx*d+cy)*d + cz
}

// halfNeighborOffsets lists 13 of the 26 neighbor-cell offsets such
// that every unordered pair of adjacent cells appears exactly once
// (the standard half-shell enumeration).
var halfNeighborOffsets = [13][3]int{
	{1, 0, 0},
	{1, 1, 0}, {0, 1, 0}, {-1, 1, 0},
	{1, 0, 1}, {0, 0, 1}, {-1, 0, 1},
	{1, 1, 1}, {0, 1, 1}, {-1, 1, 1},
	{1, -1, 1}, {0, -1, 1}, {-1, -1, 1},
}
