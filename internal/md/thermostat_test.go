package md

import (
	"math"
	"testing"
)

func TestRescaleThermostatValidation(t *testing.T) {
	if _, err := NewRescaleThermostat[float64](-1, 1); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := NewRescaleThermostat[float64](1, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestBerendsenValidation(t *testing.T) {
	if _, err := NewBerendsenThermostat[float64](-1, 0.004, 0.1); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := NewBerendsenThermostat[float64](1, 0, 0.1); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := NewBerendsenThermostat[float64](1, 0.01, 0.005); err == nil {
		t.Fatal("tau < dt accepted")
	}
}

func TestRescaleHitsTargetExactly(t *testing.T) {
	s := makeSystem(t, 108, false)
	th, err := NewRescaleThermostat(1.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	s.StepThermostatted(th)
	if got := s.Temperature(); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("temperature = %v, want 1.5", got)
	}
}

func TestRescaleIntervalRespected(t *testing.T) {
	s := makeSystem(t, 64, false)
	th, err := NewRescaleThermostat(5.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First two applications (calls 1, 2) must not rescale.
	t0 := s.Temperature()
	th.Apply(s.Vel, t0)
	th.Apply(s.Vel, t0)
	if got := 2 * KineticEnergy(s.Vel) / (3 * float64(s.N())); math.Abs(got-t0) > 1e-12 {
		t.Fatalf("thermostat fired early: %v -> %v", t0, got)
	}
	// Third call rescales.
	th.Apply(s.Vel, t0)
	if got := 2 * KineticEnergy(s.Vel) / (3 * float64(s.N())); math.Abs(got-5.0) > 1e-9 {
		t.Fatalf("thermostat did not fire on interval: %v", got)
	}
}

func TestBerendsenRelaxesTowardTarget(t *testing.T) {
	s := makeSystem(t, 108, false)
	const target = 2.0
	th, err := NewBerendsenThermostat(target, s.P.Dt, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	start := s.Temperature()
	var prevGap float64 = math.Abs(start - target)
	for i := 0; i < 200; i++ {
		s.StepThermostatted(th)
	}
	endGap := math.Abs(s.Temperature() - target)
	if endGap > prevGap/2 {
		t.Fatalf("Berendsen did not relax toward target: gap %v -> %v", prevGap, endGap)
	}
}

func TestBerendsenGentlerThanRescale(t *testing.T) {
	// One Berendsen step with tau >> dt moves temperature less than a
	// full rescale would.
	a := makeSystem(t, 108, false)
	b := a.Clone()
	const target = 3.0
	ber, err := NewBerendsenThermostat(target, a.P.Dt, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewRescaleThermostat(target, 1)
	if err != nil {
		t.Fatal(err)
	}
	a.StepThermostatted(ber)
	b.StepThermostatted(res)
	gapBer := math.Abs(a.Temperature() - target)
	gapRes := math.Abs(b.Temperature() - target)
	if gapBer <= gapRes {
		t.Fatalf("Berendsen (gap %v) not gentler than rescale (gap %v)", gapBer, gapRes)
	}
}

func TestThermostatZeroTemperatureNoNaN(t *testing.T) {
	s := makeSystem(t, 32, false)
	s.Vel.Zero()
	th, err := NewRescaleThermostat(1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	th.Apply(s.Vel, 0)
	ber, err := NewBerendsenThermostat(1.0, 0.004, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	ber.Apply(s.Vel, 0)
	for i := 0; i < s.N(); i++ {
		v := s.Vel.At(i)
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) {
			t.Fatalf("NaN velocity at %d after zero-T thermostat", i)
		}
	}
}

func TestLangevinValidation(t *testing.T) {
	if _, err := NewLangevinThermostat[float64](-1, 0.004, 1, 1); err == nil {
		t.Fatal("negative target accepted")
	}
	if _, err := NewLangevinThermostat[float64](1, 0, 1, 1); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := NewLangevinThermostat[float64](1, 0.004, 0, 1); err == nil {
		t.Fatal("zero gamma accepted")
	}
	if _, err := NewLangevinThermostat[float64](1, 0.004, 300, 1); err == nil {
		t.Fatal("gamma*dt >= 1 accepted")
	}
}

func TestLangevinSamplesTargetTemperature(t *testing.T) {
	s := makeSystem(t, 256, false)
	const target = 1.4
	th, err := NewLangevinThermostat(target, s.P.Dt, 5.0, 99)
	if err != nil {
		t.Fatal(err)
	}
	// Equilibrate, then average.
	for i := 0; i < 200; i++ {
		s.StepThermostatted(th)
	}
	var sum float64
	const samples = 300
	for i := 0; i < samples; i++ {
		s.StepThermostatted(th)
		sum += s.Temperature()
	}
	mean := sum / samples
	if math.Abs(mean-target) > 0.1*target {
		t.Fatalf("Langevin mean T = %v, want ~%v", mean, target)
	}
}

func TestLangevinDeterministicBySeed(t *testing.T) {
	a := makeSystem(t, 64, false)
	b := a.Clone()
	tha, err := NewLangevinThermostat(1.0, a.P.Dt, 5.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	thb, err := NewLangevinThermostat(1.0, b.P.Dt, 5.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.StepThermostatted(tha)
		b.StepThermostatted(thb)
	}
	for i := 0; i < a.N(); i++ {
		if a.Vel.At(i) != b.Vel.At(i) {
			t.Fatalf("same seed diverged at atom %d", i)
		}
	}
}

func TestLangevinHeatsColdSystem(t *testing.T) {
	s := makeSystem(t, 64, false)
	s.Vel.Zero() // start at rest
	s.KE = 0
	th, err := NewLangevinThermostat(1.0, s.P.Dt, 5.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		s.StepThermostatted(th)
	}
	if s.Temperature() < 0.2 {
		t.Fatalf("Langevin failed to heat the system: T = %v", s.Temperature())
	}
}
