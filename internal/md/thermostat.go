package md

import (
	"fmt"

	"repro/internal/vec"
	"repro/internal/xrand"
)

// Thermostats: production bio-molecular simulations (the "full-scale
// frameworks" of the paper's future plans) run at constant temperature
// rather than constant energy. Two standard weak-coupling schemes are
// provided; both act only on velocities, between Verlet steps.

// Thermostat rescales velocities toward a target temperature. Apply is
// called once per step with the instantaneous kinetic energy already
// computed by the integrator.
type Thermostat[T vec.Float] interface {
	// Apply adjusts vel in place given the current temperature.
	Apply(vel Coords[T], currentTemp T)
}

// RescaleThermostat hard-rescales to the exact target every Interval
// steps — the crude but effective scheme used for equilibration.
type RescaleThermostat[T vec.Float] struct {
	Target   T
	Interval int // apply every Interval calls (>= 1)

	calls int
}

// NewRescaleThermostat validates the parameters.
func NewRescaleThermostat[T vec.Float](target T, interval int) (*RescaleThermostat[T], error) {
	if target < 0 {
		return nil, fmt.Errorf("md: thermostat target temperature %v is negative", target)
	}
	if interval < 1 {
		return nil, fmt.Errorf("md: thermostat interval %d must be >= 1", interval)
	}
	return &RescaleThermostat[T]{Target: target, Interval: interval}, nil
}

// Apply implements Thermostat.
func (th *RescaleThermostat[T]) Apply(vel Coords[T], currentTemp T) {
	th.calls++
	if th.calls%th.Interval != 0 || currentTemp <= 0 {
		return
	}
	f := vec.Sqrt(th.Target / currentTemp)
	scalePlanes(vel, f)
}

// BerendsenThermostat couples weakly to a bath: each step the
// temperature relaxes toward the target with time constant Tau,
// λ² = 1 + (dt/τ)(T0/T - 1).
type BerendsenThermostat[T vec.Float] struct {
	Target T
	Dt     T
	Tau    T // coupling time constant (>= Dt)
}

// NewBerendsenThermostat validates the parameters.
func NewBerendsenThermostat[T vec.Float](target, dt, tau T) (*BerendsenThermostat[T], error) {
	if target < 0 {
		return nil, fmt.Errorf("md: thermostat target temperature %v is negative", target)
	}
	if dt <= 0 || tau < dt {
		return nil, fmt.Errorf("md: Berendsen needs 0 < dt <= tau, got dt=%v tau=%v", dt, tau)
	}
	return &BerendsenThermostat[T]{Target: target, Dt: dt, Tau: tau}, nil
}

// Apply implements Thermostat.
func (th *BerendsenThermostat[T]) Apply(vel Coords[T], currentTemp T) {
	if currentTemp <= 0 {
		return
	}
	lambda2 := 1 + (th.Dt/th.Tau)*(th.Target/currentTemp-1)
	if lambda2 < 0 {
		lambda2 = 0
	}
	f := vec.Sqrt(lambda2)
	scalePlanes(vel, f)
}

// scalePlanes multiplies every component by f, plane-wise. The scale
// of each component is independent, so this performs the same FP
// operations as the old per-atom Scale.
func scalePlanes[T vec.Float](vel Coords[T], f T) {
	for i := range vel.X {
		vel.X[i] *= f
	}
	for i := range vel.Y {
		vel.Y[i] *= f
	}
	for i := range vel.Z {
		vel.Z[i] *= f
	}
}

// StepThermostatted advances one velocity-Verlet step and then applies
// the thermostat.
func (s *System[T]) StepThermostatted(th Thermostat[T]) {
	s.Step()
	th.Apply(s.Vel, s.Temperature())
	s.KE = KineticEnergy(s.Vel)
}

// LangevinThermostat couples every degree of freedom to a stochastic
// bath: each step, velocities are damped by the friction and kicked
// with noise whose magnitude satisfies the fluctuation-dissipation
// relation, sampling the canonical ensemble at Target. The generator
// is explicit, so trajectories are reproducible by seed.
type LangevinThermostat[T vec.Float] struct {
	Target T
	Dt     T
	Gamma  T // friction, 1/time; Gamma*Dt must be in (0, 1)

	rng *xrand.Source
}

// NewLangevinThermostat validates the parameters and fixes the noise
// stream.
func NewLangevinThermostat[T vec.Float](target, dt, gamma T, seed uint64) (*LangevinThermostat[T], error) {
	if target < 0 {
		return nil, fmt.Errorf("md: thermostat target temperature %v is negative", target)
	}
	if dt <= 0 || gamma <= 0 || gamma*dt >= 1 {
		return nil, fmt.Errorf("md: Langevin needs 0 < gamma*dt < 1, got dt=%v gamma=%v", dt, gamma)
	}
	return &LangevinThermostat[T]{Target: target, Dt: dt, Gamma: gamma, rng: xrand.New(seed)}, nil
}

// Apply implements Thermostat. Deliberately atom-major: the X,Y,Z
// noise draws per atom come from one sequential stream, so this loop
// must not be restructured plane-wise or every seeded trajectory
// changes.
func (th *LangevinThermostat[T]) Apply(vel Coords[T], _ T) {
	damp := 1 - th.Gamma*th.Dt
	sigma := vec.Sqrt(2 * th.Gamma * th.Dt * th.Target)
	for i := range vel.X {
		vel.X[i] = vel.X[i]*damp + sigma*T(th.rng.NormFloat64())
		vel.Y[i] = vel.Y[i]*damp + sigma*T(th.rng.NormFloat64())
		vel.Z[i] = vel.Z[i]*damp + sigma*T(th.rng.NormFloat64())
	}
}
