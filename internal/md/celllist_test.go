package md

import (
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/vec"
)

func TestCellListRejectsBadGeometry(t *testing.T) {
	if _, err := NewCellList[float64](0, 2.5); err == nil {
		t.Fatal("zero box accepted")
	}
	if _, err := NewCellList[float64](10, 0); err == nil {
		t.Fatal("zero cutoff accepted")
	}
	// Box of 7 with cutoff 2.5 -> 2 cells per edge: too few.
	if _, err := NewCellList[float64](7, 2.5); err == nil {
		t.Fatal("2-cell grid accepted")
	}
}

func TestCellListMatchesReference(t *testing.T) {
	// Needs a box >= 3 cutoffs: 864 atoms at standard density gives
	// box ~10.1 with cutoff 2.5 -> 4 cells per edge.
	s := makeSystem(t, 864, false)
	cl, err := NewCellList(s.P.Box, s.P.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Dims() < 3 {
		t.Fatalf("dims = %d", cl.Dims())
	}
	accRef := MakeCoords[float64](s.N())
	accCL := MakeCoords[float64](s.N())
	peRef := ComputeForces(s.P, s.Pos, accRef)
	peCL := cl.Forces(s.P, s.Pos, accCL)
	if math.Abs(peRef-peCL) > 1e-9*(1+math.Abs(peRef)) {
		t.Fatalf("PE mismatch: ref %v, cells %v", peRef, peCL)
	}
	for i := 0; i < accRef.Len(); i++ {
		if accRef.At(i).Sub(accCL.At(i)).Norm() > 1e-9*(1+accRef.At(i).Norm()) {
			t.Fatalf("acc mismatch at %d: %+v vs %+v", i, accRef.At(i), accCL.At(i))
		}
	}
}

func TestCellListTrajectoryMatches(t *testing.T) {
	ref := makeSystem(t, 500, false)
	opt := ref.Clone()
	cl, err := NewCellList(opt.P.Box, opt.P.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 30
	for i := 0; i < steps; i++ {
		ref.Step()
		opt.StepWith(func() float64 { return cl.Forces(opt.P, opt.Pos, opt.Acc) })
	}
	for i := 0; i < ref.N(); i++ {
		if d := ref.Pos.At(i).Sub(opt.Pos.At(i)).Norm(); d > 1e-8 {
			t.Fatalf("trajectories diverged at atom %d by %v", i, d)
		}
	}
	if cl.Builds() != steps {
		t.Fatalf("builds = %d, want %d", cl.Builds(), steps)
	}
}

func TestCellListFloat32(t *testing.T) {
	st, err := lattice.Generate(lattice.Config{
		N: 500, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md32Params(st)
	pos := MakeCoords[float32](len(st.Pos))
	for i := range st.Pos {
		pos.Set(i, vec.FromV3f64[float32](st.Pos[i]))
	}
	cl, err := NewCellList(p.Box, p.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	accRef := MakeCoords[float32](pos.Len())
	accCL := MakeCoords[float32](pos.Len())
	peRef := ComputeForces(p, pos, accRef)
	peCL := cl.Forces(p, pos, accCL)
	if rel := math.Abs(float64(peRef-peCL)) / math.Abs(float64(peRef)); rel > 1e-4 {
		t.Fatalf("float32 PE mismatch: %v vs %v", peRef, peCL)
	}
}

func md32Params(st *lattice.State) Params[float32] {
	return Params[float32]{Box: float32(st.Box), Cutoff: 2.5, Dt: 0.004}
}

func TestCellIndexInRange(t *testing.T) {
	cl, err := NewCellList[float64](10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	ncells := cl.Dims() * cl.Dims() * cl.Dims()
	// Edge positions must clamp, not overflow.
	for _, p := range []vec.V3[float64]{
		{},
		{X: 9.9999999999, Y: 9.9999999999, Z: 9.9999999999},
		{X: 5, Y: 0, Z: 9.99},
	} {
		if c := cl.cellIndex(p); c < 0 || c >= ncells {
			t.Fatalf("cellIndex(%+v) = %d out of [0,%d)", p, c, ncells)
		}
	}
}

func TestCellIndexNegativeCoordinatesClamp(t *testing.T) {
	cl, err := NewCellList[float64](10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	ncells := cl.Dims() * cl.Dims() * cl.Dims()
	// Positions perturbed just below zero (a wrap that rounds to -0.0 or
	// a tiny negative) must land in cell 0 on that axis, not truncate
	// into a negative index.
	for _, p := range []vec.V3[float64]{
		{X: -1e-15, Y: 5, Z: 5},
		{X: 5, Y: math.Copysign(0, -1), Z: 5},
		{X: -1e-15, Y: -1e-300, Z: -0.0},
		{X: -2.6, Y: 5, Z: 5}, // a full cell below zero still clamps
	} {
		c := cl.cellIndex(p)
		if c < 0 || c >= ncells {
			t.Fatalf("cellIndex(%+v) = %d out of [0,%d)", p, c, ncells)
		}
	}
	if c := cl.cellIndex(vec.V3[float64]{X: -1e-15, Y: 0.1, Z: 0.1}); c != 0 {
		t.Fatalf("just-below-zero position landed in cell %d, want 0", c)
	}
	// Build at the boundary must produce a consistent grid: every atom
	// reachable from exactly one cell chain.
	pos := CoordsFromV3([]vec.V3[float64]{
		{X: -1e-15, Y: 9.9999999999, Z: 0},
		{X: 5, Y: 5, Z: 5},
		{X: 0, Y: 0, Z: -1e-16},
	})
	cl.Build(pos)
	found := make([]int, pos.Len())
	for c := 0; c < cl.NumCells(); c++ {
		for i := cl.Head(c); i >= 0; i = cl.Next(i) {
			found[i]++
		}
	}
	for i, n := range found {
		if n != 1 {
			t.Fatalf("atom %d appears in %d cell chains, want 1", i, n)
		}
	}
}

func TestNeighborCellsFullShell(t *testing.T) {
	cl, err := NewCellList[float64](10, 2.5) // dims = 4
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]int, 27)
	for c := 0; c < cl.NumCells(); c++ {
		cells := cl.NeighborCells(c, buf)
		if len(cells) != 27 {
			t.Fatalf("cell %d: %d neighbor cells, want 27", c, len(cells))
		}
		if cells[0] != c {
			t.Fatalf("cell %d: first entry is %d, want the cell itself", c, cells[0])
		}
		seen := map[int]bool{}
		for _, nc := range cells {
			if nc < 0 || nc >= cl.NumCells() {
				t.Fatalf("cell %d: neighbor %d out of range", c, nc)
			}
			if seen[nc] {
				t.Fatalf("cell %d: neighbor %d duplicated", c, nc)
			}
			seen[nc] = true
		}
	}
}

func TestHalfNeighborOffsetsCoverAllPairs(t *testing.T) {
	// The 13 half-shell offsets plus their negations plus zero must be
	// exactly the 27 cube offsets.
	seen := map[[3]int]bool{{0, 0, 0}: true}
	for _, off := range halfNeighborOffsets {
		neg := [3]int{-off[0], -off[1], -off[2]}
		if seen[off] || seen[neg] {
			t.Fatalf("offset %v duplicated (directly or as negation)", off)
		}
		seen[off] = true
		seen[neg] = true
	}
	if len(seen) != 27 {
		t.Fatalf("half shell covers %d offsets, want 27", len(seen))
	}
}

func BenchmarkForcesDirectVsCellList(b *testing.B) {
	st, err := lattice.Generate(lattice.Config{
		N: 2048, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 9,
	})
	if err != nil {
		b.Fatal(err)
	}
	p := Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
	sys, err := NewSystem(st, p)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ComputeForces(sys.P, sys.Pos, sys.Acc)
		}
	})
	b.Run("celllist", func(b *testing.B) {
		cl, err := NewCellList(p.Box, p.Cutoff)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cl.Forces(sys.P, sys.Pos, sys.Acc)
		}
	})
}
