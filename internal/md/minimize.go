package md

import "fmt"

// Energy minimization: production frameworks relax a configuration
// before dynamics so that overlapping atoms don't blow up the first
// integration steps. Steepest descent with adaptive step size is the
// standard robust choice.

// MinimizeResult reports a minimization.
type MinimizeResult struct {
	Steps      int     // descent steps actually taken
	InitialPE  float64 // potential energy before
	FinalPE    float64 // potential energy after
	MaxForce   float64 // largest force component magnitude at the end
	Converged  bool    // MaxForce fell below the tolerance
	Rejections int     // steps whose trial move raised the energy
}

// Minimize relaxes the system's positions by steepest descent: move
// along the forces with an adaptive step, growing it after accepted
// moves and shrinking it after rejected ones. Velocities are untouched.
// It stops after maxSteps or when the largest force component drops
// below fTol.
func Minimize(s *System[float64], maxSteps int, fTol float64) (*MinimizeResult, error) {
	if maxSteps < 0 {
		return nil, fmt.Errorf("md: maxSteps must be non-negative, got %d", maxSteps)
	}
	if fTol <= 0 {
		return nil, fmt.Errorf("md: force tolerance must be positive, got %v", fTol)
	}
	res := &MinimizeResult{InitialPE: ComputeForces(s.P, s.Pos, s.Acc)}
	pe := res.InitialPE
	step := 0.01
	trial := MakeCoords[float64](s.N())
	trialAcc := MakeCoords[float64](s.N())
	for iter := 0; iter < maxSteps; iter++ {
		maxF := maxForceComponent(s.Acc)
		if maxF < fTol {
			res.Converged = true
			break
		}
		// Trial move: displace along the (unit-capped) force direction.
		scale := step / maxF
		for i := 0; i < trial.Len(); i++ {
			trial.Set(i, Wrap(s.Pos.At(i).MulAdd(scale, s.Acc.At(i)), s.P.Box))
		}
		trialPE := ComputeForces(s.P, trial, trialAcc)
		if trialPE < pe {
			s.Pos.CopyFrom(trial)
			s.Acc.CopyFrom(trialAcc)
			s.MarkPosDirty(0, s.N())
			pe = trialPE
			step *= 1.2
			if step > 0.2 {
				step = 0.2
			}
		} else {
			step /= 2
			res.Rejections++
			if step < 1e-12 {
				break // stuck at numerical resolution
			}
		}
		res.Steps++
	}
	if !res.Converged && maxForceComponent(s.Acc) < fTol {
		res.Converged = true
	}
	s.PE = pe
	res.FinalPE = pe
	res.MaxForce = maxForceComponent(s.Acc)
	return res, nil
}

// maxForceComponent returns the largest |component| over all forces.
func maxForceComponent(acc Coords[float64]) float64 {
	var m float64
	for i := 0; i < acc.Len(); i++ {
		a := acc.At(i)
		for _, c := range [3]float64{a.X, a.Y, a.Z} {
			if c < 0 {
				c = -c
			}
			if c > m {
				m = c
			}
		}
	}
	return m
}

// DiffusionCoefficient estimates D from the Einstein relation
// MSD = 6 D t for three-dimensional diffusion.
func DiffusionCoefficient(msd, elapsedTime float64) (float64, error) {
	if elapsedTime <= 0 {
		return 0, fmt.Errorf("md: elapsed time must be positive, got %v", elapsedTime)
	}
	if msd < 0 {
		return 0, fmt.Errorf("md: MSD must be non-negative, got %v", msd)
	}
	return msd / (6 * elapsedTime), nil
}
