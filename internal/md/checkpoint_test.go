package md

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTripBitExact(t *testing.T) {
	s := makeSystem(t, 108, true)
	s.Run(25)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.P != s.P || restored.Steps != s.Steps || restored.PE != s.PE || restored.KE != s.KE {
		t.Fatalf("header mismatch: %+v vs %+v", restored.P, s.P)
	}
	for i := 0; i < s.N(); i++ {
		if restored.Pos.At(i) != s.Pos.At(i) || restored.Vel.At(i) != s.Vel.At(i) || restored.Acc.At(i) != s.Acc.At(i) {
			t.Fatalf("state mismatch at atom %d", i)
		}
	}
}

func TestRestartContinuesBitExactly(t *testing.T) {
	// Run 50 steps straight through; separately run 25, checkpoint,
	// restore, run 25 more. The trajectories must be identical.
	straight := makeSystem(t, 64, false)
	interrupted := straight.Clone()
	straight.Run(50)

	interrupted.Run(25)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, interrupted); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(25)

	if restored.Steps != straight.Steps {
		t.Fatalf("steps: %d vs %d", restored.Steps, straight.Steps)
	}
	for i := 0; i < straight.N(); i++ {
		if restored.Pos.At(i) != straight.Pos.At(i) || restored.Vel.At(i) != straight.Vel.At(i) {
			t.Fatalf("restart diverged at atom %d", i)
		}
	}
	if restored.PE != straight.PE || restored.KE != straight.KE {
		t.Fatal("restart energies diverged")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a checkpoint at all",
		"\x00\x00\x00\x00",
	}
	for i, in := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	s := makeSystem(t, 32, false)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 2, len(full) - 8} {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCheckpointRejectsCorruptHeader(t *testing.T) {
	s := makeSystem(t, 32, false)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the version field.
	corrupted := append([]byte(nil), data...)
	corrupted[4] = 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(corrupted)); err == nil {
		t.Error("bad version accepted")
	}
	// Corrupt the atom count to something absurd.
	corrupted = append([]byte(nil), data...)
	// magic(4) + version(4) + 7 float64(56) + flags(4) + steps(8) = 76;
	// atom count lives at offset 76.
	for i := 0; i < 8; i++ {
		corrupted[76+i] = 0xFF
	}
	if _, err := ReadCheckpoint(bytes.NewReader(corrupted)); err == nil {
		t.Error("absurd atom count accepted")
	}
}

func TestCheckpointRejectsNonFiniteState(t *testing.T) {
	s := makeSystem(t, 32, false)
	s.Vel.X[3] = nanF()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Fatal("NaN state accepted on read")
	}
}

func nanF() float64 { z := 0.0; return z / z }

// TestCheckpointTruncationEveryByte simulates a crash at every possible
// point of a checkpoint write: every strict prefix of a valid v2 file
// must be rejected with a clean error — the CRC trailer plus fixed
// layout guarantee no prefix parses as a complete checkpoint.
func TestCheckpointTruncationEveryByte(t *testing.T) {
	s := makeSystem(t, 32, true)
	s.Run(3)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at byte %d of %d accepted", cut, len(full))
		}
	}
	if _, err := ReadCheckpoint(bytes.NewReader(full)); err != nil {
		t.Fatalf("untruncated file rejected: %v", err)
	}
}

// TestCheckpointBitFlipEveryByte flips each byte of a valid v2 file in
// turn; the CRC trailer (or a stricter structural check) must reject
// every corruption. This is the property v1 lacked: a flipped mantissa
// byte used to load silently.
func TestCheckpointBitFlipEveryByte(t *testing.T) {
	s := makeSystem(t, 16, false)
	s.Run(2)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := make([]byte, len(full))
	for i := range full {
		copy(corrupt, full)
		corrupt[i] ^= 0x40
		if _, err := ReadCheckpoint(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("bit flip at byte %d of %d accepted", i, len(full))
		}
	}
}

// TestCheckpointV1StillLoads is the format-compatibility golden test:
// a legacy v1 (trailer-less) stream must restore bit-exactly and
// continue the trajectory identically to the v2 restore.
func TestCheckpointV1StillLoads(t *testing.T) {
	s := makeSystem(t, 64, true)
	s.Run(10)
	var v1, v2 bytes.Buffer
	if err := writeCheckpointV1(&v1, s); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(&v2, s); err != nil {
		t.Fatal(err)
	}
	if v2.Len() != v1.Len()+4 {
		t.Fatalf("v2 must be v1 plus a 4-byte trailer: %d vs %d", v2.Len(), v1.Len())
	}
	fromV1, err := ReadCheckpoint(&v1)
	if err != nil {
		t.Fatalf("v1 checkpoint rejected: %v", err)
	}
	fromV2, err := ReadCheckpoint(&v2)
	if err != nil {
		t.Fatal(err)
	}
	if fromV1.P != s.P || fromV1.Steps != s.Steps || fromV1.PE != s.PE || fromV1.KE != s.KE {
		t.Fatal("v1 restore header mismatch")
	}
	for i := 0; i < s.N(); i++ {
		if fromV1.Pos.At(i) != s.Pos.At(i) || fromV1.Vel.At(i) != s.Vel.At(i) || fromV1.Acc.At(i) != s.Acc.At(i) {
			t.Fatalf("v1 restore state mismatch at atom %d", i)
		}
	}
	fromV1.Run(5)
	fromV2.Run(5)
	for i := 0; i < fromV1.N(); i++ {
		if fromV1.Pos.At(i) != fromV2.Pos.At(i) {
			t.Fatalf("v1 and v2 restores diverged at atom %d", i)
		}
	}
}

// TestCheckpointHostileAtomCountNoBigAlloc: a header claiming the
// maximum atom count over a near-empty stream must fail fast without
// allocating the claimed state (chunked reads bound memory by the
// bytes actually present).
func TestCheckpointHostileAtomCountNoBigAlloc(t *testing.T) {
	s := makeSystem(t, 16, false)
	var buf bytes.Buffer
	if err := writeCheckpointV1(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Atom count lives at offset 76 (magic 4 + version 4 + scalars 56 +
	// flags 4 + steps 8). Claim exactly checkpointMaxAtoms — passes the
	// header bound — while providing only the original 16 atoms of
	// payload: the chunked reader must fail at EOF, not allocate 4.6GB.
	for i := 0; i < 8; i++ {
		data[76+i] = 0
	}
	data[76+3] = 0x04 // little-endian 0x04000000 = 1<<26
	if _, err := ReadCheckpoint(bytes.NewReader(data)); err == nil {
		t.Fatal("hostile atom count accepted")
	}
}
