package md

import (
	"bytes"
	"strings"
	"testing"
)

func TestCheckpointRoundTripBitExact(t *testing.T) {
	s := makeSystem(t, 108, true)
	s.Run(25)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.P != s.P || restored.Steps != s.Steps || restored.PE != s.PE || restored.KE != s.KE {
		t.Fatalf("header mismatch: %+v vs %+v", restored.P, s.P)
	}
	for i := range s.Pos {
		if restored.Pos[i] != s.Pos[i] || restored.Vel[i] != s.Vel[i] || restored.Acc[i] != s.Acc[i] {
			t.Fatalf("state mismatch at atom %d", i)
		}
	}
}

func TestRestartContinuesBitExactly(t *testing.T) {
	// Run 50 steps straight through; separately run 25, checkpoint,
	// restore, run 25 more. The trajectories must be identical.
	straight := makeSystem(t, 64, false)
	interrupted := straight.Clone()
	straight.Run(50)

	interrupted.Run(25)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, interrupted); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	restored.Run(25)

	if restored.Steps != straight.Steps {
		t.Fatalf("steps: %d vs %d", restored.Steps, straight.Steps)
	}
	for i := range straight.Pos {
		if restored.Pos[i] != straight.Pos[i] || restored.Vel[i] != straight.Vel[i] {
			t.Fatalf("restart diverged at atom %d", i)
		}
	}
	if restored.PE != straight.PE || restored.KE != straight.KE {
		t.Fatal("restart energies diverged")
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not a checkpoint at all",
		"\x00\x00\x00\x00",
	}
	for i, in := range cases {
		if _, err := ReadCheckpoint(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCheckpointRejectsTruncation(t *testing.T) {
	s := makeSystem(t, 32, false)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, len(full) / 2, len(full) - 8} {
		if _, err := ReadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCheckpointRejectsCorruptHeader(t *testing.T) {
	s := makeSystem(t, 32, false)
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the version field.
	corrupted := append([]byte(nil), data...)
	corrupted[4] = 0xFF
	if _, err := ReadCheckpoint(bytes.NewReader(corrupted)); err == nil {
		t.Error("bad version accepted")
	}
	// Corrupt the atom count to something absurd.
	corrupted = append([]byte(nil), data...)
	// magic(4) + version(4) + 7 float64(56) + flags(4) + steps(8) = 76;
	// atom count lives at offset 76.
	for i := 0; i < 8; i++ {
		corrupted[76+i] = 0xFF
	}
	if _, err := ReadCheckpoint(bytes.NewReader(corrupted)); err == nil {
		t.Error("absurd atom count accepted")
	}
}

func TestCheckpointRejectsNonFiniteState(t *testing.T) {
	s := makeSystem(t, 32, false)
	s.Vel[3].X = nanF()
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, s); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpoint(&buf); err == nil {
		t.Fatal("NaN state accepted on read")
	}
}

func nanF() float64 { z := 0.0; return z / z }
