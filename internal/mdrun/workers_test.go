package mdrun

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/parallel"
)

func TestWithDefaultsWorkersClamp(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, runtime.NumCPU()},
		{-3, 1},
		{1, 1},
		{5, 5},
		{1 << 20, parallel.MaxWorkers},
	}
	for _, c := range cases {
		cfg := Config{Workers: c.in}.withDefaults()
		if cfg.Workers != c.want {
			t.Errorf("withDefaults Workers %d -> %d, want %d", c.in, cfg.Workers, c.want)
		}
	}
}

func TestWithDefaultsOtherFieldsUnchanged(t *testing.T) {
	cfg := Config{Dt: 0.004}.withDefaults()
	if cfg.PairlistSkin != 0.4 || cfg.RescaleInterval != 10 ||
		cfg.Tau != 25*cfg.Dt || cfg.Gamma != 5.0 ||
		cfg.TrajectoryEvery != 10 || cfg.RDFBins != 50 || cfg.SampleEvery != 10 {
		t.Fatalf("defaults regressed: %+v", cfg)
	}
}

func parallelBase(method ForceMethod, workers int) Config {
	return Config{
		Atoms: 108, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: 42,
		Cutoff: 2.5, Dt: 0.004,
		Method: method, Workers: workers,
	}
}

// TestWorkersOneRoutesToSerialKernel pins the routing contract: with
// Workers=1 the Parallel* methods run the corresponding serial kernel,
// byte for byte — the summary of a ParallelDirect run must be bitwise
// identical to hand-stepping the system with the serial full-loop
// kernel, and no worker pool is created.
func TestWorkersOneRoutesToSerialKernel(t *testing.T) {
	const steps = 12
	r, err := New(parallelBase(ParallelDirect, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.engine != nil {
		t.Fatal("Workers=1 spawned a worker pool")
	}
	sum, err := r.Run(steps)
	if err != nil {
		t.Fatal(err)
	}

	// Serial reference: the same initial state stepped with the serial
	// full-loop kernel directly.
	st, err := lattice.Generate(lattice.Config{
		N: 108, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := md.NewSystem(st, md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < steps; s++ {
		sys.StepWith(func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}
	if sum.FinalEnergy != sys.TotalEnergy() {
		t.Fatalf("Workers=1 final energy %v differs bitwise from serial full-loop %v",
			sum.FinalEnergy, sys.TotalEnergy())
	}
	for i := 0; i < sys.N(); i++ {
		if r.System().Pos.At(i) != sys.Pos.At(i) {
			t.Fatalf("Workers=1 position %d differs bitwise from serial full-loop", i)
		}
	}
}

// TestWorkersOneRoutesSerialOtherMethods checks the serial routing for
// the pairlist and cell-grid variants against their serial methods.
func TestWorkersOneRoutesSerialOtherMethods(t *testing.T) {
	const steps = 10
	for _, pair := range []struct{ par, serial ForceMethod }{
		{ParallelPairlist, Pairlist},
		{ParallelCellGrid, CellGrid},
	} {
		cfgPar := parallelBase(pair.par, 1)
		cfgSer := parallelBase(pair.serial, 1)
		if pair.serial == CellGrid {
			// The cell grid needs a box >= 3 cutoffs.
			cfgPar.Atoms, cfgSer.Atoms = 864, 864
		}
		rp, err := New(cfgPar)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := New(cfgSer)
		if err != nil {
			t.Fatal(err)
		}
		if rp.engine != nil {
			t.Fatalf("%v: Workers=1 spawned a worker pool", pair.par)
		}
		sp, err := rp.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := rs.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		if sp.FinalEnergy != ss.FinalEnergy {
			t.Fatalf("%v Workers=1 final energy %v differs bitwise from %v %v",
				pair.par, sp.FinalEnergy, pair.serial, ss.FinalEnergy)
		}
		rp.Close()
		rs.Close()
	}
}

// TestParallelMethodsMatchSerialPhysics runs the same workload through
// serial and multi-worker parallel methods and pins the energies to
// rounding.
func TestParallelMethodsMatchSerialPhysics(t *testing.T) {
	const steps = 15
	for _, pair := range []struct {
		par, serial ForceMethod
		atoms       int
	}{
		{ParallelDirect, Direct, 108},
		{ParallelPairlist, Pairlist, 108},
		{ParallelCellGrid, CellGrid, 864},
	} {
		cfgSer := parallelBase(pair.serial, 1)
		cfgSer.Atoms = pair.atoms
		rs, err := New(cfgSer)
		if err != nil {
			t.Fatal(err)
		}
		ss, err := rs.Run(steps)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4} {
			cfgPar := parallelBase(pair.par, workers)
			cfgPar.Atoms = pair.atoms
			rp, err := New(cfgPar)
			if err != nil {
				t.Fatal(err)
			}
			if rp.engine == nil {
				t.Fatalf("%v Workers=%d did not build an engine", pair.par, workers)
			}
			sp, err := rp.Run(steps)
			if err != nil {
				t.Fatal(err)
			}
			if rel := math.Abs(sp.FinalEnergy-ss.FinalEnergy) / (1 + math.Abs(ss.FinalEnergy)); rel > 1e-10 {
				t.Errorf("%v w=%d final energy %v vs serial %v (rel %v)",
					pair.par, workers, sp.FinalEnergy, ss.FinalEnergy, rel)
			}
			rp.Close()
		}
		rs.Close()
	}
}

func TestParallelMethodStrings(t *testing.T) {
	for m, want := range map[ForceMethod]string{
		ParallelDirect:   "pardirect",
		ParallelPairlist: "parpairlist",
		ParallelCellGrid: "parcellgrid",
	} {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

func TestRunnerCloseIdempotent(t *testing.T) {
	r, err := New(parallelBase(ParallelDirect, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(2); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r.Close()
}
