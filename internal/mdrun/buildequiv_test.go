// Build-equivalence pin: a guarded 2048-atom, 100-step pairlist run
// using the new cell-binned (and optionally parallel, shared-engine)
// neighbor-list build must match the seed behaviour — a serial run
// whose list is rebuilt with the reference O(N²) scan — bitwise in
// positions and energies. The test lives in an external test package
// because it drives the guard supervisor, which imports mdrun.
//
// This file also rides the tier-1.5 race gate (scripts/verify.sh runs
// this package under -race), which is the "same pin under go test
// -race" half of the acceptance criteria.
package mdrun_test

import (
	"testing"

	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/parallel"
)

const (
	equivAtoms = 2048
	equivSteps = 100
)

func equivConfig() mdrun.Config {
	return mdrun.Config{
		Atoms: equivAtoms, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: 101,
		Cutoff: 2.5, Dt: 0.004,
		Method: mdrun.Pairlist, PairlistSkin: 0.4,
	}
}

// referenceRun hand-steps the seed behaviour: serial pairlist forces
// over a neighbor list rebuilt with the reference O(N²) scan whenever
// it goes stale. Everything else (lattice, params, integrator) is
// exactly what mdrun.New assembles for the same config.
func referenceRun(t *testing.T) *md.System[float64] {
	t.Helper()
	cfg := equivConfig()
	st, err := lattice.Generate(lattice.Config{
		N: cfg.Atoms, Density: cfg.Density, Temperature: cfg.Temperature,
		Kind: cfg.Lattice, Seed: cfg.Seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: cfg.Cutoff, Dt: cfg.Dt}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := md.NewNeighborList[float64](cfg.PairlistSkin)
	if err != nil {
		t.Fatal(err)
	}
	forces := func() float64 {
		if nl.Stale(sys.P, sys.Pos) {
			nl.BuildN2(sys.P, sys.Pos)
		}
		return nl.Forces(sys.P, sys.Pos, sys.Acc)
	}
	for s := 0; s < equivSteps; s++ {
		sys.StepWith(forces)
	}
	if nl.Builds() < 2 {
		t.Fatalf("reference run rebuilt only %d times; the pin would not exercise rebuild equivalence", nl.Builds())
	}
	return sys
}

// TestGuardedBuildEquivalencePin runs the guarded simulation with the
// new build — serial cell-binned, and parallel through a shared build
// engine — and pins positions, PE, KE, and the summary energies
// bitwise against the O(N²)-build reference.
func TestGuardedBuildEquivalencePin(t *testing.T) {
	ref := referenceRun(t)

	cases := []struct {
		name    string
		workers int // 0 = no shared engine (serial cell-binned build)
	}{
		{"serial-cell-binned", 0},
		{"shared-engine-4", 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := equivConfig()
			var be *parallel.Engine[float64]
			if tc.workers > 0 {
				be = parallel.New[float64](tc.workers)
				defer be.Close()
				cfg.BuildEngine = be
			}
			sup, err := guard.New(guard.Config{Run: cfg})
			if err != nil {
				t.Fatal(err)
			}
			defer sup.Close()
			sum, rep, err := sup.Run(equivSteps)
			if err != nil {
				t.Fatalf("guarded run failed: %v (%v)", err, rep)
			}
			if rep.Counts.Total() != 0 {
				t.Fatalf("guarded run logged incidents: %v", rep)
			}
			sys := sup.System()
			if sys.Steps != ref.Steps {
				t.Fatalf("steps %d != %d", sys.Steps, ref.Steps)
			}
			for i := 0; i < ref.N(); i++ {
				if sys.Pos.At(i) != ref.Pos.At(i) {
					t.Fatalf("position %d differs: %+v vs %+v", i, sys.Pos.At(i), ref.Pos.At(i))
				}
				if sys.Vel.At(i) != ref.Vel.At(i) {
					t.Fatalf("velocity %d differs: %+v vs %+v", i, sys.Vel.At(i), ref.Vel.At(i))
				}
			}
			if sys.PE != ref.PE || sys.KE != ref.KE {
				t.Fatalf("energy differs: PE %v vs %v, KE %v vs %v", sys.PE, ref.PE, sys.KE, ref.KE)
			}
			if want := ref.TotalEnergy(); sum.FinalEnergy != want {
				t.Fatalf("summary FinalEnergy %v, want %v", sum.FinalEnergy, want)
			}
		})
	}
}
