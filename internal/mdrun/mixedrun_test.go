// Mixed-precision runner pins: the F32 force methods must conserve
// energy under the guard watchdog over 100+ steps, the parallel F32
// trajectory must be byte-identical for every worker count, a shared
// build engine must not perturb an F32 run, and params that do not
// survive narrowing must fail at construction. Lives in an external
// test package because it drives the guard supervisor, which imports
// mdrun.
package mdrun_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/guard"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/parallel"
)

// mixedConfig is a 256-atom NVE box sized so the cell grid holds the
// minimum 3 cells per edge at cutoff 2.0.
func mixedConfig(method mdrun.ForceMethod, workers int) mdrun.Config {
	return mdrun.Config{
		Atoms:       256,
		Density:     0.8442,
		Temperature: 0.728,
		Lattice:     lattice.FCC,
		Seed:        77,
		Cutoff:      2.0,
		Dt:          0.004,
		Shifted:     true,
		Method:      method,
		Workers:     workers,
	}
}

func TestF32MethodStrings(t *testing.T) {
	cases := map[mdrun.ForceMethod]string{
		mdrun.PairlistF32:         "pairlist-f32",
		mdrun.ParallelPairlistF32: "parpairlist-f32",
		mdrun.CellGridF32:         "cellgrid-f32",
	}
	for m, want := range cases {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(m), got, want)
		}
	}
}

// TestF32GuardedNVEDrift is the tentpole stability pin: every mixed-
// precision method runs 120 guarded NVE steps with the watchdog's
// energy-drift tripwire tightened to 1e-3, and must finish with zero
// incidents. float32 pair geometry perturbs each force by ~1e-6
// relative, a rounding so far below the integrator's own O(dt²) drift
// that the f64 conservation budget holds unchanged.
func TestF32GuardedNVEDrift(t *testing.T) {
	const steps = 120
	for _, tc := range []struct {
		name    string
		method  mdrun.ForceMethod
		workers int
	}{
		{"pairlist-f32", mdrun.PairlistF32, 1},
		{"cellgrid-f32", mdrun.CellGridF32, 1},
		{"parpairlist-f32-w3", mdrun.ParallelPairlistF32, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sup, err := guard.New(guard.Config{
				Run:            mixedConfig(tc.method, tc.workers),
				MaxEnergyDrift: 1e-3,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer sup.Close()
			sum, rep, err := sup.Run(steps)
			if err != nil {
				t.Fatalf("guarded run failed: %v (%v)", err, rep)
			}
			if rep.Counts.Total() != 0 {
				t.Fatalf("guarded run logged incidents: %v", rep)
			}
			if sum.Steps != steps {
				t.Fatalf("ran %d steps, want %d", sum.Steps, steps)
			}
			drift := math.Abs(sum.FinalEnergy-sum.InitialEnergy) / math.Abs(sum.InitialEnergy)
			t.Logf("relative energy drift over %d steps: %.3g", steps, drift)
			if drift > 1e-3 {
				t.Fatalf("NVE drift %v > 1e-3", drift)
			}
		})
	}
}

// TestParallelPairlistF32WorkerInvariantTrajectory: the gather
// kernel's bytes do not depend on the worker count, so entire
// trajectories — positions, velocities, energies — must agree bit for
// bit across pool sizes. This is the property the f64 parallel
// methods do NOT have (their reduction order varies with the pool),
// and the reason ParallelPairlistF32 skips the Workers=1 serial
// rerouting.
func TestParallelPairlistF32WorkerInvariantTrajectory(t *testing.T) {
	const steps = 30
	run := func(workers int) *md.System[float64] {
		r, err := mdrun.New(mixedConfig(mdrun.ParallelPairlistF32, workers))
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Run(steps); err != nil {
			t.Fatal(err)
		}
		return r.System()
	}
	ref := run(1)
	for _, w := range []int{2, 4, 7} {
		sys := run(w)
		for i := 0; i < ref.N(); i++ {
			if sys.Pos.At(i) != ref.Pos.At(i) || sys.Vel.At(i) != ref.Vel.At(i) {
				t.Fatalf("workers=%d: trajectory diverged at atom %d", w, i)
			}
		}
		if math.Float64bits(sys.PE) != math.Float64bits(ref.PE) ||
			math.Float64bits(sys.KE) != math.Float64bits(ref.KE) {
			t.Fatalf("workers=%d: energies differ: PE %v vs %v, KE %v vs %v",
				w, sys.PE, ref.PE, sys.KE, ref.KE)
		}
	}
}

// TestF32SharedBuildEngineBitwise: lending a build engine to an F32
// run must not change a single byte of the trajectory — the sharded
// float32 list build is byte-identical to the serial one.
func TestF32SharedBuildEngineBitwise(t *testing.T) {
	const steps = 30
	run := func(be *parallel.Engine[float64]) *md.System[float64] {
		cfg := mixedConfig(mdrun.PairlistF32, 1)
		cfg.BuildEngine = be
		r, err := mdrun.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		if _, err := r.Run(steps); err != nil {
			t.Fatal(err)
		}
		return r.System()
	}
	ref := run(nil)
	be := parallel.New[float64](4)
	defer be.Close()
	shared := run(be)
	for i := 0; i < ref.N(); i++ {
		if shared.Pos.At(i) != ref.Pos.At(i) || shared.Vel.At(i) != ref.Vel.At(i) {
			t.Fatalf("shared-engine build diverged at atom %d", i)
		}
	}
	if shared.PE != ref.PE || shared.KE != ref.KE {
		t.Fatal("shared-engine build changed energies")
	}
}

// TestF32RejectsNarrowingInvalidParams: a system whose float64 params
// are valid but do not survive narrowing (subnormal box: 2*Cutoff
// rounds past Box at float32) must be refused when an F32 method is
// configured, at construction rather than mid-run.
func TestF32RejectsNarrowingInvalidParams(t *testing.T) {
	makeSys := func() *md.System[float64] {
		p := md.Params[float64]{
			Cutoff: 0.6 * math.Pow(2, -149),
			Box:    1.2 * math.Pow(2, -149),
			Dt:     0.004,
		}
		return &md.System[float64]{
			P:   p,
			Pos: md.MakeCoords[float64](8),
			Vel: md.MakeCoords[float64](8),
			Acc: md.MakeCoords[float64](8),
		}
	}
	for _, method := range []mdrun.ForceMethod{
		mdrun.PairlistF32, mdrun.ParallelPairlistF32, mdrun.CellGridF32,
	} {
		cfg := mdrun.Config{Method: method, Workers: 2}
		_, err := mdrun.NewFromSystem(makeSys(), cfg)
		if err == nil {
			t.Fatalf("%v: accepted params that are invalid at float32", method)
		}
		if !strings.Contains(err.Error(), "narrow") {
			t.Fatalf("%v: error %q does not mention narrowing", method, err)
		}
	}
}
