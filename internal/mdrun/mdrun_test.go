package mdrun

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/lattice"
	"repro/internal/md"
)

func baseConfig() Config {
	return Config{
		Atoms:       256,
		Density:     0.8442,
		Temperature: 0.728,
		Lattice:     lattice.FCC,
		Seed:        101,
		Cutoff:      2.5,
		Dt:          0.004,
		Shifted:     true,
	}
}

func TestNVEConservesEnergy(t *testing.T) {
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(200)
	if err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(sum.FinalEnergy-sum.InitialEnergy) / math.Abs(sum.InitialEnergy)
	if drift > 1e-3 {
		t.Fatalf("NVE drift %v", drift)
	}
}

func TestThermostatsHoldTemperature(t *testing.T) {
	for _, kind := range []ThermostatKind{Rescale, Berendsen, Langevin} {
		cfg := baseConfig()
		cfg.Thermostat = kind
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Equilibrate, then measure.
		if _, err := r.Run(150); err != nil {
			t.Fatal(err)
		}
		sum, err := r.Run(200)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sum.MeanTemperature-cfg.Temperature) > 0.08 {
			t.Fatalf("%v: mean T = %v, want ~%v", kind, sum.MeanTemperature, cfg.Temperature)
		}
	}
}

func TestForceMethodsAgree(t *testing.T) {
	// The three force methods must produce the same trajectory. 864
	// atoms gives a box wide enough for the cell grid.
	run := func(m ForceMethod) *md.System[float64] {
		cfg := baseConfig()
		cfg.Atoms = 864
		cfg.Method = m
		r, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.Run(25); err != nil {
			t.Fatal(err)
		}
		return r.System()
	}
	ref := run(Direct)
	for _, m := range []ForceMethod{Pairlist, CellGrid} {
		got := run(m)
		for i := 0; i < ref.N(); i++ {
			if d := ref.Pos.At(i).Sub(got.Pos.At(i)).Norm(); d > 1e-8 {
				t.Fatalf("%v diverged from direct at atom %d by %v", m, i, d)
			}
		}
	}
}

func TestBondedTopologyIntegrates(t *testing.T) {
	cfg := baseConfig()
	cfg.Atoms = 108
	cfg.Topology = md.LinearChain(4, 60, 1.1) // bond the first four atoms
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	drift := math.Abs(sum.FinalEnergy-sum.InitialEnergy) / math.Abs(sum.InitialEnergy)
	if drift > 5e-3 {
		t.Fatalf("bonded NVE drift %v", drift)
	}
}

func TestBadTopologyRejected(t *testing.T) {
	cfg := baseConfig()
	cfg.Topology = &md.Topology{Bonds: []md.Bond{{I: 0, J: 99999, K: 1, R0: 1}}}
	if _, err := New(cfg); err == nil {
		t.Fatal("out-of-range topology accepted")
	}
}

func TestTrajectoryWritten(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig()
	cfg.Atoms = 108 // smallest system whose box still fits the 2.5 cutoff
	cfg.Trajectory = &buf
	cfg.TrajectoryEvery = 5
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if sum.FramesWritten != 4 {
		t.Fatalf("FramesWritten = %d, want 4", sum.FramesWritten)
	}
	frames, err := md.NewXYZReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 4 || len(frames[0].Pos) != 108 {
		t.Fatalf("trajectory malformed: %d frames", len(frames))
	}
	if !strings.Contains(frames[0].Comment, "step 5") {
		t.Fatalf("comment = %q", frames[0].Comment)
	}
}

func TestRDFSampling(t *testing.T) {
	cfg := baseConfig()
	cfg.SampleRDF = true
	cfg.SampleEvery = 5
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.RDF) != cfg.withDefaults().RDFBins {
		t.Fatalf("RDF bins = %d", len(sum.RDF))
	}
	// Liquid structure: a first peak above 1.
	var peak float64
	for _, g := range sum.RDF {
		if g > peak {
			peak = g
		}
	}
	if peak < 1.5 {
		t.Fatalf("RDF peak = %v, want > 1.5", peak)
	}
}

func TestMSDGrows(t *testing.T) {
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(100)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MSD <= 0 {
		t.Fatalf("MSD = %v", sum.MSD)
	}
}

func TestPressurePositiveAtLiquidDensity(t *testing.T) {
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(sum.Pressure) || math.IsInf(sum.Pressure, 0) {
		t.Fatalf("pressure = %v", sum.Pressure)
	}
}

func TestInvalidConfigs(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Atoms = 0 },
		func(c *Config) { c.Density = 0 },
		func(c *Config) { c.Cutoff = 0 },
		func(c *Config) { c.Dt = 0 },
		func(c *Config) { c.Thermostat = ThermostatKind(99) },
		func(c *Config) { c.Method = ForceMethod(99) },
	}
	for i, mod := range cases {
		cfg := baseConfig()
		mod(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNegativeStepsRejected(t *testing.T) {
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(-1); err == nil {
		t.Fatal("negative steps accepted")
	}
}

func TestZeroSteps(t *testing.T) {
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	sum, err := r.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.InitialEnergy != sum.FinalEnergy {
		t.Fatal("zero-step run changed energy")
	}
}

func TestStrings(t *testing.T) {
	if Direct.String() != "direct" || Pairlist.String() != "pairlist" || CellGrid.String() != "cellgrid" {
		t.Fatal("ForceMethod.String")
	}
	if NVE.String() != "nve" || Rescale.String() != "rescale" || Berendsen.String() != "berendsen" || Langevin.String() != "langevin" {
		t.Fatal("ThermostatKind.String")
	}
	if ForceMethod(42).String() == "" || ThermostatKind(42).String() == "" {
		t.Fatal("unknown stringers empty")
	}
}
