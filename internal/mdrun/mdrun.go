// Package mdrun composes the MD building blocks into the kind of
// simulation front end the paper's future plans point at ("full-scale
// bio-molecular simulation frameworks"): one Config selects the force
// method (the paper's direct O(N²) kernel, the Verlet pairlist, or the
// linked-cell grid), an optional bonded topology, an optional
// thermostat, trajectory output, and on-line observables (temperature
// averages, RDF, MSD, pressure); one Run produces a Summary.
//
// All force methods integrate the identical physics (pinned by tests),
// so switching between them is purely a performance decision — the same
// property the device models rely on.
package mdrun

import (
	"context"
	"fmt"
	"io"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/parallel"
	"repro/internal/vec"
)

// ForceMethod selects the non-bonded force evaluation.
type ForceMethod int

const (
	// Direct is the paper's kernel: O(N²), distances on the fly.
	Direct ForceMethod = iota
	// Pairlist is the Verlet neighbor list (cutoff + skin).
	Pairlist
	// CellGrid is the linked-cell O(N) method.
	CellGrid
	// ParallelDirect is Direct sharded across Config.Workers host
	// threads (atom-range sharding over the full-loop layout).
	ParallelDirect
	// ParallelPairlist is Pairlist sharded by pair chunks with
	// per-worker accumulators.
	ParallelPairlist
	// ParallelCellGrid is CellGrid sharded by cell ranges.
	ParallelCellGrid
	// PairlistF32 is the mixed-precision Verlet list: pair geometry
	// and the LJ evaluation at float32 over a narrowed position
	// mirror, per-atom force and energy accumulation at float64. The
	// master state — integration, thermostat, checkpoints — stays
	// float64.
	PairlistF32
	// ParallelPairlistF32 is PairlistF32 sharded by atom ranges with
	// full-row gather; its output bytes are independent of Workers.
	ParallelPairlistF32
	// CellGridF32 is the mixed-precision linked-cell method.
	CellGridF32
)

// String implements fmt.Stringer.
func (f ForceMethod) String() string {
	switch f {
	case Direct:
		return "direct"
	case Pairlist:
		return "pairlist"
	case CellGrid:
		return "cellgrid"
	case ParallelDirect:
		return "pardirect"
	case ParallelPairlist:
		return "parpairlist"
	case ParallelCellGrid:
		return "parcellgrid"
	case PairlistF32:
		return "pairlist-f32"
	case ParallelPairlistF32:
		return "parpairlist-f32"
	case CellGridF32:
		return "cellgrid-f32"
	default:
		return fmt.Sprintf("ForceMethod(%d)", int(f))
	}
}

// ThermostatKind selects temperature control.
type ThermostatKind int

const (
	// NVE runs without a thermostat (constant energy).
	NVE ThermostatKind = iota
	// Rescale hard-rescales to the target every RescaleInterval steps.
	Rescale
	// Berendsen couples weakly with time constant Tau.
	Berendsen
	// Langevin couples stochastically with friction Gamma (canonical
	// sampling; noise stream seeded from Config.Seed+1).
	Langevin
)

// String implements fmt.Stringer.
func (t ThermostatKind) String() string {
	switch t {
	case NVE:
		return "nve"
	case Rescale:
		return "rescale"
	case Berendsen:
		return "berendsen"
	case Langevin:
		return "langevin"
	default:
		return fmt.Sprintf("ThermostatKind(%d)", int(t))
	}
}

// Config describes a full simulation.
type Config struct {
	// System.
	Atoms       int
	Density     float64
	Temperature float64
	Lattice     lattice.Kind
	Seed        uint64

	// Numerics.
	Cutoff  float64
	Dt      float64
	Shifted bool // shift the LJ potential to zero at the cutoff

	// Forces.
	Method       ForceMethod
	PairlistSkin float64 // used by Pairlist (default 0.4)
	// Workers sizes the host worker pool for the Parallel* methods:
	// 0 means one per CPU, negative clamps to 1, huge counts clamp to
	// parallel.MaxWorkers. Workers=1 routes to the corresponding serial
	// kernel, byte for byte — except ParallelPairlistF32, whose gather
	// kernel produces the same bytes for every worker count and
	// therefore always runs on the pool. Ignored by the serial methods.
	Workers int
	// BuildEngine, when non-nil, is a shared worker pool used for
	// neighbor-list builds by the Pairlist, ParallelPairlist,
	// PairlistF32, and ParallelPairlistF32 methods
	// (the fleet scheduler hands every replica the same engine, so
	// replicas share one build pool instead of spawning their own).
	// The engine is borrowed: Runner.Close does not close it, and the
	// parallel build is byte-identical to the serial one for any worker
	// count, so sharing never perturbs the physics. Nil (the default)
	// builds on the method's own path.
	BuildEngine *parallel.Engine[float64]

	// Optional bonded topology (nil for the pure LJ fluid).
	Topology *md.Topology

	// Temperature control.
	Thermostat      ThermostatKind
	RescaleInterval int     // Rescale: steps between kicks (default 10)
	Tau             float64 // Berendsen: coupling constant (default 25*Dt)
	Gamma           float64 // Langevin: friction (default 5.0)

	// Trajectory output (nil to disable).
	Trajectory      io.Writer
	TrajectoryEvery int // frames every N steps (default 10)

	// Observables.
	SampleRDF   bool
	RDFBins     int // default 50
	SampleEvery int // observable sampling stride (default 10)

	// Faults optionally injects failures for resilience testing: the
	// trajectory writer is wrapped at faults.SiteTrajectory, every
	// force evaluation consults faults.SiteForces, and the parallel
	// engine (if any) is armed at faults.SiteWorker and
	// faults.SiteParallelForces. Nil (the default) costs one nil check
	// per step.
	Faults faults.Injector
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.PairlistSkin == 0 {
		c.PairlistSkin = 0.4
	}
	c.Workers = parallel.ClampWorkers(c.Workers)
	if c.RescaleInterval == 0 {
		c.RescaleInterval = 10
	}
	if c.Tau == 0 {
		c.Tau = 25 * c.Dt
	}
	if c.Gamma == 0 {
		c.Gamma = 5.0
	}
	if c.TrajectoryEvery == 0 {
		c.TrajectoryEvery = 10
	}
	if c.RDFBins == 0 {
		c.RDFBins = 50
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10
	}
	return c
}

// Summary reports a completed run.
type Summary struct {
	Steps int

	InitialEnergy float64
	FinalEnergy   float64
	// MeanTemperature averages the sampled instantaneous temperatures.
	MeanTemperature float64
	// Pressure is the final-configuration virial pressure.
	Pressure float64
	// MSD is the mean-square displacement over the whole run.
	MSD float64
	// RDF results (nil unless Config.SampleRDF).
	RDFCenters, RDF []float64
	// FramesWritten counts trajectory frames.
	FramesWritten int
}

// Runner holds a configured simulation.
type Runner struct {
	cfg Config
	sys *md.System[float64]

	forces func() (float64, error)
	bonded *md.Topology
	therm  md.Thermostat[float64]
	traj   *md.XYZWriter
	rdf    *md.RDF
	msd    *md.MSD
	engine *parallel.Engine[float64] // non-nil for the Parallel* methods with Workers > 1

	// runCtx is the context of the Run in progress; the shared-engine
	// build path reads it so a cancelled replica abandons its build
	// without cancelling siblings on the same pool.
	runCtx context.Context
}

// New builds and validates a runner; forces are evaluated once so the
// initial energy is meaningful.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	st, err := lattice.Generate(lattice.Config{
		N: cfg.Atoms, Density: cfg.Density, Temperature: cfg.Temperature,
		Kind: cfg.Lattice, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: cfg.Cutoff, Dt: cfg.Dt, Shifted: cfg.Shifted}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		return nil, err
	}
	return assemble(cfg, sys)
}

// NewFromSystem builds a runner that continues from an existing system
// state — a restored checkpoint, or a state handed over from another
// runner (the guard supervisor's rollback/escalation path). The
// Config's lattice-shape fields (Atoms, Density, Lattice, Seed) are
// ignored; the box comes from sys, while Cutoff, Dt, and Shifted are
// taken from cfg when set (Dt overriding is what lets the supervisor
// halve the time step on retry). The system is adopted, not copied,
// and its stored accelerations are kept so a same-method resume stays
// bit-exact with an uninterrupted run.
func NewFromSystem(sys *md.System[float64], cfg Config) (*Runner, error) {
	if sys == nil || sys.N() == 0 {
		return nil, fmt.Errorf("mdrun: NewFromSystem needs a non-empty system")
	}
	cfg = cfg.withDefaults()
	if cfg.Cutoff > 0 {
		sys.P.Cutoff = cfg.Cutoff
	}
	if cfg.Dt > 0 {
		sys.P.Dt = cfg.Dt
	}
	sys.P.Shifted = cfg.Shifted
	if err := sys.P.Validate(); err != nil {
		return nil, err
	}
	return assemble(cfg, sys)
}

// assemble wires forces, thermostat, trajectory, and observables
// around an existing system.
func assemble(cfg Config, sys *md.System[float64]) (*Runner, error) {
	r := &Runner{cfg: cfg, sys: sys, bonded: cfg.Topology, runCtx: context.Background()}

	if r.bonded != nil {
		if err := r.bonded.Validate(sys.N()); err != nil {
			return nil, err
		}
	}

	nonbonded, err := r.buildForces()
	if err != nil {
		return nil, err
	}
	r.forces = func() (float64, error) {
		pe, err := nonbonded()
		if err != nil {
			return 0, err
		}
		if r.bonded != nil {
			bpe, err := md.BondedForces(r.bonded, sys.P.Box, sys.Pos, sys.Acc)
			if err != nil {
				// Bonded failures (coincident atoms) indicate a blown-up
				// trajectory; surface as a step error.
				return 0, err
			}
			pe += bpe
		}
		if f := faults.Fire(cfg.Faults, faults.SiteForces); f != nil {
			faults.CorruptPlane(f.Kind, sys.Acc.X)
		}
		return pe, nil
	}

	switch cfg.Thermostat {
	case NVE:
	case Rescale:
		r.therm, err = md.NewRescaleThermostat(cfg.Temperature, cfg.RescaleInterval)
	case Berendsen:
		r.therm, err = md.NewBerendsenThermostat(cfg.Temperature, cfg.Dt, cfg.Tau)
	case Langevin:
		r.therm, err = md.NewLangevinThermostat(cfg.Temperature, cfg.Dt, cfg.Gamma, cfg.Seed+1)
	default:
		err = fmt.Errorf("mdrun: unknown thermostat %d", int(cfg.Thermostat))
	}
	if err != nil {
		return nil, err
	}

	if cfg.Trajectory != nil {
		r.traj = md.NewXYZWriter(faults.NewWriter(cfg.Trajectory, cfg.Faults, faults.SiteTrajectory), "Ar")
	}
	if cfg.SampleRDF {
		rMax := sys.P.Cutoff
		if rMax > sys.P.Box/2 {
			rMax = sys.P.Box / 2 * 0.99
		}
		r.rdf, err = md.NewRDF(sys.P.Box, rMax, cfg.RDFBins)
		if err != nil {
			return nil, err
		}
	}
	r.msd = md.NewMSD(sys.P.Box, sys.Pos)
	return r, nil
}

// buildForces wires the selected non-bonded method on the
// error-returning kernel path (serial kernels cannot fail; parallel
// kernels surface worker faults as errors). For the Parallel* methods
// a Workers count of 1 routes straight to the corresponding serial
// kernel (the parallel kernels are bitwise identical at one worker,
// but the serial path spawns no pool at all).
func (r *Runner) buildForces() (func() (float64, error), error) {
	sys := r.sys
	infallible := func(f func() float64) func() (float64, error) {
		return func() (float64, error) { return f(), nil }
	}
	switch r.cfg.Method {
	case Direct:
		return infallible(func() float64 { return md.ComputeForces(sys.P, sys.Pos, sys.Acc) }), nil
	case Pairlist:
		nl, err := md.NewNeighborList[float64](r.cfg.PairlistSkin)
		if err != nil {
			return nil, err
		}
		if build := r.sharedBuild(nl); build != nil {
			return func() (float64, error) {
				if err := build(); err != nil {
					return 0, err
				}
				return nl.Forces(sys.P, sys.Pos, sys.Acc), nil
			}, nil
		}
		return infallible(func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }), nil
	case CellGrid:
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, err
		}
		return infallible(func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }), nil
	case ParallelDirect:
		if r.cfg.Workers == 1 {
			return infallible(func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) }), nil
		}
		r.newEngine()
		return func() (float64, error) { return r.engine.TryForcesDirect(sys.P, sys.Pos, sys.Acc) }, nil
	case ParallelPairlist:
		nl, err := md.NewNeighborList[float64](r.cfg.PairlistSkin)
		if err != nil {
			return nil, err
		}
		build := r.sharedBuild(nl)
		if r.cfg.Workers == 1 {
			if build != nil {
				return func() (float64, error) {
					if err := build(); err != nil {
						return 0, err
					}
					return nl.Forces(sys.P, sys.Pos, sys.Acc), nil
				}, nil
			}
			return infallible(func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }), nil
		}
		r.newEngine()
		if build != nil {
			return func() (float64, error) {
				if err := build(); err != nil {
					return 0, err
				}
				return r.engine.TryForcesPairlist(nl, sys.P, sys.Pos, sys.Acc)
			}, nil
		}
		return func() (float64, error) { return r.engine.TryForcesPairlist(nl, sys.P, sys.Pos, sys.Acc) }, nil
	case ParallelCellGrid:
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, err
		}
		if r.cfg.Workers == 1 {
			return infallible(func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }), nil
		}
		r.newEngine()
		return func() (float64, error) { return r.engine.TryForcesCell(cl, sys.P, sys.Pos, sys.Acc) }, nil
	case PairlistF32:
		mx, nl, err := r.newMixedPairlist()
		if err != nil {
			return nil, err
		}
		build := r.sharedBuildF32(nl, mx)
		return func() (float64, error) {
			mx.RefreshSystem(sys)
			if build != nil {
				if err := build(); err != nil {
					return 0, err
				}
			}
			return md.ForcesPairlistMixed(nl, mx.P, mx.Pos, sys.Acc), nil
		}, nil
	case ParallelPairlistF32:
		mx, nl, err := r.newMixedPairlist()
		if err != nil {
			return nil, err
		}
		build := r.sharedBuildF32(nl, mx)
		// No Workers==1 serial rerouting here: the gather kernel's
		// output bytes are worker-count-independent by design (one
		// worker runs it inline with no pool), and routing to the
		// serial scatter kernel would break exactly that pin.
		r.newEngine()
		return func() (float64, error) {
			mx.RefreshSystem(sys)
			if build != nil {
				if err := build(); err != nil {
					return 0, err
				}
			}
			return r.engine.TryForcesPairlistF32(nl, mx.P, mx.Pos, sys.Acc)
		}, nil
	case CellGridF32:
		mx, err := md.NewMirror32(sys.P)
		if err != nil {
			return nil, err
		}
		cl, err := md.NewCellList(mx.P.Box, mx.P.Cutoff)
		if err != nil {
			return nil, err
		}
		return func() (float64, error) {
			mx.RefreshSystem(sys)
			return md.ForcesCellMixed(cl, mx.P, mx.Pos, sys.Acc), nil
		}, nil
	default:
		return nil, fmt.Errorf("mdrun: unknown force method %d", int(r.cfg.Method))
	}
}

// sharedBuild returns a pre-forces hook that keeps nl fresh through
// the shared Config.BuildEngine, or nil when no shared engine is
// configured (the force path then rebuilds on its own). The hook
// passes the current Run's context, so a cancelled replica abandons
// its build (list left stale-but-consistent) without disturbing other
// runners on the same pool.
func (r *Runner) sharedBuild(nl *md.NeighborList[float64]) func() error {
	be := r.cfg.BuildEngine
	if be == nil {
		return nil
	}
	sys := r.sys
	return func() error {
		if nl.Stale(sys.P, sys.Pos) {
			return be.BuildPairlist(r.runCtx, nl, sys.P, sys.Pos)
		}
		return nil
	}
}

// newMixedPairlist builds the float32 mirror and neighbor list the
// mixed-precision pairlist methods share. NewMirror32 validates the
// narrowed parameters, so a configuration whose box/cutoff pair does
// not survive rounding to float32 fails here instead of mid-run.
func (r *Runner) newMixedPairlist() (*md.Mirror32, *md.NeighborList[float32], error) {
	mx, err := md.NewMirror32(r.sys.P)
	if err != nil {
		return nil, nil, err
	}
	nl, err := md.NewNeighborList[float32](vec.Narrow[float32](r.cfg.PairlistSkin))
	if err != nil {
		return nil, nil, err
	}
	return mx, nl, nil
}

// sharedBuildF32 is sharedBuild for the mixed-precision list: stale
// rebuilds route through the lent engine's BuildPairlistF32 (bitwise
// sharding-independent, like the float64 build). Callers must Refresh
// the mirror before invoking the returned hook.
func (r *Runner) sharedBuildF32(nl *md.NeighborList[float32], mx *md.Mirror32) func() error {
	be := r.cfg.BuildEngine
	if be == nil {
		return nil
	}
	return func() error {
		if nl.Stale(mx.P, mx.Pos) {
			return be.BuildPairlistF32(r.runCtx, nl, mx.P, mx.Pos)
		}
		return nil
	}
}

// newEngine builds the worker pool and arms it with the configured
// fault injector.
func (r *Runner) newEngine() {
	r.engine = parallel.New[float64](r.cfg.Workers)
	r.engine.SetInjector(r.cfg.Faults)
}

// Close releases the parallel worker pool, if any. The Runner must not
// be used after Close. Close is idempotent, safe on serial runners,
// safe to call concurrently from several goroutines, and safe after a
// failed Run — the pool drains even when the last evaluation errored.
func (r *Runner) Close() {
	if r.engine != nil {
		r.engine.Close()
	}
}

// System exposes the live state (read-mostly; used by tests and tools).
func (r *Runner) System() *md.System[float64] { return r.sys }

// Run advances the simulation the given number of steps and returns
// the summary. Failures — a worker fault, a bonded blow-up, a
// trajectory-write error — return an error together with a partial
// Summary whose Steps field reports how many steps completed before
// the failure (the other summary fields describe the state at that
// point); there is no panic path. After a failed Run the system state
// may be mid-step; continue only from a restored checkpoint (see
// internal/guard).
func (r *Runner) Run(steps int) (*Summary, error) {
	return r.RunContext(context.Background(), steps)
}

// RunContext is Run bounded by a context: cancellation (or deadline
// expiry) is checked at every step boundary and inside the parallel
// worker pool, so a cancelled run stops within one MD step — with a
// partial Summary and an error wrapping ctx.Err() — rather than at run
// end. Cancellation caught at a step boundary leaves the system at
// whole-step state; cancellation that lands mid-force-evaluation is a
// failed step like any other (state may be mid-step; the guard
// supervisor rolls back before reuse).
func (r *Runner) RunContext(ctx context.Context, steps int) (*Summary, error) {
	if steps < 0 {
		return nil, fmt.Errorf("mdrun: steps must be non-negative, got %d", steps)
	}
	if r.engine != nil {
		r.engine.SetContext(ctx)
	}
	r.runCtx = ctx

	sys := r.sys
	sum := &Summary{Steps: steps, InitialEnergy: sys.TotalEnergy()}
	var tempSum float64
	tempSamples := 0
	// fail reports a failure after completed whole steps.
	fail := func(completed int, err error) (*Summary, error) {
		sum.Steps = completed
		sum.FinalEnergy = sys.TotalEnergy()
		if tempSamples > 0 {
			sum.MeanTemperature = tempSum / float64(tempSamples)
		}
		if r.traj != nil {
			sum.FramesWritten = r.traj.Frames()
		}
		return sum, fmt.Errorf("mdrun: %w", err)
	}
	for s := 1; s <= steps; s++ {
		if cerr := ctx.Err(); cerr != nil {
			return fail(s-1, fmt.Errorf("cancelled before step %d: %w", sys.Steps+1, cerr))
		}
		if err := sys.StepWithE(r.forces); err != nil {
			return fail(s-1, fmt.Errorf("step %d: %w", sys.Steps+1, err))
		}
		if r.therm != nil {
			r.therm.Apply(sys.Vel, sys.Temperature())
			sys.KE = md.KineticEnergy(sys.Vel)
		}
		if err := r.msd.Track(sys.Pos); err != nil {
			return fail(s, err)
		}
		if s%r.cfg.SampleEvery == 0 {
			tempSum += sys.Temperature()
			tempSamples++
			if r.rdf != nil {
				r.rdf.Accumulate(sys.Pos)
			}
		}
		if r.traj != nil && s%r.cfg.TrajectoryEvery == 0 {
			comment := fmt.Sprintf("step %d PE %.6f KE %.6f", sys.Steps, sys.PE, sys.KE)
			if err := r.traj.WriteFrame(comment, sys.Pos); err != nil {
				return fail(s, fmt.Errorf("trajectory: %w", err))
			}
		}
	}
	if r.traj != nil {
		if err := r.traj.Flush(); err != nil {
			return fail(steps, fmt.Errorf("trajectory: %w", err))
		}
		sum.FramesWritten = r.traj.Frames()
	}
	sum.FinalEnergy = sys.TotalEnergy()
	if tempSamples > 0 {
		sum.MeanTemperature = tempSum / float64(tempSamples)
	}
	sum.Pressure = md.Pressure(sys.P, sys.Pos, sys.Temperature())
	sum.MSD = r.msd.Value()
	if r.rdf != nil {
		sum.RDFCenters, sum.RDF = r.rdf.Result()
	}
	return sum, nil
}
