// Package mdrun composes the MD building blocks into the kind of
// simulation front end the paper's future plans point at ("full-scale
// bio-molecular simulation frameworks"): one Config selects the force
// method (the paper's direct O(N²) kernel, the Verlet pairlist, or the
// linked-cell grid), an optional bonded topology, an optional
// thermostat, trajectory output, and on-line observables (temperature
// averages, RDF, MSD, pressure); one Run produces a Summary.
//
// All force methods integrate the identical physics (pinned by tests),
// so switching between them is purely a performance decision — the same
// property the device models rely on.
package mdrun

import (
	"fmt"
	"io"

	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/parallel"
)

// ForceMethod selects the non-bonded force evaluation.
type ForceMethod int

const (
	// Direct is the paper's kernel: O(N²), distances on the fly.
	Direct ForceMethod = iota
	// Pairlist is the Verlet neighbor list (cutoff + skin).
	Pairlist
	// CellGrid is the linked-cell O(N) method.
	CellGrid
	// ParallelDirect is Direct sharded across Config.Workers host
	// threads (atom-range sharding over the full-loop layout).
	ParallelDirect
	// ParallelPairlist is Pairlist sharded by pair chunks with
	// per-worker accumulators.
	ParallelPairlist
	// ParallelCellGrid is CellGrid sharded by cell ranges.
	ParallelCellGrid
)

// String implements fmt.Stringer.
func (f ForceMethod) String() string {
	switch f {
	case Direct:
		return "direct"
	case Pairlist:
		return "pairlist"
	case CellGrid:
		return "cellgrid"
	case ParallelDirect:
		return "pardirect"
	case ParallelPairlist:
		return "parpairlist"
	case ParallelCellGrid:
		return "parcellgrid"
	default:
		return fmt.Sprintf("ForceMethod(%d)", int(f))
	}
}

// ThermostatKind selects temperature control.
type ThermostatKind int

const (
	// NVE runs without a thermostat (constant energy).
	NVE ThermostatKind = iota
	// Rescale hard-rescales to the target every RescaleInterval steps.
	Rescale
	// Berendsen couples weakly with time constant Tau.
	Berendsen
	// Langevin couples stochastically with friction Gamma (canonical
	// sampling; noise stream seeded from Config.Seed+1).
	Langevin
)

// String implements fmt.Stringer.
func (t ThermostatKind) String() string {
	switch t {
	case NVE:
		return "nve"
	case Rescale:
		return "rescale"
	case Berendsen:
		return "berendsen"
	case Langevin:
		return "langevin"
	default:
		return fmt.Sprintf("ThermostatKind(%d)", int(t))
	}
}

// Config describes a full simulation.
type Config struct {
	// System.
	Atoms       int
	Density     float64
	Temperature float64
	Lattice     lattice.Kind
	Seed        uint64

	// Numerics.
	Cutoff  float64
	Dt      float64
	Shifted bool // shift the LJ potential to zero at the cutoff

	// Forces.
	Method       ForceMethod
	PairlistSkin float64 // used by Pairlist (default 0.4)
	// Workers sizes the host worker pool for the Parallel* methods:
	// 0 means one per CPU, negative clamps to 1, huge counts clamp to
	// parallel.MaxWorkers. Workers=1 routes to the corresponding serial
	// kernel, byte for byte. Ignored by the serial methods.
	Workers int

	// Optional bonded topology (nil for the pure LJ fluid).
	Topology *md.Topology

	// Temperature control.
	Thermostat      ThermostatKind
	RescaleInterval int     // Rescale: steps between kicks (default 10)
	Tau             float64 // Berendsen: coupling constant (default 25*Dt)
	Gamma           float64 // Langevin: friction (default 5.0)

	// Trajectory output (nil to disable).
	Trajectory      io.Writer
	TrajectoryEvery int // frames every N steps (default 10)

	// Observables.
	SampleRDF   bool
	RDFBins     int // default 50
	SampleEvery int // observable sampling stride (default 10)
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.PairlistSkin == 0 {
		c.PairlistSkin = 0.4
	}
	c.Workers = parallel.ClampWorkers(c.Workers)
	if c.RescaleInterval == 0 {
		c.RescaleInterval = 10
	}
	if c.Tau == 0 {
		c.Tau = 25 * c.Dt
	}
	if c.Gamma == 0 {
		c.Gamma = 5.0
	}
	if c.TrajectoryEvery == 0 {
		c.TrajectoryEvery = 10
	}
	if c.RDFBins == 0 {
		c.RDFBins = 50
	}
	if c.SampleEvery == 0 {
		c.SampleEvery = 10
	}
	return c
}

// Summary reports a completed run.
type Summary struct {
	Steps int

	InitialEnergy float64
	FinalEnergy   float64
	// MeanTemperature averages the sampled instantaneous temperatures.
	MeanTemperature float64
	// Pressure is the final-configuration virial pressure.
	Pressure float64
	// MSD is the mean-square displacement over the whole run.
	MSD float64
	// RDF results (nil unless Config.SampleRDF).
	RDFCenters, RDF []float64
	// FramesWritten counts trajectory frames.
	FramesWritten int
}

// Runner holds a configured simulation.
type Runner struct {
	cfg Config
	sys *md.System[float64]

	forces func() float64
	bonded *md.Topology
	therm  md.Thermostat[float64]
	traj   *md.XYZWriter
	rdf    *md.RDF
	msd    *md.MSD
	engine *parallel.Engine[float64] // non-nil for the Parallel* methods with Workers > 1
}

// New builds and validates a runner; forces are evaluated once so the
// initial energy is meaningful.
func New(cfg Config) (*Runner, error) {
	cfg = cfg.withDefaults()
	st, err := lattice.Generate(lattice.Config{
		N: cfg.Atoms, Density: cfg.Density, Temperature: cfg.Temperature,
		Kind: cfg.Lattice, Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: cfg.Cutoff, Dt: cfg.Dt, Shifted: cfg.Shifted}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		return nil, err
	}
	r := &Runner{cfg: cfg, sys: sys, bonded: cfg.Topology}

	if r.bonded != nil {
		if err := r.bonded.Validate(sys.N()); err != nil {
			return nil, err
		}
	}

	nonbonded, err := r.buildForces()
	if err != nil {
		return nil, err
	}
	r.forces = func() float64 {
		pe := nonbonded()
		if r.bonded != nil {
			bpe, err := md.BondedForces(r.bonded, sys.P.Box, sys.Pos, sys.Acc)
			if err != nil {
				// Bonded failures (coincident atoms) indicate a blown-up
				// trajectory; surface through panic/recover at Run.
				panic(err)
			}
			pe += bpe
		}
		return pe
	}

	switch cfg.Thermostat {
	case NVE:
	case Rescale:
		r.therm, err = md.NewRescaleThermostat(cfg.Temperature, cfg.RescaleInterval)
	case Berendsen:
		r.therm, err = md.NewBerendsenThermostat(cfg.Temperature, cfg.Dt, cfg.Tau)
	case Langevin:
		r.therm, err = md.NewLangevinThermostat(cfg.Temperature, cfg.Dt, cfg.Gamma, cfg.Seed+1)
	default:
		err = fmt.Errorf("mdrun: unknown thermostat %d", int(cfg.Thermostat))
	}
	if err != nil {
		return nil, err
	}

	if cfg.Trajectory != nil {
		r.traj = md.NewXYZWriter(cfg.Trajectory, "Ar")
	}
	if cfg.SampleRDF {
		rMax := cfg.Cutoff
		if rMax > st.Box/2 {
			rMax = st.Box / 2 * 0.99
		}
		r.rdf, err = md.NewRDF(st.Box, rMax, cfg.RDFBins)
		if err != nil {
			return nil, err
		}
	}
	r.msd = md.NewMSD(st.Box, sys.Pos)
	return r, nil
}

// buildForces wires the selected non-bonded method. For the Parallel*
// methods a Workers count of 1 routes straight to the corresponding
// serial kernel (the parallel kernels are bitwise identical at one
// worker, but the serial path spawns no pool at all).
func (r *Runner) buildForces() (func() float64, error) {
	sys := r.sys
	switch r.cfg.Method {
	case Direct:
		return func() float64 { return md.ComputeForces(sys.P, sys.Pos, sys.Acc) }, nil
	case Pairlist:
		nl, err := md.NewNeighborList[float64](r.cfg.PairlistSkin)
		if err != nil {
			return nil, err
		}
		return func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }, nil
	case CellGrid:
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, err
		}
		return func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }, nil
	case ParallelDirect:
		if r.cfg.Workers == 1 {
			return func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) }, nil
		}
		r.engine = parallel.New[float64](r.cfg.Workers)
		return func() float64 { return r.engine.ForcesDirect(sys.P, sys.Pos, sys.Acc) }, nil
	case ParallelPairlist:
		nl, err := md.NewNeighborList[float64](r.cfg.PairlistSkin)
		if err != nil {
			return nil, err
		}
		if r.cfg.Workers == 1 {
			return func() float64 { return nl.Forces(sys.P, sys.Pos, sys.Acc) }, nil
		}
		r.engine = parallel.New[float64](r.cfg.Workers)
		return func() float64 { return r.engine.ForcesPairlist(nl, sys.P, sys.Pos, sys.Acc) }, nil
	case ParallelCellGrid:
		cl, err := md.NewCellList(sys.P.Box, sys.P.Cutoff)
		if err != nil {
			return nil, err
		}
		if r.cfg.Workers == 1 {
			return func() float64 { return cl.Forces(sys.P, sys.Pos, sys.Acc) }, nil
		}
		r.engine = parallel.New[float64](r.cfg.Workers)
		return func() float64 { return r.engine.ForcesCell(cl, sys.P, sys.Pos, sys.Acc) }, nil
	default:
		return nil, fmt.Errorf("mdrun: unknown force method %d", int(r.cfg.Method))
	}
}

// Close releases the parallel worker pool, if any. The Runner must not
// be used after Close. Close is idempotent and safe on serial runners.
func (r *Runner) Close() {
	if r.engine != nil {
		r.engine.Close()
	}
}

// System exposes the live state (read-mostly; used by tests and tools).
func (r *Runner) System() *md.System[float64] { return r.sys }

// Run advances the simulation the given number of steps and returns
// the summary.
func (r *Runner) Run(steps int) (summary *Summary, err error) {
	if steps < 0 {
		return nil, fmt.Errorf("mdrun: steps must be non-negative, got %d", steps)
	}
	defer func() {
		if rec := recover(); rec != nil {
			if e, ok := rec.(error); ok {
				summary, err = nil, fmt.Errorf("mdrun: %w", e)
				return
			}
			panic(rec)
		}
	}()

	sys := r.sys
	sum := &Summary{Steps: steps, InitialEnergy: sys.TotalEnergy()}
	var tempSum float64
	tempSamples := 0
	for s := 1; s <= steps; s++ {
		sys.StepWith(r.forces)
		if r.therm != nil {
			r.therm.Apply(sys.Vel, sys.Temperature())
			sys.KE = md.KineticEnergy(sys.Vel)
		}
		if err := r.msd.Track(sys.Pos); err != nil {
			return nil, err
		}
		if s%r.cfg.SampleEvery == 0 {
			tempSum += sys.Temperature()
			tempSamples++
			if r.rdf != nil {
				r.rdf.Accumulate(sys.Pos)
			}
		}
		if r.traj != nil && s%r.cfg.TrajectoryEvery == 0 {
			comment := fmt.Sprintf("step %d PE %.6f KE %.6f", sys.Steps, sys.PE, sys.KE)
			if err := r.traj.WriteFrame(comment, sys.Pos); err != nil {
				return nil, err
			}
		}
	}
	if r.traj != nil {
		if err := r.traj.Flush(); err != nil {
			return nil, err
		}
		sum.FramesWritten = r.traj.Frames()
	}
	sum.FinalEnergy = sys.TotalEnergy()
	if tempSamples > 0 {
		sum.MeanTemperature = tempSum / float64(tempSamples)
	}
	sum.Pressure = md.Pressure(sys.P, sys.Pos, sys.Temperature())
	sum.MSD = r.msd.Value()
	if r.rdf != nil {
		sum.RDFCenters, sum.RDF = r.rdf.Result()
	}
	return sum, nil
}
