package mdrun

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/lattice"
)

// cancelOnWrite cancels a context the first time it is written to —
// a deterministic way to cancel a run at a known step boundary.
type cancelOnWrite struct {
	cancel context.CancelFunc
}

func (c *cancelOnWrite) Write(p []byte) (int, error) {
	c.cancel()
	return len(p), nil
}

func ctxTestConfig() Config {
	return Config{
		Atoms: 108, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: 11,
		Cutoff: 2.2, Dt: 0.004, Shifted: true,
		Method: Direct,
	}
}

// TestRunContextCancelStopsWithinOneStep pins the cancellation
// latency contract: a context cancelled during step 1's trajectory
// write stops the run at the very next step boundary — after exactly
// one completed step, not at run end.
func TestRunContextCancelStopsWithinOneStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	w := &cancelOnWrite{cancel: cancel}

	cfg := ctxTestConfig()
	cfg.Trajectory = w
	cfg.TrajectoryEvery = 1
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	sum, err := r.RunContext(ctx, 100)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if sum.Steps != 1 {
		t.Fatalf("completed %d steps, want exactly 1 (cancel caught at next boundary)", sum.Steps)
	}
}

// TestRunContextPreCancelled pins that an already-cancelled context
// never starts stepping.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, err := New(ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sum, err := r.RunContext(ctx, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if sum.Steps != 0 {
		t.Fatalf("completed %d steps, want 0", sum.Steps)
	}
}

// TestRunContextDeadlineParallel pins the deadline path through the
// parallel engine, and that cancellation plus Close leaves no pool
// goroutines behind.
func TestRunContextDeadlineParallel(t *testing.T) {
	base := runtime.NumGoroutine()

	cfg := ctxTestConfig()
	cfg.Method = ParallelDirect
	cfg.Workers = 3
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	sum, err := r.RunContext(ctx, 1_000_000)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want DeadlineExceeded", err)
	}
	if sum.Steps >= 1_000_000 {
		t.Fatal("deadline did not shorten the run")
	}
	r.Close()

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d running, started with %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRunBackgroundUnchanged pins that the ctx-free Run path is the
// background-context path (no behavioural change for existing users).
func TestRunBackgroundUnchanged(t *testing.T) {
	r1, err := New(ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r1.Close()
	r2, err := New(ctxTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	s1, err := r1.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := r2.RunContext(context.Background(), 15)
	if err != nil {
		t.Fatal(err)
	}
	if s1.FinalEnergy != s2.FinalEnergy || s1.Steps != s2.Steps {
		t.Fatalf("Run and RunContext diverge: %+v vs %+v", s1, s2)
	}
}
