package mdrun

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
)

// TestWorkerPanicSurfacesAsError pins the tentpole isolation contract:
// a panic inside a parallel force worker must come back from Run as an
// error with a partial Summary — the process must not die, and the
// runner must still Close cleanly afterwards.
func TestWorkerPanicSurfacesAsError(t *testing.T) {
	cfg := parallelBase(ParallelDirect, 3)
	cfg.Faults = faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic,
		Trigger: faults.Trigger{AtCall: 7},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sum, err := r.Run(50)
	if err == nil {
		t.Fatal("worker panic did not surface as an error")
	}
	if !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("error does not mention the panic: %v", err)
	}
	if sum == nil {
		t.Fatal("failed Run returned nil Summary; want partial summary")
	}
	if sum.Steps < 0 || sum.Steps >= 50 {
		t.Fatalf("partial Steps = %d, want 0 <= steps < 50", sum.Steps)
	}
	if sum.Steps != r.System().Steps {
		t.Fatalf("Summary.Steps %d != System.Steps %d", sum.Steps, r.System().Steps)
	}
}

// TestWorkerErrorFaultSurfacesAsError covers the non-panic worker
// failure kind through the same path.
func TestWorkerErrorFaultSurfacesAsError(t *testing.T) {
	cfg := parallelBase(ParallelPairlist, 4)
	cfg.Faults = faults.NewRegistry(2).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Error,
		Trigger: faults.Trigger{AtCall: 3},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Run(20)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want wrapped faults.ErrInjected, got %v", err)
	}
}

// TestTrajectoryWriteFailurePartialSummary replaces the old panic(err)
// trajectory path: an injected write failure must return an error and
// a Summary counting the steps that completed before it.
func TestTrajectoryWriteFailurePartialSummary(t *testing.T) {
	var buf bytes.Buffer
	cfg := baseConfig()
	cfg.Atoms = 108
	cfg.Trajectory = &buf
	cfg.TrajectoryEvery = 5
	cfg.Faults = faults.NewRegistry(3).Arm(faults.Fault{
		Site: faults.SiteTrajectory, Kind: faults.Error,
		Trigger: faults.Trigger{FromCall: 1},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sum, err := r.Run(20)
	if !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("want wrapped faults.ErrInjected, got %v", err)
	}
	if sum == nil {
		t.Fatal("failed Run returned nil Summary")
	}
	// A 108-atom frame overflows the XYZ writer's buffer, so the first
	// frame attempt (step 5) hits the failing writer.
	if sum.Steps != 5 {
		t.Fatalf("partial Steps = %d, want 5 (failure at first frame)", sum.Steps)
	}
	if math.IsNaN(sum.FinalEnergy) {
		t.Fatal("partial summary has NaN energy on an I/O-only failure")
	}
}

// TestForcesCorruptionIsSilentWithoutGuard: a SiteForces NaN fault
// corrupts the accelerations but is not an execution error — detecting
// it is the guard watchdog's job. Run must complete and the poison must
// be visible in the final energy.
func TestForcesCorruptionIsSilentWithoutGuard(t *testing.T) {
	cfg := baseConfig()
	cfg.Atoms = 108
	cfg.Faults = faults.NewRegistry(4).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{AtCall: 3},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	sum, err := r.Run(10)
	if err != nil {
		t.Fatalf("value corruption must not be an execution error: %v", err)
	}
	if !math.IsNaN(sum.FinalEnergy) {
		t.Fatal("injected NaN never propagated to the final energy")
	}
}

// TestCloseAfterRunError: the worker pool must drain and close cleanly
// even when the last force evaluation failed mid-flight.
func TestCloseAfterRunError(t *testing.T) {
	cfg := parallelBase(ParallelDirect, 4)
	cfg.Faults = faults.NewRegistry(5).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic,
		Trigger: faults.Trigger{AtCall: 2},
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(10); err == nil {
		t.Fatal("expected injected failure")
	}
	r.Close()
	r.Close() // and still idempotent afterwards
}

// TestCloseConcurrent: Close must be safe from several goroutines at
// once (the supervisor and a signal handler may race to clean up).
func TestCloseConcurrent(t *testing.T) {
	r, err := New(parallelBase(ParallelDirect, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(2); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.Close()
		}()
	}
	wg.Wait()
}

// TestNewFromSystemResumeBitExact: adopting a mid-run system via
// NewFromSystem and continuing with the same method must reproduce an
// uninterrupted run bit for bit — the handover the guard supervisor
// depends on for clean restarts.
func TestNewFromSystemResumeBitExact(t *testing.T) {
	cfg := baseConfig()
	cfg.Atoms = 108

	straight, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer straight.Close()
	if _, err := straight.Run(40); err != nil {
		t.Fatal(err)
	}

	first, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	if _, err := first.Run(25); err != nil {
		t.Fatal(err)
	}
	resumed, err := NewFromSystem(first.System().Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if _, err := resumed.Run(15); err != nil {
		t.Fatal(err)
	}

	a, b := straight.System(), resumed.System()
	if a.Steps != b.Steps {
		t.Fatalf("steps %d vs %d", a.Steps, b.Steps)
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos.At(i) != b.Pos.At(i) || a.Vel.At(i) != b.Vel.At(i) || a.Acc.At(i) != b.Acc.At(i) {
			t.Fatalf("resume diverged at atom %d", i)
		}
	}
	if a.PE != b.PE || a.KE != b.KE {
		t.Fatal("resume energies diverged")
	}
}

// TestNewFromSystemDtOverride: the config's Dt must override the
// adopted system's (the supervisor's halve-dt escalation rung), while
// a zero Dt keeps the system's own.
func TestNewFromSystemDtOverride(t *testing.T) {
	cfg := baseConfig()
	cfg.Atoms = 108
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	halved := cfg
	halved.Dt = cfg.Dt / 2
	r2, err := NewFromSystem(r.System().Clone(), halved)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := r2.System().P.Dt; got != cfg.Dt/2 {
		t.Fatalf("Dt override: got %v, want %v", got, cfg.Dt/2)
	}

	keep := cfg
	keep.Dt = 0
	r3, err := NewFromSystem(r.System().Clone(), keep)
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if got := r3.System().P.Dt; got != cfg.Dt {
		t.Fatalf("zero Dt must keep the system's: got %v, want %v", got, cfg.Dt)
	}
}

// TestNewFromSystemRejectsEmpty guards the nil/empty system paths.
func TestNewFromSystemRejectsEmpty(t *testing.T) {
	if _, err := NewFromSystem(nil, baseConfig()); err == nil {
		t.Fatal("nil system accepted")
	}
	r, err := New(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	empty := r.System().Clone()
	empty.Pos.Resize(0)
	if _, err := NewFromSystem(empty, baseConfig()); err == nil {
		t.Fatal("empty system accepted")
	}
}
