package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// BenchRecord is one machine-readable benchmark result: a benchmark
// (sub)name plus its metrics. Marshalled as one JSON object per line so
// BENCH_*.json trajectory files can be diffed and appended across PRs.
type BenchRecord struct {
	Bench   string             `json:"bench"`
	Metrics map[string]float64 `json:"metrics"`
}

// BenchSink collects BenchRecords from benchmark runs and writes them
// as JSON Lines. It is safe for concurrent Record calls (parallel
// sub-benchmarks); records are kept in arrival order and metric keys
// are emitted sorted (encoding/json sorts map keys), so output is
// deterministic for a deterministic benchmark order.
type BenchSink struct {
	mu      sync.Mutex
	records []BenchRecord
}

// NewBenchSink returns an empty sink.
func NewBenchSink() *BenchSink { return &BenchSink{} }

// Record appends one result, replacing any earlier record with the
// same bench name (the testing package re-runs a benchmark while
// calibrating b.N; only the final, longest run should survive). The
// metrics map is copied.
func (s *BenchSink) Record(bench string, metrics map[string]float64) {
	m := make(map[string]float64, len(metrics))
	for k, v := range metrics {
		m[k] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.records {
		if s.records[i].Bench == bench {
			s.records[i].Metrics = m
			return
		}
	}
	s.records = append(s.records, BenchRecord{Bench: bench, Metrics: m})
}

// Len returns the number of records collected.
func (s *BenchSink) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.records)
}

// WriteJSON emits the collected records, one JSON object per line.
func (s *BenchSink) WriteJSON(w io.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc := json.NewEncoder(w)
	for _, r := range s.records {
		if err := enc.Encode(r); err != nil {
			return fmt.Errorf("report: encoding bench record %q: %w", r.Bench, err)
		}
	}
	return nil
}

// ReadBenchRecords parses JSON-Lines output produced by WriteJSON —
// the consuming half used by trajectory comparisons of BENCH_*.json
// files across PRs.
func ReadBenchRecords(r io.Reader) ([]BenchRecord, error) {
	dec := json.NewDecoder(r)
	var out []BenchRecord
	for {
		var rec BenchRecord
		if err := dec.Decode(&rec); err == io.EOF {
			return out, nil
		} else if err != nil {
			return nil, fmt.Errorf("report: decoding bench record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}
