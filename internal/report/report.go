// Package report renders the reproduction's tables and figures as
// aligned ASCII tables, CSV, and text bar charts — the output formats
// of cmd/paperbench and the material recorded in EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// Table is a titled grid of string cells with a header row.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row. Rows shorter than the header are padded;
// longer rows are an error surfaced by Render.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.rows {
		if len(row) > len(t.Headers) {
			return fmt.Errorf("report: row has %d cells, table has %d columns", len(row), len(t.Headers))
		}
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > widths[i] {
				widths[i] = n
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) error {
		var b strings.Builder
		for i, width := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width-utf8.RuneCountInString(c)))
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := line(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i, width := range widths {
		sep[i] = strings.Repeat("-", width)
	}
	if err := line(sep); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := line(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (simple quoting: cells containing
// commas or quotes are quoted with doubled quotes).
func (t *Table) RenderCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			parts[i] = c
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table
// (used to regenerate EXPERIMENTS.md mechanically).
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	row := func(cells []string) error {
		parts := make([]string, len(t.Headers))
		for i := range parts {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := row(t.Headers); err != nil {
		return err
	}
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	if err := row(sep); err != nil {
		return err
	}
	for _, r := range t.rows {
		if len(r) > len(t.Headers) {
			return fmt.Errorf("report: row has %d cells, table has %d columns", len(r), len(t.Headers))
		}
		if err := row(r); err != nil {
			return err
		}
	}
	return nil
}

// BarChart renders labeled horizontal bars scaled to the largest value,
// the text analogue of the paper's runtime bar figures.
func BarChart(w io.Writer, title string, labels []string, values []float64, width int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("report: %d labels for %d values", len(labels), len(values))
	}
	if width <= 0 {
		width = 50
	}
	var maxV float64
	maxL := 0
	for i, v := range values {
		if v < 0 {
			return fmt.Errorf("report: negative bar value %v", v)
		}
		if v > maxV {
			maxV = v
		}
		if n := utf8.RuneCountInString(labels[i]); n > maxL {
			maxL = n
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for i, v := range values {
		bar := 0
		if maxV > 0 {
			bar = int(v / maxV * float64(width))
		}
		if v > 0 && bar == 0 {
			bar = 1
		}
		if _, err := fmt.Fprintf(w, "%-*s |%s %.6g\n", maxL, labels[i], strings.Repeat("#", bar), v); err != nil {
			return err
		}
	}
	return nil
}

// Seconds formats a runtime with sensible units for tables.
func Seconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.3g µs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.3g ms", s*1e3)
	default:
		return fmt.Sprintf("%.4g s", s)
	}
}
