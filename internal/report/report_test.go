package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Title", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "22222")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Title", "name", "value", "alpha", "22222", "-----"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Columns aligned: every line of the body starts at the same column
	// for field two.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableRowTooWide(t *testing.T) {
	tb := NewTable("", "one")
	tb.AddRow("a", "b")
	if err := tb.Render(&strings.Builder{}); err == nil {
		t.Fatal("over-wide row accepted")
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("x")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 1 {
		t.Fatal("Rows")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := NewTable("", "name", "note")
	tb.AddRow("a", "plain")
	tb.AddRow("b", "has,comma")
	tb.AddRow("c", `has"quote`)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "name,note") {
		t.Fatalf("missing header: %s", out)
	}
	if !strings.Contains(out, `"has,comma"`) {
		t.Fatalf("comma cell not quoted: %s", out)
	}
	if !strings.Contains(out, `"has""quote"`) {
		t.Fatalf("quote cell not escaped: %s", out)
	}
}

func TestBarChart(t *testing.T) {
	var sb strings.Builder
	err := BarChart(&sb, "Runtimes", []string{"a", "bb"}, []float64{2, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Runtimes") {
		t.Fatal("missing title")
	}
	// a's bar should be about twice bb's.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	countHash := func(s string) int { return strings.Count(s, "#") }
	if countHash(lines[1]) != 10 || countHash(lines[2]) != 5 {
		t.Fatalf("bar lengths wrong:\n%s", out)
	}
}

func TestBarChartErrors(t *testing.T) {
	if err := BarChart(&strings.Builder{}, "", []string{"a"}, []float64{1, 2}, 10); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if err := BarChart(&strings.Builder{}, "", []string{"a"}, []float64{-1}, 10); err == nil {
		t.Fatal("negative value accepted")
	}
}

func TestBarChartTinyNonZeroVisible(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []string{"big", "tiny"}, []float64{1000, 0.001}, 20); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if !strings.Contains(lines[1], "#") {
		t.Fatal("tiny bar invisible")
	}
}

func TestBarChartZeroValues(t *testing.T) {
	var sb strings.Builder
	if err := BarChart(&sb, "", []string{"z"}, []float64{0}, 20); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.Split(sb.String(), "\n")[0], "#") {
		t.Fatal("zero value drew a bar")
	}
}

func TestSeconds(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0"},
		{1.5e-6, "1.5 µs"},
		{2.5e-3, "2.5 ms"},
		{3.25, "3.25 s"},
	}
	for _, c := range cases {
		if got := Seconds(c.in); got != c.want {
			t.Errorf("Seconds(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := NewTable("Title", "a", "b")
	tb.AddRow("x", "1")
	tb.AddRow("has|pipe")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**Title**", "| a | b |", "| --- | --- |", "| x | 1 |", `has\|pipe`} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderMarkdownOverWideRow(t *testing.T) {
	tb := NewTable("", "one")
	tb.AddRow("a", "b")
	if err := tb.RenderMarkdown(&strings.Builder{}); err == nil {
		t.Fatal("over-wide row accepted")
	}
}
