package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// SeriesChart renders one or more (x, y) series as a text scatter
// chart, optionally with a logarithmic y axis — the rendering used for
// the paper's runtime-vs-atoms figures, where the curves span three
// orders of magnitude.
type SeriesChart struct {
	Title  string
	YLabel string
	LogY   bool
	Width  int // plot columns (default 60)
	Height int // plot rows (default 16)

	names  []string
	series [][]Point
}

// Point is one sample.
type Point struct{ X, Y float64 }

// NewSeriesChart creates an empty chart.
func NewSeriesChart(title string) *SeriesChart {
	return &SeriesChart{Title: title, Width: 60, Height: 16}
}

// Add appends one named series. Series are drawn with the markers
// '*', 'o', '+', 'x', ... in order.
func (c *SeriesChart) Add(name string, pts []Point) {
	c.names = append(c.names, name)
	c.series = append(c.series, append([]Point(nil), pts...))
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// Render draws the chart.
func (c *SeriesChart) Render(w io.Writer) error {
	if len(c.series) == 0 {
		return fmt.Errorf("report: chart has no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 60
	}
	if height <= 0 {
		height = 16
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		for _, p := range s {
			y := p.Y
			if c.LogY {
				if y <= 0 {
					return fmt.Errorf("report: log-scale chart needs positive y, got %v", y)
				}
				y = math.Log10(y)
			}
			minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if math.IsInf(minX, 1) {
		return fmt.Errorf("report: chart series are empty")
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.series {
		m := markers[si%len(markers)]
		for _, p := range s {
			y := p.Y
			if c.LogY {
				y = math.Log10(y)
			}
			col := int((p.X - minX) / (maxX - minX) * float64(width-1))
			row := height - 1 - int((y-minY)/(maxY-minY)*float64(height-1))
			grid[row][col] = m
		}
	}

	if c.Title != "" {
		if _, err := fmt.Fprintln(w, c.Title); err != nil {
			return err
		}
	}
	yfmt := func(v float64) string {
		if c.LogY {
			return fmt.Sprintf("%-9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%-9.3g", v)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = yfmt(maxY)
		case height - 1:
			label = yfmt(minY)
		}
		if _, err := fmt.Fprintf(w, "%9s |%s\n", strings.TrimSpace(label), string(line)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%9s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%9s  %-*.4g%*.4g\n", "", width/2, minX, width-width/2, maxX); err != nil {
		return err
	}
	var legend []string
	for i, name := range c.names {
		legend = append(legend, fmt.Sprintf("%c = %s", markers[i%len(markers)], name))
	}
	unit := ""
	switch {
	case c.YLabel != "" && c.LogY:
		unit = "   y: " + c.YLabel + " (log scale)"
	case c.YLabel != "":
		unit = "   y: " + c.YLabel
	case c.LogY:
		unit = "   y: log scale"
	}
	_, err := fmt.Fprintf(w, "%9s  %s%s\n", "", strings.Join(legend, "   "), unit)
	return err
}
