package report

import (
	"strings"
	"testing"
)

func TestSeriesChartBasics(t *testing.T) {
	c := NewSeriesChart("Runtime vs atoms")
	c.YLabel = "seconds"
	c.Add("cpu", []Point{{X: 1, Y: 1}, {X: 2, Y: 4}, {X: 3, Y: 9}})
	c.Add("gpu", []Point{{X: 1, Y: 2}, {X: 2, Y: 3}, {X: 3, Y: 4}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Runtime vs atoms", "* = cpu", "o = gpu", "y: seconds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("markers missing:\n%s", out)
	}
}

func TestSeriesChartLogScale(t *testing.T) {
	c := NewSeriesChart("log")
	c.LogY = true
	c.Add("s", []Point{{X: 1, Y: 0.001}, {X: 2, Y: 1}, {X: 3, Y: 1000}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "log scale") {
		t.Fatal("log scale not labeled")
	}
	// The top label should be ~1000, the bottom ~0.001.
	if !strings.Contains(sb.String(), "1e+03") && !strings.Contains(sb.String(), "1000") {
		t.Fatalf("max label missing:\n%s", sb.String())
	}
}

func TestSeriesChartLogRejectsNonPositive(t *testing.T) {
	c := NewSeriesChart("bad")
	c.LogY = true
	c.Add("s", []Point{{X: 1, Y: 0}})
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Fatal("zero y accepted on log scale")
	}
}

func TestSeriesChartEmpty(t *testing.T) {
	if err := NewSeriesChart("e").Render(&strings.Builder{}); err == nil {
		t.Fatal("empty chart rendered")
	}
	c := NewSeriesChart("e2")
	c.Add("s", nil)
	if err := c.Render(&strings.Builder{}); err == nil {
		t.Fatal("chart with empty series rendered")
	}
}

func TestSeriesChartSinglePoint(t *testing.T) {
	c := NewSeriesChart("one")
	c.Add("s", []Point{{X: 5, Y: 5}})
	var sb strings.Builder
	if err := c.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "*") {
		t.Fatal("single point not drawn")
	}
}

func TestSeriesChartMarkersWithinGrid(t *testing.T) {
	// Extreme values must not index outside the grid (no panic).
	c := NewSeriesChart("extremes")
	c.Width = 10
	c.Height = 5
	c.Add("s", []Point{{X: -1e9, Y: -1e9}, {X: 1e9, Y: 1e9}})
	if err := c.Render(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}
