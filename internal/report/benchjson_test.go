package report

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestBenchSinkRoundTrip(t *testing.T) {
	s := NewBenchSink()
	s.Record("ParallelForces/n2048_w4", map[string]float64{
		"ns_per_op": 1.5e6, "speedup_vs_serial": 3.2,
	})
	s.Record("ParallelForces/n2048_serial", map[string]float64{"ns_per_op": 4.8e6})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "\n") != 2 {
		t.Fatalf("want 2 JSON lines, got %q", out)
	}
	recs, err := ReadBenchRecords(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("read %d records, want 2", len(recs))
	}
	if recs[0].Bench != "ParallelForces/n2048_w4" || recs[0].Metrics["speedup_vs_serial"] != 3.2 {
		t.Fatalf("first record mangled: %+v", recs[0])
	}
	if recs[1].Metrics["ns_per_op"] != 4.8e6 {
		t.Fatalf("second record mangled: %+v", recs[1])
	}
}

func TestBenchSinkCopiesMetrics(t *testing.T) {
	s := NewBenchSink()
	m := map[string]float64{"x": 1}
	s.Record("b", m)
	m["x"] = 99
	var b strings.Builder
	if err := s.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"x":1`) {
		t.Fatalf("sink aliased the caller's map: %s", b.String())
	}
}

func TestBenchSinkConcurrentRecord(t *testing.T) {
	s := NewBenchSink()
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.Record(fmt.Sprintf("b%d", i), map[string]float64{"v": 1})
		}()
	}
	wg.Wait()
	if s.Len() != 32 {
		t.Fatalf("Len = %d, want 32", s.Len())
	}
}

func TestBenchSinkRerecordReplaces(t *testing.T) {
	// Benchmark calibration runs the same sub-benchmark several times;
	// only the final run's metrics must survive, in first-seen order.
	s := NewBenchSink()
	s.Record("a", map[string]float64{"v": 1})
	s.Record("b", map[string]float64{"v": 2})
	s.Record("a", map[string]float64{"v": 3})
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	var buf strings.Builder
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadBenchRecords(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if recs[0].Bench != "a" || recs[0].Metrics["v"] != 3 || recs[1].Bench != "b" {
		t.Fatalf("re-record did not replace in place: %+v", recs)
	}
}

func TestReadBenchRecordsRejectsGarbage(t *testing.T) {
	if _, err := ReadBenchRecords(strings.NewReader(`{"bench": "a"}` + "\nnot-json\n")); err == nil {
		t.Fatal("garbage accepted")
	}
	recs, err := ReadBenchRecords(strings.NewReader(""))
	if err != nil || len(recs) != 0 {
		t.Fatalf("empty input: %v, %d records", err, len(recs))
	}
}
