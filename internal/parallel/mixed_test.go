package parallel

import (
	"context"
	"math"
	"testing"

	"repro/internal/lattice"
	"repro/internal/md"
)

// mixedFixture builds a float32 mirror plus a thermalized float64
// state shared by the mixed-precision kernel tests.
func mixedFixture(t testing.TB, n int) (*md.Mirror32, md.Coords[float64], md.Params[float64]) {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: 2.0, Dt: 0.004, Shifted: true}
	sys, err := md.NewSystem(st, p)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(40)
	mx, err := md.NewMirror32(p)
	if err != nil {
		t.Fatal(err)
	}
	mx.Refresh(sys.Pos)
	return mx, sys.Pos, p
}

// TestForcesPairlistF32WorkersBitwise is the tentpole determinism
// property: the gather kernel's output bytes — every float64 force
// component and the tree-reduced energy — must be identical for every
// worker count. Atom-range sharding over list-fixed full rows plus
// the per-atom pairwise energy tree is what makes this hold; a
// regression to per-worker reduction order breaks it immediately.
func TestForcesPairlistF32WorkersBitwise(t *testing.T) {
	mx, _, _ := mixedFixture(t, 500)
	n := mx.Pos.Len()

	var refAcc md.Coords[float64]
	var refPE float64
	for _, w := range workerCounts {
		e := New[float64](w)
		nl, err := md.NewNeighborList[float32](0.4)
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		acc := md.MakeCoords[float64](n)
		pe, err := e.TryForcesPairlistF32(nl, mx.P, mx.Pos, acc)
		e.Close()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if refAcc.Len() == 0 {
			refAcc, refPE = acc, pe
			continue
		}
		if math.Float64bits(pe) != math.Float64bits(refPE) {
			t.Fatalf("workers=%d: PE bits %x differ from workers=%d bits %x",
				w, math.Float64bits(pe), workerCounts[0], math.Float64bits(refPE))
		}
		for i := 0; i < acc.Len(); i++ {
			if acc.At(i) != refAcc.At(i) {
				t.Fatalf("workers=%d: force bytes differ at atom %d: %+v vs %+v",
					w, i, acc.At(i), refAcc.At(i))
			}
		}
	}
}

// TestForcesPairlistF32MatchesSerialMixed: the gather evaluates every
// pair from both sides with terms that are exact negations (MinImage
// is odd and float32 negation is exact), so it must agree with the
// serial scatter kernel to float64 summation roundoff.
func TestForcesPairlistF32MatchesSerialMixed(t *testing.T) {
	mx, _, _ := mixedFixture(t, 500)
	n := mx.Pos.Len()

	nlSerial, err := md.NewNeighborList[float32](0.4)
	if err != nil {
		t.Fatal(err)
	}
	serialAcc := md.MakeCoords[float64](n)
	serialPE := md.ForcesPairlistMixed(nlSerial, mx.P, mx.Pos, serialAcc)

	e := New[float64](4)
	defer e.Close()
	nl, err := md.NewNeighborList[float32](0.4)
	if err != nil {
		t.Fatal(err)
	}
	acc := md.MakeCoords[float64](n)
	pe, err := e.TryForcesPairlistF32(nl, mx.P, mx.Pos, acc)
	if err != nil {
		t.Fatal(err)
	}

	if rel := math.Abs(pe-serialPE) / math.Abs(serialPE); rel > 1e-12 {
		t.Fatalf("gather PE %v vs serial scatter PE %v (rel %v)", pe, serialPE, rel)
	}
	for i := 0; i < acc.Len(); i++ {
		if d := acc.At(i).Sub(serialAcc.At(i)).Norm(); d > 1e-10 {
			t.Fatalf("atom %d: gather force differs from serial by %v", i, d)
		}
	}
}

// TestBuildPairlistF32MatchesSerialBuild: the sharded float32 build
// must produce byte-identical rows to the serial float32 build, on
// both sides of the serial-rerouting threshold (every test-sized N is
// below serialBuildAtoms, so multi-worker engines take the inline
// serial path; the property held for the sharded path before the
// rerouting and is pinned for float64 in the existing build tests).
func TestBuildPairlistF32MatchesSerialBuild(t *testing.T) {
	mx, _, _ := mixedFixture(t, 500)

	want, err := md.NewNeighborList[float32](0.4)
	if err != nil {
		t.Fatal(err)
	}
	want.Build(mx.P, mx.Pos)

	for _, w := range workerCounts {
		e := New[float64](w)
		nl, err := md.NewNeighborList[float32](0.4)
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		if err := e.BuildPairlistF32(context.Background(), nl, mx.P, mx.Pos); err != nil {
			e.Close()
			t.Fatalf("workers=%d: %v", w, err)
		}
		e.Close()
		for i := 0; i < mx.Pos.Len(); i++ {
			a, b := want.Neighbors(i), nl.Neighbors(i)
			if len(a) != len(b) {
				t.Fatalf("workers=%d: row %d has %d neighbors, want %d", w, i, len(b), len(a))
			}
			for k := range a {
				if a[k] != b[k] {
					t.Fatalf("workers=%d: row %d entry %d = %d, want %d", w, i, k, b[k], a[k])
				}
			}
		}
	}
}

// TestBuildPairlistF32Cancellation: a pre-cancelled context must stop
// the build and surface the context error, including on the inline
// serial-rerouted path.
func TestBuildPairlistF32Cancellation(t *testing.T) {
	mx, _, _ := mixedFixture(t, 500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, w := range []int{1, 4} {
		e := New[float64](w)
		nl, err := md.NewNeighborList[float32](0.4)
		if err != nil {
			e.Close()
			t.Fatal(err)
		}
		err = e.BuildPairlistF32(ctx, nl, mx.P, mx.Pos)
		e.Close()
		if err == nil {
			t.Fatalf("workers=%d: cancelled build reported success", w)
		}
	}
}

// TestForcesPairlistF32MatchesFloat64: the parallel mixed kernel must
// stay inside the same 1e-5 oracle bound as the serial one — the
// sharding may not add error.
func TestForcesPairlistF32MatchesFloat64(t *testing.T) {
	mx, pos, p := mixedFixture(t, 500)
	n := pos.Len()

	nl64, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	oracle := md.MakeCoords[float64](n)
	pe64 := nl64.Forces(p, pos, oracle)

	e := New[float64](4)
	defer e.Close()
	nl, err := md.NewNeighborList[float32](0.4)
	if err != nil {
		t.Fatal(err)
	}
	acc := md.MakeCoords[float64](n)
	pe32, err := e.TryForcesPairlistF32(nl, mx.P, mx.Pos, acc)
	if err != nil {
		t.Fatal(err)
	}

	var scale float64
	for i := 0; i < oracle.Len(); i++ {
		a := oracle.At(i)
		scale = math.Max(scale, math.Max(math.Abs(a.X), math.Max(math.Abs(a.Y), math.Abs(a.Z))))
	}
	for i := 0; i < oracle.Len(); i++ {
		ai, oi := acc.At(i), oracle.At(i)
		for _, c := range [][2]float64{
			{ai.X, oi.X}, {ai.Y, oi.Y}, {ai.Z, oi.Z},
		} {
			if rel := math.Abs(c[0]-c[1]) / math.Max(math.Abs(c[1]), scale); rel > 1e-5 {
				t.Fatalf("atom %d: component error %v > 1e-5", i, rel)
			}
		}
	}
	if rel := math.Abs(pe32-pe64) / math.Abs(pe64); rel > 1e-5 {
		t.Fatalf("PE relative error %v > 1e-5", rel)
	}
}
