// Package parallel is the multicore host force engine: the paper's
// kernel, sharded across OS threads the same way it is sharded across
// Cell SPEs, GPU fragment processors, and MTA-2 streams in the device
// models. The decisive design choice is identical to the one the paper
// faces on every accelerator: partition the atoms into independent
// *output* shards, let each worker gather over whatever inputs it
// needs, and reduce privately-accumulated forces afterwards — never
// scatter Newton's-third-law updates into another shard's atoms.
//
// Three kernels are provided, matching the three serial host paths in
// internal/md:
//
//   - ForcesDirect: the paper's O(N²) kernel over the full-loop
//     (gather-only) layout of md.ComputeForcesFull, sharded by atom
//     range. Each atom's acceleration is written by exactly one worker,
//     so no synchronization is needed beyond the join.
//   - ForcesCell: the linked-cell O(N) method, sharded by cell range.
//     Workers gather over the full 27-cell shell (not the serial
//     half-shell), again writing only their own cells' atoms.
//   - ForcesPairlist: the Verlet neighbor list, sharded by pair chunk.
//     The half-triangle pair layout forces scatter to both atoms of a
//     pair, so each worker scatters into a private acceleration buffer
//     and the buffers are combined by a parallel tree reduction.
//
// All three match their serial counterparts to rounding (the direct
// kernel with one worker is bitwise identical to ComputeForcesFull);
// the package tests pin this, and the whole package is race-detector
// clean.
package parallel

import (
	"runtime"
	"sync"

	"repro/internal/md"
	"repro/internal/sim"
	"repro/internal/vec"
)

// MaxWorkers caps the pool size: beyond this, per-worker buffers cost
// more than any plausible host parallelism returns.
const MaxWorkers = 256

// ClampWorkers folds a requested worker count into the sane range:
// 0 means "one per CPU", negative counts clamp to 1, and huge counts
// clamp to MaxWorkers.
func ClampWorkers(w int) int {
	switch {
	case w == 0:
		w = runtime.NumCPU()
	case w < 0:
		w = 1
	}
	if w > MaxWorkers {
		w = MaxWorkers
	}
	return w
}

// Engine is a persistent pool of force workers plus the per-worker
// state the kernels shard over. An Engine is reusable across steps (the
// pool and buffers persist) but a single Engine must not evaluate
// forces from multiple goroutines at once. Close releases the workers;
// a closed Engine must not be used again.
type Engine[T vec.Float] struct {
	workers int
	tasks   chan func()
	once    sync.Once

	shards []shard[T]
}

// shard is one worker's private state.
type shard[T vec.Float] struct {
	pe      T           // partial potential energy
	pairs   int64       // partial interacting-pair count
	ledger  sim.Ledger  // partial op accounting (instrumented runs)
	acc     []vec.V3[T] // private accumulator (pairlist kernel)
	cellbuf []int       // neighbor-cell scratch (cell kernel)
}

// New creates an engine with ClampWorkers(workers) workers. With one
// worker no goroutines are spawned and every kernel runs inline on the
// caller.
func New[T vec.Float](workers int) *Engine[T] {
	w := ClampWorkers(workers)
	e := &Engine[T]{workers: w, shards: make([]shard[T], w)}
	if w > 1 {
		e.tasks = make(chan func())
		for i := 0; i < w; i++ {
			go func() {
				for f := range e.tasks {
					f()
				}
			}()
		}
	}
	return e
}

// Workers returns the pool size.
func (e *Engine[T]) Workers() int { return e.workers }

// Close stops the worker goroutines. It is idempotent.
func (e *Engine[T]) Close() {
	e.once.Do(func() {
		if e.tasks != nil {
			close(e.tasks)
		}
	})
}

// runN executes fn(0..n-1) across the pool and waits for all of them.
// n must be at most e.workers.
func (e *Engine[T]) runN(n int, fn func(w int)) {
	if e.workers == 1 || n == 1 {
		for w := 0; w < n; w++ {
			fn(w)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		e.tasks <- func() {
			defer wg.Done()
			fn(w)
		}
	}
	wg.Wait()
}

// run executes fn once per worker and waits.
func (e *Engine[T]) run(fn func(w int)) { e.runN(e.workers, fn) }

// shardRange splits n items into e.workers contiguous ranges and
// returns worker w's [lo, hi).
func (e *Engine[T]) shardRange(n, w int) (lo, hi int) {
	return w * n / e.workers, (w + 1) * n / e.workers
}

// reducePE sums the per-worker partial energies in worker order — a
// fixed association, so results are deterministic for a given worker
// count.
func (e *Engine[T]) reducePE() T {
	var pe T
	for w := range e.shards {
		pe += e.shards[w].pe
	}
	return pe
}

// ForcesDirect evaluates the paper's O(N²) kernel with atom-range
// sharding over the full-loop layout. acc is overwritten; the return
// value is the total potential energy. With one worker the result is
// bitwise identical to md.ComputeForcesFull.
func (e *Engine[T]) ForcesDirect(p md.Params[T], pos, acc []vec.V3[T]) T {
	pe, _ := e.ForcesDirectCount(p, pos, acc)
	return pe
}

// ForcesDirectCount is ForcesDirect plus the count of ordered
// interacting pairs, mirroring md.ComputeForcesFullCount.
func (e *Engine[T]) ForcesDirectCount(p md.Params[T], pos, acc []vec.V3[T]) (T, int64) {
	n := len(pos)
	rc2 := p.Cutoff * p.Cutoff
	e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		sh := &e.shards[w]
		var pe T
		var pairs int64
		for i := lo; i < hi; i++ {
			pi := pos[i]
			var ai vec.V3[T]
			var pei T
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				d := md.MinImage(pi.Sub(pos[j]), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				pairs++
				v, f := md.LJPair(p, r2)
				pei += v
				ai = ai.Add(d.Scale(f))
			}
			acc[i] = ai
			pe += pei
		}
		sh.pe = pe
		sh.pairs = pairs
	})
	var pairs int64
	for w := range e.shards {
		pairs += e.shards[w].pairs
	}
	return e.reducePE() / 2, pairs
}

// Coarse per-candidate and per-interaction operation mixes for the
// instrumented direct kernel: the same first-order accounting the
// device models apply to this loop (pos gather, minimum image, r²,
// cutoff test; then the LJ pair evaluation and force accumulation).
// The counts depend only on which (i, j) pairs are visited, so the
// merged ledger is identical for every worker count.
var (
	candidateOps = []struct {
		op sim.Op
		n  int64
	}{
		{sim.OpLoad, 3}, {sim.OpFAdd, 5}, {sim.OpFMul, 3}, {sim.OpCmp, 4},
	}
	interactionOps = []struct {
		op sim.Op
		n  int64
	}{
		{sim.OpFDiv, 1}, {sim.OpFMul, 9}, {sim.OpFAdd, 5}, {sim.OpStore, 3},
	}
)

// ForcesDirectInstrumented is ForcesDirect with per-worker op
// accounting: each worker tallies its shard's modeled operation mix
// into a private sim.Ledger and the ledgers are folded with
// sim.MergeAll. The physics is identical to ForcesDirect; the ledger
// feeds device-model-style cycle accounting for the host path.
func (e *Engine[T]) ForcesDirectInstrumented(p md.Params[T], pos, acc []vec.V3[T]) (T, sim.Ledger) {
	n := len(pos)
	rc2 := p.Cutoff * p.Cutoff
	e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		sh := &e.shards[w]
		sh.ledger.Reset()
		var pe T
		var candidates, interactions int64
		for i := lo; i < hi; i++ {
			pi := pos[i]
			var ai vec.V3[T]
			var pei T
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				candidates++
				d := md.MinImage(pi.Sub(pos[j]), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				interactions++
				v, f := md.LJPair(p, r2)
				pei += v
				ai = ai.Add(d.Scale(f))
			}
			acc[i] = ai
			pe += pei
		}
		sh.pe = pe
		for _, c := range candidateOps {
			sh.ledger.Add(c.op, c.n*candidates)
		}
		for _, c := range interactionOps {
			sh.ledger.Add(c.op, c.n*interactions)
		}
	})
	ledgers := make([]sim.Ledger, len(e.shards))
	for w := range e.shards {
		ledgers[w] = e.shards[w].ledger
	}
	return e.reducePE() / 2, sim.MergeAll(ledgers)
}

// ForcesCell evaluates the linked-cell method with cell-range sharding:
// the grid is rebuilt from the positions, then each worker computes the
// forces on the atoms of its cell range by gathering over the full
// 27-cell shell. Every atom belongs to exactly one cell, so acc is
// written race-free; each pair is visited from both sides, so the
// summed energy is halved. acc is overwritten; the return value is the
// potential energy, matching cl.Forces to rounding.
func (e *Engine[T]) ForcesCell(cl *md.CellList[T], p md.Params[T], pos, acc []vec.V3[T]) T {
	cl.Build(pos)
	ncells := cl.NumCells()
	rc2 := p.Cutoff * p.Cutoff
	e.run(func(w int) {
		lo, hi := e.shardRange(ncells, w)
		sh := &e.shards[w]
		if cap(sh.cellbuf) < 27 {
			sh.cellbuf = make([]int, 27)
		}
		var pe T
		for c := lo; c < hi; c++ {
			if cl.Head(c) < 0 {
				continue
			}
			cells := cl.NeighborCells(c, sh.cellbuf)
			for i := cl.Head(c); i >= 0; i = cl.Next(i) {
				pi := pos[i]
				var ai vec.V3[T]
				var pei T
				for _, nc := range cells {
					for j := cl.Head(nc); j >= 0; j = cl.Next(j) {
						if j == i {
							continue
						}
						d := md.MinImage(pi.Sub(pos[j]), p.Box)
						r2 := d.Norm2()
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						v, f := md.LJPair(p, r2)
						pei += v
						ai = ai.Add(d.Scale(f))
					}
				}
				acc[i] = ai
				pe += pei
			}
		}
		sh.pe = pe
	})
	return e.reducePE() / 2
}

// ForcesPairlist evaluates the Verlet-list kernel with pair-chunk
// sharding: the flattened (i, j) pair sequence is split into one
// near-equal chunk per worker (splitting inside an atom's neighbor list
// when needed), each worker scatters both sides of its pairs into a
// private acceleration buffer, and the buffers are combined by a
// parallel tree reduction before being written to acc. The list is
// rebuilt first if stale. acc is overwritten; the return value is the
// potential energy, matching nl.Forces to rounding.
func (e *Engine[T]) ForcesPairlist(nl *md.NeighborList[T], p md.Params[T], pos, acc []vec.V3[T]) T {
	if nl.Stale(p, pos) {
		nl.Build(p, pos)
	}
	n := len(pos)
	total := nl.PairCount()
	rc2 := p.Cutoff * p.Cutoff
	e.run(func(w int) {
		sh := &e.shards[w]
		if cap(sh.acc) < n {
			sh.acc = make([]vec.V3[T], n)
		}
		sh.acc = sh.acc[:n]
		for i := range sh.acc {
			sh.acc[i] = vec.V3[T]{}
		}
		// Worker w owns the flattened pair range [lo, hi).
		lo := w * total / e.workers
		hi := (w + 1) * total / e.workers
		var pe T
		seen := 0
		for i := 0; i < n && seen < hi; i++ {
			js := nl.Neighbors(i)
			if seen+len(js) <= lo {
				seen += len(js)
				continue
			}
			from, to := 0, len(js)
			if lo > seen {
				from = lo - seen
			}
			if hi < seen+len(js) {
				to = hi - seen
			}
			seen += len(js)
			pi := pos[i]
			for _, j := range js[from:to] {
				d := md.MinImage(pi.Sub(pos[j]), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				v, f := md.LJPair(p, r2)
				pe += v
				fd := d.Scale(f)
				sh.acc[i] = sh.acc[i].Add(fd)
				sh.acc[j] = sh.acc[j].Sub(fd)
			}
		}
		sh.pe = pe
	})

	// Tree-reduce the private buffers: log₂(workers) rounds of pairwise
	// adds, each round's adds running in parallel. The fixed tree makes
	// the floating-point summation order deterministic for a given
	// worker count.
	for stride := 1; stride < e.workers; stride *= 2 {
		nadds := 0
		for w := 0; w+stride < e.workers; w += 2 * stride {
			nadds++
		}
		stride := stride
		e.runN(nadds, func(k int) {
			w := k * 2 * stride
			dst, src := e.shards[w].acc, e.shards[w+stride].acc
			for i := range dst {
				dst[i] = dst[i].Add(src[i])
			}
		})
	}
	// Publish shard 0's totals into acc, sharded by atom range.
	e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		copy(acc[lo:hi], e.shards[0].acc[lo:hi])
	})
	return e.reducePE()
}
