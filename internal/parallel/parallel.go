// Package parallel is the multicore host force engine: the paper's
// kernel, sharded across OS threads the same way it is sharded across
// Cell SPEs, GPU fragment processors, and MTA-2 streams in the device
// models. The decisive design choice is identical to the one the paper
// faces on every accelerator: partition the atoms into independent
// *output* shards, let each worker gather over whatever inputs it
// needs, and reduce privately-accumulated forces afterwards — never
// scatter Newton's-third-law updates into another shard's atoms.
//
// Three kernels are provided, matching the three serial host paths in
// internal/md:
//
//   - ForcesDirect: the paper's O(N²) kernel over the full-loop
//     (gather-only) layout of md.ComputeForcesFull, sharded by atom
//     range. Each atom's acceleration is written by exactly one worker,
//     so no synchronization is needed beyond the join.
//   - ForcesCell: the linked-cell O(N) method, sharded by cell range.
//     Workers gather over the full 27-cell shell (not the serial
//     half-shell), again writing only their own cells' atoms.
//   - ForcesPairlist: the Verlet neighbor list, sharded by pair chunk.
//     The half-triangle pair layout forces scatter to both atoms of a
//     pair, so each worker scatters into a private acceleration buffer
//     and the buffers are combined by a parallel tree reduction.
//
// All three match their serial counterparts to rounding (the direct
// kernel with one worker is bitwise identical to ComputeForcesFull);
// the package tests pin this, and the whole package is race-detector
// clean.
//
// The neighbor-list *build* is parallel too: BuildPairlist shards the
// list rows across the pool after a single cell-binning pass. Rows are
// disjoint and row content is sharding-independent, so the built list
// — and every force evaluated over it — is byte-identical for any
// worker count, and a single engine may serve builds for many runners
// at once (the fleet scheduler's shared build pool).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/faults"
	"repro/internal/md"
	"repro/internal/sim"
	"repro/internal/vec"
)

// MaxWorkers caps the pool size: beyond this, per-worker buffers cost
// more than any plausible host parallelism returns.
const MaxWorkers = 256

// ClampWorkers folds a requested worker count into the sane range:
// 0 means "one per CPU", negative counts clamp to 1, and huge counts
// clamp to MaxWorkers.
func ClampWorkers(w int) int {
	switch {
	case w == 0:
		w = runtime.NumCPU()
	case w < 0:
		w = 1
	}
	if w > MaxWorkers {
		w = MaxWorkers
	}
	return w
}

// Engine is a persistent pool of force workers plus the per-worker
// state the kernels shard over. An Engine is reusable across steps (the
// pool and buffers persist) but a single Engine must not evaluate
// forces from multiple goroutines at once. Close releases the workers;
// a closed Engine must not be used again.
type Engine[T vec.Float] struct {
	workers int
	tasks   chan func()
	once    sync.Once

	// buildMu serializes neighbor-list builds: unlike force
	// evaluations, BuildPairlist may be called concurrently from
	// several runners sharing one engine (the fleet scheduler's shared
	// build pool), and consecutive builds must not interleave on the
	// task queue.
	buildMu sync.Mutex

	// inj is the fault injector consulted at the worker and
	// parallel-forces sites; nil (the default) is a no-op.
	inj faults.Injector

	// ctx, when non-nil, bounds every kernel evaluation: a worker
	// checks it before starting its shard (and an injected Delay fault
	// selects on it), so a cancelled caller aborts an in-flight
	// evaluation at worker-task granularity instead of at run end.
	ctx context.Context

	shards []shard[T]

	// Mixed-precision scratch (the F32 kernels): the gather view of
	// the float32 neighbor list and the per-atom float64 energy
	// partials the fixed-shape reduction runs over.
	full32 md.FullRows[float32]
	pe64   []float64
}

// shard is one worker's private state.
type shard[T vec.Float] struct {
	pe      T            // partial potential energy
	pairs   int64        // partial interacting-pair count
	ledger  sim.Ledger   // partial op accounting (instrumented runs)
	acc     md.Coords[T] // private accumulator (pairlist kernel)
	cellbuf []int        // neighbor-cell scratch (cell kernel)
}

// New creates an engine with ClampWorkers(workers) workers. With one
// worker no goroutines are spawned and every kernel runs inline on the
// caller.
func New[T vec.Float](workers int) *Engine[T] {
	w := ClampWorkers(workers)
	e := &Engine[T]{workers: w, shards: make([]shard[T], w)}
	if w > 1 {
		e.tasks = make(chan func())
		for i := 0; i < w; i++ {
			go func() {
				for f := range e.tasks {
					f()
				}
			}()
		}
	}
	return e
}

// Workers returns the pool size.
func (e *Engine[T]) Workers() int { return e.workers }

// Close stops the worker goroutines. It is idempotent.
func (e *Engine[T]) Close() {
	e.once.Do(func() {
		if e.tasks != nil {
			close(e.tasks)
		}
	})
}

// SetInjector installs a fault injector consulted once per worker task
// (faults.SiteWorker: panic, delay, error) and once per kernel
// evaluation (faults.SiteParallelForces: output corruption). Pass nil
// to disarm. Must not be called concurrently with a force evaluation.
func (e *Engine[T]) SetInjector(in faults.Injector) { e.inj = in }

// SetContext installs the context that bounds subsequent kernel
// evaluations: once it is cancelled, workers skip their shards and the
// evaluation returns the context error. Pass nil to clear. Like
// SetInjector, it must not be called concurrently with a force
// evaluation — the runner sets it once per Run.
func (e *Engine[T]) SetContext(ctx context.Context) { e.ctx = ctx }

// evalCtx returns the context bounding the current evaluation.
func (e *Engine[T]) evalCtx() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// call runs one worker's share under recover, applying any armed
// worker-site fault first. A panic — injected or real — becomes an
// error on the caller instead of killing the process; this isolation
// is the contract the guard supervisor's retry ladder builds on.
func (e *Engine[T]) call(w int, fn func(w int)) error {
	return e.callWith(e.evalCtx(), w, true, fn)
}

// callWith is call with an explicit context bound and an arm switch:
// the neighbor-list build path passes the caller's context (a shared
// build engine serves many runners, each with its own deadline) and
// arm=false so builds do not advance the worker-site fault schedule
// the force-evaluation tests pin call numbers against.
func (e *Engine[T]) callWith(ctx context.Context, w int, arm bool, fn func(w int)) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = fmt.Errorf("parallel: worker %d panicked: %v", w, rec)
		}
	}()
	if cerr := ctx.Err(); cerr != nil {
		return fmt.Errorf("parallel: worker %d: %w", w, cerr)
	}
	if arm {
		if f := faults.Fire(e.inj, faults.SiteWorker); f != nil {
			if ferr := f.WorkerFaultCtx(ctx); ferr != nil {
				return fmt.Errorf("parallel: worker %d: %w", w, ferr)
			}
		}
	}
	fn(w)
	return nil
}

// runN executes fn(0..n-1) across the pool, waits for all of them, and
// returns the first worker failure (the others still run to
// completion, so the pool stays consistent). n must be at most
// e.workers.
func (e *Engine[T]) runN(n int, fn func(w int)) error {
	return e.runNWith(e.evalCtx(), n, true, fn)
}

// runNWith is runN under an explicit context and arm switch (see
// callWith).
func (e *Engine[T]) runNWith(ctx context.Context, n int, arm bool, fn func(w int)) error {
	if e.workers == 1 || n == 1 {
		for w := 0; w < n; w++ {
			if err := e.callWith(ctx, w, arm, fn); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg    sync.WaitGroup
		errMu sync.Mutex
		first error
	)
	wg.Add(n)
	for w := 0; w < n; w++ {
		w := w
		e.tasks <- func() {
			defer wg.Done()
			if err := e.callWith(ctx, w, arm, fn); err != nil {
				errMu.Lock()
				if first == nil {
					first = err
				}
				errMu.Unlock()
			}
		}
	}
	wg.Wait()
	return first
}

// run executes fn once per worker, waits, and returns the first worker
// failure.
func (e *Engine[T]) run(fn func(w int)) error { return e.runN(e.workers, fn) }

// corruptOutput applies any armed parallel-forces fault to a completed
// kernel's output.
func (e *Engine[T]) corruptOutput(acc md.Coords[T]) {
	if f := faults.Fire(e.inj, faults.SiteParallelForces); f != nil {
		faults.CorruptPlane(f.Kind, acc.X)
	}
}

// shardRange splits n items into e.workers contiguous ranges and
// returns worker w's [lo, hi).
func (e *Engine[T]) shardRange(n, w int) (lo, hi int) {
	return w * n / e.workers, (w + 1) * n / e.workers
}

// reducePE sums the per-worker partial energies in worker order — a
// fixed association, so results are deterministic for a given worker
// count.
func (e *Engine[T]) reducePE() T {
	var pe T
	for w := range e.shards {
		pe += e.shards[w].pe
	}
	return pe
}

// ForcesDirect evaluates the paper's O(N²) kernel with atom-range
// sharding over the full-loop layout. acc is overwritten; the return
// value is the total potential energy. With one worker the result is
// bitwise identical to md.ComputeForcesFull. A worker failure panics
// on the caller's goroutine; error-aware callers use TryForcesDirect.
func (e *Engine[T]) ForcesDirect(p md.Params[T], pos, acc md.Coords[T]) T {
	pe, _ := e.ForcesDirectCount(p, pos, acc)
	return pe
}

// TryForcesDirect is ForcesDirect on the error-returning kernel path:
// a worker panic (real or injected) surfaces as an error and the
// process — and the pool — survive. On error, acc is undefined.
func (e *Engine[T]) TryForcesDirect(p md.Params[T], pos, acc md.Coords[T]) (T, error) {
	pe, _, err := e.forcesDirectCount(p, pos, acc)
	return pe, err
}

// ForcesDirectCount is ForcesDirect plus the count of ordered
// interacting pairs, mirroring md.ComputeForcesFullCount.
func (e *Engine[T]) ForcesDirectCount(p md.Params[T], pos, acc md.Coords[T]) (T, int64) {
	pe, pairs, err := e.forcesDirectCount(p, pos, acc)
	if err != nil {
		panic(err)
	}
	return pe, pairs
}

func (e *Engine[T]) forcesDirectCount(p md.Params[T], pos, acc md.Coords[T]) (T, int64, error) {
	n := pos.Len()
	rc2 := p.Cutoff * p.Cutoff
	err := e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		sh := &e.shards[w]
		var pe T
		var pairs int64
		for i := lo; i < hi; i++ {
			pi := pos.At(i)
			var ai vec.V3[T]
			var pei T
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				d := md.MinImage(pi.Sub(pos.At(j)), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				pairs++
				v, f := md.LJPair(p, r2)
				pei += v
				ai = ai.Add(d.Scale(f))
			}
			acc.Set(i, ai)
			pe += pei
		}
		sh.pe = pe
		sh.pairs = pairs
	})
	if err != nil {
		return 0, 0, err
	}
	e.corruptOutput(acc)
	var pairs int64
	for w := range e.shards {
		pairs += e.shards[w].pairs
	}
	return e.reducePE() / 2, pairs, nil
}

// Coarse per-candidate and per-interaction operation mixes for the
// instrumented direct kernel: the same first-order accounting the
// device models apply to this loop (pos gather, minimum image, r²,
// cutoff test; then the LJ pair evaluation and force accumulation).
// The counts depend only on which (i, j) pairs are visited, so the
// merged ledger is identical for every worker count.
var (
	candidateOps = []struct {
		op sim.Op
		n  int64
	}{
		{sim.OpLoad, 3}, {sim.OpFAdd, 5}, {sim.OpFMul, 3}, {sim.OpCmp, 4},
	}
	interactionOps = []struct {
		op sim.Op
		n  int64
	}{
		{sim.OpFDiv, 1}, {sim.OpFMul, 9}, {sim.OpFAdd, 5}, {sim.OpStore, 3},
	}
)

// ForcesDirectInstrumented is ForcesDirect with per-worker op
// accounting: each worker tallies its shard's modeled operation mix
// into a private sim.Ledger and the ledgers are folded with
// sim.MergeAll. The physics is identical to ForcesDirect; the ledger
// feeds device-model-style cycle accounting for the host path.
func (e *Engine[T]) ForcesDirectInstrumented(p md.Params[T], pos, acc md.Coords[T]) (T, sim.Ledger) {
	n := pos.Len()
	rc2 := p.Cutoff * p.Cutoff
	err := e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		sh := &e.shards[w]
		sh.ledger.Reset()
		var pe T
		var candidates, interactions int64
		for i := lo; i < hi; i++ {
			pi := pos.At(i)
			var ai vec.V3[T]
			var pei T
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				candidates++
				d := md.MinImage(pi.Sub(pos.At(j)), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				interactions++
				v, f := md.LJPair(p, r2)
				pei += v
				ai = ai.Add(d.Scale(f))
			}
			acc.Set(i, ai)
			pe += pei
		}
		sh.pe = pe
		for _, c := range candidateOps {
			sh.ledger.Add(c.op, c.n*candidates)
		}
		for _, c := range interactionOps {
			sh.ledger.Add(c.op, c.n*interactions)
		}
	})
	if err != nil {
		panic(err)
	}
	e.corruptOutput(acc)
	ledgers := make([]sim.Ledger, len(e.shards))
	for w := range e.shards {
		ledgers[w] = e.shards[w].ledger
	}
	return e.reducePE() / 2, sim.MergeAll(ledgers)
}

// ForcesCell evaluates the linked-cell method with cell-range sharding:
// the grid is rebuilt from the positions, then each worker computes the
// forces on the atoms of its cell range by gathering over the full
// 27-cell shell. Every atom belongs to exactly one cell, so acc is
// written race-free; each pair is visited from both sides, so the
// summed energy is halved. acc is overwritten; the return value is the
// potential energy, matching cl.Forces to rounding. A worker failure
// panics on the caller's goroutine; error-aware callers use
// TryForcesCell.
func (e *Engine[T]) ForcesCell(cl *md.CellList[T], p md.Params[T], pos, acc md.Coords[T]) T {
	pe, err := e.TryForcesCell(cl, p, pos, acc)
	if err != nil {
		panic(err)
	}
	return pe
}

// TryForcesCell is ForcesCell on the error-returning kernel path: a
// worker panic (real or injected) surfaces as an error and the process
// — and the pool — survive. On error, acc is undefined.
func (e *Engine[T]) TryForcesCell(cl *md.CellList[T], p md.Params[T], pos, acc md.Coords[T]) (T, error) {
	cl.Build(pos)
	ncells := cl.NumCells()
	rc2 := p.Cutoff * p.Cutoff
	err := e.run(func(w int) {
		lo, hi := e.shardRange(ncells, w)
		sh := &e.shards[w]
		if cap(sh.cellbuf) < 27 {
			sh.cellbuf = make([]int, 27)
		}
		var pe T
		for c := lo; c < hi; c++ {
			if cl.Head(c) < 0 {
				continue
			}
			cells := cl.NeighborCells(c, sh.cellbuf)
			for i := cl.Head(c); i >= 0; i = cl.Next(i) {
				pi := pos.At(int(i))
				var ai vec.V3[T]
				var pei T
				for _, nc := range cells {
					for j := cl.Head(nc); j >= 0; j = cl.Next(j) {
						if j == i {
							continue
						}
						d := md.MinImage(pi.Sub(pos.At(int(j))), p.Box)
						r2 := d.Norm2()
						if r2 >= rc2 || r2 == 0 {
							continue
						}
						v, f := md.LJPair(p, r2)
						pei += v
						ai = ai.Add(d.Scale(f))
					}
				}
				acc.Set(int(i), ai)
				pe += pei
			}
		}
		sh.pe = pe
	})
	if err != nil {
		return 0, err
	}
	e.corruptOutput(acc)
	return e.reducePE() / 2, nil
}

// buildCtxStride is how many neighbor-list rows a build worker fills
// between context checks: frequent enough that a cancelled replica
// stops a large build well inside one MD step, rare enough that the
// check is free against the ~100 distance tests each row costs.
const buildCtxStride = 256

// BuildPairlist rebuilds nl from pos with row-range sharding over the
// pool: BeginBuild bins the atoms once, then each worker fills a
// contiguous range of rows. Rows are disjoint and each row's content
// is independent of the sharding (ascending-j by construction, see
// md.NeighborList.BuildRow), so the built list is byte-identical for
// every worker count — including one, where the build runs inline on
// the caller — and identical to the serial Build. ctx bounds the
// build at row-stride granularity; on cancellation (or a worker
// failure) the list is left stale-but-consistent and an error is
// returned. nil ctx means context.Background().
//
// Unlike the force kernels, BuildPairlist is safe to call from several
// runners sharing one engine: concurrent builds serialize on an
// internal mutex. This is the fleet scheduler's shared-build-pool
// contract; each call still observes only its own context.
func (e *Engine[T]) BuildPairlist(ctx context.Context, nl *md.NeighborList[T], p md.Params[T], pos md.Coords[T]) error {
	return buildPairlist(e, ctx, nl, p, pos)
}

// serialBuildAtoms is the atom count below which BuildPairlist runs
// the build inline instead of sharding it: BENCH_PR5 measured the
// sharded build at mid N losing to the serial cell-binned build
// (parallel_n2048_w{2,4} ≈ 6.7–6.9 ms vs cell_n2048 ≈ 5.96 ms — task
// hand-off and shard bookkeeping, since this host is effectively
// single-core), and the crossover sits between 2048 and 8192. Output
// is unaffected: rows are position-determined, so both paths emit
// byte-identical lists (pinned by TestBuildPairlistWorkersBitwise).
const serialBuildAtoms = 4096

// buildPairlist is the shared build core behind BuildPairlist and
// BuildPairlistF32: the engine's scheduling is independent of the
// list's element width F, so one implementation serves both the
// native-width and the mixed-precision builds.
func buildPairlist[T, F vec.Float](e *Engine[T], ctx context.Context, nl *md.NeighborList[F], p md.Params[F], pos md.Coords[F]) error {
	if ctx == nil {
		ctx = context.Background()
	}
	e.buildMu.Lock()
	defer e.buildMu.Unlock()
	grid := nl.BeginBuild(p, pos)
	n := pos.Len()
	var err error
	if e.workers <= 1 || n < serialBuildAtoms {
		// Inline build (see serialBuildAtoms). callWith keeps the
		// panic-isolation and disarmed-fault contract of the sharded
		// path; the row loop polls ctx at the same stride.
		err = e.callWith(ctx, 0, false, func(int) {
			for i := 0; i < n; i++ {
				if i%buildCtxStride == 0 && ctx.Err() != nil {
					return // abandon; EndBuild below is skipped
				}
				nl.BuildRow(p, pos, grid, i)
			}
		})
	} else {
		err = e.runNWith(ctx, e.workers, false, func(w int) {
			lo, hi := e.shardRange(n, w)
			for i := lo; i < hi; i++ {
				if (i-lo)%buildCtxStride == 0 && ctx.Err() != nil {
					return // abandon the shard; EndBuild below is skipped
				}
				nl.BuildRow(p, pos, grid, i)
			}
		})
	}
	if err == nil {
		err = ctx.Err() // a late cancellation may have abandoned rows
	}
	if err != nil {
		return fmt.Errorf("parallel: pairlist build: %w", err)
	}
	nl.EndBuild(pos)
	return nil
}

// ForcesPairlist evaluates the Verlet-list kernel with pair-chunk
// sharding: the flattened (i, j) pair sequence is split into one
// near-equal chunk per worker (splitting inside an atom's neighbor list
// when needed), each worker scatters both sides of its pairs into a
// private acceleration buffer, and the buffers are combined by a
// parallel tree reduction before being written to acc. The list is
// rebuilt first if stale. acc is overwritten; the return value is the
// potential energy, matching nl.Forces to rounding. A worker failure
// panics on the caller's goroutine; error-aware callers use
// TryForcesPairlist.
func (e *Engine[T]) ForcesPairlist(nl *md.NeighborList[T], p md.Params[T], pos, acc md.Coords[T]) T {
	pe, err := e.TryForcesPairlist(nl, p, pos, acc)
	if err != nil {
		panic(err)
	}
	return pe
}

// TryForcesPairlist is ForcesPairlist on the error-returning kernel
// path: a worker panic (real or injected) surfaces as an error and the
// process — and the pool — survive. On error, acc is undefined.
func (e *Engine[T]) TryForcesPairlist(nl *md.NeighborList[T], p md.Params[T], pos, acc md.Coords[T]) (T, error) {
	if nl.Stale(p, pos) {
		if err := e.BuildPairlist(e.evalCtx(), nl, p, pos); err != nil {
			return 0, err
		}
	}
	n := pos.Len()
	total := nl.PairCount()
	rc2 := p.Cutoff * p.Cutoff
	err := e.run(func(w int) {
		sh := &e.shards[w]
		sh.acc.Resize(n)
		sh.acc.Zero()
		// Worker w owns the flattened pair range [lo, hi).
		lo := w * total / e.workers
		hi := (w + 1) * total / e.workers
		var pe T
		seen := 0
		for i := 0; i < n && seen < hi; i++ {
			js := nl.Neighbors(i)
			if seen+len(js) <= lo {
				seen += len(js)
				continue
			}
			from, to := 0, len(js)
			if lo > seen {
				from = lo - seen
			}
			if hi < seen+len(js) {
				to = hi - seen
			}
			seen += len(js)
			pi := pos.At(i)
			for _, j := range js[from:to] {
				d := md.MinImage(pi.Sub(pos.At(int(j))), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				v, f := md.LJPair(p, r2)
				pe += v
				fd := d.Scale(f)
				sh.acc.Add(i, fd)
				sh.acc.Sub(int(j), fd)
			}
		}
		sh.pe = pe
	})
	if err != nil {
		return 0, err
	}

	// Tree-reduce the private buffers: log₂(workers) rounds of pairwise
	// adds, each round's adds running in parallel. The fixed tree makes
	// the floating-point summation order deterministic for a given
	// worker count.
	for stride := 1; stride < e.workers; stride *= 2 {
		nadds := 0
		for w := 0; w+stride < e.workers; w += 2 * stride {
			nadds++
		}
		stride := stride
		if err := e.runN(nadds, func(k int) {
			w := k * 2 * stride
			dst, src := e.shards[w].acc, e.shards[w+stride].acc
			for i := range dst.X {
				dst.X[i] += src.X[i]
			}
			for i := range dst.Y {
				dst.Y[i] += src.Y[i]
			}
			for i := range dst.Z {
				dst.Z[i] += src.Z[i]
			}
		}); err != nil {
			return 0, err
		}
	}
	// Publish shard 0's totals into acc, sharded by atom range.
	if err := e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		copy(acc.X[lo:hi], e.shards[0].acc.X[lo:hi])
		copy(acc.Y[lo:hi], e.shards[0].acc.Y[lo:hi])
		copy(acc.Z[lo:hi], e.shards[0].acc.Z[lo:hi])
	}); err != nil {
		return 0, err
	}
	e.corruptOutput(acc)
	return e.reducePE(), nil
}
