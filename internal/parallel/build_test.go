package parallel

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/md"
	"repro/internal/vec"
	"repro/internal/xrand"
)

// buildList builds a fresh neighbor list for pos through an engine of
// the given worker count and returns it.
func buildList(t *testing.T, workers int, p md.Params[float64], pos md.Coords[float64], skin float64) *md.NeighborList[float64] {
	t.Helper()
	nl, err := md.NewNeighborList[float64](skin)
	if err != nil {
		t.Fatal(err)
	}
	e := New[float64](workers)
	defer e.Close()
	if err := e.BuildPairlist(context.Background(), nl, p, pos); err != nil {
		t.Fatal(err)
	}
	return nl
}

// samePairs asserts two lists hold byte-identical rows.
func samePairs(t *testing.T, want, got *md.NeighborList[float64], n int, label string) {
	t.Helper()
	for i := 0; i < n; i++ {
		w, g := want.Neighbors(i), got.Neighbors(i)
		if len(w) != len(g) {
			t.Fatalf("%s: row %d has %d neighbors, want %d", label, i, len(g), len(w))
		}
		for k := range w {
			if w[k] != g[k] {
				t.Fatalf("%s: row %d entry %d is %d, want %d", label, i, k, g[k], w[k])
			}
		}
	}
}

// TestBuildPairlistWorkersBitwise is the parallel half of the build
// property test: for randomized geometries, the sharded build at
// Workers ∈ {2, 4, 8} produces byte-identical pairs slices to
// Workers=1, which in turn matches the serial Build. Forces evaluated
// over the lists are then bitwise equal by construction.
func TestBuildPairlistWorkersBitwise(t *testing.T) {
	rng := xrand.New(21)
	for trial := 0; trial < 8; trial++ {
		box := 6 + 8*rng.Float64()
		skin := 0.2 + 0.4*rng.Float64()
		n := 100 + rng.Intn(400)
		pos := md.MakeCoords[float64](n)
		for i := 0; i < n; i++ {
			pos.Set(i, vec.V3[float64]{
				X: rng.Float64() * box,
				Y: rng.Float64() * box,
				Z: rng.Float64() * box,
			})
		}
		p := md.Params[float64]{Box: box, Cutoff: 1.8, Dt: 0.001}

		serial, err := md.NewNeighborList[float64](skin)
		if err != nil {
			t.Fatal(err)
		}
		serial.Build(p, pos)
		one := buildList(t, 1, p, pos, skin)
		samePairs(t, serial, one, n, "workers=1 vs serial Build")
		for _, w := range []int{2, 4, 8} {
			many := buildList(t, w, p, pos, skin)
			samePairs(t, one, many, n, "workers="+string(rune('0'+w))+" vs workers=1")
		}
	}
}

// TestBuildPairlistForcesBitwise pins the consequence the determinism
// argument rests on: identical pair lists mean identical summation
// order, so the serial Forces over a parallel-built list is bitwise
// equal to the serial Forces over a serially-built one.
func TestBuildPairlistForcesBitwise(t *testing.T) {
	st, p := makeState(t, 500)
	serial, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	pos := md.CoordsFromV3(st.Pos)
	serial.Build(p, pos)
	par := buildList(t, 8, p, pos, 0.4)

	accS := md.MakeCoords[float64](pos.Len())
	accP := md.MakeCoords[float64](pos.Len())
	peS := serial.Forces(p, pos, accS)
	peP := par.Forces(p, pos, accP)
	if peS != peP {
		t.Fatalf("PE differs: serial-built %v, parallel-built %v", peS, peP)
	}
	for i := 0; i < accS.Len(); i++ {
		if accS.At(i) != accP.At(i) {
			t.Fatalf("force %d differs: %+v vs %+v", i, accS.At(i), accP.At(i))
		}
	}
}

// TestBuildPairlistCancelled pins the torn-build contract: a cancelled
// build returns the context error, leaves the list stale (so nothing
// trusts the torn rows), and the same list builds cleanly afterwards.
func TestBuildPairlistCancelled(t *testing.T) {
	st, p := makeState(t, 500)
	pos := md.CoordsFromV3(st.Pos)
	nl, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	e := New[float64](4)
	defer e.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = e.BuildPairlist(ctx, nl, p, pos)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled build returned %v, want context.Canceled", err)
	}
	if nl.Builds() != 0 {
		t.Fatalf("cancelled build committed (builds=%d)", nl.Builds())
	}
	if !nl.Stale(p, pos) {
		t.Fatal("list not stale after an abandoned build")
	}

	if err := e.BuildPairlist(context.Background(), nl, p, pos); err != nil {
		t.Fatal(err)
	}
	if nl.Builds() != 1 {
		t.Fatalf("recovery build count %d, want 1", nl.Builds())
	}
	ref, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	ref.Build(p, pos)
	samePairs(t, ref, nl, pos.Len(), "post-cancellation rebuild")
}

// TestBuildPairlistNilContext accepts nil as context.Background().
func TestBuildPairlistNilContext(t *testing.T) {
	st, p := makeState(t, 108)
	pos := md.CoordsFromV3(st.Pos)
	nl, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	e := New[float64](2)
	defer e.Close()
	if err := e.BuildPairlist(nil, nl, p, pos); err != nil {
		t.Fatal(err)
	}
	if nl.Builds() != 1 {
		t.Fatalf("builds = %d, want 1", nl.Builds())
	}
}

// TestBuildPairlistSharedEngineConcurrent is the shared-build-pool
// contract under the race detector: many goroutines build their own
// lists through one engine at once, and every result matches the
// serial reference — concurrent callers serialize inside the engine
// without corrupting each other's lists.
func TestBuildPairlistSharedEngineConcurrent(t *testing.T) {
	st, p := makeState(t, 500)
	pos := md.CoordsFromV3(st.Pos)
	ref, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	ref.Build(p, pos)

	e := New[float64](4)
	defer e.Close()
	const callers = 8
	lists := make([]*md.NeighborList[float64], callers)
	errs := make([]error, callers)
	var wg sync.WaitGroup
	wg.Add(callers)
	for c := 0; c < callers; c++ {
		c := c
		go func() {
			defer wg.Done()
			nl, err := md.NewNeighborList[float64](0.4)
			if err != nil {
				errs[c] = err
				return
			}
			errs[c] = e.BuildPairlist(context.Background(), nl, p, pos)
			lists[c] = nl
		}()
	}
	wg.Wait()
	for c := 0; c < callers; c++ {
		if errs[c] != nil {
			t.Fatalf("caller %d: %v", c, errs[c])
		}
		samePairs(t, ref, lists[c], pos.Len(), "concurrent caller")
	}
}
