package parallel

import (
	"context"

	"repro/internal/faults"
	"repro/internal/md"
	"repro/internal/vec"
)

// This file is the sharded mixed-precision fast path: float32 pair
// geometry, float64 accumulation (see internal/md/mixed.go for the
// precision contract). Unlike the native-width pairlist kernel —
// which shards the half-triangle pair sequence and therefore scatters
// into per-worker buffers whose reduction order depends on the worker
// count — the F32 kernel is written so that its output bytes are
// *independent* of the worker count:
//
//   - Forces gather: atoms are sharded by range, and each worker
//     computes its atoms' forces by gathering over the full neighbor
//     row (md.FullRows, ascending order fixed by the list alone).
//     Every acc[i] is written by exactly one worker with a summation
//     order that does not depend on where the shard boundaries fall.
//   - Energy reduces over atoms, not workers: each atom's float64
//     energy partial lands in a per-atom slot, and the total is a
//     fixed-shape pairwise tree (vec.PairwiseSum) whose association
//     depends only on N.
//
// TestForcesPairlistF32WorkersBitwise pins the property. The list
// build underneath (BuildPairlistF32) was already sharding-
// independent by construction.

// BuildPairlistF32 rebuilds a float32 neighbor list over the pool —
// the mixed-precision twin of BuildPairlist, sharing its build core,
// row-stride cancellation, disarmed-fault contract, and build mutex
// (so float32 and float64 builds on a shared engine serialize against
// each other).
func (e *Engine[T]) BuildPairlistF32(ctx context.Context, nl *md.NeighborList[float32], p md.Params[float32], pos md.Coords[float32]) error {
	return buildPairlist(e, ctx, nl, p, pos)
}

// ForcesPairlistF32 evaluates the mixed-precision Verlet-list kernel,
// panicking on a worker failure; error-aware callers use
// TryForcesPairlistF32. acc is overwritten; the return value is the
// float64 potential energy.
func (e *Engine[T]) ForcesPairlistF32(nl *md.NeighborList[float32], p md.Params[float32], pos md.Coords[float32], acc md.Coords[float64]) float64 {
	pe, err := e.TryForcesPairlistF32(nl, p, pos, acc)
	if err != nil {
		panic(err)
	}
	return pe
}

// TryForcesPairlistF32 evaluates LJ forces over a float32 neighbor
// list with atom-range sharding and full-row gather: pair geometry
// and the LJ evaluation run at float32, each atom's force and energy
// accumulate in float64 (vec.AccumAdd / vec.Widen), and the total
// energy is a fixed-shape float64 tree reduction over the per-atom
// partials. The list is rebuilt first if stale (sharded, bitwise
// sharding-independent). acc is overwritten; the return value is the
// float64 potential energy. Output bytes — acc and the energy — are
// identical for every worker count. A worker panic surfaces as an
// error; on error, acc is undefined.
func (e *Engine[T]) TryForcesPairlistF32(nl *md.NeighborList[float32], p md.Params[float32], pos md.Coords[float32], acc md.Coords[float64]) (float64, error) {
	if nl.Stale(p, pos) {
		if err := e.BuildPairlistF32(e.evalCtx(), nl, p, pos); err != nil {
			return 0, err
		}
	}
	e.full32.Sync(nl)
	n := pos.Len()
	if cap(e.pe64) < n {
		e.pe64 = make([]float64, n)
	}
	e.pe64 = e.pe64[:n]
	rc2 := p.Cutoff * p.Cutoff
	err := e.run(func(w int) {
		lo, hi := e.shardRange(n, w)
		for i := lo; i < hi; i++ {
			pi := pos.At(i)
			var ai vec.V3[float64]
			var pei float64
			for _, j := range e.full32.Row(i) {
				d := md.MinImage(pi.Sub(pos.At(int(j))), p.Box)
				r2 := d.Norm2()
				if r2 >= rc2 || r2 == 0 {
					continue
				}
				v, f := md.LJPair(p, r2)
				pei += vec.Widen(v)
				ai = vec.AccumAdd(ai, d.Scale(f))
			}
			acc.Set(i, ai)
			e.pe64[i] = pei
		}
	})
	if err != nil {
		return 0, err
	}
	if f := faults.Fire(e.inj, faults.SiteParallelForces); f != nil {
		faults.CorruptPlane(f.Kind, acc.X)
	}
	// The gather visits each pair from both sides, so the tree-reduced
	// per-atom energies double-count every pair.
	return vec.PairwiseSum(e.pe64) / 2, nil
}
