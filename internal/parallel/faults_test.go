package parallel

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/md"
)

// faultState builds a small standard-liquid state shared by the
// injection tests.
func faultState(t testing.TB, n int) (md.Params[float64], md.Coords[float64], md.Coords[float64]) {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004},
		md.CoordsFromV3(st.Pos), md.MakeCoords[float64](n)
}

// TestWorkerPanicBecomesError pins worker isolation: an injected panic
// inside a pool worker surfaces as an error from the Try kernel — the
// process survives, and the pool stays usable for the next evaluation.
func TestWorkerPanicBecomesError(t *testing.T) {
	p, pos, acc := faultState(t, 108)
	for _, workers := range []int{1, 4} {
		e := New[float64](workers)
		reg := faults.NewRegistry(1).Arm(faults.Fault{
			Site: faults.SiteWorker, Kind: faults.Panic, Trigger: faults.Trigger{AtCall: 1},
		})
		e.SetInjector(reg)

		_, err := e.TryForcesDirect(p, pos, acc)
		if err == nil {
			t.Fatalf("workers=%d: injected panic did not surface as error", workers)
		}
		if !strings.Contains(err.Error(), "panicked") {
			t.Fatalf("workers=%d: error %q does not identify the panic", workers, err)
		}

		// The pool must still work: the next evaluation matches serial.
		pe, err := e.TryForcesDirect(p, pos, acc)
		if err != nil {
			t.Fatalf("workers=%d: pool dead after recovered panic: %v", workers, err)
		}
		ref := md.MakeCoords[float64](pos.Len())
		want := md.ComputeForcesFull(p, pos, ref)
		if rel := math.Abs(pe-want) / (1 + math.Abs(want)); rel > 1e-12 {
			t.Fatalf("workers=%d: post-panic PE %v vs serial %v", workers, pe, want)
		}
		e.Close()
	}
}

// TestWorkerPanicAllKernels exercises the error path of every Try
// kernel.
func TestWorkerPanicAllKernels(t *testing.T) {
	p, pos, acc := faultState(t, 864)
	e := New[float64](3)
	defer e.Close()
	cl, err := md.NewCellList(p.Box, p.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	kernels := []struct {
		name string
		eval func() (float64, error)
	}{
		{"direct", func() (float64, error) { return e.TryForcesDirect(p, pos, acc) }},
		{"cell", func() (float64, error) { return e.TryForcesCell(cl, p, pos, acc) }},
		{"pairlist", func() (float64, error) { return e.TryForcesPairlist(nl, p, pos, acc) }},
	}
	for _, k := range kernels {
		reg := faults.NewRegistry(1).Arm(faults.Fault{
			Site: faults.SiteWorker, Kind: faults.Panic, Trigger: faults.Trigger{AtCall: 2},
		})
		e.SetInjector(reg)
		if _, err := k.eval(); err == nil {
			t.Errorf("%s: injected worker panic not surfaced", k.name)
		}
		e.SetInjector(nil)
		if _, err := k.eval(); err != nil {
			t.Errorf("%s: pool dead after recovered panic: %v", k.name, err)
		}
	}
}

// TestLegacyKernelPanicsOnCaller pins the legacy non-Try path: the
// worker failure re-panics on the caller's goroutine (recoverable),
// never on the worker goroutine (fatal).
func TestLegacyKernelPanicsOnCaller(t *testing.T) {
	p, pos, acc := faultState(t, 108)
	e := New[float64](4)
	defer e.Close()
	e.SetInjector(faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic, Trigger: faults.Trigger{AtCall: 1},
	}))
	defer func() {
		if recover() == nil {
			t.Fatal("legacy ForcesDirect swallowed the worker failure")
		}
	}()
	e.ForcesDirect(p, pos, acc)
}

// TestWorkerDelayKeepsResultsCorrect injects a straggler: the kernel
// is slower but bit-identical in result.
func TestWorkerDelayKeepsResultsCorrect(t *testing.T) {
	p, pos, acc := faultState(t, 108)
	e := New[float64](4)
	defer e.Close()
	clean := md.MakeCoords[float64](pos.Len())
	peClean, err := e.TryForcesDirect(p, pos, clean)
	if err != nil {
		t.Fatal(err)
	}
	e.SetInjector(faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Delay, Delay: 2 * time.Millisecond,
		Trigger: faults.Trigger{AtCall: 1},
	}))
	pe, err := e.TryForcesDirect(p, pos, acc)
	if err != nil {
		t.Fatal(err)
	}
	if pe != peClean {
		t.Fatalf("delayed PE %v != clean PE %v", pe, peClean)
	}
	for i := 0; i < acc.Len(); i++ {
		if acc.At(i) != clean.At(i) {
			t.Fatalf("delayed forces diverged at atom %d", i)
		}
	}
}

// TestParallelForcesCorruption pins the accelerator-bit-rot site: an
// armed NaN fault poisons the kernel output, and falls silent again
// once disarmed.
func TestParallelForcesCorruption(t *testing.T) {
	p, pos, acc := faultState(t, 108)
	e := New[float64](2)
	defer e.Close()
	reg := faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteParallelForces, Kind: faults.NaN, Trigger: faults.Trigger{AtCall: 2},
	})
	e.SetInjector(reg)
	if _, err := e.TryForcesDirect(p, pos, acc); err != nil {
		t.Fatal(err)
	}
	if hasNaN(acc) {
		t.Fatal("corruption fired early")
	}
	if _, err := e.TryForcesDirect(p, pos, acc); err != nil {
		t.Fatal(err)
	}
	if !hasNaN(acc) {
		t.Fatal("armed NaN fault did not poison the output")
	}
	if got := reg.Fired(faults.SiteParallelForces); got != 1 {
		t.Fatalf("fired %d times, want 1", got)
	}
}

func hasNaN(arr md.Coords[float64]) bool {
	for i := 0; i < arr.Len(); i++ {
		v := arr.At(i)
		if math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z) {
			return true
		}
	}
	return false
}

// TestErrorLeavesPoolDrainedNotWedged hammers the error path: many
// consecutive failed evaluations must not leak or wedge the pool.
func TestErrorLeavesPoolDrainedNotWedged(t *testing.T) {
	p, pos, acc := faultState(t, 64)
	e := New[float64](4)
	defer e.Close()
	e.SetInjector(faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic, Trigger: faults.Trigger{FromCall: 1},
	}))
	for i := 0; i < 50; i++ {
		if _, err := e.TryForcesDirect(p, pos, acc); err == nil {
			t.Fatal("persistent fault stopped firing")
		}
	}
	e.SetInjector(nil)
	if _, err := e.TryForcesDirect(p, pos, acc); err != nil {
		t.Fatalf("pool wedged after 50 failures: %v", err)
	}
}
