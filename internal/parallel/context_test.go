package parallel

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/md"
)

// TestEngineContextCancelInterruptsDelayedWorker pins that a cancelled
// context cuts an injected straggler delay short: with a 10-second
// Delay fault armed on every worker call, a context cancelled after a
// few milliseconds must abort the evaluation almost immediately.
func TestEngineContextCancelInterruptsDelayedWorker(t *testing.T) {
	st, err := lattice.Generate(lattice.Config{
		N: 108, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: 2.2, Dt: 0.004}
	pos := md.CoordsFromV3(st.Pos)
	acc := md.MakeCoords[float64](pos.Len())

	e := New[float64](4)
	defer e.Close()
	e.SetInjector(faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Delay, Delay: 10 * time.Second,
		Trigger: faults.Trigger{FromCall: 1},
	}))
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	time.AfterFunc(10*time.Millisecond, cancel)

	start := time.Now()
	_, err = e.TryForcesDirect(p, pos, acc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancel took %v; delay fault was not interrupted", elapsed)
	}
}

// TestEngineCancelledContextSkipsWork pins that workers check the
// context before touching their shards: with a pre-cancelled context
// every kernel returns the context error.
func TestEngineCancelledContextSkipsWork(t *testing.T) {
	st, err := lattice.Generate(lattice.Config{
		N: 108, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := md.Params[float64]{Box: st.Box, Cutoff: 2.2, Dt: 0.004}
	pos := md.CoordsFromV3(st.Pos)
	acc := md.MakeCoords[float64](pos.Len())

	e := New[float64](2)
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	if _, err := e.TryForcesDirect(p, pos, acc); !errors.Is(err, context.Canceled) {
		t.Fatalf("direct: %v, want context.Canceled", err)
	}
	nl, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.TryForcesPairlist(nl, p, pos, acc); !errors.Is(err, context.Canceled) {
		t.Fatalf("pairlist: %v, want context.Canceled", err)
	}

	// Clearing the context restores normal evaluation.
	e.SetContext(nil)
	if _, err := e.TryForcesDirect(p, pos, acc); err != nil {
		t.Fatalf("after clearing context: %v", err)
	}
}
