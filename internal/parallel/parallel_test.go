package parallel

import (
	"math"
	"runtime"
	"testing"

	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/vec"
)

// workerCounts exercises the interesting pool shapes: serial-inline,
// even, odd (uneven shards and a lopsided reduction tree), and more
// workers than can be busy at once on most hosts.
var workerCounts = []int{1, 2, 3, 4, 7, 8}

func makeState(t testing.TB, n int) (*lattice.State, md.Params[float64]) {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004}
}

func relDiff(a, b float64) float64 {
	return math.Abs(a-b) / (1 + math.Abs(a))
}

func TestClampWorkers(t *testing.T) {
	cases := []struct{ in, want int }{
		{0, runtime.NumCPU()},
		{-1, 1},
		{-1000, 1},
		{1, 1},
		{7, 7},
		{MaxWorkers, MaxWorkers},
		{MaxWorkers + 1, MaxWorkers},
		{1 << 30, MaxWorkers},
	}
	for _, c := range cases {
		if got := ClampWorkers(c.in); got != c.want {
			t.Errorf("ClampWorkers(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

// TestDirectOneWorkerBitwise pins the strongest equivalence: the
// single-worker direct kernel is the same loop as ComputeForcesFull and
// must agree bit for bit.
func TestDirectOneWorkerBitwise(t *testing.T) {
	st, p := makeState(t, 256)
	pos := md.CoordsFromV3(st.Pos)
	e := New[float64](1)
	defer e.Close()
	accPar := md.MakeCoords[float64](pos.Len())
	accRef := md.MakeCoords[float64](pos.Len())
	pePar := e.ForcesDirect(p, pos, accPar)
	peRef := md.ComputeForcesFull(p, pos, accRef)
	if pePar != peRef {
		t.Fatalf("PE differs bitwise: parallel %v, serial %v", pePar, peRef)
	}
	for i := 0; i < accRef.Len(); i++ {
		if accPar.At(i) != accRef.At(i) {
			t.Fatalf("acc[%d] differs bitwise: %+v vs %+v", i, accPar.At(i), accRef.At(i))
		}
	}
}

// TestDirectMatchesSerial pins every worker count against both serial
// formulations within 1e-10 relative — the acceptance tolerance.
func TestDirectMatchesSerial(t *testing.T) {
	st, p := makeState(t, 500)
	pos := md.CoordsFromV3(st.Pos)
	accHalf := md.MakeCoords[float64](pos.Len())
	accFull := md.MakeCoords[float64](pos.Len())
	peHalf := md.ComputeForces(p, pos, accHalf)
	peFull, wantPairs := md.ComputeForcesFullCount(p, pos, accFull)
	for _, w := range workerCounts {
		e := New[float64](w)
		acc := md.MakeCoords[float64](pos.Len())
		pe, pairs := e.ForcesDirectCount(p, pos, acc)
		if pairs != wantPairs {
			t.Errorf("w=%d: %d interacting pairs, want %d", w, pairs, wantPairs)
		}
		if d := relDiff(pe, peFull); d > 1e-12 {
			t.Errorf("w=%d: PE %v vs full-loop %v (rel %v)", w, pe, peFull, d)
		}
		if d := relDiff(pe, peHalf); d > 1e-10 {
			t.Errorf("w=%d: PE %v vs half-loop %v (rel %v)", w, pe, peHalf, d)
		}
		for i := 0; i < acc.Len(); i++ {
			if acc.At(i) != accFull.At(i) {
				// Atom shards reproduce the serial per-atom gather
				// exactly; any difference is a sharding bug.
				t.Fatalf("w=%d: acc[%d] = %+v, want %+v", w, i, acc.At(i), accFull.At(i))
			}
		}
		e.Close()
	}
}

func TestCellMatchesSerial(t *testing.T) {
	st, p := makeState(t, 864) // box ~10.1: 4 cells per edge
	pos := md.CoordsFromV3(st.Pos)
	clRef, err := md.NewCellList(p.Box, p.Cutoff)
	if err != nil {
		t.Fatal(err)
	}
	accRef := md.MakeCoords[float64](pos.Len())
	peRef := clRef.Forces(p, pos, accRef)
	for _, w := range workerCounts {
		e := New[float64](w)
		cl, err := md.NewCellList(p.Box, p.Cutoff)
		if err != nil {
			t.Fatal(err)
		}
		acc := md.MakeCoords[float64](pos.Len())
		pe := e.ForcesCell(cl, p, pos, acc)
		if d := relDiff(pe, peRef); d > 1e-12 {
			t.Errorf("w=%d: PE %v vs serial cells %v (rel %v)", w, pe, peRef, d)
		}
		for i := 0; i < acc.Len(); i++ {
			if acc.At(i).Sub(accRef.At(i)).Norm() > 1e-10*(1+accRef.At(i).Norm()) {
				t.Fatalf("w=%d: acc[%d] = %+v, want %+v", w, i, acc.At(i), accRef.At(i))
			}
		}
		e.Close()
	}
}

func TestPairlistMatchesSerial(t *testing.T) {
	st, p := makeState(t, 500)
	pos := md.CoordsFromV3(st.Pos)
	nlRef, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	accRef := md.MakeCoords[float64](pos.Len())
	peRef := nlRef.Forces(p, pos, accRef)
	for _, w := range workerCounts {
		e := New[float64](w)
		nl, err := md.NewNeighborList[float64](0.4)
		if err != nil {
			t.Fatal(err)
		}
		acc := md.MakeCoords[float64](pos.Len())
		pe := e.ForcesPairlist(nl, p, pos, acc)
		if d := relDiff(pe, peRef); d > 1e-12 {
			t.Errorf("w=%d: PE %v vs serial pairlist %v (rel %v)", w, pe, peRef, d)
		}
		for i := 0; i < acc.Len(); i++ {
			if acc.At(i).Sub(accRef.At(i)).Norm() > 1e-10*(1+accRef.At(i).Norm()) {
				t.Fatalf("w=%d: acc[%d] = %+v, want %+v", w, i, acc.At(i), accRef.At(i))
			}
		}
		e.Close()
	}
}

// TestPairlistOneWorkerBitwise: with one worker the pair-chunk kernel
// degenerates to the serial loop and must agree bit for bit.
func TestPairlistOneWorkerBitwise(t *testing.T) {
	st, p := makeState(t, 256)
	pos := md.CoordsFromV3(st.Pos)
	nlRef, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	accRef := md.MakeCoords[float64](pos.Len())
	peRef := nlRef.Forces(p, pos, accRef)
	e := New[float64](1)
	defer e.Close()
	nl, err := md.NewNeighborList[float64](0.4)
	if err != nil {
		t.Fatal(err)
	}
	acc := md.MakeCoords[float64](pos.Len())
	pe := e.ForcesPairlist(nl, p, pos, acc)
	if pe != peRef {
		t.Fatalf("PE differs bitwise: %v vs %v", pe, peRef)
	}
	for i := 0; i < acc.Len(); i++ {
		if acc.At(i) != accRef.At(i) {
			t.Fatalf("acc[%d] differs bitwise: %+v vs %+v", i, acc.At(i), accRef.At(i))
		}
	}
}

// TestInstrumentedLedgerWorkerInvariant: the merged op ledger depends
// only on the pairs visited, so it must be identical for every worker
// count, and the physics must be unchanged by instrumentation.
func TestInstrumentedLedgerWorkerInvariant(t *testing.T) {
	st, p := makeState(t, 256)
	pos := md.CoordsFromV3(st.Pos)
	e1 := New[float64](1)
	defer e1.Close()
	acc := md.MakeCoords[float64](pos.Len())
	peWant := e1.ForcesDirect(p, pos, acc)
	pe1, want := e1.ForcesDirectInstrumented(p, pos, acc)
	if pe1 != peWant {
		t.Fatalf("instrumentation changed the PE: %v vs %v", pe1, peWant)
	}
	if want.Total() == 0 {
		t.Fatal("instrumented ledger is empty")
	}
	for _, w := range workerCounts[1:] {
		e := New[float64](w)
		pe, got := e.ForcesDirectInstrumented(p, pos, acc)
		if got != want {
			t.Errorf("w=%d: ledger %v, want %v", w, got.String(), want.String())
		}
		if d := relDiff(pe, peWant); d > 1e-12 {
			t.Errorf("w=%d: PE %v, want %v", w, pe, peWant)
		}
		e.Close()
	}
}

// TestTrajectoryReuse drives a short NVE trajectory through each
// parallel kernel, reusing one engine across steps (the persistent-pool
// path), and checks it stays on the serial trajectory.
func TestTrajectoryReuse(t *testing.T) {
	const steps = 20
	for _, kernel := range []string{"direct", "cell", "pairlist"} {
		st, _ := makeState(t, 500)
		ref, err := md.NewSystem(st, md.Params[float64]{Box: st.Box, Cutoff: 2.5, Dt: 0.004})
		if err != nil {
			t.Fatal(err)
		}
		par := ref.Clone()
		e := New[float64](4)
		var forces func() float64
		switch kernel {
		case "direct":
			forces = func() float64 { return e.ForcesDirect(par.P, par.Pos, par.Acc) }
		case "cell":
			cl, err := md.NewCellList(par.P.Box, par.P.Cutoff)
			if err != nil {
				t.Fatal(err)
			}
			forces = func() float64 { return e.ForcesCell(cl, par.P, par.Pos, par.Acc) }
		case "pairlist":
			nl, err := md.NewNeighborList[float64](0.4)
			if err != nil {
				t.Fatal(err)
			}
			forces = func() float64 { return e.ForcesPairlist(nl, par.P, par.Pos, par.Acc) }
		}
		for s := 0; s < steps; s++ {
			ref.Step()
			par.StepWith(forces)
		}
		for i := 0; i < ref.N(); i++ {
			if d := ref.Pos.At(i).Sub(par.Pos.At(i)).Norm(); d > 1e-8 {
				t.Fatalf("%s: trajectories diverged at atom %d by %v", kernel, i, d)
			}
		}
		e.Close()
	}
}

func TestFloat32Instantiation(t *testing.T) {
	st, _ := makeState(t, 108)
	p := md.Params[float32]{Box: float32(st.Box), Cutoff: 2.5, Dt: 0.004}
	pos := md.MakeCoords[float32](len(st.Pos))
	for i := range st.Pos {
		pos.Set(i, vec.FromV3f64[float32](st.Pos[i]))
	}
	e := New[float32](3)
	defer e.Close()
	acc := md.MakeCoords[float32](pos.Len())
	accRef := md.MakeCoords[float32](pos.Len())
	pe := e.ForcesDirect(p, pos, acc)
	peRef := md.ComputeForcesFull(p, pos, accRef)
	if rel := math.Abs(float64(pe-peRef)) / math.Abs(float64(peRef)); rel > 1e-5 {
		t.Fatalf("float32 PE mismatch: %v vs %v (rel %v)", pe, peRef, rel)
	}
}

func TestEngineDefaultsAndClose(t *testing.T) {
	e := New[float64](0)
	if e.Workers() != runtime.NumCPU() {
		t.Fatalf("New(0).Workers() = %d, want NumCPU %d", e.Workers(), runtime.NumCPU())
	}
	e.Close()
	e.Close() // idempotent

	e = New[float64](-5)
	if e.Workers() != 1 {
		t.Fatalf("New(-5).Workers() = %d, want 1", e.Workers())
	}
	e.Close()
}

func TestEmptyAndTinySystems(t *testing.T) {
	p := md.Params[float64]{Box: 10, Cutoff: 2.5, Dt: 0.004}
	e := New[float64](4)
	defer e.Close()
	// No atoms.
	if pe := e.ForcesDirect(p, md.Coords[float64]{}, md.Coords[float64]{}); pe != 0 {
		t.Fatalf("empty system PE = %v", pe)
	}
	// Fewer atoms than workers.
	pos := md.CoordsFromV3([]vec.V3[float64]{{X: 1, Y: 1, Z: 1}, {X: 2, Y: 1, Z: 1}})
	acc := md.MakeCoords[float64](2)
	accRef := md.MakeCoords[float64](2)
	pe := e.ForcesDirect(p, pos, acc)
	peRef := md.ComputeForcesFull(p, pos, accRef)
	if pe != peRef {
		t.Fatalf("2-atom PE %v, want %v", pe, peRef)
	}
	if acc.At(0) != accRef.At(0) || acc.At(1) != accRef.At(1) {
		t.Fatalf("2-atom acc %+v, want %+v", acc.V3s(), accRef.V3s())
	}
}
