package spu

import "fmt"

// DMA models the SPE's memory-flow controller: asynchronous block
// transfers between main memory and the local store, with a fixed
// per-transfer setup latency plus a bandwidth term. The paper relies on
// these transfers being cheap relative to compute (positions in,
// accelerations out, every time step); the model keeps them explicit so
// that the Figure 6 breakdown can show they are *not* the scaling
// bottleneck — thread launches are.
type DMA struct {
	SetupSec    float64 // per-transfer latency (issue + completion)
	BytesPerSec float64 // sustained bandwidth

	transfers int
	bytes     int64
	totalSec  float64
}

// DefaultDMA returns the Cell-blade numbers used by the reproduction:
// 25.6 GB/s sustained per SPE with a ~0.5 microsecond setup.
func DefaultDMA() *DMA {
	return &DMA{SetupSec: 0.5e-6, BytesPerSec: 25.6e9}
}

// Transfer models moving bytes between main memory and the local store
// and returns the modeled seconds. Zero-byte transfers still pay setup
// (a real MFC command does).
func (d *DMA) Transfer(bytes int) (float64, error) {
	if bytes < 0 {
		return 0, fmt.Errorf("spu: negative DMA size %d", bytes)
	}
	if d.BytesPerSec <= 0 {
		return 0, fmt.Errorf("spu: DMA bandwidth must be positive")
	}
	sec := d.SetupSec + float64(bytes)/d.BytesPerSec
	d.transfers++
	d.bytes += int64(bytes)
	d.totalSec += sec
	return sec, nil
}

// Transfers returns how many transfers were issued.
func (d *DMA) Transfers() int { return d.transfers }

// Bytes returns the cumulative bytes moved.
func (d *DMA) Bytes() int64 { return d.bytes }

// TotalSeconds returns the cumulative modeled transfer time.
func (d *DMA) TotalSeconds() float64 { return d.totalSec }

// Mailbox models the blocking 32-bit PPE<->SPE channel the paper uses
// to signal "more data to process" once threads are launched only on
// the first time step (section 5.1): a fixed per-message latency.
type Mailbox struct {
	LatencySec float64

	signals int
}

// DefaultMailbox returns the latency used by the reproduction (~1 µs
// per blocking mailbox message through the MMIO path).
func DefaultMailbox() *Mailbox { return &Mailbox{LatencySec: 1e-6} }

// Signal models one blocking mailbox message and returns its seconds.
func (m *Mailbox) Signal() float64 {
	m.signals++
	return m.LatencySec
}

// Signals returns how many messages were exchanged.
func (m *Mailbox) Signals() int { return m.signals }
