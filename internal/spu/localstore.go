package spu

import "fmt"

// LocalStoreSize is the fixed capacity of a Cell SPE local store.
const LocalStoreSize = 256 * 1024

// LocalStore models the SPE's single, software-managed 256 KB memory.
// Everything an SPE kernel touches — code is ignored here, only data —
// must be explicitly placed in the local store; there is no cache and
// no demand paging, so an allocation that does not fit is a hard
// programming error, exactly as on the real machine. The Cell device
// uses this to size its DMA tiles: position arrays larger than the
// store are streamed through in chunks.
type LocalStore struct {
	capacity int
	used     int
	allocs   map[string]int
}

// NewLocalStore returns a store with the standard 256 KB capacity.
func NewLocalStore() *LocalStore { return NewLocalStoreSize(LocalStoreSize) }

// NewLocalStoreSize returns a store with a custom capacity (tests and
// what-if models).
func NewLocalStoreSize(capacity int) *LocalStore {
	return &LocalStore{capacity: capacity, allocs: make(map[string]int)}
}

// Alloc reserves bytes under name. It fails if the name is taken or the
// store would overflow.
func (ls *LocalStore) Alloc(name string, bytes int) error {
	if bytes < 0 {
		return fmt.Errorf("spu: negative allocation %d for %q", bytes, name)
	}
	if _, ok := ls.allocs[name]; ok {
		return fmt.Errorf("spu: buffer %q already allocated", name)
	}
	if ls.used+bytes > ls.capacity {
		return fmt.Errorf("spu: local store overflow: %q needs %d bytes, %d of %d in use",
			name, bytes, ls.used, ls.capacity)
	}
	ls.allocs[name] = bytes
	ls.used += bytes
	return nil
}

// Free releases the named buffer.
func (ls *LocalStore) Free(name string) error {
	bytes, ok := ls.allocs[name]
	if !ok {
		return fmt.Errorf("spu: freeing unknown buffer %q", name)
	}
	delete(ls.allocs, name)
	ls.used -= bytes
	return nil
}

// Used returns the bytes currently allocated.
func (ls *LocalStore) Used() int { return ls.used }

// Capacity returns the store size.
func (ls *LocalStore) Capacity() int { return ls.capacity }

// Available returns the free bytes.
func (ls *LocalStore) Available() int { return ls.capacity - ls.used }

// Reset frees every buffer.
func (ls *LocalStore) Reset() {
	ls.allocs = make(map[string]int)
	ls.used = 0
}
