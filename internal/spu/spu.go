// Package spu models the programmable parts of a Cell Synergistic
// Processing Element that the paper's port exercises: the 4-lane
// single-precision SIMD datapath (with every emulated instruction
// tallied in a cycle ledger), the 256 KB fixed-latency local store, the
// high-bandwidth DMA engine, and the PPE<->SPE mailboxes used to signal
// new work without respawning threads.
//
// The SIMD emulation is functional: operations compute real float32
// results, so kernels written against a Context produce physics that is
// validated against the reference implementation — while their modeled
// cost is the operation tally converted by the Cell cost table. Scalar
// operations are distinct ledger classes from vector operations because
// on a real SPE scalar code runs through the same 128-bit pipes with
// extra shuffle overhead; that cost difference is precisely what the
// paper's Figure 5 optimization ladder harvests.
package spu

import (
	"math"

	"repro/internal/sim"
	"repro/internal/vec"
)

// V4 is one 128-bit SIMD register holding four float32 lanes. MD
// kernels keep x, y, z in lanes 0..2 and use lane 3 as spare — "the
// most natural way to make use of the 4-component SIMD operations"
// (section 5.1).
type V4 [4]float32

// Context is one SPE's execution context: an operation ledger plus the
// emulated register operations. Contexts are not goroutine-safe; the
// Cell device keeps one per modeled SPE.
type Context struct {
	L sim.Ledger
}

// ---- Vector (full-width) operations: one OpVec-class tally each ----

// VAdd returns a+b per lane.
func (c *Context) VAdd(a, b V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{a[0] + b[0], a[1] + b[1], a[2] + b[2], a[3] + b[3]}
}

// VSub returns a-b per lane.
func (c *Context) VSub(a, b V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{a[0] - b[0], a[1] - b[1], a[2] - b[2], a[3] - b[3]}
}

// VMul returns a*b per lane.
func (c *Context) VMul(a, b V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{a[0] * b[0], a[1] * b[1], a[2] * b[2], a[3] * b[3]}
}

// VMadd returns a*b+acc per lane (the SPE's fused multiply-add).
func (c *Context) VMadd(a, b, acc V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{a[0]*b[0] + acc[0], a[1]*b[1] + acc[1], a[2]*b[2] + acc[2], a[3]*b[3] + acc[3]}
}

// VAbs returns |a| per lane (a sign-mask and, one instruction).
func (c *Context) VAbs(a V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{abs32(a[0]), abs32(a[1]), abs32(a[2]), abs32(a[3])}
}

// VNeg returns -a per lane.
func (c *Context) VNeg(a V4) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{-a[0], -a[1], -a[2], -a[3]}
}

// VCmpGT returns an all-ones/all-zeros style mask per lane encoded as
// 1.0/0.0: lane i is 1 where a[i] > b[i].
func (c *Context) VCmpGT(a, b V4) V4 {
	c.L.Add(sim.OpVec, 1)
	var m V4
	for i := range m {
		if a[i] > b[i] {
			m[i] = 1
		}
	}
	return m
}

// VSelect returns mask?a:b per lane (selb).
func (c *Context) VSelect(mask, a, b V4) V4 {
	c.L.Add(sim.OpVec, 1)
	var r V4
	for i := range r {
		if mask[i] != 0 {
			r[i] = a[i]
		} else {
			r[i] = b[i]
		}
	}
	return r
}

// VCopysign gives each lane of mag the sign of the matching lane of
// sign (two logical ops on real hardware, tallied as one vector op —
// the fidelity that matters is scalar-vs-vector, not single-cycle
// splits).
func (c *Context) VCopysign(mag, sign V4) V4 {
	c.L.Add(sim.OpVec, 1)
	var r V4
	for i := range r {
		r[i] = float32(math.Copysign(float64(mag[i]), float64(sign[i])))
	}
	return r
}

// VSplat broadcasts x to all lanes.
func (c *Context) VSplat(x float32) V4 {
	c.L.Add(sim.OpVec, 1)
	return V4{x, x, x, x}
}

// VSqrt returns sqrt(a) per lane (rsqrt estimate + Newton refinement on
// the real part; a OpVecSqrt-class tally here).
func (c *Context) VSqrt(a V4) V4 {
	c.L.Add(sim.OpVecSqrt, 1)
	return V4{sqrt32(a[0]), sqrt32(a[1]), sqrt32(a[2]), sqrt32(a[3])}
}

// VRecip returns 1/a per lane.
func (c *Context) VRecip(a V4) V4 {
	c.L.Add(sim.OpVecDiv, 1)
	return V4{1 / a[0], 1 / a[1], 1 / a[2], 1 / a[3]}
}

// HAdd3 returns a[0]+a[1]+a[2]: the horizontal reduction used for dot
// products of 3-vectors stored in SIMD lanes. Costs two vector ops
// (shuffle + add chains).
func (c *Context) HAdd3(a V4) float32 {
	c.L.Add(sim.OpVec, 2)
	return a[0] + a[1] + a[2]
}

// ---- Scalar operations: distinct, costlier ledger classes ----

// Add returns a+b as SPE scalar code.
func (c *Context) Add(a, b float32) float32 {
	c.L.Add(sim.OpFAdd, 1)
	return a + b
}

// Sub returns a-b as SPE scalar code.
func (c *Context) Sub(a, b float32) float32 {
	c.L.Add(sim.OpFAdd, 1)
	return a - b
}

// Mul returns a*b as SPE scalar code.
func (c *Context) Mul(a, b float32) float32 {
	c.L.Add(sim.OpFMul, 1)
	return a * b
}

// Div returns a/b (reciprocal estimate + refinement on hardware).
func (c *Context) Div(a, b float32) float32 {
	c.L.Add(sim.OpFDiv, 1)
	return a / b
}

// Sqrt returns sqrt(a) as SPE scalar code.
func (c *Context) Sqrt(a float32) float32 {
	c.L.Add(sim.OpFSqrt, 1)
	return sqrt32(a)
}

// Abs returns |a| as SPE scalar code.
func (c *Context) Abs(a float32) float32 {
	c.L.Add(sim.OpFAdd, 1) // sign-mask op, arithmetic-pipe cost
	return abs32(a)
}

// Copysign returns |mag| with sign's sign, as the scalar "extra math"
// of the paper's first optimization step.
func (c *Context) Copysign(mag, sign float32) float32 {
	c.L.Add(sim.OpFMul, 1)
	return float32(math.Copysign(float64(mag), float64(sign)))
}

// Cmp evaluates a > b and tallies the compare.
func (c *Context) Cmp(a, b float32) bool {
	c.L.Add(sim.OpCmp, 1)
	return a > b
}

// Branch models a data-dependent conditional branch. The SPE has no
// branch prediction: fall-through is free-ish (one issue slot) but a
// taken data-dependent branch flushes the pipeline. The caller passes
// the actual outcome so the penalty is charged exactly when the real
// control flow diverges.
func (c *Context) Branch(taken bool) {
	c.L.Add(sim.OpBranch, 1)
	if taken {
		c.L.Add(sim.OpBranchMiss, 1)
	}
}

// ---- Local-store traffic ----

// Load3 reads the three components of an element as scalar code (three
// element loads plus extraction shuffles).
func (c *Context) Load3(v vec.V3[float32]) (x, y, z float32) {
	c.L.Add(sim.OpLoad, 3)
	return v.X, v.Y, v.Z
}

// LoadV reads an element as one aligned quadword into lanes 0..2.
func (c *Context) LoadV(v vec.V3[float32]) V4 {
	c.L.Add(sim.OpLoad, 1)
	return V4{v.X, v.Y, v.Z, 0}
}

// Store3 writes the three components as scalar code.
func (c *Context) Store3(x, y, z float32) vec.V3[float32] {
	c.L.Add(sim.OpStore, 3)
	return vec.V3[float32]{X: x, Y: y, Z: z}
}

// StoreV writes lanes 0..2 as one quadword.
func (c *Context) StoreV(v V4) vec.V3[float32] {
	c.L.Add(sim.OpStore, 1)
	return vec.V3[float32]{X: v[0], Y: v[1], Z: v[2]}
}

// LoopIter tallies the integer/address overhead of one inner-loop
// iteration (increment, compare, address arithmetic).
func (c *Context) LoopIter() {
	c.L.Add(sim.OpInt, 2)
}

func abs32(x float32) float32 {
	return math.Float32frombits(math.Float32bits(x) &^ (1 << 31))
}

func sqrt32(x float32) float32 {
	return float32(math.Sqrt(float64(x)))
}
