package spu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/vec"
)

func f32(x float64) float32 { return float32(math.Mod(x, 1e4)) }

func nonzero(x float32) float32 {
	if x == 0 || math.IsNaN(float64(x)) || math.IsInf(float64(x), 0) {
		return 1
	}
	return x
}

func TestVectorOpsComputeCorrectly(t *testing.T) {
	prop := func(a0, a1, a2, a3, b0, b1, b2, b3 float64) bool {
		var c Context
		a := V4{f32(a0), f32(a1), f32(a2), f32(a3)}
		b := V4{f32(b0), f32(b1), f32(b2), f32(b3)}
		add := c.VAdd(a, b)
		sub := c.VSub(a, b)
		mul := c.VMul(a, b)
		madd := c.VMadd(a, b, add)
		for i := 0; i < 4; i++ {
			if add[i] != a[i]+b[i] || sub[i] != a[i]-b[i] || mul[i] != a[i]*b[i] {
				return false
			}
			if madd[i] != a[i]*b[i]+add[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVectorOpsAreTallied(t *testing.T) {
	var c Context
	a := V4{1, 2, 3, 4}
	c.VAdd(a, a)
	c.VMul(a, a)
	c.VSqrt(a)
	c.VRecip(a)
	c.HAdd3(a)
	if got := c.L.Count(sim.OpVec); got != 2+2 { // add, mul, hadd3(x2)
		t.Fatalf("OpVec count = %d, want 4", got)
	}
	if c.L.Count(sim.OpVecSqrt) != 1 || c.L.Count(sim.OpVecDiv) != 1 {
		t.Fatalf("sqrt/div tallies wrong: %v", c.L.String())
	}
}

func TestVAbsVNeg(t *testing.T) {
	var c Context
	a := V4{-1, 2, -3, 0}
	if got := c.VAbs(a); got != (V4{1, 2, 3, 0}) {
		t.Fatalf("VAbs = %v", got)
	}
	if got := c.VNeg(a); got != (V4{1, -2, 3, 0}) { // -0 == 0
		t.Fatalf("VNeg = %v", got)
	}
}

func TestVCmpSelect(t *testing.T) {
	var c Context
	a := V4{1, 5, 3, 0}
	b := V4{2, 4, 3, -1}
	mask := c.VCmpGT(a, b)
	if mask != (V4{0, 1, 0, 1}) {
		t.Fatalf("VCmpGT = %v", mask)
	}
	sel := c.VSelect(mask, a, b)
	if sel != (V4{2, 5, 3, 0}) {
		t.Fatalf("VSelect = %v", sel)
	}
}

func TestVCopysign(t *testing.T) {
	var c Context
	got := c.VCopysign(V4{1, 2, 3, 4}, V4{-1, 1, -0.5, 0})
	if got[0] != -1 || got[1] != 2 || got[2] != -3 || got[3] != 4 {
		t.Fatalf("VCopysign = %v", got)
	}
}

func TestVSplatHAdd3(t *testing.T) {
	var c Context
	if got := c.VSplat(7); got != (V4{7, 7, 7, 7}) {
		t.Fatalf("VSplat = %v", got)
	}
	if got := c.HAdd3(V4{1, 2, 3, 100}); got != 6 {
		t.Fatalf("HAdd3 = %v (lane 3 must be excluded)", got)
	}
}

func TestScalarOps(t *testing.T) {
	var c Context
	if c.Add(2, 3) != 5 || c.Sub(2, 3) != -1 || c.Mul(2, 3) != 6 || c.Div(6, 3) != 2 {
		t.Fatal("scalar arithmetic wrong")
	}
	if c.Sqrt(9) != 3 || c.Abs(-4) != 4 {
		t.Fatal("sqrt/abs wrong")
	}
	if c.Copysign(3, -1) != -3 {
		t.Fatal("copysign wrong")
	}
	if !c.Cmp(2, 1) || c.Cmp(1, 2) {
		t.Fatal("cmp wrong")
	}
}

func TestBranchPenaltyOnlyWhenTaken(t *testing.T) {
	var c Context
	c.Branch(false)
	if c.L.Count(sim.OpBranchMiss) != 0 {
		t.Fatal("not-taken branch charged a flush")
	}
	c.Branch(true)
	if c.L.Count(sim.OpBranchMiss) != 1 {
		t.Fatal("taken branch did not charge a flush")
	}
	if c.L.Count(sim.OpBranch) != 2 {
		t.Fatal("branches not tallied")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	var c Context
	v := vec.V3[float32]{X: 1, Y: 2, Z: 3}
	x, y, z := c.Load3(v)
	if got := c.Store3(x, y, z); got != v {
		t.Fatalf("scalar round trip = %v", got)
	}
	q := c.LoadV(v)
	if got := c.StoreV(q); got != v {
		t.Fatalf("vector round trip = %v", got)
	}
	if c.L.Count(sim.OpLoad) != 4 || c.L.Count(sim.OpStore) != 4 {
		t.Fatalf("load/store tallies wrong: %v", c.L.String())
	}
}

func TestVSqrtMatchesScalar(t *testing.T) {
	prop := func(raw float64) bool {
		x := nonzero(f32(math.Abs(raw)))
		var c Context
		v := c.VSqrt(V4{x, x, x, x})
		return v[0] == float32(math.Sqrt(float64(x)))
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVRecip(t *testing.T) {
	prop := func(raw float64) bool {
		x := nonzero(f32(raw))
		var c Context
		v := c.VRecip(V4{x, 1, 1, 1})
		return v[0] == 1/x
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLocalStoreAllocFree(t *testing.T) {
	ls := NewLocalStore()
	if ls.Capacity() != LocalStoreSize {
		t.Fatalf("capacity = %d", ls.Capacity())
	}
	if err := ls.Alloc("pos", 100*1024); err != nil {
		t.Fatal(err)
	}
	if err := ls.Alloc("acc", 100*1024); err != nil {
		t.Fatal(err)
	}
	if ls.Used() != 200*1024 || ls.Available() != 56*1024 {
		t.Fatalf("used=%d available=%d", ls.Used(), ls.Available())
	}
	if err := ls.Alloc("overflow", 100*1024); err == nil {
		t.Fatal("overflow allocation accepted")
	}
	if err := ls.Free("pos"); err != nil {
		t.Fatal(err)
	}
	if err := ls.Alloc("overflow", 100*1024); err != nil {
		t.Fatalf("allocation after free failed: %v", err)
	}
}

func TestLocalStoreErrors(t *testing.T) {
	ls := NewLocalStoreSize(1024)
	if err := ls.Alloc("a", -1); err == nil {
		t.Fatal("negative alloc accepted")
	}
	if err := ls.Alloc("a", 512); err != nil {
		t.Fatal(err)
	}
	if err := ls.Alloc("a", 10); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if err := ls.Free("nope"); err == nil {
		t.Fatal("unknown free accepted")
	}
	ls.Reset()
	if ls.Used() != 0 {
		t.Fatal("Reset left usage")
	}
}

func TestLocalStoreInvariant(t *testing.T) {
	// Property: used never exceeds capacity under arbitrary alloc/free.
	prop := func(sizes []uint16) bool {
		ls := NewLocalStoreSize(4096)
		names := []string{}
		for i, s := range sizes {
			name := string(rune('a' + i%26))
			if err := ls.Alloc(name, int(s)); err == nil {
				names = append(names, name)
			}
			if ls.Used() > ls.Capacity() || ls.Used() < 0 {
				return false
			}
			if len(names) > 2 {
				if err := ls.Free(names[0]); err != nil {
					return false
				}
				names = names[1:]
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDMAModel(t *testing.T) {
	d := &DMA{SetupSec: 1e-6, BytesPerSec: 1e9}
	sec, err := d.Transfer(1000)
	if err != nil {
		t.Fatal(err)
	}
	want := 1e-6 + 1000/1e9
	if math.Abs(sec-want) > 1e-18 {
		t.Fatalf("Transfer = %v, want %v", sec, want)
	}
	if _, err := d.Transfer(0); err != nil {
		t.Fatal("zero transfer rejected")
	}
	if _, err := d.Transfer(-1); err == nil {
		t.Fatal("negative transfer accepted")
	}
	if d.Transfers() != 2 || d.Bytes() != 1000 {
		t.Fatalf("counters: %d transfers, %d bytes", d.Transfers(), d.Bytes())
	}
	if math.Abs(d.TotalSeconds()-(want+1e-6)) > 1e-15 {
		t.Fatalf("TotalSeconds = %v", d.TotalSeconds())
	}
}

func TestDMAZeroBandwidth(t *testing.T) {
	d := &DMA{SetupSec: 1e-6}
	if _, err := d.Transfer(1); err == nil {
		t.Fatal("zero-bandwidth DMA accepted")
	}
}

func TestDMABandwidthDominatesLargeTransfers(t *testing.T) {
	d := DefaultDMA()
	small, _ := d.Transfer(128)
	large, _ := d.Transfer(16 * 1024 * 1024)
	if large <= small {
		t.Fatal("large transfer not slower than small")
	}
	// For 16 MB at 25.6 GB/s, bandwidth term ~625 µs >> setup 0.5 µs.
	if large < 100e-6 {
		t.Fatalf("16MB transfer took %v, bandwidth term missing", large)
	}
}

func TestMailbox(t *testing.T) {
	m := &Mailbox{LatencySec: 2e-6}
	if m.Signal() != 2e-6 {
		t.Fatal("Signal latency wrong")
	}
	m.Signal()
	if m.Signals() != 2 {
		t.Fatalf("Signals = %d", m.Signals())
	}
}
