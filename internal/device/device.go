// Package device defines the common contract between the experiment
// runner (internal/core) and the four architecture models (the Opteron
// baseline, the Cell BE, the GPU, and the Cray MTA-2).
//
// A device takes a Workload — an initial condition plus MD parameters —
// runs the paper's kernel on its modeled hardware in its native
// precision, and returns a Result carrying both the physics output
// (energies, used by core's cross-validation against the reference
// implementation) and the modeled runtime with its component breakdown.
package device

import (
	"fmt"
	"math"

	"repro/internal/lattice"
	"repro/internal/sim"
)

// Workload describes one MD run. All devices receive the identical
// initial condition, which is what makes the physics cross-checkable.
type Workload struct {
	State  *lattice.State // initial positions/velocities and box (float64)
	Cutoff float64        // interaction cutoff
	Dt     float64        // integration time step
	Steps  int            // number of velocity-Verlet steps (>= 0)
}

// Validate reports whether the workload is runnable.
func (w Workload) Validate() error {
	if w.State == nil {
		return fmt.Errorf("device: workload has no initial state")
	}
	if len(w.State.Pos) == 0 {
		return fmt.Errorf("device: workload has zero atoms")
	}
	if w.Cutoff <= 0 {
		return fmt.Errorf("device: cutoff must be positive, got %v", w.Cutoff)
	}
	if 2*w.Cutoff > w.State.Box {
		return fmt.Errorf("device: cutoff %v exceeds half the box %v", w.Cutoff, w.State.Box)
	}
	if w.Dt <= 0 {
		return fmt.Errorf("device: dt must be positive, got %v", w.Dt)
	}
	if w.Steps < 0 {
		return fmt.Errorf("device: steps must be non-negative, got %d", w.Steps)
	}
	if len(w.State.Vel) != len(w.State.Pos) {
		return fmt.Errorf("device: %d velocities for %d positions", len(w.State.Vel), len(w.State.Pos))
	}
	for i, p := range w.State.Pos {
		if !finite(p.X) || !finite(p.Y) || !finite(p.Z) {
			return fmt.Errorf("device: position %d is not finite: %+v", i, p)
		}
	}
	for i, v := range w.State.Vel {
		if !finite(v.X) || !finite(v.Y) || !finite(v.Z) {
			return fmt.Errorf("device: velocity %d is not finite: %+v", i, v)
		}
	}
	return nil
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// N returns the atom count.
func (w Workload) N() int {
	if w.State == nil {
		return 0
	}
	return len(w.State.Pos)
}

// Result is the outcome of running a workload on a device.
type Result struct {
	Device  string // device name, e.g. "cell"
	Variant string // device-specific configuration, e.g. "8spe/amortized"
	N       int
	Steps   int

	// Physics outputs, widened to float64 regardless of the device's
	// native precision. These are the values core validates.
	PE, KE float64

	// Modeled runtime split into named components ("compute", "dma",
	// "spawn", "mailbox", "pcie", "dispatch", ...). Time.Total() is the
	// number every figure plots.
	Time *sim.Breakdown

	// Ledger holds the modeled operation counts behind the compute
	// component (diagnostic; not all devices fill every class).
	Ledger sim.Ledger
}

// Seconds returns the total modeled runtime.
func (r *Result) Seconds() float64 { return r.Time.Total() }

// Device is one modeled architecture.
type Device interface {
	// Name identifies the device ("opteron", "cell", "gpu", "mta").
	Name() string
	// Run executes the workload and returns the modeled result.
	Run(w Workload) (*Result, error)
}
