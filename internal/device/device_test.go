package device

import (
	"testing"

	"repro/internal/lattice"
	"repro/internal/sim"
)

func validState(t *testing.T) *lattice.State {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: 64, Density: 0.8, Temperature: 1, Kind: lattice.FCC, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWorkloadValidate(t *testing.T) {
	st := validState(t)
	good := Workload{State: st, Cutoff: 2.0, Dt: 0.004, Steps: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Workload)
	}{
		{"nil state", func(w *Workload) { w.State = nil }},
		{"zero atoms", func(w *Workload) { w.State = &lattice.State{Box: 5} }},
		{"zero cutoff", func(w *Workload) { w.Cutoff = 0 }},
		{"negative cutoff", func(w *Workload) { w.Cutoff = -1 }},
		{"cutoff too large", func(w *Workload) { w.Cutoff = st.Box }},
		{"zero dt", func(w *Workload) { w.Dt = 0 }},
		{"negative steps", func(w *Workload) { w.Steps = -1 }},
	}
	for _, c := range cases {
		w := good
		c.mod(&w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestWorkloadZeroStepsValid(t *testing.T) {
	w := Workload{State: validState(t), Cutoff: 2.0, Dt: 0.004, Steps: 0}
	if err := w.Validate(); err != nil {
		t.Fatalf("zero-step workload rejected: %v", err)
	}
}

func TestWorkloadN(t *testing.T) {
	w := Workload{}
	if w.N() != 0 {
		t.Fatal("nil-state N != 0")
	}
	w.State = validState(t)
	if w.N() != 64 {
		t.Fatalf("N = %d", w.N())
	}
}

func TestResultSeconds(t *testing.T) {
	bd := sim.NewBreakdown()
	bd.Add("compute", 1.5)
	bd.Add("dma", 0.5)
	r := &Result{Time: bd}
	if r.Seconds() != 2.0 {
		t.Fatalf("Seconds = %v", r.Seconds())
	}
}

func TestWorkloadValidateRejectsNonFiniteState(t *testing.T) {
	st := validState(t)
	w := Workload{State: st, Cutoff: 2.0, Dt: 0.004, Steps: 1}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	st.Pos[3].Y = nan()
	if err := w.Validate(); err == nil {
		t.Fatal("NaN position accepted")
	}
	st.Pos[3].Y = 1
	st.Vel[5].Z = inf()
	if err := w.Validate(); err == nil {
		t.Fatal("Inf velocity accepted")
	}
	st.Vel[5].Z = 0
	st.Vel = st.Vel[:10]
	if err := w.Validate(); err == nil {
		t.Fatal("mismatched velocity count accepted")
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { one := 1.0; z := 0.0; return one / z }
