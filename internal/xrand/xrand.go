// Package xrand provides a small, deterministic, allocation-free random
// number generator used to build reproducible initial conditions for
// molecular-dynamics experiments.
//
// The generator is SplitMix64 (Steele, Lea, Flood: "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). It passes BigCrush, has
// a 2^64 period, and — unlike math/rand's global source — carries no
// hidden global state, so two Sources seeded identically always produce
// identical streams regardless of what other code does. Every experiment
// in this repository derives its atoms' initial velocities from an
// explicit Source, which is what makes device-vs-reference physics
// validation meaningful.
package xrand

import "math"

// Source is a deterministic pseudorandom number generator. The zero
// value is a valid generator seeded with 0.
type Source struct {
	state uint64

	// Box-Muller produces normals in pairs; the spare is cached here.
	haveSpare bool
	spare     float64
}

// New returns a Source seeded with seed. Distinct seeds yield
// statistically independent streams.
func New(seed uint64) *Source {
	return &Source{state: seed}
}

// Seed resets the generator to the stream identified by seed and
// discards any cached normal variate.
func (s *Source) Seed(seed uint64) {
	s.state = seed
	s.haveSpare = false
	s.spare = 0
}

// Uint64 returns the next value in the stream, uniform over all 64-bit
// integers.
func (s *Source) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform value in [0, 1) with 24 bits of precision.
func (s *Source) Float32() float32 {
	return float32(s.Uint64()>>40) * (1.0 / (1 << 24))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's multiply-shift rejection method, debiased.
	bound := uint64(n)
	for {
		v := s.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	lo = a * b
	hi = a1*b1 + (t >> 32) + (a0*b1+t&mask32)>>32
	return hi, lo
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1) via
// the Box-Muller transform. Variates are generated in pairs; the second
// of each pair is cached and returned by the next call.
func (s *Source) NormFloat64() float64 {
	if s.haveSpare {
		s.haveSpare = false
		return s.spare
	}
	var u, v, r2 float64
	for {
		u = 2*s.Float64() - 1
		v = 2*s.Float64() - 1
		r2 = u*u + v*v
		if r2 > 0 && r2 < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(r2) / r2)
	s.spare = v * f
	s.haveSpare = true
	return u * f
}

// Shuffle permutes the first n elements using swap, with Fisher-Yates.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}
