package xrand

import (
	"math"
	"math/bits"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at step %d: %d != %d", i, av, bv)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical values out of 1000", same)
	}
}

func TestSeedResets(t *testing.T) {
	s := New(7)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = s.Uint64()
	}
	s.Seed(7)
	for i := range first {
		if got := s.Uint64(); got != first[i] {
			t.Fatalf("after re-seed, value %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSeedClearsNormalCache(t *testing.T) {
	s := New(3)
	s.NormFloat64() // populates the spare
	s.Seed(3)
	a := s.NormFloat64()
	b := New(3).NormFloat64()
	if a != b {
		t.Fatalf("Seed did not clear Box-Muller cache: %v != %v", a, b)
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 100000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	s := New(99)
	for i := 0; i < 100000; i++ {
		v := s.Float32()
		if v < 0 || v >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(5)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	prop := func(seed uint64, nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		s := New(seed)
		for i := 0; i < 100; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	s := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d has %d draws, want ~%v", i, c, want)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(21)
	const n = 200000
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestMul64MatchesBits(t *testing.T) {
	prop := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		whi, wlo := bits.Mul64(a, b)
		return hi == whi && lo == wlo
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 1
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		New(seed).Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, n)
		for _, v := range xs {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBitBalance(t *testing.T) {
	// Each output bit should be set ~half the time.
	s := New(1234)
	const n = 50000
	var ones [64]int
	for i := 0; i < n; i++ {
		v := s.Uint64()
		for b := 0; b < 64; b++ {
			if v&(1<<b) != 0 {
				ones[b]++
			}
		}
	}
	for b, c := range ones {
		frac := float64(c) / n
		if frac < 0.48 || frac > 0.52 {
			t.Fatalf("bit %d set fraction %v, want ~0.5", b, frac)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	s := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	s := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += s.NormFloat64()
	}
	_ = sink
}
