package analysis

import (
	"go/ast"
	"go/token"
)

// CtxLoop flags long-running loops in the run, scheduling, serving,
// and chaos layers — mdrun, parallel, guard, fleet, serve,
// cmd/mdserve, chaos, cmd/mdchaos — that drive step, worker, or
// backoff functions without ever observing a context. The repository's
// cancellation contract (PR 3) is that a cancelled run stops within one
// MD step: deadlines propagate from the fleet scheduler through
// guard.RunContext and mdrun.RunContext into the parallel worker pool.
// A loop that steps the simulation but never consults ctx is a hole in
// that chain; it turns a per-replica timeout into a wish.
//
// A loop complies when its body (closures excluded) checks ctx.Err(),
// selects on ctx.Done(), or passes a context.Context into a call — the
// last because handing the context to the step function is exactly how
// the check is delegated downward.
var CtxLoop = &Analyzer{
	Name:  "ctxloop",
	Doc:   "stepping loop without a cancellation check in run/scheduler packages",
	Scope: []string{"mdrun", "parallel", "guard", "fleet", "serve", "cmd/mdserve", "chaos", "cmd/mdchaos"},
	Run:   runCtxLoop,
}

// ctxSteppers names the functions whose presence marks a loop as
// long-running: MD step drivers, run entry points, kernel evaluations,
// and the sleep/backoff/waiting primitives of the retry machinery.
var ctxSteppers = map[string]bool{
	"Step": true, "StepWith": true, "StepWithE": true,
	"Run": true, "RunContext": true,
	"ForcesDirect": true, "ForcesPairlist": true, "ForcesCell": true,
	"TryForcesDirect": true, "TryForcesPairlist": true, "TryForcesCell": true,
	"BuildPairlist": true, "BuildRow": true,
	"Sleep": true, "Submit": true, "Wait": true,
	"attempt": true, "backoff": true,
}

func runCtxLoop(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var pos token.Pos
			switch loop := n.(type) {
			case *ast.ForStmt:
				body, pos = loop.Body, loop.For
			case *ast.RangeStmt:
				body, pos = loop.Body, loop.For
			default:
				return true
			}
			stepper := firstStepperCall(body)
			if stepper == "" {
				return true
			}
			if loopObservesContext(p, body) {
				return true
			}
			p.Reportf(pos, "loop calls %s but never observes a context: check ctx.Err(), select on ctx.Done(), or pass ctx into the call so cancellation lands within one step", stepper)
			return true
		})
	}
}

// firstStepperCall returns the name of the first step/worker/backoff
// call in the loop body (closures excluded), or "".
func firstStepperCall(body *ast.BlockStmt) string {
	name := ""
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if cn := calleeName(call); ctxSteppers[cn] {
				name = cn
			}
		}
		return true
	})
	return name
}

// loopObservesContext reports whether the loop body consults a context:
// ctx.Err()/ctx.Done() on a context.Context receiver, or any call
// taking a context.Context argument.
func loopObservesContext(p *Pass, body *ast.BlockStmt) bool {
	observed := false
	inspectSkipFuncLit(body, func(n ast.Node) bool {
		if observed {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextType(p.TypeOf(sel.X)) {
				observed = true
				return false
			}
		}
		for _, arg := range call.Args {
			if t := p.TypeOf(arg); t != nil && isContextType(t) {
				observed = true
				return false
			}
		}
		return true
	})
	return observed
}
