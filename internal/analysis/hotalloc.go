package analysis

import (
	"go/token"
	"sort"
)

// HotAlloc is the hot-path allocation auditor. It reruns the
// compiler's escape analysis over every package that contributes a
// function to the certified hot set (the union of the kernel roots'
// reachable cones) and maps each reported heap escape onto the hot
// function containing it. De Fabritiis's Cell port and van Meel's GPU
// port both credit allocation-free inner loops for their throughput;
// this rule turns that practice into a mechanical inventory:
//
//   - Every heap allocation on a per-step path is either annotated
//     `//mdlint:ignore hotalloc <reason>` — an amortized rebuild
//     buffer, a grow-once scratch slice — or it fails the lint.
//   - Annotated or not, every site lands in the certificate's hotalloc
//     ledger. The committed ledger is the "before" count the SoA/arena
//     refactor (ROADMAP) must drive to zero: the annotation silences
//     the gate, not the accounting.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "heap allocation (compiler escape analysis) inside the certified hot set",
	RunModule: runHotAlloc,
}

// declRange is one hot declaration's line span within a file.
type declRange struct {
	start, end token.Pos
	node       *FuncNode
}

func runHotAlloc(mp *ModulePass) {
	// Which packages hold hot functions, and the hot declaration ranges
	// per file.
	ranges := make(map[string][]declRange) // file -> hot decls
	hotPkgs := make(map[string]*Package)
	for _, node := range mp.Hot {
		pos := mp.Fset.Position(node.Decl.Pos())
		ranges[pos.Filename] = append(ranges[pos.Filename], declRange{
			start: node.Decl.Pos(), end: node.Decl.End(), node: node,
		})
		hotPkgs[node.Pkg.Path] = node.Pkg
	}
	pkgPaths := make([]string, 0, len(hotPkgs))
	for p := range hotPkgs {
		pkgPaths = append(pkgPaths, p)
	}
	sort.Strings(pkgPaths)

	for _, pkgPath := range pkgPaths {
		pkg := hotPkgs[pkgPath]
		sites, err := escapeSites(mp.Loaded, pkg)
		if err != nil {
			mp.ReportAt("", 0, 0, "escape analysis failed for %s: %v", pkgPath, err)
			continue
		}
		for _, site := range sites {
			node := hotDeclAt(mp.Fset, ranges[site.File], site.Line)
			if node == nil {
				continue // allocation in a cold function of a hot package
			}
			mp.Cert.Hotalloc.Sites = append(mp.Cert.Hotalloc.Sites, AllocSite{
				Func: node.Key, File: mp.relPath(site.File), Line: site.Line, What: site.What,
			})
			mp.reportPkgAt(pkg, site.File, site.Line, site.Col,
				"%s in hot function %s: per-step paths must not allocate — preallocate, or annotate the amortized case (//mdlint:ignore hotalloc <why>)",
				site.What, node.Key)
		}
	}
}

// hotDeclAt returns the hot function whose declaration spans the given
// line of a file, or nil.
func hotDeclAt(fset *token.FileSet, decls []declRange, line int) *FuncNode {
	for _, d := range decls {
		if fset.Position(d.start).Line <= line && line <= fset.Position(d.end).Line {
			return d.node
		}
	}
	return nil
}
