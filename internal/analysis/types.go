package analysis

import (
	"go/ast"
	"go/types"
)

// Float width classification for the precision and floatdet rules.
const (
	notFloat     = 0
	float32Width = 32
	float64Width = 64
	// genericFloat is a type parameter constrained to float widths
	// (vec.Float-style): its concrete width is chosen at instantiation.
	genericFloat = 1
)

// floatWidth classifies a type: concrete float32/float64 (through named
// types), a float-constrained type parameter, or not a float at all.
func floatWidth(t types.Type) int {
	if t == nil {
		return notFloat
	}
	if tp, ok := types.Unalias(t).(*types.TypeParam); ok {
		if constraintIsFloat(tp) {
			return genericFloat
		}
		return notFloat
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Float32:
			return float32Width
		case types.Float64:
			return float64Width
		case types.UntypedFloat:
			// Untyped constants adapt to their context losslessly per
			// the spec's representability rules; not a width change.
			return notFloat
		}
	}
	return notFloat
}

// constraintIsFloat reports whether every term of a type parameter's
// constraint is a float width — the vec.Float shape.
func constraintIsFloat(tp *types.TypeParam) bool {
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	sawTerm := false
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		emb := iface.EmbeddedType(i)
		terms := []*types.Term{}
		switch e := emb.Underlying().(type) {
		case *types.Union:
			for j := 0; j < e.Len(); j++ {
				terms = append(terms, e.Term(j))
			}
		default:
			terms = append(terms, types.NewTerm(false, emb))
		}
		for _, term := range terms {
			sawTerm = true
			b, ok := term.Type().Underlying().(*types.Basic)
			if !ok || (b.Kind() != types.Float32 && b.Kind() != types.Float64) {
				return false
			}
		}
	}
	return sawTerm
}

// widthName renders a float width for messages.
func widthName(w int) string {
	switch w {
	case float32Width:
		return "float32"
	case float64Width:
		return "float64"
	case genericFloat:
		return "generic float"
	}
	return "non-float"
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// calleeName returns the bare name of a call's callee: the selector
// name for method/package calls, the identifier for plain calls, "".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Name
	case *ast.Ident:
		return fun.Name
	}
	return ""
}

// inspectSkipFuncLit walks the subtree rooted at n, calling fn for each
// node but not descending into function literals: a closure's body runs
// on its own schedule, so loop- and statement-level rules must not
// attribute its contents to the enclosing code.
func inspectSkipFuncLit(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return fn(m)
	})
}

// enclosingFuncs pairs each top-level function declaration with its
// body for analyzers that need the declaration context.
func enclosingFuncs(f *ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			out = append(out, fd)
		}
	}
	return out
}
