package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the whole-program passes
// (puredet, hotalloc) certify against. Nodes are the function
// declarations of every loaded package; edges are resolved through the
// type-checked ASTs — and, for cross-package callees, through the same
// gc export-data importer the loader type-checks against, so a
// reference to md.ComputeForces from internal/parallel lands on the
// node built from internal/md's own source.
//
// The graph is deliberately conservative in the direction certification
// needs:
//
//   - A *reference* to a function (passing md.ComputeForces as a value,
//     taking a method value) is an edge, not just a direct call: a
//     kernel that hands a function onward may cause it to run on the
//     hot path, so it must be as clean as a direct callee.
//   - Function literals are attributed to the declaration that creates
//     them: the closure Step passes to StepWith runs inside the step,
//     so its calls are Step's calls.
//   - Call sites the graph cannot resolve statically — calls through
//     func-typed values, fields, or interface methods — are recorded as
//     dynamic sites. They do not silently truncate the reachable set:
//     puredet refuses to certify a root whose cone contains a dynamic
//     site that is not on the declared allowlist.

// FuncKey is the stable, order-free identity of a function:
// "importpath:Func" for package functions, "importpath:Recv.Func" for
// methods (receiver named type, pointer and instantiation stripped).
// Root specs, allowlist entries, and certificate entries all use it.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return pkgPath + ":" + fn.Name()
	}
	t := sig.Recv().Type()
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		return pkgPath + ":" + named.Obj().Name() + "." + fn.Name()
	}
	return pkgPath + ":?." + fn.Name()
}

// ExtCall is a call (or reference) that leaves the loaded module: a
// function whose body the graph has no syntax for. The puredet source
// check matches these against the nondeterminism-source table.
type ExtCall struct {
	PkgPath string
	Name    string
	Pos     token.Pos
}

// DynSite is a call the graph cannot resolve statically: a func-typed
// parameter or field being invoked, or an interface method call.
type DynSite struct {
	Desc string // "forces" / "context.Context.Err" / "repro/internal/faults.Injector.Fire"
	Pos  token.Pos
}

// FuncNode is one declared function with its outgoing edges.
type FuncNode struct {
	Key      string
	Pkg      *Package
	Decl     *ast.FuncDecl
	Calls    []string // FuncKeys of loaded callees/referents, sorted, deduped
	External []ExtCall
	Dynamic  []DynSite
	Spawns   []token.Pos // `go` statements launched by this function

	calls map[string]bool
}

// CallGraph is the module-wide graph over every loaded package.
type CallGraph struct {
	Fset  *token.FileSet
	Nodes map[string]*FuncNode
}

// buildGraph constructs the call graph for the loaded packages.
func buildGraph(ld *Loaded) *CallGraph {
	g := &CallGraph{Fset: ld.Fset, Nodes: make(map[string]*FuncNode)}
	loaded := make(map[string]bool, len(ld.Pkgs))
	for _, pkg := range ld.Pkgs {
		loaded[pkg.Path] = true
	}

	// Pass 1: a node per function declaration.
	for _, pkg := range ld.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				key := FuncKey(fn)
				g.Nodes[key] = &FuncNode{
					Key: key, Pkg: pkg, Decl: fd,
					calls: make(map[string]bool),
				}
			}
		}
	}

	// Pass 2: edges, external calls, dynamic sites, goroutine spawns.
	for _, pkg := range ld.Pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.Nodes[FuncKey(fn)]
				walkFuncBody(pkg, fd, node, loaded)
			}
		}
	}

	for _, n := range g.Nodes {
		n.Calls = make([]string, 0, len(n.calls))
		for k := range n.calls {
			n.Calls = append(n.Calls, k)
		}
		sort.Strings(n.Calls)
	}
	return g
}

// walkFuncBody attributes everything inside fd (function literals
// included — a closure runs on whatever path its creator put it on) to
// node.
func walkFuncBody(pkg *Package, fd *ast.FuncDecl, node *FuncNode, loaded map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.Ident:
			// Every use of a function object is an edge (loaded) or an
			// external record: references count the same as calls.
			obj, ok := pkg.Info.Uses[v].(*types.Func)
			if !ok || obj.Pkg() == nil || isInterfaceMethod(obj) {
				return true
			}
			if loaded[obj.Pkg().Path()] {
				node.calls[FuncKey(obj)] = true
			} else {
				node.External = append(node.External, ExtCall{
					PkgPath: obj.Pkg().Path(), Name: extName(obj), Pos: v.Pos(),
				})
			}
		case *ast.CallExpr:
			if desc, ok := dynamicCallee(pkg, v); ok {
				node.Dynamic = append(node.Dynamic, DynSite{Desc: desc, Pos: v.Pos()})
			}
		case *ast.GoStmt:
			node.Spawns = append(node.Spawns, v.Pos())
		}
		return true
	})
}

// extName renders an external function for the source table:
// method name qualified by receiver ("Time.Sub") or the bare name.
func extName(fn *types.Func) string {
	key := FuncKey(fn)
	if i := strings.LastIndex(key, ":"); i >= 0 {
		return key[i+1:]
	}
	return fn.Name()
}

// isInterfaceMethod reports whether fn is declared on an interface —
// those resolve at run time and are handled as dynamic call sites, not
// edges.
func isInterfaceMethod(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// dynamicCallee classifies one call expression: it returns a
// description and true when the callee cannot be resolved to a declared
// function or builtin — a func-typed value, a func-typed field, or an
// interface method.
func dynamicCallee(pkg *Package, call *ast.CallExpr) (string, bool) {
	if tv, ok := pkg.Info.Types[call.Fun]; ok && tv.IsType() {
		return "", false // conversion, not a call
	}
	fun := ast.Unparen(call.Fun)
	// Explicit generic instantiation f[T](...) wraps the callee.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		if _, isFunc := pkg.Info.Uses[baseIdent(ix.X)].(*types.Func); isFunc {
			fun = ast.Unparen(ix.X)
		}
	case *ast.IndexListExpr:
		if _, isFunc := pkg.Info.Uses[baseIdent(ix.X)].(*types.Func); isFunc {
			fun = ast.Unparen(ix.X)
		}
	}
	switch f := fun.(type) {
	case *ast.Ident:
		switch pkg.Info.Uses[f].(type) {
		case *types.Func, *types.Builtin, *types.TypeName, nil:
			return "", false
		}
		return f.Name, true
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			switch sel.Kind() {
			case types.MethodVal, types.MethodExpr:
				m, _ := sel.Obj().(*types.Func)
				if m != nil && isInterfaceMethod(m) {
					return recvTypeString(sel.Recv()) + "." + m.Name(), true
				}
				return "", false
			case types.FieldVal:
				return recvTypeString(sel.Recv()) + "." + f.Sel.Name, true
			}
			return "", false
		}
		// Package-qualified: a func is static, a func-typed package var
		// is dynamic.
		switch pkg.Info.Uses[f.Sel].(type) {
		case *types.Func, *types.TypeName, nil:
			return "", false
		}
		return recvTypeString(nil) + f.Sel.Name, true
	case *ast.FuncLit:
		return "", false // inline literal: body already attributed here
	}
	return "indirect", true
}

// recvTypeString renders a receiver type with its full import path,
// instantiation and pointer stripped, for allowlist matching.
func recvTypeString(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := types.Unalias(t).(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := types.Unalias(t).(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return obj.Name()
	}
	return types.TypeString(t, nil)
}

// Reachable returns the set of FuncKeys reachable from the given roots
// over static edges (references included), the roots themselves
// included when present in the graph.
func (g *CallGraph) Reachable(roots []string) map[string]*FuncNode {
	out := make(map[string]*FuncNode)
	var frontier []string
	for _, r := range roots {
		if n, ok := g.Nodes[r]; ok && out[r] == nil {
			out[r] = n
			frontier = append(frontier, r)
		}
	}
	for len(frontier) > 0 {
		key := frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		for _, callee := range g.Nodes[key].Calls {
			if n, ok := g.Nodes[callee]; ok && out[callee] == nil {
				out[callee] = n
				frontier = append(frontier, callee)
			}
		}
	}
	return out
}
