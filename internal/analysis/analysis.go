// Package analysis is the project's static-analysis framework: a
// stdlib-only (go/ast, go/parser, go/token, go/types) driver that loads
// every package in the module and runs project-specific analyzers over
// the typed syntax trees.
//
// The analyzers mechanically enforce the invariants the repository's
// correctness story rests on — and that, until now, only held because
// the current code happened to respect them:
//
//   - floatdet: no floating-point reduction may accumulate across a
//     map-range (unordered) iteration; summation order is part of the
//     bitwise-reproducibility contract the serial-path pinning tests
//     and the sibling-replica bitwise-equality tests rely on.
//   - precision: kernel packages must not change float width silently;
//     every float64↔float32 conversion is either one of the audited
//     widen-compute-narrow helpers or carries an annotation. This is
//     the paper's single-vs-double comparability requirement.
//   - rawrand: no math/rand — all randomness flows through the seeded,
//     replayable internal/xrand streams.
//   - ctxloop: long-running loops in the run/scheduler layers must
//     observe their context so cancellation lands within one MD step.
//   - closeerr: the checkpoint and report I/O paths must not drop
//     Close/Sync/Flush/Write errors — a checkpoint that silently failed
//     to persist is worse than none.
//
// Diagnostics are suppressible per line with
//
//	//mdlint:ignore <rule>[,<rule>...] <reason>
//
// where the reason is mandatory: a suppression is a reviewed decision,
// and the reviewer's argument travels with it. A suppression comment
// covers its own source line and the line directly below it, so it can
// sit either at the end of the offending line or on its own line above.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule, a position, and a message.
type Diagnostic struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one named rule.
type Analyzer struct {
	// Name is the rule name used in output and in //mdlint:ignore
	// comments.
	Name string

	// Doc is a one-line description.
	Doc string

	// Scope restricts the analyzer to packages whose import path ends
	// with one of these path suffixes (e.g. "vec", "cmd/mdsim"). Empty
	// means every package.
	Scope []string

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Rule:    p.Analyzer.Name,
		Package: p.Pkg.Path,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Analyzers returns the full rule set in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{FloatDet, Precision, RawRand, CtxLoop, CloseErr}
}

// Select resolves a comma-separated rule list ("" = all) against the
// registry.
func Select(rules string) ([]*Analyzer, error) {
	all := Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Stats summarizes one driver run, for the benchmark trajectory record.
type Stats struct {
	Packages    int
	Files       int
	Diagnostics int
}

// Run loads the packages matching patterns (resolved relative to dir,
// exactly as the go tool would) and applies the analyzers. Returned
// diagnostics are suppression-filtered and sorted by file, line,
// column, and rule. Malformed //mdlint:ignore comments (missing reason,
// unknown rule) surface as diagnostics of the pseudo-rule "ignore".
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, Stats, error) {
	pkgs, fset, err := Load(dir, patterns...)
	if err != nil {
		return nil, Stats{}, err
	}

	valid := make(map[string]bool)
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}

	var diags []Diagnostic
	stats := Stats{Packages: len(pkgs)}
	for _, pkg := range pkgs {
		stats.Files += len(pkg.Files)
		sup, supDiags := suppressions(fset, pkg, valid)
		diags = append(diags, supDiags...)
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     fset,
				Pkg:      pkg,
				report: func(d Diagnostic) {
					if !sup.covers(d.Rule, d.File, d.Line) {
						diags = append(diags, d)
					}
				},
			}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	stats.Diagnostics = len(diags)
	return diags, stats, nil
}
