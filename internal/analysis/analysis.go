// Package analysis is the project's static-analysis framework: a
// stdlib-only (go/ast, go/parser, go/token, go/types) driver that loads
// every package in the module and runs project-specific analyzers over
// the typed syntax trees.
//
// The analyzers mechanically enforce the invariants the repository's
// correctness story rests on — and that, until now, only held because
// the current code happened to respect them:
//
//   - floatdet: no floating-point reduction may accumulate across a
//     map-range (unordered) iteration; summation order is part of the
//     bitwise-reproducibility contract the serial-path pinning tests
//     and the sibling-replica bitwise-equality tests rely on.
//   - precision: kernel packages must not change float width silently;
//     every float64↔float32 conversion is either one of the audited
//     widen-compute-narrow helpers or carries an annotation. This is
//     the paper's single-vs-double comparability requirement.
//   - rawrand: no math/rand — all randomness flows through the seeded,
//     replayable internal/xrand streams.
//   - ctxloop: long-running loops in the run/scheduler layers must
//     observe their context so cancellation lands within one MD step.
//   - closeerr: the checkpoint and report I/O paths must not drop
//     Close/Sync/Flush/Write errors — a checkpoint that silently failed
//     to persist is worse than none.
//
// Diagnostics are suppressible per line with
//
//	//mdlint:ignore <rule>[,<rule>...] <reason>
//
// where the reason is mandatory: a suppression is a reviewed decision,
// and the reviewer's argument travels with it. A suppression comment
// covers its own source line and the line directly below it, so it can
// sit either at the end of the offending line or on its own line above.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a rule, a position, and a message.
type Diagnostic struct {
	Rule    string `json:"rule"`
	Package string `json:"package"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Rule, d.Message)
}

// Analyzer is one named rule. Per-package rules set Run; whole-program
// rules set RunModule and receive the call graph, the certified hot
// set, and the certificate under construction.
type Analyzer struct {
	// Name is the rule name used in output and in //mdlint:ignore
	// comments.
	Name string

	// Doc is a one-line description.
	Doc string

	// Scope restricts the analyzer to packages whose import path ends
	// with one of these path suffixes (e.g. "vec", "cmd/mdsim"). Empty
	// means every package. Module analyzers ignore Scope: a whole-
	// program property has no per-package boundary.
	Scope []string

	// Run inspects one package and reports findings through the pass.
	Run func(*Pass)

	// RunModule inspects the whole loaded module at once.
	RunModule func(*ModulePass)
}

// AppliesTo reports whether the analyzer runs on the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, "/"+s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package

	// Graph is the module-wide call graph (nil only in hand-built
	// passes). Per-package rules may consult it; the driver uses it to
	// tag diagnostics that land inside the certified hot set.
	Graph *CallGraph

	report func(Diagnostic)
}

// ModulePass carries a whole-program analyzer's view of the module.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Loaded   *Loaded
	Graph    *CallGraph
	Roots    []RootSpec
	Allow    []AllowRule
	Hot      map[string]*FuncNode // union of the roots' reachable cones
	Cert     *Certificate

	report func(Diagnostic)
}

// Reportf records a module-level finding at pos inside pkg.
func (mp *ModulePass) Reportf(pkg *Package, pos token.Pos, format string, args ...any) {
	p := mp.Fset.Position(pos)
	mp.reportPkgAt(pkg, p.Filename, p.Line, p.Column, format, args...)
}

// ReportAt records a finding with no package attribution (registry
// rot, tool failures): file may be empty.
func (mp *ModulePass) ReportAt(file string, line, col int, format string, args ...any) {
	mp.report(Diagnostic{
		Rule: mp.Analyzer.Name, File: file, Line: line, Col: col,
		Message: fmt.Sprintf(format, args...),
	})
}

func (mp *ModulePass) reportPkgAt(pkg *Package, file string, line, col int, format string, args ...any) {
	d := Diagnostic{
		Rule: mp.Analyzer.Name, File: file, Line: line, Col: col,
		Message: fmt.Sprintf(format, args...),
	}
	if pkg != nil {
		d.Package = pkg.Path
	}
	mp.report(d)
}

// relPath renders a file path relative to the module dir with forward
// slashes — the stable form certificates commit.
func (mp *ModulePass) relPath(file string) string {
	if rel, err := filepath.Rel(mp.Loaded.Dir, file); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(file)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.report(Diagnostic{
		Rule:    p.Analyzer.Name,
		Package: p.Pkg.Path,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Pkg.Info.TypeOf(e) }

// Analyzers returns the full rule set in reporting order: the
// per-package rules first, then the whole-program passes.
func Analyzers() []*Analyzer {
	return []*Analyzer{FloatDet, Precision, RawRand, CtxLoop, CloseErr, LockDisc, PureDet, HotAlloc}
}

// Select resolves a comma-separated rule list ("" = all) against the
// registry.
func Select(rules string) ([]*Analyzer, error) {
	all := Analyzers()
	if rules == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(rules, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown rule %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// Stats summarizes one driver run, for the benchmark trajectory record
// and the -summary output.
type Stats struct {
	Packages    int
	Files       int
	Diagnostics int
	PerRule     map[string]int
}

// Options tunes a driver run. The zero value means the defaults: the
// registered KernelRoots and the reviewed DynamicAllowlist.
type Options struct {
	// Roots overrides the kernel-root registry (the -roots flag).
	Roots []RootSpec
	// Allow overrides the dynamic-call-site allowlist.
	Allow []AllowRule
}

// Run loads the packages matching patterns (resolved relative to dir,
// exactly as the go tool would) and applies the analyzers. Returned
// diagnostics are suppression-filtered and sorted by file, line,
// column, and rule. Malformed //mdlint:ignore comments (missing reason,
// unknown rule) surface as diagnostics of the pseudo-rule "ignore".
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, Stats, error) {
	diags, stats, _, err := runAll(dir, patterns, analyzers, nil)
	return diags, stats, err
}

// RunOpts is Run with explicit Options.
func RunOpts(dir string, patterns []string, analyzers []*Analyzer, opts *Options) ([]Diagnostic, Stats, error) {
	diags, stats, _, err := runAll(dir, patterns, analyzers, opts)
	return diags, stats, err
}

// Certify runs the analyzers and additionally returns the determinism
// certificate the whole-program passes assembled. The certificate is
// complete only when the analyzer list includes puredet (verdicts) and
// hotalloc (allocation ledger); `mdlint -certify` therefore forces the
// full rule set.
func Certify(dir string, patterns []string, analyzers []*Analyzer, opts *Options) ([]Diagnostic, Stats, *Certificate, error) {
	return runAll(dir, patterns, analyzers, opts)
}

// runAll is the shared driver pipeline: load, build the call graph,
// resolve roots into the hot set, then run per-package passes followed
// by module passes, with one module-wide suppression index filtering
// both.
func runAll(dir string, patterns []string, analyzers []*Analyzer, opts *Options) ([]Diagnostic, Stats, *Certificate, error) {
	ld, err := Load(dir, patterns...)
	if err != nil {
		return nil, Stats{}, nil, err
	}
	graph := buildGraph(ld)

	roots := KernelRoots
	allow := DynamicAllowlist
	if opts != nil && opts.Roots != nil {
		roots = opts.Roots
	}
	if opts != nil && opts.Allow != nil {
		allow = opts.Allow
	}
	rootKeys := make([]string, len(roots))
	for i, r := range roots {
		rootKeys[i] = string(r)
	}
	hot := graph.Reachable(rootKeys)

	cert := &Certificate{Schema: certSchema, Module: ld.Module}
	for key := range hot {
		cert.Reachable = append(cert.Reachable, key)
	}

	valid := make(map[string]bool)
	for _, a := range Analyzers() {
		valid[a.Name] = true
	}
	// One module-wide suppression index: module passes report across
	// package boundaries, so per-package indexing is not enough.
	sup := make(suppressionSet)
	var diags []Diagnostic
	stats := Stats{Packages: len(ld.Pkgs), PerRule: make(map[string]int)}
	for _, pkg := range ld.Pkgs {
		stats.Files += len(pkg.Files)
		pkgSup, supDiags := suppressions(ld.Fset, pkg, valid)
		diags = append(diags, supDiags...)
		for file, byLine := range pkgSup {
			for line, rules := range byLine {
				for rule := range rules {
					if sup[file] == nil {
						sup[file] = make(map[int]map[string]bool)
					}
					if sup[file][line] == nil {
						sup[file][line] = make(map[string]bool)
					}
					sup[file][line][rule] = true
				}
			}
		}
	}

	hotDecls := hotDeclIndex(ld.Fset, hot)
	report := func(d Diagnostic) {
		if !sup.covers(d.Rule, d.File, d.Line) {
			diags = append(diags, d)
		}
	}

	// Per-package passes. Diagnostics landing inside a certified hot
	// declaration get the call-graph context appended: a float-width or
	// map-order finding inside a kernel cone is a determinism finding,
	// not a style nit.
	for _, pkg := range ld.Pkgs {
		for _, a := range analyzers {
			if a.Run == nil || !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     ld.Fset,
				Pkg:      pkg,
				Graph:    graph,
				report: func(d Diagnostic) {
					if node := hotDeclAt(ld.Fset, hotDecls[d.File], d.Line); node != nil {
						d.Message += fmt.Sprintf(" [on the certified hot path: %s]", node.Key)
					}
					report(d)
				},
			}
			a.Run(pass)
		}
	}

	// Module passes see the whole program at once and write the
	// certificate as they go.
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		mp := &ModulePass{
			Analyzer: a,
			Fset:     ld.Fset,
			Loaded:   ld,
			Graph:    graph,
			Roots:    roots,
			Allow:    allow,
			Hot:      hot,
			Cert:     cert,
			report:   report,
		}
		a.RunModule(mp)
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	stats.Diagnostics = len(diags)
	for _, d := range diags {
		stats.PerRule[d.Rule]++
	}
	cert.normalize()
	return diags, stats, cert, nil
}

// hotDeclIndex maps file → hot declaration ranges, for tagging
// per-package diagnostics that land inside the certified hot set.
func hotDeclIndex(fset *token.FileSet, hot map[string]*FuncNode) map[string][]declRange {
	idx := make(map[string][]declRange)
	for _, node := range hot {
		file := fset.Position(node.Decl.Pos()).Filename
		idx[file] = append(idx[file], declRange{start: node.Decl.Pos(), end: node.Decl.End(), node: node})
	}
	return idx
}
