package analysis

import (
	"fmt"
	"strings"
)

// RootSpec names one kernel root for determinism certification, in
// FuncKey form: "importpath:Func" or "importpath:Recv.Func".
type RootSpec string

// KernelRoots is the declared registry of kernel entry points the
// determinism certificate covers: every force evaluation, neighbor
// build, and integration step the production paths can drive. A
// function renamed or moved without updating this registry shows up as
// an "unresolved" verdict in the certificate, which the committed
// golden (and its test) refuses.
//
// ForcesDirectInstrumented is deliberately absent: the instrumented
// variant exists for the op-accounting benches, merges sim.Ledger
// maps, and is never on a production per-step path.
var KernelRoots = []RootSpec{
	// integrate
	"repro/internal/md:System.Step",
	"repro/internal/md:System.StepWith",
	"repro/internal/md:System.StepWithE",
	"repro/internal/md:System.Run",
	// serial force kernels
	"repro/internal/md:ComputeForces",
	"repro/internal/md:ComputeForcesFull",
	"repro/internal/md:ComputeForcesFullCount",
	"repro/internal/md:CellList.Forces",
	"repro/internal/md:NeighborList.Forces",
	"repro/internal/md:BondedForces",
	"repro/internal/md:ForcesPairlistMixed",
	"repro/internal/md:ForcesCellMixed",
	// neighbor/cell builds
	"repro/internal/md:CellList.Build",
	"repro/internal/md:CellList.BinWrapped",
	"repro/internal/md:NeighborList.Build",
	"repro/internal/md:NeighborList.BuildN2",
	// parallel kernels and builds
	"repro/internal/parallel:Engine.ForcesDirect",
	"repro/internal/parallel:Engine.TryForcesDirect",
	"repro/internal/parallel:Engine.ForcesCell",
	"repro/internal/parallel:Engine.TryForcesCell",
	"repro/internal/parallel:Engine.ForcesPairlist",
	"repro/internal/parallel:Engine.TryForcesPairlist",
	"repro/internal/parallel:Engine.BuildPairlist",
	"repro/internal/parallel:Engine.ForcesPairlistF32",
	"repro/internal/parallel:Engine.TryForcesPairlistF32",
	"repro/internal/parallel:Engine.BuildPairlistF32",
	// deterministic reductions
	"repro/internal/vec:PairwiseSum",
}

// AllowRule declares one dynamic call site the graph cannot resolve but
// certification accepts, with the reviewed reason. Caller is the
// FuncKey of the calling function ("" matches any caller); Callee is
// the site description the graph renders — the func value's name for
// func-typed calls, "importpath.Type.Method" for interface calls. Every
// allowlist entry a certification actually uses is recorded in the
// certificate, so the audit trail travels with the verdict.
type AllowRule struct {
	Caller string `json:"caller,omitempty"`
	Callee string `json:"callee"`
	Reason string `json:"reason"`
}

// DynamicAllowlist is the declared set of dynamic call sites the
// certified cones contain. Each entry is a reviewed decision; the
// reasons are the argument for why the site cannot smuggle
// nondeterminism into a kernel.
var DynamicAllowlist = []AllowRule{
	{
		Caller: "repro/internal/md:System.StepWith", Callee: "forces",
		Reason: "caller-supplied force kernel; every production kernel is itself a certified root",
	},
	{
		Caller: "repro/internal/md:System.StepWithE", Callee: "forces",
		Reason: "caller-supplied force kernel; every production kernel is itself a certified root",
	},
	{
		Caller: "repro/internal/parallel:Engine.callWith", Callee: "fn",
		Reason: "worker shard closure from the same kernel evaluation; sharding and reduction order are fixed",
	},
	{
		Caller: "repro/internal/parallel:New", Callee: "f",
		Reason: "pool task closure; tasks carry deterministic shard work and a fixed reduction",
	},
	{
		Callee: "context.Context.Err",
		Reason: "cancellation probe: affects whether a step completes, never the bytes it produces",
	},
	{
		Callee: "context.Context.Done",
		Reason: "cancellation probe: affects whether a step completes, never the bytes it produces",
	},
	{
		Callee: "repro/internal/faults.Injector.Fire",
		Reason: "fault injection is a seeded, call-numbered schedule (faults.Registry); replays are bit-exact",
	},
	{
		Callee: "repro/internal/faults.Fault.WorkerFaultCtx",
		Reason: "injected fault behavior is part of the seeded schedule, not ambient nondeterminism",
	},
}

// ParseRoots parses a comma-separated -roots override
// ("importpath:Func,importpath:Recv.Func").
func ParseRoots(s string) ([]RootSpec, error) {
	var out []RootSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if !strings.Contains(part, ":") {
			return nil, fmt.Errorf("analysis: root %q: want importpath:Func or importpath:Recv.Func", part)
		}
		out = append(out, RootSpec(part))
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("analysis: -roots given but no roots parsed from %q", s)
	}
	return out, nil
}

// allowIndex resolves dynamic sites against the allowlist.
type allowIndex []AllowRule

// match returns the first allowlist entry covering a dynamic site.
func (ai allowIndex) match(caller, callee string) (AllowRule, bool) {
	for _, r := range ai {
		if r.Callee == callee && (r.Caller == "" || r.Caller == caller) {
			return r, true
		}
	}
	return AllowRule{}, false
}
