package analysis

import (
	"go/ast"
	"strconv"
)

// RawRand flags any use of math/rand (v1 or v2) outside internal/xrand.
// The global functions share hidden state, so two call sites perturb
// each other's streams; even a locally-constructed Source is banned
// because nothing forces it to be seeded explicitly, and v2's automatic
// seeding is explicitly irreproducible. Every stream in this repository
// must come from internal/xrand so that initial conditions, Langevin
// noise, and fleet backoff jitter replay bit-for-bit from a recorded
// seed — the property the device-validation and sibling-replica tests
// assert.
var RawRand = &Analyzer{
	Name: "rawrand",
	Doc:  "math/rand use outside internal/xrand (unseeded or global randomness)",
	Run:  runRawRand,
}

func runRawRand(p *Pass) {
	if p.Pkg.Path == "repro/internal/xrand" {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !isRandPath(path) {
				continue
			}
			p.Reportf(imp.Pos(), "import of %s: use the seeded internal/xrand streams so runs replay bit-for-bit", path)
		}
		// Flag each use site too: the import line alone is easy to lose
		// in a large diff, and per-site diagnostics make partial
		// migrations visible.
		inspectRandUses(p, f)
	}
}

// inspectRandUses reports every selector expression that resolves into
// a math/rand package.
func inspectRandUses(p *Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		obj := p.Pkg.Info.ObjectOf(sel.Sel)
		if obj == nil || obj.Pkg() == nil || !isRandPath(obj.Pkg().Path()) {
			return true
		}
		p.Reportf(sel.Pos(), "%s.%s: use the seeded internal/xrand streams so runs replay bit-for-bit", obj.Pkg().Name(), sel.Sel.Name)
		return false
	})
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}
