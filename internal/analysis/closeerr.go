package analysis

import (
	"go/ast"
	"go/types"
)

// CloseErr flags dropped error results from Close/Sync/Flush/Write-
// family calls on the checkpoint and report I/O paths (guard, report,
// cmd/mdsim, the serving layer's durable job store, and the chaos
// harness that audits them). The checkpoint protocol's whole guarantee — a reader only
// ever sees complete, CRC-valid files — is built from exactly these
// return values: a swallowed Close after buffered writes is a
// checkpoint that may not exist, reported as one that does.
//
// Only silently discarded results are flagged (a bare call statement,
// including defer/go). An explicit `_ = f.Close()` is a visible,
// reviewable decision and passes; writers that are documented never to
// fail (strings.Builder, bytes.Buffer) are exempt.
var CloseErr = &Analyzer{
	Name:  "closeerr",
	Doc:   "dropped Close/Sync/Flush/Write error on checkpoint or report I/O paths",
	Scope: []string{"guard", "report", "cmd/mdsim", "cmd/mdlint", "serve", "cmd/mdserve", "chaos", "cmd/mdchaos"},
	Run:   runCloseErr,
}

// closeErrMethods is the flagged call-name family.
var closeErrMethods = map[string]bool{
	"Close": true, "Sync": true, "Flush": true,
	"Write": true, "WriteString": true, "WriteFrame": true,
	"WriteCheckpoint": true, "WriteJSON": true,
}

func runCloseErr(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, _ = st.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = st.Call
			case *ast.GoStmt:
				call = st.Call
			}
			if call == nil {
				return true
			}
			name := calleeName(call)
			if !closeErrMethods[name] {
				return true
			}
			if !callReturnsError(p, call) {
				return true
			}
			if receiverNeverFails(p, call) {
				return true
			}
			p.Reportf(call.Pos(), "error from %s() dropped on a checkpoint/report I/O path: handle it, or discard explicitly (`_ =`) with an //mdlint:ignore closeerr <why> if it is genuinely best-effort", name)
			return true
		})
	}
}

// callReturnsError reports whether the call's (last) result is error.
func callReturnsError(p *Pass, call *ast.CallExpr) bool {
	t := p.TypeOf(call)
	switch rt := t.(type) {
	case *types.Tuple:
		return rt.Len() > 0 && isErrorType(rt.At(rt.Len()-1).Type())
	default:
		return t != nil && isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// receiverNeverFails exempts receivers whose Write-family methods are
// documented to always return a nil error.
func receiverNeverFails(p *Pass, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := p.TypeOf(sel.X)
	if t == nil {
		return false
	}
	if ptr, ok := types.Unalias(t).(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "strings.Builder", "bytes.Buffer":
		return true
	}
	return false
}
