// Package vec is a fixture for the precision analyzer. Its import path
// ends in /vec and its package name is vec, so it lands in the
// analyzer's kernel-package scope and exercises the audited-helper
// allowlist.
package vec

// narrow silently drops mantissa bits: flagged.
func narrow(x float64) float32 {
	return float32(x) // want precision
}

// widen silently creates a double-precision island: flagged.
func widen(x float32) float64 {
	return float64(x) // want precision
}

// Sqrt matches an audited widen-compute-narrow helper name in package
// vec: its internal conversions are the helper's whole point and are
// not flagged.
func Sqrt(x float32) float32 {
	return float32(halve(float64(x)))
}

func halve(x float64) float64 { return x / 2 }

// Widen matches the mixed-precision fast path's audited widening
// helper name: its conversion is the audit point itself, not flagged.
func Widen(x float32) float64 {
	return float64(x)
}

// Narrow matches the audited narrowing helper name: not flagged.
func Narrow(x float64) float32 {
	return float32(x)
}

// AccumAdd matches the audited accumulate-widened helper name: the
// widening conversions inside it are its whole point, not flagged.
func AccumAdd(acc float64, b float32) float64 {
	return acc + float64(b)
}

// AccumSub matches the audited helper name: not flagged.
func AccumSub(acc float64, b float32) float64 {
	return acc - float64(b)
}

// accumAddAlike does the same accumulation but is NOT an allowlisted
// name, so its widening must surface: the allowlist is by identity,
// not by shape.
func accumAddAlike(acc float64, b float32) float64 {
	return acc + float64(b) // want precision
}

// fromConst converts an untyped constant: no width change, not flagged.
func fromConst() float32 { return float32(1.5) }

// fromInt converts an integer: no width change, not flagged.
func fromInt(n int) float32 { return float32(n) }

// sameWidth keeps the width: not flagged.
func sameWidth(x float32) float32 { return float32(x) }

// narrowSuppressed carries the annotation, so the finding must not
// surface.
func narrowSuppressed(x float64) float32 {
	return float32(x) //mdlint:ignore precision fixture: proves suppression silences the finding
}
