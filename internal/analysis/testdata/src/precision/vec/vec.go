// Package vec is a fixture for the precision analyzer. Its import path
// ends in /vec and its package name is vec, so it lands in the
// analyzer's kernel-package scope and exercises the audited-helper
// allowlist.
package vec

// narrow silently drops mantissa bits: flagged.
func narrow(x float64) float32 {
	return float32(x) // want precision
}

// widen silently creates a double-precision island: flagged.
func widen(x float32) float64 {
	return float64(x) // want precision
}

// Sqrt matches an audited widen-compute-narrow helper name in package
// vec: its internal conversions are the helper's whole point and are
// not flagged.
func Sqrt(x float32) float32 {
	return float32(halve(float64(x)))
}

func halve(x float64) float64 { return x / 2 }

// fromConst converts an untyped constant: no width change, not flagged.
func fromConst() float32 { return float32(1.5) }

// fromInt converts an integer: no width change, not flagged.
func fromInt(n int) float32 { return float32(n) }

// sameWidth keeps the width: not flagged.
func sameWidth(x float32) float32 { return float32(x) }

// narrowSuppressed carries the annotation, so the finding must not
// surface.
func narrowSuppressed(x float64) float32 {
	return float32(x) //mdlint:ignore precision fixture: proves suppression silences the finding
}
