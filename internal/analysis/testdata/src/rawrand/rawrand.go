// Package rawrand is a fixture for the rawrand analyzer: both the
// import line and every use site must be reported.
package rawrand

import (
	"math/rand" // want rawrand
)

// roll uses the shared global stream: flagged at the use site.
func roll() float64 {
	return rand.Float64() // want rawrand
}

// source constructs a local source: still flagged — nothing forces an
// explicit seed.
func source() *rand.Rand { // want rawrand
	return rand.New(rand.NewSource(1)) // want rawrand rawrand
}

// pure has no randomness: not flagged.
func pure(x float64) float64 { return 2 * x }

// rollSuppressed carries the annotation, so the finding must not
// surface.
func rollSuppressed() float64 {
	return rand.Float64() //mdlint:ignore rawrand fixture: proves suppression silences the finding
}
