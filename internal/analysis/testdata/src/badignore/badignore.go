// Package badignore is a fixture for suppression validation: every
// malformed //mdlint:ignore annotation must surface under the
// pseudo-rule "ignore". The assertions live in the driver test rather
// than in want-markers, since the annotation is itself the finding.
package badignore

//mdlint:ignore
var missingRule = 1

//mdlint:ignore floatdet
var missingReason = 2

//mdlint:ignore nosuchrule fixture: this rule name is not registered
var unknownRule = 3

// wellFormed is a correct annotation on a clean line: no finding.
var wellFormed = 4 //mdlint:ignore floatdet fixture: a well-formed annotation is never reported
