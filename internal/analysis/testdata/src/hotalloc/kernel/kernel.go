// Package kernel is the hotalloc fixture: Forces is the registered
// root; scratch's escaping make is the positive, grow's is the
// suppressed (but still ledgered) amortized case, Cold's is out of the
// hot cone, and the bounded local in Forces never escapes at all.
package kernel

// Forces is the fixture's kernel root.
func Forces(n int) []float64 {
	local := make([]float64, 8) // does not escape: no diagnostic
	for i := range local {
		local[i] = float64(i)
	}
	// Inlined copies allocate in this frame, so the compiler (correctly)
	// reports the call sites as distinct allocation sites too.
	keep = grow(n)    // want hotalloc
	buf := scratch(n) // want hotalloc
	for i := range buf {
		buf[i] = local[i%len(local)]
	}
	return buf
}

// scratch escapes: the slice is returned to the caller.
func scratch(n int) []float64 {
	return make([]float64, n) // want hotalloc
}

var keep []float64

// grow is the annotated amortized case: the gate passes, the
// certificate ledger still records the site.
func grow(n int) []float64 {
	return make([]float64, n) //mdlint:ignore hotalloc fixture: amortized grow-once buffer
}

// Cold allocates but is not reachable from the root: no diagnostic.
func Cold(n int) []float64 {
	return make([]float64, n)
}
