// Package kernel is the puredet fixture: CleanStep's cone is free of
// nondeterminism sources, DirtyStep's cone trips every class the rule
// certifies against — wall clock, environment reads, map-order float
// accumulation, map-order output, goroutine spawns, and a dynamic call
// the graph cannot resolve.
package kernel

import (
	"os"
	"time"
)

// CleanStep is the certified root: pure arithmetic through a helper.
func CleanStep(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += pair(x)
	}
	return sum
}

func pair(x float64) float64 { return x * x }

// DirtyStep is the uncertified root: every statement below is a
// distinct violation class.
func DirtyStep(m map[int]float64, fn func() float64) float64 {
	t := time.Now() // want puredet
	_ = t
	_ = os.Getenv("HOME") // want puredet
	var sum float64
	for _, v := range m {
		sum += v // want puredet
	}
	var order []int
	for k := range m {
		order = append(order, k) // want puredet
	}
	_ = order
	go pair(1)     // want puredet
	sum += fn()    // want puredet
	sum += stamp() // suppressed inside stamp, but still uncertifies the root
	return sum
}

// stamp shows a suppressed site: the annotation silences the
// diagnostic; the certificate still refuses to certify the root.
func stamp() float64 {
	return float64(time.Now().UnixNano()) //mdlint:ignore puredet fixture: reviewed wall-clock read
}
