// Package chaos is a fixture for the closeerr analyzer's chaos-harness
// scope. Its import path ends in /chaos, so the widened scope applies:
// the harness writes campaign reports and minimal reproducers — a
// swallowed Close on a repro file is a "saved" reproducer that may not
// exist, which is the one artifact a failing campaign cannot lose.
package chaos

import "os"

// saveReproBad drops the Write and Close errors on the reproducer
// path: flagged twice.
func saveReproBad(path string, line []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(line) // want closeerr
	f.Close()     // want closeerr
	return nil
}

// saveReproGood checks every return value: not flagged.
func saveReproGood(path string, line []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(line); err != nil {
		_ = f.Close() // explicit discard on the error path: visible decision
		return err
	}
	return f.Close()
}
