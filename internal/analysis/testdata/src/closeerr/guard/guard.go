// Package guard is a fixture for the closeerr analyzer. Its import
// path ends in /guard, so it lands in the analyzer's checkpoint/report
// I/O scope.
package guard

import (
	"bytes"
	"os"
	"strings"
)

// saveBad drops both the Write and the Close error: flagged twice.
func saveBad(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data) // want closeerr
	f.Close()     // want closeerr
	return nil
}

// saveDeferred drops the Close error through defer: flagged.
func saveDeferred(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // want closeerr
	return nil
}

// saveGood handles every error: not flagged.
func saveGood(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		return err
	}
	return f.Close()
}

// saveExplicit discards visibly with _ = — a reviewable decision, not
// flagged.
func saveExplicit(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	_ = f.Close()
}

// build uses the never-fail writers: exempt, not flagged.
func build() string {
	var sb strings.Builder
	sb.WriteString("x")
	var buf bytes.Buffer
	buf.WriteString("y")
	return sb.String() + buf.String()
}

// saveSuppressed carries the annotation, so the finding must not
// surface.
func saveSuppressed(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Close() //mdlint:ignore closeerr fixture: proves suppression silences the finding
}
