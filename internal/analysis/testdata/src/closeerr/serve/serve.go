// Package serve is a fixture for the closeerr analyzer's serving-layer
// scope. Its import path ends in /serve, so the widened scope applies:
// the durable job store's whole restart contract is built from exactly
// these return values — a swallowed Sync before the rename is a spec
// that may vanish in a crash while the client holds its job ID.
package serve

import "os"

// persistBad drops the Write, Sync, and Close errors on the admission
// record path: flagged three times.
func persistBad(path string, spec []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(spec) // want closeerr
	f.Sync()      // want closeerr
	f.Close()     // want closeerr
	return nil
}

// persistGood handles every error on the way to the rename: not
// flagged.
func persistGood(path string, spec []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(spec); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// dirSyncBestEffort discards visibly with _ = — the directory-fsync
// case where some filesystems refuse and best-effort is the documented
// policy: not flagged.
func dirSyncBestEffort(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}

// persistSuppressed carries the annotation, so the finding must not
// surface.
func persistSuppressed(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Close() //mdlint:ignore closeerr fixture: proves suppression silences the finding in the serve scope
}
