// Package serve is a fixture for the ctxloop analyzer's serving-layer
// scope. Its import path ends in /serve, so the widened scope applies:
// admission retry loops and stream-wait loops that drive Submit or
// Sleep without observing a context turn a client disconnect or a
// drain into a goroutine that never exits.
package serve

import (
	"context"
	"time"
)

type scheduler struct{}

func (s *scheduler) Submit(ctx context.Context, id int) error { return nil }
func (s *scheduler) trySubmit(id int) error                   { return nil }

// resubmitBlind retries admission with sleeps but never observes a
// context: flagged — a drain cannot stop this loop.
func resubmitBlind(s *scheduler, id int) {
	for { // want ctxloop
		if s.trySubmit(id) == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// resubmitBounded selects its backoff against ctx.Done: compliant.
func resubmitBounded(ctx context.Context, s *scheduler, id int) {
	for {
		if s.trySubmit(id) == nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// resubmitDelegated hands the context to Submit, delegating the check
// downward: compliant.
func resubmitDelegated(ctx context.Context, s *scheduler, id int) {
	for i := 0; i < 3; i++ {
		if s.Submit(ctx, id) == nil {
			return
		}
	}
}

// streamSuppressed carries the annotation on the line above the for
// keyword, so the finding must not surface.
func streamSuppressed(s *scheduler, id int) {
	//mdlint:ignore ctxloop fixture: proves suppression silences the finding in the serve scope
	for {
		if s.trySubmit(id) == nil {
			return
		}
		time.Sleep(time.Millisecond)
	}
}
