// Package chaos is a fixture for the ctxloop analyzer's chaos-harness
// scope. Its import path ends in /chaos, so the widened scope applies:
// a campaign loop that polls job status or awaits terminal states
// without observing a context cannot be interrupted — exactly the
// stuck-forever failure mode the harness exists to detect in others.
package chaos

import (
	"context"
	"time"
)

type server struct{}

func (s *server) Submit(id int) error { return nil }
func (s *server) status(id int) string {
	return "running"
}

// awaitBlind polls a job to terminal with sleeps but no context: a
// schedule that wedges the server wedges the campaign too. Flagged.
func awaitBlind(s *server, id int) string {
	for { // want ctxloop
		if st := s.status(id); st != "running" {
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

// awaitBounded selects its poll interval against ctx.Done: compliant.
func awaitBounded(ctx context.Context, s *server, id int) string {
	for {
		if st := s.status(id); st != "running" {
			return st
		}
		select {
		case <-ctx.Done():
			return ""
		case <-time.After(time.Millisecond):
		}
	}
}

// floodSuppressed drives Submit in a tight burst loop with no context,
// but carries an explicit suppression with a reason: not flagged.
func floodSuppressed(s *server) {
	for i := 0; i < 16; i++ { //mdlint:ignore ctxloop bounded burst, no sleeps or waits inside
		_ = s.Submit(i)
	}
}
