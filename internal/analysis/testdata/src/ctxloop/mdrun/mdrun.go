// Package mdrun is a fixture for the ctxloop analyzer. Its import path
// ends in /mdrun, so it lands in the analyzer's run/scheduler scope.
// The diagnostic anchors on the for keyword of the offending loop.
package mdrun

import "context"

type system struct{}

func (s *system) Step()                          {}
func (s *system) Rebuild()                       {}
func (s *system) RunContext(ctx context.Context) {}
func (s *system) BuildRow(i int)                 {}

// runBlind steps the system but never observes a context: flagged.
func runBlind(ctx context.Context, sys *system, steps int) {
	for i := 0; i < steps; i++ { // want ctxloop
		sys.Step()
	}
}

// runChecked polls ctx.Err each iteration: compliant.
func runChecked(ctx context.Context, sys *system, steps int) error {
	for i := 0; i < steps; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		sys.Step()
	}
	return nil
}

// runSelect selects on ctx.Done: compliant.
func runSelect(ctx context.Context, sys *system) {
	for {
		select {
		case <-ctx.Done():
			return
		default:
			sys.Step()
		}
	}
}

// runDelegated hands the context to the step call, delegating the check
// downward: compliant.
func runDelegated(ctx context.Context, sys *system, steps int) {
	for i := 0; i < steps; i++ {
		sys.RunContext(ctx)
	}
}

// buildBlind fills neighbor-list rows without ever observing a
// context: flagged (the parallel build's row loop is a stepper).
func buildBlind(ctx context.Context, sys *system, n int) {
	for i := 0; i < n; i++ { // want ctxloop
		sys.BuildRow(i)
	}
}

// buildChecked polls ctx.Err at a stride, like the real sharded build:
// compliant.
func buildChecked(ctx context.Context, sys *system, n int) {
	for i := 0; i < n; i++ {
		if i%256 == 0 && ctx.Err() != nil {
			return
		}
		sys.BuildRow(i)
	}
}

// spin calls no stepper: not a long-running loop, not flagged.
func spin(sys *system, n int) {
	for i := 0; i < n; i++ {
		sys.Rebuild()
	}
}

// runSuppressed carries the annotation on the line above the for
// keyword, so the finding must not surface.
func runSuppressed(sys *system, steps int) {
	//mdlint:ignore ctxloop fixture: proves suppression silences the finding
	for i := 0; i < steps; i++ {
		sys.Step()
	}
}
