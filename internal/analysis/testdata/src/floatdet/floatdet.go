// Package floatdet is a fixture for the floatdet analyzer. Lines
// carrying a want-marker comment must be reported; everything else
// must not.
package floatdet

// sumMap accumulates across a map range: the classic violation.
func sumMap(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want floatdet
	}
	return total
}

// sumLonghand spells the same reduction as x = x + e.
func sumLonghand(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want floatdet
	}
	return total
}

// sumField accumulates into a struct field through a pointer.
type acc struct{ t float32 }

func sumField(m map[int]float32, a *acc) {
	for _, v := range m {
		a.t += v // want floatdet
	}
}

// sumSlice is ordered iteration: not flagged.
func sumSlice(xs []float64) float64 {
	var total float64
	for _, v := range xs {
		total += v
	}
	return total
}

// scale touches each element exactly once, keyed by the loop variable:
// deterministic for any visit order, not flagged.
func scale(m map[string]float64, f float64) {
	for k := range m {
		m[k] *= f
	}
}

// count is an integer reduction: associative, not flagged.
func count(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

// perIter's accumulator is scoped to one iteration — each key's sum is
// independent of visit order, not flagged.
func perIter(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		var s float64
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}

// sumSuppressed carries the annotation, so the finding must not surface.
func sumSuppressed(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v //mdlint:ignore floatdet fixture: proves suppression silences the finding
	}
	return total
}
