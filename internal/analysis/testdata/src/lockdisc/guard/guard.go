// Package guard is the lockdisc fixture (the directory name puts it in
// the rule's scope): copied locks, a leaked lock on an early return,
// and the disciplined shapes that must stay clean.
package guard

import "sync"

// Counter holds a mutex by value, so copying a Counter copies the lock.
type Counter struct {
	mu sync.Mutex
	n  int
}

// Bad locks through a value receiver: the copy's lock guards nothing.
func (c Counter) Bad() int { // want lockdisc
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Snapshot takes the lock-bearing struct by value.
func Snapshot(c Counter) int { // want lockdisc
	return c.n
}

// Clone copies the lock through a dereference assignment.
func Clone(c *Counter) int {
	cp := *c // want lockdisc
	return cp.n
}

// Total copies the lock once per iteration through the range value.
func Total(cs []Counter) int {
	t := 0
	for _, c := range cs { // want lockdisc
		t += c.n
	}
	return t
}

// Leak returns early with the mutex still held.
func (c *Counter) Leak(cond bool) int {
	c.mu.Lock()
	if cond {
		return 0 // want lockdisc
	}
	c.mu.Unlock()
	return c.n
}

// Get is the disciplined shape: defer pairs the unlock with the lock.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Update unlocks inside a deferred closure, which counts.
func (c *Counter) Update(f func(int) int) int {
	c.mu.Lock()
	defer func() {
		c.n = f(c.n)
		c.mu.Unlock()
	}()
	return c.n
}

// Handoff intentionally returns locked; the suppression documents the
// ownership transfer.
func (c *Counter) Handoff() *Counter {
	c.mu.Lock()
	return c //mdlint:ignore lockdisc fixture: lock ownership transfers to the caller
}
