// Package suppressedge pins the suppression parser's edge cases: one
// comment naming several rules, trailing whitespace after the reason,
// and an ignore comment above a statement that spans multiple lines
// (covered because diagnostics anchor at the statement's first line).
package suppressedge

import "math/rand" //mdlint:ignore rawrand fixture: the edge cases below need the import

// One comment, two rules, standing on the line above the finding.
//
//mdlint:ignore rawrand,floatdet fixture: one comment may name several rules
var seed = rand.Int63()

var seed2 = rand.Int63() //mdlint:ignore rawrand fixture: reason with trailing whitespace

// sums exercises the line-above coverage rule against multi-line
// statements.
func sums(m map[int]float64) (float64, float64) {
	var a, b float64
	for _, v := range m {
		// The accumulation below spans two lines; the diagnostic anchors
		// at the statement's first line, directly under the comment.
		//mdlint:ignore floatdet fixture: ignore above a two-line statement still covers it
		a = a +
			v
	}
	for _, v := range m {
		//mdlint:ignore floatdet fixture: a comment two lines up covers nothing
		_ = v
		b += v // want floatdet
	}
	return a, b
}

var _ = sums
