package analysis

import (
	"encoding/json"
	"io"
	"sort"
)

// Certificate is the machine-readable determinism certificate
// `mdlint -certify` emits and scripts/verify.sh diffs against the
// committed golden (DETERMINISM_CERT.json). It is deterministic by
// construction — every list is sorted, every path repo-relative, and
// nothing in it depends on wall time, map order, or the machine it was
// produced on — so two runs over the same tree are byte-identical.
type Certificate struct {
	Schema    string         `json:"schema"`
	Module    string         `json:"module"`
	Roots     []RootResult   `json:"roots"`
	Reachable []string       `json:"reachable"`
	Allowed   []AllowedEdge  `json:"allowlisted_edges"`
	Hotalloc  HotallocLedger `json:"hotalloc"`
}

// certSchema names the certificate format; bump on any shape change so
// golden drift is a format decision, not an accident.
const certSchema = "mdlint-determinism-cert/v1"

// RootResult is one kernel root's verdict.
//
//   - "certified": every function in the root's reachable cone is free
//     of nondeterminism sources, and every dynamic call site in the
//     cone is on the declared allowlist.
//   - "uncertified": at least one violation, listed sorted.
//   - "unresolved": the registered root was not found in the loaded
//     packages — a renamed kernel or a rotted registry, which the
//     golden test refuses.
type RootResult struct {
	Root       string   `json:"root"`
	Verdict    string   `json:"verdict"`
	Reachable  int      `json:"reachable"`
	Violations []string `json:"violations,omitempty"`
}

// AllowedEdge records one allowlist entry a certification actually
// used: the unresolvable call site it covers and the reviewed reason.
type AllowedEdge struct {
	Caller string `json:"caller"`
	Callee string `json:"callee"`
	Reason string `json:"reason"`
}

// HotallocLedger is the per-step allocation ledger: every heap-escape
// site the compiler's escape analysis reports inside the certified hot
// set. Annotated sites stay in the ledger — the annotation makes the
// lint pass, not the allocation disappear — so the committed count is
// the "before" number the SoA/arena refactor must drive to zero.
type HotallocLedger struct {
	Count int         `json:"count"`
	Sites []AllocSite `json:"sites"`
}

// AllocSite is one heap allocation on a certified hot path.
type AllocSite struct {
	Func string `json:"func"` // FuncKey of the enclosing hot function
	File string `json:"file"` // repo-relative, forward slashes
	Line int    `json:"line"`
	What string `json:"what"` // the compiler's escape message
}

// normalize sorts every list so marshaling is deterministic.
func (c *Certificate) normalize() {
	sort.Slice(c.Roots, func(i, j int) bool { return c.Roots[i].Root < c.Roots[j].Root })
	for i := range c.Roots {
		sort.Strings(c.Roots[i].Violations)
	}
	sort.Strings(c.Reachable)
	sort.Slice(c.Allowed, func(i, j int) bool {
		a, b := c.Allowed[i], c.Allowed[j]
		if a.Caller != b.Caller {
			return a.Caller < b.Caller
		}
		return a.Callee < b.Callee
	})
	c.Allowed = dedupeAllowed(c.Allowed)
	sort.Slice(c.Hotalloc.Sites, func(i, j int) bool {
		a, b := c.Hotalloc.Sites[i], c.Hotalloc.Sites[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.What < b.What
	})
	c.Hotalloc.Count = len(c.Hotalloc.Sites)
}

func dedupeAllowed(in []AllowedEdge) []AllowedEdge {
	out := in[:0]
	for i, e := range in {
		if i == 0 || e != in[i-1] {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON writes the normalized certificate as indented JSON with a
// trailing newline, the exact bytes the golden file commits.
func (c *Certificate) WriteJSON(w io.Writer) error {
	c.normalize()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(c)
}

// Certified reports whether every root resolved and certified.
func (c *Certificate) Certified() bool {
	for _, r := range c.Roots {
		if r.Verdict != "certified" {
			return false
		}
	}
	return len(c.Roots) > 0
}
