package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string
	Name  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loaded is the result of one Load: the target packages plus the
// module-wide context the whole-program passes need — the shared file
// set and the compiler export-data artifacts (importpath → export
// file) that both the type-checker and the hotalloc escape-analysis
// recompile resolve imports through.
type Loaded struct {
	Pkgs    []*Package
	Fset    *token.FileSet
	Exports map[string]string
	Dir     string // absolute: the base certificate paths are relative to
	Module  string // module path of the loaded targets
}

// listPackage is the slice of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Module     *struct {
		Path string
		Dir  string
	}
}

// Load resolves patterns with the go tool (run in dir), parses the
// matched packages' production sources, and type-checks them against
// the compiler's export data for their dependencies. Only the stdlib is
// used: dependency types come from `go list -export` artifacts read by
// the gc importer, so no package — stdlib included — is re-type-checked
// from source.
//
// Test files are deliberately excluded: the rules guard production
// paths, and the analyzers' own fixtures live in testdata packages that
// the go tool keeps out of wildcard patterns anyway.
func Load(dir string, patterns ...string) (*Loaded, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-deps", "-export",
		"-json=Dir,ImportPath,Name,GoFiles,Export,DepOnly,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = err.Error()
		}
		return nil, fmt.Errorf("analysis: go list %s: %s", strings.Join(patterns, " "), msg)
	}

	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	// Certificate paths are rendered relative to the module root, so the
	// golden file is identical no matter which subdirectory the tool ran
	// from. Fall back to the (absolutized) working dir for throwaway
	// modules go list reports no module info for.
	baseDir, module := "", ""
	for _, t := range targets {
		if t.Module != nil {
			module = t.Module.Path
			if t.Module.Dir != "" {
				baseDir = t.Module.Dir
			}
			break
		}
	}
	if baseDir == "" {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: absolutizing %q: %w", dir, err)
		}
		baseDir = abs
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(exp)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, t := range targets {
		files := make([]*ast.File, 0, len(t.GoFiles))
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Name:  t.Name,
			Dir:   t.Dir,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return &Loaded{Pkgs: pkgs, Fset: fset, Exports: exports, Dir: baseDir, Module: module}, nil
}
