package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix introduces a suppression comment:
//
//	//mdlint:ignore rule[,rule...] reason
const ignorePrefix = "//mdlint:ignore"

// suppressionSet indexes which (file, line) pairs are covered for which
// rules. A comment covers its own line and the line directly below it,
// so it works both trailing an offending statement and standing alone
// above one.
type suppressionSet map[string]map[int]map[string]bool

func (s suppressionSet) add(file string, line int, rule string) {
	byLine, ok := s[file]
	if !ok {
		byLine = make(map[int]map[string]bool)
		s[file] = byLine
	}
	for _, l := range [2]int{line, line + 1} {
		rules, ok := byLine[l]
		if !ok {
			rules = make(map[string]bool)
			byLine[l] = rules
		}
		rules[rule] = true
	}
}

// covers reports whether a diagnostic of rule at file:line is
// suppressed.
func (s suppressionSet) covers(rule, file string, line int) bool {
	return s[file][line][rule]
}

// suppressions scans a package's comments for //mdlint:ignore
// annotations. Malformed annotations — no rule, a rule the registry
// does not know, or a missing reason — are themselves reported under
// the pseudo-rule "ignore": a suppression that silently suppresses
// nothing (or everything) is exactly the kind of rot this tool exists
// to prevent.
func suppressions(fset *token.FileSet, pkg *Package, validRules map[string]bool) (suppressionSet, []Diagnostic) {
	set := make(suppressionSet)
	var diags []Diagnostic
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		diags = append(diags, Diagnostic{
			Rule: "ignore", Package: pkg.Path,
			File: p.Filename, Line: p.Line, Col: p.Column,
			Message: msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //mdlint:ignoreXXX — not ours
				}
				ruleList, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if ruleList == "" {
					report(c.Pos(), "mdlint:ignore needs a rule name and a reason")
					continue
				}
				if strings.TrimSpace(reason) == "" {
					report(c.Pos(), "mdlint:ignore "+ruleList+" needs a reason: suppressions document a reviewed decision")
					continue
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Split(ruleList, ",") {
					if !validRules[rule] {
						report(c.Pos(), "mdlint:ignore names unknown rule "+rule)
						continue
					}
					set.add(pos.Filename, pos.Line, rule)
				}
			}
		}
	}
	return set, diags
}
