package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// PureDet is the whole-program determinism certifier. Starting from the
// registered kernel roots (KernelRoots, or a -roots override) it walks
// the module call graph and verifies that no reachable function touches
// a nondeterminism source:
//
//   - wall-clock reads (time.Now and friends),
//   - environment or filesystem access outside the internal/fsys seam,
//   - math/rand (any flavor) outside the internal/xrand seam,
//   - goroutine spawns outside the internal/parallel engine,
//   - map iteration that feeds a float accumulation or an output order
//     (this subsumes floatdet on the hot paths: floatdet sees one
//     package at a time, puredet sees the whole cone),
//   - and any dynamic call site — func value, func field, interface
//     method — that is not on the declared allowlist, because a call
//     the graph cannot resolve is a call it cannot certify.
//
// The verdicts, reachable set, and used allowlist entries become the
// machine-readable determinism certificate (`mdlint -certify`).
var PureDet = &Analyzer{
	Name:      "puredet",
	Doc:       "nondeterminism source reachable from a registered kernel root",
	RunModule: runPureDet,
}

// nondetSources maps external calls (package path : name) to why they
// break replayable determinism.
var nondetSources = map[string]string{
	"time:Now":   "wall clock",
	"time:Since": "wall clock",
	"time:Until": "wall clock",

	"os:Getenv":    "environment read",
	"os:LookupEnv": "environment read",
	"os:Environ":   "environment read",
	"os:Hostname":  "host identity read",
	"os:Getpid":    "process identity read",

	"os:Open":       "filesystem read outside the fsys seam",
	"os:OpenFile":   "filesystem access outside the fsys seam",
	"os:ReadFile":   "filesystem read outside the fsys seam",
	"os:ReadDir":    "filesystem read outside the fsys seam",
	"os:Stat":       "filesystem read outside the fsys seam",
	"os:Lstat":      "filesystem read outside the fsys seam",
	"os:Create":     "filesystem write outside the fsys seam",
	"os:CreateTemp": "filesystem write outside the fsys seam",
	"os:MkdirTemp":  "filesystem write outside the fsys seam",
}

// exemptCaller reports whether a call from pkgPath into extPkg is a
// seam doing its job: packages whose whole purpose is to wrap a
// nondeterminism source behind a deterministic (seeded / injectable)
// interface may touch that source.
func exemptCaller(pkgPath, extPkg string) bool {
	switch {
	case strings.HasSuffix(pkgPath, "internal/fsys") && (extPkg == "os" || extPkg == "io/fs" || extPkg == "path/filepath"):
		return true
	case strings.HasSuffix(pkgPath, "internal/xrand") && isRandPath(extPkg):
		return true
	}
	return false
}

// spawnExempt reports whether a goroutine spawn in pkgPath is
// sanctioned: only the parallel engine's fixed worker pool may launch
// goroutines on a certified path.
func spawnExempt(pkgPath string) bool {
	return strings.HasSuffix(pkgPath, "internal/parallel")
}

// violation is one determinism defect found in a hot function.
type violation struct {
	file      string // absolute, as in the file set
	line, col int
	msg       string
}

func runPureDet(mp *ModulePass) {
	ai := allowIndex(mp.Allow)

	// Per-node violations, computed once over the union hot set.
	viols := make(map[string][]violation)
	for key, node := range mp.Hot {
		viols[key] = nodeViolations(mp, node, ai)
	}

	// Per-root verdicts and the certificate.
	reachedBy := make(map[string][]string) // node key -> roots reaching it
	for _, root := range mp.Roots {
		rk := string(root)
		rr := RootResult{Root: rk}
		if _, ok := mp.Graph.Nodes[rk]; !ok {
			rr.Verdict = "unresolved"
			mp.Cert.Roots = append(mp.Cert.Roots, rr)
			mp.ReportAt("", 0, 0, "registered kernel root %s not found in the loaded packages: rename it in the registry or restore the function", rk)
			continue
		}
		cone := mp.Graph.Reachable([]string{rk})
		rr.Reachable = len(cone)
		for key := range cone {
			reachedBy[key] = append(reachedBy[key], rk)
			for _, v := range viols[key] {
				rr.Violations = append(rr.Violations,
					fmt.Sprintf("%s: %s at %s:%d", key, v.msg, mp.relPath(v.file), v.line))
			}
		}
		if len(rr.Violations) == 0 {
			rr.Verdict = "certified"
		} else {
			rr.Verdict = "uncertified"
		}
		mp.Cert.Roots = append(mp.Cert.Roots, rr)
	}

	// Diagnostics: one per violating site, attributed to the roots that
	// reach it.
	for key, vs := range viols {
		roots := append([]string(nil), reachedBy[key]...)
		if len(roots) == 0 {
			continue
		}
		sort.Strings(roots)
		attribution := roots[0]
		if len(roots) > 1 {
			attribution += fmt.Sprintf(" (+%d more roots)", len(roots)-1)
		}
		node := mp.Hot[key]
		for _, v := range vs {
			mp.reportPkgAt(node.Pkg, v.file, v.line, v.col, "%s — reachable from kernel root %s", v.msg, attribution)
		}
	}
}

// nodeViolations inspects one hot function for determinism defects and
// records used allowlist entries in the certificate.
func nodeViolations(mp *ModulePass, node *FuncNode, ai allowIndex) []violation {
	var out []violation
	add := func(pos token.Pos, format string, args ...any) {
		p := mp.Fset.Position(pos)
		out = append(out, violation{file: p.Filename, line: p.Line, col: p.Column,
			msg: fmt.Sprintf(format, args...)})
	}

	for _, ext := range node.External {
		if exemptCaller(node.Pkg.Path, ext.PkgPath) {
			continue
		}
		if isRandPath(ext.PkgPath) {
			add(ext.Pos, "calls %s.%s (global/unseeded randomness; use internal/xrand)", ext.PkgPath, ext.Name)
			continue
		}
		if why, bad := nondetSources[ext.PkgPath+":"+ext.Name]; bad {
			add(ext.Pos, "calls %s.%s (%s)", ext.PkgPath, ext.Name, why)
		}
	}

	for _, spawn := range node.Spawns {
		if !spawnExempt(node.Pkg.Path) {
			add(spawn, "spawns a goroutine outside parallel.Engine: scheduling order would leak into results")
		}
	}

	for _, dyn := range node.Dynamic {
		if rule, ok := ai.match(node.Key, dyn.Desc); ok {
			mp.Cert.Allowed = append(mp.Cert.Allowed, AllowedEdge{
				Caller: node.Key, Callee: dyn.Desc, Reason: rule.Reason,
			})
			continue
		}
		add(dyn.Pos, "unresolved dynamic call %s: the call graph cannot certify it — resolve it statically or add a reviewed allowlist entry", dyn.Desc)
	}

	checkMapRangeDet(mp, node, &out)
	return out
}

// checkMapRangeDet flags map iteration inside a hot function whose body
// feeds a float accumulation (the floatdet property, re-checked here
// because the hot cone crosses package boundaries) or an output order
// (appends to an outer slice, channel sends).
func checkMapRangeDet(mp *ModulePass, node *FuncNode, out *[]violation) {
	// A throwaway Pass lends the floatdet helpers their expected shape;
	// its report hook rewrites findings as puredet violations in place.
	p := &Pass{Analyzer: mp.Analyzer, Fset: mp.Fset, Pkg: node.Pkg,
		report: func(d Diagnostic) {
			*out = append(*out, violation{file: d.File, line: d.Line, col: d.Col, msg: d.Message})
		}}
	addAt := func(pos token.Pos, format string, args ...any) {
		pp := mp.Fset.Position(pos)
		*out = append(*out, violation{file: pp.Filename, line: pp.Line, col: pp.Column,
			msg: fmt.Sprintf(format, args...)})
	}
	ast.Inspect(node.Decl, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if t := p.TypeOf(rs.X); t == nil || !isMapType(t) {
			return true
		}
		// Float accumulation (floatdet core, surfaced as puredet).
		checkMapRangeBody(p, rs)
		// Output order: append to something that outlives the loop, or
		// a channel send.
		inspectSkipFuncLit(rs.Body, func(m ast.Node) bool {
			switch v := m.(type) {
			case *ast.SendStmt:
				addAt(v.Arrow, "channel send inside map iteration: receiver observes randomized order")
			case *ast.AssignStmt:
				for i, rhs := range v.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || calleeName(call) != "append" || i >= len(v.Lhs) {
						continue
					}
					if base := baseIdent(v.Lhs[i]); base != nil {
						if obj := p.Pkg.Info.ObjectOf(base); obj != nil &&
							!(rs.Body.Pos() <= obj.Pos() && obj.Pos() < rs.Body.End()) {
							addAt(v.Pos(), "append to %s inside map iteration: element order is randomized run to run", base.Name)
						}
					}
				}
			}
			return true
		})
		return true
	})
}
