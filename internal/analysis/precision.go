package analysis

import (
	"go/ast"
)

// Precision flags float64↔float32 conversions inside the kernel
// packages — the code that must stay comparable across the paper's
// single-precision devices (Cell SPE, GPU fragment programs) and the
// double-precision Opteron/MTA baseline. A width change that is neither
// one of the audited widen-compute-narrow helpers nor annotated is how
// "single precision with silent double-precision islands" creeps in and
// quietly invalidates every cross-architecture energy comparison.
//
// Three conversion shapes are flagged: concrete narrowing
// (float32(f64)), concrete widening (float64(f32)), and width changes
// at a generic boundary (float64(x) or T(x) where the other side is a
// vec.Float-style type parameter — exactly what a float32 instantiation
// turns into a widen or narrow). Conversions from integers and untyped
// constants are not width changes and are ignored.
var Precision = &Analyzer{
	Name:  "precision",
	Doc:   "unannotated float64↔float32 conversion in a kernel package",
	Scope: []string{"vec", "spu", "brook", "gpu", "cell", "parallel"},
	Run:   runPrecision,
}

// precisionAllowed are the audited widen-compute-narrow helpers: they
// exist precisely to round a double-precision stdlib result back to the
// caller's width (or to cross the declared accumulation boundary), and
// the vec package documents each one. Keyed by package base name and
// function name.
var precisionAllowed = map[[2]string]bool{
	{"vec", "Sqrt"}:      true,
	{"vec", "Copysign"}:  true,
	{"vec", "Floor"}:     true,
	{"vec", "Round"}:     true,
	{"vec", "ToV3f64"}:   true,
	{"vec", "FromV3f64"}: true,
	// Mixed-precision fast-path helpers (PR 6): the audited crossing
	// points between float32 pair geometry and float64 accumulation.
	{"vec", "Widen"}:     true,
	{"vec", "Narrow"}:    true,
	{"vec", "AccumAdd"}:  true,
	{"vec", "AccumSub"}:  true,
	{"spu", "sqrt32"}:    true,
	{"spu", "Copysign"}:  true,
	{"spu", "VCopysign"}: true,
}

func runPrecision(p *Pass) {
	pkgBase := p.Pkg.Name
	for _, f := range p.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			if precisionAllowed[[2]string{pkgBase, fd.Name.Name}] {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				tv, ok := p.Pkg.Info.Types[call.Fun]
				if !ok || !tv.IsType() {
					return true
				}
				dst := floatWidth(tv.Type)
				src := floatWidth(p.TypeOf(call.Args[0]))
				if dst == notFloat || src == notFloat || dst == src {
					return true
				}
				p.Reportf(call.Pos(),
					"%s→%s conversion in kernel package %s: width changes must be an audited helper or annotated (//mdlint:ignore precision <why>) to keep single/double results comparable",
					widthName(src), widthName(dst), pkgBase)
				return true
			})
		}
	}
}
