package analysis

import (
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// This file extracts the compiler's escape-analysis verdicts for the
// hotalloc rule. Instead of scraping `go build -gcflags=-m` — whose
// output vanishes on every warm cache hit — it invokes the compiler
// directly (`go tool compile -m`) against the same export-data
// artifacts the loader already collected from `go list -deps -export`,
// so the diagnostics are reproduced on every run, cache state
// notwithstanding.

// escapeSite is one heap allocation the compiler reports.
type escapeSite struct {
	File string // absolute path, matching the loader's file set
	Line int
	Col  int
	What string // the compiler's message, e.g. "make([]int32, n) escapes to heap"
}

// escapeLine matches `file.go:12:34: message`.
var escapeLine = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.+)$`)

// escapeSites recompiles one loaded package with -m and returns its
// heap-escape sites ("escapes to heap", "moved to heap"); inline
// decisions and non-escapes are discarded. The object file goes to a
// temp dir; only the diagnostics are kept.
func escapeSites(ld *Loaded, pkg *Package) ([]escapeSite, error) {
	tmp, err := os.MkdirTemp("", "mdlint-escape-*")
	if err != nil {
		return nil, fmt.Errorf("analysis: escape temp dir: %w", err)
	}
	defer os.RemoveAll(tmp)

	var cfg bytes.Buffer
	paths := make([]string, 0, len(ld.Exports))
	for ip := range ld.Exports {
		paths = append(paths, ip)
	}
	sort.Strings(paths)
	for _, ip := range paths {
		fmt.Fprintf(&cfg, "packagefile %s=%s\n", ip, ld.Exports[ip])
	}
	cfgPath := filepath.Join(tmp, "importcfg")
	if err := os.WriteFile(cfgPath, cfg.Bytes(), 0o644); err != nil {
		return nil, fmt.Errorf("analysis: escape importcfg: %w", err)
	}

	files := pkgFileNames(ld.Fset, pkg)
	if len(files) == 0 {
		return nil, nil
	}
	args := append([]string{
		"tool", "compile", "-m", "-p", pkg.Path,
		"-importcfg", cfgPath, "-o", filepath.Join(tmp, "out.o"),
	}, files...)
	cmd := exec.Command("go", args...)
	cmd.Dir = ld.Dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	runErr := cmd.Run()

	var sites []escapeSite
	for _, line := range strings.Split(stdout.String()+stderr.String(), "\n") {
		m := escapeLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		what := m[4]
		if !strings.Contains(what, "escapes to heap") && !strings.HasPrefix(what, "moved to heap") {
			continue
		}
		var ln, col int
		fmt.Sscanf(m[2], "%d", &ln)
		fmt.Sscanf(m[3], "%d", &col)
		sites = append(sites, escapeSite{File: m[1], Line: ln, Col: col, What: what})
	}
	// One generic function compiles once per shape; identical verdicts
	// from different instantiations are one site, not many.
	seen := make(map[escapeSite]bool, len(sites))
	uniq := sites[:0]
	for _, s := range sites {
		if !seen[s] {
			seen[s] = true
			uniq = append(uniq, s)
		}
	}
	sites = uniq
	if runErr != nil && len(sites) == 0 {
		// A compile that produced no diagnostics and failed is a real
		// failure (bad importcfg, version skew) — surface it.
		msg := strings.TrimSpace(stderr.String())
		if msg == "" {
			msg = runErr.Error()
		}
		return nil, fmt.Errorf("analysis: go tool compile -m %s: %s", pkg.Path, msg)
	}
	return sites, nil
}

// pkgFileNames recovers a package's production file paths from the
// shared file set, in parse order.
func pkgFileNames(fset *token.FileSet, pkg *Package) []string {
	names := make([]string, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		names = append(names, fset.Position(f.FileStart).Filename)
	}
	return names
}
