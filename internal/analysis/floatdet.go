package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatDet flags floating-point accumulation carried across a range
// over a map: Go randomizes map iteration order, and floating-point
// addition is not associative, so such a reduction produces different
// bits run to run. That breaks the repository's two hardest-won
// properties — the bitwise-pinned serial force path and the
// bitwise-clean sibling replicas in a faulted batch — in a way no unit
// test catches until the digits actually wobble.
//
// Per-key updates (m[k] *= f inside range over m) are deterministic
// regardless of visit order and are not flagged; neither are integer
// accumulations, which are associative.
var FloatDet = &Analyzer{
	Name: "floatdet",
	Doc:  "floating-point accumulation over unordered (map-range) iteration",
	Run:  runFloatDet,
}

func runFloatDet(p *Pass) {
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := p.TypeOf(rs.X); t == nil || !isMapType(t) {
				return true
			}
			checkMapRangeBody(p, rs)
			return true
		})
	}
}

func isMapType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRangeBody scans one map-range body (closures excluded) for
// loop-carried float accumulation.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt) {
	loopVars := rangeVarObjects(p, rs)
	inspectSkipFuncLit(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			lhs := as.Lhs[0]
			if p.accumulates(lhs, rs, loopVars) {
				p.Reportf(as.Pos(), "%s accumulation of %s across map iteration: map order is randomized, float addition is not associative — iterate a sorted or insertion-ordered key list instead", as.Tok, widthName(floatWidth(p.TypeOf(lhs))))
			}
		case token.ASSIGN:
			// x = x + e (and e + x) spelled longhand.
			if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				return true
			}
			lhs := as.Lhs[0]
			bin, ok := as.Rhs[0].(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch bin.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return true
			}
			if !exprMentions(bin, lhs) {
				return true
			}
			if p.accumulates(lhs, rs, loopVars) {
				p.Reportf(as.Pos(), "%s accumulation across map iteration (x = x %s ...): map order is randomized, float addition is not associative — iterate a sorted or insertion-ordered key list instead", widthName(floatWidth(p.TypeOf(lhs))), bin.Op)
			}
		}
		return true
	})
}

// accumulates reports whether assigning through lhs inside rs is a
// loop-carried float reduction: float-typed, surviving the iteration
// (declared outside the body), and not a per-element update keyed by
// the loop variables.
func (p *Pass) accumulates(lhs ast.Expr, rs *ast.RangeStmt, loopVars map[types.Object]bool) bool {
	if w := floatWidth(p.TypeOf(lhs)); w == notFloat {
		return false
	}
	if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
		// m[k] op= v with k a loop variable touches each element once:
		// deterministic for any visit order.
		if p.mentionsAny(ix.Index, loopVars) {
			return false
		}
	}
	if base := baseIdent(lhs); base != nil {
		if obj := p.Pkg.Info.ObjectOf(base); obj != nil &&
			rs.Body.Pos() <= obj.Pos() && obj.Pos() < rs.Body.End() {
			return false // scoped to one iteration; not loop-carried
		}
	}
	return true
}

// rangeVarObjects collects the key/value loop variable objects.
func rangeVarObjects(p *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
				vars[obj] = true
			}
		}
	}
	return vars
}

// mentionsAny reports whether e references any of the given objects.
func (p *Pass) mentionsAny(e ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := p.Pkg.Info.ObjectOf(id); obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// baseIdent digs the root identifier out of selector/index chains.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// exprMentions reports whether tree contains a syntactic copy of want
// (an identifier or selector chain).
func exprMentions(tree ast.Node, want ast.Expr) bool {
	found := false
	ast.Inspect(tree, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && sameExpr(e, want) {
			found = true
		}
		return !found
	})
	return found
}

// sameExpr compares identifier/selector shapes structurally.
func sameExpr(a, b ast.Expr) bool {
	switch av := ast.Unparen(a).(type) {
	case *ast.Ident:
		bv, ok := ast.Unparen(b).(*ast.Ident)
		return ok && av.Name == bv.Name
	case *ast.SelectorExpr:
		bv, ok := ast.Unparen(b).(*ast.SelectorExpr)
		return ok && av.Sel.Name == bv.Sel.Name && sameExpr(av.X, bv.X)
	}
	return false
}
