package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// LockDisc enforces lock discipline in the serving and supervision
// layers — internal/fleet, internal/serve, internal/guard — where a
// leaked or copied mutex turns into a wedged scheduler slot or a
// tenant-wide stall rather than a crash:
//
//   - Mutexes copied by value: a value receiver, parameter, plain
//     assignment, or range value whose type (transitively) contains a
//     sync.Mutex/sync.RWMutex duplicates lock state, so the copy's
//     Lock() guards nothing.
//   - Locks not released on every return path: a function that calls
//     Lock without an immediate defer Unlock must unlock before each
//     return. The check is a linear source-order scan (closures
//     excluded), which matches how these packages actually write
//     critical sections; a pattern it cannot follow deserves either a
//     rewrite or an //mdlint:ignore with the argument.
var LockDisc = &Analyzer{
	Name:  "lockdisc",
	Doc:   "mutex copied by value, or a lock not released on every return path",
	Scope: []string{"fleet", "serve", "guard"},
	Run:   runLockDisc,
}

func runLockDisc(p *Pass) {
	for _, f := range p.Pkg.Files {
		for _, fd := range enclosingFuncs(f) {
			checkLockCopies(p, fd)
			checkLockReleases(p, fd)
		}
	}
}

// --- copies ---

// checkLockCopies flags value receivers, value parameters, lock-copying
// assignments, and lock-copying range values.
func checkLockCopies(p *Pass, fd *ast.FuncDecl) {
	flagField := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				continue
			}
			if lockPath := containsLock(t, nil); lockPath != "" {
				p.Reportf(field.Pos(), "%s passes %s by value: it contains %s, and the copy's lock state is disconnected from the original", kind, t.String(), lockPath)
			}
		}
	}
	flagField(fd.Recv, "receiver")
	flagField(fd.Type.Params, "parameter")

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range v.Rhs {
				if i >= len(v.Lhs) {
					break
				}
				if !copiesLockValue(p, rhs) {
					continue
				}
				t := p.TypeOf(rhs)
				if lockPath := containsLock(t, nil); lockPath != "" {
					p.Reportf(v.Pos(), "assignment copies %s by value: it contains %s — keep a pointer instead", t.String(), lockPath)
				}
			}
		case *ast.RangeStmt:
			if v.Value == nil {
				return true
			}
			t := p.TypeOf(v.Value)
			if t == nil {
				return true
			}
			if _, isPtr := types.Unalias(t).(*types.Pointer); isPtr {
				return true
			}
			if lockPath := containsLock(t, nil); lockPath != "" {
				p.Reportf(v.Value.Pos(), "range value copies %s by value: it contains %s — range over indices or pointers", t.String(), lockPath)
			}
		}
		return true
	})
}

// copiesLockValue reports whether rhs duplicates existing lock state: a
// dereference or a plain variable/selector read. Fresh values
// (composite literals, function calls, conversions of fresh values) are
// initializations, not copies.
func copiesLockValue(p *Pass, rhs ast.Expr) bool {
	switch v := ast.Unparen(rhs).(type) {
	case *ast.StarExpr:
		return true
	case *ast.Ident:
		_, isVar := p.Pkg.Info.ObjectOf(v).(*types.Var)
		return isVar
	case *ast.SelectorExpr:
		_, isField := p.Pkg.Info.ObjectOf(v.Sel).(*types.Var)
		return isField
	case *ast.IndexExpr:
		return true
	}
	return false
}

// containsLock reports where (selector path) a type transitively holds
// a sync.Mutex or sync.RWMutex by value, or "" when it does not.
func containsLock(t types.Type, seen []*types.Named) string {
	if t == nil {
		return ""
	}
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if isSyncLock(named) {
			return named.Obj().Name()
		}
		for _, s := range seen {
			if s == named {
				return ""
			}
		}
		seen = append(seen, named)
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if sub := containsLock(f.Type(), seen); sub != "" {
			return f.Name() + "." + sub
		}
	}
	return ""
}

// isSyncLock reports whether named is sync.Mutex or sync.RWMutex.
func isSyncLock(named *types.Named) bool {
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// --- release discipline ---

// lockEvent is one Lock/Unlock/return in source order.
type lockEvent struct {
	pos  token.Pos
	kind string // "lock", "unlock", "defer-unlock", "return"
	recv string // rendered receiver, e.g. "s.mu"
}

// checkLockReleases performs the linear source-order scan: a return
// reached while a receiver is locked, not deferred-unlocked, and not
// unlocked earlier on that line path is a leak.
func checkLockReleases(p *Pass, fd *ast.FuncDecl) {
	var events []lockEvent
	inspectSkipFuncLit(fd.Body, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ReturnStmt:
			events = append(events, lockEvent{pos: v.Pos(), kind: "return"})
		case *ast.DeferStmt:
			// defer mu.Unlock(), and the defer func(){ ...; mu.Unlock() }()
			// shape used when the deferred cleanup does more than unlock.
			for _, recv := range deferredUnlocks(p, v) {
				events = append(events, lockEvent{pos: v.Pos(), kind: "defer-unlock", recv: recv})
			}
		case *ast.ExprStmt:
			if call, ok := v.X.(*ast.CallExpr); ok {
				if recv, kind := lockCall(p, call); kind != "" {
					events = append(events, lockEvent{pos: v.Pos(), kind: kind, recv: recv})
				}
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := make(map[string]token.Pos)
	deferred := make(map[string]bool)
	for _, ev := range events {
		switch ev.kind {
		case "lock":
			held[ev.recv] = ev.pos
		case "unlock":
			delete(held, ev.recv)
		case "defer-unlock":
			deferred[ev.recv] = true
		case "return":
			for recv, lockPos := range held {
				if deferred[recv] {
					continue
				}
				line := p.Fset.Position(lockPos).Line
				p.Reportf(ev.pos, "return with %s still locked (Lock at line %d has no defer and no Unlock before this return)", recv, line)
			}
		}
	}
}

// lockCall classifies a call as "lock"/"unlock" on a sync mutex and
// renders its receiver. RLock/RUnlock count the same: a leaked read
// lock still wedges the next writer.
func lockCall(p *Pass, call *ast.CallExpr) (recv, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, _ := p.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock", "RLock":
		kind = "lock"
	case "Unlock", "RUnlock":
		kind = "unlock"
	case "TryLock", "TryRLock":
		// The result decides whether the lock is held; the linear scan
		// cannot follow it, so TryLock sites are out of scope.
		return "", ""
	default:
		return "", ""
	}
	return renderExpr(sel.X), kind
}

// deferredUnlocks returns the receivers a defer statement unlocks —
// directly, or anywhere inside a deferred closure.
func deferredUnlocks(p *Pass, d *ast.DeferStmt) []string {
	if recv, kind := lockCall(p, d.Call); kind == "unlock" {
		return []string{recv}
	}
	lit, ok := d.Call.Fun.(*ast.FuncLit)
	if !ok {
		return nil
	}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, kind := lockCall(p, call); kind == "unlock" {
				out = append(out, recv)
			}
		}
		return true
	})
	return out
}

// renderExpr flattens an identifier/selector/star chain to a stable
// string key ("s.mu", "(*t).mu") for matching Lock to Unlock.
func renderExpr(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderExpr(v.X) + "." + v.Sel.Name
	case *ast.StarExpr:
		return renderExpr(v.X)
	case *ast.IndexExpr:
		return renderExpr(v.X) + "[...]"
	case *ast.CallExpr:
		return renderExpr(v.Fun) + "()"
	}
	return "?"
}
