package analysis

import (
	"bufio"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Fixture package import paths for the module-pass (root-driven) cases.
const (
	puredetFixture  = "repro/internal/analysis/testdata/src/puredet/kernel"
	hotallocFixture = "repro/internal/analysis/testdata/src/hotalloc/kernel"
)

// TestFixtures runs each analyzer over its fixture package and checks
// the diagnostics against the "// want <rule>" markers in the fixture
// source: every marked line must be reported (once per listed rule),
// and nothing else may be. Suppressed cases in the fixtures carry
// //mdlint:ignore annotations and therefore must not surface.
func TestFixtures(t *testing.T) {
	cases := []struct {
		rule    string
		pattern string
		roots   []RootSpec // module-pass cases register fixture roots
	}{
		{"floatdet", "./testdata/src/floatdet", nil},
		{"rawrand", "./testdata/src/rawrand", nil},
		{"precision", "./testdata/src/precision/vec", nil},
		{"ctxloop", "./testdata/src/ctxloop/mdrun", nil},
		{"ctxloop", "./testdata/src/ctxloop/serve", nil},
		{"ctxloop", "./testdata/src/ctxloop/chaos", nil},
		{"closeerr", "./testdata/src/closeerr/guard", nil},
		{"closeerr", "./testdata/src/closeerr/serve", nil},
		{"closeerr", "./testdata/src/closeerr/chaos", nil},
		{"lockdisc", "./testdata/src/lockdisc/guard", nil},
		{"rawrand,floatdet", "./testdata/src/suppressedge", nil},
		{"puredet", "./testdata/src/puredet/kernel", []RootSpec{
			puredetFixture + ":CleanStep", puredetFixture + ":DirtyStep",
		}},
		{"hotalloc", "./testdata/src/hotalloc/kernel", []RootSpec{
			hotallocFixture + ":Forces",
		}},
	}
	for _, tc := range cases {
		t.Run(strings.ReplaceAll(tc.rule, ",", "+"), func(t *testing.T) {
			azs, err := Select(tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			var opts *Options
			if tc.roots != nil {
				opts = &Options{Roots: tc.roots}
			}
			diags, stats, err := RunOpts(".", []string{tc.pattern}, azs, opts)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Packages != 1 || stats.Files == 0 {
				t.Fatalf("loaded %d packages / %d files, want 1 package with files", stats.Packages, stats.Files)
			}

			want := wantMarkers(t, tc.pattern)
			got := make(map[string]int)
			for _, d := range diags {
				if d.Rule == "ignore" {
					t.Errorf("fixture has a malformed suppression: %s", d)
					continue
				}
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule)]++
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("%s: got %d diagnostics, want %d", k, got[k], n)
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("unexpected diagnostic ×%d at %s", n, k)
				}
			}
		})
	}
}

// wantMarkers scans a fixture directory for "// want rule[ rule...]"
// markers and returns expected counts keyed by file:line:rule.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	want := make(map[string]int)
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", filepath.Base(name), line, rule)]++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close() // read path; Scanner already surfaced any read error
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	return want
}

// TestSuppressionValidation checks that malformed //mdlint:ignore
// annotations surface under the pseudo-rule "ignore" — and that a
// well-formed one does not.
func TestSuppressionValidation(t *testing.T) {
	// Per-package rules only: with the default KernelRoots unresolvable
	// in a fixture package, puredet would (correctly) report registry
	// rot, which is not what this test is about.
	azs, err := Select("floatdet,precision,rawrand,ctxloop,closeerr,lockdisc")
	if err != nil {
		t.Fatal(err)
	}
	diags, _, err := Run(".", []string{"./testdata/src/badignore"}, azs)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if d.Rule != "ignore" {
			t.Errorf("unexpected non-ignore diagnostic: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d ignore diagnostics (%q), want 3", len(msgs), msgs)
	}
	sort.Strings(msgs)
	for i, substr := range []string{"needs a reason", "unknown rule nosuchrule", "needs a rule name"} {
		if !strings.Contains(msgs[i], substr) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, msgs[i], substr)
		}
	}
}

// TestSelect checks rule-list resolution.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") = %d analyzers, %v; want the full registry", len(all), err)
	}
	two, err := Select("floatdet, closeerr")
	if err != nil || len(two) != 2 || two[0].Name != "floatdet" || two[1].Name != "closeerr" {
		t.Fatalf("Select(\"floatdet, closeerr\") = %v, %v", two, err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select(\"nosuchrule\") succeeded, want error")
	}
}

// TestAppliesTo checks the path-suffix scope matching.
func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Scope: []string{"vec", "cmd/mdsim"}}
	for path, want := range map[string]bool{
		"repro/internal/vec":      true,
		"vec":                     true,
		"repro/cmd/mdsim":         true,
		"repro/internal/vecmath":  false,
		"repro/internal/gpu":      false,
		"repro/internal/approvec": false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("unscoped analyzer must apply everywhere")
	}
}

// TestLoadErrors checks that an unresolvable pattern is a load error,
// not a silent empty result.
func TestLoadErrors(t *testing.T) {
	if _, _, err := Run(".", []string{"./does/not/exist"}, Analyzers()); err == nil {
		t.Fatal("Run on a nonexistent pattern succeeded, want error")
	}
}

// TestGraphReachable checks the call-graph construction against the
// puredet fixture: edges through helpers, closure attribution, and the
// root cones the certificate reports.
func TestGraphReachable(t *testing.T) {
	ld, err := Load(".", "./testdata/src/puredet/kernel")
	if err != nil {
		t.Fatal(err)
	}
	g := buildGraph(ld)

	clean := puredetFixture + ":CleanStep"
	dirty := puredetFixture + ":DirtyStep"
	pair := puredetFixture + ":pair"
	stamp := puredetFixture + ":stamp"
	for _, key := range []string{clean, dirty, pair, stamp} {
		if g.Nodes[key] == nil {
			t.Fatalf("graph has no node for %s; nodes: %v", key, len(g.Nodes))
		}
	}

	cone := g.Reachable([]string{clean})
	if cone[pair] == nil || cone[clean] == nil {
		t.Errorf("CleanStep cone misses pair/itself: %d nodes", len(cone))
	}
	if cone[stamp] != nil {
		t.Errorf("CleanStep cone must not contain stamp")
	}
	dirtyCone := g.Reachable([]string{dirty})
	if dirtyCone[stamp] == nil || dirtyCone[pair] == nil {
		t.Errorf("DirtyStep cone misses stamp/pair: %d nodes", len(dirtyCone))
	}

	dn := g.Nodes[dirty]
	if len(dn.Dynamic) == 0 {
		t.Error("DirtyStep's fn() call must be recorded as a dynamic site")
	}
	if len(dn.Spawns) != 1 {
		t.Errorf("DirtyStep has %d recorded spawns, want 1", len(dn.Spawns))
	}
}

// TestCertifyFixture checks root verdicts, violation capture, and the
// hotalloc ledger semantics (a suppressed site stays in the ledger).
func TestCertifyFixture(t *testing.T) {
	opts := &Options{Roots: []RootSpec{
		puredetFixture + ":CleanStep", puredetFixture + ":DirtyStep",
	}}
	_, _, cert, err := Certify(".", []string{"./testdata/src/puredet/kernel"}, Analyzers(), opts)
	if err != nil {
		t.Fatal(err)
	}
	verdicts := make(map[string]string)
	for _, r := range cert.Roots {
		verdicts[r.Root] = r.Verdict
	}
	if v := verdicts[puredetFixture+":CleanStep"]; v != "certified" {
		t.Errorf("CleanStep verdict = %q, want certified", v)
	}
	if v := verdicts[puredetFixture+":DirtyStep"]; v != "uncertified" {
		t.Errorf("DirtyStep verdict = %q, want uncertified", v)
	}
	if cert.Certified() {
		t.Error("certificate with an uncertified root must not report Certified")
	}
	// The suppressed time.Now in stamp must still appear as a violation.
	var stampViolation bool
	for _, r := range cert.Roots {
		for _, v := range r.Violations {
			if strings.Contains(v, ":stamp:") || strings.Contains(v, "stamp: calls time.Now") {
				stampViolation = true
			}
		}
	}
	if !stampViolation {
		t.Error("suppressed wall-clock read in stamp missing from certificate violations")
	}

	// An unresolved root is a verdict, not a silent drop.
	opts.Roots = append(opts.Roots, RootSpec(puredetFixture+":NoSuchKernel"))
	diags, _, cert2, err := Certify(".", []string{"./testdata/src/puredet/kernel"}, Analyzers(), opts)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range cert2.Roots {
		if r.Root == puredetFixture+":NoSuchKernel" && r.Verdict == "unresolved" {
			found = true
		}
	}
	if !found {
		t.Error("missing root must get an unresolved verdict")
	}
	var rotDiag bool
	for _, d := range diags {
		if d.Rule == "puredet" && strings.Contains(d.Message, "NoSuchKernel") {
			rotDiag = true
		}
	}
	if !rotDiag {
		t.Error("registry rot must surface as a puredet diagnostic")
	}
}

// TestCertifyHotallocLedger checks that the annotated fixture site is
// absent from diagnostics but present in the ledger.
func TestCertifyHotallocLedger(t *testing.T) {
	opts := &Options{Roots: []RootSpec{hotallocFixture + ":Forces"}}
	diags, _, cert, err := Certify(".", []string{"./testdata/src/hotalloc/kernel"}, Analyzers(), opts)
	if err != nil {
		t.Fatal(err)
	}
	var suppressed, positive bool
	for _, s := range cert.Hotalloc.Sites {
		switch s.Func {
		case hotallocFixture + ":grow":
			suppressed = true
		case hotallocFixture + ":scratch":
			positive = true
		case hotallocFixture + ":Cold":
			t.Error("Cold is outside the hot cone and must not be ledgered")
		}
	}
	if !suppressed || !positive {
		t.Errorf("ledger = %+v, want both scratch (reported) and grow (suppressed) sites", cert.Hotalloc.Sites)
	}
	for _, d := range diags {
		if d.Rule == "hotalloc" && strings.Contains(d.Message, ":grow") {
			t.Errorf("suppressed site still reported: %s", d)
		}
	}
}

// TestCertificateDeterminism runs the same certification twice and
// demands byte-identical certificates.
func TestCertificateDeterminism(t *testing.T) {
	opts := &Options{Roots: []RootSpec{hotallocFixture + ":Forces"}}
	render := func() string {
		t.Helper()
		_, _, cert, err := Certify(".", []string{"./testdata/src/hotalloc/kernel"}, Analyzers(), opts)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := cert.WriteJSON(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("certificate is not byte-deterministic:\n--- run 1\n%s\n--- run 2\n%s", a, b)
	}
}

// TestAllowlistRecording checks that an allowlist entry both silences
// the dynamic-site violation and lands in the certificate.
func TestAllowlistRecording(t *testing.T) {
	opts := &Options{
		Roots: []RootSpec{puredetFixture + ":DirtyStep"},
		Allow: []AllowRule{{
			Caller: puredetFixture + ":DirtyStep", Callee: "fn",
			Reason: "fixture: reviewed dynamic kernel argument",
		}},
	}
	diags, _, cert, err := Certify(".", []string{"./testdata/src/puredet/kernel"}, Analyzers(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Rule == "puredet" && strings.Contains(d.Message, "unresolved dynamic call fn") {
			t.Errorf("allowlisted dynamic site still reported: %s", d)
		}
	}
	found := false
	for _, e := range cert.Allowed {
		if e.Callee == "fn" && e.Caller == puredetFixture+":DirtyStep" &&
			e.Reason == "fixture: reviewed dynamic kernel argument" {
			found = true
		}
	}
	if !found {
		t.Errorf("used allowlist entry missing from certificate: %+v", cert.Allowed)
	}
}

// TestParseRoots checks the -roots override syntax.
func TestParseRoots(t *testing.T) {
	rs, err := ParseRoots("a/b:F, c/d:T.M ,")
	if err != nil || len(rs) != 2 || rs[0] != "a/b:F" || rs[1] != "c/d:T.M" {
		t.Fatalf("ParseRoots = %v, %v", rs, err)
	}
	if _, err := ParseRoots("no-colon-here"); err == nil {
		t.Fatal("ParseRoots without a colon succeeded, want error")
	}
	if _, err := ParseRoots(" ,  , "); err == nil {
		t.Fatal("ParseRoots with only separators succeeded, want error")
	}
}

// TestSuppressEdgeCases pins the parser corners the fixture files
// cannot express literally: trailing whitespace after the reason,
// multi-rule lists, the exact one-line-below coverage window, and
// space-after-comma rule lists (which are malformed, not silently
// partial). Blank lines keep the coverage windows from overlapping.
func TestSuppressEdgeCases(t *testing.T) {
	src := "package p\n" + // line 1
		"var a = 1 //mdlint:ignore floatdet reason with trailing spaces   \n" + // line 2
		"\n" + // line 3
		"var b = 2 //mdlint:ignore floatdet,closeerr one comment, two rules\n" + // line 4
		"\n" + // line 5
		"var c = 3 //mdlint:ignore floatdet, closeerr space after comma is malformed\n" // line 6
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "edge.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Files: []*ast.File{f}}
	valid := map[string]bool{"floatdet": true, "closeerr": true}
	set, diags := suppressions(fset, pkg, valid)

	if !set.covers("floatdet", "edge.go", 2) {
		t.Error("trailing whitespace after the reason must not break the suppression")
	}
	if set.covers("closeerr", "edge.go", 2) {
		t.Error("single-rule suppression must not cover other rules")
	}
	// Window: the comment line and exactly one line below, never above.
	if !set.covers("floatdet", "edge.go", 3) {
		t.Error("suppression must cover the line below the comment")
	}
	if set.covers("floatdet", "edge.go", 1) {
		t.Error("suppression must not extend upward")
	}
	if !set.covers("floatdet", "edge.go", 4) || !set.covers("closeerr", "edge.go", 4) {
		t.Error("one comment naming two rules must cover both")
	}
	// Line 6: "floatdet" parses; " closeerr" (leading space from the
	// space-after-comma spelling) is an unknown rule and must be
	// reported, not silently accepted.
	if !set.covers("floatdet", "edge.go", 6) {
		t.Error("first rule of a malformed list still parses")
	}
	if set.covers("closeerr", "edge.go", 6) {
		t.Error("space-after-comma rule must not be silently accepted")
	}
	foundMalformed := false
	for _, d := range diags {
		if d.Rule == "ignore" && strings.Contains(d.Message, "unknown rule") {
			foundMalformed = true
		}
	}
	if !foundMalformed {
		t.Errorf("malformed rule list produced no ignore diagnostic: %v", diags)
	}
}
