package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// TestFixtures runs each analyzer over its fixture package and checks
// the diagnostics against the "// want <rule>" markers in the fixture
// source: every marked line must be reported (once per listed rule),
// and nothing else may be. Suppressed cases in the fixtures carry
// //mdlint:ignore annotations and therefore must not surface.
func TestFixtures(t *testing.T) {
	cases := []struct {
		rule    string
		pattern string
	}{
		{"floatdet", "./testdata/src/floatdet"},
		{"rawrand", "./testdata/src/rawrand"},
		{"precision", "./testdata/src/precision/vec"},
		{"ctxloop", "./testdata/src/ctxloop/mdrun"},
		{"ctxloop", "./testdata/src/ctxloop/serve"},
		{"ctxloop", "./testdata/src/ctxloop/chaos"},
		{"closeerr", "./testdata/src/closeerr/guard"},
		{"closeerr", "./testdata/src/closeerr/serve"},
		{"closeerr", "./testdata/src/closeerr/chaos"},
	}
	for _, tc := range cases {
		t.Run(tc.rule, func(t *testing.T) {
			azs, err := Select(tc.rule)
			if err != nil {
				t.Fatal(err)
			}
			diags, stats, err := Run(".", []string{tc.pattern}, azs)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Packages != 1 || stats.Files == 0 {
				t.Fatalf("loaded %d packages / %d files, want 1 package with files", stats.Packages, stats.Files)
			}

			want := wantMarkers(t, tc.pattern)
			got := make(map[string]int)
			for _, d := range diags {
				if d.Rule == "ignore" {
					t.Errorf("fixture has a malformed suppression: %s", d)
					continue
				}
				got[fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule)]++
			}
			for k, n := range want {
				if got[k] != n {
					t.Errorf("%s: got %d diagnostics, want %d", k, got[k], n)
				}
			}
			for k, n := range got {
				if want[k] == 0 {
					t.Errorf("unexpected diagnostic ×%d at %s", n, k)
				}
			}
		})
	}
}

// wantMarkers scans a fixture directory for "// want rule[ rule...]"
// markers and returns expected counts keyed by file:line:rule.
func wantMarkers(t *testing.T, dir string) map[string]int {
	t.Helper()
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	want := make(map[string]int)
	for _, name := range files {
		f, err := os.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, marker, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, rule := range strings.Fields(marker) {
				want[fmt.Sprintf("%s:%d:%s", filepath.Base(name), line, rule)]++
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		_ = f.Close() // read path; Scanner already surfaced any read error
	}
	if len(want) == 0 {
		t.Fatalf("fixture %s has no want markers", dir)
	}
	return want
}

// TestSuppressionValidation checks that malformed //mdlint:ignore
// annotations surface under the pseudo-rule "ignore" — and that a
// well-formed one does not.
func TestSuppressionValidation(t *testing.T) {
	diags, _, err := Run(".", []string{"./testdata/src/badignore"}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		if d.Rule != "ignore" {
			t.Errorf("unexpected non-ignore diagnostic: %s", d)
			continue
		}
		msgs = append(msgs, d.Message)
	}
	if len(msgs) != 3 {
		t.Fatalf("got %d ignore diagnostics (%q), want 3", len(msgs), msgs)
	}
	sort.Strings(msgs)
	for i, substr := range []string{"needs a reason", "unknown rule nosuchrule", "needs a rule name"} {
		if !strings.Contains(msgs[i], substr) {
			t.Errorf("diagnostic %d = %q, want it to mention %q", i, msgs[i], substr)
		}
	}
}

// TestSelect checks rule-list resolution.
func TestSelect(t *testing.T) {
	all, err := Select("")
	if err != nil || len(all) != len(Analyzers()) {
		t.Fatalf("Select(\"\") = %d analyzers, %v; want the full registry", len(all), err)
	}
	two, err := Select("floatdet, closeerr")
	if err != nil || len(two) != 2 || two[0].Name != "floatdet" || two[1].Name != "closeerr" {
		t.Fatalf("Select(\"floatdet, closeerr\") = %v, %v", two, err)
	}
	if _, err := Select("nosuchrule"); err == nil {
		t.Fatal("Select(\"nosuchrule\") succeeded, want error")
	}
}

// TestAppliesTo checks the path-suffix scope matching.
func TestAppliesTo(t *testing.T) {
	a := &Analyzer{Scope: []string{"vec", "cmd/mdsim"}}
	for path, want := range map[string]bool{
		"repro/internal/vec":       true,
		"vec":                      true,
		"repro/cmd/mdsim":          true,
		"repro/internal/vecmath":   false,
		"repro/internal/gpu":       false,
		"repro/internal/approvec":  false,
	} {
		if got := a.AppliesTo(path); got != want {
			t.Errorf("AppliesTo(%q) = %v, want %v", path, got, want)
		}
	}
	unscoped := &Analyzer{}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("unscoped analyzer must apply everywhere")
	}
}

// TestLoadErrors checks that an unresolvable pattern is a load error,
// not a silent empty result.
func TestLoadErrors(t *testing.T) {
	if _, _, err := Run(".", []string{"./does/not/exist"}, Analyzers()); err == nil {
		t.Fatal("Run on a nonexistent pattern succeeded, want error")
	}
}
