package guard

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/mdrun"
	"repro/internal/sim"
)

func ctxRunConfig(seed uint64) mdrun.Config {
	return mdrun.Config{
		Atoms: 108, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: seed,
		Cutoff: 2.2, Dt: 0.004, Shifted: true,
		Method: mdrun.Direct,
	}
}

// TestRunContextCancellationIsTerminal pins that cancellation is
// deliberate, not transient: no rollback, no escalation, a single
// IncidentCancelled, and an error wrapping context.Canceled.
func TestRunContextCancellationIsTerminal(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sup, err := New(Config{Run: ctxRunConfig(5), CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	_, rep, err := sup.RunContext(ctx, 50)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if rep.Rollbacks != 0 || rep.Attempts != 0 {
		t.Fatalf("cancellation triggered recovery: %v", rep)
	}
	if rep.Counts.Count(sim.IncidentCancelled) != 1 {
		t.Fatalf("cancelled incidents %d, want 1: %v", rep.Counts.Count(sim.IncidentCancelled), rep)
	}
	if rep.Completed {
		t.Fatal("cancelled run reported completed")
	}
}

// TestRunContextDeadlineUnderFaults pins the batch-serving composition:
// a straggler-faulted parallel run that exceeds its deadline is cut off
// within one segment, even while the injected delay is sleeping.
func TestRunContextDeadlineUnderFaults(t *testing.T) {
	cfg := ctxRunConfig(6)
	cfg.Method = mdrun.ParallelDirect
	cfg.Workers = 2
	cfg.Faults = faults.NewRegistry(1).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Delay, Delay: time.Second,
		Trigger: faults.Trigger{FromCall: 1},
	})
	sup, err := New(Config{Run: cfg, CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, rep, err := sup.RunContext(ctx, 100)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("deadline ignored for %v", elapsed)
	}
	if rep.Counts.Count(sim.IncidentCancelled) == 0 {
		t.Fatalf("no cancelled incident: %v", rep)
	}
}

// TestRunContextBackgroundCompletes pins that RunContext with a live
// context behaves exactly like Run.
func TestRunContextBackgroundCompletes(t *testing.T) {
	sup, err := New(Config{Run: ctxRunConfig(7), CheckEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sum, rep, err := sup.RunContext(context.Background(), 20)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || sum.Steps != 20 {
		t.Fatalf("run did not complete: %v %v", sum, rep)
	}
	if rep.Counts.Total() != 0 {
		t.Fatalf("clean run logged incidents: %v", rep)
	}
}
