package guard

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/lattice"
	"repro/internal/mdrun"
	"repro/internal/sim"
)

func baseRun(method mdrun.ForceMethod, atoms, workers int) mdrun.Config {
	return mdrun.Config{
		Atoms: atoms, Density: 0.8442, Temperature: 0.728,
		Lattice: lattice.FCC, Seed: 7,
		Cutoff: 2.5, Dt: 0.004, Shifted: true,
		Method: method, Workers: workers,
	}
}

// TestCleanRunMatchesPlainRun: with no faults, supervision must be
// invisible — the guarded trajectory is bitwise the plain runner's,
// the report shows zero incidents, and checkpoints land on disk.
func TestCleanRunMatchesPlainRun(t *testing.T) {
	cfg := baseRun(mdrun.Direct, 108, 1)

	plain, err := mdrun.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	if _, err := plain.Run(50); err != nil {
		t.Fatal(err)
	}

	sup, err := New(Config{
		Run: cfg, CheckEvery: 10, CheckpointEvery: 20,
		CheckpointDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sum, rep, err := sup.Run(50)
	if err != nil {
		t.Fatal(err)
	}

	a, b := plain.System(), sup.System()
	if a.Steps != b.Steps {
		t.Fatalf("steps %d vs %d", a.Steps, b.Steps)
	}
	for i := 0; i < a.N(); i++ {
		if a.Pos.At(i) != b.Pos.At(i) || a.Vel.At(i) != b.Vel.At(i) {
			t.Fatalf("guarded run diverged at atom %d", i)
		}
	}
	if sum.FinalEnergy != a.TotalEnergy() {
		t.Fatalf("summary energy %v vs %v", sum.FinalEnergy, a.TotalEnergy())
	}
	if rep.Counts.Total() != 0 || rep.Rollbacks != 0 || !rep.Completed {
		t.Fatalf("clean run logged incidents: %v", rep)
	}
	if rep.CheckpointsWritten == 0 {
		t.Fatal("no checkpoints written")
	}
}

// TestRecoveryEscalatesToSerial is the PR's acceptance scenario: NaN
// forces injected mid-run under ParallelCellGrid must be detected by
// the watchdog, rolled back to a CRC-valid checkpoint, and escalated
// through the ladder until the serial fallback (which never consults
// the parallel-forces fault site) completes the run — with a final
// energy matching an uninterrupted serial run to 1e-8 relative.
func TestRecoveryEscalatesToSerial(t *testing.T) {
	cfg := baseRun(mdrun.ParallelCellGrid, 864, 4)
	cfg.Faults = faults.NewRegistry(11).Arm(faults.Fault{
		Site: faults.SiteParallelForces, Kind: faults.NaN,
		Trigger: faults.Trigger{FromCall: 25},
	})
	dir := t.TempDir()
	sup, err := New(Config{
		Run: cfg, CheckEvery: 10, CheckpointEvery: 10,
		CheckpointDir: dir, MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sum, rep, err := sup.Run(40)
	if err != nil {
		t.Fatalf("supervised run failed (%v); report: %v", err, rep)
	}

	// Uninterrupted serial reference with the original dt.
	ref := cfg
	ref.Method = mdrun.CellGrid
	ref.Faults = nil
	plain, err := mdrun.New(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer plain.Close()
	refSum, err := plain.Run(40)
	if err != nil {
		t.Fatal(err)
	}

	relDiff := math.Abs(sum.FinalEnergy-refSum.FinalEnergy) / math.Abs(refSum.FinalEnergy)
	if relDiff > 1e-8 {
		t.Fatalf("recovered energy %v vs serial %v: rel diff %g > 1e-8",
			sum.FinalEnergy, refSum.FinalEnergy, relDiff)
	}
	if sup.System().Steps != 40 {
		t.Fatalf("final steps %d, want 40", sup.System().Steps)
	}

	// The whole ladder must have been walked: parallel retry, halved
	// dt, serial fallback — with a rollback before each.
	if got := rep.Counts.Count(sim.IncidentNaN); got < 3 {
		t.Errorf("NaN detections = %d, want >= 3 (one per failed attempt)", got)
	}
	if rep.Rollbacks != 3 || rep.Attempts != 3 {
		t.Errorf("rollbacks/attempts = %d/%d, want 3/3", rep.Rollbacks, rep.Attempts)
	}
	for _, inc := range []sim.Incident{sim.IncidentRetry, sim.IncidentDtHalved, sim.IncidentSerialFallback} {
		if rep.Counts.Count(inc) != 1 {
			t.Errorf("%v count = %d, want 1", inc, rep.Counts.Count(inc))
		}
	}
	if !rep.Completed || rep.FinalMethod != mdrun.CellGrid || rep.FinalDt != cfg.Dt {
		t.Errorf("final method/dt = %v/%g completed=%v, want cellgrid/%g/true",
			rep.FinalMethod, rep.FinalDt, rep.Completed, cfg.Dt)
	}
}

// TestOneShotWorkerPanicRetried: a single injected worker panic must
// cost one rollback and one plain retry — no escalation — and the run
// still completes on the parallel method.
func TestOneShotWorkerPanicRetried(t *testing.T) {
	cfg := baseRun(mdrun.ParallelDirect, 108, 3)
	cfg.Faults = faults.NewRegistry(12).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic,
		Trigger: faults.Trigger{AtCall: 10},
	})
	sup, err := New(Config{Run: cfg, CheckEvery: 5, CheckpointEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	_, rep, err := sup.Run(30)
	if err != nil {
		t.Fatalf("run failed (%v); report: %v", err, rep)
	}
	if rep.Rollbacks != 1 || rep.Counts.Count(sim.IncidentRetry) != 1 {
		t.Errorf("rollbacks=%d retries=%d, want 1/1; report: %v",
			rep.Rollbacks, rep.Counts.Count(sim.IncidentRetry), rep)
	}
	if rep.Counts.Count(sim.IncidentSerialFallback) != 0 || rep.FinalMethod != mdrun.ParallelDirect {
		t.Errorf("one-shot fault escalated: %v", rep)
	}
	if rep.Counts.Count(sim.IncidentRunError) != 1 {
		t.Errorf("run-error count = %d, want 1", rep.Counts.Count(sim.IncidentRunError))
	}
	if sup.System().Steps != 30 {
		t.Errorf("final steps %d, want 30", sup.System().Steps)
	}
}

// TestPersistentFaultGivesUp: a fault that fires at every force
// evaluation regardless of method must exhaust the ladder and return
// the structured give-up error, with the report accounting for every
// attempt.
func TestPersistentFaultGivesUp(t *testing.T) {
	cfg := baseRun(mdrun.Direct, 108, 1)
	cfg.Faults = faults.NewRegistry(13).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{FromCall: 1},
	})
	sup, err := New(Config{Run: cfg, CheckEvery: 5, CheckpointEvery: 5, MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	sum, rep, err := sup.Run(20)
	if err == nil {
		t.Fatal("persistent fault did not exhaust the budget")
	}
	if !strings.Contains(err.Error(), "giving up after 3") {
		t.Errorf("give-up error = %v", err)
	}
	if sum != nil {
		t.Error("gave-up run returned a summary")
	}
	if rep == nil {
		t.Fatal("no report on give-up")
	}
	if rep.Completed || rep.Attempts != 3 || rep.Rollbacks != 3 {
		t.Errorf("report = %v, want 3 attempts, 3 rollbacks, not completed", rep)
	}
	if rep.Counts.Count(sim.IncidentSerialFallback) != 1 {
		t.Errorf("serial rung never tried: %v", rep)
	}
	if rep.Counts.Count(sim.IncidentNaN) != 4 {
		t.Errorf("NaN detections = %d, want 4 (initial + 3 retries)", rep.Counts.Count(sim.IncidentNaN))
	}
}

// TestCorruptCheckpointSkipped: recovery must never trust a corrupt
// checkpoint — a planted garbage file with the highest step number is
// skipped (logged as ckpt-corrupt) in favor of an older valid one.
func TestCorruptCheckpointSkipped(t *testing.T) {
	dir := t.TempDir()
	// Plant garbage that sorts as the newest checkpoint.
	bogus := filepath.Join(dir, "ckpt-000099999.mdcp")
	if err := os.WriteFile(bogus, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := baseRun(mdrun.ParallelDirect, 108, 2)
	cfg.Faults = faults.NewRegistry(14).Arm(faults.Fault{
		Site: faults.SiteWorker, Kind: faults.Panic,
		Trigger: faults.Trigger{AtCall: 3},
	})
	sup, err := New(Config{
		Run: cfg, CheckEvery: 5, CheckpointEvery: 5,
		CheckpointDir: dir, KeepCheckpoints: 100, // keep the bait in place
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	_, rep, err := sup.Run(20)
	if err != nil {
		t.Fatalf("run failed (%v); report: %v", err, rep)
	}
	if rep.Counts.Count(sim.IncidentCheckpointCorrupt) == 0 {
		t.Errorf("corrupt checkpoint never flagged: %v", rep)
	}
	if !rep.Completed || rep.Rollbacks != 1 {
		t.Errorf("report = %v, want completed with 1 rollback", rep)
	}
	if sup.System().Steps != 20 {
		t.Errorf("final steps %d, want 20", sup.System().Steps)
	}
}

// TestStoreRecoveryOrder white-boxes the store: newest valid wins;
// truncating the newest demotes recovery to the next older file.
func TestStoreRecoveryOrder(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir, 10, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mdrun.New(baseRun(mdrun.Direct, 108, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := st.save(r.System()); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := st.save(r.System()); err != nil {
		t.Fatal(err)
	}

	noCorrupt := func(name string, err error) { t.Errorf("unexpected corrupt %s: %v", name, err) }
	if sys := st.recoverLatest(noCorrupt); sys == nil || sys.Steps != 20 {
		t.Fatalf("want newest (step 20), got %v", sys)
	}

	// Truncate the newest; recovery must fall back to step 10.
	newest := st.path(20)
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(newest, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	corrupted := 0
	sys := st.recoverLatest(func(name string, err error) { corrupted++ })
	if sys == nil || sys.Steps != 10 {
		t.Fatalf("want fallback to step 10, got %v", sys)
	}
	if corrupted != 1 {
		t.Fatalf("corrupt callbacks = %d, want 1", corrupted)
	}
}

// TestStorePrunesRetention: only the newest KeepCheckpoints files may
// remain on disk.
func TestStorePrunesRetention(t *testing.T) {
	dir := t.TempDir()
	st, err := newStore(dir, 2, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := mdrun.New(baseRun(mdrun.Direct, 108, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 5; i++ {
		if _, err := r.Run(5); err != nil {
			t.Fatal(err)
		}
		if err := st.save(r.System()); err != nil {
			t.Fatal(err)
		}
	}
	steps := st.list()
	if len(steps) != 2 || steps[0] != 25 || steps[1] != 20 {
		t.Fatalf("retained %v, want [25 20]", steps)
	}
	// No temp droppings.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Errorf("leftover temp file %s", e.Name())
		}
	}
}

// TestCheckpointWriteFaultNonFatal: an injected checkpoint-write
// failure must not kill the run — the in-memory snapshot still guards
// it, and the incident is logged.
func TestCheckpointWriteFaultNonFatal(t *testing.T) {
	cfg := baseRun(mdrun.Direct, 108, 1)
	cfg.Faults = faults.NewRegistry(15).Arm(faults.Fault{
		Site: faults.SiteCheckpoint, Kind: faults.Error,
		Trigger: faults.Trigger{FromCall: 1},
	})
	sup, err := New(Config{
		Run: cfg, CheckEvery: 5, CheckpointEvery: 5,
		CheckpointDir: t.TempDir(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	_, rep, err := sup.Run(10)
	if err != nil {
		t.Fatalf("run failed (%v); report: %v", err, rep)
	}
	if rep.Counts.Count(sim.IncidentCheckpointWriteFail) == 0 {
		t.Errorf("write failures never logged: %v", rep)
	}
	if rep.CheckpointsWritten != 0 {
		t.Errorf("checkpoints written = %d with a failing writer", rep.CheckpointsWritten)
	}
}

// TestBackoffDoubles pins the exponential-backoff schedule through the
// injectable sleep hook.
func TestBackoffDoubles(t *testing.T) {
	cfg := baseRun(mdrun.Direct, 108, 1)
	cfg.Faults = faults.NewRegistry(16).Arm(faults.Fault{
		Site: faults.SiteForces, Kind: faults.NaN,
		Trigger: faults.Trigger{FromCall: 1},
	})
	var slept []time.Duration
	sup, err := New(Config{
		Run: cfg, CheckEvery: 5, MaxRetries: 3,
		BaseBackoff: time.Millisecond,
		Sleep:       func(d time.Duration) { slept = append(slept, d) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if _, _, err := sup.Run(20); err == nil {
		t.Fatal("expected give-up")
	}
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("slept %v, want %v", slept, want)
		}
	}
}

// TestSerialOf pins the escalation method mapping.
func TestSerialOf(t *testing.T) {
	cases := map[mdrun.ForceMethod]mdrun.ForceMethod{
		mdrun.Direct:           mdrun.Direct,
		mdrun.Pairlist:         mdrun.Pairlist,
		mdrun.CellGrid:         mdrun.CellGrid,
		mdrun.ParallelDirect:   mdrun.Direct,
		mdrun.ParallelPairlist: mdrun.Pairlist,
		mdrun.ParallelCellGrid: mdrun.CellGrid,
		// The escalation ladder preserves the requested precision:
		// mixed-precision runs land on the serial mixed kernel, never
		// silently back on float64.
		mdrun.PairlistF32:         mdrun.PairlistF32,
		mdrun.CellGridF32:         mdrun.CellGridF32,
		mdrun.ParallelPairlistF32: mdrun.PairlistF32,
	}
	for in, want := range cases {
		if got := SerialOf(in); got != want {
			t.Errorf("SerialOf(%v) = %v, want %v", in, got, want)
		}
	}
}

// TestSupervisorSingleUse: a second Run must refuse cleanly.
func TestSupervisorSingleUse(t *testing.T) {
	sup, err := New(Config{Run: baseRun(mdrun.Direct, 108, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if _, _, err := sup.Run(5); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sup.Run(5); err == nil {
		t.Fatal("second Run accepted")
	}
}
