package guard

import (
	"fmt"
	"strings"

	"repro/internal/mdrun"
	"repro/internal/sim"
)

// Event is one supervision incident with its context.
type Event struct {
	Step    int          // system step count when the event was logged
	Attempt int          // recovery attempt in flight (0 outside recovery)
	Kind    sim.Incident // incident class
	Detail  string       // human-readable description
}

// RunReport is the structured account of a supervised run: every
// incident, plus the aggregate counters dashboards and benches want.
type RunReport struct {
	Events []Event
	Counts sim.IncidentLog

	CheckpointsWritten int
	Rollbacks          int
	Attempts           int // recovery attempts actually performed

	// FinalMethod and FinalDt describe the configuration the run ended
	// on — they differ from the requested ones iff escalation happened.
	FinalMethod mdrun.ForceMethod
	FinalDt     float64

	Completed bool
}

// log appends an event and bumps its incident counter.
func (r *RunReport) log(step, attempt int, kind sim.Incident, detail string) {
	r.Events = append(r.Events, Event{Step: step, Attempt: attempt, Kind: kind, Detail: detail})
	r.Counts.Add(kind, 1)
}

// String renders a compact single-paragraph account.
func (r *RunReport) String() string {
	var b strings.Builder
	status := "gave up"
	if r.Completed {
		status = "completed"
	}
	fmt.Fprintf(&b, "%s: method %v dt %g, %d checkpoints, %d rollbacks, %d attempts",
		status, r.FinalMethod, r.FinalDt, r.CheckpointsWritten, r.Rollbacks, r.Attempts)
	if s := r.Counts.String(); s != "" {
		fmt.Fprintf(&b, " [%s]", s)
	}
	return b.String()
}
