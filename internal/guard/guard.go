// Package guard is a resilient run supervisor for mdrun simulations.
//
// The paper's 2007-era accelerators run the MD kernel with no
// reliability story at all: the GPU's device memory has no ECC, the
// Cell SPE local stores no parity, and a single flipped bit or crashed
// worker loses the whole run. This package supplies the host-side
// counterpart a production framework needs around such devices:
//
//   - a numerical-health watchdog that scans the dynamic state for
//     NaN/Inf every few steps and enforces energy-drift and
//     temperature-explosion thresholds,
//   - periodic atomic checkpoints (temp file + fsync + rename, CRC32
//     trailer via the md format v2, retention of the last M),
//   - automatic recovery: roll back to the newest CRC-valid
//     checkpoint (corrupt ones are skipped, never trusted), then walk
//     an escalation ladder — retry as-is, halve the time step, fall
//     back to the serial force kernel — with exponential backoff,
//     giving up with a structured error after a configurable budget,
//   - a RunReport tallying every incident (internal/sim.IncidentLog)
//     so a run says not just that it finished but what it survived.
//
// Combined with internal/faults the package closes the loop: inject a
// fault, watch the supervisor detect, roll back, escalate, and finish.
package guard

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/fsys"
	"repro/internal/md"
	"repro/internal/mdrun"
	"repro/internal/sim"
	"repro/internal/vec"
)

// Config describes a supervised run.
type Config struct {
	// Run is the simulation to supervise, exactly as mdrun.New takes
	// it (including any armed fault injector).
	Run mdrun.Config

	// CheckEvery is the watchdog stride in steps: the run proceeds in
	// segments of this length, each followed by a health check.
	// Default 10.
	CheckEvery int

	// MaxEnergyDrift is the relative total-energy drift tolerated for
	// NVE runs (thermostatted runs exchange energy by design and are
	// not drift-checked). Default 0.05; negative disables.
	MaxEnergyDrift float64

	// MaxTempFactor flags a temperature explosion when the
	// instantaneous temperature exceeds this multiple of the target.
	// Default 100; negative disables.
	MaxTempFactor float64

	// CheckpointEvery is the checkpoint cadence in steps. Default 100.
	CheckpointEvery int

	// CheckpointDir, when non-empty, is where atomic checkpoint files
	// (ckpt-%09d.mdcp) are written; it is created if missing. When
	// empty, only the in-memory snapshot protects the run.
	CheckpointDir string

	// KeepCheckpoints bounds on-disk retention; older files are
	// pruned. Default 3.
	KeepCheckpoints int

	// MaxRetries is the recovery budget: how many rollback attempts
	// may be spent on one incident sequence before giving up.
	// Default 3 — exactly enough to traverse the full escalation
	// ladder (retry, halve dt, serial fallback).
	MaxRetries int

	// BaseBackoff is the sleep before the first retry; it doubles per
	// attempt. Zero disables sleeping.
	BaseBackoff time.Duration

	// Sleep is the backoff clock, replaceable for tests. Default
	// time.Sleep.
	Sleep func(time.Duration)

	// FS, when non-nil, replaces the real filesystem under the
	// checkpoint store — the fault-injection seam chaos campaigns use.
	// Nil means fsys.OS.
	FS fsys.FS

	// OnSegment, when non-nil, is called after every committed
	// (health-checked, non-rolled-back) segment with the observables at
	// that point — the per-job progress seam the serving layer streams
	// from. The callback runs on the supervising goroutine between
	// segments, so it must be fast and must not call back into the
	// Supervisor; it is never invoked for segments that are rolled
	// back, so consumers only ever see states that survived the
	// watchdog.
	OnSegment func(Progress)
}

// Progress is one committed-segment observation handed to
// Config.OnSegment: where the run is and what the state looks like.
type Progress struct {
	Step        int     // completed integration steps (absolute)
	Energy      float64 // total energy at the segment boundary
	Temperature float64 // instantaneous temperature
	PE          float64 // potential energy
}

// withDefaults fills zero values.
func (c Config) withDefaults() Config {
	if c.CheckEvery == 0 {
		c.CheckEvery = 10
	}
	if c.MaxEnergyDrift == 0 {
		c.MaxEnergyDrift = 0.05
	}
	if c.MaxTempFactor == 0 {
		c.MaxTempFactor = 100
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 100
	}
	if c.KeepCheckpoints == 0 {
		c.KeepCheckpoints = 3
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.Sleep == nil {
		c.Sleep = time.Sleep
	}
	return c
}

// Supervisor owns one supervised simulation.
type Supervisor struct {
	cfg    Config
	base   mdrun.Config // pristine run config (escalation reference)
	cur    mdrun.Config // config of the currently active runner
	runner *mdrun.Runner
	store  *store // nil without CheckpointDir
	snap   *md.System[float64]
	e0     float64
	report *RunReport
	ran    bool
}

// New builds the supervisor and the initial runner; the initial energy
// E0 the drift watchdog references is captured here.
func New(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	r, err := mdrun.New(cfg.Run)
	if err != nil {
		return nil, err
	}
	return supervise(cfg, r)
}

// NewFromSystem builds a supervisor that continues from an existing
// system state — the resume entry point the serving layer uses to pick
// an interrupted job back up from its latest valid checkpoint. The
// system is adopted (mdrun.NewFromSystem semantics: accelerations are
// kept, so a same-method resume continues the trajectory bit-exactly);
// the drift watchdog's E0 reference is the resume point's energy, and
// checkpoint files keep their absolute step numbering, so a resumed
// run's checkpoints slot into the same directory.
func NewFromSystem(sys *md.System[float64], cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	r, err := mdrun.NewFromSystem(sys, cfg.Run)
	if err != nil {
		return nil, err
	}
	return supervise(cfg, r)
}

// supervise wraps a built runner in a Supervisor (shared tail of New
// and NewFromSystem).
func supervise(cfg Config, r *mdrun.Runner) (*Supervisor, error) {
	s := &Supervisor{
		cfg:    cfg,
		base:   cfg.Run,
		cur:    cfg.Run,
		runner: r,
		snap:   r.System().Clone(),
		e0:     r.System().TotalEnergy(),
		report: &RunReport{FinalMethod: cfg.Run.Method, FinalDt: cfg.Run.Dt},
	}
	if cfg.CheckpointDir != "" {
		st, err := newStore(cfg.CheckpointDir, cfg.KeepCheckpoints, cfg.Run.Faults, cfg.FS)
		if err != nil {
			// Storage trouble degrades durability, it must not stop the
			// physics: run on the in-memory snapshot alone, like any
			// later checkpoint write failure, and record the incident.
			s.report.log(r.System().Steps, 0, sim.IncidentCheckpointWriteFail, err.Error())
		} else {
			s.store = st
		}
	}
	return s, nil
}

// Close releases the underlying runner. Safe to call more than once.
func (s *Supervisor) Close() {
	if s.runner != nil {
		s.runner.Close()
	}
}

// System exposes the live state of the currently active runner.
func (s *Supervisor) System() *md.System[float64] { return s.runner.System() }

// Report returns the (live) run report.
func (s *Supervisor) Report() *RunReport { return s.report }

// Run advances the simulation the given number of steps under
// supervision and returns a synthesized Summary, the RunReport, and
// the terminal error if the recovery budget was exhausted. The report
// is returned in every case. A Supervisor is single-use.
//
// The Summary's Steps/InitialEnergy/FinalEnergy/Pressure fields are
// authoritative; MeanTemperature is the step-weighted mean over
// committed (non-rolled-back) segments, and the MSD/RDF observables
// are not aggregated across recoveries (they reset at each rollback)
// so they are left zero.
func (s *Supervisor) Run(steps int) (*mdrun.Summary, *RunReport, error) {
	return s.RunContext(context.Background(), steps)
}

// RunContext is Run bounded by a context. Cancellation (or deadline
// expiry) is deliberate, not transient: it is logged as a single
// IncidentCancelled, never retried or escalated, and surfaces as an
// error wrapping ctx.Err() within one MD step of the cancellation —
// the property the batch scheduler's per-replica timeouts rely on.
func (s *Supervisor) RunContext(ctx context.Context, steps int) (*mdrun.Summary, *RunReport, error) {
	rep := s.report
	if s.ran {
		return nil, rep, fmt.Errorf("guard: Supervisor is single-use")
	}
	s.ran = true
	if steps < 0 {
		return nil, rep, fmt.Errorf("guard: steps must be non-negative, got %d", steps)
	}

	start := s.runner.System().Steps
	target := start + steps
	lastCkpt := start
	s.checkpoint() // step-0 baseline: recovery always has somewhere to go

	attempt := 0
	var tempSum, tempW float64
	for s.runner.System().Steps < target {
		sys := s.runner.System()
		seg := s.cfg.CheckEvery
		if rem := target - sys.Steps; rem < seg {
			seg = rem
		}
		sum, err := s.runner.RunContext(ctx, seg)
		if err != nil {
			if cerr := ctx.Err(); cerr != nil {
				rep.log(s.runner.System().Steps, attempt, sim.IncidentCancelled, err.Error())
				return nil, rep, fmt.Errorf("guard: run cancelled: %w", cerr)
			}
			rep.log(s.runner.System().Steps, attempt, sim.IncidentRunError, err.Error())
			if gerr := s.recover(ctx, &attempt, err); gerr != nil {
				return nil, rep, gerr
			}
			continue
		}
		if inc, detail := s.healthCheck(); inc >= 0 {
			rep.log(s.runner.System().Steps, attempt, inc, detail)
			if gerr := s.recover(ctx, &attempt, fmt.Errorf("guard: watchdog: %s", detail)); gerr != nil {
				return nil, rep, gerr
			}
			continue
		}
		// Segment committed: it contributes to the aggregate summary,
		// the ladder resets, and a checkpoint is taken when due.
		attempt = 0
		if sum.Steps > 0 {
			tempSum += sum.MeanTemperature * float64(sum.Steps)
			tempW += float64(sum.Steps)
		}
		cur := s.runner.System().Steps
		if cur-lastCkpt >= s.cfg.CheckpointEvery || cur >= target {
			s.checkpoint()
			lastCkpt = cur
		}
		if s.cfg.OnSegment != nil {
			s.cfg.OnSegment(Progress{
				Step:        cur,
				Energy:      sys.TotalEnergy(),
				Temperature: sys.Temperature(),
				PE:          sys.PE,
			})
		}
	}

	sys := s.runner.System()
	final := &mdrun.Summary{
		Steps:         steps,
		InitialEnergy: s.e0,
		FinalEnergy:   sys.TotalEnergy(),
		Pressure:      md.Pressure(sys.P, sys.Pos, sys.Temperature()),
	}
	if tempW > 0 {
		final.MeanTemperature = tempSum / tempW
	}
	rep.Completed = true
	rep.FinalMethod = s.cur.Method
	rep.FinalDt = s.cur.Dt
	return final, rep, nil
}

// checkpoint snapshots the current (health-checked) state in memory
// and, when a store is configured, on disk. Disk failures are
// incidents, not fatal errors: the in-memory snapshot still guards the
// run.
func (s *Supervisor) checkpoint() {
	sys := s.runner.System()
	s.snap = sys.Clone()
	if s.store != nil {
		if err := s.store.save(sys); err != nil {
			s.report.log(sys.Steps, 0, sim.IncidentCheckpointWriteFail, err.Error())
			return
		}
	}
	s.report.CheckpointsWritten++
}

// healthCheck scans the live state; it returns the incident class and
// a description, or (-1, "") when healthy.
func (s *Supervisor) healthCheck() (sim.Incident, string) {
	sys := s.runner.System()
	for i := 0; i < sys.N(); i++ {
		if !finiteV3(sys.Pos.At(i)) || !finiteV3(sys.Vel.At(i)) || !finiteV3(sys.Acc.At(i)) {
			return sim.IncidentNaN, fmt.Sprintf("non-finite state at atom %d, step %d", i, sys.Steps)
		}
	}
	e := sys.TotalEnergy()
	if math.IsNaN(e) || math.IsInf(e, 0) {
		return sim.IncidentNaN, fmt.Sprintf("non-finite energy at step %d", sys.Steps)
	}
	if s.cfg.MaxTempFactor > 0 && s.base.Temperature > 0 {
		if t := sys.Temperature(); t > s.cfg.MaxTempFactor*s.base.Temperature {
			return sim.IncidentTempExplosion,
				fmt.Sprintf("temperature %.3g exceeds %.3g×target at step %d", t, s.cfg.MaxTempFactor, sys.Steps)
		}
	}
	if s.base.Thermostat == mdrun.NVE && s.cfg.MaxEnergyDrift > 0 {
		ref := math.Abs(s.e0)
		if ref < 1 {
			ref = 1
		}
		if drift := math.Abs(e-s.e0) / ref; drift > s.cfg.MaxEnergyDrift {
			return sim.IncidentEnergyDrift,
				fmt.Sprintf("energy drift %.3g exceeds %.3g at step %d", drift, s.cfg.MaxEnergyDrift, sys.Steps)
		}
	}
	return -1, ""
}

// recover rolls back to the newest trustworthy state and rebuilds the
// runner one rung further up the escalation ladder. It returns nil
// when the run should continue, or the terminal give-up error once the
// retry budget is exhausted or the context is cancelled (backoff never
// outlives the caller's deadline).
func (s *Supervisor) recover(ctx context.Context, attempt *int, cause error) error {
	rep := s.report
	*attempt++
	if *attempt > s.cfg.MaxRetries {
		return fmt.Errorf("guard: giving up after %d recovery attempts: %w", s.cfg.MaxRetries, cause)
	}
	rep.Attempts++

	restored := s.restore()
	rep.Rollbacks++
	rep.log(restored.Steps, *attempt, sim.IncidentRollback,
		fmt.Sprintf("rolled back to step %d", restored.Steps))

	next, inc := s.rung(*attempt)
	rep.log(restored.Steps, *attempt, inc,
		fmt.Sprintf("attempt %d/%d: method %v, dt %g", *attempt, s.cfg.MaxRetries, next.Method, next.Dt))

	if s.cfg.BaseBackoff > 0 {
		s.cfg.Sleep(s.cfg.BaseBackoff << (*attempt - 1))
	}
	if cerr := ctx.Err(); cerr != nil {
		rep.log(restored.Steps, *attempt, sim.IncidentCancelled, cerr.Error())
		return fmt.Errorf("guard: run cancelled during recovery: %w", cerr)
	}

	s.runner.Close()
	r, err := mdrun.NewFromSystem(restored, next)
	if err != nil {
		return fmt.Errorf("guard: rebuilding runner after rollback: %w", err)
	}
	s.runner = r
	s.cur = next
	return nil
}

// restore returns the newest trustworthy state: the newest CRC-valid
// on-disk checkpoint if a store is configured (corrupt files are
// skipped and logged), else a copy of the in-memory snapshot.
func (s *Supervisor) restore() *md.System[float64] {
	if s.store != nil {
		sys := s.store.recoverLatest(func(name string, err error) {
			s.report.log(s.snap.Steps, 0, sim.IncidentCheckpointCorrupt,
				fmt.Sprintf("%s: %v", name, err))
		})
		if sys != nil {
			return sys
		}
	}
	return s.snap.Clone()
}

// rung maps a recovery attempt to its escalation strategy. The rungs
// reference the pristine base config, so the serial rung restores the
// original time step even if a halve-dt rung ran in between — a run
// that finishes serially is numerically the run the user asked for.
func (s *Supervisor) rung(attempt int) (mdrun.Config, sim.Incident) {
	switch {
	case attempt <= 1:
		return s.cur, sim.IncidentRetry
	case attempt == 2:
		c := s.cur
		c.Dt = s.base.Dt / 2
		return c, sim.IncidentDtHalved
	default:
		c := s.cur
		c.Method = SerialOf(s.base.Method)
		c.Dt = s.base.Dt
		return c, sim.IncidentSerialFallback
	}
}

// SerialOf maps a force method to its serial equivalent (serial
// methods map to themselves) — the last rung of the escalation ladder.
func SerialOf(m mdrun.ForceMethod) mdrun.ForceMethod {
	switch m {
	case mdrun.ParallelDirect:
		return mdrun.Direct
	case mdrun.ParallelPairlist:
		return mdrun.Pairlist
	case mdrun.ParallelCellGrid:
		return mdrun.CellGrid
	case mdrun.ParallelPairlistF32:
		// The serial rung keeps the requested precision: a run that
		// finishes on this rung is still the mixed-precision run the
		// user asked for, just unsharded.
		return mdrun.PairlistF32
	default:
		return m
	}
}

func finiteV3(v vec.V3[float64]) bool {
	return finite(v.X) && finite(v.Y) && finite(v.Z)
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
