package guard

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/faults"
	"repro/internal/fsys"
	"repro/internal/md"
)

// store is the atomic on-disk checkpoint protocol: write to a temp
// file in the target directory, fsync, rename into place, fsync the
// directory. A reader therefore only ever sees complete files — and
// the md format's CRC trailer rejects anything a lying disk mangles
// after that. All filesystem access goes through the fsys seam, so a
// chaos campaign can stand a failing disk under the protocol and check
// the promise instead of assuming it.
type store struct {
	dir  string
	keep int
	inj  faults.Injector // checkpoint writes pass through SiteCheckpoint
	fs   fsys.FS
}

const (
	ckptPrefix = "ckpt-"
	ckptSuffix = ".mdcp"
)

func newStore(dir string, keep int, inj faults.Injector, fs fsys.FS) (*store, error) {
	fs = fsys.OrOS(fs)
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("guard: checkpoint dir: %w", err)
	}
	if keep < 1 {
		keep = 1
	}
	return &store{dir: dir, keep: keep, inj: inj, fs: fs}, nil
}

// path returns the final name for a checkpoint at the given step.
func (st *store) path(step int) string {
	return filepath.Join(st.dir, fmt.Sprintf("%s%09d%s", ckptPrefix, step, ckptSuffix))
}

// save atomically persists the system state as ckpt-<steps>.mdcp and
// prunes old files beyond the retention bound. On any failure the temp
// file is removed and the previously persisted checkpoints are
// untouched.
func (st *store) save(sys *md.System[float64]) error {
	f, err := st.fs.CreateTemp(st.dir, ".tmp-"+ckptPrefix+"*")
	if err != nil {
		return fmt.Errorf("guard: checkpoint temp file: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close() //mdlint:ignore closeerr the write already failed; its error is the one worth reporting
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("guard: writing checkpoint: %w", err)
	}
	if err := md.WriteCheckpoint(faults.NewWriter(f, st.inj, faults.SiteCheckpoint), sys); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("guard: writing checkpoint: %w", err)
	}
	if err := st.fs.Rename(tmp, st.path(sys.Steps)); err != nil {
		_ = st.fs.Remove(tmp)
		return fmt.Errorf("guard: publishing checkpoint: %w", err)
	}
	st.syncDir()
	st.prune()
	return nil
}

// syncDir fsyncs the checkpoint directory so the rename itself is
// durable. Best-effort: some filesystems refuse directory fsync.
func (st *store) syncDir() {
	if d, err := st.fs.Open(st.dir); err == nil {
		_ = d.Sync()
		_ = d.Close() // read-only directory handle; nothing buffered to lose
	}
}

// list returns the steps of all well-named checkpoint files, newest
// first.
func (st *store) list() []int {
	entries, err := st.fs.ReadDir(st.dir)
	if err != nil {
		return nil
	}
	var steps []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
			continue
		}
		n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, ckptPrefix), ckptSuffix))
		if err != nil || n < 0 {
			continue
		}
		steps = append(steps, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(steps)))
	return steps
}

// prune removes checkpoints beyond the newest keep.
func (st *store) prune() {
	steps := st.list()
	for _, s := range steps[min(st.keep, len(steps)):] {
		_ = st.fs.Remove(st.path(s))
	}
}

// LatestCheckpoint returns the newest CRC-valid checkpoint in dir, or
// nil when the directory holds none (including when it does not
// exist). Corrupt or truncated files are reported through onCorrupt
// (which may be nil) and skipped — the same never-trust-a-bad-file
// discipline the in-run recovery path uses. This is the discovery seam
// the serving layer resumes interrupted jobs through: it composes a
// per-job checkpoint directory and asks for the latest trustworthy
// state without constructing a Supervisor first.
func LatestCheckpoint(dir string, onCorrupt func(name string, err error)) *md.System[float64] {
	return LatestCheckpointFS(nil, dir, onCorrupt)
}

// LatestCheckpointFS is LatestCheckpoint through an explicit
// filesystem seam (nil means the real one) — the variant a chaos
// campaign uses so that recovery, too, runs over the failing disk.
func LatestCheckpointFS(fs fsys.FS, dir string, onCorrupt func(name string, err error)) *md.System[float64] {
	if onCorrupt == nil {
		onCorrupt = func(string, error) {}
	}
	st := &store{dir: dir, keep: 1, fs: fsys.OrOS(fs)}
	return st.recoverLatest(onCorrupt)
}

// recoverLatest loads the newest checkpoint that passes the md
// reader's CRC and structural validation, newest first; files that
// fail are reported through onCorrupt and skipped — a corrupt
// checkpoint is never trusted, an older good one wins. Returns nil if
// no trustworthy checkpoint exists.
func (st *store) recoverLatest(onCorrupt func(name string, err error)) *md.System[float64] {
	for _, step := range st.list() {
		p := st.path(step)
		f, err := st.fs.Open(p)
		if err != nil {
			onCorrupt(filepath.Base(p), err)
			continue
		}
		sys, err := md.ReadCheckpoint(f)
		_ = f.Close() // read path; the CRC trailer already vouched for the payload
		if err != nil {
			onCorrupt(filepath.Base(p), err)
			continue
		}
		return sys
	}
	return nil
}
