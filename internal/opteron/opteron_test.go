package opteron

import (
	"math"
	"testing"

	"repro/internal/device"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/sim"
)

func workload(t *testing.T, n, steps int) device.Workload {
	t.Helper()
	st, err := lattice.Generate(lattice.Config{
		N: n, Density: 0.8442, Temperature: 0.728, Kind: lattice.FCC, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	cutoff := 2.5
	if 2*cutoff > st.Box {
		cutoff = st.Box / 2 * 0.99
	}
	return device.Workload{State: st, Cutoff: cutoff, Dt: 0.004, Steps: steps}
}

func TestRunMatchesReferencePhysics(t *testing.T) {
	w := workload(t, 108, 20)
	res, err := New(DefaultConfig()).Run(w)
	if err != nil {
		t.Fatal(err)
	}
	// Reference trajectory with the same (full-loop) kernel.
	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < w.Steps; i++ {
		sys.StepWith(func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}
	if rel := math.Abs(res.PE-sys.PE) / math.Abs(sys.PE); rel > 1e-12 {
		t.Fatalf("PE mismatch: device %v, reference %v (rel %v)", res.PE, sys.PE, rel)
	}
	if rel := math.Abs(res.KE-sys.KE) / math.Abs(sys.KE); rel > 1e-12 {
		t.Fatalf("KE mismatch: device %v, reference %v (rel %v)", res.KE, sys.KE, rel)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	w := workload(t, 64, 5)
	cpu := New(DefaultConfig())
	a, err := cpu.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cpu.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if a.Seconds() != b.Seconds() || a.PE != b.PE {
		t.Fatalf("nondeterministic result: %v/%v vs %v/%v", a.Seconds(), a.PE, b.Seconds(), b.PE)
	}
}

func TestRuntimeScalesQuadratically(t *testing.T) {
	cpu := New(DefaultConfig())
	small, err := cpu.Run(workload(t, 256, 5))
	if err != nil {
		t.Fatal(err)
	}
	big, err := cpu.Run(workload(t, 1024, 5))
	if err != nil {
		t.Fatal(err)
	}
	ratio := big.Seconds() / small.Seconds()
	// 4x atoms -> ~16x work; allow slack for O(N) terms and cache.
	if ratio < 12 || ratio > 24 {
		t.Fatalf("runtime ratio 1024/256 atoms = %v, want ~16", ratio)
	}
}

func TestCachePenaltyGrowsPastL1(t *testing.T) {
	// Position arrays: 24 B/atom. 1024 atoms = 24 KB (fits 64 KB L1);
	// 4096 atoms = 96 KB (spills). The memory component per pass must
	// jump across that boundary.
	cpu := New(DefaultConfig())
	inL1, err := cpu.Run(workload(t, 1024, 2))
	if err != nil {
		t.Fatal(err)
	}
	outL1, err := cpu.Run(workload(t, 4096, 2))
	if err != nil {
		t.Fatal(err)
	}
	memFracIn := inL1.Time.Component("memory") / inL1.Seconds()
	memFracOut := outL1.Time.Component("memory") / outL1.Seconds()
	if memFracOut <= memFracIn {
		t.Fatalf("memory fraction did not grow past L1: %v (1024) vs %v (4096)", memFracIn, memFracOut)
	}
	if memFracOut < 0.02 {
		t.Fatalf("memory fraction at 4096 atoms = %v; cache model inert", memFracOut)
	}
}

func TestPairlistVariantFaster(t *testing.T) {
	ref := New(DefaultConfig())
	cfg := DefaultConfig()
	cfg.UsePairlist = true
	opt := New(cfg)
	w := workload(t, 500, 10)
	a, err := ref.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	b, err := opt.Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if b.Seconds() >= a.Seconds() {
		t.Fatalf("pairlist (%vs) not faster than reference (%vs)", b.Seconds(), a.Seconds())
	}
	// Same physics.
	if rel := math.Abs(a.PE-b.PE) / math.Abs(a.PE); rel > 1e-9 {
		t.Fatalf("pairlist PE diverged: %v vs %v", b.PE, a.PE)
	}
	if a.Variant != "reference" || b.Variant != "pairlist" {
		t.Fatalf("variants mislabeled: %q, %q", a.Variant, b.Variant)
	}
}

func TestRejectsInvalidWorkload(t *testing.T) {
	cpu := New(DefaultConfig())
	if _, err := cpu.Run(device.Workload{}); err == nil {
		t.Fatal("empty workload accepted")
	}
	w := workload(t, 32, 1)
	w.Cutoff = -1
	if _, err := cpu.Run(w); err == nil {
		t.Fatal("negative cutoff accepted")
	}
}

func TestZeroStepsStillValid(t *testing.T) {
	res, err := New(DefaultConfig()).Run(workload(t, 32, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seconds() != 0 {
		t.Fatalf("zero steps took modeled time %v", res.Seconds())
	}
	if res.PE == 0 {
		t.Fatal("PE not evaluated for zero-step run")
	}
}

func TestLedgerPopulated(t *testing.T) {
	res, err := New(DefaultConfig()).Run(workload(t, 64, 3))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ledger.Total() == 0 {
		t.Fatal("empty ledger after run")
	}
	// sqrt per pair per step is the signature of the Figure 4 kernel.
	wantSqrt := int64(64*63) * 3
	if got := res.Ledger.Count(sim.OpFSqrt); got != wantSqrt {
		t.Fatalf("fsqrt count = %d, want %d", got, wantSqrt)
	}
}

func TestExactCacheMatchesAnalyticModel(t *testing.T) {
	// The closed-form streaming model must agree with a full
	// set-associative simulation of the same traffic — below and above
	// the L1 capacity. (Above capacity the cyclic LRU worst case makes
	// both all-miss; below, both all-hit after the cold pass. Partial
	// alignment effects at the boundary are why this asserts a small
	// relative tolerance rather than equality.)
	for _, n := range []int{1024, 4096} {
		w := workload(t, n, 1)
		analytic, err := New(DefaultConfig()).Run(w)
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.ExactCache = true
		exact, err := New(cfg).Run(w)
		if err != nil {
			t.Fatal(err)
		}
		a := analytic.Time.Component("memory")
		e := exact.Time.Component("memory")
		if a == 0 && e == 0 {
			continue
		}
		rel := math.Abs(a-e) / math.Max(a, e)
		if rel > 0.05 {
			t.Fatalf("n=%d: analytic memory %v vs exact %v (rel %v)", n, a, e, rel)
		}
		// Physics and compute identical either way.
		if analytic.PE != exact.PE || analytic.Time.Component("compute") != exact.Time.Component("compute") {
			t.Fatalf("n=%d: exact-cache mode changed non-memory results", n)
		}
	}
}

// TestPairlistBreakdownPinnedToN2Build pins the device model's modeled
// runtime against the neighbor-list build rework: a pairlist run (whose
// list is now built cell-binned) must reproduce — bitwise, including
// Breakdown.Total — a replica of the same run whose list is rebuilt
// with the reference O(N²) scan. Identical pair sets mean identical
// forces, identical PairCount-driven ledgers, and identical cycle
// accounting; any drift here means the build rework changed the list.
func TestPairlistBreakdownPinnedToN2Build(t *testing.T) {
	const steps = 20
	w := workload(t, 500, steps)
	cfg := DefaultConfig()
	cfg.UsePairlist = true
	res, err := New(cfg).Run(w)
	if err != nil {
		t.Fatal(err)
	}

	// Replica of Run's pairlist path with BuildN2-driven rebuilds.
	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := md.NewNeighborList[float64](cfg.PairlistSkin)
	if err != nil {
		t.Fatal(err)
	}
	var ledger sim.Ledger
	forces := func() float64 {
		if nl.Stale(sys.P, sys.Pos) {
			nl.BuildN2(sys.P, sys.Pos)
		}
		pe := nl.Forces(sys.P, sys.Pos, sys.Acc)
		countPairlistForcePass(&ledger, sys.N(), nl.PairCount(), interactingPairs(sys.P, sys.Pos))
		return pe
	}
	for s := 0; s < steps; s++ {
		sys.StepWith(forces)
		countIntegration(&ledger, sys.N())
	}
	bd := sim.NewBreakdown()
	clock := sim.Clock{Hz: cfg.ClockHz}
	bd.Add("compute", clock.Seconds(ledger.Cycles(cfg.Costs)))
	memCycles, err := New(cfg).memoryModel(sys.N(), steps)
	if err != nil {
		t.Fatal(err)
	}
	bd.Add("memory", clock.Seconds(memCycles))

	if res.PE != sys.PE || res.KE != sys.KE {
		t.Fatalf("physics differs: PE %v vs %v, KE %v vs %v", res.PE, sys.PE, res.KE, sys.KE)
	}
	if got, want := res.Time.Total(), bd.Total(); got != want {
		t.Fatalf("Breakdown.Total differs: %v vs %v", got, want)
	}
	for _, label := range []string{"compute", "memory"} {
		if got, want := res.Time.Component(label), bd.Component(label); got != want {
			t.Fatalf("Breakdown %s differs: %v vs %v", label, got, want)
		}
	}
}
