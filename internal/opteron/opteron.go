// Package opteron models the paper's baseline: a 2.2 GHz AMD Opteron
// running the reference double-precision MD kernel exactly as the
// pseudo-code of Figure 4 describes it — for every atom, scan all N-1
// others, compute the minimum-image distance on the fly (including the
// square root), test the cutoff, and accumulate Lennard-Jones forces.
//
// The model is functional-first: the physics is computed for real (and
// validated against internal/md by the tests), while the modeled
// runtime is assembled from
//
//   - an operation-mix ledger converted to cycles by a cost table that
//     reflects a three-issue out-of-order core (fractional per-op costs
//     express instruction-level parallelism), and
//   - a two-level cache model (64 KB 2-way L1D, 1 MB 16-way L2, the
//     Opteron 2xx geometry) fed with the kernel's actual access
//     pattern: N cyclic streaming passes over the position array per
//     force evaluation. The closed-form streaming model used here is
//     property-tested against the reference cache simulator in
//     internal/cache.
//
// The cache component is what bends the Opteron's workload-scaling
// curve upward in Figure 9 once the position array outgrows L1 — the
// effect the paper highlights against the cache-less MTA-2.
package opteron

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/device"
	"repro/internal/md"
	"repro/internal/sim"
)

// Config parameterizes the processor model.
type Config struct {
	ClockHz float64         // core frequency
	L1      cache.Config    // L1 data cache geometry
	L2      cache.Config    // L2 cache geometry
	Lat     cache.Latencies // added cycles on L1 miss / L2 miss
	Costs   sim.CostTable   // per-operation cycle costs

	// UsePairlist switches the force kernel to the Verlet neighbor
	// list (the cache-friendly optimization the paper cites but does
	// not use). Off for every paper experiment; on for the ablation.
	UsePairlist  bool
	PairlistSkin float64 // skin width when UsePairlist is set

	// ExactCache replaces the closed-form streaming model with a full
	// set-associative simulation of the force loop's position-array
	// traffic. Orders of magnitude slower (one simulated access per
	// cache line per pass) and used by the tests to verify that the
	// analytic model matches the real hierarchy on this access pattern.
	ExactCache bool
}

// DefaultConfig returns the 2.2 GHz Opteron model used throughout the
// reproduction.
func DefaultConfig() Config {
	var costs sim.CostTable
	// Fractional costs model sustained superscalar throughput: the
	// 3-issue core retires several independent ops per cycle on this
	// loop's dependence structure.
	costs[sim.OpFAdd] = 0.5
	costs[sim.OpFMul] = 0.5
	costs[sim.OpFDiv] = 10
	costs[sim.OpFSqrt] = 13
	costs[sim.OpCmp] = 0.5
	costs[sim.OpBranch] = 0.1 // predicted
	costs[sim.OpBranchMiss] = 12
	costs[sim.OpLoad] = 0.5 // L1-hit cost; miss penalties come from the cache model
	costs[sim.OpStore] = 0.5
	costs[sim.OpInt] = 0.33
	return Config{
		ClockHz: 2.2e9,
		L1:      cache.Config{SizeBytes: 64 * 1024, LineBytes: 64, Ways: 2},
		L2:      cache.Config{SizeBytes: 1024 * 1024, LineBytes: 64, Ways: 16},
		Lat:     cache.Latencies{L1Hit: 0, L2Hit: 12, Memory: 180},
		Costs:   costs,

		PairlistSkin: 0.4,
	}
}

// CPU is the modeled processor.
type CPU struct {
	cfg Config
}

// New returns a CPU with the given configuration.
func New(cfg Config) *CPU { return &CPU{cfg: cfg} }

// Name implements device.Device.
func (c *CPU) Name() string { return "opteron" }

// Run implements device.Device: execute the workload functionally in
// float64 while accounting modeled cycles.
func (c *CPU) Run(w device.Workload) (*device.Result, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return nil, err
	}

	var ledger sim.Ledger
	variant := "reference"
	var forces func() float64
	if c.cfg.UsePairlist {
		variant = "pairlist"
		nl, err := md.NewNeighborList[float64](c.cfg.PairlistSkin)
		if err != nil {
			return nil, err
		}
		forces = func() float64 {
			pe := nl.Forces(sys.P, sys.Pos, sys.Acc)
			countPairlistForcePass(&ledger, sys.N(), nl.PairCount(), interactingPairs(sys.P, sys.Pos))
			return pe
		}
	} else {
		forces = func() float64 {
			pe, k := md.ComputeForcesFullCount(sys.P, sys.Pos, sys.Acc)
			countForcePass(&ledger, sys.N(), k)
			return pe
		}
	}

	for s := 0; s < w.Steps; s++ {
		sys.StepWith(forces)
		countIntegration(&ledger, sys.N())
	}

	bd := sim.NewBreakdown()
	clock := sim.Clock{Hz: c.cfg.ClockHz}
	bd.Add("compute", clock.Seconds(ledger.Cycles(c.cfg.Costs)))
	memCycles, err := c.memoryModel(sys.N(), w.Steps)
	if err != nil {
		return nil, err
	}
	bd.Add("memory", clock.Seconds(memCycles))

	return &device.Result{
		Device:  c.Name(),
		Variant: variant,
		N:       sys.N(),
		Steps:   w.Steps,
		PE:      sys.PE,
		KE:      sys.KE,
		Time:    bd,
		Ledger:  ledger,
	}, nil
}

// interactingPairs counts ordered (i,j), i != j, pairs inside the
// cutoff — the quantity the data-dependent parts of the ledger scale
// with. It mirrors the kernel's own cutoff test.
func interactingPairs(p md.Params[float64], pos md.Coords[float64]) int64 {
	rc2 := p.Cutoff * p.Cutoff
	var k int64
	n := pos.Len()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := md.MinImage(pos.At(i).Sub(pos.At(j)), p.Box)
			if r2 := d.Norm2(); r2 < rc2 && r2 > 0 {
				k++
			}
		}
	}
	return 2 * k // full loop visits each pair twice
}

// countForcePass accrues the operation mix of one full N² force
// evaluation with k interacting ordered pairs: the per-pair distance
// pipeline of Figure 4 (difference, minimum image, squared length,
// square root, cutoff compare) plus the Lennard-Jones evaluation for
// interacting pairs.
func countForcePass(l *sim.Ledger, n int, k int64) {
	pairs := int64(n) * int64(n-1)
	l.Add(sim.OpLoad, 3*pairs)   // pos[j].{x,y,z}
	l.Add(sim.OpFAdd, 3*pairs)   // direction components
	l.Add(sim.OpCmp, 3*pairs)    // min-image tests
	l.Add(sim.OpBranch, 3*pairs) // min-image branches (highly predictable)
	l.Add(sim.OpFAdd, 3*pairs/2) // min-image corrections (~half the axes wrap on average)
	l.Add(sim.OpFMul, 3*pairs)   // squared components
	l.Add(sim.OpFAdd, 2*pairs)   // their sum
	l.Add(sim.OpFSqrt, pairs)    // the on-the-fly distance of Figure 4
	l.Add(sim.OpCmp, pairs)      // cutoff test
	l.Add(sim.OpBranch, pairs)   //
	l.Add(sim.OpInt, 2*pairs)    // loop index and address arithmetic
	l.Add(sim.OpBranchMiss, k)   // the rare taken side of the cutoff test
	countLJ(l, k)
	l.Add(sim.OpStore, 3*int64(n)) // write the accumulated acceleration
}

// countPairlistForcePass accrues the mix of a neighbor-list force pass:
// only the listed pairs are visited (each once, with Newton's third law
// applied), so the per-pair pipeline runs listPairs times instead of
// n*(n-1) times.
func countPairlistForcePass(l *sim.Ledger, n int, listPairs int, k int64) {
	pairs := int64(listPairs)
	l.Add(sim.OpLoad, 3*pairs)
	l.Add(sim.OpFAdd, 3*pairs)
	l.Add(sim.OpCmp, 3*pairs)
	l.Add(sim.OpBranch, 3*pairs)
	l.Add(sim.OpFAdd, 3*pairs/2)
	l.Add(sim.OpFMul, 3*pairs)
	l.Add(sim.OpFAdd, 2*pairs)
	l.Add(sim.OpFSqrt, pairs)
	l.Add(sim.OpCmp, pairs)
	l.Add(sim.OpBranch, pairs)
	l.Add(sim.OpInt, 3*pairs) // extra index indirection through the list
	half := k / 2             // list visits each unordered pair once
	l.Add(sim.OpBranchMiss, half)
	countLJ(l, half)
	l.Add(sim.OpFAdd, 3*half) // the j-side accumulation (third law)
	l.Add(sim.OpStore, 6*int64(n))
}

// countLJ accrues the Lennard-Jones pair evaluation for k pairs:
// sr2 = sig²/r² (div), sr6, sr12 (muls), energy and force terms, and
// the acceleration accumulation.
func countLJ(l *sim.Ledger, k int64) {
	l.Add(sim.OpFDiv, k)
	l.Add(sim.OpFMul, 6*k)
	l.Add(sim.OpFAdd, 3*k)
	l.Add(sim.OpFDiv, k)   // f / r²
	l.Add(sim.OpFMul, 3*k) // force vector components
	l.Add(sim.OpFAdd, 3*k) // acceleration accumulation
	l.Add(sim.OpFAdd, k)   // potential energy accumulation
}

// countIntegration accrues the O(N) work of one velocity-Verlet step
// outside the force kernel: two half-kicks, the drift, the wrap, and
// the kinetic-energy reduction.
func countIntegration(l *sim.Ledger, n int) {
	an := int64(n)
	l.Add(sim.OpFMul, 9*an) // kicks (2x3) + drift (3)
	l.Add(sim.OpFAdd, 9*an)
	l.Add(sim.OpCmp, 6*an) // wrap tests
	l.Add(sim.OpFAdd, 3*an/2)
	l.Add(sim.OpFMul, 3*an) // v² for kinetic energy
	l.Add(sim.OpFAdd, 3*an)
	l.Add(sim.OpLoad, 9*an)
	l.Add(sim.OpStore, 9*an)
	l.Add(sim.OpInt, 4*an)
}

// memoryModel dispatches between the closed-form streaming model and
// the exact hierarchy simulation.
func (c *CPU) memoryModel(n, steps int) (float64, error) {
	if c.cfg.ExactCache {
		return c.memoryCyclesExact(n, steps)
	}
	return c.memoryCycles(n, steps), nil
}

// memoryCyclesExact replays the force loop's position-array traffic —
// N cyclic sequential passes per force evaluation, one access per
// cache line — through the real two-level set-associative hierarchy.
func (c *CPU) memoryCyclesExact(n, steps int) (float64, error) {
	h, err := cache.NewHierarchy(c.cfg.L1, c.cfg.L2, c.cfg.Lat)
	if err != nil {
		return 0, err
	}
	posBytes := uint64(n) * 24
	line := uint64(c.cfg.L1.LineBytes)
	for pass := 0; pass < n*steps; pass++ {
		for addr := uint64(0); addr < posBytes; addr += line {
			h.Access(addr)
		}
	}
	return h.Cycles(), nil
}

// memoryCycles models the cache behaviour of the whole run with the
// closed-form streaming model: every force evaluation makes N cyclic
// sequential passes over the position array (24 bytes per atom in
// double precision). Misses that fall to L2 cost Lat.L2Hit; misses
// that fall out of L2 cost Lat.L2Hit+Lat.Memory on top.
func (c *CPU) memoryCycles(n, steps int) float64 {
	posBytes := int64(n) * 24
	passes := n * steps
	if passes == 0 {
		return 0
	}
	line := int64(c.cfg.L1.LineBytes)
	l1Misses := cache.StreamingSweep(posBytes, int64(c.cfg.L1.SizeBytes), line, passes)
	l2Misses := cache.StreamingSweep(posBytes, int64(c.cfg.L2.SizeBytes), line, passes)
	return float64(l1Misses)*c.cfg.Lat.L2Hit + float64(l2Misses)*c.cfg.Lat.Memory
}

var _ device.Device = (*CPU)(nil)

// String describes the configuration.
func (c *CPU) String() string {
	return fmt.Sprintf("opteron(%.1f GHz, L1 %dKB/%d-way, L2 %dKB/%d-way)",
		c.cfg.ClockHz/1e9,
		c.cfg.L1.SizeBytes/1024, c.cfg.L1.Ways,
		c.cfg.L2.SizeBytes/1024, c.cfg.L2.Ways)
}
