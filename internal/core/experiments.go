package core

import (
	"fmt"

	"repro/internal/cell"
	"repro/internal/device"
	"repro/internal/mta"
)

// Paper-default experiment parameters.
const (
	// PaperAtoms and PaperSteps are the 2048-atom / 10-step experiment
	// behind Figure 5, Figure 6, and Table 1.
	PaperAtoms = 2048
	PaperSteps = 10
)

// PaperSweepNs is the atom-count sweep used for Figures 7-9. The
// paper's extracted text does not preserve its exact x-axis values;
// powers of two bracketing the 2048-atom headline experiment are used.
var PaperSweepNs = []int{256, 512, 1024, 2048, 4096, 8192}

// PaperSweepGPUNs extends the sweep downward for Figure 7 only: the
// CPU/GPU crossover the paper shows "at very small numbers of atoms"
// sits near 100 atoms in this model. (Figures 8 and 9 keep 256 as the
// smallest point — it is Figure 9's normalization baseline, and below
// ~150 atoms StandardWorkload must shrink the cutoff, which would
// change the physics baseline.)
var PaperSweepGPUNs = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192}

// Fig5Row is one bar of Figure 5: the runtime of the acceleration
// computation for one SIMD-optimization rung on a single SPE.
type Fig5Row struct {
	Variant string
	Seconds float64
}

// Fig5 regenerates Figure 5 at the given atom count (the paper uses
// 2048).
func Fig5(n int) ([]Fig5Row, error) {
	w, err := StandardWorkload(n, 1)
	if err != nil {
		return nil, err
	}
	proc, err := cell.New(cell.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, cell.NumVariants)
	for v := cell.Variant(0); v < cell.NumVariants; v++ {
		sec, err := proc.AccelKernelTime(w, v)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig5Row{Variant: v.String(), Seconds: sec})
	}
	return rows, nil
}

// Fig6Row is one bar pair of Figure 6: total runtime and the slice of
// it spent launching SPE threads, for one SPE-count/mode combination.
type Fig6Row struct {
	Config  string
	NSPE    int
	Mode    cell.Mode
	Total   float64
	Spawn   float64
	Seconds float64 // alias of Total for table rendering symmetry
}

// Fig6 regenerates Figure 6: {1, 8} SPEs x {respawn each step, launch
// only first step}, total runtime vs. SPE launch overhead.
func Fig6(n, steps int) ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, mode := range []cell.Mode{cell.RespawnEachStep, cell.LaunchOnce} {
		for _, nspe := range []int{1, 8} {
			dev, err := NewCell(nspe, mode)
			if err != nil {
				return nil, err
			}
			w, err := StandardWorkload(n, steps)
			if err != nil {
				return nil, err
			}
			res, err := runValidated(dev, w, TolSingle)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Fig6Row{
				Config:  fmt.Sprintf("%d SPE / %v", nspe, mode),
				NSPE:    nspe,
				Mode:    mode,
				Total:   res.Seconds(),
				Spawn:   res.Time.Component("spawn"),
				Seconds: res.Seconds(),
			})
		}
	}
	return rows, nil
}

// Table1Row is one row of Table 1: a device configuration and its
// runtime for the 2048-atom, 10-step experiment.
type Table1Row struct {
	Config  string
	Seconds float64
	// SpeedupVsOpteron is runtime(Opteron)/runtime(this row); < 1 means
	// slower than the Opteron.
	SpeedupVsOpteron float64
}

// Table1 regenerates Table 1: Opteron, Cell 1 SPE, Cell 8 SPEs, and
// Cell PPE-only, at the given size.
func Table1(n, steps int) ([]Table1Row, error) {
	w, err := StandardWorkload(n, steps)
	if err != nil {
		return nil, err
	}
	opt, err := runValidated(NewOpteron(), w, TolDouble)
	if err != nil {
		return nil, err
	}

	rows := []Table1Row{{Config: "Opteron", Seconds: opt.Seconds(), SpeedupVsOpteron: 1}}
	cell1, err := NewCell(1, cell.LaunchOnce)
	if err != nil {
		return nil, err
	}
	cell8, err := NewCell(8, cell.LaunchOnce)
	if err != nil {
		return nil, err
	}
	ppe, err := NewCellPPEOnly()
	if err != nil {
		return nil, err
	}
	for _, it := range []struct {
		label string
		dev   device.Device
	}{
		{"Cell, 1 SPE", cell1},
		{"Cell, 8 SPEs", cell8},
		{"Cell, PPE only", ppe},
	} {
		res, err := runValidated(it.dev, w, TolSingle)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Config:           it.label,
			Seconds:          res.Seconds(),
			SpeedupVsOpteron: opt.Seconds() / res.Seconds(),
		})
	}
	return rows, nil
}

// Fig7Row is one x-position of Figure 7: Opteron vs GPU runtime at one
// atom count.
type Fig7Row struct {
	N       int
	Opteron float64
	GPU     float64
}

// Fig7 regenerates Figure 7 over the given atom counts.
func Fig7(ns []int, steps int) ([]Fig7Row, error) {
	g, err := NewGPU()
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	for _, n := range ns {
		w, err := StandardWorkload(n, steps)
		if err != nil {
			return nil, err
		}
		ro, err := runValidated(NewOpteron(), w, TolDouble)
		if err != nil {
			return nil, err
		}
		rg, err := runValidated(g, w, TolSingle)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig7Row{N: n, Opteron: ro.Seconds(), GPU: rg.Seconds()})
	}
	return rows, nil
}

// Fig8Row is one x-position of Figure 8: fully vs partially
// multithreaded MTA-2 runtime.
type Fig8Row struct {
	N         int
	Fully     float64
	Partially float64
}

// Fig8 regenerates Figure 8 over the given atom counts.
func Fig8(ns []int, steps int) ([]Fig8Row, error) {
	full, err := NewMTA(mta.FullyThreaded)
	if err != nil {
		return nil, err
	}
	part, err := NewMTA(mta.PartiallyThreaded)
	if err != nil {
		return nil, err
	}
	var rows []Fig8Row
	for _, n := range ns {
		w, err := StandardWorkload(n, steps)
		if err != nil {
			return nil, err
		}
		rf, err := runValidated(full, w, TolDouble)
		if err != nil {
			return nil, err
		}
		rp, err := runValidated(part, w, TolDouble)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{N: n, Fully: rf.Seconds(), Partially: rp.Seconds()})
	}
	return rows, nil
}

// Fig9Row is one x-position of Figure 9: runtime relative to the
// 256-atom run for the MTA and the Opteron.
type Fig9Row struct {
	N          int
	MTARel     float64
	OpteronRel float64
}

// Fig9 regenerates Figure 9: the workload-scaling comparison. The
// first entry of ns is the normalization point (the paper uses 256).
func Fig9(ns []int, steps int) ([]Fig9Row, error) {
	if len(ns) == 0 {
		return nil, fmt.Errorf("core: Fig9 needs at least one atom count")
	}
	m, err := NewMTA(mta.FullyThreaded)
	if err != nil {
		return nil, err
	}
	type pair struct{ mtaSec, optSec float64 }
	var base pair
	var rows []Fig9Row
	for i, n := range ns {
		w, err := StandardWorkload(n, steps)
		if err != nil {
			return nil, err
		}
		rm, err := runValidated(m, w, TolDouble)
		if err != nil {
			return nil, err
		}
		ro, err := runValidated(NewOpteron(), w, TolDouble)
		if err != nil {
			return nil, err
		}
		cur := pair{mtaSec: rm.Seconds(), optSec: ro.Seconds()}
		if i == 0 {
			base = cur
		}
		rows = append(rows, Fig9Row{
			N:          n,
			MTARel:     cur.mtaSec / base.mtaSec,
			OpteronRel: cur.optSec / base.optSec,
		})
	}
	return rows, nil
}
