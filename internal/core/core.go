// Package core is the experiment runner of the reproduction: it builds
// the standard workloads, runs them across the modeled devices
// (internal/opteron, internal/cell, internal/gpu, internal/mta),
// cross-validates every device's physics against the reference
// implementation in internal/md, and defines one function per table and
// figure of the paper's evaluation section (experiments.go).
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/cell"
	"repro/internal/device"
	"repro/internal/gpu"
	"repro/internal/lattice"
	"repro/internal/md"
	"repro/internal/mta"
	"repro/internal/opteron"
)

// Standard simulation parameters used by every experiment, in reduced
// Lennard-Jones units: the classic liquid-argon state point.
const (
	StdDensity     = 0.8442
	StdTemperature = 0.728
	StdCutoff      = 2.5
	StdDt          = 0.004
	StdSeed        = 20070326 // IPDPS 2007, first day
)

// StandardWorkload builds the workload every experiment shares: an FCC
// lattice at the standard state point, equilibrium velocities, and the
// paper's cutoff. For very small systems the cutoff is reduced to fit
// the minimum-image requirement.
func StandardWorkload(n, steps int) (device.Workload, error) {
	st, err := lattice.Generate(lattice.Config{
		N:           n,
		Density:     StdDensity,
		Temperature: StdTemperature,
		Kind:        lattice.FCC,
		Seed:        StdSeed,
	})
	if err != nil {
		return device.Workload{}, err
	}
	cutoff := float64(StdCutoff)
	if 2*cutoff > st.Box {
		cutoff = st.Box / 2 * 0.99
	}
	return device.Workload{State: st, Cutoff: cutoff, Dt: StdDt, Steps: steps}, nil
}

// ReferenceEnergies integrates the workload with the double-precision
// reference kernel and returns the final PE and KE — the oracle every
// device result is checked against. Results are memoized per workload
// shape: experiments validate several devices against the same
// trajectory, and the oracle run is as expensive as a device run.
func ReferenceEnergies(w device.Workload) (pe, ke float64, err error) {
	key := refKey{n: len(w.State.Pos), steps: w.Steps, box: w.State.Box, cutoff: w.Cutoff, dt: w.Dt}
	refMu.Lock()
	if v, ok := refCache[key]; ok {
		refMu.Unlock()
		return v.pe, v.ke, nil
	}
	refMu.Unlock()

	p := md.Params[float64]{Box: w.State.Box, Cutoff: w.Cutoff, Dt: w.Dt}
	sys, err := md.NewSystem(w.State, p)
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < w.Steps; i++ {
		sys.StepWith(func() float64 { return md.ComputeForcesFull(sys.P, sys.Pos, sys.Acc) })
	}

	refMu.Lock()
	refCache[key] = refVal{pe: sys.PE, ke: sys.KE}
	refMu.Unlock()
	return sys.PE, sys.KE, nil
}

// refKey identifies a StandardWorkload-shaped run. Workloads built
// outside StandardWorkload with the same shape but different initial
// states would collide, so the cache is keyed on everything Workload
// carries besides the (seed-determined) state; core's experiments all
// share StdSeed.
type refKey struct {
	n, steps    int
	box, cutoff float64
	dt          float64
}

type refVal struct{ pe, ke float64 }

var (
	refMu    sync.Mutex
	refCache = make(map[refKey]refVal)
)

// Tolerances for physics validation: double-precision devices must
// match the oracle almost exactly; single-precision devices (Cell,
// GPU) accumulate float32 rounding over the trajectory.
const (
	TolDouble = 1e-9
	TolSingle = 2e-2
)

// Validate checks a device result against the reference energies for
// its workload within relTol.
func Validate(res *device.Result, w device.Workload, relTol float64) error {
	pe, ke, err := ReferenceEnergies(w)
	if err != nil {
		return err
	}
	if relErr := relDiff(res.PE, pe); relErr > relTol {
		return fmt.Errorf("core: %s/%s PE %v deviates from reference %v by %v (tol %v)",
			res.Device, res.Variant, res.PE, pe, relErr, relTol)
	}
	if relErr := relDiff(res.KE, ke); relErr > relTol {
		return fmt.Errorf("core: %s/%s KE %v deviates from reference %v by %v (tol %v)",
			res.Device, res.Variant, res.KE, ke, relErr, relTol)
	}
	return nil
}

func relDiff(a, b float64) float64 {
	if a == b {
		return 0
	}
	return math.Abs(a-b) / math.Max(math.Abs(a), math.Abs(b))
}

// runValidated runs the workload on dev and validates its physics.
func runValidated(dev device.Device, w device.Workload, relTol float64) (*device.Result, error) {
	res, err := dev.Run(w)
	if err != nil {
		return nil, err
	}
	if err := Validate(res, w, relTol); err != nil {
		return nil, err
	}
	return res, nil
}

// Device constructors with the calibrated default configurations.

// NewOpteron returns the baseline CPU model.
func NewOpteron() device.Device { return opteron.New(opteron.DefaultConfig()) }

// NewCell returns a Cell model with the given SPE count and launch
// mode, running the fully optimized kernel.
func NewCell(nspe int, mode cell.Mode) (device.Device, error) {
	cfg := cell.DefaultConfig()
	cfg.NSPE = nspe
	cfg.Mode = mode
	return cell.New(cfg)
}

// NewCellPPEOnly returns the PPE-only Cell configuration.
func NewCellPPEOnly() (device.Device, error) {
	cfg := cell.DefaultConfig()
	cfg.PPEOnly = true
	return cell.New(cfg)
}

// NewGPU returns the GPU model.
func NewGPU() (device.Device, error) { return gpu.New(gpu.DefaultConfig()) }

// NewMTA returns an MTA-2 model with the given threading mode.
func NewMTA(threading mta.Threading) (device.Device, error) {
	cfg := mta.DefaultConfig()
	cfg.Threading = threading
	return mta.New(cfg)
}

// Devices returns every default-configured device, for tools that
// iterate over all of them.
func Devices() (map[string]device.Device, error) {
	c8, err := NewCell(8, cell.LaunchOnce)
	if err != nil {
		return nil, err
	}
	g, err := NewGPU()
	if err != nil {
		return nil, err
	}
	m, err := NewMTA(mta.FullyThreaded)
	if err != nil {
		return nil, err
	}
	return map[string]device.Device{
		"opteron": NewOpteron(),
		"cell":    c8,
		"gpu":     g,
		"mta":     m,
	}, nil
}
