package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/cell"
	"repro/internal/device"
	"repro/internal/mta"
	"repro/internal/sim"
)

func TestStandardWorkloadShape(t *testing.T) {
	w, err := StandardWorkload(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if w.N() != 500 || w.Steps != 7 {
		t.Fatalf("N=%d steps=%d", w.N(), w.Steps)
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Cutoff != StdCutoff {
		t.Fatalf("cutoff = %v", w.Cutoff)
	}
}

func TestStandardWorkloadTinySystemShrinksCutoff(t *testing.T) {
	w, err := StandardWorkload(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	if 2*w.Cutoff > w.State.Box {
		t.Fatalf("cutoff %v too large for box %v", w.Cutoff, w.State.Box)
	}
}

func TestStandardWorkloadRejectsBadN(t *testing.T) {
	if _, err := StandardWorkload(0, 1); err == nil {
		t.Fatal("N=0 accepted")
	}
}

func TestReferenceEnergiesMemoized(t *testing.T) {
	w, err := StandardWorkload(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	pe1, ke1, err := ReferenceEnergies(w)
	if err != nil {
		t.Fatal(err)
	}
	pe2, ke2, err := ReferenceEnergies(w)
	if err != nil {
		t.Fatal(err)
	}
	if pe1 != pe2 || ke1 != ke2 {
		t.Fatal("memoized energies differ")
	}
}

func TestValidateCatchesWrongPhysics(t *testing.T) {
	w, err := StandardWorkload(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewOpteron().Run(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(res, w, TolDouble); err != nil {
		t.Fatalf("correct physics rejected: %v", err)
	}
	res.PE *= 1.5
	if err := Validate(res, w, TolDouble); err == nil {
		t.Fatal("corrupted PE passed validation")
	}
}

func TestAllDevicesValidateOnSharedWorkload(t *testing.T) {
	devs, err := Devices()
	if err != nil {
		t.Fatal(err)
	}
	w, err := StandardWorkload(108, 5)
	if err != nil {
		t.Fatal(err)
	}
	for name, dev := range devs {
		res, err := dev.Run(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tol := TolDouble
		if name == "cell" || name == "gpu" {
			tol = TolSingle
		}
		if err := Validate(res, w, tol); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(256)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != int(cell.NumVariants) {
		t.Fatalf("%d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Seconds >= rows[i-1].Seconds {
			t.Fatalf("ladder not monotone at %s: %v >= %v",
				rows[i].Variant, rows[i].Seconds, rows[i-1].Seconds)
		}
	}
	if rows[0].Variant != "original" || rows[len(rows)-1].Variant != "simd-accel" {
		t.Fatalf("unexpected variant order: %v ... %v", rows[0].Variant, rows[len(rows)-1].Variant)
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(512, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("%d rows", len(rows))
	}
	byConfig := map[string]Fig6Row{}
	for _, r := range rows {
		byConfig[r.Config] = r
		if r.Spawn > r.Total {
			t.Fatalf("%s: spawn %v exceeds total %v", r.Config, r.Spawn, r.Total)
		}
	}
	r8 := byConfig["8 SPE / respawn"]
	a8 := byConfig["8 SPE / amortized"]
	if r8.Spawn <= a8.Spawn {
		t.Fatal("respawn spawn overhead not larger than amortized")
	}
	if a8.Total >= r8.Total {
		t.Fatal("amortized not faster than respawn at 8 SPEs")
	}
	r1 := byConfig["1 SPE / respawn"]
	if r1.Spawn/r1.Total >= r8.Spawn/r8.Total {
		t.Fatal("spawn fraction should grow with SPE count in respawn mode")
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8([]int{128, 256}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Partially < 5*r.Fully {
			t.Fatalf("N=%d: partially (%v) not ≫ fully (%v)", r.N, r.Partially, r.Fully)
		}
	}
	if gap0, gap1 := rows[0].Partially-rows[0].Fully, rows[1].Partially-rows[1].Fully; gap1 <= gap0 {
		t.Fatalf("gap shrank with N: %v -> %v", gap0, gap1)
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9([]int{256, 512, 4096}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].MTARel != 1 || rows[0].OpteronRel != 1 {
		t.Fatalf("normalization point not 1: %+v", rows[0])
	}
	last := rows[len(rows)-1]
	// Both roughly quadratic...
	if last.MTARel < 100 || last.OpteronRel < 100 {
		t.Fatalf("growth not quadratic-ish: %+v", last)
	}
	// ...but the Opteron bends upward once the arrays leave L1 (96 KB
	// at 4096 atoms), while the cache-less MTA does not.
	if last.OpteronRel <= last.MTARel {
		t.Fatalf("Opteron growth (%v) should exceed MTA growth (%v) at 4096 atoms",
			last.OpteronRel, last.MTARel)
	}
}

func TestFig9RequiresPoints(t *testing.T) {
	if _, err := Fig9(nil, 1); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7([]int{64, 1024}, 5)
	if err != nil {
		t.Fatal(err)
	}
	smallest, largest := rows[0], rows[len(rows)-1]
	if smallest.GPU <= smallest.Opteron {
		t.Fatalf("at N=%d the GPU (%v) should lose to the Opteron (%v): fixed PCIe/dispatch costs",
			smallest.N, smallest.GPU, smallest.Opteron)
	}
	if largest.GPU >= largest.Opteron {
		t.Fatalf("at N=%d the GPU (%v) should beat the Opteron (%v)",
			largest.N, largest.GPU, largest.Opteron)
	}
}

// TestPaperScaleRelations runs the headline 2048-atom, 10-step
// experiment and asserts the paper's Table 1 and Figure 7 ratios. It
// is the expensive integration test; -short skips it.
func TestPaperScaleRelations(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale integration test")
	}
	rows, err := Table1(PaperAtoms, PaperSteps)
	if err != nil {
		t.Fatal(err)
	}
	get := func(cfgName string) Table1Row {
		for _, r := range rows {
			if r.Config == cfgName {
				return r
			}
		}
		t.Fatalf("missing row %q", cfgName)
		return Table1Row{}
	}
	opt := get("Opteron")
	c1 := get("Cell, 1 SPE")
	c8 := get("Cell, 8 SPEs")
	ppe := get("Cell, PPE only")

	// "even a single SPE just edges out the Opteron"
	if !(c1.Seconds < opt.Seconds && c1.Seconds > 0.7*opt.Seconds) {
		t.Errorf("1 SPE (%v) should just edge out the Opteron (%v)", c1.Seconds, opt.Seconds)
	}
	// "using all 8 SPEs results in a better than 5x performance
	// improvement relative to the Opteron"
	if s := opt.Seconds / c8.Seconds; s < 4.5 || s > 7 {
		t.Errorf("8 SPE speedup vs Opteron = %v, want ~5x", s)
	}
	// "and 26x faster than the PPE alone"
	if s := ppe.Seconds / c8.Seconds; s < 15 || s > 40 {
		t.Errorf("8 SPE speedup vs PPE = %v, want ~26x", s)
	}

	// Figure 7 headline: "For a run of 2048 atoms, the GPU
	// implementation is almost 6x faster than the CPU."
	f7, err := Fig7([]int{PaperAtoms}, PaperSteps)
	if err != nil {
		t.Fatal(err)
	}
	if s := f7[0].Opteron / f7[0].GPU; s < 4.5 || s > 8 {
		t.Errorf("GPU speedup at 2048 atoms = %v, want ~6x", s)
	}
}

func TestDeviceConstructors(t *testing.T) {
	if _, err := NewCell(8, cell.LaunchOnce); err != nil {
		t.Fatal(err)
	}
	if _, err := NewCellPPEOnly(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewGPU(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewMTA(mta.PartiallyThreaded); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(StdDensity) {
		t.Fatal("unreachable")
	}
}

func TestExperimentErrorPropagation(t *testing.T) {
	if _, err := Fig5(0); err == nil {
		t.Fatal("Fig5(0) accepted")
	}
	if _, err := Fig6(0, 1); err == nil {
		t.Fatal("Fig6(0 atoms) accepted")
	}
	if _, err := Table1(0, 1); err == nil {
		t.Fatal("Table1(0 atoms) accepted")
	}
	if _, err := Fig7([]int{0}, 1); err == nil {
		t.Fatal("Fig7 with zero-atom point accepted")
	}
	if _, err := Fig8([]int{0}, 1); err == nil {
		t.Fatal("Fig8 with zero-atom point accepted")
	}
	if _, err := Fig9([]int{0}, 1); err == nil {
		t.Fatal("Fig9 with zero-atom point accepted")
	}
}

func TestNewCellInvalidConfig(t *testing.T) {
	if _, err := NewCell(0, cell.LaunchOnce); err == nil {
		t.Fatal("NewCell(0) accepted")
	}
	if _, err := NewCell(9, cell.LaunchOnce); err == nil {
		t.Fatal("NewCell(9) accepted")
	}
}

func TestRunValidatedRejectsFailingDevice(t *testing.T) {
	w, err := StandardWorkload(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := runValidated(badDevice{}, w, TolDouble); err == nil {
		t.Fatal("failing device accepted")
	}
	if _, err := runValidated(wrongPhysicsDevice{}, w, TolDouble); err == nil {
		t.Fatal("wrong-physics device accepted")
	}
}

// badDevice always errors.
type badDevice struct{}

func (badDevice) Name() string { return "bad" }
func (badDevice) Run(device.Workload) (*device.Result, error) {
	return nil, fmt.Errorf("broken device")
}

// wrongPhysicsDevice reports nonsense energies.
type wrongPhysicsDevice struct{}

func (wrongPhysicsDevice) Name() string { return "wrong" }
func (wrongPhysicsDevice) Run(w device.Workload) (*device.Result, error) {
	return &device.Result{
		Device: "wrong", N: w.N(), Steps: w.Steps,
		PE: 123456, KE: -1, Time: sim.NewBreakdown(),
	}, nil
}
