// Package cache provides a set-associative LRU cache simulator, a
// two-level hierarchy built from it, and a closed-form analytic model
// of cyclic streaming access that is property-tested against the
// simulator.
//
// The paper attributes the Opteron's degrading workload scaling
// (Figure 9) to cache capacity: "the effect of cache misses are shown
// in the Opteron processor runs as the array sizes become larger than
// the cache capacities". The MD force loop scans the position array
// cyclically (for every atom i, stream over all atoms j), which is the
// canonical LRU worst case: once the array exceeds a level's capacity,
// *every* line of every pass misses at that level. This package makes
// that effect an output of a real cache model rather than a hard-coded
// curve: internal/opteron uses the fast analytic form for large
// workloads, and the tests here prove the analytic form exact against
// the reference simulator for the access pattern the kernel performs.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int // total capacity (power-of-two multiple of LineBytes*Ways)
	LineBytes int // line size in bytes (power of two)
	Ways      int // associativity (>= 1); Ways*sets*LineBytes == SizeBytes
}

// Validate checks structural soundness.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d is not a positive power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: associativity %d must be positive", c.Ways)
	}
	if c.SizeBytes <= 0 || c.SizeBytes%(c.LineBytes*c.Ways) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line*ways = %d", c.SizeBytes, c.LineBytes*c.Ways)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d is not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.LineBytes * c.Ways) }

// Cache is a single-level set-associative cache with true-LRU
// replacement. It models presence only (no dirty/writeback state):
// reads and writes are both "accesses" that allocate on miss, which is
// the behaviour of a write-allocate cache as seen by a latency model.
type Cache struct {
	cfg  Config
	sets [][]way
	tick uint64

	hits, misses int64
}

type way struct {
	valid bool
	tag   uint64
	used  uint64 // LRU timestamp
}

// New builds a cache from cfg.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := make([][]way, cfg.Sets())
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Hits returns the number of hit accesses since the last Reset.
func (c *Cache) Hits() int64 { return c.hits }

// Misses returns the number of miss accesses since the last Reset.
func (c *Cache) Misses() int64 { return c.misses }

// Accesses returns Hits()+Misses().
func (c *Cache) Accesses() int64 { return c.hits + c.misses }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.tick, c.hits, c.misses = 0, 0, 0
}

// Access touches the byte at addr and returns whether it hit. On a
// miss the line is allocated, evicting the LRU way of its set.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	line := addr / uint64(c.cfg.LineBytes)
	setIdx := line & uint64(c.cfg.Sets()-1)
	tag := line >> log2(uint64(c.cfg.Sets()))
	set := c.sets[setIdx]
	// Hit path.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].used = c.tick
			c.hits++
			return true
		}
	}
	// Miss: replace LRU (or first invalid) way.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
	set[victim] = way{valid: true, tag: tag, used: c.tick}
	c.misses++
	return false
}

// Contains reports whether addr's line is currently resident, without
// touching LRU state or counters.
func (c *Cache) Contains(addr uint64) bool {
	line := addr / uint64(c.cfg.LineBytes)
	setIdx := line & uint64(c.cfg.Sets()-1)
	tag := line >> log2(uint64(c.cfg.Sets()))
	for _, w := range c.sets[setIdx] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// log2 returns floor(log2(x)) for power-of-two x.
func log2(x uint64) uint {
	var n uint
	for x > 1 {
		x >>= 1
		n++
	}
	return n
}
